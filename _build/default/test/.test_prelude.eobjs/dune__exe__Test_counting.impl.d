test/test_counting.ml: Alcotest Counting Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude Goalcom_servers Helpful History List Listx Outcome Printf Rng Sensing Transform
