test/test_machine_user.mli:
