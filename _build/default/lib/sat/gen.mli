(** Random CNF instance generators for the delegation workloads. *)

open Goalcom_prelude

val planted :
  Rng.t -> num_vars:int -> num_clauses:int -> clause_len:int ->
  Cnf.t * Cnf.assignment
(** A random formula together with a planted satisfying assignment:
    every clause is sampled until it is satisfied by the plant, so the
    instance is satisfiable by construction.
    @raise Invalid_argument on non-positive parameters or
    [clause_len > num_vars]. *)

val uniform :
  Rng.t -> num_vars:int -> num_clauses:int -> clause_len:int -> Cnf.t
(** Uniform random k-CNF (clauses with distinct variables); may be
    unsatisfiable. *)
