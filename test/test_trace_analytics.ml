(* Analytics-layer suite (lib/obs): the JSONL reader inverts the writer
   on arbitrary events (qcheck), the committed golden files parse back
   and satisfy the standard invariants, span attribution sums exactly
   to the run totals, Trace_diff reports first divergences, and the
   Bench_gate regression predicate passes identical metrics while
   failing an injected 50% regression. *)

open Goalcom
open Goalcom_harness
module Obs = Goalcom_obs

let qcount = 250

(* Arbitrary messages, biased toward the adversarial corners of the
   Text escaping (quotes, backslashes, control and high bytes). *)
let msg_gen =
  QCheck.Gen.(
    sized_size (int_bound 4) @@ fix (fun self n ->
        let any_byte = map Char.chr (int_bound 255) in
        let leaf =
          oneof
            [
              return Msg.Silence;
              map (fun i -> Msg.Sym i) (int_bound 30);
              map (fun i -> Msg.Int (i - 500)) (int_bound 1000);
              map (fun s -> Msg.Text s) (string_size ~gen:any_byte (int_bound 8));
              map
                (fun s -> Msg.Text s)
                (oneofl [ "\""; "\\"; "a\"b\\c"; "\n\t\r\b"; "\255\001"; "" ]);
            ]
        in
        if n <= 0 then leaf
        else
          frequency
            [
              (3, leaf);
              (1, map2 (fun a b -> Msg.Pair (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map (fun l -> Msg.Seq l) (list_size (int_bound 3) (self (n / 2))));
            ]))

let party_gen = QCheck.Gen.oneofl [ Trace.User; Trace.Server; Trace.World ]

(* Name-ish strings exercise the JSON (not Msg) escaping path. *)
let name_gen =
  QCheck.Gen.oneofl
    [ "printing(alphabet=3)"; "g\"x"; "maze\\y"; ""; "a b\nc"; "\195\169!" ]

let event_gen =
  QCheck.Gen.(
    let nat = int_bound 5000 in
    oneof
      [
        map3
          (fun goal user (server, horizon, drain, world_choice) ->
            Trace.Run_start { goal; user; server; horizon; drain; world_choice })
          name_gen name_gen
          (quad name_gen nat (int_bound 9) (int_bound 9));
        map (fun round -> Trace.Round_start { round }) nat;
        map3
          (fun round (src, dst) msg -> Trace.Emit { round; src; dst; msg })
          nat (pair party_gen party_gen) msg_gen;
        map (fun round -> Trace.Halt { round }) nat;
        map3
          (fun round sensor (positive, clock, patience) ->
            Trace.Sense { round; sensor; positive; clock; patience })
          nat name_gen
          (triple bool nat nat);
        map2
          (fun round (from_index, to_index, attempt) ->
            Trace.Switch { round; from_index; to_index; attempt })
          nat
          (triple (int_bound 40) (int_bound 40) (int_bound 6));
        map2 (fun index slots -> Trace.Resume { index; slots }) (int_bound 40) nat;
        map3
          (fun round index budget -> Trace.Session { round; index; budget })
          nat (int_bound 40) nat;
        map3
          (fun round fault detail -> Trace.Fault { round; fault; detail })
          nat name_gen name_gen;
        map (fun round -> Trace.Violation { round }) nat;
        map2 (fun rounds halted -> Trace.Run_end { rounds; halted }) nat bool;
        map3
          (fun tick session (action, detail) ->
            Trace.Supervise { tick; session; action; detail })
          nat nat (pair name_gen name_gen);
        map3
          (fun (server_class, enum) (index, accepted) detail ->
            Trace.Warm { server_class; enum; index; accepted; detail })
          (pair name_gen name_gen)
          (pair (int_range (-1) 40) bool)
          name_gen;
      ])

let event_arb = QCheck.make event_gen ~print:Obs.Jsonl.event_to_json

let prop_jsonl_roundtrip =
  QCheck.Test.make ~count:qcount
    ~name:"Jsonl: parse_line (event_to_json e) = Ok e" event_arb (fun e ->
      match Obs.Jsonl.parse_line (Obs.Jsonl.event_to_json e) with
      | Ok e' -> e' = e
      | Error msg -> QCheck.Test.fail_report msg)

(* The byte format itself is pinned by the goldens; spot-pin the
   adversarial corners here so a renderer change cannot hide behind a
   golden regeneration. *)
let exact_bytes () =
  let check expected ev =
    Alcotest.(check string) expected expected (Obs.Jsonl.event_to_json ev)
  in
  check {|{"ev":"round_start","round":7}|} (Trace.Round_start { round = 7 });
  check
    {|{"ev":"emit","round":1,"src":"user","dst":"server","msg":"\"a\\\"b\\\\c\\nd\""}|}
    (Trace.Emit
       {
         round = 1;
         src = Trace.User;
         dst = Trace.Server;
         msg = Msg.Text "a\"b\\c\nd";
       });
  check {|{"ev":"resume","index":0,"slots":7}|}
    (Trace.Resume { index = 0; slots = 7 })

(* Committed golden files: parse back, revalidate, re-serialize
   byte-identically. *)
let golden_path name = Filename.concat "golden" (name ^ ".jsonl")

let golden_roundtrip (c : Trace_cases.case) () =
  let path = golden_path c.name in
  match Obs.Jsonl.of_file path with
  | Error e -> Alcotest.fail e
  | Ok events ->
      (match Trace.check Trace.standard events with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: invariants: %s" c.name msg);
      Alcotest.(check (list string))
        "re-serialization is byte-identical"
        (Obs.Jsonl.read_lines path)
        (Obs.Jsonl.to_lines events)

(* Attribution: every Round_start is charged to exactly one span, so
   per-candidate rounds sum to the run totals — pinned on the goldens
   (e3_maze is the multi-run file). *)
let attribution_sums (c : Trace_cases.case) () =
  let events =
    match Obs.Jsonl.of_file (golden_path c.name) with
    | Ok ev -> ev
    | Error e -> Alcotest.fail e
  in
  let runs = Obs.Span.of_events events in
  Alcotest.(check bool) "at least one run" true (runs <> []);
  List.iter
    (fun (r : Obs.Span.run) ->
      let spans_sum =
        List.fold_left (fun acc (s : Obs.Span.span) -> acc + s.rounds) 0 r.spans
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: span rounds sum to run total" c.name)
        r.rounds spans_sum)
    runs;
  let ledger = Obs.Span.ledger runs in
  let total_run_rounds =
    List.fold_left (fun acc (r : Obs.Span.run) -> acc + r.rounds) 0 runs
  in
  Alcotest.(check int) "ledger total matches" total_run_rounds
    ledger.Obs.Span.total_rounds;
  Alcotest.(check int) "winning + wasted = total" ledger.Obs.Span.total_rounds
    (ledger.Obs.Span.winning_rounds + ledger.Obs.Span.wasted_rounds)

let e1_winner_rounds () =
  (* The E1 golden halts; its winning rounds are exactly the rounds
     charged to the winning candidate. *)
  let events =
    match Obs.Jsonl.of_file (golden_path "e1_printing") with
    | Ok ev -> ev
    | Error e -> Alcotest.fail e
  in
  match Obs.Span.of_events events with
  | [ run ] ->
      Alcotest.(check bool) "halted" true run.Obs.Span.halted;
      Alcotest.(check bool) "has a winner" true (run.Obs.Span.winner <> None)
  | runs -> Alcotest.failf "expected one run, got %d" (List.length runs)

(* Trace_diff *)

let diff_identical () =
  let lines = Obs.Jsonl.read_lines (golden_path "e1_printing") in
  match Obs.Trace_diff.lines lines lines with
  | None -> ()
  | Some d -> Alcotest.failf "spurious divergence: %s" d.Obs.Trace_diff.detail

let diff_different_runs () =
  (* Two different reference runs diverge at line 1 (the Run_start). *)
  let a = Obs.Jsonl.read_lines (golden_path "e1_printing") in
  let b = Obs.Jsonl.read_lines (golden_path "e16_crash") in
  match Obs.Trace_diff.lines a b with
  | Some d ->
      Alcotest.(check int) "diverges at line 1" 1 d.Obs.Trace_diff.position;
      Alcotest.(check bool) "kind-aware detail" true
        (String.length d.Obs.Trace_diff.detail > 0)
  | None -> Alcotest.fail "distinct traces reported identical"

let diff_field_detail () =
  let ev round = Trace.Round_start { round } in
  match Obs.Trace_diff.events [ ev 1; ev 2 ] [ ev 1; ev 3 ] with
  | Some d ->
      Alcotest.(check int) "position" 2 d.Obs.Trace_diff.position;
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "detail names the field: %s" d.Obs.Trace_diff.detail)
        true
        (contains d.Obs.Trace_diff.detail "round 2 vs 3")
  | None -> Alcotest.fail "no divergence found"

let diff_tail () =
  let ev round = Trace.Round_start { round } in
  match Obs.Trace_diff.events [ ev 1; ev 2 ] [ ev 1 ] with
  | Some d ->
      Alcotest.(check int) "position" 2 d.Obs.Trace_diff.position;
      Alcotest.(check bool) "right side ended" true (d.Obs.Trace_diff.right = None)
  | None -> Alcotest.fail "length mismatch not reported"

(* Bench_gate *)

let gate_metrics name value = { Obs.Bench_gate.name; value }

let sample_metrics =
  [
    gate_metrics "no_sink_overhead_pct" 0.4;
    gate_metrics "jsonl sink (buffer)/overhead_pct" 120.0;
    gate_metrics "untraced replica/ms_per_run" 0.057;
  ]

let gate_identical_passes () =
  let cs =
    Obs.Bench_gate.compare_metrics ~baseline:sample_metrics ~fresh:sample_metrics
      ()
  in
  Alcotest.(check int) "all compared" (List.length sample_metrics)
    (List.length cs);
  Alcotest.(check int) "no regressions" 0
    (List.length (Obs.Bench_gate.regressions cs))

let gate_injected_regression_fails () =
  (* A 50% blowup on a relative (pct) metric must trip the gate. *)
  let fresh =
    List.map
      (fun (m : Obs.Bench_gate.metric) ->
        if m.name = "jsonl sink (buffer)/overhead_pct" then
          { m with Obs.Bench_gate.value = m.value *. 1.5 }
        else m)
      sample_metrics
  in
  let cs = Obs.Bench_gate.compare_metrics ~baseline:sample_metrics ~fresh () in
  let regs = Obs.Bench_gate.regressions cs in
  Alcotest.(check int) "exactly one regression" 1 (List.length regs);
  Alcotest.(check string)
    "the right metric" "jsonl sink (buffer)/overhead_pct"
    (List.hd regs).Obs.Bench_gate.metric;
  let verdict = Obs.Bench_gate.verdict_json cs in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "verdict says fail" true
    (contains verdict "\"verdict\": \"fail\"")

let gate_slack_absorbs_noise () =
  (* Near-zero pct metrics: a big relative move inside the absolute
     slack is noise, not a regression. *)
  Alcotest.(check bool) "0.2 -> 0.9 pct is not a regression" false
    (Obs.Bench_gate.judge ~tol_pct:35. ~slack:10. ~baseline:0.2 ~fresh:0.9);
  Alcotest.(check bool) "120 -> 180 pct is a regression" true
    (Obs.Bench_gate.judge ~tol_pct:35. ~slack:10. ~baseline:120. ~fresh:180.);
  (* Absolute timings: only order-of-magnitude blowups trip the loose
     default. *)
  Alcotest.(check bool) "1.5x on a timing passes" false
    (Obs.Bench_gate.judge ~tol_pct:300. ~slack:0. ~baseline:0.06 ~fresh:0.09);
  Alcotest.(check bool) "5x on a timing fails" true
    (Obs.Bench_gate.judge ~tol_pct:300. ~slack:0. ~baseline:0.06 ~fresh:0.30)

let gate_extraction () =
  let json =
    {|{"seed": 1, "no_sink_overhead_pct": 0.25,
       "results": [
         {"name": "no sink", "ms_per_run": 0.05, "overhead_pct": 0.25},
         {"name": "untraced replica", "ms_per_run": 0.049}
       ]}|}
  in
  match Obs.Json.parse json with
  | Error e -> Alcotest.fail e
  | Ok j ->
      let ms = Obs.Bench_gate.metrics_of_json j in
      let find name =
        List.find_opt (fun (m : Obs.Bench_gate.metric) -> m.name = name) ms
      in
      Alcotest.(check int) "four metrics (seed is not gateable)" 4
        (List.length ms);
      Alcotest.(check bool) "top-level pct extracted" true
        (find "no_sink_overhead_pct" <> None);
      Alcotest.(check bool) "per-result fields extracted" true
        (find "no sink/overhead_pct" <> None
        && find "no sink/ms_per_run" <> None
        && find "untraced replica/ms_per_run" <> None)

let golden_cases f =
  List.map
    (fun (c : Trace_cases.case) -> Alcotest.test_case c.name `Quick (f c))
    Trace_cases.all

let () =
  Alcotest.run "trace-analytics"
    [
      ( "jsonl",
        QCheck_alcotest.to_alcotest prop_jsonl_roundtrip
        :: [ Alcotest.test_case "exact bytes" `Quick exact_bytes ] );
      ("golden-roundtrip", golden_cases golden_roundtrip);
      ( "attribution",
        golden_cases attribution_sums
        @ [ Alcotest.test_case "e1 winner" `Quick e1_winner_rounds ] );
      ( "trace-diff",
        [
          Alcotest.test_case "identical" `Quick diff_identical;
          Alcotest.test_case "different runs" `Quick diff_different_runs;
          Alcotest.test_case "field detail" `Quick diff_field_detail;
          Alcotest.test_case "tail" `Quick diff_tail;
        ] );
      ( "bench-gate",
        [
          Alcotest.test_case "identical passes" `Quick gate_identical_passes;
          Alcotest.test_case "injected 50% fails" `Quick
            gate_injected_regression_fails;
          Alcotest.test_case "slack and tolerances" `Quick
            gate_slack_absorbs_noise;
          Alcotest.test_case "metric extraction" `Quick gate_extraction;
        ] );
    ]
