(** The supervised concurrent session engine.

    Multiplexes thousands of goal-oriented sessions — each a resumable
    {!Goalcom.Exec.Stepper} run — over an event-driven scheduler with
    supervision: restart policies with exponential backoff
    ({!Policy}), per-server-class circuit breakers ({!Breaker}),
    bounded admission with load shedding ({!Admission}), per-session
    round budgets and deadlines, and a deterministic chaos schedule
    ({!Chaos}).

    {b Scheduler.}  Time advances in {e ticks}.  Each tick: chaos
    kills fire, due restarts are retried through their class breaker,
    new arrivals are admitted / queued / shed, queued sessions are
    promoted into free slots, every running session advances by up to
    [quantum] rounds {e in parallel} over the domain pool, and then
    all supervision verdicts (completion judging, wedge detection,
    deadlines, failure handling) are made sequentially in session-id
    order.

    {b Determinism.}  Everything that consumes randomness or mutates
    shared state (admission, breakers, backoff jitter) happens in the
    sequential phase in session-id order; the parallel phase only
    advances disjoint state machines.  A run is therefore bit-identical
    — outcomes, digest and merged trace — for every [jobs] count and
    across repeats with the same seed and chaos schedule.

    {b Tracing.}  When a sink is ambient at {!run} entry, each
    session's events (its incarnations' run events plus the engine's
    [Trace.Supervise] decisions) are buffered per session and replayed
    into the sink in session-id order when the run ends, so
    [Trace.split_runs] on one session's slice segments its
    incarnations exactly as for a single crash-resume run. *)

(** What one session runs: a goal, a user factory (fresh strategy per
    incarnation, all sharing one {!Goalcom.Universal.checkpoint} so
    restarts resume the enumeration where the crash left it), the
    server it talks to, and the per-run execution config.
    [server_class] names the breaker the session trips and obeys. *)
type spec = {
  sname : string;
  server_class : string;
  goal : Goalcom.Goal.t;
  make_user : checkpoint:Goalcom.Universal.checkpoint -> Goalcom.Strategy.user;
  server : Goalcom.Strategy.server;
  exec_config : Goalcom.Exec.config;
}

(** A shared-world session group: [members] are session ids whose
    servers are ports of one shared arbiter (a
    [Goalcom_net.Medium], typically).  Each tick, after the parallel
    quantum and before any supervision verdict, the engine calls
    [arbitrate] for every group with a non-terminal member — on the
    supervising domain, in group list order — so one scheduler tick is
    one arbitration slot.  The contract that keeps multi-user runs
    bit-identical across jobs counts: during the parallel quantum a
    member's server may touch only its own per-member cells of the
    shared state; everything cross-member (winner selection, collision
    feedback, counters) belongs in [arbitrate].  [report] feeds
    supervision observations (e.g. ["deliver"], ["collide"]) into the
    supervise stream attributed to a member session; like every
    supervise hook it is an observer — outcomes never depend on it. *)
type group = {
  gname : string;
  members : int array;
  arbitrate :
    tick:int ->
    report:(session:int -> action:string -> detail:string -> unit) ->
    unit;
}

type config = {
  quantum : int;  (** rounds per session per tick *)
  max_live : int;  (** concurrently running sessions *)
  queue_capacity : int;  (** waiting room (shared by all classes); overflow is shed *)
  arrivals : Arrival.t;  (** how many sessions arrive per tick *)
  classes : (string * int) list;
      (** fair-share [(server_class, weight)] admission classes; see
          {!Admission}.  [[]] = one FIFO queue, as before *)
  round_budget : int;  (** rounds per incarnation before a wedge kill; 0 = off *)
  deadline : int;  (** ticks from arrival to forced termination; 0 = off *)
  max_ticks : int;  (** scheduler runs at most this many ticks *)
  policy : Policy.t;  (** restart policy, shared by all sessions *)
  breaker_threshold : int;  (** consecutive failures tripping a class breaker *)
  breaker_cooldown : int;  (** ticks an open breaker waits before probing *)
}

val config :
  ?quantum:int ->
  ?max_live:int ->
  ?queue_capacity:int ->
  ?arrivals_per_tick:int ->
  ?arrivals:Arrival.t ->
  ?classes:(string * int) list ->
  ?round_budget:int ->
  ?deadline:int ->
  ?max_ticks:int ->
  ?policy:Policy.t ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:int ->
  unit ->
  config
(** Defaults: [quantum = 32], [max_live = 64], [queue_capacity = 4096],
    [arrivals = Arrival.Bang], [classes = \[\]], [round_budget = 0],
    [deadline = 0], [max_ticks = 10_000], [policy = Policy.default],
    [breaker_threshold = 5], [breaker_cooldown = 8].
    [?arrivals_per_tick] is the historical integer knob ([0] = [Bang],
    [k > 0] = [Constant k]); [?arrivals] wins when both are given. *)

val default_config : config

type outcome =
  | Done of { rounds : int; incarnations : int; state : string }
      (** Achieved its goal.  [rounds] spans all incarnations; [state]
          is the achieved goal state — the earliest world view the
          goal's referee accepts ([Msg.to_string]); the crash-restart
          equivalence property pins it equal across interrupted and
          uninterrupted runs. *)
  | Shed  (** refused at admission: queue full *)
  | Gave_up of { incarnations : int }
      (** the restart policy's failure budget ran out *)
  | Deadline_exceeded of { incarnations : int }
  | Unfinished  (** still live when [max_ticks] ran out *)

type report = {
  outcomes : outcome array;  (** indexed by session id *)
  ticks : int;
  completed : int;
  shed : int;
  gave_up : int;
  deadlines : int;
  unfinished : int;
  restarts : int;  (** restart incarnations actually started *)
  trips : int;  (** breaker trips summed over server classes *)
  total_rounds : int;
  p50_rounds : float;  (** median rounds-to-goal over completed sessions *)
  p99_rounds : float;
  p999_rounds : float;
  digest : string;  (** hex digest of all per-session outcomes *)
  checkpoints : Goalcom.Universal.checkpoint array;
      (** each session's final enumeration checkpoint (indexed by id).
          For a [Done] session running a universal user, [saved_index]
          is the index of the last candidate adopted — the one that
          achieved the goal — which is what a warm-start cache records
          for the session's server class. *)
}

val run :
  ?chaos:Chaos.t ->
  ?config:config ->
  ?jobs:int ->
  ?groups:group list ->
  ?on_supervise:
    (tick:int -> session:int -> action:string -> detail:string -> unit) ->
  ?on_tick:(tick:int -> unit) ->
  specs:spec array ->
  seed:int ->
  unit ->
  report
(** Run every session to a terminal outcome (or until [max_ticks]).
    Session [i] runs [specs.(i)]; per-session RNGs are split from
    [seed] in id order up front, so outcomes do not depend on
    scheduling.  [jobs] defaults to
    [Goalcom_par.Pool.default_jobs ()].  [groups] attach shared-world
    arbiters (see {!type:group}); member ids must be in range.

    [on_supervise] observes every supervision decision (the
    [Trace.Supervise] vocabulary) as it is made — whether or not a
    trace sink is ambient — so a live aggregator (a [Rollup]) can
    report fleet stats without the engine retaining any trace.
    [on_tick] fires at the end of each scheduler tick, after the
    sequential supervision phase (a live display's refresh point).
    Both run on the supervising domain in the deterministic sequential
    phase: decisions arrive in (tick, session-id) order for every
    [jobs] count.  They are observers only — outcomes, digest and
    merged trace never depend on them. *)
