(* Tests for the experiment harness: trial runner semantics and the
   experiment registry. *)

open Goalcom
open Goalcom_prelude
open Goalcom_harness

(* A deterministic toy goal for Trial tests. *)
let world =
  World.make ~name:"w"
    ~init:(fun () -> false)
    ~step:(fun _rng got (obs : Io.World.obs) ->
      let got = got || obs.from_user = Msg.Int 1 in
      (got, Io.World.say_user (Msg.Text (if got then "done" else "waiting"))))
    ~view:(fun got -> Msg.Text (if got then "done" else "waiting"))

let goal =
  Goal.make ~name:"toy" ~worlds:[ world ]
    ~referee:(Referee.finite "done" (fun views -> List.mem (Msg.Text "done") views))

let winner =
  Strategy.make ~name:"winner"
    ~init:(fun () -> false)
    ~step:(fun _rng sent (obs : Io.User.obs) ->
      if obs.from_world = Msg.Text "done" then (sent, Io.User.halt_act)
      else (true, Io.User.say_world (Msg.Int 1)))

let loser =
  Strategy.stateless ~name:"loser" (fun (_ : Io.User.obs) -> Io.User.silent)

let flaky =
  (* Succeeds with probability 1/2 per run. *)
  Strategy.make ~name:"flaky"
    ~init:(fun () -> `Undecided)
    ~step:(fun rng state (obs : Io.User.obs) ->
      if obs.from_world = Msg.Text "done" then (state, Io.User.halt_act)
      else begin
        match state with
        | `Undecided ->
            if Rng.bool rng then (`Win, Io.User.say_world (Msg.Int 1))
            else (`Lose, Io.User.silent)
        | `Win -> (`Win, Io.User.say_world (Msg.Int 1))
        | `Lose -> (`Lose, Io.User.silent)
      end)

let idle_server =
  Strategy.stateless ~name:"idle" (fun (_ : Io.Server.obs) -> Io.Server.silent)

let config = Exec.config ~horizon:30 ()

let test_trial_all_succeed () =
  let r = Trial.run ~config ~trials:5 ~seed:1 ~goal ~user:winner ~server:idle_server () in
  Alcotest.(check int) "successes" 5 r.Trial.successes;
  Alcotest.(check (float 1e-9)) "rate" 1.0 r.Trial.success_rate;
  Alcotest.(check int) "rounds recorded" 5 (List.length r.Trial.rounds_to_success);
  Alcotest.(check bool) "mean sane" true (r.Trial.mean_rounds > 0.)

let test_trial_all_fail () =
  let r = Trial.run ~config ~trials:4 ~seed:2 ~goal ~user:loser ~server:idle_server () in
  Alcotest.(check int) "successes" 0 r.Trial.successes;
  Alcotest.(check bool) "mean is nan" true (Float.is_nan r.Trial.mean_rounds)

let test_trial_flaky_rate () =
  let r =
    Trial.run ~config ~trials:60 ~seed:3 ~goal ~user:flaky ~server:idle_server ()
  in
  Alcotest.(check bool) "rate near 1/2" true
    (Float.abs (r.Trial.success_rate -. 0.5) < 0.2)

let test_trial_deterministic () =
  let r1 = Trial.run ~config ~trials:10 ~seed:4 ~goal ~user:flaky ~server:idle_server () in
  let r2 = Trial.run ~config ~trials:10 ~seed:4 ~goal ~user:flaky ~server:idle_server () in
  Alcotest.(check int) "same successes" r1.Trial.successes r2.Trial.successes

let test_trial_success_rate () =
  let rate =
    Trial.success_rate ~config ~trials:5 ~seed:8 ~goal ~user:winner
      ~server:idle_server ()
  in
  Alcotest.(check (float 1e-9)) "always succeeds" 1.0 rate

let test_trial_metrics () =
  let r =
    Trial.run ~config ~collect_metrics:true ~trials:3 ~seed:5 ~goal
      ~user:winner ~server:idle_server ()
  in
  match r.Trial.metrics with
  | None -> Alcotest.fail "metrics requested but absent"
  | Some m ->
      Alcotest.(check int) "one run per trial" 3 m.Goalcom_obs.Metrics.runs;
      Alcotest.(check int) "halt per trial" 3 m.Goalcom_obs.Metrics.halts;
      Alcotest.(check bool) "rounds counted" true
        (m.Goalcom_obs.Metrics.rounds > 0);
      Alcotest.(check bool) "user spoke" true
        (m.Goalcom_obs.Metrics.user_msgs > 0);
      Alcotest.(check bool) "clockless => no timing" true
        (m.Goalcom_obs.Metrics.round_timing = None);
      let plain =
        Trial.run ~config ~trials:3 ~seed:5 ~goal ~user:winner
          ~server:idle_server ()
      in
      Alcotest.(check bool) "no metrics by default" true
        (plain.Trial.metrics = None);
      Alcotest.(check int) "metrics don't perturb the run" plain.Trial.successes
        r.Trial.successes

let test_trial_validation () =
  Alcotest.check_raises "trials"
    (Invalid_argument "Trial.run: trials must be positive (got 0)")
    (fun () ->
      ignore (Trial.run ~config ~trials:0 ~seed:1 ~goal ~user:winner ~server:idle_server ()));
  Alcotest.check_raises "run_par trials"
    (Invalid_argument "Trial.run_par: trials must be positive (got -3)")
    (fun () ->
      ignore
        (Trial.run_par ~config ~trials:(-3) ~seed:1 ~goal ~user:winner
           ~server:idle_server ()));
  Alcotest.check_raises "run_par jobs"
    (Invalid_argument "Trial.run_par: jobs must be positive (got 0)")
    (fun () ->
      ignore
        (Trial.run_par ~config ~jobs:0 ~trials:2 ~seed:1 ~goal ~user:winner
           ~server:idle_server ()))

let test_registry_complete () =
  Alcotest.(check int) "nineteen experiments" 19 (List.length Experiment.all);
  List.iteri
    (fun i (e : Experiment.t) ->
      Alcotest.(check string) "ordered ids" (Printf.sprintf "e%d" (i + 1)) e.id)
    Experiment.all

let test_registry_find () =
  (match Experiment.find "E3" with
  | Some e -> Alcotest.(check string) "case-insensitive" "e3" e.Experiment.id
  | None -> Alcotest.fail "e3 missing");
  Alcotest.(check bool) "unknown" true (Experiment.find "e99" = None)

let test_registry_kinds () =
  let kinds = List.map (fun (e : Experiment.t) -> e.kind) Experiment.all in
  Alcotest.(check int) "eleven tables" 11
    (List.length (List.filter (fun k -> k = Experiment.Table) kinds));
  Alcotest.(check int) "eight figures" 8
    (List.length (List.filter (fun k -> k = Experiment.Figure) kinds));
  Alcotest.(check string) "to_string" "figure"
    (Experiment.kind_to_string Experiment.Figure)

let test_run_e8_shape () =
  (* E8 is cheap; check its table shape and monotone universal column. *)
  match Experiment.find "e8" with
  | None -> Alcotest.fail "e8 missing"
  | Some e ->
      let table = e.Experiment.run ~seed:1 in
      Alcotest.(check int) "five rows" 5 (List.length table.Table.rows);
      let universal_col =
        List.map (fun row -> float_of_string (List.nth row 2)) table.Table.rows
      in
      let rec increasing = function
        | a :: (b :: _ as rest) -> a <= b && increasing rest
        | _ -> true
      in
      Alcotest.(check bool) "universal cost increases with N" true
        (increasing universal_col)

let test_run_e6_shape () =
  match Experiment.find "e6" with
  | None -> Alcotest.fail "e6 missing"
  | Some e ->
      let table = e.Experiment.run ~seed:1 in
      let col i row = int_of_string (List.nth row i) in
      let last = Listx.last table.Table.rows in
      let second_to_last =
        List.nth table.Table.rows (List.length table.Table.rows - 2)
      in
      Alcotest.(check int) "universal flat tail" (col 1 second_to_last)
        (col 1 last);
      Alcotest.(check bool) "uncontrolled grows" true
        (col 4 last > col 4 second_to_last)

let () =
  Alcotest.run "harness"
    [
      ( "trial",
        [
          Alcotest.test_case "all succeed" `Quick test_trial_all_succeed;
          Alcotest.test_case "all fail" `Quick test_trial_all_fail;
          Alcotest.test_case "flaky rate" `Quick test_trial_flaky_rate;
          Alcotest.test_case "deterministic" `Quick test_trial_deterministic;
          Alcotest.test_case "success rate" `Quick test_trial_success_rate;
          Alcotest.test_case "metrics" `Quick test_trial_metrics;
          Alcotest.test_case "validation" `Quick test_trial_validation;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "kinds" `Quick test_registry_kinds;
          Alcotest.test_case "e8 shape" `Quick test_run_e8_shape;
          Alcotest.test_case "e6 shape" `Quick test_run_e6_shape;
        ] );
    ]
