lib/core/exec.ml: Goal Goalcom_prelude History Io List Msg Outcome Rng Strategy World
