(** Plain-text tables and series for experiment output.

    The harness, the CLI and the benchmark driver all report results
    through this module so that every experiment prints the same
    aligned, copy-pasteable tables (and CSV on demand). *)

type t = {
  title : string;
  columns : string list;
  rows : string list list;  (** each row has [List.length columns] cells *)
  notes : string list;  (** free-form footnotes printed under the table *)
}

val make : title:string -> columns:string list -> ?notes:string list ->
  string list list -> t
(** @raise Invalid_argument if a row's width differs from [columns]. *)

val render : t -> string
(** ASCII-art rendering with aligned columns. *)

val to_csv : t -> string
(** Comma-separated rendering (header row first), quoting cells that
    contain commas or quotes. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

(** Cell formatting helpers. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_pct : float -> string
(** [cell_pct 0.87] is ["87.0%"]. *)

val cell_ratio : float -> string
(** [cell_ratio 3.1] is ["3.10x"]. *)
