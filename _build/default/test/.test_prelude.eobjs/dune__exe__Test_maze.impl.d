test/test_maze.ml: Alcotest Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude Grid List Listx Maze Outcome Printf Rng Sensing
