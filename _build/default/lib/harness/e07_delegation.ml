(* E7 / Table 4 — delegation of computation inside the general model:
   the universal user extracts (and verifies) SAT solutions from every
   dialected solver, and verification-based sensing rejects the liar. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers
open Goalcom_goals

let title = "Delegation of computation (SAT) across dialected solvers"

let claim =
  "the Juba–Sudan delegation goal is a special case: verifiability of the \
   answer gives safe sensing, so a universal delegator exists"

let alphabet = 4
let trials = 3

let run ~seed =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Delegation.goal ~alphabet () in
  let config = Exec.config ~horizon:6_000 () in
  let measure label server seed_off =
    let successes = ref 0 and rounds = ref [] and bad = ref [] in
    List.iter
      (fun t ->
        let user = Delegation.universal_user ~alphabet dialects in
        let outcome, history =
          Exec.run_outcome ~config ~goal ~user ~server
            (Rng.make (seed + seed_off + t))
        in
        if outcome.Outcome.achieved then begin
          incr successes;
          rounds := float_of_int (History.length history) :: !rounds
        end;
        bad := float_of_int (Delegation.bad_answers history) :: !bad)
      (Listx.range 0 trials);
    [
      label;
      Table.cell_pct (float_of_int !successes /. float_of_int trials);
      (if !rounds = [] then "-" else Table.cell_float (Stats.mean !rounds));
      Table.cell_float (Stats.mean !bad);
    ]
  in
  let rows =
    List.map
      (fun i ->
        let server = Delegation.server ~alphabet (Enum.get_exn dialects i) in
        measure (Printf.sprintf "solver @ dialect %d" i) server (100 * i))
      (Listx.range 0 alphabet)
    @ [
        measure "lying solver (unhelpful)"
          (Transform.with_dialect (Enum.get_exn dialects 0)
             (Delegation.liar ~alphabet))
          9_000;
      ]
  in
  Table.make ~title:"E7 (Table 4): SAT delegation across dialected solvers"
    ~columns:
      [ "server"; "success"; "mean rounds"; "bad answers caught (mean)" ]
    ~notes:
      [
        "planted 3-CNF, 8 variables, 20 clauses, fresh instance per run";
        "expected shape: 100% on every honest dialect; 0% on the liar, \
         whose every answer is caught by verification";
      ]
    rows
