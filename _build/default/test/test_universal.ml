(* Unit tests for the universal constructions (Theorem 1) and the Levin
   schedule, on toy goals where the right strategy index is known. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata

(* Levin schedule *)

let test_levin_schedule_prefix () =
  let slots = List.of_seq (Seq.take 6 (Levin.schedule ())) in
  let as_pairs = List.map (fun s -> (s.Levin.index, s.Levin.budget)) slots in
  (* Phases: k=0: (0,1); k=1: (0,2),(1,1); k=2: (0,4),(1,2),(2,1). *)
  Alcotest.(check (list (pair int int)))
    "prefix"
    [ (0, 1); (0, 2); (1, 1); (0, 4); (1, 2); (2, 1) ]
    as_pairs

let test_levin_budget_growth () =
  (* Candidate i eventually receives arbitrarily large budgets. *)
  let slots = List.of_seq (Seq.take 100 (Levin.schedule ())) in
  let best i =
    List.fold_left
      (fun acc s -> if s.Levin.index = i then max acc s.Levin.budget else acc)
      0 slots
  in
  Alcotest.(check bool) "candidate 0 grows" true (best 0 >= 256);
  Alcotest.(check bool) "candidate 3 grows" true (best 3 >= 32)

let test_levin_work_before () =
  (* Work before candidate 0 first gets budget 4: slots (0,1),(0,2),(1,1)
     precede (0,4): total 4. *)
  Alcotest.(check int) "work" 4 (Levin.work_before ~index:0 ~budget:4 ());
  Alcotest.(check int) "immediate" 0 (Levin.work_before ~index:0 ~budget:1 ())

let test_levin_round_robin () =
  let slots = List.of_seq (Seq.take 5 (Levin.round_robin ~budget:3 ~width:2 ())) in
  Alcotest.(check (list (pair int int)))
    "cycle"
    [ (0, 3); (1, 3); (0, 3); (1, 3); (0, 3) ]
    (List.map (fun s -> (s.Levin.index, s.Levin.budget)) slots)

let test_levin_validation () =
  Alcotest.check_raises "base" (Invalid_argument "Levin.schedule: base must be positive")
    (fun () ->
      let (_ : Levin.slot Seq.t) = Levin.schedule ~base:0 () in
      ());
  Alcotest.check_raises "width"
    (Invalid_argument "Levin.round_robin: width must be positive") (fun () ->
      let (_ : Levin.slot Seq.t) = Levin.round_robin ~width:0 () in
      ())

(* Toy finite goal: the world wants to hear a magic number k (the server
   index); user strategy i sends i.  Universal must find the right one. *)

let magic_world k =
  World.make ~name:(Printf.sprintf "magic-%d" k)
    ~init:(fun () -> false)
    ~step:(fun _rng got (obs : Io.World.obs) ->
      let got = got || obs.from_user = Msg.Int k in
      (got, Io.World.say_user (Msg.Text (if got then "done" else "no"))))
    ~view:(fun got -> Msg.Text (if got then "done" else "no"))

let magic_goal k =
  Goal.make
    ~name:(Printf.sprintf "magic-%d" k)
    ~worlds:[ magic_world k ]
    ~referee:(Referee.finite "heard" (fun views -> List.mem (Msg.Text "done") views))

let sender i =
  Strategy.make
    ~name:(Printf.sprintf "send-%d" i)
    ~init:(fun () -> ())
    ~step:(fun _rng () (_ : Io.User.obs) -> ((), Io.User.say_world (Msg.Int i)))

let idle_server =
  Strategy.stateless ~name:"idle" (fun (_ : Io.Server.obs) -> Io.Server.silent)

let senders n = Enum.tabulate ~name:"senders" n sender

let done_sensing =
  Sensing.of_predicate ~name:"done" (fun view ->
      List.exists
        (fun e -> e.View.from_world = Msg.Text "done")
        (View.events_rev view))

(* Universal.finite *)

let test_finite_universal_finds_every_target () =
  List.iter
    (fun k ->
      let stats = Universal.new_stats () in
      let user =
        Universal.finite ~stats ~enum:(senders 8) ~sensing:done_sensing ()
      in
      let outcome, _ =
        Exec.run_outcome
          ~config:(Exec.config ~horizon:2000 ())
          ~goal:(magic_goal k) ~user ~server:idle_server (Rng.make (20 + k))
      in
      Alcotest.(check bool) (Printf.sprintf "target %d" k) true
        outcome.Outcome.achieved)
    [ 0; 3; 7 ]

let test_finite_universal_halts_and_is_quickest_on_0 () =
  let user = Universal.finite ~enum:(senders 8) ~sensing:done_sensing () in
  let outcome, history =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:2000 ())
      ~goal:(magic_goal 0) ~user ~server:idle_server (Rng.make 30)
  in
  Alcotest.(check bool) "halted" true outcome.Outcome.halted;
  Alcotest.(check bool) "fast for target 0" true (History.length history < 20)

let test_finite_universal_cost_grows_with_index () =
  let cost k =
    let user = Universal.finite ~enum:(senders 16) ~sensing:done_sensing () in
    let _, history =
      Exec.run_outcome
        ~config:(Exec.config ~horizon:50000 ())
        ~goal:(magic_goal k) ~user ~server:idle_server (Rng.make (40 + k))
    in
    History.length history
  in
  Alcotest.(check bool) "later target costs more" true (cost 12 > cost 1)

let test_finite_universal_custom_schedule () =
  let schedule = Levin.round_robin ~budget:6 ~width:8 () in
  let user =
    Universal.finite ~schedule ~enum:(senders 8) ~sensing:done_sensing ()
  in
  let outcome, _ =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:2000 ())
      ~goal:(magic_goal 5) ~user ~server:idle_server (Rng.make 50)
  in
  Alcotest.(check bool) "achieved" true outcome.Outcome.achieved

let test_finite_universal_stats () =
  let stats = Universal.new_stats () in
  let user = Universal.finite ~stats ~enum:(senders 8) ~sensing:done_sensing () in
  let _ =
    Exec.run
      ~config:(Exec.config ~horizon:2000 ())
      ~goal:(magic_goal 5) ~user ~server:idle_server (Rng.make 60)
  in
  Alcotest.(check bool) "sessions counted" true (stats.Universal.sessions > 1)

let test_finite_universal_empty_enum () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Universal.finite: empty strategy enumeration") (fun () ->
      ignore
        (Universal.finite
           ~enum:(Enum.of_list ~name:"none" ([] : Strategy.user list))
           ~sensing:done_sensing ()))

(* Toy compact goal: the world counts consecutive rounds it heard the
   magic number recently; prefix acceptable iff the user has been saying
   k for the last few rounds (after a burn-in). *)

let compact_world k =
  World.make
    ~name:(Printf.sprintf "compact-magic-%d" k)
    ~init:(fun () -> 0)
    ~step:(fun _rng streak (obs : Io.World.obs) ->
      let streak = if obs.from_user = Msg.Int k then min 1000 (streak + 1) else 0 in
      (streak, Io.World.say_user (Msg.Int streak)))
    ~view:(fun streak -> Msg.Int streak)

let compact_goal k =
  Goal.make
    ~name:(Printf.sprintf "compact-magic-%d" k)
    ~worlds:[ compact_world k ]
    ~referee:
      (Referee.compact "streak-alive" (fun views_rev ->
           match views_rev with
           | Msg.Int streak :: rest -> streak > 0 || List.length rest < 5
           | _ -> true))

let streak_sensing =
  Sensing.of_predicate ~name:"streak-alive" (fun view ->
      match View.latest view with
      | Some { View.from_world = Msg.Int streak; _ } -> streak > 0
      | Some _ -> false
      | None -> true)

let test_compact_universal_settles () =
  List.iter
    (fun k ->
      let stats = Universal.new_stats () in
      let user =
        Universal.compact ~grace:2 ~stats ~enum:(senders 6)
          ~sensing:streak_sensing ()
      in
      let outcome, _ =
        Exec.run_outcome
          ~config:(Exec.config ~horizon:1500 ())
          ~goal:(compact_goal k) ~user ~server:idle_server (Rng.make (70 + k))
      in
      Alcotest.(check bool)
        (Printf.sprintf "settles on %d (stats idx %d)" k stats.Universal.current_index)
        true outcome.Outcome.achieved;
      Alcotest.(check int)
        (Printf.sprintf "settled index is %d" k)
        k
        (stats.Universal.current_index mod 6))
    [ 0; 2; 5 ]

let test_compact_universal_switches_on_negative () =
  let stats = Universal.new_stats () in
  let user =
    Universal.compact ~grace:1 ~stats ~enum:(senders 6) ~sensing:streak_sensing ()
  in
  let _ =
    Exec.run
      ~config:(Exec.config ~horizon:500 ())
      ~goal:(compact_goal 4) ~user ~server:idle_server (Rng.make 80)
  in
  Alcotest.(check bool) "switched at least 4 times" true
    (stats.Universal.switches >= 4)

let test_compact_universal_never_halts () =
  let user =
    Universal.compact ~enum:(senders 3) ~sensing:streak_sensing ()
  in
  let history =
    Exec.run
      ~config:(Exec.config ~horizon:200 ())
      ~goal:(compact_goal 1) ~user ~server:idle_server (Rng.make 90)
  in
  Alcotest.(check bool) "no halt" false (History.halted history)

let test_compact_universal_wraps_finite_class () =
  (* Target index 5 with grace 1 forces at least one full pass; the
     enumeration must wrap rather than run out. *)
  let stats = Universal.new_stats () in
  let user =
    Universal.compact ~grace:1 ~stats ~enum:(senders 3) ~sensing:streak_sensing ()
  in
  let outcome, _ =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:800 ())
      ~goal:(compact_goal 2) ~user ~server:idle_server (Rng.make 91)
  in
  Alcotest.(check bool) "achieved" true outcome.Outcome.achieved

let test_compact_universal_unviable_sensing_fails () =
  (* With always-negative sensing the universal user cycles forever. *)
  let user =
    Universal.compact ~grace:1 ~enum:(senders 6)
      ~sensing:(Sensing.constant Sensing.Negative) ()
  in
  let outcome, _ =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:600 ())
      ~goal:(compact_goal 3) ~user ~server:idle_server (Rng.make 92)
  in
  Alcotest.(check bool) "fails" false outcome.Outcome.achieved

let () =
  Alcotest.run "universal"
    [
      ( "levin",
        [
          Alcotest.test_case "schedule prefix" `Quick test_levin_schedule_prefix;
          Alcotest.test_case "budget growth" `Quick test_levin_budget_growth;
          Alcotest.test_case "work before" `Quick test_levin_work_before;
          Alcotest.test_case "round robin" `Quick test_levin_round_robin;
          Alcotest.test_case "validation" `Quick test_levin_validation;
        ] );
      ( "finite",
        [
          Alcotest.test_case "finds every target" `Quick test_finite_universal_finds_every_target;
          Alcotest.test_case "halts quickly on 0" `Quick test_finite_universal_halts_and_is_quickest_on_0;
          Alcotest.test_case "cost grows with index" `Quick test_finite_universal_cost_grows_with_index;
          Alcotest.test_case "custom schedule" `Quick test_finite_universal_custom_schedule;
          Alcotest.test_case "stats" `Quick test_finite_universal_stats;
          Alcotest.test_case "empty enum" `Quick test_finite_universal_empty_enum;
        ] );
      ( "compact",
        [
          Alcotest.test_case "settles on target" `Quick test_compact_universal_settles;
          Alcotest.test_case "switches on negative" `Quick test_compact_universal_switches_on_negative;
          Alcotest.test_case "never halts" `Quick test_compact_universal_never_halts;
          Alcotest.test_case "wraps finite class" `Quick test_compact_universal_wraps_finite_class;
          Alcotest.test_case "unviable sensing fails" `Quick test_compact_universal_unviable_sensing_fails;
        ] );
    ]
