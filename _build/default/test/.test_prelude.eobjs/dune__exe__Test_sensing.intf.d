test/test_sensing.mli:
