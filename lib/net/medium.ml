open Goalcom

(* All cross-port state lives here; port [i]'s strategy reads and
   writes index [i] only, so concurrent port steps never race.  The
   slot boundary is resolve(), which the session engine calls on the
   supervising domain — see the .mli determinism note. *)
type t = {
  n : int;
  staged : (int * int) option array; (* this slot's attempt per port *)
  feedback : int array; (* 0 quiet, 1 delivered, 2 collided *)
  outbox : (int * int) option array; (* granted frame, pending world delivery *)
  delivered_by : int array;
  mutable slots : int;
  mutable successes : int;
  mutable collisions : int;
  mutable idles : int;
}

let create ~ports =
  if ports < 1 then invalid_arg "Medium.create: need at least one port";
  {
    n = ports;
    staged = Array.make ports None;
    feedback = Array.make ports 0;
    outbox = Array.make ports None;
    delivered_by = Array.make ports 0;
    slots = 0;
    successes = 0;
    collisions = 0;
    idles = 0;
  }

let ports t = t.n

let port t i =
  if i < 0 || i >= t.n then invalid_arg "Medium.port: port out of range";
  Strategy.make
    ~name:(Printf.sprintf "medium-port(%d)" i)
    ~init:(fun () ->
      (* A fresh incarnation starts from a quiet port: whatever a dead
         predecessor staged or was owed is gone. *)
      t.staged.(i) <- None;
      t.feedback.(i) <- 0;
      t.outbox.(i) <- None)
    ~step:(fun _rng () (obs : Io.Server.obs) ->
      let fb = t.feedback.(i) in
      t.feedback.(i) <- 0;
      let out = t.outbox.(i) in
      t.outbox.(i) <- None;
      (match obs.from_user with
      | Msg.Pair (Msg.Int seq, Msg.Int sym) when seq >= 0 ->
          if t.staged.(i) = None then t.staged.(i) <- Some (seq, sym)
      | _ -> ());
      ( (),
        {
          Io.Server.to_user = Msg.Sym fb;
          to_world =
            (match out with
            | Some (seq, sym) -> Msg.Pair (Msg.Int seq, Msg.Int sym)
            | None -> Msg.Silence);
        } ))

let resolve ?report t =
  let tell port action detail =
    match report with Some f -> f ~port ~action ~detail | None -> ()
  in
  let staged =
    Array.to_list (Array.mapi (fun i a -> (i, a)) t.staged)
    |> List.filter_map (fun (i, a) -> Option.map (fun f -> (i, f)) a)
  in
  (match staged with
  | [] -> t.idles <- t.idles + 1
  | [ (i, (seq, sym)) ] ->
      t.successes <- t.successes + 1;
      t.delivered_by.(i) <- t.delivered_by.(i) + 1;
      t.outbox.(i) <- Some (seq, sym);
      t.feedback.(i) <- 1;
      tell i "deliver" (Printf.sprintf "slot=%d seq=%d" t.slots seq)
  | clash ->
      t.collisions <- t.collisions + 1;
      let k = List.length clash in
      List.iter
        (fun (i, _) ->
          t.feedback.(i) <- 2;
          tell i "collide" (Printf.sprintf "slot=%d %d-way" t.slots k))
        clash);
  Array.fill t.staged 0 t.n None;
  t.slots <- t.slots + 1

let slots t = t.slots
let successes t = t.successes
let collisions t = t.collisions
let idles t = t.idles

let delivered t i =
  if i < 0 || i >= t.n then invalid_arg "Medium.delivered: port out of range";
  t.delivered_by.(i)
