(** Strategies: the paper's model of a communicating party.

    A strategy takes an internal state and an incoming message profile
    to a (distribution over) a new state and an outgoing message profile
    (§2).  Here the distribution appears in sampling form: [step] draws
    from it using the supplied generator.  The state type is hidden
    existentially so that heterogeneous strategies can populate one
    enumerable class — exactly what the universal constructions need.

    [init] is a thunk so that strategies are {e restartable}: every
    execution (and every switch of the universal user) instantiates a
    fresh state, even for strategies whose states contain mutable
    structures. *)

type ('obs, 'act) t

val make :
  name:string ->
  init:(unit -> 'state) ->
  step:(Goalcom_prelude.Rng.t -> 'state -> 'obs -> 'state * 'act) ->
  ('obs, 'act) t

val name : ('obs, 'act) t -> string

val rename : string -> ('obs, 'act) t -> ('obs, 'act) t

val stateless : name:string -> ('obs -> 'act) -> ('obs, 'act) t
(** Memoryless deterministic strategy. *)

val stateless_random :
  name:string -> (Goalcom_prelude.Rng.t -> 'obs -> 'act) -> ('obs, 'act) t
(** Memoryless probabilistic strategy. *)

val map_obs : ('obs2 -> 'obs1) -> ('obs1, 'act) t -> ('obs2, 'act) t
(** Pre-compose on observations (e.g. decode a dialect). *)

val map_act : ('act1 -> 'act2) -> ('obs, 'act1) t -> ('obs, 'act2) t
(** Post-compose on actions (e.g. encode a dialect). *)

val switch_after : int -> ('obs, 'act) t -> ('obs, 'act) t -> ('obs, 'act) t
(** [switch_after k first rest] behaves like [first] for the first [k]
    rounds and like a freshly started [rest] from round [k+1] on.  Used
    by the forgiving-goal checker to splice an arbitrary prefix in
    front of a rescuing strategy.  @raise Invalid_argument if [k < 0]. *)

(** A running strategy: the strategy plus its mutable current state. *)
module Instance : sig
  type ('obs, 'act) strategy := ('obs, 'act) t
  type ('obs, 'act) t

  val create : ('obs, 'act) strategy -> ('obs, 'act) t
  (** Fresh state from the strategy's [init]. *)

  val step : Goalcom_prelude.Rng.t -> ('obs, 'act) t -> 'obs -> 'act
  (** Advance the instance by one round. *)

  val restart : ('obs, 'act) t -> unit
  (** Reset to a fresh initial state. *)

  val strategy : ('obs, 'act) t -> ('obs, 'act) strategy
  val rounds : ('obs, 'act) t -> int
  (** Number of steps taken since the last (re)start. *)
end

type user = (Io.User.obs, Io.User.act) t
type server = (Io.Server.obs, Io.Server.act) t
