(** The password goal — why enumeration overhead is {e essentially
    necessary} (§3).

    The {b server} guards a lock with a secret password from a space of
    size [n]; it reports the unlock to the world, forever, once it hears
    the right guess, and gives {e no feedback at all} on wrong guesses.
    Every such server is helpful (the user that knows the password
    succeeds immediately), sensing is safe and viable (the world's
    "unlocked" broadcast), yet {e any} user that is universal for the
    whole class must try, in expectation, about half the password space
    before it can succeed — there is no signal to learn from.  This is
    the natural example showing that the overhead incurred by the
    enumeration in Theorem 1 cannot be avoided in general. *)

open Goalcom
open Goalcom_automata

val server_with_password : int -> Strategy.server
(** [server_with_password w] unlocks on the guess [Int w].
    @raise Invalid_argument if [w < 0]. *)

val server_class : space:int -> Strategy.server Enum.t
(** All servers with passwords [0 .. space-1]. *)

val world : unit -> World.t
(** Records the unlock; view and broadcast are [Text "locked"] or
    [Text "unlocked"]. *)

val goal : unit -> Goal.t

val guesser : int -> Strategy.user
(** The user that guesses one fixed password, then waits (halting when
    the world reports the unlock). *)

val informed_user : int -> Strategy.user
(** Alias of {!guesser} — the user that knows the password. *)

val user_class : space:int -> Strategy.user Enum.t
(** [guesser w] for each candidate password. *)

val sweeper : space:int -> Strategy.user
(** The "smart" single strategy that tries password 0, 1, 2, ... one
    per round — the best any universal user can really do here; its
    cost is still linear in the position of the secret. *)

val sensing : Sensing.t
(** Positive iff the world has broadcast "unlocked". *)

val universal_user :
  ?schedule:Levin.slot Seq.t ->
  ?stats:Universal.stats ->
  space:int ->
  unit ->
  Strategy.user
(** {!Universal.finite} over {!user_class}. *)
