(** Admission control: bounded live set, weighted fair-share queues,
    load shedding.

    At most [max_live] sessions run at once.  Arrivals beyond that
    wait in per-class FIFO queues (a session's class is its
    [server_class]; names without a configured class share the
    implicit ["default"] class) under one shared [queue_capacity];
    arrivals beyond {e that} are shed — refused outright, a terminal
    outcome.

    Queues are served by weighted deficit round-robin: {!promote}
    visits the classes cyclically from a cursor that persists across
    ticks, crediting each class's deficit with its weight per pass and
    spending one credit per admission, so service is proportional to
    weight under contention.  A class whose head is blocked (its
    breaker is open — [try_start] said no) is set aside for the rest
    of the call {e without} stalling the other classes: head-of-line
    blocking is confined to the class.  With a single class of weight
    1 the schedule reduces exactly to the old global FIFO.

    The primitives are split so the engine can interleave its breaker
    gate: check {!has_capacity}, consult the class breaker, then
    {!claim} the slot (or {!enqueue} / shed).  Driven in session-id
    order, the structure's evolution is deterministic. *)

type t

val make :
  ?classes:(string * int) list -> max_live:int -> queue_capacity:int -> unit -> t
(** [classes] are [(name, weight)] pairs; a ["default"] class of
    weight 1 is appended unless one is given.  @raise Invalid_argument
    if [max_live < 1], [queue_capacity < 0], a weight is [< 1], or a
    class name repeats. *)

val has_capacity : t -> bool

val claim : t -> unit
(** Take a live slot.  @raise Invalid_argument when full — callers
    check {!has_capacity} first. *)

val enqueue : t -> cname:string -> int -> bool
(** Join [cname]'s queue ([cname] need not be configured — unknown
    names share the default class); [false] means the shared capacity
    is exhausted — the session is counted shed. *)

val promote : t -> terminal:(int -> bool) -> try_start:(int -> bool) -> unit
(** Serve the queues: drop every leading [terminal] id from every
    class (regardless of capacity), then admit ids in weighted
    round-robin order while {!has_capacity} holds and some class is
    serviceable.  [try_start id] makes the actual admission decision
    (breaker gate + incarnation start + {!claim}); returning [false]
    marks the id's class blocked for the rest of this call.  Callback
    order is deterministic for a deterministic queue state. *)

val release : t -> unit
(** A slot-holding session ended (any outcome); frees its slot. *)

val live : t -> int

val queued : t -> int
(** Total across classes. *)

val queued_in : t -> string -> int
(** One class's backlog ([cname] resolved like {!enqueue}). *)

val shed_count : t -> int
