(** E8 / Figure 4 — the password goal: any universal user pays about half the password space; the informed user pays a constant.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
