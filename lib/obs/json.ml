(* A minimal JSON reader for the observability layer's own files: the
   JSONL trace lines (Jsonl) and the committed BENCH_*.json baselines
   (Bench_gate).  Both vocabularies are produced by this repository, so
   the parser favours clear errors over streaming generality: whole
   value in memory, integers kept exact, objects as assoc lists in
   input order. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse of string

let fail pos msg = raise (Parse (Printf.sprintf "%s at offset %d" msg pos))

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let peek pos = if pos < n then Some s.[pos] else None in
  let rec skip_ws pos =
    match peek pos with
    | Some (' ' | '\t' | '\n' | '\r') -> skip_ws (pos + 1)
    | _ -> pos
  in
  let expect pos c =
    match peek pos with
    | Some c' when c' = c -> pos + 1
    | _ -> fail pos (Printf.sprintf "expected %C" c)
  in
  let literal pos word value =
    let len = String.length word in
    if pos + len <= n && String.sub s pos len = word then (value, pos + len)
    else fail pos (Printf.sprintf "expected %s" word)
  in
  let hex pos c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail pos "bad hex digit"
  in
  (* Code points are emitted raw as single bytes by our writer (the
     traces are byte strings, not unicode text), so \uXXXX decodes to a
     byte when it fits and errors otherwise. *)
  let parse_string pos =
    let b = Buffer.create 16 in
    let rec go pos =
      match peek pos with
      | None -> fail pos "unterminated string"
      | Some '"' -> (Buffer.contents b, pos + 1)
      | Some '\\' -> begin
          match peek (pos + 1) with
          | Some '"' -> Buffer.add_char b '"'; go (pos + 2)
          | Some '\\' -> Buffer.add_char b '\\'; go (pos + 2)
          | Some '/' -> Buffer.add_char b '/'; go (pos + 2)
          | Some 'n' -> Buffer.add_char b '\n'; go (pos + 2)
          | Some 't' -> Buffer.add_char b '\t'; go (pos + 2)
          | Some 'r' -> Buffer.add_char b '\r'; go (pos + 2)
          | Some 'b' -> Buffer.add_char b '\b'; go (pos + 2)
          | Some 'f' -> Buffer.add_char b '\012'; go (pos + 2)
          | Some 'u' ->
              if pos + 5 >= n then fail pos "truncated unicode escape";
              let code =
                (hex pos s.[pos + 2] lsl 12)
                lor (hex pos s.[pos + 3] lsl 8)
                lor (hex pos s.[pos + 4] lsl 4)
                lor hex pos s.[pos + 5]
              in
              if code > 255 then fail pos "unicode escape beyond one byte";
              Buffer.add_char b (Char.chr code);
              go (pos + 6)
          | _ -> fail pos "unknown escape"
        end
      | Some c -> Buffer.add_char b c; go (pos + 1)
    in
    go pos
  in
  let parse_number pos =
    let stop = ref pos in
    let is_float = ref false in
    let continues c =
      match c with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' -> is_float := true; true
      | _ -> false
    in
    while !stop < n && continues s.[!stop] do incr stop done;
    let text = String.sub s pos (!stop - pos) in
    let v =
      if !is_float then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail pos "bad number"
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> begin
            (* An integer too wide for the OCaml int: keep the value. *)
            match float_of_string_opt text with
            | Some f -> Float f
            | None -> fail pos "bad number"
          end
    in
    (v, !stop)
  in
  let rec parse_value pos =
    let pos = skip_ws pos in
    match peek pos with
    | None -> fail pos "empty input"
    | Some 't' -> literal pos "true" (Bool true)
    | Some 'f' -> literal pos "false" (Bool false)
    | Some 'n' -> literal pos "null" Null
    | Some '"' -> begin
        let str, pos = parse_string (pos + 1) in
        (String str, pos)
      end
    | Some ('-' | '0' .. '9') -> parse_number pos
    | Some '[' -> begin
        let pos = skip_ws (pos + 1) in
        if peek pos = Some ']' then (List [], pos + 1)
        else begin
          let rec items acc pos =
            let v, pos = parse_value pos in
            let pos = skip_ws pos in
            match peek pos with
            | Some ',' -> items (v :: acc) (pos + 1)
            | Some ']' -> (List (List.rev (v :: acc)), pos + 1)
            | _ -> fail pos "expected ',' or ']'"
          in
          items [] pos
        end
      end
    | Some '{' -> begin
        let pos = skip_ws (pos + 1) in
        if peek pos = Some '}' then (Obj [], pos + 1)
        else begin
          let member pos =
            let pos = skip_ws pos in
            let pos = expect pos '"' in
            let key, pos = parse_string pos in
            let pos = expect (skip_ws pos) ':' in
            let v, pos = parse_value pos in
            ((key, v), pos)
          in
          let rec members acc pos =
            let kv, pos = member pos in
            let pos = skip_ws pos in
            match peek pos with
            | Some ',' -> members (kv :: acc) (pos + 1)
            | Some '}' -> (Obj (List.rev (kv :: acc)), pos + 1)
            | _ -> fail pos "expected ',' or '}'"
          in
          members [] pos
        end
      end
    | Some c -> fail pos (Printf.sprintf "unexpected %C" c)
  in
  match parse_value 0 with
  | v, pos ->
      let pos = skip_ws pos in
      if pos = n then Ok v
      else Error (Printf.sprintf "trailing input at offset %d" pos)
  | exception Parse msg -> Error msg

let of_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match parse contents with
  | Ok v -> Ok v
  | Error e -> Error (Printf.sprintf "%s: %s" path e)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let string_opt = function String s -> Some s | _ -> None
let int_opt = function Int i -> Some i | _ -> None
let bool_opt = function Bool b -> Some b | _ -> None

let number_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let list_opt = function List vs -> Some vs | _ -> None
