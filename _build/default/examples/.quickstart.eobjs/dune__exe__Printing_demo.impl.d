examples/printing_demo.ml: Char Dialect Enum Exec Format Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude History List Listx Outcome Printing Rng String Universal
