lib/harness/trial.mli: Exec Format Goal Goalcom Strategy
