lib/core/referee.mli: History Msg
