(** Trial runners: repeated executions with derived seeds, aggregated.

    Every experiment reduces to "pair this user with that server on this
    goal, run [n] trials, report success rate and rounds-to-success";
    this module is that reduction. *)

open Goalcom

type result = {
  successes : int;
  trials : int;
  success_rate : float;
  rounds_to_success : float list;
      (** halting round (finite goals) or settling round (compact:
          round of the last referee violation) of the successful
          trials *)
  mean_rounds : float;  (** mean of [rounds_to_success]; [nan] if none *)
  unsafe_halts : int;
      (** trials where the user halted yet the referee rejects — a
          sensing-safety violation (finite goals; always 0 when sensing
          is safe) *)
  metrics : Goalcom_obs.Metrics.summary option;
      (** aggregated over all trials; [Some] iff [collect_metrics] *)
}

val run :
  ?config:Exec.config ->
  ?tail_window:int ->
  ?sink:Trace.sink ->
  ?collect_metrics:bool ->
  ?clock:(unit -> float) ->
  trials:int ->
  seed:int ->
  goal:Goal.t ->
  user:Strategy.user ->
  server:Strategy.server ->
  unit ->
  result
(** Trial [i] runs with an independent generator derived from
    [seed] and pairs the user with world choice [i mod num_worlds]
    (so non-deterministic worlds are cycled).

    [?sink] is installed as the ambient trace sink for the whole batch,
    so one stream carries every trial's events.  [?collect_metrics]
    additionally aggregates a {!Goalcom_obs.Metrics.summary} into the
    result (teeing with [?sink] if both are given); [?clock] enables
    its per-round timing.
    @raise Invalid_argument if [trials <= 0] (message names the entry
    point and the offending value). *)

val run_par :
  ?config:Exec.config ->
  ?tail_window:int ->
  ?sink:Trace.sink ->
  ?collect_metrics:bool ->
  ?clock:(unit -> float) ->
  ?jobs:int ->
  ?pool:Goalcom_par.Pool.t ->
  trials:int ->
  seed:int ->
  goal:Goal.t ->
  user:Strategy.user ->
  server:Strategy.server ->
  unit ->
  result
(** {!run}, fanned across a domain pool — and {e bit-identical} to it
    for every [jobs] count: trial generators are pre-split from [seed]
    in trial order (the exact sequence {!run} consumes), outcomes are
    aggregated in trial order, and each trial's trace events are
    buffered on the executing domain and replayed to [?sink] in trial
    order, so the merged stream equals the sequential one.  The only
    sanctioned divergence is [metrics.round_timing] when [?clock] is
    given: durations are measured on the executing domain (replay
    timing would be garbage), so wall-clock figures differ run to run
    exactly as two sequential runs' would; without [?clock] the metrics
    summary is equal field-for-field.

    Width is [?pool] (reused across calls, takes precedence), else
    [?jobs], else [Pool.default_jobs] ([--jobs] / [GOALCOM_JOBS], 1 by
    default).  If no [?sink] is given but the calling domain has an
    ambient sink installed, that sink receives the replayed events —
    mirroring {!run}, which runs its trials under the caller's ambient
    sink.

    @raise Invalid_argument if [trials <= 0] or [jobs <= 0]. *)

val equal : result -> result -> bool
(** Field-for-field equality (structural; treats the [nan] of an empty
    [mean_rounds] as equal to itself).  Backs the determinism property
    tests comparing {!run_par} against {!run}. *)

val success_rate :
  ?config:Exec.config ->
  ?tail_window:int ->
  trials:int ->
  seed:int ->
  goal:Goal.t ->
  user:Strategy.user ->
  server:Strategy.server ->
  unit ->
  float
(** [(run ...).success_rate] — the one-number view used by tests and
    quick checks. *)

val pp : Format.formatter -> result -> unit
