(** E10 / Figure 5 — transfer goal: with progress sensing the universality overhead is additive in the payload size; the generic Levin construction pays multiplicatively.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
