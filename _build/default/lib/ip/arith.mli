(** Arithmetization of CNF formulas over {!Gf}.

    A clause [l1 ∨ ... ∨ lk] becomes [1 − Π (1 − lit_i(X))] where a
    positive literal of variable v is the coordinate [X_v] and a
    negative one is [1 − X_v]; the formula polynomial is the product of
    its clause polynomials.  On 0/1 points it agrees with boolean
    evaluation, so the number of satisfying assignments is the sum of
    the formula polynomial over the boolean cube — the quantity the
    sum-check protocol verifies. *)

open Goalcom_sat

val clause_eval : Cnf.clause -> Gf.t array -> Gf.t
(** Evaluate a clause polynomial at a field point (array indexed by
    variable, slot 0 unused). *)

val formula_eval : Cnf.t -> Gf.t array -> Gf.t
(** Evaluate the formula polynomial.
    @raise Invalid_argument if the point has the wrong dimension. *)

val degree_bound : Cnf.t -> int
(** An upper bound on the formula polynomial's degree in any single
    variable: the maximum number of clauses mentioning one variable. *)

val count_models_mod : Cnf.t -> int
(** Σ over the boolean cube of the formula polynomial, i.e. the model
    count mod p (exact for formulas with < p models) — brute force,
    for referees and tests.  Exponential in the variable count. *)
