(* Tests for the supervised concurrent session engine: restart
   policies, circuit breakers, admission control, chaos-schedule
   parsing, engine determinism across jobs counts, and the qcheck
   crash-restart equivalence property (a supervised session interrupted
   by kills reaches the same goal state as an uninterrupted run). *)

open Goalcom
open Goalcom_prelude
open Goalcom_session
open Goalcom_harness

(* The container running CI may report a single core; the engine clamps
   its pool width to the hardware, so without this override the
   jobs=2/4 determinism pins would silently all run single-domain. *)
let () = Unix.putenv "GOALCOM_HW_JOBS" "4"

(* --- Policy ----------------------------------------------------------- *)

let test_policy_gives_up () =
  let p = Policy.make ~max_restarts:2 () in
  Alcotest.(check bool) "1st failure retries" false (Policy.gives_up p ~failures:1);
  Alcotest.(check bool) "2nd failure retries" false (Policy.gives_up p ~failures:2);
  Alcotest.(check bool) "3rd failure gives up" true (Policy.gives_up p ~failures:3)

let test_policy_backoff_growth () =
  (* jitter 0: the schedule is the bare capped exponential. *)
  let p =
    Policy.make ~backoff_base:1 ~backoff_factor:2.0 ~backoff_max:16 ~jitter:0.0 ()
  in
  let rng = Rng.make 1 in
  let waits = List.map (fun a -> Policy.backoff p rng ~attempt:a) [ 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check (list int)) "capped exponential" [ 1; 2; 4; 8; 16; 16; 16 ] waits

let test_policy_backoff_jitter_deterministic () =
  let p = Policy.make ~jitter:0.5 () in
  let schedule seed =
    let rng = Rng.make seed in
    List.map (fun a -> Policy.backoff p rng ~attempt:a) [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list int)) "same seed, same jitter" (schedule 7) (schedule 7);
  List.iter
    (fun w -> Alcotest.(check bool) "wait >= 1" true (w >= 1))
    (schedule 11)

(* --- Breaker ---------------------------------------------------------- *)

let test_breaker_lifecycle () =
  let b = Breaker.make ~threshold:2 ~cooldown:3 () in
  let allow tick = fst (Breaker.allow b ~tick) in
  Alcotest.(check bool) "closed allows" true (allow 1);
  Alcotest.(check bool) "no trip yet" true (Breaker.record_failure b ~tick:1 = None);
  Alcotest.(check bool) "trips at threshold" true
    (Breaker.record_failure b ~tick:2 = Some Breaker.Tripped);
  Alcotest.(check bool) "open blocks" false (allow 3);
  Alcotest.(check bool) "open blocks until cooldown" false (allow 4);
  (* cooldown elapsed: one half-open probe is let through *)
  let ok, change = Breaker.allow b ~tick:5 in
  Alcotest.(check bool) "half-open probes" true ok;
  Alcotest.(check bool) "probing change" true (change = Some Breaker.Probing);
  Alcotest.(check bool) "only one probe" false (allow 5);
  Alcotest.(check bool) "probe success recloses" true
    (Breaker.record_success b = Some Breaker.Reclosed);
  Alcotest.(check bool) "closed again" true (allow 6);
  Alcotest.(check int) "one trip counted" 1 (Breaker.trips b)

let test_breaker_probe_failure_reopens () =
  let b = Breaker.make ~threshold:1 ~cooldown:2 () in
  ignore (Breaker.record_failure b ~tick:1);
  let ok, _ = Breaker.allow b ~tick:3 in
  Alcotest.(check bool) "probe allowed" true ok;
  Alcotest.(check bool) "probe failure retrips" true
    (Breaker.record_failure b ~tick:3 = Some Breaker.Tripped);
  Alcotest.(check bool) "open again" false (fst (Breaker.allow b ~tick:4));
  Alcotest.(check int) "two trips" 2 (Breaker.trips b)

let test_breaker_success_resets_consecutive () =
  let b = Breaker.make ~threshold:2 ~cooldown:2 () in
  ignore (Breaker.record_failure b ~tick:1);
  ignore (Breaker.record_success b);
  Alcotest.(check bool) "success broke the streak" true
    (Breaker.record_failure b ~tick:2 = None);
  Alcotest.(check int) "never tripped" 0 (Breaker.trips b)

let test_breaker_disabled () =
  let b = Breaker.make ~threshold:0 ~cooldown:1 () in
  for tick = 1 to 5 do
    ignore (Breaker.record_failure b ~tick)
  done;
  Alcotest.(check bool) "threshold 0 never trips" true (fst (Breaker.allow b ~tick:6));
  Alcotest.(check int) "no trips" 0 (Breaker.trips b)

(* --- Admission -------------------------------------------------------- *)

(* Promote everything promotable, recording the admission order. *)
let promote_all ?(terminal = fun _ -> false) ?(blocked = fun _ -> false) a =
  let order = ref [] in
  Admission.promote a ~terminal ~try_start:(fun id ->
      if blocked id then false
      else begin
        Admission.claim a;
        order := id :: !order;
        true
      end);
  List.rev !order

let test_admission_slots_and_queue () =
  let a = Admission.make ~max_live:2 ~queue_capacity:2 () in
  Alcotest.(check bool) "has capacity" true (Admission.has_capacity a);
  Admission.claim a;
  Admission.claim a;
  Alcotest.(check bool) "full" false (Admission.has_capacity a);
  Alcotest.(check bool) "enqueue 10" true (Admission.enqueue a ~cname:"x" 10);
  Alcotest.(check bool) "enqueue 11" true (Admission.enqueue a ~cname:"x" 11);
  Alcotest.(check bool) "queue full sheds" false (Admission.enqueue a ~cname:"x" 12);
  Alcotest.(check int) "one shed" 1 (Admission.shed_count a);
  Alcotest.(check int) "two queued" 2 (Admission.queued a);
  Admission.release a;
  Alcotest.(check bool) "slot freed" true (Admission.has_capacity a);
  (* one free slot: promote serves exactly the FIFO head *)
  Alcotest.(check (list int)) "fifo order" [ 10 ] (promote_all a);
  Alcotest.(check int) "one left queued" 1 (Admission.queued a)

let test_admission_validation () =
  Alcotest.check_raises "max_live 0"
    (Invalid_argument "Admission.make: max_live must be >= 1") (fun () ->
      ignore (Admission.make ~max_live:0 ~queue_capacity:1 ()));
  Alcotest.check_raises "weight 0"
    (Invalid_argument "Admission.make: class a weight must be >= 1") (fun () ->
      ignore (Admission.make ~classes:[ ("a", 0) ] ~max_live:1 ~queue_capacity:1 ()));
  Alcotest.check_raises "duplicate class"
    (Invalid_argument "Admission.make: duplicate class a") (fun () ->
      ignore
        (Admission.make ~classes:[ ("a", 1); ("a", 2) ] ~max_live:1
           ~queue_capacity:1 ()));
  let a = Admission.make ~max_live:1 ~queue_capacity:0 () in
  Admission.claim a;
  Alcotest.check_raises "claim past capacity"
    (Invalid_argument "Admission.claim: live set full") (fun () ->
      Admission.claim a)

let test_admission_wdrr_weights () =
  (* weight 2 : 1 — service interleaves 2 from [a] per 1 from [b] *)
  let a =
    Admission.make ~classes:[ ("a", 2); ("b", 1) ] ~max_live:6
      ~queue_capacity:16 ()
  in
  List.iter (fun id -> ignore (Admission.enqueue a ~cname:"a" id)) [ 0; 1; 2; 3 ];
  List.iter (fun id -> ignore (Admission.enqueue a ~cname:"b" id)) [ 10; 11; 12 ];
  Alcotest.(check int) "a backlog" 4 (Admission.queued_in a "a");
  Alcotest.(check (list int)) "weighted interleave" [ 0; 1; 10; 2; 3; 11 ]
    (promote_all a);
  Alcotest.(check int) "b keeps its tail" 1 (Admission.queued_in a "b")

let test_admission_blocked_class_no_starvation () =
  (* class [a]'s breaker is open: [b] (and the default class) must keep
     being served — the head-of-line blocking the old single FIFO
     exhibited stays confined to [a]. *)
  let a =
    Admission.make ~classes:[ ("a", 1); ("b", 1) ] ~max_live:8
      ~queue_capacity:16 ()
  in
  List.iter (fun id -> ignore (Admission.enqueue a ~cname:"a" id)) [ 0; 1 ];
  List.iter (fun id -> ignore (Admission.enqueue a ~cname:"b" id)) [ 10; 11 ];
  List.iter (fun id -> ignore (Admission.enqueue a ~cname:"other" id)) [ 20 ];
  let order = promote_all ~blocked:(fun id -> id < 10) a in
  Alcotest.(check (list int)) "b and default served" [ 10; 20; 11 ] order;
  Alcotest.(check int) "a still queued" 2 (Admission.queued_in a "a")

let test_admission_drains_leading_terminals () =
  (* Regression: the old engine popped one dead head per tick, and only
     when a slot was free.  One promote call must drop every leading
     terminal id from every class even with zero capacity. *)
  let a = Admission.make ~max_live:1 ~queue_capacity:8 () in
  Admission.claim a;
  List.iter (fun id -> ignore (Admission.enqueue a ~cname:"x" id)) [ 1; 2; 3 ];
  let tried = ref 0 in
  Admission.promote a
    ~terminal:(fun id -> id < 3)
    ~try_start:(fun _ ->
      incr tried;
      false);
  Alcotest.(check int) "no capacity: nothing tried" 0 !tried;
  Alcotest.(check int) "dead heads gone in one pass" 1 (Admission.queued a)

(* --- Arrival ---------------------------------------------------------- *)

let arrival_of spec =
  match Arrival.of_string spec with
  | Ok a -> a
  | Error e -> Alcotest.fail e

let test_arrival_parse () =
  Alcotest.(check bool) "bang" true (arrival_of "bang" = Arrival.Bang);
  Alcotest.(check bool) "0 is bang" true (arrival_of "0" = Arrival.Bang);
  Alcotest.(check bool) "bare int" true (arrival_of "7" = Arrival.Constant 7);
  Alcotest.(check bool) "constant:N" true
    (arrival_of "constant:3" = Arrival.Constant 3);
  Alcotest.(check bool) "poisson" true (arrival_of "poisson:2.5" = Arrival.Poisson 2.5);
  (match arrival_of "mmpp:1,8:0.2" with
  | Arrival.Mmpp { rates; switch } ->
      Alcotest.(check bool) "mmpp rates" true (rates = [| 1.; 8. |]);
      Alcotest.(check bool) "mmpp switch" true (switch = 0.2)
  | _ -> Alcotest.fail "mmpp did not parse");
  List.iter
    (fun bad ->
      match Arrival.of_string bad with
      | Ok _ -> Alcotest.failf "%S parsed" bad
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "%S error names the module" bad)
            true
            (String.length e > 0))
    [ "-3"; "poisson:-1"; "poisson:x"; "mmpp:1"; "mmpp:1,2:7"; "sometimes" ];
  (* to_string round-trips through of_string *)
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Arrival.to_string a ^ " round-trips")
        true
        (arrival_of (Arrival.to_string a) = a))
    [
      Arrival.Bang;
      Arrival.Constant 5;
      Arrival.Poisson 3.25;
      Arrival.Mmpp { rates = [| 0.5; 12. |]; switch = 0.125 };
    ]

let test_arrival_draws () =
  let draw_seq a ~seed ~ticks ~remaining =
    let rng = Rng.make seed in
    let st = Arrival.start a in
    List.init ticks (fun i -> Arrival.draw a st ~rng ~tick:(i + 1) ~remaining)
  in
  Alcotest.(check (list int)) "bang fires once"
    [ 10; 0; 0 ]
    (draw_seq Arrival.Bang ~seed:1 ~ticks:3 ~remaining:10);
  Alcotest.(check (list int)) "constant"
    [ 3; 3; 3 ]
    (draw_seq (Arrival.Constant 3) ~seed:1 ~ticks:3 ~remaining:5);
  Alcotest.(check (list int)) "constant clamps to remaining"
    [ 2; 2 ]
    (draw_seq (Arrival.Constant 3) ~seed:1 ~ticks:2 ~remaining:2);
  let p1 = draw_seq (Arrival.Poisson 4.) ~seed:42 ~ticks:50 ~remaining:1000 in
  let p2 = draw_seq (Arrival.Poisson 4.) ~seed:42 ~ticks:50 ~remaining:1000 in
  Alcotest.(check (list int)) "poisson deterministic" p1 p2;
  let mean = float_of_int (List.fold_left ( + ) 0 p1) /. 50. in
  Alcotest.(check bool) "poisson mean plausible" true (mean > 2. && mean < 6.);
  let m1 =
    draw_seq (Arrival.Mmpp { rates = [| 0.5; 20. |]; switch = 0.3 }) ~seed:7
      ~ticks:60 ~remaining:1000
  in
  let m2 =
    draw_seq (Arrival.Mmpp { rates = [| 0.5; 20. |]; switch = 0.3 }) ~seed:7
      ~ticks:60 ~remaining:1000
  in
  Alcotest.(check (list int)) "mmpp deterministic" m1 m2;
  Alcotest.(check bool) "mmpp visits both regimes" true
    (List.exists (fun n -> n > 8) m1 && List.exists (fun n -> n <= 2) m1)

(* --- Chaos ------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let chaos_of spec =
  match Chaos.of_string ~alphabet:4 spec with
  | Ok c -> c
  | Error e -> Alcotest.fail e

let test_chaos_parse_and_target () =
  let c = chaos_of "kill@2,5%3=1;crash:10@1..50;burst:0.5@1..20%2=0" in
  Alcotest.(check int) "three directives" 3 (List.length (Chaos.directives c));
  Alcotest.(check bool) "kills its target" true (Chaos.kills_at c ~tick:2 ~id:4);
  Alcotest.(check bool) "and at the later tick" true (Chaos.kills_at c ~tick:5 ~id:7);
  Alcotest.(check bool) "not off-tick" false (Chaos.kills_at c ~tick:3 ~id:4);
  Alcotest.(check bool) "not off-target" false (Chaos.kills_at c ~tick:2 ~id:3);
  (* storm stacks compose per target: id 0 gets crash+burst, id 1 crash only *)
  let name id = Goalcom_faults.Fault.name (Chaos.stack_for c ~id) in
  Alcotest.(check bool) "id 0 gets burst" true (contains (name 0) "burstwin");
  Alcotest.(check bool) "id 1 does not" false (contains (name 1) "burstwin")

let test_chaos_parse_errors () =
  let err spec =
    match Chaos.of_string ~alphabet:4 spec with
    | Ok _ -> Alcotest.failf "%S parsed" spec
    | Error e -> e
  in
  Alcotest.(check bool) "unknown directive named" true
    (contains (err "explode@3") "unknown chaos directive \"explode\"");
  Alcotest.(check bool) "grammar listed" true (contains (err "explode@3") "kill@T1,T2");
  Alcotest.(check bool) "bad window" true
    (contains (err "crash:5@9..2") "window wants 1 <= LO <= HI");
  Alcotest.(check bool) "bad target" true
    (contains (err "kill@2%5=9") "0 <= R < M");
  Alcotest.(check bool) "bad probability" true
    (contains (err "burst:1.5@1..10") "P in [0,1]");
  Alcotest.(check bool) "bad embedded fault stack" true
    (contains (err "fault:bogus:1") "unknown fault")

(* --- Engine ----------------------------------------------------------- *)

(* Tiny standard mix (printing / corridor / open maze) from the E18
   harness, small enough for unit tests. *)
let mix n = E18_chaos_matrix.specs ~sessions:n ()

let test_engine_all_complete () =
  let r = Engine.run ~specs:(mix 12) ~seed:3 () in
  Alcotest.(check int) "all done" 12 r.Engine.completed;
  Alcotest.(check int) "no shed" 0 r.Engine.shed;
  Alcotest.(check int) "no restarts" 0 r.Engine.restarts;
  Array.iter
    (function
      | Engine.Done _ -> ()
      | _ -> Alcotest.fail "non-Done outcome in a calm run")
    r.Engine.outcomes

let test_engine_sheds_overflow () =
  let config = Engine.config ~max_live:1 ~queue_capacity:1 () in
  let r = Engine.run ~config ~specs:(mix 4) ~seed:3 () in
  Alcotest.(check int) "two shed" 2 r.Engine.shed;
  Alcotest.(check int) "two done" 2 r.Engine.completed;
  Alcotest.(check bool) "sheds are terminal" true
    (Array.to_list r.Engine.outcomes
    |> List.filter (fun o -> o = Engine.Shed)
    |> List.length = 2)

let test_engine_adversary_gives_up () =
  let chaos = chaos_of "fault:adversary:999999" in
  let config =
    Engine.config ~round_budget:200 ~breaker_threshold:2
      ~policy:(Policy.make ~max_restarts:1 ~jitter:0.0 ())
      ()
  in
  let r = Engine.run ~chaos ~config ~specs:(mix 3) ~seed:3 () in
  Alcotest.(check int) "all give up" 3 r.Engine.gave_up;
  Alcotest.(check bool) "restarts happened" true (r.Engine.restarts > 0);
  Alcotest.(check bool) "breaker tripped" true (r.Engine.trips > 0)

let test_engine_deadline () =
  let chaos = chaos_of "fault:adversary:999999" in
  let config =
    Engine.config ~deadline:3 ~round_budget:1_000_000
      ~policy:(Policy.make ~max_restarts:1000 ())
      ()
  in
  let r = Engine.run ~chaos ~config ~specs:(mix 2) ~seed:3 () in
  Alcotest.(check int) "deadlines fire" 2 r.Engine.deadlines

let chaos_spec_small = "kill@2%2=0;crash:20@1..200%3=1"

let run_small ~jobs ~seed =
  let chaos = chaos_of chaos_spec_small in
  let config = Engine.config ~quantum:16 ~max_live:8 () in
  Engine.run ~chaos ~config ~jobs ~specs:(mix 20) ~seed ()

let test_engine_deterministic_across_jobs () =
  let record jobs =
    let buf = ref [] in
    let r =
      Trace.with_sink (fun ev -> buf := ev :: !buf) (fun () -> run_small ~jobs ~seed:5)
    in
    (r.Engine.digest, List.rev !buf)
  in
  let d1, t1 = record 1 in
  List.iter
    (fun jobs ->
      let d, t = record jobs in
      Alcotest.(check string) (Printf.sprintf "digest jobs=%d" jobs) d1 d;
      Alcotest.(check bool) (Printf.sprintf "merged trace jobs=%d" jobs) true (t = t1))
    [ 2; 4 ];
  match Trace.check Trace.standard t1 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "merged trace invariant: %s" msg

let test_engine_deterministic_across_repeats () =
  let r1 = run_small ~jobs:2 ~seed:9 in
  let r2 = run_small ~jobs:2 ~seed:9 in
  Alcotest.(check string) "digest" r1.Engine.digest r2.Engine.digest;
  Alcotest.(check bool) "outcomes" true (r1.Engine.outcomes = r2.Engine.outcomes)

(* Fair-share classes + an open-loop arrival process: the determinism
   contract must survive the WDRR scheduler and the Poisson sampler's
   RNG stream, across jobs counts, repeats and chaos. *)
let run_fairshare ?(chaos = "") ~jobs ~seed () =
  let config =
    Engine.config ~quantum:16 ~max_live:4 ~queue_capacity:64
      ~arrivals:(Arrival.Poisson 2.5)
      ~classes:[ ("printing", 3); ("maze-corridor", 1) ]
      ()
  in
  let run () =
    if chaos = "" then Engine.run ~config ~jobs ~specs:(mix 18) ~seed ()
    else Engine.run ~chaos:(chaos_of chaos) ~config ~jobs ~specs:(mix 18) ~seed ()
  in
  run ()

let test_engine_fairshare_deterministic () =
  List.iter
    (fun chaos ->
      let d1 = (run_fairshare ~chaos ~jobs:1 ~seed:13 ()).Engine.digest in
      List.iter
        (fun jobs ->
          let r = run_fairshare ~chaos ~jobs ~seed:13 () in
          Alcotest.(check string)
            (Printf.sprintf "digest chaos=%S jobs=%d" chaos jobs)
            d1 r.Engine.digest)
        [ 2; 4 ];
      let r = run_fairshare ~chaos ~jobs:2 ~seed:13 () in
      Alcotest.(check string)
        (Printf.sprintf "repeat chaos=%S" chaos)
        d1 r.Engine.digest)
    [ ""; chaos_spec_small ]

let test_engine_fairshare_completes () =
  let r = run_fairshare ~jobs:2 ~seed:31 () in
  Alcotest.(check int) "all done" 18 r.Engine.completed;
  Alcotest.(check int) "no shed" 0 r.Engine.shed

(* An [arrivals_per_tick] integer still means what it meant. *)
let test_engine_arrivals_compat () =
  let digest_of config =
    (Engine.run ~config ~jobs:1 ~specs:(mix 8) ~seed:17 ()).Engine.digest
  in
  Alcotest.(check string) "0 = bang"
    (digest_of (Engine.config ~arrivals_per_tick:0 ()))
    (digest_of (Engine.config ~arrivals:Arrival.Bang ()));
  Alcotest.(check string) "k = constant k"
    (digest_of (Engine.config ~arrivals_per_tick:2 ()))
    (digest_of (Engine.config ~arrivals:(Arrival.Constant 2) ()))

(* --- qcheck: crash-restart equivalence (satellite) --------------------

   A supervised session interrupted by chaos kills (a
   helpfulness-preserving fault schedule: the server is untouched, only
   incarnations die) reaches the same goal state — digest-identical
   final world view — as the uninterrupted run, for jobs 1, 2 and 4.
   Restart costs differ; the achieved state must not. *)

let final_state (r : Engine.report) =
  match r.Engine.outcomes.(0) with
  | Engine.Done { state; _ } -> Some state
  | _ -> None

let prop_crash_restart_reaches_same_state =
  QCheck.Test.make ~count:12 ~name:"Engine: killed+restarted = uninterrupted (jobs 1/2/4)"
    QCheck.(pair (int_bound 2) (pair (1 -- 4) (1 -- 4)))
    (fun (family, (k1, k2)) ->
      (* one session of the chosen family: mix order is printing,
         corridor, open-room *)
      let specs = [| E18_chaos_matrix.specs ~sessions:3 () |].(0).(family) in
      let specs = [| specs |] in
      let config =
        Engine.config ~quantum:8
          ~policy:(Policy.make ~max_restarts:50 ~backoff_max:2 ())
          ()
      in
      let baseline = Engine.run ~config ~specs ~seed:21 () in
      let chaos =
        chaos_of (Printf.sprintf "kill@%d,%d" (1 + k1) (1 + k1 + k2))
      in
      match final_state baseline with
      | None -> QCheck.Test.fail_report "baseline did not complete"
      | Some state ->
          List.for_all
            (fun jobs ->
              final_state (Engine.run ~chaos ~config ~jobs ~specs ~seed:21 ())
              = Some state)
            [ 1; 2; 4 ])

let suite =
  [
    ("policy gives up", `Quick, test_policy_gives_up);
    ("policy backoff growth", `Quick, test_policy_backoff_growth);
    ("policy jitter deterministic", `Quick, test_policy_backoff_jitter_deterministic);
    ("breaker lifecycle", `Quick, test_breaker_lifecycle);
    ("breaker probe failure reopens", `Quick, test_breaker_probe_failure_reopens);
    ("breaker success resets streak", `Quick, test_breaker_success_resets_consecutive);
    ("breaker disabled", `Quick, test_breaker_disabled);
    ("admission slots and queue", `Quick, test_admission_slots_and_queue);
    ("admission validation", `Quick, test_admission_validation);
    ("admission wdrr weights", `Quick, test_admission_wdrr_weights);
    ("admission blocked class no starvation", `Quick, test_admission_blocked_class_no_starvation);
    ("admission drains leading terminals", `Quick, test_admission_drains_leading_terminals);
    ("arrival parse", `Quick, test_arrival_parse);
    ("arrival draws", `Quick, test_arrival_draws);
    ("chaos parse and targets", `Quick, test_chaos_parse_and_target);
    ("chaos parse errors", `Quick, test_chaos_parse_errors);
    ("engine calm run completes", `Quick, test_engine_all_complete);
    ("engine sheds overflow", `Quick, test_engine_sheds_overflow);
    ("engine adversary gives up", `Quick, test_engine_adversary_gives_up);
    ("engine deadline", `Quick, test_engine_deadline);
    ("engine deterministic across jobs", `Quick, test_engine_deterministic_across_jobs);
    ("engine deterministic across repeats", `Quick, test_engine_deterministic_across_repeats);
    ("engine fair-share deterministic", `Quick, test_engine_fairshare_deterministic);
    ("engine fair-share completes", `Quick, test_engine_fairshare_completes);
    ("engine arrivals compat", `Quick, test_engine_arrivals_compat);
    QCheck_alcotest.to_alcotest prop_crash_restart_reaches_same_state;
  ]

let () = Alcotest.run "session" [ ("session", suite) ]
