type slot = { index : int; budget : int }

let schedule ?(base = 1) () =
  if base <= 0 then invalid_arg "Levin.schedule: base must be positive";
  (* Phase k emits slots for candidates 0..k with budgets base * 2^(k-i). *)
  let rec phase k () =
    let rec slots i () =
      if i > k then phase (k + 1) ()
      else begin
        let budget = base * (1 lsl (k - i)) in
        Seq.Cons ({ index = i; budget }, slots (i + 1))
      end
    in
    slots 0 ()
  in
  phase 0

let round_robin ?(budget = 1) ~width () =
  if budget <= 0 then invalid_arg "Levin.round_robin: budget must be positive";
  if width <= 0 then invalid_arg "Levin.round_robin: width must be positive";
  let rec go i () =
    Seq.Cons ({ index = i mod width; budget }, go (i + 1))
  in
  go 0

let hinted ~hints tail =
  List.iter
    (fun { index; budget } ->
      if index < 0 then invalid_arg "Levin.hinted: negative index";
      if budget <= 0 then invalid_arg "Levin.hinted: budget must be positive")
    hints;
  (* Prepending keeps the tail untouched: a stale hint costs exactly its
     own budget before the ordinary schedule resumes from its start. *)
  Seq.append (List.to_seq hints) tail

let work_before ?base ~index ~budget () =
  let work = ref 0 in
  let found = ref false in
  let seq = ref (schedule ?base ()) in
  while not !found do
    match !seq () with
    | Seq.Nil -> assert false (* schedule is infinite *)
    | Seq.Cons (slot, rest) ->
        if slot.index = index && slot.budget >= budget then found := true
        else begin
          work := !work + slot.budget;
          seq := rest
        end
  done;
  !work
