examples/password_demo.mli:
