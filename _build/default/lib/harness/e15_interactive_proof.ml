(* E15 / Table 8 — counting delegation via the sum-check protocol:
   interactive verification where no certificate exists.  Honest
   dialected provers universalise; cheating provers (false claim or
   consistent in-round tampering) are rejected and unhelpful. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers
open Goalcom_goals

let title = "Counting delegation (#SAT via sum-check) across provers"

let claim =
  "the predecessor delegation regime (no checkable certificate, \
   interaction required) embeds in the model: sum-check verification \
   gives safe sensing, so a universal verifier exists and cheating \
   provers are unhelpful"

let alphabet = 4
let params = { Counting.num_vars = 6; num_clauses = 10; clause_len = 3 }
let trials = 3

let run ~seed =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Counting.goal ~params ~alphabet () in
  let config = Exec.config ~horizon:4_000 () in
  let measure label server seed_off =
    let successes = ref 0 and rounds = ref [] and restarts = ref [] in
    List.iter
      (fun t ->
        let user = Counting.universal_user ~params ~alphabet dialects in
        let outcome, history =
          Exec.run_outcome ~config ~goal ~user ~server
            (Rng.make (seed + seed_off + t))
        in
        if outcome.Outcome.achieved then begin
          incr successes;
          rounds := float_of_int (History.length history) :: !rounds
        end;
        restarts := float_of_int (Counting.claim_requests history) :: !restarts)
      (Listx.range 0 trials);
    [
      label;
      Table.cell_pct (float_of_int !successes /. float_of_int trials);
      (if !rounds = [] then "-" else Table.cell_float (Stats.mean !rounds));
      Table.cell_float (Stats.mean !restarts);
    ]
  in
  let rows =
    List.map
      (fun i ->
        measure
          (Printf.sprintf "honest prover @ dialect %d" i)
          (Counting.server ~alphabet (Enum.get_exn dialects i))
          (100 * i))
      (Listx.range 0 alphabet)
    @ [
        measure "lying prover (+1 on the count)"
          (Transform.with_dialect (Enum.get_exn dialects 0)
             (Counting.lying_prover ~alphabet ~offset:1))
          9_000;
        measure "tampering prover (round 3)"
          (Transform.with_dialect (Enum.get_exn dialects 0)
             (Counting.tampering_prover ~alphabet ~tamper_round:3 ~offset:5))
          9_500;
      ]
  in
  Table.make
    ~title:"E15 (Table 8): #SAT delegation via sum-check"
    ~columns:
      [ "server"; "success"; "mean rounds"; "protocol (re)starts (mean)" ]
    ~notes:
      [
        Printf.sprintf
          "uniform 3-CNF, %d vars / %d clauses; %d-round sum-check proofs"
          params.Counting.num_vars params.Counting.num_clauses
          params.Counting.num_vars;
        "protocol starts include the universal user's unanswered claim \
         requests during wrong-dialect sessions, so they grow with the \
         dialect index";
        "expected shape: 100% on every honest dialect; 0% on both cheats, \
         whose proofs are rejected and endlessly restarted";
      ]
    rows
