lib/goals/delegation.mli: Dialect Enum Goal Goalcom Goalcom_automata History Levin Sensing Seq Strategy Universal World
