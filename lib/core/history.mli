(** Execution histories.

    A history records, for every round, the six channel messages emitted
    that round, the world-state view after the round, and whether the
    user had halted.  Referees read the world-view sequence; sensing
    reads the user-visible projection ({!View}). *)

module Round : sig
  type t = {
    index : int;  (** 1-based *)
    user_to_server : Msg.t;
    user_to_world : Msg.t;
    server_to_user : Msg.t;
    server_to_world : Msg.t;
    world_to_user : Msg.t;
    world_to_server : Msg.t;
    world_view : Msg.t;  (** world state after this round *)
    user_halted : bool;  (** true from the halting round onwards *)
  }

  val pp : Format.formatter -> t -> unit
end

type t

val make : initial_world_view:Msg.t -> Round.t list -> t
(** [make ~initial_world_view rounds] with rounds in chronological order
    and indices 1, 2, ....  @raise Invalid_argument on bad indices. *)

val initial_world_view : t -> Msg.t
val rounds : t -> Round.t list
(** Chronological. *)

val length : t -> int

val world_views : t -> Msg.t list
(** Initial view followed by the per-round views (chronological;
    length is [length t + 1]). *)

val world_views_rev : t -> Msg.t list
(** Same sequence, most recent first. *)

val halted : t -> bool
(** Did the user halt during this history? *)

val halt_round : t -> int option

val prefix : int -> t -> t
(** First [n] rounds. *)

val trace_events : t -> Trace.event list
(** Post-hoc reconstruction of the engine-level trace of this history:
    the [Round_start], [Emit], [Halt] and [Run_end] events {!Exec.run}
    would have emitted for the same run.  [Run_start] (the config is not
    recorded in a history) and the strategy-internal events (sensing
    verdicts, switches, fault activations) exist only in live traces. *)

val pp : Format.formatter -> t -> unit
