lib/core/symmetric.mli: Exec Goal Goalcom_prelude History Outcome Strategy
