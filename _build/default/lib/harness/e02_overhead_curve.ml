(* E2 / Figure 1 — the cost of universality grows with the position of
   the matching strategy in the enumeration, for both the Levin schedule
   (geometric) and a round-robin schedule (linear), while the informed
   user's cost is flat. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let title = "Rounds-to-success vs. index of the matching dialect (printing)"

let claim =
  "the enumeration overhead grows with the index of the right strategy; an \
   informed user pays a constant"

let alphabet = 8
let doc = [ 5; 2 ]
let trials = 3
let rr_budget = 24

let mean_rounds ~seed ~user_of ~schedule_tag i =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Printing.goal ~docs:[ doc ] ~alphabet () in
  let server = Printing.server ~alphabet (Enum.get_exn dialects i) in
  let config = Exec.config ~horizon:60_000 () in
  let result =
    Trial.run ~config ~trials
      ~seed:(seed + i + Hashtbl.hash schedule_tag)
      ~goal ~user:(user_of ()) ~server ()
  in
  result.Trial.mean_rounds

let run ~seed =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let rows =
    List.map
      (fun i ->
        let levin =
          mean_rounds ~seed ~schedule_tag:"levin"
            ~user_of:(fun () -> Printing.universal_user ~alphabet dialects)
            i
        in
        let rr =
          mean_rounds ~seed ~schedule_tag:"rr"
            ~user_of:(fun () ->
              Printing.universal_user
                ~schedule:(Levin.round_robin ~budget:rr_budget ~width:alphabet ())
                ~alphabet dialects)
            i
        in
        let oracle =
          mean_rounds ~seed ~schedule_tag:"oracle"
            ~user_of:(fun () ->
              Printing.informed_user ~alphabet (Enum.get_exn dialects i))
            i
        in
        [
          Table.cell_int i;
          Table.cell_float levin;
          Table.cell_float rr;
          Table.cell_float oracle;
          Table.cell_ratio (levin /. oracle);
        ])
      (Listx.range 0 alphabet)
  in
  Table.make
    ~title:"E2 (Figure 1): overhead vs. index of the matching dialect"
    ~columns:
      [ "index"; "levin rounds"; "round-robin rounds"; "oracle rounds"; "levin/oracle" ]
    ~notes:
      [
        "expected shape: oracle flat; round-robin linear in index; levin \
         geometric in index";
      ]
    rows
