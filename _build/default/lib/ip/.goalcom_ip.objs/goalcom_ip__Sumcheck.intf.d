lib/ip/sumcheck.mli: Cnf Gf Goalcom_prelude Goalcom_sat
