(* Interactive proofs inside the model: the user delegates #SAT to an
   exponential-time prover and verifies the claim with the sum-check
   protocol — no certificate exists, so verification is necessarily
   interactive, just as in the PSPACE delegation that preceded the
   paper.

   Run with:  dune exec examples/proof_demo.exe *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers
open Goalcom_sat
open Goalcom_ip
open Goalcom_goals

let alphabet = 4
let params = { Counting.num_vars = 6; num_clauses = 10; clause_len = 3 }

let () =
  (* First, the bare protocol. *)
  let rng = Rng.make 7 in
  let cnf = Gen.uniform rng ~num_vars:6 ~num_clauses:10 ~clause_len:3 in
  let count = Arith.count_models_mod cnf in
  Format.printf "formula: %s@." (Cnf.to_string cnf);
  Format.printf "true model count: %d (of 64 assignments)@.@." count;
  let accepted, rounds =
    Sumcheck.run rng cnf ~claimed:count ~prover:Sumcheck.honest_prover
  in
  Format.printf "honest prover, true claim      : accepted=%b after %d rounds@."
    accepted rounds;
  let accepted, rounds =
    Sumcheck.run rng cnf ~claimed:(count + 1) ~prover:Sumcheck.honest_prover
  in
  Format.printf "honest prover, false claim     : accepted=%b after %d round(s)@."
    accepted rounds;
  let accepted, rounds =
    Sumcheck.run rng cnf ~claimed:count
      ~prover:(Sumcheck.tampered_prover ~tamper_round:3 ~offset:9)
  in
  Format.printf "tampered round 3, true claim   : accepted=%b after %d rounds@.@."
    accepted rounds;
  (* Then the protocol mounted inside the model, behind a dialect. *)
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Counting.goal ~params ~alphabet () in
  List.iter
    (fun i ->
      let user = Counting.universal_user ~params ~alphabet dialects in
      let server = Counting.server ~alphabet (Enum.get_exn dialects i) in
      let outcome, history =
        Exec.run_outcome
          ~config:(Exec.config ~horizon:4000 ())
          ~goal ~user ~server (Rng.make (20 + i))
      in
      Format.printf
        "universal verifier vs honest prover @@ dialect %d: achieved=%b in %3d rounds@."
        i outcome.Outcome.achieved (History.length history))
    (Listx.range 0 alphabet);
  let liar =
    Transform.with_dialect (Enum.get_exn dialects 0)
      (Counting.lying_prover ~alphabet ~offset:1)
  in
  let user = Counting.verifier_user ~params ~alphabet (Enum.get_exn dialects 0) in
  let outcome, history =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:500 ())
      ~goal ~user ~server:liar (Rng.make 30)
  in
  Format.printf
    "@.verifier vs lying prover: achieved=%b (%d proofs attempted, all rejected)@."
    outcome.Outcome.achieved
    (Counting.claim_requests history)
