(* E18 — the chaos matrix: goal achievement under supervised concurrency.

   The paper's universal user survives an unreliable server inside one
   run; lib/session scales that claim to a population.  Thousands of
   sessions — printing and maze goals, universal users resuming from
   checkpoints — are multiplexed over the supervised engine while a
   deterministic chaos schedule kills incarnations, crashes and
   blackholes servers, and floods admission.  The matrix reports, per
   chaos condition, how much of the population still reaches its goal,
   what the supervision layer paid (restarts, breaker trips, give-ups,
   shed arrivals), and the p50/p99 rounds-to-goal — and every cell is a
   pure function of (seed, schedule): same digest across repeats and
   across jobs counts. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals
module Session = Goalcom_session
module Warm = Goalcom_compile.Warm

let title = "Chaos matrix: goal completion under supervised concurrency"

let claim =
  "universality survives the move from one run to a population: under \
   crash storms, burst loss, blackouts and adversarial budgets, \
   supervised universal sessions restart from checkpoints and still \
   reach their goals, admission sheds overload instead of collapsing, \
   and the whole matrix is bit-identical across repeats and jobs counts"

(* Chaos specs parse faults against the larger of the two alphabets in
   the mix (corrupting symbols modulo 6 keeps printing messages, drawn
   from a 4-symbol dialect, inside the channel alphabet). *)
let alphabet_max = 6

(* --- the session mix -------------------------------------------------- *)

let printing_alphabet = 4
let printing_doc = [ 4; 2 ]
let maze_alphabet = 6

let corridor =
  Maze.scenario
    ~blocked:[ (0, 1); (1, 1); (2, 1); (3, 1); (0, 2); (1, 2) ]
    ~width:5 ~height:3 ~start:(0, 0) ~target:(2, 2) ()

let open_room =
  Maze.scenario ~width:4 ~height:4 ~start:(0, 0) ~target:(3, 3) ()

let printing_horizon =
  let session = (2 * List.length printing_doc) + 14 in
  (8 * Levin.work_before ~index:(printing_alphabet - 1) ~budget:session ())
  + 4_000

let maze_horizon = 6_000

(* The winning candidate depends on the server's dialect, which cycles
   within each family — so warm-start entries key on class + dialect,
   finer than the breaker class the engine supervises on. *)
let warm_class i =
  match i mod 3 with
  | 0 -> Printf.sprintf "printing/d%d" (i / 3 mod printing_alphabet)
  | 1 -> Printf.sprintf "maze-corridor/d%d" (i / 3 mod maze_alphabet)
  | _ -> Printf.sprintf "maze-open/d%d" (i / 3 mod maze_alphabet)

(* Session [i]'s candidate enumeration (what warm hints index into). *)
let users_of i =
  match i mod 3 with
  | 0 ->
      Printing.user_class ~alphabet:printing_alphabet
        (Dialect.enumerate_rotations ~size:printing_alphabet)
  | family ->
      let scenario = if family = 1 then corridor else open_room in
      Maze.user_class ~alphabet:maze_alphabet ~scenario
        (Dialect.enumerate_rotations ~size:maze_alphabet)

let schedule_of ~warm ~enum ~server_class =
  match warm with
  | None -> None
  | Some store -> (
      match Warm.hints ~enum ~server_class store with
      | [] -> None
      | hints -> Some (Levin.hinted ~hints (Levin.schedule ())))

(* Session [i] cycles through three goal families (printing, corridor
   maze, open-room maze) and, within a family, through the server
   dialects — so every chaos target pattern (%M=R) cuts across goals
   and dialects alike.  With [warm], a validated hint for the session's
   class+dialect becomes a prepended Levin slot (hints are resolved
   here, once per spec, not per incarnation). *)
let spec_of ?warm i : Session.Engine.spec =
  let schedule =
    schedule_of ~warm ~enum:(users_of i) ~server_class:(warm_class i)
  in
  match i mod 3 with
  | 0 ->
      let dialects = Dialect.enumerate_rotations ~size:printing_alphabet in
      let server =
        Printing.server ~alphabet:printing_alphabet
          (Enum.get_exn dialects (i / 3 mod printing_alphabet))
      in
      {
        sname = Printf.sprintf "s%d/printing" i;
        server_class = "printing";
        goal = Printing.goal ~docs:[ printing_doc ] ~alphabet:printing_alphabet ();
        make_user =
          (fun ~checkpoint ->
            Printing.universal_user ?schedule ~checkpoint
              ~alphabet:printing_alphabet dialects);
        server;
        exec_config = Exec.config ~horizon:printing_horizon ();
      }
  | family ->
      let scenario, sname = if family = 1 then (corridor, "corridor") else (open_room, "open") in
      let dialects = Dialect.enumerate_rotations ~size:maze_alphabet in
      let server =
        Maze.server ~alphabet:maze_alphabet
          (Enum.get_exn dialects (i / 3 mod maze_alphabet))
      in
      {
        sname = Printf.sprintf "s%d/maze-%s" i sname;
        server_class = "maze-" ^ sname;
        goal = Maze.goal ~scenarios:[ scenario ] ~alphabet:maze_alphabet ();
        make_user =
          (fun ~checkpoint ->
            Universal.finite ?schedule ~checkpoint
              ~enum:(Maze.user_class ~alphabet:maze_alphabet ~scenario dialects)
              ~sensing:Maze.sensing ());
        server;
        exec_config = Exec.config ~horizon:maze_horizon ();
      }

let specs ?warm ~sessions () = Array.init sessions (spec_of ?warm)

(* The budget a warm hint should carry: the winner achieved the goal
   with world progress accumulated across its {e revisited} slots
   (Levin reruns every candidate each phase), so the budget of the slot
   it happened to win in understates what a single contiguous session
   needs from scratch.  Sum the budgets of every slot of the winning
   candidate up to and including the winning one (position
   [saved_slots]; earlier positions are the exhausted slots). *)
let hint_budget ~card sched ~slots ~index =
  let reduce i = match card with Some c when c > 0 -> i mod c | _ -> i in
  let target = reduce index in
  let rec go p s acc =
    if p > slots then acc
    else
      match s () with
      | Seq.Nil -> acc
      | Seq.Cons (slot, tl) ->
          let acc =
            if reduce slot.Levin.index = target then acc + slot.Levin.budget
            else acc
          in
          go (p + 1) tl acc
  in
  max 1 (go 0 sched 0)

(* Harvest warm-start entries from a finished run: every [Done]
   session's checkpoint pins the winning candidate ([saved_index]) and
   how far down the schedule it sat.  Later sessions of the same
   class+dialect supersede earlier ones (same winner, so this is a
   no-op dedup). *)
let warm_entries ?warm (report : Session.Engine.report) =
  let entries = ref (match warm with Some (Ok es) -> es | _ -> []) in
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Session.Engine.Done _ ->
          let ck = report.Session.Engine.checkpoints.(i) in
          let enum = users_of i in
          let server_class = warm_class i in
          let sched =
            match schedule_of ~warm ~enum ~server_class with
            | Some s -> s
            | None -> Levin.schedule ()
          in
          let budget =
            hint_budget ~card:(Enum.cardinality enum) sched
              ~slots:ck.Universal.saved_slots ~index:ck.Universal.saved_index
          in
          entries :=
            Warm.record !entries
              {
                Warm.server_class;
                enum = Enum.name enum;
                index = ck.Universal.saved_index;
                budget;
              }
      | _ -> ())
    report.Session.Engine.outcomes;
  !entries

(* --- the matrix ------------------------------------------------------- *)

type condition = {
  cname : string;
  chaos_spec : string;
  econfig : Session.Engine.config;
}

let base_config ?(max_live = 256) ?(queue_capacity = 1_000_000)
    ?(round_budget = 0) ?(deadline = 0) () =
  Session.Engine.config ~quantum:32 ~max_live ~queue_capacity ~round_budget
    ~deadline ~max_ticks:200_000 ()

let conditions () =
  [
    { cname = "baseline"; chaos_spec = ""; econfig = base_config () };
    (* a fifth of the population loses its incarnation at ticks 2 and 4
       (32 and 96 rounds in); a third also has its server state wiped
       every 25 in-window rounds — crash-resume inside the run,
       checkpoint-resume above it. *)
    {
      cname = "crash-storm";
      chaos_spec = "kill@2,4%5=0;crash:25@1..800%3=1";
      econfig = base_config ();
    };
    (* heavy loss on half the population for the first 150 rounds of
       every incarnation, plus a total outage window on a tenth. *)
    {
      cname = "burst-loss";
      chaos_spec = "burst:0.25@1..150%2=0;blackout@1..40%10=3";
      econfig = base_config ();
    };
    (* an unbounded adversary starves a fifth of the population: those
       sessions cannot win, so the round budget wedge-kills each
       incarnation and the restart policy gives up — the supervision
       layer converts a hopeless run into a bounded spend. *)
    {
      cname = "adversary";
      chaos_spec = "fault:adversary:999999%5=2";
      econfig = base_config ~round_budget:1_200 ();
    };
    (* no faults, not enough room: a small live set over a small queue;
       admission sheds the overflow instead of queueing unboundedly. *)
    {
      cname = "overload";
      chaos_spec = "";
      econfig = base_config ~max_live:64 ~queue_capacity:256 ();
    };
  ]

let chaos_of spec =
  match Session.Chaos.of_string ~alphabet:alphabet_max spec with
  | Ok c -> c
  | Error e -> invalid_arg ("E18_chaos_matrix: " ^ e)

let run_condition ?warm ?jobs ~sessions ~seed cond =
  Session.Engine.run ~chaos:(chaos_of cond.chaos_spec) ~config:cond.econfig
    ?jobs ~specs:(specs ?warm ~sessions ()) ~seed ()

(* Sessions per condition: 2000 (a 10k-session matrix) by default;
   GOALCOM_E18_SESSIONS scales the whole matrix down for smoke runs. *)
let sessions_default () =
  match Sys.getenv_opt "GOALCOM_E18_SESSIONS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> invalid_arg "GOALCOM_E18_SESSIONS wants a positive integer")
  | None -> 2_000

let digest_prefix d = String.sub d 0 (min 12 (String.length d))

let run ~seed =
  let sessions = sessions_default () in
  let rows =
    List.mapi
      (fun k cond ->
        let r = run_condition ~sessions ~seed:(seed + (100 * k)) cond in
        let total = Array.length r.Session.Engine.outcomes in
        [
          cond.cname;
          (if cond.chaos_spec = "" then "-" else cond.chaos_spec);
          Table.cell_int total;
          Table.cell_pct (float_of_int r.Session.Engine.completed /. float_of_int total);
          Table.cell_int r.Session.Engine.shed;
          Table.cell_int r.Session.Engine.restarts;
          Table.cell_int r.Session.Engine.trips;
          Table.cell_int r.Session.Engine.gave_up;
          Table.cell_float ~decimals:0 r.Session.Engine.p50_rounds;
          Table.cell_float ~decimals:0 r.Session.Engine.p99_rounds;
          digest_prefix r.Session.Engine.digest;
        ])
      (conditions ())
  in
  Table.make
    ~title:"E18: chaos matrix — supervised sessions under fault schedules"
    ~columns:
      [
        "condition"; "chaos schedule"; "sessions"; "done"; "shed"; "restarts";
        "trips"; "give-ups"; "p50 rds"; "p99 rds"; "digest";
      ]
    ~notes:
      [
        "population: printing / corridor-maze / open-maze universal \
         sessions (round-robin), server dialects cycled within each \
         family; checkpointed enumeration makes restarts resume, not \
         rewind";
        "digest covers every per-session outcome; it is identical across \
         repeats and across --jobs 1/2/4 (the determinism the chaos \
         harness pins)";
        Printf.sprintf
          "sessions per condition = %d (set GOALCOM_E18_SESSIONS to scale \
           the matrix)"
          sessions;
      ]
    rows
