examples/password_demo.ml: Exec Format Goalcom Goalcom_goals Goalcom_prelude History List Password Rng
