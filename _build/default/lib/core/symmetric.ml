let as_server user =
  let module I = Strategy.Instance in
  Strategy.make
    ~name:("peer(" ^ Strategy.name user ^ ")")
    ~init:(fun () -> (I.create user, 0))
    ~step:(fun rng (inst, round) (obs : Io.Server.obs) ->
      let round = round + 1 in
      let user_obs =
        {
          Io.User.from_server = obs.Io.Server.from_user;
          from_world = obs.Io.Server.from_world;
          round;
        }
      in
      let act = I.step rng inst user_obs in
      ( (inst, round),
        {
          Io.Server.to_user = act.Io.User.to_server;
          to_world = act.Io.User.to_world;
        } ))

let run_peers ?config ?tail_window ~goal ~peer_a ~peer_b rng =
  Exec.run_outcome ?config ?tail_window ~goal ~user:peer_a
    ~server:(as_server peer_b) rng
