lib/goals/control.mli: Dialect Enum Goal Goalcom Goalcom_automata Sensing Strategy Universal World
