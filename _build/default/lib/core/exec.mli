(** The synchronous execution engine (§2).

    Rounds are numbered from 1.  In round [r] every party simultaneously
    observes the messages emitted for it in round [r-1] (silence in
    round 1) and emits its round-[r] messages.  After the user halts it
    emits silence forever; execution continues for [drain] extra rounds
    so in-flight messages (e.g. the user's final answer to the world)
    are delivered and reflected in the world state, then stops.

    Compact goals never halt: the run is truncated at [horizon]. *)

type config = {
  horizon : int;  (** maximum number of rounds; must be positive *)
  drain : int;  (** extra rounds executed after the user halts *)
  world_choice : int;  (** which non-deterministic world to couple *)
}

val config : ?horizon:int -> ?drain:int -> ?world_choice:int -> unit -> config
(** Defaults: [horizon = 1000], [drain = 2], [world_choice = 0]. *)

val run :
  ?config:config ->
  goal:Goal.t ->
  user:Strategy.user ->
  server:Strategy.server ->
  Goalcom_prelude.Rng.t ->
  History.t
(** Execute the coupled system and return its history.  The generator
    is split into independent streams for the three parties, so a
    party's randomness does not depend on the others' sampling order. *)

val run_outcome :
  ?config:config ->
  ?tail_window:int ->
  goal:Goal.t ->
  user:Strategy.user ->
  server:Strategy.server ->
  Goalcom_prelude.Rng.t ->
  Outcome.t * History.t
(** {!run} followed by {!Outcome.judge}. *)

val success_rate :
  ?config:config ->
  ?tail_window:int ->
  trials:int ->
  goal:Goal.t ->
  user:Strategy.user ->
  server:Strategy.server ->
  Goalcom_prelude.Rng.t ->
  float
(** Fraction of [trials] independent runs that achieve the goal. *)
