lib/harness/e04_levin_overhead.mli: Goalcom_prelude
