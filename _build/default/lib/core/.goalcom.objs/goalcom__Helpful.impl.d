lib/core/helpful.ml: Enum Exec Goal Goalcom_automata Goalcom_prelude List Listx Outcome Rng
