test/test_password.ml: Alcotest Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude Helpful History List Listx Msg Outcome Password Printf Rng Sensing Strategy
