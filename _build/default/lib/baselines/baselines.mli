(** Baseline (non-universal) users — the comparators in every experiment.

    - {!fixed}: commits to one strategy of the class (typically the
      canonical dialect) and never adapts: the "components designed
      together" assumption that the paper drops.
    - {!oracle}: is told the right strategy — the informed lower bound
      on cost that the universal user's overhead is measured against.
    - {!random_actions}: sanity floor.
    - {!blind_round_robin}: enumeration {e without sensing} — cycles
      through the class on a fixed quantum regardless of feedback and
      never halts; shows that enumeration alone, without safe sensing,
      does not yield a (finite-goal) universal user. *)

open Goalcom
open Goalcom_automata

val fixed : Strategy.user Enum.t -> Strategy.user
(** Strategy 0 of the class, renamed.  @raise Invalid_argument if the
    enumeration is empty. *)

val oracle : Strategy.user Enum.t -> int -> Strategy.user
(** [oracle class i] is strategy [i] (the one that matches the server
    the experiment will pair it with). *)

val random_actions :
  alphabet:int -> ?halt_prob:float -> unit -> Strategy.user
(** Sends a uniformly random command symbol to the server each round
    and halts with probability [halt_prob] (default 0.01) per round. *)

val blind_round_robin :
  ?quantum:int -> Strategy.user Enum.t -> Strategy.user
(** Cycles through the class, [quantum] (default 20) rounds per
    strategy, ignoring all feedback, never halting.
    @raise Invalid_argument on an empty enumeration or bad quantum. *)
