(** Parameter sweeps fanned across a domain pool.

    The experiment layer's outermost loops — "for each dialect-class
    size", "for each fault spec", "for each (goal, server) cell" — are
    embarrassingly parallel: every point is an independent computation
    with its own derived seed.  This module is the thin bridge from
    those grids to [Goalcom_par.Pool]: build the point list, {!map} a
    point runner over it, get results back {e in point order} whatever
    the domain count.

    Determinism discipline: derive each point's seed from the point
    itself (or pre-split a master generator in point order) {e before}
    calling {!map} — never sample inside the point function from a
    shared generator. *)

val map : ?jobs:int -> ?pool:Goalcom_par.Pool.t -> ('a -> 'b) -> 'a list -> 'b list
(** Ordered parallel map: [map f points] runs [f] on every point across
    the pool and returns the results in input order.  Width selection
    as everywhere: [?pool] (reused across sweeps, takes precedence),
    else [?jobs], else [Goalcom_par.Pool.default_jobs ()].  The first
    exception raised by a point is re-raised.
    @raise Invalid_argument if [jobs <= 0]. *)

val product : 'a list -> 'b list -> ('a * 'b) list
(** Row-major cartesian grid: [product [x1; x2] [y1; y2]] is
    [[(x1,y1); (x1,y2); (x2,y1); (x2,y2)]]. *)
