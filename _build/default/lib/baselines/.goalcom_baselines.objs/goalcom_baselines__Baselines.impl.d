lib/baselines/baselines.ml: Enum Goalcom Goalcom_automata Goalcom_prelude Io Msg Printf Rng Strategy
