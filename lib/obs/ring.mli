(** The always-on capture sink: a fixed-capacity ring buffer of
    {!Binary}-encoded events, one shard per domain.

    A deployment that leaves tracing ON wants two properties the JSONL
    sink lacks: bounded memory (keep the {e last} [capacity] events,
    evicting the oldest) and an emission path cheap enough to ignore
    (no formatting, no I/O, no locks).  The ring provides both: each
    domain reaches its own shard through domain-local storage — zero
    synchronisation per event, and a sink observed by many pool workers
    records each worker's stream separately — and each event costs one
    binary encode plus an array store.

    {!events} decodes the retained slots back to ordinary
    {!Goalcom.Trace.event}s (shards concatenated in first-use order,
    each FIFO), so a drained ring feeds [Jsonl], [Trace_diff], [Span],
    [Rollup] and the trace invariants unchanged.  On a single domain
    the drained events are exactly the tail of what a buffering sink
    would have recorded.

    Drain-side functions ({!events}, {!length}, {!evicted}, {!clear})
    are for quiescent moments — after the traced run — they do not
    synchronise with in-flight emissions on other domains. *)

type t

val create : capacity:int -> t
(** A ring retaining at most [capacity] events {e per domain} that
    emits into it.  @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val sink : t -> Goalcom.Trace.sink
(** The recording sink: install ambient ([Trace.with_sink]) or pass as
    [?sink].  Resolves the calling domain's shard on every event, so
    one sink value may be shared across domains. *)

val domain_sink : t -> Goalcom.Trace.sink
(** Like {!sink} but binds the {e calling} domain's shard once, now —
    the per-event path skips the domain-local lookup.  The returned
    closure must only be invoked from the domain that created it; use
    it on single-domain capture paths (the engine replay, [chaos run],
    the bench) and plain {!sink} everywhere else. *)

val events : t -> Goalcom.Trace.event list
(** Decode and concatenate all retained events.  @raise Failure on a
    corrupt slot (impossible unless the ring's memory was corrupted —
    slots are only ever written by {!sink}). *)

val length : t -> int
(** Retained events, over all shards. *)

val evicted : t -> int
(** Events overwritten since creation (or {!clear}), over all shards. *)

val domains : t -> int
(** Shards in use = domains that have emitted into this ring. *)

val clear : t -> unit
(** Empty every shard (capacity and shard registration are kept). *)
