lib/prelude/coding.mli:
