(* E12 / Figure 6 — universality survives imperfect links: a delayed
   (and stuttering) user↔server channel composed with a server is just
   another server, so the constructions apply unchanged; cost grows
   mildly with latency. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers
open Goalcom_goals

let title = "Universal printing through delayed links"

let claim =
  "channel imperfections compose into the server class: the theory is \
   unchanged, the measured cost grows gracefully with link latency"

let alphabet = 4
let doc = [ 4; 2; 6 ]
let trials = 3
let delays = [ 0; 1; 2; 3 ]

let run ~seed =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Printing.goal ~docs:[ doc ] ~alphabet () in
  let config = Exec.config ~horizon:30_000 () in
  let measure ~delay ~user_of seed_off =
    (* Aggregate over every dialect in the class. *)
    let results =
      List.map
        (fun i ->
          let server =
            Channel.delayed ~rounds:delay
              (Printing.server ~alphabet (Enum.get_exn dialects i))
          in
          Trial.run ~config ~trials ~seed:(seed + seed_off + (10 * i) + delay)
            ~goal ~user:(user_of i) ~server ())
        (Listx.range 0 alphabet)
    in
    let rate = Stats.mean (List.map (fun (r : Trial.result) -> r.Trial.success_rate) results) in
    let rounds =
      List.concat_map (fun (r : Trial.result) -> r.Trial.rounds_to_success) results
    in
    (rate, if rounds = [] then Float.nan else Stats.mean rounds)
  in
  let rows =
    List.map
      (fun delay ->
        let u_rate, u_rounds =
          measure ~delay ~user_of:(fun _ -> Printing.universal_user ~alphabet dialects) 0
        in
        let o_rate, o_rounds =
          measure ~delay
            ~user_of:(fun i -> Printing.informed_user ~alphabet (Enum.get_exn dialects i))
            1000
        in
        [
          Table.cell_int delay;
          Table.cell_pct u_rate;
          Table.cell_float u_rounds;
          Table.cell_pct o_rate;
          Table.cell_float o_rounds;
        ])
      delays
  in
  Table.make
    ~title:"E12 (Figure 6): link latency vs. success and cost (printing)"
    ~columns:
      [ "delay (each way)"; "universal ok"; "universal rounds"; "oracle ok"; "oracle rounds" ]
    ~notes:
      [
        "delay k adds 2k rounds to every command/feedback round trip";
        "expected shape: success stays at 100%; rounds grow with the delay \
         (longer sessions needed before sensing can confirm)";
      ]
    rows
