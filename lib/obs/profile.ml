open Goalcom

(* Profile exports: spans rendered to Chrome's trace-event JSON (open
   chrome://tracing or https://ui.perfetto.dev and load the file) and
   to CSV.  Traces carry no wall clock by design, so the timeline uses
   round numbers as deterministic logical time: one round = one
   microsecond tick, [ts] = first round, [dur] = rounds.  Runs map to
   threads (tid = 1-based run ordinal) of a single process. *)

let buf_add_json_str b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let span_name (s : Span.span) =
  match s.Span.index with
  | None -> "uninstrumented"
  | Some i -> Printf.sprintf "candidate %d" i

let instant_name (ev : Trace.event) =
  match ev with
  | Trace.Switch { from_index; to_index; attempt; _ } ->
      if from_index = to_index then
        Some (Printf.sprintf "retry #%d (attempt %d)" to_index attempt)
      else Some (Printf.sprintf "switch #%d->#%d" from_index to_index)
  | Trace.Session { index; budget; _ } ->
      Some (Printf.sprintf "session #%d (budget %d)" index budget)
  | Trace.Resume { index; slots } ->
      Some (Printf.sprintf "resume #%d (%d slots)" index slots)
  | Trace.Fault { fault; _ } -> Some ("fault " ^ fault)
  | Trace.Halt _ -> Some "halt"
  | Trace.Violation _ -> Some "violation"
  | _ -> None

let event_round (ev : Trace.event) =
  match ev with
  | Trace.Switch { round; _ }
  | Trace.Session { round; _ }
  | Trace.Fault { round; _ }
  | Trace.Halt { round }
  | Trace.Violation { round } ->
      Some round
  | Trace.Resume _ -> Some 0
  | _ -> None

let add_record b ~first fmt =
  if not !first then Buffer.add_string b ",\n";
  first := false;
  Buffer.add_string b "    ";
  Printf.ksprintf (Buffer.add_string b) fmt

let chrome_of_events events =
  let segments = Trace.split_runs events in
  let runs = List.map Span.run_of_events segments in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  let first = ref true in
  add_record b ~first
    "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"goalcom\"}}";
  List.iteri
    (fun i (run : Span.run) ->
      let tid = i + 1 in
      let tname = Buffer.create 64 in
      buf_add_json_str tname
        (Printf.sprintf "run %d: %s | %s" tid run.Span.goal run.Span.user);
      add_record b ~first
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}"
        tid (Buffer.contents tname);
      List.iter
        (fun (s : Span.span) ->
          if s.Span.rounds > 0 then begin
            let name = Buffer.create 32 in
            buf_add_json_str name (span_name s);
            add_record b ~first
              "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":%s,\"cat\":\"span\",\"ts\":%d,\"dur\":%d,\"args\":{\"rounds\":%d,\"sessions\":%d,\"retries\":%d,\"user_msgs\":%d,\"server_msgs\":%d,\"world_msgs\":%d,\"wire_symbols\":%d,\"senses\":%d,\"negatives\":%d,\"faults\":%d,\"winner\":%b}}"
              tid (Buffer.contents name) s.Span.first_round
              (s.Span.last_round - s.Span.first_round + 1)
              s.Span.rounds s.Span.sessions s.Span.retries s.Span.user_msgs
              s.Span.server_msgs s.Span.world_msgs s.Span.wire_symbols
              s.Span.senses s.Span.negatives s.Span.faults
              (run.Span.winner <> None && s.Span.index = run.Span.winner)
          end)
        run.Span.spans)
    runs;
  (* Instant marks — enumeration moves, faults, halts — drawn from the
     raw events of each segment, on the matching thread. *)
  List.iteri
    (fun i segment ->
      let tid = i + 1 in
      List.iter
        (fun ev ->
          match (instant_name ev, event_round ev) with
          | Some label, Some round ->
              let name = Buffer.create 32 in
              buf_add_json_str name label;
              add_record b ~first
                "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"name\":%s,\"cat\":\"mark\",\"ts\":%d,\"s\":\"t\"}"
                tid (Buffer.contents name) round
          | _ -> ())
        segment)
    segments;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* CSV: one row per span, batch-wide.  Same quoting discipline as
   Table.to_csv. *)

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_of_events events =
  let runs = Span.of_events events in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "run,goal,user,index,first_round,last_round,rounds,sessions,retries,user_msgs,server_msgs,world_msgs,wire_symbols,senses,negatives,faults,winner\n";
  List.iteri
    (fun i (run : Span.run) ->
      List.iter
        (fun (s : Span.span) ->
          Printf.bprintf b "%d,%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%b\n"
            (i + 1) (csv_cell run.Span.goal) (csv_cell run.Span.user)
            (match s.Span.index with None -> "" | Some i -> string_of_int i)
            s.Span.first_round s.Span.last_round s.Span.rounds s.Span.sessions
            s.Span.retries s.Span.user_msgs s.Span.server_msgs
            s.Span.world_msgs s.Span.wire_symbols s.Span.senses
            s.Span.negatives s.Span.faults
            (run.Span.winner <> None && s.Span.index = run.Span.winner))
        run.Span.spans)
    runs;
  Buffer.contents b
