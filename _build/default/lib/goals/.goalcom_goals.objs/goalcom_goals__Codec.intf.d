lib/goals/codec.mli: Cnf Goalcom Goalcom_sat Grid Msg
