open Goalcom
open Goalcom_prelude
open Goalcom_automata

let fixed enum =
  match Enum.get enum 0 with
  | None -> invalid_arg "Baselines.fixed: empty class"
  | Some u -> Strategy.rename (Printf.sprintf "fixed(%s)" (Strategy.name u)) u

let oracle enum i =
  Strategy.rename
    (Printf.sprintf "oracle(%d)" i)
    (Enum.get_exn enum i)

let random_actions ~alphabet ?(halt_prob = 0.01) () =
  if alphabet <= 0 then invalid_arg "Baselines.random_actions: bad alphabet";
  if halt_prob < 0. || halt_prob > 1. then
    invalid_arg "Baselines.random_actions: bad halt_prob";
  Strategy.stateless_random ~name:"random-user" (fun rng _obs ->
      {
        Io.User.to_server = Msg.Sym (Rng.int rng alphabet);
        to_world = Msg.Silence;
        halt = Rng.bernoulli rng halt_prob;
      })

let blind_round_robin ?(quantum = 20) enum =
  if quantum <= 0 then invalid_arg "Baselines.blind_round_robin: bad quantum";
  let card =
    match Enum.cardinality enum with
    | Some c when c > 0 -> c
    | Some _ -> invalid_arg "Baselines.blind_round_robin: empty class"
    | None -> invalid_arg "Baselines.blind_round_robin: infinite class"
  in
  let module I = Strategy.Instance in
  Strategy.make
    ~name:(Printf.sprintf "blind-round-robin(%s)" (Enum.name enum))
    ~init:(fun () -> (0, I.create (Enum.get_exn enum 0), 0))
    ~step:(fun rng (idx, inst, used) obs ->
      let idx, inst, used =
        if used >= quantum then begin
          let idx = (idx + 1) mod card in
          (idx, I.create (Enum.get_exn enum idx), 0)
        end
        else (idx, inst, used)
      in
      let act = { (I.step rng inst obs) with Io.User.halt = false } in
      ((idx, inst, used + 1), act))
