open Goalcom_automata

(* Link behaviours are ordinary (probabilistic) Mealy machines over the
   payload alphabet; building them here keeps the topology and
   forwarding goals free of transition-table plumbing. *)

let check_alphabet alphabet =
  if alphabet < 1 then invalid_arg "Link: empty payload alphabet"

let clean ~alphabet =
  check_alphabet alphabet;
  Mealy.identity ~size:alphabet

let relabel ~alphabet k =
  check_alphabet alphabet;
  let k = ((k mod alphabet) + alphabet) mod alphabet in
  Mealy.map_output (fun s -> (s + k) mod alphabet) ~outputs:alphabet
    (Mealy.identity ~size:alphabet)

let stuck ~alphabet s =
  check_alphabet alphabet;
  if s < 0 || s >= alphabet then invalid_arg "Link.stuck: symbol out of range";
  Mealy.constant ~inputs:alphabet ~outputs:alphabet s

(* State 0 is "fresh"; the first input moves the machine to state
   [1 + sym] where every input emits [sym] forever. *)
let sticky ~alphabet =
  check_alphabet alphabet;
  let states = 1 + alphabet in
  let next =
    Array.init states (fun s ->
        Array.init alphabet (fun i -> if s = 0 then 1 + i else s))
  in
  let out =
    Array.init states (fun s ->
        Array.init alphabet (fun i -> if s = 0 then i else s - 1))
  in
  Mealy.make ~states ~inputs:alphabet ~outputs:alphabet ~next ~out

let wire ~flip_prob ~alphabet =
  check_alphabet alphabet;
  Prob_mealy.perturb ~flip_prob (Mealy.identity ~size:alphabet)

let imperfection ~alphabet spec =
  Goalcom_faults.Fault.stack_of_string ~alphabet spec
