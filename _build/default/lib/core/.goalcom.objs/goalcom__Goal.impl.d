lib/core/goal.ml: List Referee World
