lib/automata/prob_mealy.ml: Array Dist Goalcom_prelude List Listx Mealy
