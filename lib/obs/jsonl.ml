open Goalcom

(* Hand-rolled JSON: the event vocabulary is closed and flat, so a
   printer per constructor beats a generic tree.  One object per line,
   the ["ev"] tag first, so the files stream through jq / grep.

   Rendering goes straight into a Buffer — no Printf, no intermediate
   strings — because the JSONL sink sits on the engine's hot path: the
   tracing-overhead benchmark showed the original sprintf-based
   renderer costing ~4.6x an untraced run, almost all of it formatting
   allocations.  The byte-level format is pinned by the golden traces
   and by a qcheck test against a sprintf reference. *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_str b s =
  Buffer.add_char b '"';
  add_escaped b s;
  Buffer.add_char b '"'

let add_int b n = Buffer.add_string b (string_of_int n)
let add_bool b v = Buffer.add_string b (if v then "true" else "false")

(* The JSON-escaped form of [Msg.to_string msg], composed in one pass:
   messages render to OCaml-literal syntax (printf %S for texts), whose
   escapes then need their backslashes and quotes JSON-escaped.  Both
   layers are over printable ASCII, so the composition per source char
   is still a finite table. *)
let rec add_msg b (m : Msg.t) =
  match m with
  | Msg.Silence -> Buffer.add_char b '_'
  | Msg.Sym s ->
      Buffer.add_char b '#';
      add_int b s
  | Msg.Int n -> add_int b n
  | Msg.Text s ->
      Buffer.add_string b "\\\"";
      String.iter
        (fun c ->
          match c with
          | '"' -> Buffer.add_string b "\\\\\\\""
          | '\\' -> Buffer.add_string b "\\\\\\\\"
          | '\n' -> Buffer.add_string b "\\\\n"
          | '\t' -> Buffer.add_string b "\\\\t"
          | '\r' -> Buffer.add_string b "\\\\r"
          | '\b' -> Buffer.add_string b "\\\\b"
          | ' ' .. '~' -> Buffer.add_char b c
          | c ->
              Buffer.add_string b "\\\\";
              Buffer.add_string b (Printf.sprintf "%03d" (Char.code c)))
        s;
      Buffer.add_string b "\\\""
  | Msg.Pair (x, y) ->
      Buffer.add_char b '(';
      add_msg b x;
      Buffer.add_char b ',';
      add_msg b y;
      Buffer.add_char b ')'
  | Msg.Seq ms ->
      Buffer.add_char b '[';
      List.iteri
        (fun i m ->
          if i > 0 then Buffer.add_char b ';';
          add_msg b m)
        ms;
      Buffer.add_char b ']'

let add_event b (ev : Trace.event) =
  match ev with
  | Trace.Run_start { goal; user; server; horizon; drain; world_choice } ->
      Buffer.add_string b "{\"ev\":\"run_start\",\"goal\":";
      add_str b goal;
      Buffer.add_string b ",\"user\":";
      add_str b user;
      Buffer.add_string b ",\"server\":";
      add_str b server;
      Buffer.add_string b ",\"horizon\":";
      add_int b horizon;
      Buffer.add_string b ",\"drain\":";
      add_int b drain;
      Buffer.add_string b ",\"world_choice\":";
      add_int b world_choice;
      Buffer.add_char b '}'
  | Trace.Round_start { round } ->
      Buffer.add_string b "{\"ev\":\"round_start\",\"round\":";
      add_int b round;
      Buffer.add_char b '}'
  | Trace.Emit { round; src; dst; msg } ->
      Buffer.add_string b "{\"ev\":\"emit\",\"round\":";
      add_int b round;
      Buffer.add_string b ",\"src\":\"";
      Buffer.add_string b (Trace.party_name src);
      Buffer.add_string b "\",\"dst\":\"";
      Buffer.add_string b (Trace.party_name dst);
      Buffer.add_string b "\",\"msg\":\"";
      add_msg b msg;
      Buffer.add_string b "\"}"
  | Trace.Halt { round } ->
      Buffer.add_string b "{\"ev\":\"halt\",\"round\":";
      add_int b round;
      Buffer.add_char b '}'
  | Trace.Sense { round; sensor; positive; clock; patience } ->
      Buffer.add_string b "{\"ev\":\"sense\",\"round\":";
      add_int b round;
      Buffer.add_string b ",\"sensor\":";
      add_str b sensor;
      Buffer.add_string b ",\"positive\":";
      add_bool b positive;
      Buffer.add_string b ",\"clock\":";
      add_int b clock;
      Buffer.add_string b ",\"patience\":";
      add_int b patience;
      Buffer.add_char b '}'
  | Trace.Switch { round; from_index; to_index; attempt } ->
      Buffer.add_string b "{\"ev\":\"switch\",\"round\":";
      add_int b round;
      Buffer.add_string b ",\"from\":";
      add_int b from_index;
      Buffer.add_string b ",\"to\":";
      add_int b to_index;
      Buffer.add_string b ",\"attempt\":";
      add_int b attempt;
      Buffer.add_char b '}'
  | Trace.Resume { index; slots } ->
      Buffer.add_string b "{\"ev\":\"resume\",\"index\":";
      add_int b index;
      Buffer.add_string b ",\"slots\":";
      add_int b slots;
      Buffer.add_char b '}'
  | Trace.Session { round; index; budget } ->
      Buffer.add_string b "{\"ev\":\"session\",\"round\":";
      add_int b round;
      Buffer.add_string b ",\"index\":";
      add_int b index;
      Buffer.add_string b ",\"budget\":";
      add_int b budget;
      Buffer.add_char b '}'
  | Trace.Fault { round; fault; detail } ->
      Buffer.add_string b "{\"ev\":\"fault\",\"round\":";
      add_int b round;
      Buffer.add_string b ",\"fault\":";
      add_str b fault;
      Buffer.add_string b ",\"detail\":";
      add_str b detail;
      Buffer.add_char b '}'
  | Trace.Violation { round } ->
      Buffer.add_string b "{\"ev\":\"violation\",\"round\":";
      add_int b round;
      Buffer.add_char b '}'
  | Trace.Run_end { rounds; halted } ->
      Buffer.add_string b "{\"ev\":\"run_end\",\"rounds\":";
      add_int b rounds;
      Buffer.add_string b ",\"halted\":";
      add_bool b halted;
      Buffer.add_char b '}'
  | Trace.Supervise { tick; session; action; detail } ->
      Buffer.add_string b "{\"ev\":\"supervise\",\"tick\":";
      add_int b tick;
      Buffer.add_string b ",\"session\":";
      add_int b session;
      Buffer.add_string b ",\"action\":";
      add_str b action;
      Buffer.add_string b ",\"detail\":";
      add_str b detail;
      Buffer.add_char b '}'
  | Trace.Warm { server_class; enum; index; accepted; detail } ->
      Buffer.add_string b "{\"ev\":\"warm\",\"class\":";
      add_str b server_class;
      Buffer.add_string b ",\"enum\":";
      add_str b enum;
      Buffer.add_string b ",\"index\":";
      add_int b index;
      Buffer.add_string b ",\"accepted\":";
      add_bool b accepted;
      Buffer.add_string b ",\"detail\":";
      add_str b detail;
      Buffer.add_char b '}'

let event_to_json ev =
  let b = Buffer.create 128 in
  add_event b ev;
  Buffer.contents b

let to_lines events = List.map event_to_json events

(* One scratch buffer per sink closure: rendering reuses its storage
   across events instead of allocating a fresh string per event. *)
let sink oc =
  let scratch = Buffer.create 512 in
  fun ev ->
    Buffer.clear scratch;
    add_event scratch ev;
    Buffer.add_char scratch '\n';
    Buffer.output_buffer oc scratch

let buffer_sink b ev =
  add_event b ev;
  Buffer.add_char b '\n'

let write_events oc events =
  let s = sink oc in
  List.iter s events

let to_file path events =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      write_events oc events)

let with_file ?(buffer_bytes = 1 lsl 16) path f =
  let oc = open_out path in
  let b = Buffer.create buffer_bytes in
  let sink ev =
    add_event b ev;
    Buffer.add_char b '\n';
    if Buffer.length b >= buffer_bytes then begin
      Buffer.output_buffer oc b;
      Buffer.clear b
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Buffer.output_buffer oc b;
      close_out oc)
    (fun () -> f sink)

(* Reading traces back.  parse_line inverts add_event exactly — the
   qcheck roundtrip in the test suite quantifies over arbitrary events
   — so any --trace file is a dataset. *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv j =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> begin
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "field %S has the wrong type" name)
    end

let int_field name = field name Json.int_opt
let str_field name = field name Json.string_opt
let bool_field name = field name Json.bool_opt

let party_of_string = function
  | "user" -> Some Trace.User
  | "server" -> Some Trace.Server
  | "world" -> Some Trace.World
  | _ -> None

let party_field name j =
  let* s = str_field name j in
  match party_of_string s with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "field %S is not a party" name)

let msg_field name j =
  let* s = str_field name j in
  match Msg.of_string s with
  | Ok m -> Ok m
  | Error e -> Error (Printf.sprintf "field %S: %s" name e)

let event_of_json j : (Trace.event, string) result =
  let* ev = str_field "ev" j in
  match ev with
  | "run_start" ->
      let* goal = str_field "goal" j in
      let* user = str_field "user" j in
      let* server = str_field "server" j in
      let* horizon = int_field "horizon" j in
      let* drain = int_field "drain" j in
      let* world_choice = int_field "world_choice" j in
      Ok (Trace.Run_start { goal; user; server; horizon; drain; world_choice })
  | "round_start" ->
      let* round = int_field "round" j in
      Ok (Trace.Round_start { round })
  | "emit" ->
      let* round = int_field "round" j in
      let* src = party_field "src" j in
      let* dst = party_field "dst" j in
      let* msg = msg_field "msg" j in
      Ok (Trace.Emit { round; src; dst; msg })
  | "halt" ->
      let* round = int_field "round" j in
      Ok (Trace.Halt { round })
  | "sense" ->
      let* round = int_field "round" j in
      let* sensor = str_field "sensor" j in
      let* positive = bool_field "positive" j in
      let* clock = int_field "clock" j in
      let* patience = int_field "patience" j in
      Ok (Trace.Sense { round; sensor; positive; clock; patience })
  | "switch" ->
      let* round = int_field "round" j in
      let* from_index = int_field "from" j in
      let* to_index = int_field "to" j in
      let* attempt = int_field "attempt" j in
      Ok (Trace.Switch { round; from_index; to_index; attempt })
  | "resume" ->
      let* index = int_field "index" j in
      let* slots = int_field "slots" j in
      Ok (Trace.Resume { index; slots })
  | "session" ->
      let* round = int_field "round" j in
      let* index = int_field "index" j in
      let* budget = int_field "budget" j in
      Ok (Trace.Session { round; index; budget })
  | "fault" ->
      let* round = int_field "round" j in
      let* fault = str_field "fault" j in
      let* detail = str_field "detail" j in
      Ok (Trace.Fault { round; fault; detail })
  | "violation" ->
      let* round = int_field "round" j in
      Ok (Trace.Violation { round })
  | "run_end" ->
      let* rounds = int_field "rounds" j in
      let* halted = bool_field "halted" j in
      Ok (Trace.Run_end { rounds; halted })
  | "supervise" ->
      let* tick = int_field "tick" j in
      let* session = int_field "session" j in
      let* action = str_field "action" j in
      let* detail = str_field "detail" j in
      Ok (Trace.Supervise { tick; session; action; detail })
  | "warm" ->
      let* server_class = str_field "class" j in
      let* enum = str_field "enum" j in
      let* index = int_field "index" j in
      let* accepted = bool_field "accepted" j in
      let* detail = str_field "detail" j in
      Ok (Trace.Warm { server_class; enum; index; accepted; detail })
  | other -> Error (Printf.sprintf "unknown event kind %S" other)

let parse_line line =
  let* j = Json.parse line in
  event_of_json j

let of_lines lines =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> begin
        match parse_line line with
        | Ok ev -> go (i + 1) (ev :: acc) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" i e)
      end
  in
  go 1 [] lines

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let of_file path =
  match of_lines (read_lines path) with
  | Ok events -> Ok events
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
