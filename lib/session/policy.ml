open Goalcom_prelude

(* Restart policies are one-for-one: each session is supervised
   independently, and a failed incarnation only ever restarts its own
   session.  What the policy decides is *whether* (give-up-after-N) and
   *when* (exponential backoff, deterministically jittered from the
   supervisor's per-session RNG). *)

type t = {
  max_restarts : int;
  backoff_base : int;
  backoff_factor : float;
  backoff_max : int;
  jitter : float;
}

let make ?(max_restarts = 3) ?(backoff_base = 1) ?(backoff_factor = 2.0)
    ?(backoff_max = 16) ?(jitter = 0.25) () =
  if max_restarts < 0 then
    invalid_arg "Policy.make: max_restarts must be non-negative";
  if backoff_base < 1 then invalid_arg "Policy.make: backoff_base must be >= 1";
  if backoff_factor < 1.0 then
    invalid_arg "Policy.make: backoff_factor must be >= 1";
  if backoff_max < backoff_base then
    invalid_arg "Policy.make: backoff_max must be >= backoff_base";
  if jitter < 0.0 then invalid_arg "Policy.make: jitter must be non-negative";
  { max_restarts; backoff_base; backoff_factor; backoff_max; jitter }

let default = make ()

let gives_up t ~failures = failures > t.max_restarts

(* Backoff before restart [attempt] (1 = first restart): base * factor^(k-1),
   capped, plus a jitter draw in [0, jitter * capped].  The draw happens
   whenever jitter is configured — even when the cap makes it moot — so
   RNG consumption is a function of the failure sequence alone. *)
let backoff t rng ~attempt =
  if attempt < 1 then invalid_arg "Policy.backoff: attempt must be >= 1";
  let raw =
    float_of_int t.backoff_base *. (t.backoff_factor ** float_of_int (attempt - 1))
  in
  let capped = Float.min raw (float_of_int t.backoff_max) in
  let jittered =
    if t.jitter > 0.0 then capped +. Rng.float rng (t.jitter *. capped)
    else capped
  in
  max 1 (int_of_float jittered)
