test/test_symmetric.mli:
