(** E3 / Table 2 — the finite-goal universal user (Levin parallel enumeration) on the maze goal.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
