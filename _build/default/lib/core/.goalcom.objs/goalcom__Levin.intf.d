lib/core/levin.mli: Seq
