(* Golden-trace regression tests: replay the reference runs of
   Trace_cases and diff their JSONL rendering against the committed
   files in test/golden/ with Trace_diff (the same differ behind
   `goalcom trace diff`).  A divergence points at the first differing
   line with an event-kind-aware explanation; if the change is
   intended, regenerate with
   `dune exec bin/main.exe -- trace-golden test/golden`. *)

open Goalcom
open Goalcom_harness

let golden_path name = Filename.concat "golden" (name ^ ".jsonl")
let read_lines = Goalcom_obs.Jsonl.read_lines

let regen_hint =
  "if the new trace is correct, regenerate with `dune exec bin/main.exe -- \
   trace-golden test/golden`"

let check_case (c : Trace_cases.case) () =
  let expected = read_lines (golden_path c.name) in
  let actual = Goalcom_obs.Jsonl.to_lines (c.events ()) in
  match Goalcom_obs.Trace_diff.lines expected actual with
  | None -> ()
  | Some d ->
      Alcotest.failf "%s: %s\n%s" c.name
        (Goalcom_obs.Trace_diff.to_string ~left_label:"golden"
           ~right_label:"actual" d)
        regen_hint

(* The replayed traces must also satisfy the standard invariants — a
   golden file that freezes a broken trace is worse than no golden. *)
let check_invariants (c : Trace_cases.case) () =
  match Trace.check Trace.standard (c.events ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" c.name msg

(* Cheap well-formedness sweep over the committed files themselves:
   every line is one braced object carrying an "ev" tag. *)
let check_shape (c : Trace_cases.case) () =
  let lines = read_lines (golden_path c.name) in
  Alcotest.(check bool) "non-empty" true (lines <> []);
  List.iteri
    (fun i line ->
      let ok =
        String.length line > 8
        && String.sub line 0 7 = "{\"ev\":\""
        && line.[String.length line - 1] = '}'
      in
      if not ok then
        Alcotest.failf "%s: line %d is not a tagged JSON object: %s" c.name
          (i + 1) line)
    lines

let cases_of f =
  List.map
    (fun (c : Trace_cases.case) -> Alcotest.test_case c.name `Quick (f c))
    Trace_cases.all

let () =
  Alcotest.run "trace-golden"
    [
      ("diff", cases_of check_case);
      ("invariants", cases_of check_invariants);
      ("shape", cases_of check_shape);
    ]
