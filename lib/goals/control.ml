open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers

let left_cmd = 0
let right_cmd = 1
let min_alphabet = 3

let check_alphabet alphabet =
  if alphabet < min_alphabet then
    invalid_arg "Control: alphabet must have at least 3 symbols"

type params = { bound : int; limit : int; force : int; max_drift : int }

let default_params = { bound = 10; limit = 24; force = 2; max_drift = 1 }

let check_params p =
  if p.bound <= 0 || p.limit <= p.bound || p.force <= 0 || p.max_drift < 0 then
    invalid_arg "Control: inconsistent parameters"

let actuator ~alphabet =
  check_alphabet alphabet;
  Strategy.stateless ~name:"actuator" (fun (obs : Io.Server.obs) ->
      match obs.from_user with
      | Msg.Sym c when c = left_cmd || c = right_cmd ->
          Io.Server.say_world (Msg.Sym c)
      | _ -> Io.Server.silent)

let server ~alphabet d = Transform.with_dialect d (actuator ~alphabet)

let server_class ~alphabet dialects =
  Transform.dialect_class ~base:(actuator ~alphabet) dialects

let world ?(params = default_params) () =
  check_params params;
  World.make
    ~name:
      (Printf.sprintf "plant(bound=%d,limit=%d)" params.bound params.limit)
    ~init:(fun () -> 0)
    ~step:(fun rng plant (obs : Io.World.obs) ->
      let force =
        match obs.from_server with
        | Msg.Sym c when c = left_cmd -> -params.force
        | Msg.Sym c when c = right_cmd -> params.force
        | _ -> 0
      in
      let drift = Rng.int rng (params.max_drift + 1) in
      let plant =
        max (-params.limit) (min params.limit (plant + drift + force))
      in
      (plant, Io.World.say_user (Msg.Int plant)))
    ~view:(fun plant -> Msg.Int plant)

(* Acceptability of a prefix depends only on its latest world view, so
   the incremental judge is stateless. *)
let referee_of params =
  Referee.compact_incremental "plant-in-range"
    ~init:(fun _v0 -> ((), `Ok))
    ~step:(fun () v ->
      ( (),
        match v with
        | Msg.Int plant -> Referee.verdict_of_bool (abs plant <= params.bound)
        | _ -> `Violation ))

let goal ?(params = default_params) ~alphabet () =
  check_alphabet alphabet;
  check_params params;
  Goal.make
    ~name:(Printf.sprintf "control(alphabet=%d,bound=%d)" alphabet params.bound)
    ~worlds:[ world ~params () ]
    ~referee:(referee_of params)

let informed_user ~alphabet d =
  check_alphabet alphabet;
  let send cmd = Io.User.say_server (Dialect_msg.encode d (Msg.Sym cmd)) in
  Strategy.stateless
    ~name:(Printf.sprintf "control-user@%s" (Format.asprintf "%a" Dialect.pp d))
    (fun (obs : Io.User.obs) ->
      match obs.from_world with
      | Msg.Int plant -> if plant >= 0 then send left_cmd else send right_cmd
      | _ -> send left_cmd)

let user_class ~alphabet dialects =
  Enum.map
    ~name:(Printf.sprintf "control-users(%s)" (Enum.name dialects))
    (fun d -> informed_user ~alphabet d)
    dialects

let sensing ?(params = default_params) () =
  Sensing.of_latest ~name:"plant-in-range" ~empty:true (fun e ->
      match e.View.from_world with
      | Msg.Int plant -> abs plant <= params.bound
      | _ -> true)

let universal_user ?(grace = 4) ?stats ?params ~alphabet dialects =
  Universal.compact ~grace ?stats
    ~enum:(user_class ~alphabet dialects)
    ~sensing:(sensing ?params ()) ()
