test/test_automata.ml: Alcotest Alphabet Array Dialect Dist Enum Float Fun Goalcom_automata Goalcom_prelude List Listx Mealy Prob_mealy Rng
