open Goalcom

(* First-divergence trace diffing, event-kind-aware.  Grown out of the
   golden-trace test's inline line differ; the test suite and the CLI
   (`goalcom trace diff`) now share this implementation.  Comparison is
   on the serialized lines (the byte format is the contract the golden
   files pin down), with the structural layer explaining *what* changed
   when both sides still parse. *)

type divergence = {
  position : int;  (** 1-based line number of the first difference *)
  left : string option;  (** [None] = this side ended first *)
  right : string option;
  detail : string;  (** kind-aware explanation of the difference *)
}

let kind_name (ev : Trace.event) =
  match ev with
  | Trace.Run_start _ -> "run_start"
  | Trace.Round_start _ -> "round_start"
  | Trace.Emit _ -> "emit"
  | Trace.Halt _ -> "halt"
  | Trace.Sense _ -> "sense"
  | Trace.Switch _ -> "switch"
  | Trace.Resume _ -> "resume"
  | Trace.Session _ -> "session"
  | Trace.Fault _ -> "fault"
  | Trace.Violation _ -> "violation"
  | Trace.Run_end _ -> "run_end"
  | Trace.Supervise _ -> "supervise"
  | Trace.Warm _ -> "warm"

(* Field-by-field differences between two events of the same kind, as
   ["field: left vs right"] fragments. *)
let field_diffs (a : Trace.event) (b : Trace.event) =
  let istr = string_of_int in
  let bstr = string_of_bool in
  let d name fmt x y = if x = y then None else Some (name, fmt x, fmt y) in
  let candidates =
    match (a, b) with
    | Trace.Run_start a, Trace.Run_start b ->
        [
          d "goal" Fun.id a.goal b.goal;
          d "user" Fun.id a.user b.user;
          d "server" Fun.id a.server b.server;
          d "horizon" istr a.horizon b.horizon;
          d "drain" istr a.drain b.drain;
          d "world_choice" istr a.world_choice b.world_choice;
        ]
    | Trace.Round_start a, Trace.Round_start b ->
        [ d "round" istr a.round b.round ]
    | Trace.Emit a, Trace.Emit b ->
        [
          d "round" istr a.round b.round;
          d "src" Trace.party_name a.src b.src;
          d "dst" Trace.party_name a.dst b.dst;
          d "msg" Msg.to_string a.msg b.msg;
        ]
    | Trace.Halt a, Trace.Halt b -> [ d "round" istr a.round b.round ]
    | Trace.Sense a, Trace.Sense b ->
        [
          d "round" istr a.round b.round;
          d "sensor" Fun.id a.sensor b.sensor;
          d "positive" bstr a.positive b.positive;
          d "clock" istr a.clock b.clock;
          d "patience" istr a.patience b.patience;
        ]
    | Trace.Switch a, Trace.Switch b ->
        [
          d "round" istr a.round b.round;
          d "from" istr a.from_index b.from_index;
          d "to" istr a.to_index b.to_index;
          d "attempt" istr a.attempt b.attempt;
        ]
    | Trace.Resume a, Trace.Resume b ->
        [ d "index" istr a.index b.index; d "slots" istr a.slots b.slots ]
    | Trace.Session a, Trace.Session b ->
        [
          d "round" istr a.round b.round;
          d "index" istr a.index b.index;
          d "budget" istr a.budget b.budget;
        ]
    | Trace.Fault a, Trace.Fault b ->
        [
          d "round" istr a.round b.round;
          d "fault" Fun.id a.fault b.fault;
          d "detail" Fun.id a.detail b.detail;
        ]
    | Trace.Violation a, Trace.Violation b ->
        [ d "round" istr a.round b.round ]
    | Trace.Run_end a, Trace.Run_end b ->
        [
          d "rounds" istr a.rounds b.rounds;
          d "halted" bstr a.halted b.halted;
        ]
    | Trace.Supervise a, Trace.Supervise b ->
        [
          d "tick" istr a.tick b.tick;
          d "session" istr a.session b.session;
          d "action" Fun.id a.action b.action;
          d "detail" Fun.id a.detail b.detail;
        ]
    | Trace.Warm a, Trace.Warm b ->
        [
          d "class" Fun.id a.server_class b.server_class;
          d "enum" Fun.id a.enum b.enum;
          d "index" istr a.index b.index;
          d "accepted" bstr a.accepted b.accepted;
          d "detail" Fun.id a.detail b.detail;
        ]
    | _ -> []
  in
  List.filter_map Fun.id candidates

let describe_pair left right =
  match (Jsonl.parse_line left, Jsonl.parse_line right) with
  | Ok a, Ok b ->
      let ka = kind_name a and kb = kind_name b in
      if ka <> kb then Printf.sprintf "event kinds differ: %s vs %s" ka kb
      else begin
        match field_diffs a b with
        | [] -> Printf.sprintf "%s events differ in serialization only" ka
        | ds ->
            Printf.sprintf "%s events differ: %s" ka
              (String.concat ", "
                 (List.map
                    (fun (f, x, y) -> Printf.sprintf "%s %s vs %s" f x y)
                    ds))
      end
  | Error e, _ -> Printf.sprintf "left line does not parse: %s" e
  | _, Error e -> Printf.sprintf "right line does not parse: %s" e

let describe_tail ~ended ~continues line =
  match Jsonl.parse_line line with
  | Ok ev ->
      Printf.sprintf "%s ends here; %s continues with a %s event" ended
        continues (kind_name ev)
  | Error _ ->
      Printf.sprintf "%s ends here; %s continues" ended continues

let lines left right =
  let rec go n left right =
    match (left, right) with
    | [], [] -> None
    | l :: _, [] ->
        Some
          {
            position = n;
            left = Some l;
            right = None;
            detail = describe_tail ~ended:"right" ~continues:"left" l;
          }
    | [], r :: _ ->
        Some
          {
            position = n;
            left = None;
            right = Some r;
            detail = describe_tail ~ended:"left" ~continues:"right" r;
          }
    | l :: ls, r :: rs ->
        if String.equal l r then go (n + 1) ls rs
        else
          Some
            {
              position = n;
              left = Some l;
              right = Some r;
              detail = describe_pair l r;
            }
  in
  go 1 left right

let events a b = lines (Jsonl.to_lines a) (Jsonl.to_lines b)

let pp ?(left_label = "left") ?(right_label = "right") ppf d =
  let side label = function
    | Some line -> Format.fprintf ppf "@,  %s: %s" label line
    | None -> Format.fprintf ppf "@,  %s: <end of trace>" label
  in
  Format.fprintf ppf "@[<v>first divergence at line %d (%s)" d.position
    d.detail;
  side left_label d.left;
  side right_label d.right;
  Format.fprintf ppf "@]"

let to_string ?left_label ?right_label d =
  Format.asprintf "%a" (pp ?left_label ?right_label) d
