open Goalcom
open Goalcom_automata
open Goalcom_sat
open Goalcom_ip
open Goalcom_servers

let claim_cmd = 0
let round_cmd = 1
let min_alphabet = 3

let check_alphabet alphabet =
  if alphabet < min_alphabet then
    invalid_arg "Counting: alphabet must have at least 3 symbols"

type params = { num_vars : int; num_clauses : int; clause_len : int }

let default_params = { num_vars = 6; num_clauses = 10; clause_len = 3 }

let check_params p =
  if p.num_vars <= 0 || p.num_vars > 12 then
    invalid_arg "Counting: num_vars must be in 1..12"

let gf_ints xs = Codec.ints (List.map Gf.to_int xs)

let gf_ints_opt m =
  Option.map (List.map Gf.of_int) (Codec.ints_opt m)

(* Wire shapes:
   claim request : Pair (Sym claim_cmd, cnf)
   claim reply   : Pair (Sym claim_cmd, Int claimed)
   round request : Pair (Sym round_cmd, Pair (cnf, Seq prefix))
   round reply   : Pair (Sym round_cmd, Seq samples)
   Payload shapes are distinct, so the verifier never needs to decode
   the (dialected) command symbol of a reply. *)

let prover_with ~name ~alphabet ip_prover claim_of =
  check_alphabet alphabet;
  Strategy.stateless ~name (fun (obs : Io.Server.obs) ->
      match obs.from_user with
      | Msg.Pair (Msg.Sym c, payload) when c = claim_cmd -> begin
          match Codec.cnf_opt payload with
          | Some cnf ->
              Io.Server.say_user
                (Msg.Pair (Msg.Sym claim_cmd, Msg.Int (claim_of cnf)))
          | None -> Io.Server.silent
        end
      | Msg.Pair (Msg.Sym c, Msg.Pair (cnf_msg, prefix_msg)) when c = round_cmd
        -> begin
          match (Codec.cnf_opt cnf_msg, gf_ints_opt prefix_msg) with
          | Some cnf, Some prefix
            when List.length prefix < cnf.Cnf.num_vars ->
              let samples = ip_prover cnf ~prefix in
              Io.Server.say_user
                (Msg.Pair
                   (Msg.Sym round_cmd, gf_ints (Array.to_list samples)))
          | _ -> Io.Server.silent
        end
      | _ -> Io.Server.silent)

let prover ~alphabet =
  prover_with ~name:"sumcheck-prover" ~alphabet Sumcheck.honest_prover
    Arith.count_models_mod

let lying_prover ~alphabet ~offset =
  if offset = 0 then invalid_arg "Counting.lying_prover: zero offset";
  prover_with
    ~name:(Printf.sprintf "lying-prover(+%d)" offset)
    ~alphabet Sumcheck.honest_prover
    (fun cnf -> Arith.count_models_mod cnf + offset)

let tampering_prover ~alphabet ~tamper_round ~offset =
  prover_with
    ~name:(Printf.sprintf "tampering-prover(r%d,+%d)" tamper_round offset)
    ~alphabet
    (Sumcheck.tampered_prover ~tamper_round ~offset)
    Arith.count_models_mod

let server ~alphabet d = Transform.with_dialect d (prover ~alphabet)

let server_class ~alphabet dialects =
  Transform.dialect_class ~base:(prover ~alphabet) dialects

type wstate = Fresh | Task of { cnf : Cnf.t; count : int; solved : bool }

let status_view = function
  | Fresh -> Msg.Text "init"
  | Task { cnf; solved; _ } ->
      Msg.Pair (Msg.Text (if solved then "solved" else "pending"), Codec.cnf cnf)

let world ?(params = default_params) () =
  check_params params;
  World.make ~name:"counting-world"
    ~init:(fun () -> Fresh)
    ~step:(fun rng state (obs : Io.World.obs) ->
      let state =
        match state with
        | Fresh ->
            let cnf =
              Gen.uniform rng ~num_vars:params.num_vars
                ~num_clauses:params.num_clauses ~clause_len:params.clause_len
            in
            Task { cnf; count = Arith.count_models_mod cnf; solved = false }
        | Task _ -> state
      in
      let state =
        match (state, obs.from_user) with
        | Task ({ count; solved = false; _ } as t), Msg.Int c when c = count ->
            Task { t with solved = true }
        | _ -> state
      in
      (state, Io.World.say_user (status_view state)))
    ~view:status_view

let solved_view = function
  | Msg.Pair (Msg.Text "solved", _) -> true
  | _ -> false

let referee = Referee.finite_exists "world-received-model-count" solved_view

let goal ?(params = default_params) ~alphabet () =
  check_alphabet alphabet;
  check_params params;
  Goal.make
    ~name:(Printf.sprintf "counting(vars=%d)" params.num_vars)
    ~worlds:[ world ~params () ]
    ~referee

let formula_of_world_msg = function
  | Msg.Pair (Msg.Text _, cnf_msg) -> Codec.cnf_opt cnf_msg
  | _ -> None

type phase =
  | Get_task
  | Claiming of { cnf : Cnf.t; waited : int }
  | Proving of {
      cnf : Cnf.t;
      claimed : int;
      claim : Gf.t;
      challenges : Gf.t list;
      waited : int;
    }
  | Reporting of { claimed : int }

let reply_patience = 6

let verifier_user ?(params = default_params) ~alphabet d =
  check_alphabet alphabet;
  check_params params;
  let enc m = Dialect_msg.encode d m in
  let claim_req cnf =
    Io.User.say_server (enc (Msg.Pair (Msg.Sym claim_cmd, Codec.cnf cnf)))
  in
  let round_req cnf challenges =
    Io.User.say_server
      (enc
         (Msg.Pair
            (Msg.Sym round_cmd, Msg.Pair (Codec.cnf cnf, gf_ints challenges))))
  in
  Strategy.make
    ~name:(Printf.sprintf "verifier@%s" (Format.asprintf "%a" Dialect.pp d))
    ~init:(fun () -> Get_task)
    ~step:(fun rng phase (obs : Io.User.obs) ->
      if solved_view obs.from_world then (phase, Io.User.halt_act)
      else begin
        match phase with
        | Get_task -> begin
            match formula_of_world_msg obs.from_world with
            | Some cnf -> (Claiming { cnf; waited = 0 }, claim_req cnf)
            | None -> (Get_task, Io.User.silent)
          end
        | Claiming { cnf; waited } -> begin
            match obs.from_server with
            | Msg.Pair (_, Msg.Int claimed) ->
                ( Proving
                    {
                      cnf;
                      claimed;
                      claim = Gf.of_int claimed;
                      challenges = [];
                      waited = 0;
                    },
                  round_req cnf [] )
            | _ ->
                if waited >= reply_patience then
                  (Claiming { cnf; waited = 0 }, claim_req cnf)
                else (Claiming { cnf; waited = waited + 1 }, Io.User.silent)
          end
        | Proving ({ cnf; claimed; claim; challenges; waited } as st) -> begin
            match obs.from_server with
            | Msg.Pair (_, (Msg.Seq _ as samples_msg)) -> begin
                match gf_ints_opt samples_msg with
                | Some samples -> begin
                    match
                      Sumcheck.verify_round rng cnf ~claim ~challenges
                        ~samples:(Array.of_list samples)
                    with
                    | Sumcheck.Accepted ->
                        (Reporting { claimed }, Io.User.say_world (Msg.Int claimed))
                    | Sumcheck.Rejected _ ->
                        (* Start over: with an honest prover this never
                           happens; with a cheat it loops (unhelpful). *)
                        (Claiming { cnf; waited = 0 }, claim_req cnf)
                    | Sumcheck.Continue { claim; challenges } ->
                        ( Proving { st with claim; challenges; waited = 0 },
                          round_req cnf challenges )
                  end
                | None -> (Claiming { cnf; waited = 0 }, claim_req cnf)
              end
            | _ ->
                if waited >= reply_patience then
                  (Proving { st with waited = 0 }, round_req cnf challenges)
                else (Proving { st with waited = waited + 1 }, Io.User.silent)
          end
        | Reporting { claimed } ->
            (phase, Io.User.say_world (Msg.Int claimed))
      end)

let user_class ?(params = default_params) ~alphabet dialects =
  Enum.map
    ~name:(Printf.sprintf "verifiers(%s)" (Enum.name dialects))
    (fun d -> verifier_user ~params ~alphabet d)
    dialects

let sensing =
  Sensing.of_latest ~name:"count-confirmed" ~empty:false (fun e ->
      solved_view e.View.from_world)

let universal_user ?schedule ?stats ?(params = default_params) ~alphabet
    dialects =
  Universal.finite ?schedule ?stats
    ~enum:(user_class ~params ~alphabet dialects)
    ~sensing ()

let claim_requests history =
  History.fold_rounds history ~init:0 ~f:(fun n (r : History.Round.t) ->
      (* A claim request's payload is a bare CNF (Pair (Int, Seq)); a
         round request's is Pair (cnf, prefix).  Both arrive dialected,
         but the payload shape is dialect-invariant. *)
      match r.user_to_server with
      | Msg.Pair (Msg.Sym _, Msg.Pair (Msg.Int _, Msg.Seq _)) -> n + 1
      | _ -> n)
