(** The transfer goal — amortising the cost of universality.

    The user must deliver a payload to the world {e through} the server,
    which only accepts a strict framing protocol (BEGIN, DATA…, END) in
    its own dialect, and answers every ill-framed message with an
    explicit [Text "err"] (and well-framed ones with ["ok"]/["done"]).
    That error feedback is a second, {e progress} sensing function: it
    lets a universal user discard a wrong dialect within a couple of
    rounds instead of wasting a whole payload-sized session on it.

    The experiment contrast (E10): with progress sensing the universal
    user's overhead over the informed user is an {e additive} constant
    per candidate dialect, independent of payload size; the plain Levin
    construction, which only sees goal-level sensing, pays per-session
    budgets that grow with the payload.  This realises the paper's
    closing remark that richer feedback enables better-than-generic
    overhead.

    Canonical commands: [begin_cmd = 0], [data_cmd = 1], [end_cmd = 2],
    plus padding. *)

open Goalcom
open Goalcom_automata

val begin_cmd : int
val data_cmd : int
val end_cmd : int

val min_alphabet : int
(** 4 — the three framing commands and at least one pad, so every
    rotation displaces the framing. *)

val relay : alphabet:int -> Strategy.server
(** The strict-framing relay (canonical dialect). *)

val server : alphabet:int -> Dialect.t -> Strategy.server
val server_class : alphabet:int -> Dialect.t Enum.t -> Strategy.server Enum.t

val world_of_payload : int list -> World.t
(** @raise Invalid_argument on an empty payload or characters outside
    [0..255]. *)

val goal : ?payloads:int list list -> alphabet:int -> unit -> Goal.t

val informed_user : alphabet:int -> Dialect.t -> Strategy.user
(** Frames and sends the payload; restarts the framing on ["err"];
    halts when the world confirms delivery. *)

val user_class : alphabet:int -> Dialect.t Enum.t -> Strategy.user Enum.t

val goal_sensing : Sensing.t
(** Positive iff some world broadcast confirmed delivery (safe and
    viable — the halting criterion). *)

val error_sensing : Sensing.t
(** Negative iff the server's latest reply was [Text "err"] — the
    progress sensing used for fast dialect elimination. *)

val universal_user :
  ?schedule:Levin.slot Seq.t ->
  ?stats:Universal.stats ->
  alphabet:int ->
  Dialect.t Enum.t ->
  Strategy.user
(** The generic construction: {!Universal.finite} with {!goal_sensing}
    only. *)

val universal_user_fast :
  ?grace:int ->
  ?stats:Universal.stats ->
  alphabet:int ->
  Dialect.t Enum.t ->
  Strategy.user
(** The feedback-accelerated universal user: enumerate-and-switch on
    {!error_sensing} (grace default 3), halting on {!goal_sensing} —
    built by composing {!Universal.compact} with
    {!Sensing.halt_on_positive}. *)
