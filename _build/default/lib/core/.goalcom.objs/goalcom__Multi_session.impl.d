lib/core/multi_session.ml: Enum Goal Goalcom_automata History Io List Msg Referee Sensing Strategy View World
