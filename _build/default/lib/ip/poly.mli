(** Univariate polynomials over {!Gf}, in sampled form.

    Sum-check prover messages are low-degree univariate polynomials;
    they travel as their evaluations at the points 0, 1, ..., d (d+1
    samples determine a degree-d polynomial), and the verifier
    evaluates them at random challenges by Lagrange interpolation. *)

val eval_samples : Gf.t array -> Gf.t -> Gf.t
(** [eval_samples samples x] evaluates the unique polynomial of degree
    < [Array.length samples] passing through [(i, samples.(i))] at [x].
    @raise Invalid_argument on an empty sample array. *)

val sum01 : Gf.t array -> Gf.t
(** [g(0) + g(1)] of a sampled polynomial — the sum-check consistency
    value.  @raise Invalid_argument on fewer than 2 samples. *)
