(* Unit tests for sensing: verdict streams, corruption helpers,
   halt-on-positive wrapping, and the safety/viability validators on a
   toy goal where ground truth is known. *)

open Goalcom
open Goalcom_prelude

(* Toy goal: the world wants to hear Int 7 from the user; broadcasts
   status.  Server relays Int messages from the user to the world, so
   both direct and relayed strategies exist. *)
let world =
  World.make ~name:"w7"
    ~init:(fun () -> false)
    ~step:(fun _rng got (obs : Io.World.obs) ->
      let got = got || obs.from_user = Msg.Int 7 || obs.from_server = Msg.Int 7 in
      (got, Io.World.say_user (Msg.Text (if got then "done" else "waiting"))))
    ~view:(fun got -> Msg.Text (if got then "done" else "waiting"))

let goal =
  Goal.make ~name:"hear7" ~worlds:[ world ]
    ~referee:(Referee.finite "heard" (fun views -> List.mem (Msg.Text "done") views))

let relay_server =
  Strategy.stateless ~name:"relay" (fun (obs : Io.Server.obs) ->
      match obs.from_user with
      | Msg.Int n -> Io.Server.say_world (Msg.Int n)
      | _ -> Io.Server.silent)

let sender n =
  Strategy.make
    ~name:(Printf.sprintf "send-%d" n)
    ~init:(fun () -> ())
    ~step:(fun _rng () (_ : Io.User.obs) -> ((), Io.User.say_server (Msg.Int n)))

let good_sensing =
  Sensing.of_predicate ~name:"world-done" (fun view ->
      List.exists
        (fun e -> e.View.from_world = Msg.Text "done")
        (View.events_rev view))

let run user =
  Exec.run ~config:(Exec.config ~horizon:30 ()) ~goal ~user ~server:relay_server
    (Rng.make 1)

let test_verdicts_stream () =
  let h = run (sender 7) in
  let verdicts = Sensing.verdicts good_sensing h in
  Alcotest.(check int) "one per round" (History.length h) (List.length verdicts);
  (* Early rounds negative, later rounds positive, monotone. *)
  Alcotest.(check bool) "starts negative" true
    (snd (List.hd verdicts) = Sensing.Negative);
  Alcotest.(check bool) "ends positive" true
    (snd (Listx.last verdicts) = Sensing.Positive);
  let became_positive = ref false in
  List.iter
    (fun (_, v) ->
      if v = Sensing.Positive then became_positive := true
      else
        Alcotest.(check bool) "monotone" false !became_positive)
    verdicts

let test_negatives_after () =
  let h = run (sender 0) in
  Alcotest.(check int) "all negative after 0" (History.length h)
    (Sensing.negatives_after good_sensing h 0);
  Alcotest.(check int) "none after the end" 0
    (Sensing.negatives_after good_sensing h (History.length h))

let test_constant_and_predicate () =
  let v = View.empty in
  Alcotest.(check bool) "const pos" true
    ((Sensing.constant Sensing.Positive).Sensing.sense v = Sensing.Positive);
  Alcotest.(check bool) "const neg" true
    ((Sensing.constant Sensing.Negative).Sensing.sense v = Sensing.Negative)

let test_corrupt_unviable () =
  let broken = Sensing.corrupt_unviable good_sensing in
  let h = run (sender 7) in
  Alcotest.(check bool) "never positive" true
    (List.for_all (fun (_, v) -> v = Sensing.Negative) (Sensing.verdicts broken h))

let test_corrupt_unsafe () =
  let rng = Rng.make 2 in
  let broken = Sensing.corrupt_unsafe ~flip_to_positive:1.0 rng good_sensing in
  let h = run (sender 0) in
  (* With flip probability 1 every indication is positive. *)
  Alcotest.(check bool) "always positive" true
    (List.for_all (fun (_, v) -> v = Sensing.Positive) (Sensing.verdicts broken h))

let test_halt_on_positive () =
  let wrapped = Sensing.halt_on_positive good_sensing (sender 7) in
  let outcome, history =
    Exec.run_outcome ~config:(Exec.config ~horizon:30 ()) ~goal ~user:wrapped
      ~server:relay_server (Rng.make 3)
  in
  Alcotest.(check bool) "achieved" true outcome.Outcome.achieved;
  Alcotest.(check bool) "halted" true (History.halted history);
  (* Send at r1, server relays r2, world hears r3 and broadcasts, user
     sees "done" at r4, sensing sees the completed round at r5. *)
  Alcotest.(check bool) "halts promptly" true
    (match History.halt_round history with Some r -> r <= 6 | None -> false)

let test_halt_on_positive_never_fires () =
  let wrapped = Sensing.halt_on_positive good_sensing (sender 0) in
  let outcome, _ =
    Exec.run_outcome ~config:(Exec.config ~horizon:30 ()) ~goal ~user:wrapped
      ~server:relay_server (Rng.make 4)
  in
  Alcotest.(check bool) "not halted" false outcome.Outcome.halted

let test_check_safety_finite_holds () =
  let report =
    Sensing.check_safety_finite
      ~config:(Exec.config ~horizon:30 ())
      ~goal
      ~users:[ sender 7; sender 0 ]
      ~servers:[ relay_server ] good_sensing (Rng.make 5)
  in
  Alcotest.(check bool) "holds" true report.Sensing.holds;
  Alcotest.(check bool) "checked some" true (report.Sensing.checked > 0)

let test_check_safety_finite_catches_unsafe () =
  let rng = Rng.make 6 in
  let unsafe = Sensing.corrupt_unsafe ~flip_to_positive:1.0 rng good_sensing in
  let report =
    Sensing.check_safety_finite
      ~config:(Exec.config ~horizon:30 ())
      ~goal
      ~users:[ sender 0 ]
      ~servers:[ relay_server ] unsafe (Rng.make 7)
  in
  Alcotest.(check bool) "violated" false report.Sensing.holds;
  Alcotest.(check bool) "has counterexample" true
    (report.Sensing.counterexamples <> [])

let test_check_viability_finite () =
  let report =
    Sensing.check_viability_finite
      ~config:(Exec.config ~horizon:30 ())
      ~goal
      ~user_for:(fun _ -> sender 7)
      ~servers:[ relay_server ] good_sensing (Rng.make 8)
  in
  Alcotest.(check bool) "holds" true report.Sensing.holds;
  let bad =
    Sensing.check_viability_finite
      ~config:(Exec.config ~horizon:30 ())
      ~goal
      ~user_for:(fun _ -> sender 0)
      ~servers:[ relay_server ] good_sensing (Rng.make 9)
  in
  Alcotest.(check bool) "violated with useless user" false bad.Sensing.holds

let test_report_pp () =
  let report =
    Sensing.check_viability_finite
      ~config:(Exec.config ~horizon:10 ())
      ~goal
      ~user_for:(fun _ -> sender 0)
      ~servers:[ relay_server ] good_sensing (Rng.make 10)
  in
  let s = Format.asprintf "%a" Sensing.pp_report report in
  Alcotest.(check bool) "mentions verdict" true (String.length s > 10)

let () =
  Alcotest.run "sensing"
    [
      ( "sensing",
        [
          Alcotest.test_case "verdict stream" `Quick test_verdicts_stream;
          Alcotest.test_case "negatives_after" `Quick test_negatives_after;
          Alcotest.test_case "constants" `Quick test_constant_and_predicate;
          Alcotest.test_case "corrupt unviable" `Quick test_corrupt_unviable;
          Alcotest.test_case "corrupt unsafe" `Quick test_corrupt_unsafe;
          Alcotest.test_case "halt on positive" `Quick test_halt_on_positive;
          Alcotest.test_case "halt never fires" `Quick test_halt_on_positive_never_fires;
          Alcotest.test_case "safety holds" `Quick test_check_safety_finite_holds;
          Alcotest.test_case "safety catches unsafe" `Quick test_check_safety_finite_catches_unsafe;
          Alcotest.test_case "viability" `Quick test_check_viability_finite;
          Alcotest.test_case "report pp" `Quick test_report_pp;
        ] );
    ]
