(** The world: the third entity that embodies the goal (§2).

    The world is a probabilistic strategy whose {e states} are what the
    referee judges.  [view] projects the internal state to the
    world-state value recorded in the history; referees are functions of
    these view sequences, exactly as the paper defines goals in terms of
    sequences of world states.

    The paper's non-determinism ("the world makes a single
    non-deterministic choice of a standard probabilistic strategy") is
    represented one level up: a {!Goal.t} carries a non-empty list of
    worlds, and validators quantify over all of them. *)

type t

val make :
  name:string ->
  init:(unit -> 'state) ->
  step:(Goalcom_prelude.Rng.t -> 'state -> Io.World.obs -> 'state * Io.World.act) ->
  view:('state -> Msg.t) ->
  t

val name : t -> string

(** A running world instance. *)
module Instance : sig
  type world := t
  type t

  val create : world -> t
  val step : Goalcom_prelude.Rng.t -> t -> Io.World.obs -> Io.World.act
  val view : t -> Msg.t
  (** View of the current state. *)
end
