(** Compiled strategies: flat-table Mealy users behind the ordinary
    {!Strategy} interface, and decode+compile-cached strategy classes.

    Mirrors [Machine_user] — same reader/writer codecs, same observable
    behaviour (the differential battery pins transcript equality) — but
    the per-round step is {!Table.step_unsafe} on a machine compiled
    once, instead of re-interpreting the [Mealy.t] tables, and the
    class enumeration memoizes decode+compile in a bounded LRU shared
    across every consumer (sequential constructions, the Levin racer's
    resolution loop, repeated runs in one process).

    The cache size comes from the [GOALCOM_COMPILE_CACHE] environment
    variable (default {!default_cache_capacity}; [0] disables caching)
    unless overridden per class. *)

open Goalcom_automata
open Goalcom

val user_of_table :
  ?name:string ->
  read:Io.User.obs Machine_user.reader ->
  write:Io.User.act Machine_user.writer ->
  Table.t ->
  Strategy.user
(** As [Machine_user.user_of_mealy], over a compiled table.  Readers
    are validated each round; the table step itself is branch-free. *)

val user_of_mealy :
  ?name:string ->
  read:Io.User.obs Machine_user.reader ->
  write:Io.User.act Machine_user.writer ->
  Mealy.t ->
  Strategy.user
(** Compile then wrap. *)

val server_of_table :
  ?name:string ->
  read:Io.Server.obs Machine_user.reader ->
  write:Io.Server.act Machine_user.writer ->
  Table.t ->
  Strategy.server

val user_class :
  ?name:string ->
  read:Io.User.obs Machine_user.reader ->
  write:Io.User.act Machine_user.writer ->
  Mealy.t Enum.t ->
  Strategy.user Enum.t
(** The compiled counterpart of [Machine_user.user_class]: each index
    decodes the machine and compiles it to a table.  Uncached — see
    {!cached_user_class}.  Strategy names are ["ctable-user#<index>"]
    (index-derived, so naming costs no re-encode). *)

val default_cache_capacity : int
(** 512 — covers the distinct indices of a deep Levin prefix with room
    to spare. *)

val cache_capacity : unit -> int
(** [GOALCOM_COMPILE_CACHE] parsed as a non-negative int, else
    {!default_cache_capacity}.  @raise Invalid_argument if the variable
    is set but not a non-negative integer. *)

val cached_user_class :
  ?capacity:int ->
  ?name:string ->
  read:Io.User.obs Machine_user.reader ->
  write:Io.User.act Machine_user.writer ->
  Mealy.t Enum.t ->
  Strategy.user Enum.t * Strategy.user option Lru.t
(** {!user_class} wrapped in a bounded decode+compile LRU
    ([Enum.cached]): fetching index [i] twice decodes and compiles
    once.  [capacity] defaults to {!cache_capacity}[ ()].  The cache is
    returned for hit-rate accounting. *)
