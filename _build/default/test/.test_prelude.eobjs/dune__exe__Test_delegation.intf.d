test/test_delegation.mli:
