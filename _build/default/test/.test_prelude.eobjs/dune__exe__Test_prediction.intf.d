test/test_prediction.mli:
