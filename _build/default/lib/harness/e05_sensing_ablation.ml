(* E5 / Table 3 — both halves of "safe and viable" are necessary.
   Corrupting safety (false positives) makes the universal user halt on
   unfinished histories; destroying viability (all-negative sensing)
   makes it search forever. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let title = "Sensing ablation on the printing goal"

let claim =
  "Theorem 1 needs both properties: safety makes halting sound, viability \
   makes the search terminate"

let alphabet = 6
let doc = [ 7; 3; 9 ]
let trials = 2

let run ~seed =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Printing.goal ~docs:[ doc ] ~alphabet () in
  let config = Exec.config ~horizon:12_000 () in
  let variants =
    [
      ("safe + viable (intact)", fun _rng -> Printing.sensing);
      ( "unsafe (15% false positives)",
        fun rng -> Sensing.corrupt_unsafe ~flip_to_positive:0.15 rng Printing.sensing );
      ( "unsafe (always positive)",
        fun rng -> Sensing.corrupt_unsafe ~flip_to_positive:1.0 rng Printing.sensing );
      ("unviable (always negative)", fun _rng -> Sensing.corrupt_unviable Printing.sensing);
    ]
  in
  let rows =
    List.map
      (fun (label, make_sensing) ->
        let successes = ref 0 and total = ref 0 and halts = ref 0 in
        List.iter
          (fun i ->
            let server = Printing.server ~alphabet (Enum.get_exn dialects i) in
            List.iter
              (fun t ->
                let rng = Rng.make (seed + (100 * i) + t) in
                let sensing = make_sensing (Rng.split rng) in
                let user =
                  Universal.finite
                    ~enum:(Printing.user_class ~alphabet dialects)
                    ~sensing ()
                in
                let outcome, _ =
                  Exec.run_outcome ~config ~goal ~user ~server rng
                in
                incr total;
                if outcome.Outcome.achieved then incr successes;
                if outcome.Outcome.halted then incr halts)
              (Listx.range 0 trials))
          (Listx.range 0 alphabet);
        [
          label;
          Table.cell_pct (float_of_int !successes /. float_of_int !total);
          Table.cell_pct (float_of_int !halts /. float_of_int !total);
        ])
      variants
  in
  Table.make ~title:"E5 (Table 3): sensing ablation (printing goal)"
    ~columns:[ "sensing variant"; "goal achieved"; "halted" ]
    ~notes:
      [
        "aggregated over all 6 server dialects, 2 trials each";
        "expected shape: intact ~100%/100%; unsafe halts often but achieves \
         rarely; unviable never halts hence never achieves";
      ]
    rows
