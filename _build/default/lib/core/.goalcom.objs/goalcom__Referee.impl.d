lib/core/referee.ml: History List Msg
