open Goalcom_prelude

type report = {
  goal : string;
  holds : bool;
  checked : int;
  counterexamples : string list;
}

let pp_report ppf r =
  Format.fprintf ppf "@[<v>forgivingness of %s: %s (%d cases)%a@]" r.goal
    (if r.holds then "HOLDS" else "VIOLATED")
    r.checked
    (fun ppf -> function
      | [] -> ()
      | exs ->
          List.iter (fun e -> Format.fprintf ppf "@,  counterexample: %s" e) exs)
    r.counterexamples

let max_counterexamples = 5

let check ?config ?tail_window ?(prefix_lengths = [ 0; 5; 20; 60 ]) ?(trials = 3)
    ~goal ~vandal ~rescuer server rng =
  let checked = ref 0 in
  let counterexamples = ref [] in
  List.iter
    (fun k ->
      if k < 0 then invalid_arg "Forgiving.check: negative prefix length";
      let user = Strategy.switch_after k vandal rescuer in
      List.iter
        (fun world_choice ->
          for trial = 1 to trials do
            incr checked;
            let config =
              let base =
                match config with Some c -> c | None -> Exec.config ()
              in
              Exec.{ base with world_choice }
            in
            let trial_rng = Rng.split rng in
            let outcome, _ =
              Exec.run_outcome ~config ?tail_window ~goal ~user ~server
                trial_rng
            in
            if not outcome.Outcome.achieved then
              counterexamples :=
                Printf.sprintf
                  "prefix=%d world=%d trial=%d: %s could not rescue after %s"
                  k world_choice trial (Strategy.name rescuer)
                  (Strategy.name vandal)
                :: !counterexamples
          done)
        (Listx.range 0 (Goal.num_worlds goal)))
    prefix_lengths;
  {
    goal = Goal.name goal;
    holds = !counterexamples = [];
    checked = !checked;
    counterexamples = Listx.take max_counterexamples (List.rev !counterexamples);
  }
