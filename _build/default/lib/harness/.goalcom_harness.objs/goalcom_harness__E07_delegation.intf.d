lib/harness/e07_delegation.mli: Goalcom_prelude
