(* Unit tests for the core model: messages, strategies and instances,
   histories and views, referees, outcomes and the execution engine. *)

open Goalcom
open Goalcom_prelude

(* Msg *)

let test_msg_equal_compare () =
  Alcotest.(check bool) "equal" true
    (Msg.equal (Msg.Pair (Msg.Int 1, Msg.Sym 2)) (Msg.Pair (Msg.Int 1, Msg.Sym 2)));
  Alcotest.(check bool) "not equal" false (Msg.equal (Msg.Int 1) (Msg.Int 2));
  Alcotest.(check bool) "silence" true (Msg.is_silence Msg.Silence);
  Alcotest.(check bool) "ordered" true (Msg.compare (Msg.Int 1) (Msg.Int 2) < 0)

let test_msg_pp () =
  Alcotest.(check string) "sym" "#3" (Msg.to_string (Msg.Sym 3));
  Alcotest.(check string) "pair" "(1,_)" (Msg.to_string (Msg.Pair (Msg.Int 1, Msg.Silence)));
  Alcotest.(check string) "seq" "[1;2]" (Msg.to_string (Msg.Seq [ Msg.Int 1; Msg.Int 2 ]))

let test_msg_accessors () =
  Alcotest.(check (option int)) "sym" (Some 4) (Msg.sym_opt (Msg.Sym 4));
  Alcotest.(check (option int)) "not sym" None (Msg.sym_opt (Msg.Int 4));
  Alcotest.(check (option string)) "text" (Some "x") (Msg.text_opt (Msg.Text "x"))

let test_msg_string_roundtrip () =
  let s = "hello world" in
  Alcotest.(check (option string)) "roundtrip" (Some s)
    (Msg.string_of_seq (Msg.seq_of_string s));
  Alcotest.(check (option string)) "reject" None
    (Msg.string_of_seq (Msg.Seq [ Msg.Text "no" ]))

(* Strategy / Instance *)

let counter_user =
  Strategy.make ~name:"counter"
    ~init:(fun () -> 0)
    ~step:(fun _rng n (_ : Io.User.obs) ->
      (n + 1, Io.User.say_world (Msg.Int n)))

let test_instance_steps_and_restart () =
  let rng = Rng.make 1 in
  let inst = Strategy.Instance.create counter_user in
  let obs round =
    { Io.User.from_server = Msg.Silence; from_world = Msg.Silence; round }
  in
  let a1 = Strategy.Instance.step rng inst (obs 1) in
  let a2 = Strategy.Instance.step rng inst (obs 2) in
  Alcotest.(check bool) "first" true (a1.Io.User.to_world = Msg.Int 0);
  Alcotest.(check bool) "second" true (a2.Io.User.to_world = Msg.Int 1);
  Alcotest.(check int) "rounds" 2 (Strategy.Instance.rounds inst);
  Strategy.Instance.restart inst;
  Alcotest.(check int) "rounds reset" 0 (Strategy.Instance.rounds inst);
  let a3 = Strategy.Instance.step rng inst (obs 3) in
  Alcotest.(check bool) "restarted" true (a3.Io.User.to_world = Msg.Int 0)

let test_fresh_instances_independent () =
  (* init is a thunk: two instances never share state. *)
  let rng = Rng.make 2 in
  let i1 = Strategy.Instance.create counter_user in
  let i2 = Strategy.Instance.create counter_user in
  let obs = { Io.User.from_server = Msg.Silence; from_world = Msg.Silence; round = 1 } in
  ignore (Strategy.Instance.step rng i1 obs);
  ignore (Strategy.Instance.step rng i1 obs);
  let a = Strategy.Instance.step rng i2 obs in
  Alcotest.(check bool) "independent" true (a.Io.User.to_world = Msg.Int 0)

let test_strategy_rename_map () =
  let u = Strategy.rename "renamed" counter_user in
  Alcotest.(check string) "rename" "renamed" (Strategy.name u);
  let doubled =
    Strategy.map_act
      (fun (a : Io.User.act) ->
        match a.to_world with
        | Msg.Int n -> { a with Io.User.to_world = Msg.Int (2 * n) }
        | _ -> a)
      counter_user
  in
  let rng = Rng.make 3 in
  let inst = Strategy.Instance.create doubled in
  let obs = { Io.User.from_server = Msg.Silence; from_world = Msg.Silence; round = 1 } in
  ignore (Strategy.Instance.step rng inst obs);
  let a = Strategy.Instance.step rng inst obs in
  Alcotest.(check bool) "mapped" true (a.Io.User.to_world = Msg.Int 2)

(* A tiny echo goal used to exercise the engine end to end: the world
   wants to hear Int 7 directly from the user. *)
let echo_world =
  World.make ~name:"echo-world"
    ~init:(fun () -> false)
    ~step:(fun _rng got (obs : Io.World.obs) ->
      let got = got || obs.from_user = Msg.Int 7 in
      (got, Io.World.say_user (Msg.Text (if got then "done" else "waiting"))))
    ~view:(fun got -> Msg.Text (if got then "done" else "waiting"))

let echo_goal =
  Goal.make ~name:"echo"
    ~worlds:[ echo_world ]
    ~referee:
      (Referee.finite "heard-7" (fun views -> List.mem (Msg.Text "done") views))

let send7_and_halt =
  Strategy.make ~name:"send7"
    ~init:(fun () -> `Sending)
    ~step:(fun _rng state (obs : Io.User.obs) ->
      match state with
      | `Sending -> (`Waiting, Io.User.say_world (Msg.Int 7))
      | `Waiting ->
          if obs.from_world = Msg.Text "done" then (`Waiting, Io.User.halt_act)
          else (`Waiting, Io.User.silent))

let idle_server =
  Strategy.stateless ~name:"idle-server" (fun (_ : Io.Server.obs) -> Io.Server.silent)

let test_exec_achieves_echo () =
  let outcome, history =
    Exec.run_outcome ~goal:echo_goal ~user:send7_and_halt ~server:idle_server
      (Rng.make 4)
  in
  Alcotest.(check bool) "achieved" true outcome.Outcome.achieved;
  Alcotest.(check bool) "halted" true outcome.Outcome.halted;
  (* Round 1: user sends 7.  Round 2: world hears it.  Round 3: user sees
     "done" and halts.  Plus drain. *)
  Alcotest.(check (option int)) "halt round" (Some 3) (History.halt_round history);
  Alcotest.(check int) "drain preserved" 5 (History.length history)

let test_exec_horizon_truncates () =
  let never_halt =
    Strategy.stateless ~name:"mute" (fun (_ : Io.User.obs) -> Io.User.silent)
  in
  let outcome, history =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:17 ())
      ~goal:echo_goal ~user:never_halt ~server:idle_server (Rng.make 5)
  in
  Alcotest.(check int) "horizon" 17 (History.length history);
  Alcotest.(check bool) "failed" false outcome.Outcome.achieved

let test_exec_message_timing () =
  (* A message sent by the user in round r is observed by the server in
     round r+1, and the server's reply in round r+2. *)
  let ping =
    Strategy.make ~name:"ping"
      ~init:(fun () -> true)
      ~step:(fun _rng first (_ : Io.User.obs) ->
        if first then (false, Io.User.say_server (Msg.Int 1))
        else (false, Io.User.silent))
  in
  let echo_server =
    Strategy.stateless ~name:"echo-server" (fun (obs : Io.Server.obs) ->
        match obs.from_user with
        | Msg.Silence -> Io.Server.silent
        | m -> Io.Server.say_user m)
  in
  let history =
    Exec.run
      ~config:(Exec.config ~horizon:5 ())
      ~goal:echo_goal ~user:ping ~server:echo_server (Rng.make 6)
  in
  let round n = List.nth (History.rounds history) (n - 1) in
  Alcotest.(check bool) "user sends in r1" true
    ((round 1).History.Round.user_to_server = Msg.Int 1);
  Alcotest.(check bool) "server silent in r1" true
    ((round 1).History.Round.server_to_user = Msg.Silence);
  Alcotest.(check bool) "server echoes in r2" true
    ((round 2).History.Round.server_to_user = Msg.Int 1)

let test_exec_determinism () =
  let run () =
    Exec.run ~goal:echo_goal ~user:send7_and_halt ~server:idle_server
      (Rng.make 7)
  in
  Alcotest.(check int) "same length" (History.length (run ()))
    (History.length (run ()));
  Alcotest.(check bool) "same views" true
    (History.world_views (run ()) = History.world_views (run ()))

(* History / View *)

let make_history () =
  Exec.run ~goal:echo_goal ~user:send7_and_halt ~server:idle_server (Rng.make 9)

let test_history_accessors () =
  let h = make_history () in
  Alcotest.(check int) "views = rounds + 1"
    (History.length h + 1)
    (List.length (History.world_views h));
  Alcotest.(check bool) "halted" true (History.halted h);
  Alcotest.(check bool) "views_rev reverses" true
    (History.world_views_rev h = List.rev (History.world_views h));
  let p = History.prefix 2 h in
  Alcotest.(check int) "prefix" 2 (History.length p);
  Alcotest.(check int) "oversized prefix is the whole history"
    (History.length h)
    (History.length (History.prefix (History.length h + 5) h));
  Alcotest.check_raises "negative prefix"
    (Invalid_argument "History.prefix: negative n (-1)") (fun () ->
      ignore (History.prefix (-1) h))

let test_history_validation () =
  Alcotest.check_raises "bad index"
    (Invalid_argument "History.make: round 1 has index 3") (fun () ->
      let r =
        {
          History.Round.index = 3;
          user_to_server = Msg.Silence;
          user_to_world = Msg.Silence;
          server_to_user = Msg.Silence;
          server_to_world = Msg.Silence;
          world_to_user = Msg.Silence;
          world_to_server = Msg.Silence;
          world_view = Msg.Silence;
          user_halted = false;
        }
      in
      ignore (History.make ~initial_world_view:Msg.Silence [ r ]))

let test_view_projection () =
  let h = make_history () in
  let v = View.of_history h in
  Alcotest.(check int) "one event per round" (History.length h) (View.length v);
  let events = View.events v in
  let first = List.hd events in
  Alcotest.(check int) "round numbering" 1 first.View.round;
  (* The user received silence in round 1 (nothing was in flight). *)
  Alcotest.(check bool) "round-1 obs silent" true
    (Msg.is_silence first.View.from_world && Msg.is_silence first.View.from_server);
  (* The user's round-1 send is its Int 7 to the world. *)
  Alcotest.(check bool) "round-1 send" true (first.View.to_world = Msg.Int 7);
  (* Event r carries the messages emitted in round r-1. *)
  let second = List.nth events 1 in
  Alcotest.(check bool) "lagged delivery" true
    (second.View.from_world = Msg.Text "waiting")

let test_view_prefixes_consistent () =
  let h = make_history () in
  let prefixes = View.prefixes h in
  Alcotest.(check int) "count" (History.length h) (List.length prefixes);
  List.iteri
    (fun i v -> Alcotest.(check int) "length" (i + 1) (View.length v))
    prefixes;
  let full = View.of_history h in
  Alcotest.(check bool) "last prefix = full view" true
    (View.events (Listx.last prefixes) = View.events full)

let test_view_last_n () =
  let h = make_history () in
  let v = View.of_history h in
  let last2 = View.last_n 2 v in
  Alcotest.(check int) "two" 2 (List.length last2);
  Alcotest.(check bool) "chronological" true
    ((List.hd last2).View.round < (List.nth last2 1).View.round)

(* Referee / Outcome *)

let test_referee_finite () =
  let r = Referee.finite "has-3" (fun views -> List.mem (Msg.Int 3) views) in
  Alcotest.(check bool) "finite" true (Referee.is_finite r);
  Alcotest.(check string) "name" "has-3" (Referee.name r)

let test_referee_compact_violations () =
  (* Compact referee: prefix acceptable iff current view is >= 0. *)
  let r =
    Referee.compact "non-negative" (fun views_rev ->
        match views_rev with Msg.Int n :: _ -> n >= 0 | _ -> true)
  in
  let rounds =
    List.mapi
      (fun i v ->
        {
          History.Round.index = i + 1;
          user_to_server = Msg.Silence;
          user_to_world = Msg.Silence;
          server_to_user = Msg.Silence;
          server_to_world = Msg.Silence;
          world_to_user = Msg.Silence;
          world_to_server = Msg.Silence;
          world_view = Msg.Int v;
          user_halted = false;
        })
      [ 1; -1; 2; -5; 3 ]
  in
  let h = History.make ~initial_world_view:(Msg.Int 0) rounds in
  Alcotest.(check (list int)) "violation rounds" [ 2; 4 ] (Referee.violations r h)

let test_outcome_compact_tail_window () =
  let referee =
    Referee.compact "non-negative" (fun views_rev ->
        match views_rev with Msg.Int n :: _ -> n >= 0 | _ -> true)
  in
  let world_of_values values =
    World.make ~name:"scripted"
      ~init:(fun () -> values)
      ~step:(fun _rng vs (_ : Io.World.obs) ->
        match vs with
        | [] -> ([], Io.World.silent)
        | _ :: rest -> (rest, Io.World.silent))
      ~view:(fun vs -> Msg.Int (match vs with v :: _ -> v | [] -> 0))
  in
  (* Violations early only: achieved.  Violations in tail: failed. *)
  let goal_of values =
    Goal.make ~name:"scripted" ~worlds:[ world_of_values values ] ~referee
  in
  let mute = Strategy.stateless ~name:"mute" (fun (_ : Io.User.obs) -> Io.User.silent) in
  let run goal =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:10 ())
      ~tail_window:3 ~goal ~user:mute ~server:idle_server (Rng.make 10)
  in
  (* The world view in round r is the value at index r; index 0 is the
     initial view (not judged). *)
  let early, _ = run (goal_of [ -1; -1; -1; 1; 1; 1; 1; 1; 1; 1; 1 ]) in
  Alcotest.(check bool) "early violations ok" true early.Outcome.achieved;
  Alcotest.(check int) "counted" 2 early.Outcome.violations;
  let late, _ = run (goal_of [ 1; 1; 1; 1; 1; 1; 1; 1; 1; -1; 1 ]) in
  Alcotest.(check bool) "late violation fails" false late.Outcome.achieved

let test_goal_worlds () =
  let g =
    Goal.make ~name:"multi"
      ~worlds:[ echo_world; echo_world; echo_world ]
      ~referee:(Referee.finite "t" (fun _ -> true))
  in
  Alcotest.(check int) "num worlds" 3 (Goal.num_worlds g);
  Alcotest.(check string) "choice cycles" (World.name (Goal.world ~choice:4 g))
    (World.name (Goal.world ~choice:1 g));
  Alcotest.check_raises "empty" (Invalid_argument "Goal.make: no worlds")
    (fun () ->
      ignore
        (Goal.make ~name:"x" ~worlds:[] ~referee:(Referee.finite "t" (fun _ -> true))))

let test_exec_config_validation () =
  Alcotest.check_raises "horizon"
    (Invalid_argument "Exec.config: horizon must be positive") (fun () ->
      ignore (Exec.config ~horizon:0 ()))

let () =
  Alcotest.run "core"
    [
      ( "msg",
        [
          Alcotest.test_case "equal/compare" `Quick test_msg_equal_compare;
          Alcotest.test_case "pp" `Quick test_msg_pp;
          Alcotest.test_case "accessors" `Quick test_msg_accessors;
          Alcotest.test_case "string roundtrip" `Quick test_msg_string_roundtrip;
        ] );
      ( "strategy",
        [
          Alcotest.test_case "instance steps/restart" `Quick test_instance_steps_and_restart;
          Alcotest.test_case "instances independent" `Quick test_fresh_instances_independent;
          Alcotest.test_case "rename/map" `Quick test_strategy_rename_map;
        ] );
      ( "exec",
        [
          Alcotest.test_case "achieves echo goal" `Quick test_exec_achieves_echo;
          Alcotest.test_case "horizon truncates" `Quick test_exec_horizon_truncates;
          Alcotest.test_case "message timing" `Quick test_exec_message_timing;
          Alcotest.test_case "determinism" `Quick test_exec_determinism;
          Alcotest.test_case "config validation" `Quick test_exec_config_validation;
        ] );
      ( "history",
        [
          Alcotest.test_case "accessors" `Quick test_history_accessors;
          Alcotest.test_case "validation" `Quick test_history_validation;
        ] );
      ( "view",
        [
          Alcotest.test_case "projection" `Quick test_view_projection;
          Alcotest.test_case "prefixes" `Quick test_view_prefixes_consistent;
          Alcotest.test_case "last_n" `Quick test_view_last_n;
        ] );
      ( "referee",
        [
          Alcotest.test_case "finite" `Quick test_referee_finite;
          Alcotest.test_case "compact violations" `Quick test_referee_compact_violations;
          Alcotest.test_case "outcome tail window" `Quick test_outcome_compact_tail_window;
          Alcotest.test_case "goal worlds" `Quick test_goal_worlds;
        ] );
    ]
