(** Sensing: the user's feedback about its progress (§3).

    A sensing function is a predicate of the user's view of the
    execution, producing a Boolean indication each round.  Two
    properties make sensing useful as feedback:

    {b Compact goals.}
    - {e Safety}: when the user is coupled with a server with which the
      current execution does {e not} lead to achieving the goal,
      negative indications keep being produced (infinitely often).
    - {e Viability}: for every server in the class there is a user
      strategy whose executions produce only finitely many negative
      indications (and achieve the goal).

    {b Finite goals.}
    - {e Safety}: a positive indication is only produced when the
      history so far is acceptable (so halting on a positive indication
      is sound).
    - {e Viability}: with every server in the class, some user strategy
      obtains a positive indication.

    {b Incremental sensing.}  Every sensor carries two faces: [sense],
    the historical whole-view predicate, and a spawnable incremental
    instance ({!start}/{!observe}/{!verdict}) that absorbs one
    {!View.event} per round and answers the current verdict in O(1).
    The two agree on every prefix: [verdict] after observing the events
    of a view equals [sense] of that view.  The round loop (universal
    users, {!halt_on_positive}, {!verdicts}) rides the incremental face;
    [sense] remains for one-shot judgements of an arbitrary view.

    The [check_*] validators below are Monte-Carlo approximations of
    the quantified safety/viability statements over horizon-bounded
    executions; each returns a structured report with counterexamples,
    and they are what the test-suite and the experiment harness run.
    Each validator cycles its trials through the goal's
    non-deterministic worlds (raising the trial count to the number of
    worlds if necessary), so the world choice is quantified over as
    well. *)

type verdict = Positive | Negative

type state
(** A live incremental sensing instance.  Thread it linearly: feed each
    round's event with {!observe} and read the current verdict with
    {!verdict}.  Instances may carry interior mutable buffers, so do not
    fork an old [state] value after observing past it. *)

type t = {
  name : string;
  sense : View.t -> verdict;  (** whole-view verdict *)
  spawn : unit -> state;  (** fresh incremental instance *)
}

val start : t -> state
(** Fresh instance; its verdict is the empty-view verdict. *)

val observe : state -> View.event -> state
(** Absorb one round's event.  O(1) for the native constructors below;
    for {!make}-based sensors it costs one [sense] call (on the view
    extended so far), the historical per-round price. *)

val verdict : state -> verdict
(** Verdict on the prefix observed so far — O(1), no re-evaluation. *)

val make : name:string -> (View.t -> verdict) -> t
(** Compatibility constructor from a whole-view function.  The spawned
    instance accumulates the view and calls [sense] once per observed
    event — same call pattern (and rng-draw sequence, for effectful
    sensors) as the historical engine. *)

val incremental :
  name:string ->
  init:(unit -> 's * verdict) ->
  step:('s -> View.event -> 's * verdict) ->
  t
(** Native incremental sensor: [init] yields the state and empty-view
    verdict, [step] absorbs one event.  The derived [sense] replays the
    view's events through [step]. *)

val of_latest : name:string -> empty:bool -> (View.event -> bool) -> t
(** Sensor that judges only the latest event ([true] maps to
    [Positive]); [empty] is the verdict (as a bool) on the empty view.
    O(1) per round and per [sense] call. *)

val of_recent : name:string -> window:int -> (View.event -> bool) -> t
(** [Positive] iff some event among the last [window] satisfies the
    predicate; [Negative] on the empty view.  The incremental instance
    tracks the index of the most recent hit, so each round is O(1).
    @raise Invalid_argument unless [window >= 1]. *)

val constant : verdict -> t

val of_predicate : name:string -> (View.t -> bool) -> t
(** [true] maps to [Positive].  Whole-view: the spawned instance costs
    one predicate call per round (see {!make}); prefer {!of_latest} /
    {!of_recent} / {!incremental} when the predicate has an O(1)
    incremental form. *)

val verdicts : t -> History.t -> (int * verdict) list
(** The indication at every round of a history (round, verdict) — a
    single incremental pass over the history's events. *)

val negatives_after : t -> History.t -> int -> int
(** Number of negative indications strictly after the given round; one
    incremental pass. *)

val tolerant : window:int -> threshold:int -> t -> t
(** Fault-tolerant wrapper for {e compact-goal switching}: the wrapped
    function reports [Negative] only when the underlying sensing is
    Negative on at least [threshold] of the last [window] prefixes of
    the view (i.e. [threshold]-of-[window] recent raw negatives).
    Transient faults — an isolated bad round — no longer evict the
    correct strategy, while persistent failure still produces negatives
    infinitely often, so compact safety is preserved.  Not for use with
    finite-goal halting (there, flipping Negative to Positive is the
    unsafe direction).

    The incremental instance keeps a ring buffer of the last [window]
    raw verdicts plus a running negative count, so each round costs one
    base-sensor observation and O(1) bookkeeping — the per-round price
    no longer grows with the view.  The whole-view [sense] closure
    retains the historical implementation (re-sensing up to [window]
    prefixes via {!View.drop_latest}), so one-shot calls on arbitrary
    views behave exactly as before.  When tracing is on, each raw
    negative that the window masks to [Positive] emits a {!Trace.Sense}
    event whose sensor name carries a ["/mask"] suffix ([clock] = raw
    negatives in the window, [patience] = [threshold]).
    @raise Invalid_argument unless [1 <= threshold <= window]. *)

val corrupt_unsafe :
  flip_to_positive:float -> Goalcom_prelude.Rng.t -> t -> t
(** Ablation helper: with the given probability a [Negative] indication
    is reported as [Positive] — breaking safety while keeping viability. *)

val corrupt_unviable : t -> t
(** Ablation helper: all indications become [Negative] — trivially safe
    but not viable. *)

val halt_on_positive : t -> Strategy.user -> Strategy.user
(** A user that behaves like the given one but halts as soon as sensing
    reports [Positive] on the view of the completed rounds.  The inner
    strategy's own halt requests are suppressed, so in the resulting
    runs every halt is attributable to a positive indication (this is
    the harness behind {!check_safety_finite}). *)

(** Validation reports. *)
type report = {
  property : string;
  holds : bool;
  checked : int;  (** number of (server, trial) combinations examined *)
  counterexamples : string list;  (** human-readable, possibly truncated *)
}

val pp_report : Format.formatter -> report -> unit

val check_safety_compact :
  ?config:Exec.config ->
  ?tail_window:int ->
  ?trials:int ->
  goal:Goal.t ->
  users:Strategy.user list ->
  servers:Strategy.server list ->
  t ->
  Goalcom_prelude.Rng.t ->
  report
(** For every listed server and user and trial: if the run fails the
    goal, sensing must produce a negative indication in the tail
    window. *)

val check_viability_compact :
  ?config:Exec.config ->
  ?tail_window:int ->
  ?trials:int ->
  goal:Goal.t ->
  user_for:(Strategy.server -> Strategy.user) ->
  servers:Strategy.server list ->
  t ->
  Goalcom_prelude.Rng.t ->
  report
(** For every listed server, the designated user strategy must achieve
    the goal with no negative indication in the tail window. *)

val check_safety_finite :
  ?config:Exec.config ->
  ?trials:int ->
  goal:Goal.t ->
  users:Strategy.user list ->
  servers:Strategy.server list ->
  t ->
  Goalcom_prelude.Rng.t ->
  report
(** Whenever sensing reports [Positive] at some round of a run, the
    finite referee must accept the history truncated at that round. *)

val check_viability_finite :
  ?config:Exec.config ->
  ?trials:int ->
  goal:Goal.t ->
  user_for:(Strategy.server -> Strategy.user) ->
  servers:Strategy.server list ->
  t ->
  Goalcom_prelude.Rng.t ->
  report
(** With every listed server, the designated user strategy must obtain a
    positive indication at some round. *)
