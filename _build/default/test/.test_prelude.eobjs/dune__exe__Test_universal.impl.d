test/test_universal.ml: Alcotest Enum Exec Goal Goalcom Goalcom_automata Goalcom_prelude History Io Levin List Msg Outcome Printf Referee Rng Sensing Seq Strategy Universal View World
