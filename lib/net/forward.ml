open Goalcom
open Goalcom_automata
open Goalcom_servers
open Goalcom_goals

let data_cmd = 0
let reset_cmd = 1
let min_alphabet = 2

let check_alphabet alphabet =
  if alphabet < min_alphabet then
    invalid_arg "Forward: alphabet must have at least 2 symbols"

type scenario = { doc : int list; alpha : int }

let scenario ~payload_alphabet doc =
  if doc = [] then invalid_arg "Forward.scenario: empty payload";
  if payload_alphabet < 1 then invalid_arg "Forward.scenario: empty alphabet";
  List.iter
    (fun s ->
      if s < 0 || s >= payload_alphabet then
        invalid_arg "Forward.scenario: payload symbol out of range")
    doc;
  { doc; alpha = payload_alphabet }

let payload s = s.doc

(* --- the relay -------------------------------------------------------- *)

(* The relay holds only the wire machine's state.  The wire is stepped
   with the per-step RNG — never one captured at construction — so a
   relay shared by repeated runs (or incarnations) stays bit-identical
   for every jobs count; see the PR 1 Channel.drop_inbound audit. *)
let relay ?wire ~alphabet ~payload_alphabet () =
  check_alphabet alphabet;
  (match wire with
  | Some (w : Prob_mealy.t) ->
      if w.Prob_mealy.inputs <> payload_alphabet
         || w.Prob_mealy.outputs <> payload_alphabet
      then invalid_arg "Forward.relay: wire alphabet mismatch"
  | None -> ());
  Strategy.make
    ~name:
      (match wire with
      | None -> "net-relay"
      | Some _ -> "net-relay(wire)")
    ~init:(fun () -> 0 (* wire state *))
    ~step:(fun rng wstate (obs : Io.Server.obs) ->
      match obs.from_user with
      | Msg.Pair (Msg.Sym c, Msg.Pair (Msg.Int seq, Msg.Int sym))
        when c = data_cmd && seq >= 0 && sym >= 0 && sym < payload_alphabet ->
          let wstate, sym =
            match wire with
            | None -> (wstate, sym)
            | Some w ->
                let st, o = Prob_mealy.step rng w wstate sym in
                (st, o)
          in
          (wstate, Io.Server.say_world (Msg.Pair (Msg.Int seq, Msg.Int sym)))
      | Msg.Sym c when c = reset_cmd ->
          (wstate, Io.Server.say_world (Msg.Sym reset_cmd))
      | _ -> (wstate, Io.Server.silent))

let server ?wire ~alphabet ~payload_alphabet d =
  Transform.with_dialect d (relay ?wire ~alphabet ~payload_alphabet ())

let server_class ?wire ~alphabet ~payload_alphabet dialects =
  Transform.dialect_class
    ~base:(relay ?wire ~alphabet ~payload_alphabet ())
    dialects

(* --- the goal --------------------------------------------------------- *)

let world_of_scenario s =
  let len = List.length s.doc in
  World.make
    ~name:(Printf.sprintf "net-forward-world(%d syms)" len)
    ~init:(fun () -> [])
    ~step:(fun _rng received (obs : Io.World.obs) ->
      let received =
        match obs.from_server with
        | Msg.Pair (Msg.Int seq, Msg.Int sym)
          when seq = List.length received && seq < len ->
            received @ [ sym ]
        | Msg.Sym c when c = reset_cmd -> []
        | _ -> received
      in
      (received, Io.World.say_user (Codec.pair_of_ints s.doc received)))
    ~view:(fun received -> Codec.pair_of_ints s.doc received)

let delivered view =
  match Codec.pair_of_ints_opt view with
  | Some (doc, received) -> doc <> [] && received = doc
  | None -> false

let referee = Referee.finite_exists "payload-forwarded" delivered

let goal ~scenarios ~alphabet () =
  check_alphabet alphabet;
  if scenarios = [] then invalid_arg "Forward.goal: no scenarios";
  Goal.make
    ~name:(Printf.sprintf "net-forward(alphabet=%d)" alphabet)
    ~worlds:(List.map world_of_scenario scenarios)
    ~referee

(* --- users ------------------------------------------------------------ *)

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | x :: xs, y :: ys -> x = y && is_prefix xs ys
  | _ :: _, [] -> false

(* Stop-and-wait: the latest broadcast alone decides the next frame, so
   losses retransmit, duplicates dedup at the world's sequence check,
   and a derailed prefix (wire corruption that slipped through) is
   cleared and resent. *)
let informed_user ~alphabet d =
  check_alphabet alphabet;
  let send m = Io.User.say_server (Dialect_msg.encode d m) in
  Strategy.stateless
    ~name:(Printf.sprintf "net-arq@%s" (Format.asprintf "%a" Dialect.pp d))
    (fun (obs : Io.User.obs) ->
      match Codec.pair_of_ints_opt obs.from_world with
      | None -> Io.User.silent
      | Some (doc, received) ->
          if received = doc then Io.User.halt_act
          else if is_prefix received doc then
            let k = List.length received in
            send
              (Msg.Pair
                 (Msg.Sym data_cmd, Msg.Pair (Msg.Int k, Msg.Int (List.nth doc k))))
          else send (Msg.Sym reset_cmd))

let user_class ~alphabet dialects =
  Enum.map
    ~name:(Printf.sprintf "net-arq-users(%s)" (Enum.name dialects))
    (fun d -> informed_user ~alphabet d)
    dialects

let sensing_window = 12

let sensing =
  Sensing.of_recent ~name:"payload-forwarded" ~window:sensing_window (fun e ->
      delivered e.View.from_world)

let universal_user ?schedule ?checkpoint ?stats ~alphabet dialects =
  Universal.finite ?schedule ?checkpoint ?stats
    ~enum:(user_class ~alphabet dialects)
    ~sensing ()
