(** The sum-check protocol (Lund–Fortnow–Karloff–Nisan) for CNF model
    counting.

    The prover claims a value for Σ_{x ∈ \{0,1\}^n} F(x), where F is the
    arithmetized formula ({!Arith}).  In round i the prover sends the
    univariate polynomial
    g_i(X) = Σ_{x_{i+1..n}} F(r_1, …, r_{i-1}, X, x_{i+1..n})
    (as d+1 samples); the verifier checks g_i(0) + g_i(1) against the
    running claim, draws a random challenge r_i, and reduces the claim
    to g_i(r_i).  After round n the verifier evaluates F at the
    challenge point itself.  The verifier's work is polynomial; the
    honest prover's is exponential — exactly the asymmetry delegated to
    the server in the counting goal.  A false claim survives with
    probability at most n·d/p.

    This realises, inside this library's scope, the kind of interactive
    verification the paper's predecessor (Juba–Sudan) used for
    PSPACE-complete delegation: the user can check much more than it
    could compute. *)

open Goalcom_sat

type prover = Cnf.t -> prefix:Gf.t list -> Gf.t array
(** A prover answers round [length prefix + 1] with the samples
    (evaluations at 0..d) of its round polynomial, given the challenges
    fixed so far. *)

val honest_prover : prover
(** Computes the true round polynomial by summing over the remaining
    boolean cube. *)

val tampered_prover : tamper_round:int -> offset:int -> prover
(** Honest except in round [tamper_round], where it adds
    [offset · (2X − 1)] to the polynomial — a perturbation that still
    satisfies g(0) + g(1) = claim, so the lie is only caught by a later
    round or the final evaluation.  @raise Invalid_argument if
    [tamper_round < 1] or [offset = 0] at construction time. *)

type step =
  | Continue of { claim : Gf.t; challenges : Gf.t list }
      (** verified so far; challenges in protocol order *)
  | Accepted
  | Rejected of string

val verify_round :
  Goalcom_prelude.Rng.t ->
  Cnf.t ->
  claim:Gf.t ->
  challenges:Gf.t list ->
  samples:Gf.t array ->
  step
(** One verifier step: consistency check, challenge draw, claim
    reduction, and the final formula evaluation when all variables are
    bound. *)

val run :
  Goalcom_prelude.Rng.t ->
  Cnf.t ->
  claimed:int ->
  prover:prover ->
  bool * int
(** Run the whole protocol; [(accepted, rounds_executed)].  The honest
    prover with the true count is always accepted; any false claim is
    rejected except with probability ≤ n·d/p. *)
