examples/quickstart.mli:
