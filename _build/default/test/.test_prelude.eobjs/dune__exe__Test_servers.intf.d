test/test_servers.mli:
