lib/harness/e10_amortisation.mli: Goalcom_prelude
