(* Admission control: a bounded live set over bounded per-class queues
   served by weighted deficit round-robin.  Overflow is shed
   immediately — under a storm the engine degrades by refusing work,
   not by growing unbounded state.  Queues hold bare session ids; all
   decisions are made by the engine in id order, so queue evolution is
   deterministic.

   Scheduling.  Each class owns a FIFO queue and a weight.  [promote]
   serves the classes cyclically from a cursor that persists across
   ticks: every pass over a class credits its deficit counter with its
   weight, and each admission spends one credit.  A class whose head
   is blocked (open breaker, reported by [try_start] returning false)
   is skipped for the rest of the call but keeps its banked credit
   (capped at one weight), so head-of-line blocking is confined to the
   blocked class — other classes keep being served — which is exactly
   the starvation the old single-FIFO deliberately exhibited and this
   replaces.  With a single class of weight 1 the schedule degenerates
   to the old FIFO, admission for admission.

   The primitives stay split (claim / enqueue / promote / release):
   the engine interleaves a breaker check between "is there a slot?"
   and "take the slot", and [promote]'s callbacks let it do that
   per-session without this module knowing about breakers. *)

type klass = {
  cname : string;
  weight : int;
  queue : int Queue.t;
  mutable deficit : int;
}

type t = {
  max_live : int;
  queue_capacity : int;
  classes : klass array;
  default_class : int;
  mutable cursor : int; (* next class promote starts serving from *)
  mutable queued : int; (* total across classes *)
  mutable live : int;
  mutable shed : int;
}

let make ?(classes = []) ~max_live ~queue_capacity () =
  if max_live < 1 then invalid_arg "Admission.make: max_live must be >= 1";
  if queue_capacity < 0 then
    invalid_arg "Admission.make: queue_capacity must be >= 0";
  List.iter
    (fun (cname, w) ->
      if w < 1 then
        invalid_arg
          (Printf.sprintf "Admission.make: class %s weight must be >= 1" cname))
    classes;
  let classes =
    if List.mem_assoc "default" classes then classes
    else classes @ [ ("default", 1) ]
  in
  let seen = Hashtbl.create 7 in
  List.iter
    (fun (cname, _) ->
      if Hashtbl.mem seen cname then
        invalid_arg ("Admission.make: duplicate class " ^ cname);
      Hashtbl.add seen cname ())
    classes;
  let classes =
    Array.of_list
      (List.map
         (fun (cname, weight) ->
           { cname; weight; queue = Queue.create (); deficit = 0 })
         classes)
  in
  let default_class = ref 0 in
  Array.iteri
    (fun i c -> if c.cname = "default" then default_class := i)
    classes;
  {
    max_live;
    queue_capacity;
    classes;
    default_class = !default_class;
    cursor = 0;
    queued = 0;
    live = 0;
    shed = 0;
  }

let class_index t cname =
  let rec go i =
    if i >= Array.length t.classes then t.default_class
    else if t.classes.(i).cname = cname then i
    else go (i + 1)
  in
  go 0

let live t = t.live
let queued t = t.queued
let queued_in t cname = Queue.length t.classes.(class_index t cname).queue
let shed_count t = t.shed
let has_capacity t = t.live < t.max_live

let claim t =
  if t.live >= t.max_live then invalid_arg "Admission.claim: live set full";
  t.live <- t.live + 1

let enqueue t ~cname id =
  if t.queued < t.queue_capacity then begin
    Queue.push id t.classes.(class_index t cname).queue;
    t.queued <- t.queued + 1;
    true
  end
  else begin
    t.shed <- t.shed + 1;
    false
  end

let release t =
  if t.live <= 0 then invalid_arg "Admission.release: live set empty";
  t.live <- t.live - 1

let pop c t =
  ignore (Queue.pop c.queue);
  t.queued <- t.queued - 1

(* Drop queued sessions that died while waiting (deadlines).  Only
   heads are inspected; a dead id deeper in the queue is dropped when
   it surfaces.  Runs regardless of capacity so a tick with a full
   live set still clears its dead heads. *)
let drain_terminal_heads c t ~terminal =
  let continue = ref true in
  while !continue do
    match Queue.peek_opt c.queue with
    | Some id when terminal id -> pop c t
    | _ -> continue := false
  done

let promote t ~terminal ~try_start =
  let k = Array.length t.classes in
  Array.iter (fun c -> drain_terminal_heads c t ~terminal) t.classes;
  let blocked = Array.make k false in
  let progress = ref true in
  while !progress && has_capacity t do
    progress := false;
    for off = 0 to k - 1 do
      let ci = (t.cursor + off) mod k in
      let c = t.classes.(ci) in
      if Queue.is_empty c.queue then c.deficit <- 0
      else if not blocked.(ci) then begin
        c.deficit <- min (c.deficit + c.weight) c.weight;
        let serving = ref true in
        while !serving && c.deficit > 0 && has_capacity t do
          drain_terminal_heads c t ~terminal;
          match Queue.peek_opt c.queue with
          | None ->
              c.deficit <- 0;
              serving := false
          | Some id ->
              if try_start id then begin
                pop c t;
                c.deficit <- c.deficit - 1;
                progress := true
              end
              else begin
                blocked.(ci) <- true;
                serving := false
              end
        done;
        (* Capacity ran out mid-service: resume here next tick. *)
        if not (has_capacity t) then t.cursor <- ci
      end
    done
  done
