lib/servers/transform.ml: Dialect Dialect_msg Enum Format Goalcom Goalcom_automata Goalcom_prelude Io Msg Printf Rng Strategy
