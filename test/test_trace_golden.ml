(* Golden-trace regression tests: replay the reference runs of
   Trace_cases and diff their JSONL rendering line by line against the
   committed files in test/golden/.  A divergence points at the first
   differing line; if the change is intended, regenerate with
   `dune exec bin/main.exe -- trace-golden test/golden`. *)

open Goalcom
open Goalcom_harness

let golden_path name = Filename.concat "golden" (name ^ ".jsonl")

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let regen_hint =
  "if the new trace is correct, regenerate with `dune exec bin/main.exe -- \
   trace-golden test/golden`"

let check_case (c : Trace_cases.case) () =
  let expected = read_lines (golden_path c.name) in
  let actual = Goalcom_obs.Jsonl.to_lines (c.events ()) in
  let rec diff line expected actual =
    match (expected, actual) with
    | [], [] -> ()
    | e :: _, [] ->
        Alcotest.failf
          "%s: trace ends at line %d but the golden continues with:\n  %s\n%s"
          c.name (line - 1) e regen_hint
    | [], a :: _ ->
        Alcotest.failf
          "%s: golden ends at line %d but the trace continues with:\n  %s\n%s"
          c.name (line - 1) a regen_hint
    | e :: es, a :: more ->
        if String.equal e a then diff (line + 1) es more
        else
          Alcotest.failf
            "%s: first divergence at line %d\n  golden: %s\n  actual: %s\n%s"
            c.name line e a regen_hint
  in
  diff 1 expected actual

(* The replayed traces must also satisfy the standard invariants — a
   golden file that freezes a broken trace is worse than no golden. *)
let check_invariants (c : Trace_cases.case) () =
  match Trace.check Trace.standard (c.events ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" c.name msg

(* Cheap well-formedness sweep over the committed files themselves:
   every line is one braced object carrying an "ev" tag. *)
let check_shape (c : Trace_cases.case) () =
  let lines = read_lines (golden_path c.name) in
  Alcotest.(check bool) "non-empty" true (lines <> []);
  List.iteri
    (fun i line ->
      let ok =
        String.length line > 8
        && String.sub line 0 7 = "{\"ev\":\""
        && line.[String.length line - 1] = '}'
      in
      if not ok then
        Alcotest.failf "%s: line %d is not a tagged JSON object: %s" c.name
          (i + 1) line)
    lines

let cases_of f =
  List.map
    (fun (c : Trace_cases.case) -> Alcotest.test_case c.name `Quick (f c))
    Trace_cases.all

let () =
  Alcotest.run "trace-golden"
    [
      ("diff", cases_of check_case);
      ("invariants", cases_of check_invariants);
      ("shape", cases_of check_shape);
    ]
