open Goalcom_prelude
open Goalcom
module Fault = Goalcom_faults.Fault

(* The supervised concurrent session engine.

   Thousands of live sessions multiplex over an event-driven scheduler:
   each scheduler *tick* steps every running session's Exec.Stepper by
   a quantum of rounds (in parallel over the domain pool), then makes
   all supervision decisions — admissions, restarts, wedge kills,
   breaker transitions — sequentially in session-id order.  Because
   the parallel part only advances state machines that nothing else
   touches, and every decision that consumes randomness or mutates
   shared state happens in the sequential phase in a fixed order, the
   whole run is bit-identical across jobs counts.

   Tracing: every session owns a buffer; its incarnations' run events
   are captured by installing a buffering sink around stepper creation
   and around each quantum, and the engine appends its own Supervise
   events directly.  The merged trace — buffers concatenated in
   session-id order — is replayed into the ambient sink at the end, so
   Trace.split_runs on one session's slice segments its incarnations
   exactly as it does for the crash-resume harness. *)

type spec = {
  sname : string;
  server_class : string;
  goal : Goal.t;
  make_user : checkpoint:Universal.checkpoint -> Strategy.user;
  server : Strategy.server;
  exec_config : Exec.config;
}

type group = {
  gname : string;
  members : int array;
  arbitrate :
    tick:int ->
    report:(session:int -> action:string -> detail:string -> unit) ->
    unit;
}

type config = {
  quantum : int;
  max_live : int;
  queue_capacity : int;
  arrivals : Arrival.t;
  classes : (string * int) list;
  round_budget : int;
  deadline : int;
  max_ticks : int;
  policy : Policy.t;
  breaker_threshold : int;
  breaker_cooldown : int;
}

let config ?(quantum = 32) ?(max_live = 64) ?(queue_capacity = 4096)
    ?arrivals_per_tick ?arrivals ?(classes = []) ?(round_budget = 0)
    ?(deadline = 0) ?(max_ticks = 10_000) ?(policy = Policy.default)
    ?(breaker_threshold = 5) ?(breaker_cooldown = 8) () =
  if quantum < 1 then invalid_arg "Engine.config: quantum must be >= 1";
  if max_ticks < 1 then invalid_arg "Engine.config: max_ticks must be >= 1";
  if round_budget < 0 || deadline < 0 then
    invalid_arg "Engine.config: negative budget/deadline";
  let arrivals =
    (* [?arrivals] wins; the integer knob is kept for callers predating
       rate processes (0 = everything at tick 1, as before). *)
    match (arrivals, arrivals_per_tick) with
    | Some a, _ -> a
    | None, None | None, Some 0 -> Arrival.Bang
    | None, Some k when k > 0 -> Arrival.Constant k
    | None, Some _ -> invalid_arg "Engine.config: negative arrivals"
  in
  {
    quantum;
    max_live;
    queue_capacity;
    arrivals;
    classes;
    round_budget;
    deadline;
    max_ticks;
    policy;
    breaker_threshold;
    breaker_cooldown;
  }

let default_config = config ()

type outcome =
  | Done of { rounds : int; incarnations : int; state : string }
  | Shed
  | Gave_up of { incarnations : int }
  | Deadline_exceeded of { incarnations : int }
  | Unfinished

let outcome_line id = function
  | Done { rounds; incarnations; state } ->
      Printf.sprintf "%d done rounds=%d inc=%d state=%s" id rounds incarnations
        state
  | Shed -> Printf.sprintf "%d shed" id
  | Gave_up { incarnations } -> Printf.sprintf "%d gave-up inc=%d" id incarnations
  | Deadline_exceeded { incarnations } ->
      Printf.sprintf "%d deadline inc=%d" id incarnations
  | Unfinished -> Printf.sprintf "%d unfinished" id

type report = {
  outcomes : outcome array;
  ticks : int;
  completed : int;
  shed : int;
  gave_up : int;
  deadlines : int;
  unfinished : int;
  restarts : int;
  trips : int;
  total_rounds : int;
  p50_rounds : float;
  p99_rounds : float;
  p999_rounds : float;
  digest : string;
  checkpoints : Universal.checkpoint array;
}

(* --- internal session state ------------------------------------------ *)

type phase =
  | Pending (* not yet arrived *)
  | Waiting (* in the admission queue *)
  | Running of Exec.Stepper.t
  | Backoff of { due : int }
  | Terminal of outcome

type session = {
  id : int;
  spec : spec;
  rng : Rng.t; (* feeds every incarnation's stepper *)
  sup_rng : Rng.t; (* feeds backoff jitter *)
  checkpoint : Universal.checkpoint;
  fault : Fault.t; (* this session's chaos storm stack *)
  buf : Trace.event list ref; (* per-session trace, reversed *)
  mutable phase : phase;
  mutable incarnations : int;
  mutable failures : int;
  mutable inc_rounds : int; (* rounds in the current incarnation *)
  mutable rounds_total : int; (* across incarnations *)
  mutable admitted_tick : int;
}

let run ?(chaos = Chaos.none) ?(config = default_config) ?jobs ?(groups = [])
    ?on_supervise ?on_tick ~specs ~seed () =
  let n = Array.length specs in
  List.iter
    (fun g ->
      if Array.length g.members = 0 then
        invalid_arg ("Engine.run: empty group " ^ g.gname);
      Array.iter
        (fun id ->
          if id < 0 || id >= n then
            invalid_arg ("Engine.run: group member out of range in " ^ g.gname))
        g.members)
    groups;
  let jobs =
    match jobs with Some j -> j | None -> Goalcom_par.Pool.default_jobs ()
  in
  let tracing = Trace.enabled () in
  let root = Rng.make seed in
  let sessions =
    Array.init n (fun id ->
        let sup_rng = Rng.split root in
        let rng = Rng.split root in
        {
          id;
          spec = specs.(id);
          rng;
          sup_rng;
          checkpoint = Universal.new_checkpoint ();
          fault = Chaos.stack_for chaos ~id;
          buf = ref [];
          phase = Pending;
          incarnations = 0;
          failures = 0;
          inc_rounds = 0;
          rounds_total = 0;
          admitted_tick = 0;
        })
  in
  let adm =
    Admission.make ~classes:config.classes ~max_live:config.max_live
      ~queue_capacity:config.queue_capacity ()
  in
  let breakers : (string, Breaker.t) Hashtbl.t = Hashtbl.create 7 in
  let breaker_of s =
    match Hashtbl.find_opt breakers s.spec.server_class with
    | Some b -> b
    | None ->
        let b =
          Breaker.make ~threshold:config.breaker_threshold
            ~cooldown:config.breaker_cooldown ()
        in
        Hashtbl.add breakers s.spec.server_class b;
        b
  in
  let restarts = ref 0 in
  (* Every supervision decision goes to the observer hook (a live
     Rollup, typically) whether or not tracing is on — the hook is how
     serve reports fleet stats without retaining any trace — and into
     the session's trace buffer when it is.  Hooks run in the
     sequential phase in id order, so what they see is deterministic;
     they observe only, the run's outcomes and digest never depend on
     them. *)
  let sup s ~tick action detail =
    (match on_supervise with
    | Some f -> f ~tick ~session:s.id ~action ~detail
    | None -> ());
    if tracing then
      s.buf :=
        Trace.Supervise { tick; session = s.id; action; detail } :: !(s.buf)
  in
  let with_session_sink s f =
    if tracing then Trace.with_sink (fun ev -> s.buf := ev :: !(s.buf)) f
    else f ()
  in
  let emit_breaker_change s ~tick = function
    | None -> ()
    | Some Breaker.Tripped -> sup s ~tick "trip" s.spec.server_class
    | Some Breaker.Probing -> sup s ~tick "half-open" s.spec.server_class
    | Some Breaker.Reclosed -> sup s ~tick "close" s.spec.server_class
  in
  let start_incarnation s ~tick ~restarted =
    s.incarnations <- s.incarnations + 1;
    s.inc_rounds <- 0;
    if restarted then incr restarts;
    sup s ~tick
      (if restarted then "restart" else "start")
      (Printf.sprintf "incarnation %d" s.incarnations);
    with_session_sink s (fun () ->
        let user = s.spec.make_user ~checkpoint:s.checkpoint in
        let server = Fault.apply s.fault s.spec.server in
        let stepper =
          Exec.Stepper.create ~config:s.spec.exec_config ~goal:s.spec.goal
            ~user ~server s.rng
        in
        s.phase <- Running stepper)
  in
  (* Gate a (re)start through the class breaker; true = started. *)
  let try_begin s ~tick ~restarted =
    let ok, change = Breaker.allow (breaker_of s) ~tick in
    emit_breaker_change s ~tick change;
    if ok then start_incarnation s ~tick ~restarted;
    ok
  in
  (* A failed incarnation (wedge, kill, or unachieved run): feed the
     breaker, then either give up or schedule a backoff restart. *)
  let fail_incarnation s ~tick =
    s.failures <- s.failures + 1;
    emit_breaker_change s ~tick (Breaker.record_failure (breaker_of s) ~tick);
    if Policy.gives_up config.policy ~failures:s.failures then begin
      sup s ~tick "give-up" (Printf.sprintf "after %d failures" s.failures);
      s.phase <- Terminal (Gave_up { incarnations = s.incarnations });
      Admission.release adm
    end
    else begin
      let wait = Policy.backoff config.policy s.sup_rng ~attempt:s.failures in
      s.phase <- Backoff { due = tick + wait }
    end
  in
  (* The achieved goal state: the earliest world view at which the
     goal's referee accepts the prefix.  For the monotone finite
     referees this is the view that achieved the goal — stable across
     restarts and scheduling, unlike the final view (worlds keep
     evolving after achievement: pages clear, agents wander).  Falls
     back to the last view when no prefix verdict is [`Ok] (compact
     referees judged at truncation). *)
  let achieved_view (goal : Goal.t) history =
    let init = History.initial_world_view history in
    let len = History.length history in
    (* Walk the same view sequence the list-based code walked: the
       initial view again at position 0, then one view per round,
       indexed straight out of the history's chunks. *)
    let view_at j =
      if j = 0 then init
      else (History.round_exn history (j - 1)).History.Round.world_view
    in
    match Referee.start goal.Goal.referee init with
    | _, `Ok -> init
    | judge, `Violation ->
        let rec go judge j =
          if j > len then view_at len
          else begin
            let judge, verdict = Referee.step judge (view_at j) in
            if verdict = `Ok then view_at j else go judge (j + 1)
          end
        in
        go judge 0
  in
  let succeed s ~tick history =
    emit_breaker_change s ~tick (Breaker.record_success (breaker_of s));
    let state = Msg.to_string (achieved_view s.spec.goal history) in
    sup s ~tick "done"
      (Printf.sprintf "rounds=%d incarnations=%d" s.rounds_total
         s.incarnations);
    s.phase <- Terminal (Done { rounds = s.rounds_total; incarnations = s.incarnations; state });
    Admission.release adm
  in
  let terminal s = match s.phase with Terminal _ -> true | _ -> false in
  let all_terminal () = Array.for_all terminal sessions in
  let next_arrival = ref 0 in
  (* Split after every per-session stream: runs whose arrival process
     draws nothing (Bang / Constant) keep their historical digests. *)
  let arrival_rng = Rng.split root in
  let arrival_state = Arrival.start config.arrivals in
  let tick = ref 0 in
  (* One long-lived shard task per domain: oversubscribing domains
     past the hardware turns the minor-GC stop-the-world sync into
     pure overhead, so the pool width is clamped to the host (results
     are bit-identical for every width — only wall-clock changes). *)
  let width = max 1 (min jobs (Goalcom_par.Pool.hardware_jobs ())) in
  Goalcom_par.Pool.with_pool ~jobs:width (fun pool ->
      while (not (all_terminal ())) && !tick < config.max_ticks do
        incr tick;
        let tick = !tick in
        (* 1. chaos kills on running sessions *)
        Array.iter
          (fun s ->
            match s.phase with
            | Running _ when Chaos.kills_at chaos ~tick ~id:s.id ->
                sup s ~tick "kill" "chaos";
                fail_incarnation s ~tick
            | _ -> ())
          sessions;
        (* 2. due restarts (breaker-gated; blocked ones retry next tick) *)
        Array.iter
          (fun s ->
            match s.phase with
            | Backoff { due } when due <= tick ->
                ignore (try_begin s ~tick ~restarted:true)
            | _ -> ())
          sessions;
        (* 3. arrivals *)
        let batch =
          Arrival.draw config.arrivals arrival_state ~rng:arrival_rng ~tick
            ~remaining:(n - !next_arrival)
        in
        for _ = 1 to batch do
          if !next_arrival < n then begin
            let s = sessions.(!next_arrival) in
            incr next_arrival;
            s.admitted_tick <- tick;
            let admitted =
              Admission.has_capacity adm
              &&
              let ok, change = Breaker.allow (breaker_of s) ~tick in
              emit_breaker_change s ~tick change;
              ok
            in
            if admitted then begin
              Admission.claim adm;
              sup s ~tick "admit" "live";
              start_incarnation s ~tick ~restarted:false
            end
            else if Admission.enqueue adm ~cname:s.spec.server_class s.id
            then begin
              s.phase <- Waiting;
              sup s ~tick "admit" "queued"
            end
            else begin
              sup s ~tick "shed" "queue full";
              s.phase <- Terminal Shed
            end
          end
        done;
        (* 4. promote from the queues: weighted deficit round-robin
           over the admission classes; every leading terminal id is
           drained in one pass, and an open breaker blocks only its
           own class (see Admission). *)
        Admission.promote adm
          ~terminal:(fun id -> terminal sessions.(id))
          ~try_start:(fun id ->
            let s = sessions.(id) in
            if try_begin s ~tick ~restarted:false then begin
              Admission.claim adm;
              true
            end
            else false);
        (* 5. the parallel quantum, sharded: the runnable set is split
           into [width] contiguous id-range batches and each domain
           advances its whole shard for the quantum — one multi-
           millisecond task per domain instead of one sub-millisecond
           task per session, so the pool's per-task overhead stops
           dominating.  Shard boundaries cannot affect outcomes: a
           shard only advances steppers nothing else touches, trace
           events land in per-session buffers (replayed in id order),
           and the round-count bookkeeping is per-session too. *)
        let running =
          Array.of_list
            (Array.to_list sessions
            |> List.filter_map (fun s ->
                   match s.phase with
                   | Running st -> Some (s, st)
                   | _ -> None))
        in
        let m = Array.length running in
        let shards = min m width in
        let tasks =
          Array.init shards (fun k ->
              let lo = m * k / shards and hi = m * (k + 1) / shards in
              fun () ->
                for i = lo to hi - 1 do
                  let s, st = running.(i) in
                  let before = Exec.Stepper.rounds_executed st in
                  let quantum () =
                    let rec go k =
                      if Exec.Stepper.finished st then ()
                      else if Exec.Stepper.finishing st then
                        ignore (Exec.Stepper.step st)
                      else if k > 0 then
                        if Exec.Stepper.step st then go (k - 1) else ()
                    in
                    go config.quantum
                  in
                  if tracing then
                    Trace.with_sink
                      (fun ev -> s.buf := ev :: !(s.buf))
                      quantum
                  else quantum ();
                  let delta = Exec.Stepper.rounds_executed st - before in
                  s.inc_rounds <- s.inc_rounds + delta;
                  s.rounds_total <- s.rounds_total + delta
                done)
        in
        ignore (Goalcom_par.Pool.run pool tasks : unit array);
        (* 6a. group arbiters: one slot per tick per live group.  The
           parallel quantum only staged per-member state (each member
           touches its own cells); everything cross-member — winner
           selection, collision feedback, delivery grants — happens
           here on the supervising domain, in group list order, before
           any verdict is made.  Reports funnel into the supervise
           stream attributed to the member session, so rollups see
           deliveries and collisions like any other decision.  A group
           whose members are all terminal stops arbitrating (its slot
           clock freezes with its last live member). *)
        List.iter
          (fun g ->
            if Array.exists (fun id -> not (terminal sessions.(id))) g.members
            then
              g.arbitrate ~tick
                ~report:(fun ~session ~action ~detail ->
                  sup sessions.(session) ~tick action detail))
          groups;
        (* 6b. sequential supervision, id order *)
        Array.iter
          (fun s ->
            (match s.phase with
            | Running st when Exec.Stepper.finished st ->
                let history = Exec.Stepper.history st in
                let outcome =
                  with_session_sink s (fun () ->
                      let outcome = Outcome.judge s.spec.goal history in
                      if tracing then
                        List.iter
                          (fun round ->
                            Trace.emit (Trace.Violation { round }))
                          outcome.Outcome.violation_rounds;
                      outcome)
                in
                if outcome.Outcome.achieved then succeed s ~tick history
                else begin
                  sup s ~tick "fail"
                    (Printf.sprintf "unachieved after %d rounds" s.inc_rounds);
                  fail_incarnation s ~tick
                end
            | Running _
              when config.round_budget > 0
                   && s.inc_rounds >= config.round_budget ->
                sup s ~tick "wedge"
                  (Printf.sprintf "budget %d rounds" config.round_budget);
                fail_incarnation s ~tick
            | _ -> ());
            (* deadlines apply to everything submitted and unfinished *)
            match s.phase with
            | (Waiting | Running _ | Backoff _)
              when config.deadline > 0
                   && tick - s.admitted_tick >= config.deadline ->
                sup s ~tick "deadline"
                  (Printf.sprintf "after %d ticks" (tick - s.admitted_tick));
                (match s.phase with
                | Running _ | Backoff _ -> Admission.release adm
                | _ -> ());
                s.phase <-
                  Terminal (Deadline_exceeded { incarnations = s.incarnations })
            | _ -> ())
          sessions;
        match on_tick with Some f -> f ~tick | None -> ()
      done);
  (* Anything still live when the tick budget ran out. *)
  Array.iter
    (fun s -> if not (terminal s) then s.phase <- Terminal Unfinished)
    sessions;
  let outcomes =
    Array.map
      (fun s ->
        match s.phase with Terminal o -> o | _ -> assert false)
      sessions
  in
  (* Replay the merged trace — session buffers in id order — into the
     ambient sink that was installed when the engine was entered. *)
  if tracing then
    Array.iter
      (fun s -> List.iter Trace.emit (List.rev !(s.buf)))
      sessions;
  let count f = Array.fold_left (fun acc o -> if f o then acc + 1 else acc) 0 outcomes in
  let completed = count (function Done _ -> true | _ -> false) in
  let done_rounds =
    Array.to_list outcomes
    |> List.filter_map (function
         | Done { rounds; _ } -> Some (float_of_int rounds)
         | _ -> None)
  in
  let trips = Hashtbl.fold (fun _ b acc -> acc + Breaker.trips b) breakers 0 in
  let digest =
    Digest.to_hex
      (Digest.string
         (String.concat "\n"
            (Array.to_list (Array.mapi outcome_line outcomes))))
  in
  {
    outcomes;
    ticks = !tick;
    completed;
    shed = count (function Shed -> true | _ -> false);
    gave_up = count (function Gave_up _ -> true | _ -> false);
    deadlines = count (function Deadline_exceeded _ -> true | _ -> false);
    unfinished = count (function Unfinished -> true | _ -> false);
    restarts = !restarts;
    trips;
    total_rounds =
      Array.fold_left (fun acc s -> acc + s.rounds_total) 0 sessions;
    p50_rounds = (if done_rounds = [] then 0. else Stats.percentile 50. done_rounds);
    p99_rounds = (if done_rounds = [] then 0. else Stats.percentile 99. done_rounds);
    p999_rounds =
      (if done_rounds = [] then 0. else Stats.percentile 99.9 done_rounds);
    digest;
    checkpoints = Array.map (fun s -> s.checkpoint) sessions;
  }
