(** E14 / Figure 7 — ablation of the compact construction's growing patience: constant grace fails until it covers the recovery time; doubling always converges.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
