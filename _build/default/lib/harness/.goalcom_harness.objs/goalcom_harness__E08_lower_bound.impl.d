lib/harness/e08_lower_bound.ml: Exec Goalcom Goalcom_goals Goalcom_prelude List Listx Password Rng Stats Table Trial
