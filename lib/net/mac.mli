(** The multiple-access goal: N users share one {!Medium}.

    Each station's world wants its own payload word delivered
    ({!Forward}'s world, reused verbatim: frames are sequence-checked,
    the broadcast is [(payload, received)]).  The server is a
    {!Medium.port}: frames only get through in slots where no other
    station transmits, so {e when} to transmit is the whole game.

    The user-strategy class is the classic slotted answer: periodic
    transmission schedules.  [policy ~period ~offset] transmits the
    next missing symbol exactly in rounds [r] with
    [r mod period = offset] — stations whose (period, offset) pairs
    separate share the medium collision-free.  A universal user Levin-
    races the policy class with delivery sensing, and [shift] rotates
    each station's enumeration order so identical stations do not march
    through the class in lockstep (each station owns its enumeration
    order; universality is order-independent).

    Goal throughput under contention — delivered frames per slot,
    collisions per slot — is what E19 and BENCH_net score. *)

open Goalcom

val goal : payload_alphabet:int -> int list -> Goal.t
(** The station's goal: its payload word fully received ({!Forward}
    world and referee).  @raise Invalid_argument on an empty word or
    out-of-range symbols. *)

val policy : period:int -> offset:int -> Strategy.user
(** Transmit the first missing broadcast symbol on the [offset]-th of
    every [period] rounds; halt once the broadcast shows the word
    complete.  @raise Invalid_argument unless
    [0 <= offset < period]. *)

val policy_class : ?shift:int -> max_period:int -> unit -> Strategy.user Goalcom_automata.Enum.t
(** Every [policy] with [period <= max_period] — [P(P+1)/2] of them —
    in period-major order, rotated left by [shift] (default 0). *)

val sensing : Sensing.t
(** {!Forward.sensing}: positive once the broadcast showed the word
    complete. *)

val universal_user :
  ?schedule:Goalcom.Levin.slot Seq.t ->
  ?checkpoint:Universal.checkpoint ->
  ?stats:Universal.stats ->
  ?shift:int ->
  max_period:int ->
  unit ->
  Strategy.user
(** {!Universal.finite} over {!policy_class} with {!sensing}. *)
