(** Per-party observation and action types.

    Each round, every party observes the messages that were addressed to
    it in the previous round and emits one message per outgoing channel.
    The system is the two-party asymmetric setting of the paper — a user
    and a server — plus the third entity, the world, that embodies the
    goal (§2). *)

module User : sig
  type obs = {
    from_server : Msg.t;
    from_world : Msg.t;
    round : int;  (** 1-based round number, for convenience *)
  }

  type act = {
    to_server : Msg.t;
    to_world : Msg.t;
    halt : bool;  (** finite goals: the user must eventually halt *)
  }

  val silent : act
  (** Send nothing, keep running. *)

  val halt_act : act
  (** Send nothing and halt. *)

  val say_server : Msg.t -> act
  val say_world : Msg.t -> act
end

module Server : sig
  type obs = { from_user : Msg.t; from_world : Msg.t }
  type act = { to_user : Msg.t; to_world : Msg.t }

  val silent : act
  val say_user : Msg.t -> act
  val say_world : Msg.t -> act
end

module World : sig
  type obs = { from_user : Msg.t; from_server : Msg.t }
  type act = { to_user : Msg.t; to_server : Msg.t }

  val silent : act
  val say_user : Msg.t -> act
  val say_server : Msg.t -> act
  val broadcast : Msg.t -> act
  (** Same message to user and server. *)
end
