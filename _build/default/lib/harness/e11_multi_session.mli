(** E11 / Table 6 — multi-session goals: only finitely many sessions fail, then every session passes.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
