examples/delegation_demo.mli:
