lib/harness/e04_levin_overhead.ml: Dialect Enum Exec Float Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude Levin List Listx Maze Table Trial
