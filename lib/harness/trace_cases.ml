open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals
open Goalcom_faults

type case = { name : string; events : unit -> Trace.event list }

(* The two reference runs behind the golden-trace regression suite.
   Everything here must stay deterministic: fixed seeds, fixed
   configs, and no wall-clock anywhere in the event stream.  The CLI
   ([goalcom trace-golden DIR]) regenerates the committed files from
   these same constructors, so test and generator cannot drift
   apart. *)

let record_run ~config ~goal ~user ~server ~seed =
  let (_ : Outcome.t * History.t), events =
    Goalcom_obs.Recorder.record (fun () ->
        Exec.run_outcome ~config ~goal ~user ~server (Rng.make seed))
  in
  events

(* E1 flavour: the universal printing user against a rotated-dialect
   printer, so the trace shows the Levin sessions scanning the class
   until the right dialect prints the document and sensing halts the
   run. *)
let e1_printing =
  {
    name = "e1_printing";
    events =
      (fun () ->
        let alphabet = 3 in
        let doc = [ 3; 1; 4 ] in
        let dialects = Dialect.enumerate_rotations ~size:alphabet in
        let goal = Printing.goal ~docs:[ doc ] ~alphabet () in
        let user = Printing.universal_user ~alphabet dialects in
        let server = Printing.server ~alphabet (Enum.get_exn dialects 1) in
        let config = Exec.config ~horizon:600 () in
        record_run ~config ~goal ~user ~server ~seed:1);
  }

(* E16 flavour: the same construction against a crash-restarting
   printer, so the trace interleaves Fault events with the enumeration
   recovering from lost server state. *)
let e16_crash =
  {
    name = "e16_crash";
    events =
      (fun () ->
        let alphabet = 4 in
        let doc = [ 4; 2 ] in
        let dialects = Dialect.enumerate_rotations ~size:alphabet in
        let goal = Printing.goal ~docs:[ doc ] ~alphabet () in
        let user = Printing.universal_user ~alphabet dialects in
        let fault =
          match Fault.stack_of_string ~alphabet "crash:25" with
          | Ok f -> f
          | Error e -> invalid_arg ("Trace_cases.e16_crash: " ^ e)
        in
        let server =
          Fault.apply fault (Printing.server ~alphabet (Enum.get_exn dialects 2))
        in
        let config = Exec.config ~horizon:400 () in
        record_run ~config ~goal ~user ~server ~seed:16);
  }

let all = [ e1_printing; e16_crash ]
