lib/harness/e05_sensing_ablation.mli: Goalcom_prelude
