lib/goals/prediction.mli: Dialect Enum Goal Goalcom Goalcom_automata History Sensing Strategy Universal World
