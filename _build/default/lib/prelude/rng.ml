type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_int64 seed = { state = mix64 seed }
let make seed = of_int64 (Int64.of_int seed)
let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = of_int64 (int64 t)

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling on 30 bits to avoid modulo bias. *)
    let limit = (1 lsl 30) / bound * bound in
    let rec loop () =
      let v = bits30 t in
      if v < limit then v mod bound else loop ()
    in
    loop ()
  end
  else begin
    let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    v mod bound
  end

let float t bound =
  if bound <= 0. then invalid_arg "Rng.float: bound must be positive";
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  v /. 9007199254740992. *. bound (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a
