(** JSONL export of traces: one JSON object per line, tagged ["ev"].

    The serialization is hand-rolled (the event vocabulary is closed
    and flat) and deterministic — field order is fixed, numbers are
    plain decimal integers, messages are rendered with
    {!Goalcom.Msg.to_string} and JSON-escaped — so the golden-trace
    tests can diff files line by line. *)

open Goalcom

val event_to_json : Trace.event -> string
(** A single-line JSON object, no trailing newline. *)

val to_lines : Trace.event list -> string list

val sink : out_channel -> Trace.sink
(** Writes [event_to_json ev ^ "\n"] per event.  The channel is not
    flushed or closed; scope it with [Fun.protect]. *)

val buffer_sink : Buffer.t -> Trace.sink

val write_events : out_channel -> Trace.event list -> unit

val to_file : string -> Trace.event list -> unit
(** Create/truncate [path] and write the events, closing on exit. *)
