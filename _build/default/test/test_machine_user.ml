(* Tests for the Mealy-machine ↔ strategy bridge: Theorem 1 running
   over a raw Gödel numbering of finite-state machines, rather than a
   hand-parameterised strategy family.

   Toy goal: each round the world announces a bit; the user must answer
   with that bit XOR a secret b (the world's "convention").  The world
   broadcasts Int 2 forever once it has seen 6 consecutive correct
   answers.  The machine class over input alphabet {announced 0,
   announced 1, done} and output alphabet {0,1} contains the two
   conventions as 1-state machines; the universal user finds the right
   one without being told b. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata

let streak_needed = 6

(* The world compares the user's reply (arriving two rounds after the
   announcement it answers) against announcement XOR b; it tracks the
   round parity itself, so the comparison is exact, not heuristic. *)
let xor_world b =
  World.make
    ~name:(Printf.sprintf "xor-world(b=%d)" b)
    ~init:(fun () -> (0, 0, false))
    ~step:(fun _rng (round, streak, done_) (obs : Io.World.obs) ->
      let round = round + 1 in
      let expected = (round + b) mod 2 in
      let streak =
        match obs.from_user with
        | Msg.Sym s when s = expected -> streak + 1
        | Msg.Sym _ -> 0
        | _ -> streak (* silence doesn't reset: the user may be idle *)
      in
      let done_ = done_ || streak >= streak_needed in
      let announce = if done_ then 2 else round mod 2 in
      ((round, streak, done_), Io.World.say_user (Msg.Int announce)))
    ~view:(fun (_, _, done_) -> Msg.Int (if done_ then 2 else 0))

let xor_goal b =
  Goal.make
    ~name:(Printf.sprintf "xor(b=%d)" b)
    ~worlds:[ xor_world b ]
    ~referee:(Referee.finite "converged" (fun views -> List.mem (Msg.Int 2) views))

let idle_server =
  Strategy.stateless ~name:"idle" (fun (_ : Io.Server.obs) -> Io.Server.silent)

let read = Machine_user.read_world_int ~cap:3
let write = Machine_user.write_world_sym

let sensing =
  Sensing.of_predicate ~name:"done" (fun view ->
      match View.latest view with
      | Some { View.from_world = Msg.Int 2; _ } -> true
      | Some _ | None -> false)

(* The 1-state machine implementing convention b: reply (announce+b) mod 2.
   The third input column (done) is irrelevant. *)
let convention_machine b =
  Mealy.make ~states:1 ~inputs:3 ~outputs:2
    ~next:[| [| 0; 0; 0 |] |]
    ~out:[| [| b mod 2; (1 + b) mod 2; 0 |] |]

let run ~user ~b ?(horizon = 4000) seed =
  Exec.run_outcome
    ~config:(Exec.config ~horizon ())
    ~goal:(xor_goal b) ~user ~server:idle_server (Rng.make seed)

let test_oracle_machines () =
  List.iter
    (fun b ->
      let user =
        Machine_user.user_of_mealy ~read ~write (convention_machine b)
      in
      (* Machines never halt on their own; wrap with halt-on-positive. *)
      let user = Sensing.halt_on_positive sensing user in
      let outcome, history = run ~user ~b (10 + b) in
      Alcotest.(check bool) (Printf.sprintf "b=%d achieved" b) true
        outcome.Outcome.achieved;
      Alcotest.(check bool) "fast" true (History.length history < 30))
    [ 0; 1 ]

let test_wrong_convention_fails () =
  let user =
    Sensing.halt_on_positive sensing
      (Machine_user.user_of_mealy ~read ~write (convention_machine 1))
  in
  let outcome, _ = run ~user ~b:0 20 in
  Alcotest.(check bool) "not achieved" false outcome.Outcome.achieved

let machine_class ~max_states =
  Machine_user.user_class ~read ~write
    (Mealy.enumerate_up_to ~max_states ~inputs:3 ~outputs:2)

let test_universal_over_one_state_machines () =
  List.iter
    (fun b ->
      let user =
        Universal.finite ~enum:(machine_class ~max_states:1) ~sensing ()
      in
      let outcome, _ = run ~user ~b (30 + b) in
      Alcotest.(check bool)
        (Printf.sprintf "universal finds convention %d" b)
        true outcome.Outcome.achieved)
    [ 0; 1 ]

let test_universal_over_two_state_machines () =
  (* 8 + 4096 machines in the class; the working 1-state machines come
     first, so the Levin search still converges quickly. *)
  let cls = machine_class ~max_states:2 in
  Alcotest.(check (option int)) "class size" (Some (8 + 4096))
    (Enum.cardinality cls);
  let user = Universal.finite ~enum:cls ~sensing () in
  let outcome, _ = run ~user ~b:1 40 in
  Alcotest.(check bool) "achieved" true outcome.Outcome.achieved

let test_class_naming_and_indexing () =
  let cls = machine_class ~max_states:1 in
  let first = Enum.get_exn cls 0 in
  Alcotest.(check bool) "named by code" true
    (String.length (Strategy.name first) > 0);
  Alcotest.(check (option int)) "eight 1-state machines" (Some 8)
    (Enum.cardinality cls)

let test_reader_cap () =
  let obs w =
    { Io.User.from_server = Msg.Silence; from_world = w; round = 1 }
  in
  Alcotest.(check int) "caps high" 2
    (Machine_user.read_world_int ~cap:3 (obs (Msg.Int 99)));
  Alcotest.(check int) "floors low" 0
    (Machine_user.read_world_int ~cap:3 (obs (Msg.Int (-5))));
  Alcotest.(check int) "silence reads 0" 0
    (Machine_user.read_world_int ~cap:3 (obs Msg.Silence))

let test_bad_reader_raises () =
  let bad_read (_ : Io.User.obs) = 7 in
  let user =
    Machine_user.user_of_mealy ~read:bad_read ~write (convention_machine 0)
  in
  let inst = Strategy.Instance.create user in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Machine_user: reader produced 7, input alphabet is 3")
    (fun () ->
      ignore
        (Strategy.Instance.step (Rng.make 1) inst
           { Io.User.from_server = Msg.Silence; from_world = Msg.Silence; round = 1 }))

let test_server_of_mealy () =
  (* A server machine that echoes the user's symbol to the world. *)
  let echo = Mealy.identity ~size:2 in
  let read (obs : Io.Server.obs) =
    match obs.Io.Server.from_user with Msg.Sym s when s < 2 -> s | _ -> 0
  in
  let write s = Io.Server.say_world (Msg.Sym s) in
  let server = Machine_user.server_of_mealy ~read ~write echo in
  let inst = Strategy.Instance.create server in
  let act =
    Strategy.Instance.step (Rng.make 1) inst
      { Io.Server.from_user = Msg.Sym 1; from_world = Msg.Silence }
  in
  Alcotest.(check bool) "echoed" true (act.Io.Server.to_world = Msg.Sym 1)

let () =
  Alcotest.run "machine_user"
    [
      ( "machine_user",
        [
          Alcotest.test_case "oracle machines" `Quick test_oracle_machines;
          Alcotest.test_case "wrong convention fails" `Quick test_wrong_convention_fails;
          Alcotest.test_case "universal over 1-state class" `Quick test_universal_over_one_state_machines;
          Alcotest.test_case "universal over 2-state class" `Quick test_universal_over_two_state_machines;
          Alcotest.test_case "class naming/indexing" `Quick test_class_naming_and_indexing;
          Alcotest.test_case "reader cap" `Quick test_reader_cap;
          Alcotest.test_case "bad reader raises" `Quick test_bad_reader_raises;
          Alcotest.test_case "server of mealy" `Quick test_server_of_mealy;
        ] );
    ]
