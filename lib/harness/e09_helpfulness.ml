(* E9 / Table 5 — the "iff" of the main theorem: the universal user
   achieves the goal with a server exactly when some user strategy in
   the class would (i.e. when the server is helpful). *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers
open Goalcom_goals

let title = "Helpfulness boundary on the printing goal"

let claim =
  "the universal strategy achieves the goal with server S iff some user \
   strategy achieves it with S (helpfulness)"

let alphabet = 4
let doc = [ 6; 6; 6 ]
let trials = 2

let run ~seed =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Printing.goal ~docs:[ doc ] ~alphabet () in
  let user_class = Printing.user_class ~alphabet dialects in
  let config = Exec.config ~horizon:8_000 () in
  let servers =
    List.map
      (fun i ->
        ( Printf.sprintf "printer @ dialect %d" i,
          Printing.server ~alphabet (Enum.get_exn dialects i) ))
      (Listx.range 0 alphabet)
    @ [
        ("silent server", Transform.silent ());
        ("babbling server", Transform.babbler ~alphabet_size:alphabet);
        ("deaf printer", Transform.deaf (Printing.printer ~alphabet));
      ]
  in
  let rows =
    List.map
      (fun (label, server) ->
        let verdict =
          Helpful.check ~config ~trials:1 ~goal ~user_class ~server
            (Rng.make (seed + Hashtbl.hash label))
        in
        let result =
          Trial.run ~config ~trials ~seed:(seed + Hashtbl.hash label + 1)
            ~goal
            ~user:(Printing.universal_user ~alphabet dialects)
            ~server ()
        in
        [
          label;
          (if verdict.Helpful.helpful then "helpful" else "unhelpful");
          (match verdict.Helpful.witness with
          | Some i -> Table.cell_int i
          | None -> "-");
          Table.cell_pct result.Trial.success_rate;
        ])
      servers
  in
  Table.make ~title:"E9 (Table 5): helpfulness boundary (printing goal)"
    ~columns:
      [ "server"; "helpful?"; "witness user"; "universal success" ]
    ~notes:
      [
        "helpfulness checked by searching the enumerated user class";
        "expected shape: universal success is 100% exactly on the helpful \
         rows and 0% on the unhelpful ones";
      ]
    rows
