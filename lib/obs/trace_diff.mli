(** First-divergence trace diffing, event-kind-aware.

    Promoted from the golden-trace test's inline line differ so that
    the test suite and the CLI ([goalcom trace diff]) share one
    implementation.  Two traces are compared on their serialized JSONL
    lines — the byte format {e is} the regression contract — and when
    both sides of a divergence still parse, the structural layer says
    which event kind and which fields moved. *)

val kind_name : Goalcom.Trace.event -> string
(** The JSONL ["ev"] tag of the event's constructor. *)

type divergence = {
  position : int;  (** 1-based line number of the first difference *)
  left : string option;  (** the diverging line; [None] = side ended *)
  right : string option;
  detail : string;  (** kind-aware explanation *)
}

val lines : string list -> string list -> divergence option
(** [None] iff the line lists are equal. *)

val events :
  Goalcom.Trace.event list -> Goalcom.Trace.event list -> divergence option
(** Compare via {!Jsonl.to_lines} — two event lists diverge iff their
    serializations do. *)

val pp :
  ?left_label:string ->
  ?right_label:string ->
  Format.formatter ->
  divergence ->
  unit
(** Multi-line rendering; labels default to ["left"]/["right"] (the
    golden test passes ["golden"]/["actual"]). *)

val to_string : ?left_label:string -> ?right_label:string -> divergence -> string
