module Round = struct
  type t = {
    index : int;
    user_to_server : Msg.t;
    user_to_world : Msg.t;
    server_to_user : Msg.t;
    server_to_world : Msg.t;
    world_to_user : Msg.t;
    world_to_server : Msg.t;
    world_view : Msg.t;
    user_halted : bool;
  }

  let pp ppf r =
    Format.fprintf ppf
      "@[<h>r%d: U->S %a | U->W %a | S->U %a | S->W %a | W->U %a | W->S %a | world %a%s@]"
      r.index Msg.pp r.user_to_server Msg.pp r.user_to_world Msg.pp
      r.server_to_user Msg.pp r.server_to_world Msg.pp r.world_to_user Msg.pp
      r.world_to_server Msg.pp r.world_view
      (if r.user_halted then " [halted]" else "")
end

(* Rounds live in fixed-size chunks hung off a growable spine: round
   [i] (0-based) is [spine.(i lsr chunk_bits).(i land chunk_mask)].
   Appending a round is an array store (amortising the spine doubling),
   so the per-round cons cell and the O(n) [List.rev] at [finish] are
   gone from the execution hot path, and [length]/[halted]/[halt_round]
   /[prefix] are O(1).  A prefix shares the spine of its parent and
   only narrows [len]; chunk slots at or past [len] are unreachable
   through the accessors below. *)
let chunk_bits = 6
let chunk_size = 1 lsl chunk_bits
let chunk_mask = chunk_size - 1

type t = {
  initial_world_view : Msg.t;
  spine : Round.t array array;
  len : int;
  halt : int option;  (* first round with [user_halted], if any *)
}

let unsafe_round t i = t.spine.(i lsr chunk_bits).(i land chunk_mask)

let round_exn t i =
  if i < 0 || i >= t.len then
    invalid_arg
      (Printf.sprintf "History.round_exn: index %d out of bounds [0,%d)" i t.len)
  else unsafe_round t i

let fold_rounds t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (unsafe_round t i)
  done;
  !acc

let iter_rounds t ~f =
  for i = 0 to t.len - 1 do
    f (unsafe_round t i)
  done

type history = t

module Builder = struct
  type t = {
    initial_world_view : Msg.t;
    mutable spine : Round.t array array;
    mutable nchunks : int;  (* chunks with at least one live slot *)
    mutable len : int;
    mutable halt : int option;
    mutable finished : bool;
  }

  let create ~initial_world_view =
    { initial_world_view; spine = [||]; nchunks = 0; len = 0; halt = None;
      finished = false }

  let length t = t.len

  (* Fresh chunks are filled with the round being appended; slots past
     [len] are never read, so the padding value is irrelevant. *)
  let add t (r : Round.t) =
    if t.finished then invalid_arg "History.Builder.add: builder is finished";
    if r.index <> t.len + 1 then
      invalid_arg
        (Printf.sprintf "History.make: round %d has index %d" (t.len + 1)
           r.index);
    let ci = t.len lsr chunk_bits in
    if ci >= t.nchunks then begin
      if ci >= Array.length t.spine then begin
        let cap = max 4 (2 * Array.length t.spine) in
        let spine = Array.make cap [||] in
        Array.blit t.spine 0 spine 0 t.nchunks;
        t.spine <- spine
      end;
      t.spine.(ci) <- Array.make chunk_size r;
      t.nchunks <- t.nchunks + 1
    end;
    t.spine.(ci).(t.len land chunk_mask) <- r;
    if r.user_halted && t.halt = None then t.halt <- Some r.index;
    t.len <- t.len + 1

  let finish t =
    t.finished <- true;
    { initial_world_view = t.initial_world_view;
      spine = Array.sub t.spine 0 t.nchunks;
      len = t.len;
      halt = t.halt }
end

let make ~initial_world_view rounds =
  let b = Builder.create ~initial_world_view in
  List.iter (Builder.add b) rounds;
  Builder.finish b

let initial_world_view t = t.initial_world_view
let length t = t.len
let rounds t = List.init t.len (fun i -> unsafe_round t i)

let world_views t =
  t.initial_world_view
  :: List.init t.len (fun i -> (unsafe_round t i).Round.world_view)

let world_views_rev t =
  fold_rounds t ~init:[ t.initial_world_view ] ~f:(fun acc r ->
      r.Round.world_view :: acc)

let halted t = t.halt <> None
let halt_round t = t.halt

let prefix n t =
  if n < 0 then invalid_arg (Printf.sprintf "History.prefix: negative n (%d)" n);
  let len = min n t.len in
  let halt = match t.halt with Some h when h <= len -> t.halt | _ -> None in
  { t with len; halt }

(* Post-hoc reconstruction of the engine-level trace events from a
   recorded history: what Exec.run would have emitted for the same run
   minus Run_start (the config is not recorded) and minus the
   strategy-internal events (sensing, switches, faults), which only
   exist in live traces. *)
let trace_events t =
  let emit round src dst msg acc =
    if Msg.is_silence msg then acc
    else Trace.Emit { round; src; dst; msg } :: acc
  in
  let events, halt_seen =
    fold_rounds t ~init:([], false)
      ~f:(fun (acc, halt_seen) (r : Round.t) ->
        let acc = Trace.Round_start { round = r.index } :: acc in
        let acc =
          emit r.index Trace.User Trace.Server r.user_to_server acc
          |> emit r.index Trace.User Trace.World r.user_to_world
          |> emit r.index Trace.Server Trace.User r.server_to_user
          |> emit r.index Trace.Server Trace.World r.server_to_world
          |> emit r.index Trace.World Trace.User r.world_to_user
          |> emit r.index Trace.World Trace.Server r.world_to_server
        in
        if r.user_halted && not halt_seen then
          (Trace.Halt { round = r.index } :: acc, true)
        else (acc, halt_seen))
  in
  List.rev
    (Trace.Run_end { rounds = length t; halted = halt_seen } :: events)

let pp ppf t =
  Format.fprintf ppf "@[<v>initial world %a@,%a@]" Msg.pp t.initial_world_view
    (Format.pp_print_list Round.pp)
    (rounds t)
