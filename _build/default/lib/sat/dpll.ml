(* Partial assignments map each variable to Unset, True or False; the
   solver threads an immutable list of not-yet-satisfied clauses, each
   already filtered of falsified literals. *)

type value = Unset | True | False

let lit_value assignment lit =
  match assignment.(abs lit) with
  | Unset -> Unset
  | True -> if lit > 0 then True else False
  | False -> if lit > 0 then False else True

(* Simplify clauses under the assignment: drop satisfied clauses and
   falsified literals.  Returns [None] if some clause became empty. *)
let simplify assignment clauses =
  let rec clause_step acc = function
    | [] -> Some (List.rev acc)
    | lit :: rest -> begin
        match lit_value assignment lit with
        | True -> None (* clause satisfied: drop it *)
        | False -> clause_step acc rest
        | Unset -> clause_step (lit :: acc) rest
      end
  in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | clause :: rest -> begin
        match clause_step [] clause with
        | None -> go acc rest (* satisfied *)
        | Some [] -> None (* conflict *)
        | Some c -> go (c :: acc) rest
      end
  in
  go [] clauses

let find_unit clauses =
  List.find_map (function [ lit ] -> Some lit | _ -> None) clauses

let find_pure clauses =
  let polarity = Hashtbl.create 16 in
  List.iter
    (fun clause ->
      List.iter
        (fun lit ->
          let v = abs lit in
          match Hashtbl.find_opt polarity v with
          | None -> Hashtbl.add polarity v (Some (lit > 0))
          | Some (Some p) when p <> (lit > 0) -> Hashtbl.replace polarity v None
          | Some _ -> ())
        clause)
    clauses;
  Hashtbl.fold
    (fun v pol acc ->
      match (acc, pol) with
      | Some _, _ -> acc
      | None, Some p -> Some (if p then v else -v)
      | None, None -> acc)
    polarity None

let assign assignment lit =
  let a = Array.copy assignment in
  a.(abs lit) <- (if lit > 0 then True else False);
  a

let rec search assignment clauses =
  match simplify assignment clauses with
  | None -> None
  | Some [] -> Some assignment
  | Some clauses -> begin
      match find_unit clauses with
      | Some lit -> search (assign assignment lit) clauses
      | None -> begin
          match find_pure clauses with
          | Some lit -> search (assign assignment lit) clauses
          | None -> begin
              (* Branch on the first variable of the first clause. *)
              let lit =
                match clauses with
                | (lit :: _) :: _ -> lit
                | _ -> assert false (* no empty clauses after simplify *)
              in
              match search (assign assignment lit) clauses with
              | Some _ as result -> result
              | None -> search (assign assignment (-lit)) clauses
            end
        end
    end

let solve (cnf : Cnf.t) =
  let initial = Array.make (cnf.num_vars + 1) Unset in
  match search initial cnf.clauses with
  | None -> None
  | Some partial ->
      (* Unconstrained variables default to false. *)
      Some (Array.map (function True -> true | False | Unset -> false) partial)

let satisfiable cnf = Option.is_some (solve cnf)

let count_models ?(limit = max_int) (cnf : Cnf.t) =
  let n = cnf.num_vars in
  let count = ref 0 in
  let assignment = Array.make (n + 1) false in
  let rec go v =
    if !count >= limit then ()
    else if v > n then begin
      if Cnf.eval cnf assignment then incr count
    end
    else begin
      assignment.(v) <- false;
      go (v + 1);
      assignment.(v) <- true;
      go (v + 1)
    end
  in
  go 1;
  !count
