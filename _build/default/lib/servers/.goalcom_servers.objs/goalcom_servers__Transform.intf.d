lib/servers/transform.mli: Dialect Enum Goalcom Goalcom_automata Strategy
