(** The warm-start cache: known-good winning indices, persisted as
    JSONL across runs.

    A universal construction's dominant cost is the enumeration ladder
    it climbs before locking onto the right candidate.  That index is a
    property of the {e server class} (and of the enumeration it indexes
    into), not of the run — so once a race or a session has found it,
    later runs against the same class can probe it first.  Entries are
    keyed by ([server_class], enumeration name); a stored index is
    only a {e hint}: applied, it becomes a prepended Levin slot
    ({!Levin.hinted}), so a stale hint costs its own budget and the
    cold schedule takes over unchanged.

    Robustness is the point of the keying and validation: a corrupt
    file, an entry for a different enumeration, an out-of-range index
    or a non-positive budget are all rejected — the caller falls back
    to the cold path and a {!Trace.Warm} event (when tracing) records
    the decision either way. *)

open Goalcom_automata
open Goalcom

type entry = {
  server_class : string;
  enum : string;  (** enumeration name the index points into *)
  index : int;
  budget : int;  (** rounds the winning session needed (hint budget) *)
}

val entry_to_json : entry -> string
(** One JSONL line:
    [{"class":...,"enum":...,"index":...,"budget":...}]. *)

val save : string -> entry list -> unit
(** Write the store, one entry per line (overwrites). *)

val load : string -> (entry list, string) result
(** Parse a store; any corrupt line fails the whole load (the caller
    treats [Error] as a cold start, never a partial one). *)

val lookup : entry list -> server_class:string -> enum:string -> entry option
(** Most recent matching entry (later lines supersede earlier ones). *)

val record : entry list -> entry -> entry list
(** Append-or-replace by key, preserving order of other entries. *)

val of_race : server_class:string -> enum:'a Enum.t -> Universal.race -> entry
(** The entry a finished race proves: its winning index, with the
    winner's actual rounds as the hint budget (never below the winning
    slot's budget floor of 1). *)

val hints :
  enum:'a Enum.t ->
  server_class:string ->
  (entry list, string) result ->
  Levin.slot list
(** Validate a loaded store against the enumeration it will index:
    returns the hint slots to prepend ([[]] on a miss, a load error, or
    a stale entry).  Emits one {!Trace.Warm} event when tracing is on
    and the store was either applied or rejected (a plain miss is
    silent — that is the ordinary cold start). *)

val hinted_schedule :
  ?schedule:Levin.slot Seq.t ->
  enum:'a Enum.t ->
  server_class:string ->
  (entry list, string) result ->
  Levin.slot Seq.t
(** [Levin.hinted ~hints:(hints ...)] over [schedule] (default
    [Levin.schedule ()]) — what a warm-started {!Universal.finite} or
    {!Universal.finite_par} passes as its schedule. *)
