(** Link behaviours: the per-edge machinery of the network goals.

    A network edge carries a payload symbol through a Mealy transducer
    — the deterministic builders below cover the behaviours the
    topology scenarios need (clean wires, relabelling scramblers, stuck
    links) — and a point-to-point link degrades through the
    probabilistic side: a {!wire} corrupts the carried symbol with some
    flip probability ({!Goalcom_automata.Prob_mealy.perturb}), while an
    {!imperfection} spec composes the {!Goalcom_faults.Fault} algebra
    (loss, duplication, bursts...) onto the link's server.

    Determinism: none of these capture randomness at construction.  A
    {!wire} is a distribution table; sampling happens at step time with
    the per-step RNG the execution engine supplies, which is what keeps
    shared-medium runs bit-identical across jobs counts. *)

open Goalcom_automata

val clean : alphabet:int -> Mealy.t
(** The identity wire: emits what it receives. *)

val relabel : alphabet:int -> int -> Mealy.t
(** [relabel ~alphabet k] rotates every payload symbol by [k] — a
    scrambling link.  Two of them with [k] and [alphabet - k] compose
    back to {!clean}. *)

val stuck : alphabet:int -> int -> Mealy.t
(** A broken link that maps every symbol to the given one. *)

val sticky : alphabet:int -> Mealy.t
(** A link with memory: the first symbol through is delivered intact
    and every later symbol is replaced by it (the link "remembers" its
    first payload).  Exercises per-edge state in the topology worlds.
    @raise Invalid_argument if the alphabet is empty. *)

val wire : flip_prob:float -> alphabet:int -> Prob_mealy.t
(** A noisy identity wire: with probability [flip_prob] the carried
    symbol is replaced by a uniformly random one.
    @raise Invalid_argument if the probability is out of range. *)

val imperfection :
  alphabet:int -> string -> (Goalcom_faults.Fault.t, string) result
(** Parse a link-imperfection spec — the {!Goalcom_faults.Fault}
    stack grammar, where probabilistic loss is spelled [loss:P]
    (e.g. ["loss:0.25+dup"]). *)
