examples/control_demo.mli:
