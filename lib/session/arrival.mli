(** Deterministic arrival-rate processes for the session engine.

    Generalises the old [arrivals_per_tick] integer into a process the
    engine samples once per tick: how many of the not-yet-arrived
    sessions join now.  All sampling is driven by a dedicated
    {!Goalcom_prelude.Rng} stream, and the Poisson sampler uses no
    libm functions, so draws are bit-identical across hosts and jobs
    counts.  [Bang] and [Constant] consume no randomness at all —
    engine runs that use them keep their pre-existing digests. *)

type t =
  | Bang  (** the whole population arrives at tick 1 (the old [0]) *)
  | Constant of int  (** a fixed batch per tick *)
  | Poisson of float  (** open-loop arrivals at a mean rate per tick *)
  | Mmpp of { rates : float array; switch : float }
      (** Markov-modulated Poisson: cycles through [rates] (geometric
          dwell, per-tick hop probability [switch]), sampling a
          Poisson batch at the current regime's rate. *)

type state
(** Mutable sampler state (the MMPP regime). *)

val start : t -> state

val draw : t -> state -> rng:Goalcom_prelude.Rng.t -> tick:int -> remaining:int -> int
(** Arrivals for this tick, clamped to [remaining] (the sessions that
    have not yet arrived).  Must be called exactly once per tick with
    the process's own RNG stream — stream position is part of the
    engine's determinism contract. *)

val of_string : string -> (t, string) result
(** Accepts ["bang"] (or ["all"]), a bare integer ([0] = [Bang]),
    ["constant:N"], ["poisson:R"], and ["mmpp:R1,R2,..[:P]"] with
    per-tick regime-hop probability [P] (default [0.1]). *)

val to_string : t -> string
(** Inverse of {!of_string} (up to case and float formatting). *)
