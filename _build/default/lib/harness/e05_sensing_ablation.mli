(** E5 / Table 3 — ablating safety (false positives) and viability (all-negative sensing) breaks universality in the two predicted ways.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
