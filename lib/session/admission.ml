(* Admission control: a bounded live set over a bounded FIFO queue.
   Overflow is shed immediately — under a storm the engine degrades by
   refusing work, not by growing unbounded state.  The queue holds bare
   session ids; all decisions are made by the engine in id order, so
   queue contents are deterministic.

   The primitives are deliberately split (claim / enqueue / pop) rather
   than fused into one submit: the engine interleaves a breaker check
   between "is there a slot?" and "take the slot", and skips queued
   sessions that died (deadline) while waiting. *)

type t = {
  max_live : int;
  queue_capacity : int;
  queue : int Queue.t;
  mutable live : int;
  mutable shed : int;
}

let make ~max_live ~queue_capacity =
  if max_live < 1 then invalid_arg "Admission.make: max_live must be >= 1";
  if queue_capacity < 0 then
    invalid_arg "Admission.make: queue_capacity must be >= 0";
  { max_live; queue_capacity; queue = Queue.create (); live = 0; shed = 0 }

let live t = t.live
let queued t = Queue.length t.queue
let shed_count t = t.shed
let has_capacity t = t.live < t.max_live

let claim t =
  if t.live >= t.max_live then invalid_arg "Admission.claim: live set full";
  t.live <- t.live + 1

let enqueue t id =
  if Queue.length t.queue < t.queue_capacity then begin
    Queue.push id t.queue;
    true
  end
  else begin
    t.shed <- t.shed + 1;
    false
  end

let peek_queued t = Queue.peek_opt t.queue

let pop_queued t =
  match Queue.pop t.queue with
  | id -> id
  | exception Queue.Empty -> invalid_arg "Admission.pop_queued: queue empty"

let release t =
  if t.live <= 0 then invalid_arg "Admission.release: live set empty";
  t.live <- t.live - 1
