open Goalcom
open Goalcom_prelude
open Goalcom_automata

let with_dialect d base =
  let name = Printf.sprintf "%s@%s" (Strategy.name base) (Format.asprintf "%a" Dialect.pp d) in
  Strategy.rename name
    (Strategy.map_obs
       (fun (obs : Io.Server.obs) ->
         { obs with Io.Server.from_user = Dialect_msg.decode d obs.Io.Server.from_user })
       (Strategy.map_act
          (fun (act : Io.Server.act) ->
            { act with Io.Server.to_user = Dialect_msg.encode d act.Io.Server.to_user })
          base))

let dialect_class ~base dialects =
  Enum.map
    ~name:(Printf.sprintf "%s-under-%s" (Strategy.name base) (Enum.name dialects))
    (fun d -> with_dialect d base)
    dialects

(* Per-step RNG (see Channel.drop_inbound): a construction-time stream
   would be shared across instances and diverge under replay. *)
let noisy ~flip_prob base =
  if flip_prob < 0. || flip_prob > 1. then
    invalid_arg "Transform.noisy: flip_prob out of range";
  let module I = Strategy.Instance in
  Strategy.make
    ~name:(Printf.sprintf "noisy(%.2f,%s)" flip_prob (Strategy.name base))
    ~init:(fun () -> I.create base)
    ~step:(fun rng inst obs ->
      let act = I.step rng inst obs in
      if Rng.bernoulli rng flip_prob then
        (inst, { act with Io.Server.to_user = Msg.Silence })
      else (inst, act))

let lazy_every k base =
  if k <= 0 then invalid_arg "Transform.lazy_every: k must be positive";
  let module I = Strategy.Instance in
  Strategy.make
    ~name:(Printf.sprintf "lazy(%d,%s)" k (Strategy.name base))
    ~init:(fun () -> (I.create base, 0))
    ~step:(fun rng (inst, tick) obs ->
      if tick mod k = k - 1 then ((inst, tick + 1), I.step rng inst obs)
      else ((inst, tick + 1), Io.Server.silent))

let silent () = Strategy.stateless ~name:"silent-server" (fun _ -> Io.Server.silent)

let babbler ~alphabet_size =
  if alphabet_size <= 0 then invalid_arg "Transform.babbler: bad alphabet";
  Strategy.stateless_random ~name:"babbler-server" (fun rng _ ->
      {
        Io.Server.to_user = Msg.Sym (Rng.int rng alphabet_size);
        to_world = Msg.Sym (Rng.int rng alphabet_size);
      })

let deaf base =
  Strategy.rename
    (Printf.sprintf "deaf(%s)" (Strategy.name base))
    (Strategy.map_obs
       (fun (obs : Io.Server.obs) -> { obs with Io.Server.from_user = Msg.Silence })
       base)
