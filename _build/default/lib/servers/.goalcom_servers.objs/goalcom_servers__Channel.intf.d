lib/servers/channel.mli: Goalcom Strategy
