lib/automata/enum.mli:
