test/test_sensing.ml: Alcotest Exec Format Goal Goalcom Goalcom_prelude History Io List Listx Msg Outcome Printf Referee Rng Sensing Strategy String View World
