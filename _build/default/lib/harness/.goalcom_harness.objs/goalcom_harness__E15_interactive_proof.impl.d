lib/harness/e15_interactive_proof.ml: Counting Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude Goalcom_servers History List Listx Outcome Printf Rng Stats Table Transform
