(* Unit tests for the prelude substrate: RNG, distributions, statistics,
   integer codings, list helpers and table rendering. *)

open Goalcom_prelude

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* Rng *)

let test_rng_determinism () =
  let a = Rng.make 42 and b = Rng.make 42 in
  List.iter
    (fun _ ->
      Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b))
    (Listx.range 0 50)

let test_rng_different_seeds () =
  let a = Rng.make 1 and b = Rng.make 2 in
  Alcotest.(check bool) "different first draw" true (Rng.int64 a <> Rng.int64 b)

let test_rng_int_range () =
  let rng = Rng.make 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 13 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 13)
  done

let test_rng_int_covers () =
  let rng = Rng.make 8 in
  let seen = Array.make 6 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 6) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_rng_int_validation () =
  let rng = Rng.make 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.make 9 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0. && v < 2.5)
  done

let test_rng_bernoulli_bias () =
  let rng = Rng.make 10 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10_000. in
  Alcotest.(check bool) "close to 0.3" true (Float.abs (rate -. 0.3) < 0.03)

let test_rng_split_independence () =
  let parent = Rng.make 11 in
  let child = Rng.split parent in
  let a = Rng.int64 child and b = Rng.int64 parent in
  Alcotest.(check bool) "split streams differ" true (a <> b)

let test_rng_permutation () =
  let rng = Rng.make 12 in
  let p = Rng.permutation rng 10 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation"
    (Array.init 10 Fun.id) sorted

let test_rng_copy () =
  let a = Rng.make 13 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "same continuation" (Rng.int64 a) (Rng.int64 b)

let test_rng_pick () =
  let rng = Rng.make 14 in
  let v = Rng.pick rng [ 5 ] in
  Alcotest.(check int) "singleton" 5 v;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list")
    (fun () -> ignore (Rng.pick rng ([] : int list)))

(* Dist *)

let test_dist_normalisation () =
  let d = Dist.of_weighted [ ("a", 1.); ("b", 3.) ] in
  Alcotest.(check (float 1e-9)) "p(a)" 0.25 (Dist.prob d "a");
  Alcotest.(check (float 1e-9)) "p(b)" 0.75 (Dist.prob d "b");
  Alcotest.(check bool) "normalised" true (Dist.is_normalised d)

let test_dist_merges_duplicates () =
  let d = Dist.of_weighted [ (1, 1.); (1, 1.); (2, 2.) ] in
  Alcotest.(check int) "support size" 2 (List.length (Dist.support d));
  Alcotest.(check (float 1e-9)) "p(1)" 0.5 (Dist.prob d 1)

let test_dist_uniform () =
  let d = Dist.uniform [ 1; 2; 3; 4 ] in
  Alcotest.(check (float 1e-9)) "quarter" 0.25 (Dist.prob d 3)

let test_dist_map_bind () =
  let d = Dist.uniform [ 0; 1 ] in
  let doubled = Dist.map (fun x -> 2 * x) d in
  Alcotest.(check (float 1e-9)) "p(2)" 0.5 (Dist.prob doubled 2);
  let chained =
    Dist.bind d (fun x -> if x = 0 then Dist.return 0 else Dist.uniform [ 1; 2 ])
  in
  Alcotest.(check (float 1e-9)) "p(0)" 0.5 (Dist.prob chained 0);
  Alcotest.(check (float 1e-9)) "p(1)" 0.25 (Dist.prob chained 1)

let test_dist_expect () =
  let d = Dist.of_weighted [ (1., 1.); (3., 1.) ] in
  Alcotest.(check (float 1e-9)) "mean" 2. (Dist.expect Fun.id d)

let test_dist_sample_frequencies () =
  let d = Dist.of_weighted [ (0, 0.2); (1, 0.8) ] in
  let rng = Rng.make 20 in
  let ones = ref 0 in
  for _ = 1 to 5000 do
    if Dist.sample rng d = 1 then incr ones
  done;
  let rate = float_of_int !ones /. 5000. in
  Alcotest.(check bool) "sampling matches" true (Float.abs (rate -. 0.8) < 0.03)

let test_dist_total_variation () =
  let a = Dist.uniform [ 0; 1 ] and b = Dist.uniform [ 1; 2 ] in
  Alcotest.(check (float 1e-9)) "tv" 0.5 (Dist.total_variation a b);
  Alcotest.(check (float 1e-9)) "tv self" 0. (Dist.total_variation a a)

let test_dist_bernoulli_edge () =
  Alcotest.(check (float 1e-9)) "p=0" 1. (Dist.prob (Dist.bernoulli 0.) false);
  Alcotest.(check (float 1e-9)) "p=1" 1. (Dist.prob (Dist.bernoulli 1.) true);
  Alcotest.(check (float 1e-9)) "clamped" 1. (Dist.prob (Dist.bernoulli 1.5) true)

let test_dist_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Dist.of_weighted: empty")
    (fun () -> ignore (Dist.of_weighted ([] : (int * float) list)));
  Alcotest.check_raises "negative"
    (Invalid_argument "Dist.of_weighted: negative weight") (fun () ->
      ignore (Dist.of_weighted [ (1, -1.) ]));
  Alcotest.check_raises "zero"
    (Invalid_argument "Dist.of_weighted: zero total weight") (fun () ->
      ignore (Dist.of_weighted [ (1, 0.) ]))

(* Stats *)

let test_stats_mean_median () =
  Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "median odd" 2. (Stats.median [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "median even" 1.5 (Stats.median [ 2.; 1. ])

let test_stats_variance () =
  Alcotest.(check (float 1e-9)) "variance" 1. (Stats.variance [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "single" 0. (Stats.variance [ 5. ])

let test_stats_percentile () =
  let xs = List.map float_of_int (Listx.range 1 11) in
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.percentile 0. xs);
  Alcotest.(check (float 1e-9)) "p100" 10. (Stats.percentile 100. xs);
  Alcotest.(check (float 1e-9)) "p50" 5.5 (Stats.percentile 50. xs)

let test_stats_summary () =
  let s = Stats.summarise [ 4.; 1.; 3.; 2. ] in
  Alcotest.(check int) "n" 4 s.Stats.n;
  Alcotest.(check (float 1e-9)) "min" 1. s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 4. s.Stats.max

let test_stats_success_rate () =
  Alcotest.(check (float 1e-9)) "rate" 0.5
    (Stats.success_rate [ true; false; true; false ])

let test_stats_validation () =
  Alcotest.check_raises "empty mean"
    (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Stats.mean []))

(* Coding *)

let test_coding_pair_roundtrip () =
  List.iter
    (fun z ->
      let x, y = Coding.unpair z in
      Alcotest.(check int) "roundtrip" z (Coding.pair x y))
    (Listx.range 0 500)

let test_coding_pair_known () =
  Alcotest.(check int) "pair 0 0" 0 (Coding.pair 0 0);
  Alcotest.(check (pair int int)) "unpair 0" (0, 0) (Coding.unpair 0)

let test_coding_pair_overflow () =
  Alcotest.check_raises "overflow guarded"
    (Invalid_argument "Coding.pair: overflow") (fun () ->
      ignore (Coding.pair max_int 1));
  Alcotest.check_raises "unpair domain guarded"
    (Invalid_argument "Coding.unpair: code outside the supported domain")
    (fun () -> ignore (Coding.unpair max_int));
  (* The extremes of the valid range still roundtrip. *)
  let top = Coding.pair 0 3_037_000_498 in
  let x, y = Coding.unpair top in
  Alcotest.(check int) "roundtrip at image max" top (Coding.pair x y);
  let big = 3_000_000_000 in
  let x, y = Coding.unpair big in
  Alcotest.(check int) "roundtrip at 3e9" big (Coding.pair x y)

let test_coding_list_overflow () =
  Alcotest.check_raises "long list overflow raises cleanly"
    (Invalid_argument "Coding.pair: overflow") (fun () ->
      ignore (Coding.encode_list [ 100; 100; 100; 100; 100; 100 ]))

let test_coding_triple () =
  let a, b, c = Coding.untriple (Coding.triple 3 1 4) in
  Alcotest.(check (list int)) "triple" [ 3; 1; 4 ] [ a; b; c ]

let test_coding_list_roundtrip () =
  List.iter
    (fun xs ->
      Alcotest.(check (list int)) "roundtrip" xs
        (Coding.decode_list (Coding.encode_list xs)))
    [ []; [ 0 ]; [ 1; 2; 3 ]; [ 0; 0; 0 ]; [ 7; 0; 9; 2 ] ]

let test_coding_list_injective () =
  let seen = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let xs = Coding.decode_list n in
      Alcotest.(check bool) "fresh" false (Hashtbl.mem seen xs);
      Hashtbl.add seen xs ())
    (Listx.range 0 300)

let test_coding_tuple () =
  let radices = [| 3; 4; 2 |] in
  Alcotest.(check int) "space" 24 (Coding.tuple_space ~radices);
  List.iter
    (fun code ->
      let digits = Coding.decode_tuple ~radices code in
      Alcotest.(check int) "roundtrip" code (Coding.encode_tuple ~radices digits))
    (Listx.range 0 24);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Coding.decode_tuple: code out of range") (fun () ->
      ignore (Coding.decode_tuple ~radices 24))

(* Listx *)

let test_listx_range_take_drop () =
  Alcotest.(check (list int)) "range" [ 2; 3; 4 ] (Listx.range 2 5);
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take long" [ 1 ] (Listx.take 5 [ 1 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ])

let test_listx_last () =
  Alcotest.(check int) "last" 3 (Listx.last [ 1; 2; 3 ]);
  Alcotest.(check (option int)) "last_opt empty" None (Listx.last_opt ([] : int list))

let test_listx_transpose () =
  Alcotest.(check (list (list int)))
    "transpose"
    [ [ 1; 3 ]; [ 2; 4 ] ]
    (Listx.transpose [ [ 1; 2 ]; [ 3; 4 ] ]);
  Alcotest.check_raises "ragged" (Invalid_argument "Listx.transpose: ragged rows")
    (fun () -> ignore (Listx.transpose [ [ 1 ]; [ 2; 3 ] ]))

let test_listx_windows () =
  Alcotest.(check (list (list int)))
    "windows"
    [ [ 1; 2 ]; [ 2; 3 ] ]
    (Listx.windows 2 [ 1; 2; 3 ])

let test_listx_unfold_iterate () =
  let countdown = Listx.unfold (fun n -> if n = 0 then None else Some (n, n - 1)) 3 in
  Alcotest.(check (list int)) "unfold" [ 3; 2; 1 ] countdown;
  Alcotest.(check (list int)) "iterate" [ 1; 2; 4; 8 ]
    (Listx.iterate 3 (fun x -> 2 * x) 1)

let test_listx_find_index () =
  Alcotest.(check (option int)) "found" (Some 1)
    (Listx.find_index (fun x -> x > 1) [ 1; 2; 3 ]);
  Alcotest.(check (option int)) "missing" None
    (Listx.find_index (fun x -> x > 9) [ 1; 2; 3 ])

(* Table *)

let test_table_render () =
  let t =
    Table.make ~title:"demo" ~columns:[ "a"; "bb" ]
      ~notes:[ "footnote" ]
      [ [ "1"; "2" ]; [ "33"; "4" ] ]
  in
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (contains ~affix:"demo" s);
  Alcotest.(check bool) "has cell" true (contains ~affix:"33" s);
  Alcotest.(check bool) "has note" true (contains ~affix:"footnote" s)

let test_table_validation () =
  Alcotest.check_raises "ragged"
    (Invalid_argument "Table.make (t): row width 1, expected 2") (fun () ->
      ignore (Table.make ~title:"t" ~columns:[ "a"; "b" ] [ [ "1" ] ]))

let test_table_csv () =
  let t =
    Table.make ~title:"t" ~columns:[ "x"; "y" ] [ [ "a,b"; "c\"d" ] ]
  in
  Alcotest.(check string) "csv quoting" "x,y\n\"a,b\",\"c\"\"d\"\n"
    (Table.to_csv t)

let test_table_cells () =
  Alcotest.(check string) "pct" "87.0%" (Table.cell_pct 0.87);
  Alcotest.(check string) "ratio" "3.10x" (Table.cell_ratio 3.1);
  Alcotest.(check string) "float" "1.50" (Table.cell_float 1.5)

let () =
  Alcotest.run "prelude"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_different_seeds;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int covers" `Quick test_rng_int_covers;
          Alcotest.test_case "int validation" `Quick test_rng_int_validation;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "bernoulli bias" `Quick test_rng_bernoulli_bias;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "pick" `Quick test_rng_pick;
        ] );
      ( "dist",
        [
          Alcotest.test_case "normalisation" `Quick test_dist_normalisation;
          Alcotest.test_case "merges duplicates" `Quick test_dist_merges_duplicates;
          Alcotest.test_case "uniform" `Quick test_dist_uniform;
          Alcotest.test_case "map/bind" `Quick test_dist_map_bind;
          Alcotest.test_case "expect" `Quick test_dist_expect;
          Alcotest.test_case "sample frequencies" `Quick test_dist_sample_frequencies;
          Alcotest.test_case "total variation" `Quick test_dist_total_variation;
          Alcotest.test_case "bernoulli edge" `Quick test_dist_bernoulli_edge;
          Alcotest.test_case "validation" `Quick test_dist_validation;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/median" `Quick test_stats_mean_median;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "success rate" `Quick test_stats_success_rate;
          Alcotest.test_case "validation" `Quick test_stats_validation;
        ] );
      ( "coding",
        [
          Alcotest.test_case "pair roundtrip" `Quick test_coding_pair_roundtrip;
          Alcotest.test_case "pair known" `Quick test_coding_pair_known;
          Alcotest.test_case "pair overflow" `Quick test_coding_pair_overflow;
          Alcotest.test_case "list overflow" `Quick test_coding_list_overflow;
          Alcotest.test_case "triple" `Quick test_coding_triple;
          Alcotest.test_case "list roundtrip" `Quick test_coding_list_roundtrip;
          Alcotest.test_case "list injective" `Quick test_coding_list_injective;
          Alcotest.test_case "tuple" `Quick test_coding_tuple;
        ] );
      ( "listx",
        [
          Alcotest.test_case "range/take/drop" `Quick test_listx_range_take_drop;
          Alcotest.test_case "last" `Quick test_listx_last;
          Alcotest.test_case "transpose" `Quick test_listx_transpose;
          Alcotest.test_case "windows" `Quick test_listx_windows;
          Alcotest.test_case "unfold/iterate" `Quick test_listx_unfold_iterate;
          Alcotest.test_case "find_index" `Quick test_listx_find_index;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "validation" `Quick test_table_validation;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
    ]
