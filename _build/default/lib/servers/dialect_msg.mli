(** Applying a dialect to structured messages.

    A dialect relabels the {e command symbols} of the user↔server
    protocol: every [Sym s] inside a message is permuted, recursively
    through pairs and sequences, while payload values ([Int], [Text])
    pass through unchanged.  Symbols outside the dialect's range are
    left untouched (they belong to a different alphabet, e.g. status
    codes). *)

open Goalcom
open Goalcom_automata

val encode : Dialect.t -> Msg.t -> Msg.t
(** Canonical → dialect form. *)

val decode : Dialect.t -> Msg.t -> Msg.t
(** Dialect form → canonical. *)
