lib/core/io.mli: Msg
