lib/goals/grid.mli:
