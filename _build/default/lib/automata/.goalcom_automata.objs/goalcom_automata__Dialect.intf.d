lib/automata/dialect.mli: Enum Format Goalcom_prelude
