test/test_baselines.ml: Alcotest Baselines Dialect Enum Exec Goalcom Goalcom_automata Goalcom_baselines Goalcom_goals Goalcom_prelude History List Listx Outcome Printf Printing Rng Strategy
