lib/prelude/rng.mli:
