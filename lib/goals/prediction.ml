open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers

let ask_cmd = 0
let min_alphabet = 2

let check_alphabet alphabet =
  if alphabet < min_alphabet then
    invalid_arg "Prediction: alphabet must have at least 2 symbols"

type params = { num_attributes : int }

let default_params = { num_attributes = 6 }

let check_params p =
  if p.num_attributes <= 0 || p.num_attributes > 14 then
    invalid_arg "Prediction: num_attributes must be in 1..14"

let parity_mask mask bits =
  let rec go i acc = function
    | [] -> acc
    | b :: rest ->
        let acc = if mask land (1 lsl i) <> 0 && b = 1 then acc lxor 1 else acc in
        go (i + 1) acc rest
  in
  go 0 0 bits

let parity_concept concept bits =
  let rec go acc cs bs =
    match (cs, bs) with
    | c :: cs, b :: bs -> go (if c = 1 && b = 1 then acc lxor 1 else acc) cs bs
    | _, _ -> acc
  in
  go 0 concept bits

(* Teacher: remembers the concept the world shows it, answers ASK. *)
let teacher ~alphabet =
  check_alphabet alphabet;
  Strategy.make ~name:"teacher"
    ~init:(fun () -> None)
    ~step:(fun _rng known (obs : Io.Server.obs) ->
      let known =
        match Codec.ints_opt obs.from_world with
        | Some bits -> Some bits
        | None -> known
      in
      match (obs.from_user, known) with
      | Msg.Sym c, Some concept when c = ask_cmd ->
          ( known,
            Io.Server.say_user (Msg.Pair (Msg.Sym ask_cmd, Codec.ints concept)) )
      | _ -> (known, Io.Server.silent))

let server ~alphabet d = Transform.with_dialect d (teacher ~alphabet)

let server_class ~alphabet dialects =
  Transform.dialect_class ~base:(teacher ~alphabet) dialects

type wstate = {
  concept : int list option;
  pending : int list list;  (* announced, newest first; scored at length 2 *)
  mistake_now : bool;
}

let random_bits rng n = List.map (fun _ -> Rng.int rng 2) (Listx.range 0 n)

let rec random_nonzero_concept rng n =
  let bits = random_bits rng n in
  if List.exists (fun b -> b = 1) bits then bits
  else random_nonzero_concept rng n

let world ?(params = default_params) () =
  check_params params;
  let n = params.num_attributes in
  World.make
    ~name:(Printf.sprintf "parity-world(n=%d)" n)
    ~init:(fun () -> { concept = None; pending = []; mistake_now = false })
    ~step:(fun rng st (obs : Io.World.obs) ->
      let concept =
        match st.concept with
        | Some c -> c
        | None -> random_nonzero_concept rng n
      in
      (* Score the oldest pending instance against the arriving
         prediction (announced two rounds ago, seen by the user one
         round ago, answered immediately). *)
      let scored, pending =
        match List.rev st.pending with
        | oldest :: _ when List.length st.pending >= 2 ->
            (Some oldest, Listx.take (List.length st.pending - 1) st.pending)
        | _ -> (None, st.pending)
      in
      let feedback, mistake_now =
        match scored with
        | None -> (Msg.Silence, false)
        | Some x ->
            let label = parity_concept concept x in
            let verdict =
              match obs.from_user with
              | Msg.Int p when p = label -> 1
              | _ -> 0
            in
            ( Msg.Pair (Msg.Pair (Msg.Int verdict, Msg.Int label), Codec.ints x),
              verdict = 0 )
      in
      let x_new = random_bits rng n in
      let st =
        { concept = Some concept; pending = x_new :: pending; mistake_now }
      in
      ( st,
        {
          Io.World.to_user = Msg.Pair (Codec.ints x_new, feedback);
          to_server = Codec.ints concept;
        } ))
    ~view:(fun st -> Msg.Int (if st.mistake_now then 0 else 1))

(* A prefix is unacceptable exactly when its latest world view scores a
   mistake, so the incremental judge is stateless. *)
let referee =
  Referee.compact_incremental "no-scored-mistake"
    ~init:(fun _v0 -> ((), `Ok))
    ~step:(fun () v ->
      ((), match v with Msg.Int 0 -> `Violation | _ -> `Ok))

let goal ?(params = default_params) ~alphabet () =
  check_alphabet alphabet;
  check_params params;
  Goal.make
    ~name:(Printf.sprintf "prediction(n=%d)" params.num_attributes)
    ~worlds:[ world ~params () ]
    ~referee

let broadcast_parts = function
  | Msg.Pair (x_new, feedback) -> begin
      match Codec.ints_opt x_new with
      | Some bits -> Some (bits, feedback)
      | None -> None
    end
  | _ -> None

let feedback_parts = function
  | Msg.Pair (Msg.Pair (Msg.Int verdict, Msg.Int label), scored) -> begin
      match Codec.ints_opt scored with
      | Some bits -> Some (verdict, label, bits)
      | None -> None
    end
  | _ -> None

let ask_patience = 4

type tphase = Asking of int | Knowing of int list

let teacher_user ?(params = default_params) ~alphabet d =
  check_alphabet alphabet;
  check_params params;
  let n = params.num_attributes in
  let ask = Dialect_msg.encode d (Msg.Sym ask_cmd) in
  Strategy.make
    ~name:(Printf.sprintf "ask-teacher@%s" (Format.asprintf "%a" Dialect.pp d))
    ~init:(fun () -> Asking ask_patience)
    ~step:(fun _rng phase (obs : Io.User.obs) ->
      let phase =
        match phase with
        | Knowing _ -> phase
        | Asking _ -> begin
            (* A concept reply is any pair whose payload is an n-bit
               vector — readable whatever the dialect did to the
               command symbol. *)
            match obs.from_server with
            | Msg.Pair (_, payload) -> begin
                match Codec.ints_opt payload with
                | Some bits
                  when List.length bits = n
                       && List.for_all (fun b -> b = 0 || b = 1) bits ->
                    Knowing bits
                | _ -> phase
              end
            | _ -> phase
          end
      in
      let predict =
        match (phase, broadcast_parts obs.from_world) with
        | Knowing concept, Some (x_new, _) ->
            Msg.Int (parity_concept concept x_new)
        | Asking _, Some _ -> Msg.Int 0
        | _, None -> Msg.Silence
      in
      match phase with
      | Knowing _ ->
          (phase, { Io.User.silent with Io.User.to_world = predict })
      | Asking k ->
          let to_server, k = if k >= ask_patience then (ask, 0) else (Msg.Silence, k + 1) in
          ( Asking k,
            { Io.User.to_server = to_server; to_world = predict; halt = false } ))

let learner_user ?(params = default_params) () =
  check_params params;
  let n = params.num_attributes in
  Strategy.make
    ~name:(Printf.sprintf "halving-learner(n=%d)" n)
    ~init:(fun () -> Listx.range 0 (1 lsl n))
    ~step:(fun _rng version_space (obs : Io.User.obs) ->
      match broadcast_parts obs.from_world with
      | None -> (version_space, Io.User.silent)
      | Some (x_new, feedback) ->
          let version_space =
            match feedback_parts feedback with
            | Some (_, label, scored) ->
                let survivors =
                  List.filter (fun m -> parity_mask m scored = label) version_space
                in
                (* Never empty the space (robust to adversarial noise):
                   keep it unchanged rather than go silent forever. *)
                if survivors = [] then version_space else survivors
            | None -> version_space
          in
          let ones = Listx.count (fun m -> parity_mask m x_new = 1) version_space in
          let predict = if 2 * ones > List.length version_space then 1 else 0 in
          (version_space, Io.User.say_world (Msg.Int predict)))

let user_class ?(params = default_params) ~alphabet dialects =
  Enum.append
    (Enum.map
       ~name:(Printf.sprintf "ask-teachers(%s)" (Enum.name dialects))
       (fun d -> teacher_user ~params ~alphabet d)
       dialects)
    (Enum.of_list ~name:"learner" [ learner_user ~params () ])

let sensing =
  Sensing.of_latest ~name:"no-mistake-scored" ~empty:true (fun e ->
      match broadcast_parts e.View.from_world with
      | Some (_, feedback) -> begin
          match feedback_parts feedback with
          | Some (0, _, _) -> false
          | _ -> true
        end
      | None -> true)

let universal_user ?(grace = 3) ?stats ?(params = default_params) ~alphabet
    dialects =
  Universal.compact ~grace ?stats
    ~enum:(user_class ~params ~alphabet dialects)
    ~sensing ()

let mistakes history =
  Listx.count
    (fun view -> view = Msg.Int 0)
    (History.world_views history)
