lib/core/outcome.mli: Format Goal History
