lib/prelude/table.mli:
