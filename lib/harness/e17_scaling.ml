(* E17 / Figure — multicore scaling of the parallel entry points.

   The paper's Theorem 1 (finite case) invokes Levin's enumeration of
   strategies "in parallel"; lib/par makes that parallelism literal.
   This experiment measures the wall-clock speedup curve 1..N domains
   on three registered workloads and, in the same table, re-asserts the
   determinism contract: every parallel result is checked equal to its
   jobs=1 run.

   Workload notes:
   - "e1/trials" and "e3/race" are CPU-bound; their speedup tracks the
     number of physical cores (≈1 on a single-core host).
   - "maze/remote" models the regime the theory of goal-oriented
     communication is actually about: the server is a *remote* party,
     so each round pays a communication latency (here simulated with a
     sleep in the server's step).  Trials on separate domains overlap
     those stalls, so the speedup approaches the jobs count even on one
     core — this is the workload the BENCH_par gate holds to >= 2x at
     four domains. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let title = "Multicore scaling of parallel trials and Levin racing"

let claim =
  "Theorem 1, finite case, made literal: candidate sessions and \
   independent trials run on separate domains; with a remote (latent) \
   server the stalls overlap and wall-clock falls with the domain count"

(* --- shared corridor maze (also exercised by the racer tests): a
   5-wide snake in which a wrong-rotation dialect cannot move the agent
   off the start cell, so exactly one candidate ever senses positive. *)
let corridor_blocked = [ (0, 1); (1, 1); (2, 1); (3, 1); (0, 2); (1, 2) ]

let corridor =
  Maze.scenario ~blocked:corridor_blocked ~width:5 ~height:3 ~start:(0, 0)
    ~target:(2, 2) ()

let alphabet = 6
let latency_s = 0.002

(* A "remote" server: every step pays one round-trip latency before the
   wrapped server acts.  Randomness and state pass straight through, so
   results are unchanged — only the clock is. *)
let remote (server : Strategy.server) : Strategy.server =
  let module I = Strategy.Instance in
  Strategy.make
    ~name:(Printf.sprintf "remote(%s)" (Strategy.name server))
    ~init:(fun () -> I.create server)
    ~step:(fun rng inst obs ->
      Unix.sleepf latency_s;
      (inst, I.step rng inst obs))

(* Each workload returns a deterministic digest; the table asserts the
   digest equal across jobs counts. *)
type measurement = { seconds : float; digest : string }

let time f =
  let t0 = Unix.gettimeofday () in
  let digest = f () in
  { seconds = Unix.gettimeofday () -. t0; digest }

let trial_digest (r : Trial.result) =
  Printf.sprintf "%d/%d mean=%.3f unsafe=%d" r.Trial.successes r.Trial.trials
    r.Trial.mean_rounds r.Trial.unsafe_halts

let workload_e1_trials ~seed ~jobs () =
  let alphabet = 4 in
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Printing.goal ~docs:[ [ 3; 1; 4 ] ] ~alphabet () in
  let server = Printing.server ~alphabet (Enum.get_exn dialects 2) in
  let user = Printing.universal_user ~alphabet dialects in
  let config = Exec.config ~horizon:2_000 () in
  trial_digest
    (Trial.run_par ~config ~jobs ~trials:24 ~seed ~goal ~user ~server ())

let workload_e3_race ~seed ~jobs () =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Maze.goal ~scenarios:[ corridor ] ~alphabet () in
  let enum = Maze.user_class ~alphabet ~scenario:corridor dialects in
  let server = Maze.server ~alphabet (Enum.get_exn dialects 5) in
  let schedule = Levin.round_robin ~budget:64 ~width:alphabet () in
  match
    Universal.finite_par ~schedule ~max_slots:alphabet ~jobs ~enum
      ~sensing:Maze.sensing ~goal ~server ~seed ()
  with
  | None -> "no winner"
  | Some r ->
      Printf.sprintf "winner=%d slot=%d rounds=%d" r.Universal.winner_index
        r.Universal.winner_slot r.Universal.winner_rounds

let workload_maze_remote ~seed ~jobs () =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Maze.goal ~scenarios:[ corridor ] ~alphabet () in
  let dialect = Enum.get_exn dialects 3 in
  let server = remote (Maze.server ~alphabet dialect) in
  let user = Maze.informed_user ~alphabet ~scenario:corridor dialect in
  let config = Exec.config ~horizon:60 () in
  trial_digest
    (Trial.run_par ~config ~jobs ~trials:8 ~seed ~goal ~user ~server ())

let workloads =
  [
    ("e1/trials", workload_e1_trials);
    ("e3/race", workload_e3_race);
    ("maze/remote", workload_maze_remote);
  ]

let jobs_curve () =
  List.sort_uniq compare (1 :: 2 :: 4 :: [ Goalcom_par.Pool.default_jobs () ])

let run ~seed =
  let rows =
    List.concat_map
      (fun (name, workload) ->
        let base = ref None in
        List.map
          (fun jobs ->
            let m = time (workload ~seed ~jobs) in
            let t1, d1 =
              match !base with
              | None ->
                  base := Some (m.seconds, m.digest);
                  (m.seconds, m.digest)
              | Some b -> b
            in
            [
              name;
              Table.cell_int jobs;
              Printf.sprintf "%.1f" (m.seconds *. 1000.);
              Table.cell_ratio (t1 /. m.seconds);
              (if m.digest = d1 then "yes" else "NO");
            ])
          (jobs_curve ()))
      workloads
  in
  Table.make ~title:"E17 (Figure): wall-clock speedup, 1..N domains"
    ~columns:[ "workload"; "jobs"; "wall ms"; "speedup"; "= jobs 1" ]
    ~notes:
      [
        "wall/speedup columns are measured on the host (not deterministic); \
         the '= jobs 1' column asserts the parallel result equals the \
         sequential one";
        "e1/trials and e3/race are CPU-bound (speedup tracks physical \
         cores); maze/remote pays a per-round server latency, which \
         separate domains overlap";
        Printf.sprintf "host reports %d recommended domain(s)"
          (Domain.recommended_domain_count ());
      ]
    rows
