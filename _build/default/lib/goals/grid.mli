(** Grid worlds with obstacles — the spatial substrate of the maze goal. *)

type t = private {
  width : int;
  height : int;
  blocked : (int * int) list;  (** impassable cells *)
}

type pos = int * int

val make : width:int -> height:int -> ?blocked:(int * int) list -> unit -> t
(** @raise Invalid_argument on non-positive dimensions or blocked cells
    out of bounds. *)

val in_bounds : t -> pos -> bool
val is_free : t -> pos -> bool

(** Directions are the canonical movement commands. *)
val north : int
val east : int
val south : int
val west : int

val num_directions : int
(** 4. *)

val step_dir : pos -> int -> pos
(** Coordinates after moving one cell in a direction (no bounds check).
    @raise Invalid_argument on an unknown direction. *)

val move : t -> pos -> int -> pos
(** Like {!step_dir} but blocked or out-of-bounds moves stay put. *)

val bfs_path : t -> pos -> pos -> int list option
(** Shortest sequence of directions from source to destination, [None]
    if unreachable.  @raise Invalid_argument if either endpoint is not
    a free in-bounds cell. *)

val manhattan : pos -> pos -> int
