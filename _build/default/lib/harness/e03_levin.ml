(* E3 / Table 2 — Theorem 1, finite case: the Levin-style parallel
   enumeration achieves the maze goal with every server in the class,
   and its session count grows with the index of the right strategy. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let title = "Levin-enumeration universal user on the maze goal"

let claim =
  "Theorem 1, finite case: enumerating strategies 'in parallel' as in \
   Levin's universal search, halting on positive sensing, is universal"

let alphabet = 6
let scenario = Maze.scenario ~width:8 ~height:8 ~start:(0, 0) ~target:(5, 4) ()
let trials = 3

let run ~seed =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Maze.goal ~scenarios:[ scenario ] ~alphabet () in
  let config = Exec.config ~horizon:20_000 () in
  let rows =
    List.map
      (fun i ->
        let server = Maze.server ~alphabet (Enum.get_exn dialects i) in
        (* stats reflect the last trial's instance; sessions are also
           averaged by re-running single trials. *)
        let sessions = ref [] in
        let rounds = ref [] in
        let successes = ref 0 in
        List.iter
          (fun t ->
            let stats = Universal.new_stats () in
            let user = Maze.universal_user ~stats ~alphabet ~scenario dialects in
            let outcome, history =
              Exec.run_outcome ~config ~goal ~user ~server
                (Rng.make (seed + (100 * i) + t))
            in
            if outcome.Outcome.achieved then begin
              incr successes;
              rounds := float_of_int (History.length history) :: !rounds;
              sessions := float_of_int stats.Universal.sessions :: !sessions
            end)
          (Listx.range 0 trials);
        [
          Table.cell_int i;
          Table.cell_pct (float_of_int !successes /. float_of_int trials);
          (if !rounds = [] then "-" else Table.cell_float (Stats.mean !rounds));
          (if !sessions = [] then "-" else Table.cell_float (Stats.mean !sessions));
        ])
      (Listx.range 0 alphabet)
  in
  Table.make ~title:"E3 (Table 2): Levin universal user on the maze goal"
    ~columns:[ "server index"; "success"; "mean rounds"; "mean sessions" ]
    ~notes:
      [
        "8x8 open grid, start (0,0), target (5,4); class = 6 rotation dialects";
        "expected shape: 100% success everywhere; rounds/sessions generally \
         grow with the index (noisy: earlier wrong-dialect sessions scramble \
         the agent's position)";
      ]
    rows
