test/test_multi_session.mli:
