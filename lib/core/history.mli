(** Execution histories.

    A history records, for every round, the six channel messages emitted
    that round, the world-state view after the round, and whether the
    user had halted.  Referees read the world-view sequence; sensing
    reads the user-visible projection ({!View}).

    Storage is chunked: rounds are appended into fixed-size arrays hung
    off a growable spine, so recording a round is an array store rather
    than a cons, and [length]/[halted]/[halt_round]/[prefix] are O(1).
    The {!rounds} list accessor is a compatibility view built on
    demand; hot paths should use {!fold_rounds}/{!iter_rounds}/
    {!round_exn}, which index the chunks directly. *)

module Round : sig
  type t = {
    index : int;  (** 1-based *)
    user_to_server : Msg.t;
    user_to_world : Msg.t;
    server_to_user : Msg.t;
    server_to_world : Msg.t;
    world_to_user : Msg.t;
    world_to_server : Msg.t;
    world_view : Msg.t;  (** world state after this round *)
    user_halted : bool;  (** true from the halting round onwards *)
  }

  val pp : Format.formatter -> t -> unit
end

type t

type history = t
(** Alias for use inside {!Builder}. *)

val make : initial_world_view:Msg.t -> Round.t list -> t
(** [make ~initial_world_view rounds] with rounds in chronological order
    and indices 1, 2, ....  @raise Invalid_argument on bad indices. *)

module Builder : sig
  (** Incremental history construction — what {!Exec}'s stepper uses to
      record rounds without a cons list + [List.rev] round-trip. *)

  type t

  val create : initial_world_view:Msg.t -> t

  val add : t -> Round.t -> unit
  (** Append the next round.  @raise Invalid_argument if the round's
      index is not [length t + 1] or the builder is finished. *)

  val length : t -> int

  val finish : t -> history
  (** Freeze the builder into a history (shares the chunk storage; the
      builder refuses further {!add}s). *)
end

val initial_world_view : t -> Msg.t

val rounds : t -> Round.t list
(** Chronological.  Compatibility view, allocated on demand — prefer
    {!fold_rounds} / {!iter_rounds} / {!round_exn} on hot paths. *)

val length : t -> int

val round_exn : t -> int -> Round.t
(** [round_exn t i] is the round at 0-based position [i] (so round
    index [i + 1]), in O(1).  @raise Invalid_argument out of bounds. *)

val fold_rounds : t -> init:'a -> f:('a -> Round.t -> 'a) -> 'a
(** Chronological fold over the rounds, indexing chunks directly. *)

val iter_rounds : t -> f:(Round.t -> unit) -> unit

val world_views : t -> Msg.t list
(** Initial view followed by the per-round views (chronological;
    length is [length t + 1]). *)

val world_views_rev : t -> Msg.t list
(** Same sequence, most recent first. *)

val halted : t -> bool
(** Did the user halt during this history?  O(1). *)

val halt_round : t -> int option
(** First halting round, if any.  O(1). *)

val prefix : int -> t -> t
(** First [n] rounds (all of them if [n >= length t]); shares storage
    with the parent in O(1).  @raise Invalid_argument if [n < 0]. *)

val trace_events : t -> Trace.event list
(** Post-hoc reconstruction of the engine-level trace of this history:
    the [Round_start], [Emit], [Halt] and [Run_end] events {!Exec.run}
    would have emitted for the same run.  [Run_start] (the config is not
    recorded in a history) and the strategy-internal events (sensing
    verdicts, switches, fault activations) exist only in live traces. *)

val pp : Format.formatter -> t -> unit
