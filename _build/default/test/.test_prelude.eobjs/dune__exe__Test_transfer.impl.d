test/test_transfer.ml: Alcotest Codec Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude History Io List Listx Msg Outcome Printf Rng Sensing Strategy Transfer
