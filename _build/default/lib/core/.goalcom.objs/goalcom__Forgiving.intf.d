lib/core/forgiving.mli: Exec Format Goal Goalcom_prelude Strategy
