(** Finite discrete probability distributions.

    The paper's strategies map a state and an incoming message profile to a
    {e distribution} over (state, outgoing message profile) pairs.  The
    execution engine uses the sampling form ([Rng.t -> 'a]), but tests and
    validators need the explicit distribution to check normalisation,
    supports and expectations; this module provides that explicit form. *)

type 'a t
(** A finite distribution: a normalised list of (value, probability) pairs
    with strictly positive probabilities.  Values are compared with
    structural equality, so duplicate outcomes are merged. *)

val return : 'a -> 'a t
(** Point mass. *)

val of_weighted : ('a * float) list -> 'a t
(** [of_weighted l] normalises the non-negative weights in [l], merging
    duplicate values.  @raise Invalid_argument if all weights are zero,
    any weight is negative, or [l] is empty. *)

val uniform : 'a list -> 'a t
(** Uniform distribution on a non-empty list (duplicates merged). *)

val bernoulli : float -> bool t
(** [bernoulli p] is [true] with probability [p] (clamped to [0,1]). *)

val map : ('a -> 'b) -> 'a t -> 'b t
val bind : 'a t -> ('a -> 'b t) -> 'b t

val support : 'a t -> 'a list
(** Values with positive probability, in insertion order. *)

val prob : 'a t -> 'a -> float
(** Probability of a value (0. if absent). *)

val to_list : 'a t -> ('a * float) list

val expect : ('a -> float) -> 'a t -> float
(** Expected value of a function. *)

val sample : Rng.t -> 'a t -> 'a
(** Draw a sample. *)

val total_variation : 'a t -> 'a t -> float
(** Total-variation distance, in [0,1]. *)

val is_normalised : 'a t -> bool
(** Probabilities sum to 1 within 1e-9 (always true for exported values;
    exposed for property tests). *)
