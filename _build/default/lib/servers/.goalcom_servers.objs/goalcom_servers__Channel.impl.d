lib/servers/channel.ml: Goalcom Goalcom_prelude Io List Msg Printf Rng Strategy
