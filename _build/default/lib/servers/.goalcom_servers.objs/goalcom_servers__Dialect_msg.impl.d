lib/servers/dialect_msg.ml: Dialect Goalcom Goalcom_automata List Msg
