test/test_prelude.ml: Alcotest Array Coding Dist Float Fun Goalcom_prelude Hashtbl List Listx Rng Stats String Table
