(** A bounded, domain-safe LRU cache keyed by [int].

    The decode+compile memo of the enumeration ladder: strategy classes
    are enumerations of machines, candidates are fetched by index, and
    the same indices recur — across Levin phases within one race, and
    across runs within one process.  A bounded LRU keeps the hot prefix
    of the ladder compiled without letting an unbounded enumeration pin
    arbitrary memory.

    All bookkeeping takes an internal mutex, so one cache may be shared
    by the racer's resolution loop and by concurrent sequential runs on
    other domains.  [find_or_add] computes the missing value {e outside}
    the lock — two domains missing on the same key may both compute it
    (the first insertion wins) — so the cached computation must be pure,
    which decode+compile is. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity 0] is a valid, always-miss cache (caching disabled —
    every [find_or_add] recomputes and stores nothing).
    @raise Invalid_argument if [capacity < 0]. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find_or_add : 'a t -> int -> (int -> 'a) -> 'a
(** [find_or_add t k f] returns the cached value for [k], computing
    [f k] and inserting it (evicting the least recently used entry at
    capacity) on a miss.  A hit refreshes [k]'s recency.  [f] must not
    re-enter the same cache. *)

val mem : 'a t -> int -> bool
(** Membership without touching recency (for tests). *)

val hits : 'a t -> int
val misses : 'a t -> int
(** Lifetime counters ([clear] does not reset them). *)

val hit_rate : 'a t -> float
(** [hits / (hits + misses)], [0.] before any lookup. *)

val clear : 'a t -> unit
(** Drop every entry (counters are kept). *)
