lib/core/machine_user.ml: Enum Goalcom_automata Io Mealy Msg Printf Strategy
