(** JSONL serialization of traces, both directions: one JSON object per
    line, tagged ["ev"].

    The writer is hand-rolled (the event vocabulary is closed and flat)
    and deterministic — field order is fixed, numbers are plain decimal
    integers, messages are rendered with {!Goalcom.Msg.to_string} and
    JSON-escaped — so the golden-trace tests can diff files line by
    line.  Rendering goes straight into a [Buffer.t] (no [Printf]): the
    sink sits on the engine's hot path and the formatting allocations
    of a naive printer dominated the measured tracing overhead.

    The reader ({!parse_line}, {!of_file}) inverts the writer exactly:
    [parse_line (event_to_json e) = Ok e] for every event (qcheck-tested
    over arbitrary events), so any [--trace] file is a dataset for the
    analytics layer ({!Span}, {!Profile}, {!Trace_diff}). *)

open Goalcom

(** {1 Writing} *)

val add_event : Buffer.t -> Trace.event -> unit
(** Append the single-line JSON object (no trailing newline). *)

val event_to_json : Trace.event -> string
(** A single-line JSON object, no trailing newline. *)

val to_lines : Trace.event list -> string list

val sink : out_channel -> Trace.sink
(** Writes [event_to_json ev ^ "\n"] per event through a reused scratch
    buffer.  The channel is not flushed or closed; scope it with
    [Fun.protect].  Each partial application [sink oc] owns one scratch
    buffer — share the resulting closure, not the partial call. *)

val buffer_sink : Buffer.t -> Trace.sink

val with_file : ?buffer_bytes:int -> string -> (Trace.sink -> 'a) -> 'a
(** [with_file path f] creates/truncates [path] and hands [f] a sink
    that renders into a scratch buffer and batches channel writes in
    [buffer_bytes]-sized chunks (default 64 KiB); the tail is flushed
    and the file closed when [f] returns, exceptions included.  This is
    the fast path the CLI's [--trace FILE] uses. *)

val write_events : out_channel -> Trace.event list -> unit

val to_file : string -> Trace.event list -> unit
(** Create/truncate [path] and write the events, closing on exit. *)

(** {1 Reading} *)

val read_lines : string -> string list
(** The file's lines, unparsed (the diff layer compares serialized
    lines — the byte format is the contract). *)

val parse_line : string -> (Trace.event, string) result
(** Parse one JSONL line back into an event.  Exact inverse of
    {!event_to_json}; unknown ["ev"] tags, missing fields and malformed
    message literals are reported, not skipped. *)

val of_lines : string list -> (Trace.event list, string) result
(** First error wins, tagged with its 1-based line number. *)

val of_file : string -> (Trace.event list, string) result
(** Read and parse a whole trace file; errors carry the path. *)
