(** Universal user strategies — the paper's main result.

    {b Theorem 1} (loosely stated): for any (compact or finite) goal and
    any class of server strategies for which there exists safe and
    viable sensing, there exists a universal user strategy.

    Both constructions below are parameterised by an enumeration of the
    user-strategy class and a sensing function, exactly as in the proof
    sketch (§3):

    - {!compact}: "enumerating all relevant user strategies and
      switching from the current strategy to the next one when a
      negative indication is obtained from the sensing function".
    - {!finite}: "strategies are enumerated 'in parallel' as in Levin's
      approach, and sensing is used to decide when to stop" — realised
      as a schedule of sessions with geometrically growing budgets
      ({!Levin.schedule}), halting on the first positive indication.

    Safety of the sensing makes switching/halting sound; viability
    guarantees that some enumerated strategy eventually retains
    positive indications, at which point the universal user locks on. *)

(** Mutable instrumentation shared with the caller (reset each time a
    fresh instance of the universal strategy is created, i.e. once per
    execution). *)
type stats = {
  mutable switches : int;  (** strategy switches (compact) / session changes (finite) *)
  mutable sessions : int;  (** sessions started (finite) *)
  mutable current_index : int;  (** index of the strategy currently run *)
  mutable settled_round : int;  (** round of the last switch (0 if none) *)
}

val new_stats : unit -> stats

(** Enumeration progress that outlives a strategy instance.  Pass the
    same checkpoint to successive incarnations of a universal user:
    when [init] runs again (a crash-restart of the user, or a harness
    re-instantiation after a mid-session server crash) the fresh
    instance resumes the enumeration from the last recorded position —
    {!field:saved_index} for {!compact}, the first
    {!field:saved_slots}-skipping slot of the Levin schedule for
    {!finite} — instead of re-paying the whole enumeration overhead
    from index 0. *)
type checkpoint = {
  mutable saved_index : int;  (** index of the last adopted strategy *)
  mutable saved_slots : int;  (** Levin schedule slots already consumed *)
}

val new_checkpoint : unit -> checkpoint

val compact :
  ?grace:int ->
  ?growth:[ `Constant | `Doubling ] ->
  ?retries:int ->
  ?wedge_after:int ->
  ?checkpoint:checkpoint ->
  ?stats:stats ->
  enum:Strategy.user Goalcom_automata.Enum.t ->
  sensing:Sensing.t ->
  unit ->
  Strategy.user
(** The compact-goal universal user.  [grace] (default 1) is the
    minimum number of rounds a freshly adopted strategy runs before a
    negative indication may evict it; with [growth = `Doubling] (the
    default) the effective grace doubles with every full pass over a
    finite class, so a strategy that needs a bounded recovery period
    before its negative indications stop (think: steering a drifted
    plant back into range) is eventually given enough patience — the
    executable counterpart of the growing time allowance in the full
    version's construction.  [`Constant] disables the growth (used by
    the ablation experiment that shows why it is needed).  Finite
    enumerations are cycled (wrap-around).  The inner strategies' halt
    requests are suppressed — compact executions run forever.

    Robustness options (all off by default):
    - [retries]: when a negative indication evicts the current
      strategy, re-adopt the {e same} index afresh up to [retries]
      times before advancing, doubling the effective grace on each
      attempt (retry with exponential backoff).  A transient fault —
      a burst of loss, a server crash mid-recovery — then costs a
      retry, not a full extra pass over the enumeration.
    - [wedge_after]: if the [from_world] observation stream is frozen
      for [wedge_after] consecutive rounds while sensing is negative,
      the current strategy is evicted immediately (even mid-grace):
      a wedged session — server down, channel dead — is not worth
      spinning the grace window on.  The stall counter resets on every
      switch, so each strategy still gets [wedge_after] rounds to move
      the world.
    - [checkpoint]: record enumeration progress so a future
      re-instantiation resumes from the saved index (see
      {!type:checkpoint}).
    @raise Invalid_argument if the enumeration is empty, [retries] is
    negative, or [wedge_after] is not positive. *)

val finite :
  ?schedule:Levin.slot Seq.t ->
  ?checkpoint:checkpoint ->
  ?stats:stats ->
  enum:Strategy.user Goalcom_automata.Enum.t ->
  sensing:Sensing.t ->
  unit ->
  Strategy.user
(** The finite-goal universal user.  Runs candidate sessions according
    to [schedule] (default {!Levin.schedule}[ ()]); each session
    instantiates candidate [slot.index] afresh and runs it for
    [slot.budget] rounds; the user halts as soon as sensing reports
    positive on the completed rounds.  Slot indices are reduced modulo
    the enumeration's cardinality when it is finite.  With
    [checkpoint], consumed schedule slots are recorded and a fresh
    instance skips them, resuming the enumeration where a crashed
    predecessor stopped.
    @raise Invalid_argument if the enumeration is empty. *)

(** Result of a parallel Levin race (see {!finite_par}). *)
type race = {
  winner_slot : int;  (** schedule position of the winning session, 0-based *)
  winner_index : int;  (** Levin index of the winning candidate *)
  winner_budget : int;  (** the winning slot's round budget *)
  winner_rounds : int;  (** rounds the winning probe actually ran *)
  slots_probed : int;
      (** probes that ran uncancelled.  Deterministic at [jobs = 1]
          (exactly [winner_slot + 1]); at higher widths it depends on
          domain scheduling — later probes may finish before the winner
          posts — and is reported for speedup accounting only. *)
  history : History.t;  (** the winning probe's execution history *)
}

val finite_par :
  ?schedule:Levin.slot Seq.t ->
  ?max_slots:int ->
  ?jobs:int ->
  ?pool:Goalcom_par.Pool.t ->
  ?config:Exec.config ->
  enum:Strategy.user Goalcom_automata.Enum.t ->
  sensing:Sensing.t ->
  goal:Goal.t ->
  server:Strategy.server ->
  seed:int ->
  unit ->
  race option
(** The {e literal} reading of "strategies are enumerated 'in parallel'
    as in Levin's approach": the first [max_slots] (default 64) slots
    of [schedule] (default {!Levin.schedule}[ ()]) race on a domain
    pool.  Each probe instantiates candidate [slot.index] afresh and
    executes it for [slot.budget] rounds against [server] on a fresh
    world ([?config]'s [world_choice]; the slot budget overrides its
    horizon), with the candidate's own halts suppressed, exactly as a
    {!finite} session would run it; sensing then judges the probe's
    completed view.  The first positive indication cancels the
    still-pending probes: a cancelled probe halts at its next step,
    freeing its domain.

    The winner is the {e minimal positive schedule slot} — the slot the
    sequential schedule stops at — and a probe can only be cancelled by
    a positive slot strictly below it, so the winner is independent of
    [jobs] and of domain scheduling.  (The probes differ from
    {!finite}'s in-run sessions in that each starts from a fresh world
    and an empty view; on goals where a session's success does not
    depend on residue from earlier sessions — e.g. E3's maze class —
    the racer selects the same winning candidate as the sequential
    construction, which the test suite asserts.)

    Returns [None] when no probe senses positive within [max_slots].
    One generator per probe is pre-split from [seed] in slot order, so
    results are reproducible for every [jobs] count.  Width selection
    as in [Trial.run_par]: [?pool] (reused, takes precedence), else
    [?jobs], else [Pool.default_jobs ()].
    @raise Invalid_argument if the enumeration is empty, or [max_slots]
    or [jobs] is not positive. *)
