(* Structured execution tracing.

   The event algebra lives in lib/core (rather than lib/obs) because the
   emitters — Exec, Universal, Sensing, and the fault layer — are below
   the observability library in the dependency order; lib/obs builds the
   metrics aggregator, JSONL exporter and pretty-printer on top of this
   module.

   Sink discipline: there is one ambient sink (like a Logs reporter).
   Emitters guard every emission with [enabled ()] so that when no sink
   is installed no event value is ever allocated — the entire cost of
   the disabled tracing path is one load-and-branch per emission site. *)

type party = User | Server | World

let party_name = function User -> "user" | Server -> "server" | World -> "world"

type event =
  | Run_start of {
      goal : string;
      user : string;
      server : string;
      horizon : int;
      drain : int;
      world_choice : int;
    }
  | Round_start of { round : int }
  | Emit of { round : int; src : party; dst : party; msg : Msg.t }
  | Halt of { round : int }
  | Sense of {
      round : int;
      sensor : string;
      positive : bool;
      clock : int;
      patience : int;
    }
  | Switch of { round : int; from_index : int; to_index : int; attempt : int }
  | Resume of { index : int; slots : int }
  | Session of { round : int; index : int; budget : int }
  | Fault of { round : int; fault : string; detail : string }
  | Violation of { round : int }
  | Run_end of { rounds : int; halted : bool }
  | Supervise of { tick : int; session : int; action : string; detail : string }
  | Warm of {
      server_class : string;
      enum : string;
      index : int;
      accepted : bool;
      detail : string;
    }

type sink = event -> unit

(* The ambient sink, and the round the engine is currently executing
   (kept here so emitters that cannot see the round — the fault layer
   wraps a server, whose observations carry no round number — can still
   stamp their events).  Both are only touched when tracing is on.

   Both live in domain-local storage: each domain owns an independent
   sink and round, so parallel trials record into per-domain buffers
   with no synchronisation on the emission path, and a sink installed
   on one domain can never observe (or corrupt) another domain's run.
   Fresh domains start with no sink — pool workers inherit nothing and
   install their own recorder per task. *)

type dls = { mutable d_sink : sink option; mutable d_round : int }

let dls_key = Domain.DLS.new_key (fun () -> { d_sink = None; d_round = 0 })
let[@inline] state () = Domain.DLS.get dls_key

(* Pattern match, not [<> None]: the guard sits on every emission site
   in the engine's hot loop, and structural comparison is a C call. *)
let[@inline] enabled () =
  match (state ()).d_sink with None -> false | Some _ -> true

let current () = (state ()).d_sink

(* Installing a sink only affects the calling domain, so doing it from
   a domain that is *not* participating in an in-flight parallel batch
   is almost certainly a bug: the caller expects to observe the runs
   executing on the pool's domains, and will silently see nothing.
   Refuse loudly instead. *)
let guard_install = function
  | None -> ()
  | Some _ ->
      if Goalcom_par.Pool.active_batches () > 0
         && not (Goalcom_par.Pool.in_worker ())
      then
        invalid_arg
          "Trace sinks are domain-local: refusing to install an ambient \
           sink while a parallel batch runs in other domains (it would \
           observe nothing); install the sink from within the pool task, \
           or pass ?sink to the parallel entry point"

let set_sink s =
  guard_install s;
  (state ()).d_sink <- s

let emit ev = match (state ()).d_sink with None -> () | Some f -> f ev

let set_round r = (state ()).d_round <- r
let current_round () = (state ()).d_round

(* Hot-path handle: the per-domain state record itself.  [Domain.DLS.get]
   compiles to a lookup through the domain's local root — cheap, but not
   free, and the engine's step loop used to pay it up to nine times per
   round (the enabled guard, [set_round], and once inside [emit] for
   every message).  Fetching the record once per step and reading fields
   through it leaves exactly one DLS access per round.  A handle is safe
   to hold for as long as the holder stays on one domain: [set_sink] /
   [with_sink] mutate this same record in place, so a cached handle
   observes sink installs and removals immediately. *)

type handle = dls

let[@inline] handle () = state ()

let[@inline] handle_enabled h =
  match h.d_sink with None -> false | Some _ -> true

let[@inline] handle_emit h ev =
  match h.d_sink with None -> () | Some f -> f ev

let[@inline] handle_set_round h r = h.d_round <- r
let[@inline] handle_round h = h.d_round

let with_sink s f =
  guard_install (Some s);
  let st = state () in
  let prev = st.d_sink in
  let prev_round = st.d_round in
  st.d_sink <- Some s;
  Fun.protect
    ~finally:(fun () ->
      st.d_sink <- prev;
      st.d_round <- prev_round)
    f

let tee a b ev =
  a ev;
  b ev

let null _ = ()

(* Invariant checking over recorded traces.  An invariant inspects the
   whole event list and reports the first violation as a message. *)

type invariant = { inv_name : string; inv_check : event list -> string option }

let invariant ~name check = { inv_name = name; inv_check = check }
let invariant_name i = i.inv_name

let rounds_increase =
  invariant ~name:"round numbers strictly increase" (fun events ->
      let rec go prev = function
        | [] -> None
        | Round_start { round } :: rest ->
            if round > prev then go round rest
            else
              Some
                (Printf.sprintf "round %d started after round %d" round prev)
        | _ :: rest -> go prev rest
      in
      go 0 events)

let no_emission_after_drain =
  invariant ~name:"no party emits after the user halts (beyond drain)"
    (fun events ->
      let drain =
        List.find_map
          (function Run_start { drain; _ } -> Some drain | _ -> None)
          events
      in
      let halt =
        List.find_map
          (function Halt { round } -> Some round | _ -> None)
          events
      in
      match (halt, drain) with
      | None, _ -> None
      | Some h, drain ->
          let drain = Option.value drain ~default:0 in
          List.find_map
            (function
              | Emit { round; src; dst; _ } when round > h + drain ->
                  Some
                    (Printf.sprintf
                       "%s emitted to %s in round %d, after halt round %d + \
                        drain %d"
                       (party_name src) (party_name dst) round h drain)
              | _ -> None)
            events)

let switch_follows_negative =
  invariant ~name:"every switch is preceded by a negative sensing verdict"
    (fun events ->
      let rec go last_sense = function
        | [] -> None
        | Sense { positive; _ } :: rest -> go (Some positive) rest
        | Switch { round; to_index; _ } :: rest -> begin
            match last_sense with
            | Some false -> go last_sense rest
            | Some true ->
                Some
                  (Printf.sprintf
                     "switch to index %d at round %d follows a positive verdict"
                     to_index round)
            | None ->
                Some
                  (Printf.sprintf
                     "switch to index %d at round %d with no prior verdict"
                     to_index round)
          end
        | _ :: rest -> go last_sense rest
      in
      go None events)

let standard =
  [ rounds_increase; no_emission_after_drain; switch_follows_negative ]

(* A trace file may hold many runs back to back (a trial batch, or a
   checkpointed enumeration resumed by a fresh incarnation); each
   Run_start opens a new segment.  Events before the first Run_start —
   a truncated capture — form a leading segment of their own. *)
let split_runs events =
  let flush cur acc = match cur with [] -> acc | c -> List.rev c :: acc in
  let rec go cur acc = function
    | [] -> List.rev (flush cur acc)
    | (Run_start _ as ev) :: rest -> go [ ev ] (flush cur acc) rest
    | ev :: rest -> go (ev :: cur) acc rest
  in
  go [] [] events

let check invariants events =
  (* Round numbers restart at every Run_start, so invariants quantify
     over single runs: check each segment independently. *)
  let check_segment k segment =
    let rec go = function
      | [] -> Ok ()
      | inv :: rest -> begin
          match inv.inv_check segment with
          | None -> go rest
          | Some msg ->
              Error
                (if k = 0 then Printf.sprintf "%s: %s" inv.inv_name msg
                 else Printf.sprintf "%s: run %d: %s" inv.inv_name (k + 1) msg)
        end
    in
    go invariants
  in
  let rec over k = function
    | [] -> Ok ()
    | segment :: rest -> begin
        match check_segment k segment with
        | Ok () -> over (k + 1) rest
        | Error _ as e -> e
      end
  in
  over 0 (split_runs events)
