(** The printing goal — the paper's motivating example.

    "The problem of using a printer to produce a document — which cannot
    be cast as a problem of delegating computation in any reasonable
    sense — is captured naturally by the simple model introduced in the
    current work."

    The {b world} holds a document the user wants printed and observes
    the printer's page; the goal is achieved (finite goal) if the page
    {e ever} equals the document — printing is monotone: a produced page
    cannot be unprinted, even if later (wrong-dialect) commands deface
    the printer's buffer.  The {b server} is the printer: it understands
    PRINT/CLEAR commands, but only in {e its own dialect} — an unknown
    relabelling of the command alphabet — so a user that assumes the
    wrong dialect garbles the page.  The world broadcasts (document,
    page) to the user each round, which yields trivially safe and viable
    sensing: compare the two.

    Canonical command alphabet: [print_cmd = 0], [clear_cmd = 1], and
    [alphabet - 2] inert padding symbols, so that rotation dialects give
    an arbitrarily large server class. *)

open Goalcom
open Goalcom_automata

val print_cmd : int
val clear_cmd : int

val min_alphabet : int
(** 3: PRINT, CLEAR, and at least one pad. *)

val printer : alphabet:int -> Strategy.server
(** The canonical-dialect printer.  Appends on
    [Pair (Sym print_cmd, Int c)], wipes the page on [Sym clear_cmd],
    ignores anything else; sends its page to the world every round.
    @raise Invalid_argument if [alphabet < min_alphabet]. *)

val server : alphabet:int -> Dialect.t -> Strategy.server
(** {!printer} behind a dialect. *)

val server_class : alphabet:int -> Dialect.t Enum.t -> Strategy.server Enum.t

val world_of_doc : int list -> World.t
(** A world whose document is fixed; its state view is
    [Pair (doc, page)].  @raise Invalid_argument on an empty document
    or characters outside [0..255]. *)

val goal : ?docs:int list list -> alphabet:int -> unit -> Goal.t
(** The printing goal.  [docs] (default three sample documents) are the
    world's non-deterministic choices.  [alphabet] is recorded in the
    goal name only; it does not constrain the world. *)

val informed_user : alphabet:int -> Dialect.t -> Strategy.user
(** The user that knows the printer's dialect: clears the page if it is
    dirty, prints the document one character per round, re-clears and
    retries if verification fails, and halts when the page matches. *)

val user_class : alphabet:int -> Dialect.t Enum.t -> Strategy.user Enum.t
(** One informed user per candidate dialect — the class enumerated by
    the universal strategies. *)

val sensing : Sensing.t
(** Positive iff some world broadcast so far showed page = document.
    Monotone, hence safe by construction; viable for the dialect server
    class via the informed users. *)

val universal_user :
  ?schedule:Levin.slot Seq.t ->
  ?checkpoint:Universal.checkpoint ->
  ?stats:Universal.stats ->
  alphabet:int ->
  Dialect.t Enum.t ->
  Strategy.user
(** {!Universal.finite} over {!user_class} with {!sensing}.  Pass a
    [checkpoint] to resume the enumeration across re-instantiations
    (crash tolerance). *)
