(** A fixed-size domain pool with work-stealing scheduling.

    This is the substrate of every parallel entry point in the library
    ([Trial.run_par], [Experiment.run_par]/[Sweep], and the multicore
    Levin racer [Universal.finite_par]).  It is deliberately generic —
    the module knows nothing about goals, trials or traces — so it sits
    at the very bottom of the dependency order and both [lib/core] and
    [lib/harness] can build on it.

    {b Model.}  A pool owns [jobs - 1] worker domains plus the
    submitting domain, which participates in every batch.  {!run} takes
    an array of independent tasks, splits it into contiguous chunks
    (chunked submission: one scheduling event covers many tasks),
    deals the chunks round-robin into per-participant deques, and lets
    every participant pop from its own deque bottom while idle
    participants steal from the {e other} end of a victim's deque —
    classic work-stealing, so skewed task costs balance out.

    {b Determinism.}  Results are delivered as an array indexed by task
    position; completion order never leaks into the caller.  Combined
    with pre-split RNGs per task, every parallel entry point built on
    this pool is bit-identical for every [jobs] count.

    {b Exceptions.}  The first task to raise wins: its exception is
    recorded, the remaining unstarted tasks of the batch are skipped,
    and {!run} re-raises it (with the original backtrace) in the
    submitting domain.  The pool itself stays usable — a batch failure
    never poisons the workers.

    {b [jobs = 1].}  A width-1 pool spawns no domains at all: {!run}
    executes the tasks in index order on the calling domain — the exact
    sequential path, not a simulation of it.

    {b Small batches.}  Waking the pool costs more than a
    sub-millisecond batch is worth, so {!run} first executes a prefix
    of the batch on the submitting domain, timing it; while the
    measured average predicts the whole batch completes within a
    cutoff (4 ms by default, [GOALCOM_PAR_SEQ_CUTOFF_US] overrides;
    [0] disables the probe) the batch never leaves the caller, and
    otherwise the remainder is dealt to the workers in chunks sized to
    amortize their scheduling cost.  Either way results are identical:
    the prefix runs in index order with batch accounting already live,
    so sink-install rules and determinism are unchanged.

    {b Width selection.}  [GOALCOM_JOBS] (environment) and [--jobs]
    (CLI, via {!set_default_jobs}) control the default width; the
    default of defaults is 1, so parallelism is always opt-in. *)

type t

val create : jobs:int -> t
(** A pool of width [jobs].  The [jobs - 1] worker domains are spawned
    lazily, by the first batch that overruns the sequential fallback —
    a pool whose batches all stay small never spawns a domain.
    @raise Invalid_argument if [jobs <= 0]. *)

val jobs : t -> int
(** The pool's width (worker domains + the submitting domain). *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Running {!run}
    after shutdown raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], apply, [shutdown] — exceptions included. *)

val run : t -> (unit -> 'a) array -> 'a array
(** Execute every task and return their results in task order.  Tasks
    must be independent; they run concurrently on up to [jobs] domains
    (all of them including the caller's).  Re-raises the first task
    exception after the batch has drained.  Not reentrant from within
    a task of the {e same} pool (create a nested pool instead); a
    fresh nested pool inside a task is fine. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array p f xs] is {!run} over [fun () -> f xs.(i)]. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map_array}; order preserved. *)

val default_jobs : unit -> int
(** The ambient width used when an entry point is given no explicit
    [?jobs]/[?pool]: the last {!set_default_jobs} value, else
    [GOALCOM_JOBS] from the environment, else 1. *)

val set_default_jobs : int -> unit
(** Set the ambient width (the CLI's [--jobs] lands here).
    @raise Invalid_argument if [jobs <= 0]. *)

val hardware_jobs : unit -> int
(** How many domains this host can usefully run: [GOALCOM_HW_JOBS]
    from the environment (re-read per call — tests override it), else
    [Domain.recommended_domain_count ()].  Callers that spawn one
    long-lived task per domain (the session engine's sharded quantum)
    clamp their width to this — oversubscribing domains on a small
    host turns the minor-GC stop-the-world sync into pure overhead.
    @raise Invalid_argument on a malformed [GOALCOM_HW_JOBS]. *)

val active_batches : unit -> int
(** Number of multi-domain batches currently executing, across all
    pools.  Used by [Trace] to reject cross-domain sink installation
    while parallel work is in flight. *)

val in_worker : unit -> bool
(** Whether the calling domain is currently a batch participant — a
    pool worker domain, or the submitting domain while it drains a
    {!run}.  Participant tasks may freely install domain-local trace
    sinks; foreign domains must not install sinks mid-batch (see
    [Trace.set_sink]). *)
