open Goalcom_automata
open Goalcom

let check_input (t : Table.t) i =
  if i < 0 || i >= t.Table.inputs then
    invalid_arg
      (Printf.sprintf "Compiled: reader produced %d, input alphabet is %d" i
         t.Table.inputs)
  else i

let generic_of_table ~name ~read ~write (t : Table.t) =
  Strategy.make ~name
    ~init:(fun () -> 0)
    ~step:(fun _rng state obs ->
      let input = check_input t (read obs) in
      (* [state] is table-produced (or the initial 0, valid for any
         machine), [input] just validated: the unsafe step is safe. *)
      let state', output = Table.step_unsafe t state input in
      (state', write output))

let user_of_table ?(name = "ctable-user") ~read ~write t =
  generic_of_table ~name ~read ~write t

let user_of_mealy ?name ~read ~write m =
  user_of_table ?name ~read ~write (Table.of_mealy m)

let server_of_table ?(name = "ctable-server") ~read ~write t =
  generic_of_table ~name ~read ~write t

let user_class ?name ~read ~write machines =
  let name =
    match name with
    | Some n -> n
    | None -> "ctable-users(" ^ Enum.name machines ^ ")"
  in
  Enum.make ~name
    ?card:(Enum.cardinality machines)
    (fun i ->
      Option.map
        (fun m ->
          user_of_table
            ~name:(Printf.sprintf "ctable-user#%d" i)
            ~read ~write (Table.of_mealy m))
        (Enum.get machines i))

let default_cache_capacity = 512

let cache_capacity () =
  match Sys.getenv_opt "GOALCOM_COMPILE_CACHE" with
  | None -> default_cache_capacity
  | Some s -> begin
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> n
      | _ -> invalid_arg "GOALCOM_COMPILE_CACHE wants a non-negative integer"
    end

let cached_user_class ?capacity ?name ~read ~write machines =
  let capacity =
    match capacity with Some c -> c | None -> cache_capacity ()
  in
  Enum.cached ~capacity (user_class ?name ~read ~write machines)
