open Goalcom
open Goalcom_goals

let goal ~payload_alphabet doc =
  let scenario = Forward.scenario ~payload_alphabet doc in
  Goal.make
    ~name:(Printf.sprintf "net-mac(%d syms)" (List.length doc))
    ~worlds:[ Forward.world_of_scenario scenario ]
    ~referee:Forward.referee

(* A station never needs to frame ahead: the broadcast names the next
   missing symbol, the medium cannot corrupt or duplicate, and a lost
   (collided) frame just leaves the broadcast where it was — so the
   policy retransmits at its next scheduled round. *)
let policy ~period ~offset =
  if period < 1 || offset < 0 || offset >= period then
    invalid_arg "Mac.policy: need 0 <= offset < period";
  Strategy.stateless
    ~name:(Printf.sprintf "mac-policy(%d/%d)" offset period)
    (fun (obs : Io.User.obs) ->
      match Codec.pair_of_ints_opt obs.from_world with
      | None -> Io.User.silent
      | Some (doc, received) ->
          if received = doc then Io.User.halt_act
          else if obs.round mod period = offset then
            let k = List.length received in
            match List.nth_opt doc k with
            | Some sym ->
                Io.User.say_server (Msg.Pair (Msg.Int k, Msg.Int sym))
            | None -> Io.User.silent
          else Io.User.silent)

let policy_class ?(shift = 0) ~max_period () =
  if max_period < 1 then invalid_arg "Mac.policy_class: empty class";
  let all =
    List.concat_map
      (fun p -> List.init p (fun o -> (p, o)))
      (List.init max_period (fun i -> i + 1))
  in
  let n = List.length all in
  let shift = ((shift mod n) + n) mod n in
  Goalcom_automata.Enum.tabulate
    ~name:(Printf.sprintf "mac-policies(max_period=%d,shift=%d)" max_period shift)
    n
    (fun i ->
      let p, o = List.nth all ((i + shift) mod n) in
      policy ~period:p ~offset:o)

let sensing = Forward.sensing

let universal_user ?schedule ?checkpoint ?stats ?shift ~max_period () =
  Universal.finite ?schedule ?checkpoint ?stats
    ~enum:(policy_class ?shift ~max_period ())
    ~sensing ()
