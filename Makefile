# Tier-1 verification in one command: `make check`.

.PHONY: all build test check ci bench bench-par bench-sense bench-session bench-sched bench-compile bench-trace bench-net bench-check clean

all: build

build:
	dune build

test:
	dune runtest

# Everything the CI gate requires, in order.  `test` includes the
# parallel determinism suite (test_par: qcheck run_par = run equality,
# racer winner agreement, pool internals).
check: build test

# Mirror of .github/workflows/ci.yml: build, test, trace smoke +
# analytics, parallel smoke, chaos smoke, live-stats smoke, golden
# drift, bench gate.  Run before pushing.
ci: check
	dune exec bin/main.exe -- run e17 --jobs 2
	GOALCOM_E19_TRIALS=10 dune exec bin/main.exe -- run e19 --jobs 2
	dune exec bin/main.exe -- serve --sessions 24 --mix net --jobs 2
	dune exec bin/main.exe -- serve --sessions 2000 --jobs 1 --arrivals poisson:2.5 --class-weights "printing=3,maze-corridor=1" | grep '^digest' > /tmp/sched-1.digest
	dune exec bin/main.exe -- serve --sessions 2000 --jobs 2 --arrivals poisson:2.5 --class-weights "printing=3,maze-corridor=1" | grep '^digest' > /tmp/sched-2.digest
	cmp /tmp/sched-1.digest /tmp/sched-2.digest
	dune exec bin/main.exe -- chaos run --sessions 120 --jobs 2 --repeat 2 --check
	GOALCOM_E18_SESSIONS=60 dune exec bin/main.exe -- run e18 --jobs 2
	dune exec bin/main.exe -- warm record --sessions 18 --out /tmp/warm.jsonl
	dune exec bin/main.exe -- warm show /tmp/warm.jsonl
	dune exec bin/main.exe -- serve --sessions 36 --jobs 2 --warm /tmp/warm.jsonl
	dune exec bin/main.exe -- serve --sessions 60 --stats -
	dune exec bin/main.exe -- top --once --sessions 40
	dune exec bin/main.exe -- run e1 --trace /tmp/e1.jsonl
	test -s /tmp/e1.jsonl
	head -1 /tmp/e1.jsonl | grep -q '^{"ev":"'
	dune exec bin/main.exe -- trace stats /tmp/e1.jsonl
	dune exec bin/main.exe -- trace attribution /tmp/e1.jsonl
	dune exec bin/main.exe -- trace diff /tmp/e1.jsonl /tmp/e1.jsonl
	dune exec bin/main.exe -- trace-golden test/golden
	git diff --exit-code test/golden
	BENCH_CHECK_ROUNDS=5 BENCH_CHECK_BUDGET=0.01 dune exec --profile release bench/main.exe -- --check

# Regenerates every experiment table, runs the bechamel kernels, and
# rewrites the BENCH_*.json baselines (fault-layer timings, tracing
# overhead, parallel scaling) that `bench-check` gates against.
#
# All bench targets build with --profile release: the dev profile
# compiles with -opaque, which disables cross-module inlining and
# roughly doubles the per-event tracing cost being measured.  The
# committed BENCH_*.json baselines are release-profile numbers; the
# gate re-measures in the same profile.
bench:
	dune exec --profile release bench/main.exe

# Rewrites just BENCH_par.json: the E17 workloads at jobs 1/2/4, with
# the determinism digests re-checked.
bench-par:
	BENCH_ONLY=par dune exec --profile release bench/main.exe

# Rewrites just BENCH_sense.json: the incremental judge/sensing kernels
# at horizons 1k/4k/16k, including the legacy-prefix quadratic baseline
# the >= 10x speedup gate compares against.
bench-sense:
	BENCH_ONLY=sense dune exec --profile release bench/main.exe

# Rewrites just BENCH_session.json: the supervised session engine over
# the storm and overload conditions at jobs 1/4, with the cross-jobs
# determinism digests re-checked.  BENCH_SESSION_SESSIONS scales the
# population (default 10000) — only commit a default-scale file, since
# the gate re-runs at the same scale and pins the counts exactly.
bench-session:
	BENCH_ONLY=session dune exec --profile release bench/main.exe

# Scheduling smoke: the fair-share engine under Poisson arrivals with
# weighted admission classes must report bit-identical outcome digests
# at jobs 1, 2 and 4 — domain-sharded quanta are an implementation
# detail, never an observable — then the bench gate re-checks the
# storm speedup ceiling and the allocation-per-round figure against
# the committed BENCH_session.json.
bench-sched:
	set -e; \
	for j in 1 2 4; do \
	  dune exec --profile release bin/main.exe -- serve --sessions 2000 \
	    --jobs $$j --arrivals poisson:2.5 \
	    --class-weights "printing=3,maze-corridor=1" \
	    | grep '^digest' > /tmp/sched-$$j.digest; \
	done; \
	cmp /tmp/sched-1.digest /tmp/sched-2.digest; \
	cmp /tmp/sched-1.digest /tmp/sched-4.digest; \
	echo "bench-sched: jobs 1/2/4 $$(cat /tmp/sched-1.digest) identical"
	BENCH_CHECK_ROUNDS=5 BENCH_CHECK_BUDGET=0.01 dune exec --profile release bench/main.exe -- --check

# Rewrites just BENCH_compile.json: the flat-table strategy walk vs the
# interpreted Mealy walk over a 512-slot Levin prefix, with the
# decode+compile LRU hit rate — the >= 3x speedup and <= 10% miss
# gates compare against it.
bench-compile:
	BENCH_ONLY=compile dune exec --profile release bench/main.exe

# Rewrites just BENCH_trace.json: the tracing-overhead table on the
# compact control kernel (no sink / null / metrics / binary ring /
# jsonl), whose ring and null rows the gate pins against hard
# absolute thresholds.
bench-trace:
	BENCH_ONLY=trace dune exec --profile release bench/main.exe

# Rewrites just BENCH_net.json: the network goal family — topology
# delivery rounds, ARQ forwarding failure counts under fault stacks,
# and the shared-medium contention populations at 2/4/8 users with
# the cross-jobs determinism digests re-checked.  Every count is
# deterministic and gated at zero tolerance; only wall clocks are
# loose.
bench-net:
	BENCH_ONLY=net dune exec --profile release bench/main.exe

# The perf-regression gate: quick re-measure, compare against the
# committed BENCH_trace.json + BENCH_par.json + BENCH_sense.json +
# BENCH_session.json + BENCH_compile.json + BENCH_net.json, write
# BENCH_check.json, exit 1 on any regression.
bench-check:
	dune exec --profile release bench/main.exe -- --check

clean:
	dune clean
