(** The reference runs behind the golden-trace regression suite.

    Each case replays a fixed, fully deterministic execution (fixed
    seed, fixed config, no wall-clock in the events) and returns its
    recorded trace.  [test/test_trace_golden.ml] diffs these against
    the committed [test/golden/<name>.jsonl]; the CLI subcommand
    [goalcom trace-golden DIR] regenerates the files from the same
    constructors, so the generator and the test cannot drift apart. *)

open Goalcom

type case = {
  name : string;  (** golden file is [<name>.jsonl] *)
  events : unit -> Trace.event list;
}

val e1_printing : case
(** Universal printing user vs a rotated-dialect printer (E1 flavour):
    Levin sessions scan the dialect class until the document prints. *)

val e3_maze : case
(** Levin universal user on the maze goal (E3 flavour), two
    checkpoint-linked incarnations in one file: the first run's horizon
    expires mid-enumeration, the second opens with a [Resume] event and
    completes. *)

val e16_crash : case
(** The same construction vs a crash-restarting printer (E16 flavour):
    [Fault] events interleave with the enumeration recovering from lost
    server state. *)

val e18_chaos : case
(** A supervised chaos run (E18 flavour): two sessions through a
    one-slot, zero-queue engine — session 0 is killed at tick 2,
    resumes from its checkpoint and completes; session 1 is shed on
    arrival.  Pins [Supervise] events and the engine's merged-trace
    replay order alongside the run events. *)

val all : case list

val rollup_stats : unit -> string
(** The clock-less {!Goalcom_obs.Rollup} snapshot of the {!e18_chaos}
    supervise stream, as one JSON line — deterministic, so
    [goalcom trace-golden] freezes it as [stats_e18_chaos.json] and the
    telemetry suite diffs a recomputation against the committed file. *)
