type t =
  | Silence
  | Sym of int
  | Int of int
  | Text of string
  | Pair of t * t
  | Seq of t list

let equal = ( = )
let compare = Stdlib.compare
let is_silence m = m = Silence

let rec pp ppf = function
  | Silence -> Format.pp_print_string ppf "_"
  | Sym s -> Format.fprintf ppf "#%d" s
  | Int n -> Format.fprintf ppf "%d" n
  | Text s -> Format.fprintf ppf "%S" s
  | Pair (a, b) -> Format.fprintf ppf "(%a,%a)" pp a pp b
  | Seq ms ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
           pp)
        ms

let to_string m = Format.asprintf "%a" pp m
let sym_opt = function Sym s -> Some s | _ -> None
let int_opt = function Int n -> Some n | _ -> None
let text_opt = function Text s -> Some s | _ -> None

let seq_of_string s =
  Seq (List.map (fun c -> Int (Char.code c)) (List.init (String.length s) (String.get s)))

let string_of_seq = function
  | Seq ms ->
      let rec go acc = function
        | [] -> Some (String.concat "" (List.rev acc))
        | Int c :: rest when c >= 0 && c < 256 ->
            go (String.make 1 (Char.chr c) :: acc) rest
        | _ -> None
      in
      go [] ms
  | _ -> None
