open Goalcom
open Goalcom_prelude

type result = {
  successes : int;
  trials : int;
  success_rate : float;
  rounds_to_success : float list;
  mean_rounds : float;
  unsafe_halts : int;
  metrics : Goalcom_obs.Metrics.summary option;
}

(* Structural compare rather than (=): mean_rounds is nan when no trial
   succeeded, and nan <> nan while compare nan nan = 0. *)
let equal a b = compare a b = 0

let rounds_of_success (goal : Goal.t) (outcome : Outcome.t) =
  if Goal.is_finite goal then
    match outcome.Outcome.halt_round with
    | Some r -> float_of_int r
    | None -> float_of_int outcome.Outcome.rounds
  else begin
    (* Compact: the run "succeeds from" the round after its last
       violation; 0 violations means it was good from the start. *)
    match outcome.Outcome.last_violation with
    | Some r -> float_of_int r
    | None -> 0.
  end

(* Uniform argument validation for both runners: every rejection names
   the entry point, the parameter and the offending value. *)
let validate ~fn ?jobs ~trials () =
  let reject what v =
    invalid_arg
      (Printf.sprintf "Trial.%s: %s must be positive (got %d)" fn what v)
  in
  if trials <= 0 then reject "trials" trials;
  match jobs with Some j when j <= 0 -> reject "jobs" j | _ -> ()

(* The per-trial configuration both runners must agree on: trial [i]
   exercises world choice [i mod num_worlds]. *)
let trial_config config goal i =
  let base = match config with Some c -> c | None -> Exec.config () in
  Exec.{ base with world_choice = i mod Goal.num_worlds goal }

(* Shared aggregation fold — run and run_par produce bit-identical
   results because both feed outcomes to this accumulator in trial
   order. *)
type acc = {
  mutable acc_successes : int;
  mutable acc_unsafe : int;
  mutable acc_rounds : float list; (* reversed *)
}

let acc_create () = { acc_successes = 0; acc_unsafe = 0; acc_rounds = [] }

let acc_add goal acc (outcome : Outcome.t) =
  if outcome.Outcome.achieved then begin
    acc.acc_successes <- acc.acc_successes + 1;
    acc.acc_rounds <- rounds_of_success goal outcome :: acc.acc_rounds
  end
  else if outcome.Outcome.halted then acc.acc_unsafe <- acc.acc_unsafe + 1

let acc_result ~trials acc =
  let rounds_to_success = List.rev acc.acc_rounds in
  {
    successes = acc.acc_successes;
    trials;
    success_rate = float_of_int acc.acc_successes /. float_of_int trials;
    rounds_to_success;
    mean_rounds =
      (if rounds_to_success = [] then Float.nan
       else Stats.mean rounds_to_success);
    unsafe_halts = acc.acc_unsafe;
    metrics = None;
  }

let run ?config ?tail_window ?sink ?(collect_metrics = false) ?clock ~trials
    ~seed ~goal ~user ~server () =
  validate ~fn:"run" ~trials ();
  let meter =
    if collect_metrics then Some (Goalcom_obs.Metrics.create ?clock ())
    else None
  in
  (* The caller's sink and the metrics sink share one ambient
     installation covering every trial, so a single JSONL file (or
     counter set) spans the whole experiment. *)
  let sink =
    match (sink, meter) with
    | s, None -> s
    | None, Some m -> Some (Goalcom_obs.Metrics.sink m)
    | Some s, Some m -> Some (Trace.tee s (Goalcom_obs.Metrics.sink m))
  in
  let body () =
    let master = Rng.make seed in
    let acc = acc_create () in
    for i = 0 to trials - 1 do
      let trial_rng = Rng.split master in
      let config = trial_config config goal i in
      let outcome, _ =
        Exec.run_outcome ~config ?tail_window ~goal ~user ~server trial_rng
      in
      acc_add goal acc outcome
    done;
    acc_result ~trials acc
  in
  let result =
    match sink with None -> body () | Some s -> Trace.with_sink s body
  in
  { result with metrics = Option.map Goalcom_obs.Metrics.summary meter }

let run_par ?config ?tail_window ?sink ?(collect_metrics = false) ?clock ?jobs
    ?pool ~trials ~seed ~goal ~user ~server () =
  validate ~fn:"run_par" ?jobs ~trials ();
  (* Sequential [run] lets trials emit to whatever ambient sink the
     caller has installed; pool domains inherit no sink, so lift the
     caller's ambient into an explicit one to keep the semantics. *)
  let sink = match sink with Some _ -> sink | None -> Trace.current () in
  (* Determinism: derive every trial generator from the master *before*
     distributing work, in trial order — the exact split sequence the
     sequential runner consumes (explicit loop: evaluation order of
     Array.init is unspecified). *)
  let master = Rng.make seed in
  let rngs = Array.make trials master in
  for i = 0 to trials - 1 do
    rngs.(i) <- Rng.split master
  done;
  let want_events = Option.is_some sink in
  let task i () =
    let config = trial_config config goal i in
    let recorder =
      if want_events then Some (Goalcom_obs.Recorder.create ()) else None
    in
    (* Per-trial meter with the real clock: timing must be measured on
       the executing domain, not under post-hoc replay. *)
    let meter =
      if collect_metrics then Some (Goalcom_obs.Metrics.create ?clock ())
      else None
    in
    let trial_sink =
      match (recorder, meter) with
      | None, None -> None
      | Some r, None -> Some (Goalcom_obs.Recorder.sink r)
      | None, Some m -> Some (Goalcom_obs.Metrics.sink m)
      | Some r, Some m ->
          Some
            (Trace.tee (Goalcom_obs.Recorder.sink r)
               (Goalcom_obs.Metrics.sink m))
    in
    let body () =
      Exec.run_outcome ~config ?tail_window ~goal ~user ~server rngs.(i)
    in
    let outcome, _ =
      match trial_sink with None -> body () | Some s -> Trace.with_sink s body
    in
    (outcome, Option.map Goalcom_obs.Recorder.events recorder, meter)
  in
  let tasks = Array.make trials (task 0) in
  for i = 0 to trials - 1 do
    tasks.(i) <- task i
  done;
  let per_trial =
    match pool with
    | Some p -> Goalcom_par.Pool.run p tasks
    | None ->
        let jobs =
          match jobs with
          | Some j -> j
          | None -> Goalcom_par.Pool.default_jobs ()
        in
        Goalcom_par.Pool.with_pool ~jobs (fun p -> Goalcom_par.Pool.run p tasks)
  in
  (* Merge in trial order: replayed events reach the caller's sink in
     the exact sequence the sequential runner would have emitted, and
     the per-trial meters collapse into one summary (clockless merging
     is equality with sequential observation; counters are additive). *)
  let master_meter =
    if collect_metrics then Some (Goalcom_obs.Metrics.create ()) else None
  in
  let acc = acc_create () in
  Array.iter
    (fun (outcome, events, meter) ->
      (match (sink, events) with
      | Some s, Some evs -> List.iter s evs
      | _ -> ());
      (match (master_meter, meter) with
      | Some dst, Some src -> Goalcom_obs.Metrics.merge ~into:dst src
      | _ -> ());
      acc_add goal acc outcome)
    per_trial;
  let result = acc_result ~trials acc in
  {
    result with
    metrics = Option.map Goalcom_obs.Metrics.summary master_meter;
  }

let success_rate ?config ?tail_window ~trials ~seed ~goal ~user ~server () =
  (run ?config ?tail_window ~trials ~seed ~goal ~user ~server ()).success_rate

let pp ppf r =
  Format.fprintf ppf "%d/%d succeeded (%.0f%%), mean rounds %.1f" r.successes
    r.trials (100. *. r.success_rate) r.mean_rounds
