open Goalcom
open Goalcom_automata

let rec map_syms f (m : Msg.t) : Msg.t =
  match m with
  | Msg.Silence | Msg.Int _ | Msg.Text _ -> m
  | Msg.Sym s -> Msg.Sym (f s)
  | Msg.Pair (a, b) -> Msg.Pair (map_syms f a, map_syms f b)
  | Msg.Seq ms -> Msg.Seq (List.map (map_syms f) ms)

let in_range d s = s >= 0 && s < Dialect.size d

let encode d m =
  map_syms (fun s -> if in_range d s then Dialect.apply d s else s) m

let decode d m =
  map_syms (fun s -> if in_range d s then Dialect.unapply d s else s) m
