open Goalcom_automata

type flag = No_session_yet | Pass | Fail

let flag_to_string = function
  | No_session_yet -> "none"
  | Pass -> "pass"
  | Fail -> "fail"

let flag_of_string = function
  | "none" -> Some No_session_yet
  | "pass" -> Some Pass
  | "fail" -> Some Fail
  | _ -> None

let header completed flag = Msg.Pair (Msg.Int completed, Msg.Text (flag_to_string flag))

let header_of_msg = function
  | Msg.Pair (Msg.Pair (Msg.Int completed, Msg.Text s), inner) -> begin
      match flag_of_string s with
      | Some flag -> Some (completed, flag, inner)
      | None -> None
    end
  | _ -> None

type state = {
  inner : World.Instance.t;
  round_in_session : int;
  completed : int;
  last : flag;
  session_views_rev : Msg.t list;  (* inner views of the running session *)
}

let wrap_world ~session_length ~decide base =
  World.make
    ~name:(World.name base ^ "/multi-session")
    ~init:(fun () ->
      let inner = World.Instance.create base in
      {
        inner;
        round_in_session = 0;
        completed = 0;
        last = No_session_yet;
        session_views_rev = [ World.Instance.view inner ];
      })
    ~step:(fun rng st (obs : Io.World.obs) ->
      let inner_act = World.Instance.step rng st.inner obs in
      let inner_view = World.Instance.view st.inner in
      let st =
        {
          st with
          round_in_session = st.round_in_session + 1;
          session_views_rev = inner_view :: st.session_views_rev;
        }
      in
      let st =
        if st.round_in_session < session_length then st
        else begin
          (* Session boundary: judge it and restart the inner world. *)
          let passed = decide (List.rev st.session_views_rev) in
          let inner = World.Instance.create base in
          {
            inner;
            round_in_session = 0;
            completed = st.completed + 1;
            last = (if passed then Pass else Fail);
            session_views_rev = [ World.Instance.view inner ];
          }
        end
      in
      let act =
        {
          Io.World.to_user =
            Msg.Pair (header st.completed st.last, inner_act.Io.World.to_user);
          to_server = inner_act.Io.World.to_server;
        }
      in
      (st, act))
    ~view:(fun st ->
      Msg.Pair (header st.completed st.last, World.Instance.view st.inner))

(* Acceptability of a prefix depends only on its latest world view, so
   the incremental form is stateless. *)
let referee =
  let judge v =
    match v with
    | Msg.Pair (Msg.Pair (_, Msg.Text "fail"), _) -> `Violation
    | _ -> `Ok
  in
  Referee.compact_incremental "all-but-finitely-many-sessions-pass"
    ~init:(fun _v0 -> ((), `Ok))
    ~step:(fun () v -> ((), judge v))

let goal ~session_length (g : Goal.t) =
  if session_length <= 0 then
    invalid_arg "Multi_session.goal: session_length must be positive";
  if not (Referee.is_finite g.Goal.referee) then
    invalid_arg "Multi_session.goal: inner goal must be finite";
  let decide = Referee.decider g.Goal.referee in
  Goal.make
    ~name:(Goal.name g ^ "/multi-session")
    ~worlds:(List.map (wrap_world ~session_length ~decide) g.Goal.worlds)
    ~referee

let wrap_user inner =
  let module I = Strategy.Instance in
  Strategy.make
    ~name:("multi-session(" ^ Strategy.name inner ^ ")")
    ~init:(fun () -> (I.create inner, 0))
    ~step:(fun rng (inst, seen_completed) (obs : Io.User.obs) ->
      let seen_completed, inner_from_world =
        match header_of_msg obs.Io.User.from_world with
        | Some (completed, _, payload) ->
            if completed <> seen_completed then I.restart inst;
            (completed, payload)
        | None -> (seen_completed, obs.Io.User.from_world)
      in
      let act =
        I.step rng inst { obs with Io.User.from_world = inner_from_world }
      in
      ((inst, seen_completed), { act with Io.User.halt = false }))

let wrap_class cls =
  Enum.map ~name:("multi-session(" ^ Enum.name cls ^ ")") wrap_user cls

(* Negative only on the first round a session failure becomes visible:
   the previous event carries a different completed-session count.  The
   incremental state is just the previous event's world message. *)
let sensing =
  Sensing.incremental ~name:"session-just-failed"
    ~init:(fun () -> (None, Sensing.Positive))
    ~step:(fun prev (e : View.event) ->
      let v =
        match header_of_msg e.View.from_world with
        | Some (c1, Fail, _) -> begin
            match prev with
            | Some prev_msg -> begin
                match header_of_msg prev_msg with
                | Some (c2, _, _) when c2 = c1 -> Sensing.Positive
                | _ -> Sensing.Negative
              end
            | None -> Sensing.Negative
          end
        | _ -> Sensing.Positive
      in
      (Some e.View.from_world, v))

let session_results history =
  (* Scan world views for completed-count transitions and record the
     flag that each transition publishes. *)
  let _, results =
    List.fold_left
      (fun (seen, acc) view ->
        match view with
        | Msg.Pair (Msg.Pair (Msg.Int completed, Msg.Text s), _) -> begin
            match flag_of_string s with
            | Some flag when completed > seen && flag <> No_session_yet ->
                (completed, (flag = Pass) :: acc)
            | _ -> (seen, acc)
          end
        | _ -> (seen, acc))
      (0, [])
      (History.world_views history)
  in
  List.rev results
