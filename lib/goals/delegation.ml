open Goalcom
open Goalcom_automata
open Goalcom_sat
open Goalcom_servers

let ask_cmd = 0
let answer_cmd = 1
let min_alphabet = 3

let check_alphabet alphabet =
  if alphabet < min_alphabet then
    invalid_arg "Delegation: alphabet must have at least 3 symbols"

type params = { num_vars : int; num_clauses : int; clause_len : int }

let default_params = { num_vars = 8; num_clauses = 20; clause_len = 3 }

let assignment_msg (a : Cnf.assignment) =
  Codec.assignment (List.tl (Array.to_list a))

let solver_with ~name ~alphabet tweak =
  check_alphabet alphabet;
  Strategy.stateless ~name (fun (obs : Io.Server.obs) ->
      match obs.from_user with
      | Msg.Pair (Msg.Sym c, cnf_msg) when c = ask_cmd -> begin
          match Codec.cnf_opt cnf_msg with
          | None -> Io.Server.silent
          | Some cnf -> begin
              match Dpll.solve cnf with
              | Some a ->
                  Io.Server.say_user
                    (Msg.Pair (Msg.Sym answer_cmd, assignment_msg (tweak cnf a)))
              | None ->
                  Io.Server.say_user
                    (Msg.Pair (Msg.Sym answer_cmd, Msg.Text "unsat"))
            end
        end
      | _ -> Io.Server.silent)

let solver ~alphabet = solver_with ~name:"dpll-solver" ~alphabet (fun _ a -> a)

(* The liar corrupts the correct assignment so that it provably fails
   the formula: it flips the first variable whose flip falsifies some
   clause, falling back to the pointwise complement.  (A careless liar
   that flips a fixed variable sometimes tells an accidental truth —
   an assignment that still satisfies — which is a valid answer, not a
   lie.) *)
let break_assignment cnf (a : Cnf.assignment) =
  let falsifies candidate = not (Cnf.eval cnf candidate) in
  let flipped v =
    let b = Array.copy a in
    b.(v) <- not b.(v);
    b
  in
  let rec try_vars v =
    if v >= Array.length a then begin
      let complement = Array.mapi (fun i x -> i > 0 && not x) a in
      if falsifies complement then complement else a
    end
    else begin
      let b = flipped v in
      if falsifies b then b else try_vars (v + 1)
    end
  in
  try_vars 1

let liar ~alphabet = solver_with ~name:"lying-solver" ~alphabet break_assignment

let server ~alphabet d = Transform.with_dialect d (solver ~alphabet)

let server_class ~alphabet dialects =
  Transform.dialect_class ~base:(solver ~alphabet) dialects

type world_state =
  | Fresh
  | Task of { cnf : Cnf.t; solved : bool }

let status_view = function
  | Fresh -> Msg.Text "init"
  | Task { cnf; solved } ->
      Msg.Pair (Msg.Text (if solved then "solved" else "pending"), Codec.cnf cnf)

let world ?(params = default_params) () =
  if params.num_vars <= 0 then invalid_arg "Delegation.world: bad params";
  World.make ~name:"delegation-world"
    ~init:(fun () -> Fresh)
    ~step:(fun rng state (obs : Io.World.obs) ->
      let state =
        match state with
        | Fresh ->
            let cnf, _plant =
              Gen.planted rng ~num_vars:params.num_vars
                ~num_clauses:params.num_clauses ~clause_len:params.clause_len
            in
            Task { cnf; solved = false }
        | Task _ -> state
      in
      let state =
        match state with
        | Task ({ cnf; solved = false } as task) -> begin
            match Codec.assignment_opt ~num_vars:cnf.Cnf.num_vars obs.from_user with
            | Some a when Cnf.eval cnf a -> Task { task with solved = true }
            | _ -> state
          end
        | _ -> state
      in
      (state, Io.World.say_user (status_view state)))
    ~view:status_view

let solved_view = function
  | Msg.Pair (Msg.Text "solved", _) -> true
  | _ -> false

let referee =
  Referee.finite_exists "world-received-satisfying-assignment" solved_view

let goal ?(params = default_params) ~alphabet () =
  check_alphabet alphabet;
  Goal.make
    ~name:(Printf.sprintf "delegation(vars=%d)" params.num_vars)
    ~worlds:[ world ~params () ]
    ~referee

let formula_of_world_msg = function
  | Msg.Pair (Msg.Text _, cnf_msg) -> Codec.cnf_opt cnf_msg
  | _ -> None

(* Any Pair whose payload decodes as an assignment is treated as a
   candidate answer; the command symbol may be dialect-garbled, the
   payload is readable regardless. *)
let answer_of_server_msg ~num_vars = function
  | Msg.Pair (_, payload) -> Codec.assignment_opt ~num_vars payload
  | _ -> None

type phase =
  | Awaiting_task
  | Asked of { cnf : Cnf.t; waited : int }
  | Reporting of { cnf : Cnf.t; answer : Cnf.assignment }

let ask_patience = 6

let informed_user ~alphabet d =
  check_alphabet alphabet;
  let ask cnf =
    Io.User.say_server
      (Dialect_msg.encode d (Msg.Pair (Msg.Sym ask_cmd, Codec.cnf cnf)))
  in
  Strategy.make
    ~name:(Printf.sprintf "delegator@%s" (Format.asprintf "%a" Dialect.pp d))
    ~init:(fun () -> Awaiting_task)
    ~step:(fun _rng phase (obs : Io.User.obs) ->
      if solved_view obs.from_world then (phase, Io.User.halt_act)
      else begin
        match phase with
        | Awaiting_task -> begin
            match formula_of_world_msg obs.from_world with
            | Some cnf -> (Asked { cnf; waited = 0 }, ask cnf)
            | None -> (Awaiting_task, Io.User.silent)
          end
        | Asked { cnf; waited } -> begin
            match answer_of_server_msg ~num_vars:cnf.Cnf.num_vars obs.from_server with
            | Some a when Cnf.eval cnf a ->
                (* Verified: relay to the world. *)
                ( Reporting { cnf; answer = a },
                  Io.User.say_world (assignment_msg a) )
            | Some _ ->
                (* Caught a wrong answer: ask again. *)
                (Asked { cnf; waited = 0 }, ask cnf)
            | None ->
                if waited >= ask_patience then (Asked { cnf; waited = 0 }, ask cnf)
                else (Asked { cnf; waited = waited + 1 }, Io.User.silent)
          end
        | Reporting { answer; _ } ->
            (phase, Io.User.say_world (assignment_msg answer))
      end)

let user_class ~alphabet dialects =
  Enum.map
    ~name:(Printf.sprintf "delegators(%s)" (Enum.name dialects))
    (fun d -> informed_user ~alphabet d)
    dialects

(* Positive iff the formula is known and some event relayed a satisfying
   assignment to the world.  The delegation world broadcasts one fixed
   formula for the whole run, so the first formula seen IS the latest
   one; the incremental state is that formula (once decoded), a flag for
   a satisfying relay, and — until the formula arrives — a buffer of the
   to_world messages sent so far, retro-checked the moment the formula
   is decoded (an assignment relayed before the task was readable still
   counts, as it does for the whole-view predicate). *)
let sensing =
  let satisfies cnf m =
    match Codec.assignment_opt ~num_vars:cnf.Cnf.num_vars m with
    | Some a -> Cnf.eval cnf a
    | None -> false
  in
  Sensing.incremental ~name:"verified-answer-relayed"
    ~init:(fun () -> ((None, [], false), Sensing.Negative))
    ~step:(fun (formula, pre, sat) (e : View.event) ->
      let formula, pre, sat =
        match formula with
        | Some cnf -> (formula, pre, sat || satisfies cnf e.View.to_world)
        | None -> begin
            match formula_of_world_msg e.View.from_world with
            | Some cnf ->
                let sat = List.exists (satisfies cnf) (e.View.to_world :: pre) in
                (Some cnf, [], sat)
            | None -> (None, e.View.to_world :: pre, sat)
          end
      in
      let v =
        match formula with
        | Some _ when sat -> Sensing.Positive
        | _ -> Sensing.Negative
      in
      ((formula, pre, sat), v))

let bad_answers history =
  let formula =
    History.fold_rounds history ~init:None
      ~f:(fun acc (r : History.Round.t) ->
        match acc with
        | Some _ -> acc
        | None -> (
            match r.world_view with
            | Msg.Pair (Msg.Text _, cnf_msg) -> Codec.cnf_opt cnf_msg
            | _ -> None))
  in
  match formula with
  | None -> 0
  | Some cnf ->
      History.fold_rounds history ~init:0 ~f:(fun n (r : History.Round.t) ->
          match
            answer_of_server_msg ~num_vars:cnf.Cnf.num_vars r.server_to_user
          with
          | Some a -> if Cnf.eval cnf a then n else n + 1
          | None -> n)

let universal_user ?schedule ?checkpoint ?stats ~alphabet dialects =
  Universal.finite ?schedule ?checkpoint ?stats
    ~enum:(user_class ~alphabet dialects)
    ~sensing ()
