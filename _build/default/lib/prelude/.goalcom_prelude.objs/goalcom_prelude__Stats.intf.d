lib/prelude/stats.mli:
