examples/learning_demo.mli:
