(* Hashtbl + intrusive doubly-linked recency list: O(1) hit, miss and
   eviction.  The list head is the most recently used entry, the tail
   the eviction victim.  A mutex serialises every operation — the cache
   is shared across domains (the Levin racer resolves candidates while
   other domains run sequential constructions against the same class),
   and the protected sections are tiny. *)

type 'a node = {
  key : int;
  value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  cap : int;
  table : (int, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  lock : Mutex.t;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    cap = capacity;
    table = Hashtbl.create (max 16 (min capacity 4096));
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    lock = Mutex.create ();
  }

let capacity t = t.cap

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = locked t (fun () -> Hashtbl.length t.table)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key

let find_or_add t k f =
  match
    locked t (fun () ->
        match Hashtbl.find_opt t.table k with
        | Some n ->
            t.hits <- t.hits + 1;
            unlink t n;
            push_front t n;
            Some n.value
        | None ->
            t.misses <- t.misses + 1;
            None)
  with
  | Some v -> v
  | None ->
      (* Compute outside the recency bookkeeping but still under the
         same logical operation: re-take the lock to insert.  Another
         domain may have inserted [k] meanwhile — keep the resident
         node (the computations are pure, so either value is right). *)
      let v = f k in
      if t.cap > 0 then
        locked t (fun () ->
            if not (Hashtbl.mem t.table k) then begin
              if Hashtbl.length t.table >= t.cap then evict_tail t;
              let n = { key = k; value = v; prev = None; next = None } in
              Hashtbl.add t.table k n;
              push_front t n
            end);
      v

let mem t k = locked t (fun () -> Hashtbl.mem t.table k)
let hits t = locked t (fun () -> t.hits)
let misses t = locked t (fun () -> t.misses)

let hit_rate t =
  locked t (fun () ->
      let total = t.hits + t.misses in
      if total = 0 then 0. else float_of_int t.hits /. float_of_int total)

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None)
