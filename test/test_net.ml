(* Tests for lib/net: topology goals, probabilistic forwarding, the
   shared-medium arbiter, and the multi-user session-group semantics. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
module Net = Goalcom_net
module Fault = Goalcom_faults.Fault

let alphabet = 5 (* command alphabet for topo/forward dialect classes *)
let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects i

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* --- link builders ---------------------------------------------------- *)

let test_link_builders () =
  let a = 4 in
  Alcotest.(check (list int))
    "clean" [ 0; 3; 2 ]
    (Mealy.run (Net.Link.clean ~alphabet:a) [ 0; 3; 2 ]);
  Alcotest.(check (list int))
    "relabel wraps" [ 1; 0 ]
    (Mealy.run (Net.Link.relabel ~alphabet:a 1) [ 0; 3 ]);
  Alcotest.(check (list int))
    "relabel composes to identity" [ 2 ]
    (Mealy.run
       (Mealy.cascade (Net.Link.relabel ~alphabet:a 1)
          (Net.Link.relabel ~alphabet:a 3))
       [ 2 ]);
  Alcotest.(check (list int))
    "stuck" [ 1; 1; 1 ]
    (Mealy.run (Net.Link.stuck ~alphabet:a 1) [ 0; 2; 3 ]);
  Alcotest.(check (list int))
    "sticky remembers its first symbol" [ 2; 2; 2 ]
    (Mealy.run (Net.Link.sticky ~alphabet:a) [ 2; 0; 3 ])

let test_link_imperfection_spec () =
  (match Net.Link.imperfection ~alphabet "loss:0.25+dup" with
  | Ok f ->
      Alcotest.(check string) "loss parses as drop" "drop(0.25)+dup"
        (Fault.name f)
  | Error e -> Alcotest.fail e);
  match Net.Link.imperfection ~alphabet "loss:not-a-prob" with
  | Ok _ -> Alcotest.fail "malformed probability must not parse"
  | Error e ->
      Alcotest.(check bool) "error names the grammar" true
        (contains ~affix:"loss:P" e)

(* --- topology --------------------------------------------------------- *)

let run_topo ~scenario ~user ~server ?(horizon = 400) seed =
  let goal = Net.Topo.goal ~scenarios:[ scenario ] ~alphabet () in
  Exec.run_outcome ~config:(Exec.config ~horizon ()) ~goal ~user ~server
    (Rng.make seed)

let test_topo_scenarios () =
  let line = Net.Topo.line ~hops:3 ~payload_alphabet:4 ~payload:2 in
  Alcotest.(check (list int)) "line route" [ 0; 0; 0 ] (Net.Topo.route line);
  let diamond = Net.Topo.diamond ~payload_alphabet:4 ~payload:2 in
  Alcotest.(check (list int))
    "diamond routes around the stuck decoy" [ 0; 0 ]
    (Net.Topo.route diamond);
  let ring = Net.Topo.ring ~nodes:5 ~sink:3 ~payload_alphabet:4 ~payload:1 in
  Alcotest.(check (list int))
    "ring avoids the stuck chord" [ 1; 0; 0 ]
    (Net.Topo.route ring);
  Alcotest.check_raises "unroutable scenario rejected"
    (Invalid_argument "Topo.scenario: no intact route from source to sink")
    (fun () ->
      let net =
        Net.Topo.net ~payload_alphabet:4 ~nodes:2
          [ (0, 1, Net.Link.stuck ~alphabet:4 0) ]
      in
      ignore (Net.Topo.scenario ~net ~source:0 ~sink:1 ~payload:2))

let test_topo_informed_delivers () =
  List.iter
    (fun (name, scenario) ->
      List.iter
        (fun di ->
          let d = dialect di in
          let outcome, _ =
            run_topo ~scenario
              ~user:(Net.Topo.informed_user ~alphabet ~scenario d)
              ~server:(Net.Topo.server ~alphabet d)
              (42 + di)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s via dialect %d" name di)
            true outcome.Outcome.achieved)
        [ 0; 2; 4 ])
    [
      ("line", Net.Topo.line ~hops:3 ~payload_alphabet:4 ~payload:2);
      ("diamond", Net.Topo.diamond ~payload_alphabet:4 ~payload:2);
      ("ring", Net.Topo.ring ~nodes:5 ~sink:3 ~payload_alphabet:4 ~payload:1);
    ]

let test_topo_wrong_dialect_fails_universal_recovers () =
  let scenario = Net.Topo.diamond ~payload_alphabet:4 ~payload:2 in
  let outcome, _ =
    run_topo ~scenario
      ~user:(Net.Topo.informed_user ~alphabet ~scenario (dialect 1))
      ~server:(Net.Topo.server ~alphabet (dialect 0))
      7
  in
  Alcotest.(check bool) "wrong dialect stalls" false outcome.Outcome.achieved;
  List.iter
    (fun di ->
      let outcome, _ =
        run_topo ~scenario ~horizon:4_000
          ~user:(Net.Topo.universal_user ~alphabet ~scenario dialects)
          ~server:(Net.Topo.server ~alphabet (dialect di))
          11
      in
      Alcotest.(check bool)
        (Printf.sprintf "universal conquers dialect %d" di)
        true outcome.Outcome.achieved)
    [ 0; 1; 4 ]

(* --- forwarding ------------------------------------------------------- *)

let payload_alphabet = 4
let fwd_doc = [ 2; 0; 3; 1 ]
let fwd_scenario = Net.Forward.scenario ~payload_alphabet fwd_doc

let run_forward ?wire ?(fault = Fault.nop) ?(horizon = 600) ~user_d ~server_d
    seed =
  let goal = Net.Forward.goal ~scenarios:[ fwd_scenario ] ~alphabet () in
  let server =
    Fault.apply fault
      (Net.Forward.server ?wire ~alphabet ~payload_alphabet (dialect server_d))
  in
  Exec.run_outcome ~config:(Exec.config ~horizon ()) ~goal
    ~user:(Net.Forward.informed_user ~alphabet (dialect user_d))
    ~server (Rng.make seed)

let test_forward_clean () =
  let outcome, history = run_forward ~user_d:2 ~server_d:2 5 in
  Alcotest.(check bool) "delivered" true outcome.Outcome.achieved;
  Alcotest.(check bool)
    "final view shows the payload" true
    (Net.Forward.delivered
       (match History.world_views_rev history with v :: _ -> v | [] -> Msg.Silence))

let test_forward_wrong_dialect_stalls () =
  let outcome, _ = run_forward ~user_d:1 ~server_d:2 5 in
  Alcotest.(check bool) "stalls" false outcome.Outcome.achieved

let test_forward_lossy_dup () =
  let fault =
    match Fault.stack_of_string ~alphabet "loss:0.3+dup" with
    | Ok f -> f
    | Error e -> Alcotest.fail e
  in
  List.iter
    (fun seed ->
      let outcome, _ = run_forward ~fault ~user_d:0 ~server_d:0 seed in
      Alcotest.(check bool)
        (Printf.sprintf "ARQ survives loss+dup (seed %d)" seed)
        true outcome.Outcome.achieved)
    [ 1; 2; 3; 4; 5 ]

let test_forward_noisy_wire () =
  let wire = Net.Link.wire ~flip_prob:0.15 ~alphabet:payload_alphabet in
  List.iter
    (fun seed ->
      let outcome, _ = run_forward ~wire ~user_d:0 ~server_d:0 seed in
      Alcotest.(check bool)
        (Printf.sprintf "ARQ resets through wire noise (seed %d)" seed)
        true outcome.Outcome.achieved)
    [ 1; 2; 3 ]

let test_forward_universal () =
  let wire = Net.Link.wire ~flip_prob:0.05 ~alphabet:payload_alphabet in
  let goal = Net.Forward.goal ~scenarios:[ fwd_scenario ] ~alphabet () in
  let server =
    Net.Forward.server ~wire ~alphabet ~payload_alphabet (dialect 3)
  in
  let outcome, _ =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:6_000 ())
      ~goal
      ~user:(Net.Forward.universal_user ~alphabet dialects)
      ~server (Rng.make 9)
  in
  Alcotest.(check bool) "universal forwards" true outcome.Outcome.achieved

(* --- the medium ------------------------------------------------------- *)

module Session = Goalcom_session
module E19 = Goalcom_harness.E19_net_matrix

let frame seq sym = Msg.Pair (Msg.Int seq, Msg.Int sym)

let test_medium_slot_semantics () =
  Alcotest.check_raises "no ports"
    (Invalid_argument "Medium.create: need at least one port") (fun () ->
      ignore (Net.Medium.create ~ports:0));
  let m = Net.Medium.create ~ports:3 in
  let rng = Rng.make 1 in
  let p = Array.init 3 (fun i -> Strategy.Instance.create (Net.Medium.port m i)) in
  let step i from_user : Io.Server.act =
    Strategy.Instance.step rng p.(i)
      { Io.Server.from_user; from_world = Msg.Silence }
  in
  (* slot 1: ports 0 and 1 clash, port 2 stays quiet *)
  List.iter
    (fun (i, attempt) ->
      let a = step i attempt in
      Alcotest.(check bool)
        (Printf.sprintf "port %d starts quiet" i)
        true
        (a.Io.Server.to_user = Msg.Sym 0 && a.Io.Server.to_world = Msg.Silence))
    [ (0, frame 0 2); (1, frame 0 3); (2, Msg.Silence) ];
  Net.Medium.resolve m;
  (* slot 2: the clashers read their collision; only port 2 transmits *)
  Alcotest.(check bool) "0 collided" true
    ((step 0 Msg.Silence).Io.Server.to_user = Msg.Sym 2);
  Alcotest.(check bool) "1 collided" true
    ((step 1 Msg.Silence).Io.Server.to_user = Msg.Sym 2);
  Alcotest.(check bool) "2 still quiet" true
    ((step 2 (frame 0 1)).Io.Server.to_user = Msg.Sym 0);
  Net.Medium.resolve m;
  (* slot 3: port 2's frame was granted — ack plus world delivery *)
  let a = step 2 Msg.Silence in
  Alcotest.(check bool) "2 delivered" true (a.Io.Server.to_user = Msg.Sym 1);
  Alcotest.(check bool) "frame forwarded" true
    (a.Io.Server.to_world = frame 0 1);
  Net.Medium.resolve m;
  (* slot 3 staged nothing: an idle slot *)
  Alcotest.(check int) "slots" 3 (Net.Medium.slots m);
  Alcotest.(check int) "successes" 1 (Net.Medium.successes m);
  Alcotest.(check int) "collisions" 1 (Net.Medium.collisions m);
  Alcotest.(check int) "idles" 1 (Net.Medium.idles m);
  Alcotest.(check int) "port 2 delivered" 1 (Net.Medium.delivered m 2);
  Alcotest.(check int) "port 0 delivered" 0 (Net.Medium.delivered m 0)

let test_medium_first_attempt_sticks_and_restart_clears () =
  let m = Net.Medium.create ~ports:1 in
  let rng = Rng.make 2 in
  let p = Strategy.Instance.create (Net.Medium.port m 0) in
  let step from_user : Io.Server.act =
    Strategy.Instance.step rng p
      { Io.Server.from_user; from_world = Msg.Silence }
  in
  ignore (step (frame 0 2));
  ignore (step (frame 0 3));
  (* same slot: the first attempt sticks *)
  Net.Medium.resolve m;
  let a = step Msg.Silence in
  Alcotest.(check bool) "first attempt won" true
    (a.Io.Server.to_world = frame 0 2);
  (* a granted-but-unread frame dies with the incarnation *)
  ignore (step (frame 1 1));
  Net.Medium.resolve m;
  Strategy.Instance.restart p;
  let a = step Msg.Silence in
  Alcotest.(check bool) "restart starts from a quiet port" true
    (a.Io.Server.to_user = Msg.Sym 0 && a.Io.Server.to_world = Msg.Silence);
  (* medium-level counters survive the incarnation *)
  Alcotest.(check int) "successes persist" 2 (Net.Medium.successes m)

(* --- multiple access through the session-group engine ------------------ *)

let test_mac_group_completes () =
  let r = E19.run_mac ~users:2 ~seed:3 () in
  Alcotest.(check int) "both stations finish" 2
    r.E19.report.Session.Engine.completed;
  (* each station's word has two symbols: at least four granted frames *)
  Alcotest.(check bool) "deliveries happened" true (r.E19.successes >= 4);
  Alcotest.(check bool) "slot accounting" true
    (r.E19.successes + r.E19.collisions + r.E19.idles = r.E19.slots)

(* Satellite: shared-medium determinism.  The first multi-user step
   semantics must preserve the engine's contract — outcomes, digest and
   medium counters bit-identical across jobs counts and repeats. *)
let prop_mac_jobs_deterministic =
  QCheck.Test.make ~count:6
    ~name:"net: shared-medium run is jobs- and repeat-deterministic"
    QCheck.(pair (2 -- 5) (int_bound 1000))
    (fun (users, seed) ->
      let base = E19.run_mac ~jobs:1 ~users ~seed () in
      List.for_all
        (fun jobs ->
          let r = E19.run_mac ~jobs ~users ~seed () in
          r.E19.report.Session.Engine.digest
          = base.E19.report.Session.Engine.digest
          && r.E19.report.Session.Engine.outcomes
             = base.E19.report.Session.Engine.outcomes
          && (r.E19.slots, r.E19.successes, r.E19.collisions, r.E19.idles)
             = (base.E19.slots, base.E19.successes, base.E19.collisions,
                base.E19.idles))
        [ 1; 2; 4 ])

(* Satellite: crash-restart equivalence for session groups.  A station
   fleet interrupted by chaos kills reaches the same goal states as the
   uninterrupted fleet — the medium is part of the world, not of any
   incarnation, and checkpoints survive restarts. *)
let final_states (r : E19.mac_run) =
  Array.map
    (function
      | Session.Engine.Done { state; _ } -> Some state
      | _ -> None)
    r.E19.report.Session.Engine.outcomes

let prop_mac_crash_restart_reaches_same_state =
  QCheck.Test.make ~count:6
    ~name:"net: killed+restarted stations = uninterrupted (jobs 1/2/4)"
    QCheck.(pair (1 -- 30) (1 -- 30))
    (fun (k1, k2) ->
      let users = 3 in
      let baseline = E19.run_mac ~users ~seed:17 () in
      let states = final_states baseline in
      if Array.exists (( = ) None) states then
        QCheck.Test.fail_report "baseline did not complete";
      let chaos =
        match
          Session.Chaos.of_string ~alphabet:5
            (Printf.sprintf "kill@%d,%d%%2=0" k1 (k1 + k2))
        with
        | Ok c -> c
        | Error e -> QCheck.Test.fail_report e
      in
      List.for_all
        (fun jobs ->
          final_states (E19.run_mac ~jobs ~chaos ~users ~seed:17 ()) = states)
        [ 1; 2; 4 ])

(* --- suite ------------------------------------------------------------ *)

let () =
  Alcotest.run "net"
    [
      ( "link",
        [
          Alcotest.test_case "builders" `Quick test_link_builders;
          Alcotest.test_case "imperfection spec" `Quick
            test_link_imperfection_spec;
        ] );
      ( "topo",
        [
          Alcotest.test_case "scenarios and routes" `Quick test_topo_scenarios;
          Alcotest.test_case "informed delivers" `Quick
            test_topo_informed_delivers;
          Alcotest.test_case "universal recovers" `Quick
            test_topo_wrong_dialect_fails_universal_recovers;
        ] );
      ( "forward",
        [
          Alcotest.test_case "clean" `Quick test_forward_clean;
          Alcotest.test_case "wrong dialect stalls" `Quick
            test_forward_wrong_dialect_stalls;
          Alcotest.test_case "lossy+dup" `Quick test_forward_lossy_dup;
          Alcotest.test_case "noisy wire" `Quick test_forward_noisy_wire;
          Alcotest.test_case "universal" `Quick test_forward_universal;
        ] );
      ( "medium",
        [
          Alcotest.test_case "slot semantics" `Quick
            test_medium_slot_semantics;
          Alcotest.test_case "sticky attempts, quiet restarts" `Quick
            test_medium_first_attempt_sticks_and_restart_clears;
        ] );
      ( "mac",
        [
          Alcotest.test_case "group completes" `Quick test_mac_group_completes;
          QCheck_alcotest.to_alcotest prop_mac_jobs_deterministic;
          QCheck_alcotest.to_alcotest prop_mac_crash_restart_reaches_same_state;
        ] );
    ]
