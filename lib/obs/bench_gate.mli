(** Perf-regression gate over the committed [BENCH_*.json] baselines.

    [bench --check] re-measures, extracts metrics from both the fresh
    run and the committed baseline, and fails (exit 1) when a metric
    regresses beyond its tolerance.  The comparison logic lives here so
    tests can drive it without running a benchmark.

    Tolerance policy: relative metrics — names ending in ["_pct"], like
    the tracing-overhead percentages — transfer across machines and get
    a tight default (35% relative, 10-point absolute slack; both bounds
    must be exceeded to count as a regression).  Absolute timings
    (ns_per_run, ms_per_run) do not transfer — CI hardware is not the
    baseline's hardware — so their default tolerance is a loose 300%,
    catching only order-of-magnitude blowups. *)

type metric = { name : string; value : float }

type comparison = {
  metric : string;
  baseline : float;
  fresh : float;
  tol_pct : float;  (** relative tolerance applied, in percent *)
  slack : float;  (** absolute slack applied, in the metric's unit *)
  regressed : bool;
}

val default_tol_pct : string -> float
val default_slack : string -> float

val judge : tol_pct:float -> slack:float -> baseline:float -> fresh:float -> bool
(** [true] iff fresh exceeds baseline by more than {e both} the relative
    tolerance and the absolute slack.  Lower is better for every gated
    metric. *)

val compare_metrics :
  ?tol_pct:(string -> float) ->
  ?slack:(string -> float) ->
  baseline:metric list ->
  fresh:metric list ->
  unit ->
  comparison list
(** One comparison per fresh metric that also appears in the baseline;
    metrics present on only one side are skipped (a fresh smoke run may
    legitimately measure a subset). *)

val regressions : comparison list -> comparison list

val metrics_of_json : Json.t -> metric list
(** Extraction from the BENCH file shape
    [{ ..scalars.., "results": [ {"name": n, <numeric fields>..}, ..]}]:
    each numeric field of a results entry becomes ["n/field"], and
    top-level ["*_pct"] scalars come along under their own key. *)

val load_file : string -> (metric list, string) result

val table : comparison list -> Goalcom_prelude.Table.t

val verdict_json : comparison list -> string
(** Machine-readable verdict:
    [{"verdict": "pass"|"fail", "compared": n, "regressed": k,
      "comparisons": [...]}]. *)
