open Goalcom
open Goalcom_prelude

(* A fixed-latency FIFO: push at the head, deliver from the tail once
   the queue holds more than [rounds] entries.  Queues stay tiny
   (length = latency), so plain lists are fine. *)
let push_pop ~rounds queue msg =
  let queue = msg :: queue in
  if List.length queue > rounds then begin
    let rec split acc = function
      | [] -> assert false
      | [ oldest ] -> (oldest, List.rev acc)
      | m :: rest -> split (m :: acc) rest
    in
    split [] queue
  end
  else (Msg.Silence, queue)

let delayed ~rounds base =
  if rounds < 0 then invalid_arg "Channel.delayed: negative latency";
  if rounds = 0 then base
  else begin
    let module I = Strategy.Instance in
    Strategy.make
      ~name:(Printf.sprintf "delayed(%d,%s)" rounds (Strategy.name base))
      ~init:(fun () -> (I.create base, [], []))
      ~step:(fun rng (inst, inbox, outbox) (obs : Io.Server.obs) ->
        let delivered_in, inbox = push_pop ~rounds inbox obs.from_user in
        let act = I.step rng inst { obs with Io.Server.from_user = delivered_in } in
        let delivered_out, outbox = push_pop ~rounds outbox act.Io.Server.to_user in
        ( (inst, inbox, outbox),
          { act with Io.Server.to_user = delivered_out } ))
  end

(* Randomness is drawn from the per-step [rng] (not a private stream
   fixed at construction), so separate trials and separate instances of
   the same wrapped strategy never share RNG state and replays with the
   same execution seed reproduce the same losses. *)
let drop_inbound ~drop_prob base =
  if drop_prob < 0. || drop_prob > 1. then
    invalid_arg "Channel.drop_inbound: drop_prob out of range";
  let module I = Strategy.Instance in
  Strategy.make
    ~name:(Printf.sprintf "drop-in(%.2f,%s)" drop_prob (Strategy.name base))
    ~init:(fun () -> I.create base)
    ~step:(fun rng inst (obs : Io.Server.obs) ->
      let obs =
        if
          (not (Msg.is_silence obs.Io.Server.from_user))
          && Rng.bernoulli rng drop_prob
        then { obs with Io.Server.from_user = Msg.Silence }
        else obs
      in
      (inst, I.step rng inst obs))

let duplicate_outbound base =
  let module I = Strategy.Instance in
  Strategy.make
    ~name:(Printf.sprintf "dup-out(%s)" (Strategy.name base))
    ~init:(fun () -> (I.create base, []))
    ~step:(fun rng (inst, pending) obs ->
      let act = I.step rng inst obs in
      let out = act.Io.Server.to_user in
      if Msg.is_silence out then
        (* Deliver the oldest pending duplicate, if any. *)
        match pending with
        | [] -> ((inst, []), act)
        | d :: rest -> ((inst, rest), { act with Io.Server.to_user = d })
      else
        (* Queue the duplicate (never overwrite): back-to-back emissions
           each get their echo once the link next falls silent. *)
        ((inst, pending @ [ out ]), act))
