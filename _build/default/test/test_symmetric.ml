(* Tests for the symmetric-setting reduction: two user-role peers, each
   treating the other as its server, with the world refereeing both. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers

let greet_cmd = 0
let alphabet = 4

(* The mutual-greeting goal: the world wants to receive a greeting from
   BOTH peers.  Peers greet the world only after being greeted by their
   counterpart in their own dialect — so a pair only succeeds if one of
   them speaks first AND the dialects line up. *)
let world =
  World.make ~name:"salon"
    ~init:(fun () -> (false, false))
    ~step:(fun _rng (a, b) (obs : Io.World.obs) ->
      let a = a || obs.from_user = Msg.Text "greetings" in
      let b = b || obs.from_server = Msg.Text "greetings" in
      ( (a, b),
        Io.World.broadcast
          (Msg.Pair
             ( Msg.Text (if a then "a-done" else "a-waiting"),
               Msg.Text (if b then "b-done" else "b-waiting") )) ))
    ~view:(fun (a, b) ->
      Msg.Pair
        ( Msg.Text (if a then "a-done" else "a-waiting"),
          Msg.Text (if b then "b-done" else "b-waiting") ))

let both_done view =
  view = Msg.Pair (Msg.Text "a-done", Msg.Text "b-done")

let goal =
  Goal.make ~name:"mutual-greeting" ~worlds:[ world ]
    ~referee:(Referee.finite "both-greeted" (fun views -> List.exists both_done views))

(* An initiator peer speaking dialect d: greets the counterpart, and
   greets the world once greeted back; halts when the world reports
   both sides done. *)
let initiator d =
  let hello = Dialect_msg.encode d (Msg.Sym greet_cmd) in
  Strategy.make
    ~name:(Printf.sprintf "initiator@%s" (Format.asprintf "%a" Dialect.pp d))
    ~init:(fun () -> `Greeting)
    ~step:(fun _rng state (obs : Io.User.obs) ->
      if both_done obs.from_world then (state, Io.User.halt_act)
      else if Dialect_msg.decode d obs.from_server = Msg.Sym greet_cmd then
        (`Replied, { Io.User.to_server = hello; to_world = Msg.Text "greetings"; halt = false })
      else (`Greeting, Io.User.say_server hello))

(* A responder peer: never speaks first, but answers a well-formed
   greeting (in its dialect) and then greets the world. *)
let responder d =
  let hello = Dialect_msg.encode d (Msg.Sym greet_cmd) in
  Strategy.stateless
    ~name:(Printf.sprintf "responder@%s" (Format.asprintf "%a" Dialect.pp d))
    (fun (obs : Io.User.obs) ->
      if Dialect_msg.decode d obs.from_server = Msg.Sym greet_cmd then
        { Io.User.to_server = hello; to_world = Msg.Text "greetings"; halt = false }
      else Io.User.silent)

let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects i

let run ~peer_a ~peer_b ?(horizon = 2000) seed =
  Symmetric.run_peers
    ~config:(Exec.config ~horizon ())
    ~goal ~peer_a ~peer_b (Rng.make seed)

let test_matching_peers_succeed () =
  List.iter
    (fun i ->
      let outcome, history =
        run ~peer_a:(initiator (dialect i)) ~peer_b:(responder (dialect i)) (10 + i)
      in
      Alcotest.(check bool)
        (Printf.sprintf "dialect %d" i)
        true outcome.Outcome.achieved;
      Alcotest.(check bool) "fast" true (History.length history < 20))
    (Listx.range 0 alphabet)

let test_mismatched_peers_fail () =
  let outcome, _ =
    run ~peer_a:(initiator (dialect 0)) ~peer_b:(responder (dialect 2)) 20
  in
  Alcotest.(check bool) "fail" false outcome.Outcome.achieved

let test_two_responders_deadlock () =
  (* Nobody speaks first: the reduction preserves the deadlock. *)
  let outcome, _ =
    run ~peer_a:(responder (dialect 0)) ~peer_b:(responder (dialect 0)) 30
  in
  Alcotest.(check bool) "deadlock" false outcome.Outcome.achieved

let test_universal_peer_adapts () =
  (* Peer A runs the finite universal construction over initiator
     dialects; peer B is a fixed responder with an unknown dialect. *)
  let sensing =
    Sensing.of_predicate ~name:"both-done" (fun view ->
        match View.latest view with
        | Some e -> both_done e.View.from_world
        | None -> false)
  in
  List.iter
    (fun i ->
      let enum =
        Enum.map ~name:"initiators" (fun d -> initiator d) dialects
      in
      let universal = Universal.finite ~enum ~sensing () in
      let outcome, _ =
        run ~peer_a:universal ~peer_b:(responder (dialect i)) (40 + i)
      in
      Alcotest.(check bool)
        (Printf.sprintf "universal adapts to responder %d" i)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_as_server_round_counter () =
  (* The adapter threads its own round counter. *)
  let spy_rounds = ref [] in
  let spy =
    Strategy.stateless ~name:"spy" (fun (obs : Io.User.obs) ->
        spy_rounds := obs.Io.User.round :: !spy_rounds;
        Io.User.silent)
  in
  let server = Symmetric.as_server spy in
  let inst = Strategy.Instance.create server in
  let rng = Rng.make 1 in
  for _ = 1 to 3 do
    ignore
      (Strategy.Instance.step rng inst
         { Io.Server.from_user = Msg.Silence; from_world = Msg.Silence })
  done;
  Alcotest.(check (list int)) "rounds 1..3" [ 3; 2; 1 ] !spy_rounds

let () =
  Alcotest.run "symmetric"
    [
      ( "symmetric",
        [
          Alcotest.test_case "matching peers succeed" `Quick test_matching_peers_succeed;
          Alcotest.test_case "mismatched peers fail" `Quick test_mismatched_peers_fail;
          Alcotest.test_case "responders deadlock" `Quick test_two_responders_deadlock;
          Alcotest.test_case "universal peer adapts" `Quick test_universal_peer_adapts;
          Alcotest.test_case "adapter round counter" `Quick test_as_server_round_counter;
        ] );
    ]
