lib/automata/prob_mealy.mli: Dist Goalcom_prelude Mealy Rng
