lib/goals/password.ml: Enum Goal Goalcom Goalcom_automata Io List Msg Printf Referee Sensing Strategy Universal View World
