open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals
open Goalcom_faults

type case = { name : string; events : unit -> Trace.event list }

(* The two reference runs behind the golden-trace regression suite.
   Everything here must stay deterministic: fixed seeds, fixed
   configs, and no wall-clock anywhere in the event stream.  The CLI
   ([goalcom trace-golden DIR]) regenerates the committed files from
   these same constructors, so test and generator cannot drift
   apart. *)

let record_run ~config ~goal ~user ~server ~seed =
  let (_ : Outcome.t * History.t), events =
    Goalcom_obs.Recorder.record (fun () ->
        Exec.run_outcome ~config ~goal ~user ~server (Rng.make seed))
  in
  events

(* E1 flavour: the universal printing user against a rotated-dialect
   printer, so the trace shows the Levin sessions scanning the class
   until the right dialect prints the document and sensing halts the
   run. *)
let e1_printing =
  {
    name = "e1_printing";
    events =
      (fun () ->
        let alphabet = 3 in
        let doc = [ 3; 1; 4 ] in
        let dialects = Dialect.enumerate_rotations ~size:alphabet in
        let goal = Printing.goal ~docs:[ doc ] ~alphabet () in
        let user = Printing.universal_user ~alphabet dialects in
        let server = Printing.server ~alphabet (Enum.get_exn dialects 1) in
        let config = Exec.config ~horizon:600 () in
        record_run ~config ~goal ~user ~server ~seed:1);
  }

(* E16 flavour: the same construction against a crash-restarting
   printer, so the trace interleaves Fault events with the enumeration
   recovering from lost server state. *)
let e16_crash =
  {
    name = "e16_crash";
    events =
      (fun () ->
        let alphabet = 4 in
        let doc = [ 4; 2 ] in
        let dialects = Dialect.enumerate_rotations ~size:alphabet in
        let goal = Printing.goal ~docs:[ doc ] ~alphabet () in
        let user = Printing.universal_user ~alphabet dialects in
        let fault =
          match Fault.stack_of_string ~alphabet "crash:25" with
          | Ok f -> f
          | Error e -> invalid_arg ("Trace_cases.e16_crash: " ^ e)
        in
        let server =
          Fault.apply fault (Printing.server ~alphabet (Enum.get_exn dialects 2))
        in
        let config = Exec.config ~horizon:400 () in
        record_run ~config ~goal ~user ~server ~seed:16);
  }

(* E3 flavour: the Levin/finite universal user navigating a maze, with
   a checkpoint threaded through two incarnations.  The first run is
   cut short by a small horizon mid-enumeration; the second resumes
   from the recorded schedule position — its trace opens with a
   [Resume] event carrying the skipped slot count — and completes.
   Both runs land in one file; the per-run invariant checker
   ([Trace.split_runs]) validates each segment on its own clock. *)
let e3_maze =
  {
    name = "e3_maze";
    events =
      (fun () ->
        let alphabet = 4 in
        let dialects = Dialect.enumerate_rotations ~size:alphabet in
        let scenario =
          Maze.scenario ~width:5 ~height:5 ~start:(0, 0) ~target:(3, 2) ()
        in
        let goal = Maze.goal ~scenarios:[ scenario ] ~alphabet () in
        let server = Maze.server ~alphabet (Enum.get_exn dialects 2) in
        let enum = Maze.user_class ~alphabet ~scenario dialects in
        let checkpoint = Universal.new_checkpoint () in
        let incarnation () =
          Universal.finite ~checkpoint ~enum ~sensing:Maze.sensing ()
        in
        let (_ : Outcome.t * History.t), events =
          Goalcom_obs.Recorder.record (fun () ->
              (* First incarnation: the horizon expires mid-enumeration,
                 leaving consumed Levin slots behind in the checkpoint. *)
              let (_ : Outcome.t * History.t) =
                Exec.run_outcome
                  ~config:(Exec.config ~horizon:12 ())
                  ~goal ~user:(incarnation ()) ~server (Rng.make 3)
              in
              (* Second incarnation: resumes past the consumed slots. *)
              Exec.run_outcome
                ~config:(Exec.config ~horizon:400 ())
                ~goal ~user:(incarnation ()) ~server (Rng.make 3))
        in
        events);
  }

(* E18 flavour: a supervised chaos run, two sessions through a
   one-slot, zero-queue engine.  Session 0 is admitted, killed by the
   chaos schedule at tick 2, restarted from its checkpoint (its second
   incarnation's trace opens with a [Resume] event) and completes;
   session 1 finds slot and queue full and is shed on arrival.  The
   merged trace is the per-session buffers in id order, so the file
   pins the engine's replay contract as well as the event stream. *)
let e18_chaos =
  {
    name = "e18_chaos";
    events =
      (fun () ->
        let module Session = Goalcom_session in
        let alphabet = 4 in
        let dialects = Dialect.enumerate_rotations ~size:alphabet in
        let scenario =
          Maze.scenario ~width:5 ~height:5 ~start:(0, 0) ~target:(3, 2) ()
        in
        let goal = Maze.goal ~scenarios:[ scenario ] ~alphabet () in
        let spec i : Session.Engine.spec =
          {
            sname = Printf.sprintf "s%d" i;
            server_class = "maze";
            goal;
            make_user =
              (fun ~checkpoint ->
                Universal.finite ~checkpoint
                  ~enum:(Maze.user_class ~alphabet ~scenario dialects)
                  ~sensing:Maze.sensing ());
            server = Maze.server ~alphabet (Enum.get_exn dialects 2);
            exec_config = Exec.config ~horizon:400 ();
          }
        in
        let chaos =
          match Session.Chaos.of_string ~alphabet "kill@2%2=0" with
          | Ok c -> c
          | Error e -> invalid_arg ("Trace_cases.e18_chaos: " ^ e)
        in
        let config =
          Session.Engine.config ~quantum:16 ~max_live:1 ~queue_capacity:0 ()
        in
        let (_ : Session.Engine.report), events =
          Goalcom_obs.Recorder.record (fun () ->
              Session.Engine.run ~chaos ~config ~jobs:1
                ~specs:(Array.init 2 spec) ~seed:18 ())
        in
        events);
  }

let all = [ e1_printing; e3_maze; e16_crash; e18_chaos ]

(* The stats golden is generated and tested through this one function
   (like [events] above), so the regenerator and the test cannot
   drift: a clock-less Rollup folded over the [e18_chaos] supervise
   stream is a pure function of the case. *)
let rollup_stats () =
  let module Rollup = Goalcom_obs.Rollup in
  let r = Rollup.create ~class_of:(fun _ -> "maze") () in
  List.iter (Rollup.observe r) (e18_chaos.events ());
  Rollup.to_json (Rollup.snapshot r)
