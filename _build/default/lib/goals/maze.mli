(** The maze (navigation) goal — a finite goal for the Levin experiments.

    The {b world} is a grid with an agent position and a target; the
    {b server} is the "robot driver" that understands movement commands
    in its own dialect and forwards them to the world.  The world
    broadcasts (position, target) each round.  The goal is achieved once
    the agent has reached the target (monotone: reaching it counts even
    if later commands move the agent away).

    Canonical commands: directions 0..3 ({!Grid.north} etc.), plus
    [alphabet - 4] inert padding symbols for larger dialect classes. *)

open Goalcom
open Goalcom_automata

val min_alphabet : int
(** 4. *)

val driver : alphabet:int -> Strategy.server
(** Forwards canonical direction symbols to the world, ignores
    everything else.  @raise Invalid_argument on a small alphabet. *)

val server : alphabet:int -> Dialect.t -> Strategy.server
val server_class : alphabet:int -> Dialect.t Enum.t -> Strategy.server Enum.t

type scenario = {
  grid : Grid.t;
  start : Grid.pos;
  target : Grid.pos;
}

val scenario :
  ?blocked:(int * int) list ->
  width:int -> height:int -> start:Grid.pos -> target:Grid.pos -> unit ->
  scenario
(** @raise Invalid_argument if start or target is not free, or the
    target is unreachable. *)

val world_of_scenario : scenario -> World.t
(** State view: [Pair (Pair (position), Pair (target))]. *)

val goal : scenarios:scenario list -> alphabet:int -> unit -> Goal.t

val informed_user : alphabet:int -> scenario:scenario -> Dialect.t -> Strategy.user
(** Knows the grid and the dialect: BFS-plans from the broadcast
    position, replans when progress stalls, halts on arrival. *)

val user_class :
  alphabet:int -> scenario:scenario -> Dialect.t Enum.t -> Strategy.user Enum.t

val sensing : Sensing.t
(** Positive iff some broadcast showed position = target. *)

val universal_user :
  ?schedule:Levin.slot Seq.t ->
  ?stats:Universal.stats ->
  alphabet:int ->
  scenario:scenario ->
  Dialect.t Enum.t ->
  Strategy.user
