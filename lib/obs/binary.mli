(** Compact binary encoding of {!Goalcom.Trace.event} — the wire format
    of the ring-buffer sink ({!Ring}).

    One tag byte per event, then the fields in declaration order:
    integers as zigzag-mapped LEB128 varints (at most 9 bytes for the
    63-bit domain), strings as a varint byte length plus raw bytes (no
    escaping — arbitrary bytes roundtrip exactly), parties and booleans
    as one byte, and messages as a tagged preorder walk.  A
    [Round_start] costs 2 bytes and a typical [Emit] 6–8, an order of
    magnitude under their JSONL renderings, and encoding performs no
    formatting — which is what makes always-on capture affordable.

    {!decode} inverts {!add_event} exactly (the qcheck suite pins the
    roundtrip over arbitrary events, adversarial [Text] bytes
    included), so decoded events feed every existing [Trace.event]
    consumer — {!Jsonl}, {!Trace_diff}, {!Span}, {!Metrics}, the golden
    tests — unchanged.  The format is an in-memory ring layout, not an
    archival format: it carries no version header; {!Jsonl} remains the
    interchange format. *)

val add_event : Buffer.t -> Goalcom.Trace.event -> unit
(** Append one encoded event. *)

val event_to_string : Goalcom.Trace.event -> string

(** {1 Cursor encoder}

    The allocation-free encoding path ({!Ring}'s hot loop): a reusable
    growable byte cursor.  {!encode} rewinds the cursor and writes one
    event; the result is the first {!enc_len} bytes of {!enc_bytes}
    (valid until the next {!encode} — copy out before re-using). *)

type enc

val enc_create : int -> enc
(** A cursor with [n] bytes of initial capacity (grows as needed). *)

val encode : enc -> Goalcom.Trace.event -> unit
(** Rewind and write one event: the cursor holds exactly that event. *)

val put_event : enc -> Goalcom.Trace.event -> unit
(** Append one event at the cursor without rewinding ({!Ring} keeps a
    whole shard's events in one cursor this way). *)

val enc_bytes : enc -> Bytes.t
val enc_len : enc -> int

val enc_set_len : enc -> int -> unit
(** Truncate to the first [n] bytes ([0 <= n <= enc_len]) — the
    drop-the-tail half of a caller-managed compaction that blits live
    bytes down inside {!enc_bytes} first. *)

val sink : Buffer.t -> Goalcom.Trace.sink
(** A sink appending every event to the buffer (benchmark harness and
    tests; production capture wants {!Ring.sink}). *)

(** {1 Decoding} *)

val decode : ?pos:int -> string -> (Goalcom.Trace.event * int, string) result
(** [decode ?pos s] reads one event at [pos] (default [0]); on success
    returns the event and the offset just past it.  Errors name the
    failing byte offset. *)

val event_of_string : string -> (Goalcom.Trace.event, string) result
(** One event spanning the whole string; trailing bytes are an error. *)

val decode_all : ?pos:int -> string -> (Goalcom.Trace.event list, string) result
(** Events back to back until the end of the string. *)
