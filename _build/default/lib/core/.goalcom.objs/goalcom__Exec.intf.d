lib/core/exec.mli: Goal Goalcom_prelude History Outcome Strategy
