lib/harness/e13_online_learning.mli: Goalcom_prelude
