(** E2 / Figure 1 — rounds-to-success versus the index of the matching dialect, for the Levin schedule, a round-robin schedule, and the informed user.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
