lib/core/symmetric.ml: Exec Io Strategy
