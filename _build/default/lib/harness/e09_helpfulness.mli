(** E9 / Table 5 — the universal user achieves the goal with a server exactly when the server is helpful.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
