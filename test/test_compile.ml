(* Differential battery for lib/compile: flat-table lowering, the
   decode+compile LRU cache, and the warm-start store.

   The compile layer is an optimisation, so almost every property here
   is an equivalence: compiled step = Mealy.step, compiled user =
   machine user transcript-for-transcript, cached enumerations =
   uncached ones, and the universal constructions (finite, compact,
   finite_par across jobs counts) produce bit-identical winners and
   histories whichever class they climb.  The warm-start tests pin the
   robustness contract: a hit replays the cold outcome from slot 0, and
   corrupt stores, stale indices and bad budgets all fall back cold
   with a Trace.Warm event recording the rejection. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
module Ctable = Goalcom_compile.Table
module Compiled = Goalcom_compile.Compiled
module Warm = Goalcom_compile.Warm

let qtest ?(count = 100) name gen law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen law)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* --- generators ------------------------------------------------------- *)

(* A random machine: small random dimensions, then a uniform code
   decoded through the canonical numbering. *)
let gen_mealy_dims ~states ~inputs ~outputs =
  QCheck.Gen.map
    (fun code -> Option.get (Mealy.decode ~states ~inputs ~outputs code))
    (QCheck.Gen.int_range 0 (Mealy.count ~states ~inputs ~outputs - 1))

let gen_mealy =
  QCheck.Gen.(
    int_range 1 3 >>= fun states ->
    int_range 1 3 >>= fun inputs ->
    int_range 1 3 >>= fun outputs -> gen_mealy_dims ~states ~inputs ~outputs)

let print_mealy m =
  Printf.sprintf "machine#%d(%d states,%d in,%d out)" (Mealy.encode m)
    m.Mealy.states m.Mealy.inputs m.Mealy.outputs

let arb_mealy = QCheck.make gen_mealy ~print:print_mealy

(* Machines over the xor codec's alphabets (3 world inputs, 2 symbol
   outputs) for the transcript differential. *)
let arb_codec_mealy =
  QCheck.make ~print:print_mealy
    QCheck.Gen.(
      int_range 1 2 >>= fun states ->
      gen_mealy_dims ~states ~inputs:3 ~outputs:2)

(* --- table lowering --------------------------------------------------- *)

let prop_step_matches =
  qtest "Table: compiled step = Mealy.step on every (state, input)"
    arb_mealy (fun m ->
      let t = Ctable.of_mealy m in
      let ok = ref true in
      for s = 0 to m.Mealy.states - 1 do
        for i = 0 to m.Mealy.inputs - 1 do
          if Ctable.step t s i <> Mealy.step m s i then ok := false;
          if Ctable.step_unsafe t s i <> Mealy.step m s i then ok := false
        done
      done;
      !ok)

let prop_run_matches =
  qtest "Table: compiled run = Mealy.run on random words"
    QCheck.(pair arb_mealy (list_of_size Gen.(int_bound 20) (int_bound 20)))
    (fun (m, word) ->
      let word = List.map (fun i -> i mod m.Mealy.inputs) word in
      Ctable.run (Ctable.of_mealy m) word = Mealy.run m word)

let prop_roundtrip =
  qtest "Table: to_mealy (of_mealy m) = m" arb_mealy (fun m ->
      Ctable.to_mealy (Ctable.of_mealy m) = m)

let prop_roundtrip_table =
  qtest "Table: of_mealy (to_mealy t) = t" arb_mealy (fun m ->
      let t = Ctable.of_mealy m in
      Ctable.of_mealy (Ctable.to_mealy t) = t)

(* --- compiled strategies ---------------------------------------------- *)

let read = Machine_user.read_world_int ~cap:3
let write = Machine_user.write_world_sym

let obs_of r w =
  { Io.User.from_server = Msg.Silence; from_world = Msg.Int w; round = r }

let prop_compiled_user_transcript =
  qtest "Compiled: compiled user = machine user on random observations"
    QCheck.(pair arb_codec_mealy (list_of_size Gen.(int_bound 30) (int_bound 5)))
    (fun (m, ws) ->
      let a = Strategy.Instance.create (Machine_user.user_of_mealy ~read ~write m) in
      let b = Strategy.Instance.create (Compiled.user_of_mealy ~read ~write m) in
      let rng = Rng.make 7 in
      List.for_all
        (fun (r, w) ->
          Strategy.Instance.step rng a (obs_of r w)
          = Strategy.Instance.step rng b (obs_of r w))
        (List.mapi (fun r w -> (r + 1, w)) ws))

let machines_2 = Mealy.enumerate ~states:2 ~inputs:2 ~outputs:2

let prop_cached_enum_equiv =
  qtest "Enum.cached: cached enumeration = plain enumeration"
    QCheck.(list_of_size Gen.(int_bound 40) (int_bound 300))
    (fun indices ->
      let cached, _lru = Enum.cached ~capacity:8 machines_2 in
      List.for_all
        (fun i ->
          Option.map Mealy.encode (Enum.get cached i)
          = Option.map Mealy.encode (Enum.get machines_2 i))
        indices)

(* --- the LRU itself --------------------------------------------------- *)

let prop_lru_computes_once =
  qtest "Lru: ample capacity computes each key exactly once"
    QCheck.(list_of_size Gen.(1 -- 50) (int_bound 9))
    (fun keys ->
      let lru = Lru.create ~capacity:16 in
      let computes = ref 0 in
      List.iter
        (fun k ->
          ignore
            (Lru.find_or_add lru k (fun k ->
                 incr computes;
                 k * k)))
        keys;
      let distinct = List.length (List.sort_uniq compare keys) in
      !computes = distinct
      && Lru.misses lru = distinct
      && Lru.hits lru + Lru.misses lru = List.length keys)

let prop_lru_bounded =
  qtest "Lru: length never exceeds capacity; capacity 0 never caches"
    QCheck.(pair (int_bound 4) (list_of_size Gen.(1 -- 60) (int_bound 20)))
    (fun (capacity, keys) ->
      let lru = Lru.create ~capacity in
      let computes = ref 0 in
      List.iter
        (fun k ->
          ignore
            (Lru.find_or_add lru k (fun k ->
                 incr computes;
                 k)))
        keys;
      Lru.length lru <= capacity
      && (capacity > 0 || (!computes = List.length keys && Lru.length lru = 0)))

let test_lru_eviction_order () =
  let lru = Lru.create ~capacity:2 in
  let get k = ignore (Lru.find_or_add lru k (fun k -> k)) in
  get 1;
  get 2;
  get 1;
  (* 1 refreshed: 2 is now the least recently used *)
  get 3;
  (* evicts 2 *)
  Alcotest.(check bool) "1 kept" true (Lru.mem lru 1);
  Alcotest.(check bool) "2 evicted" false (Lru.mem lru 2);
  Alcotest.(check bool) "3 present" true (Lru.mem lru 3);
  let hits, misses = (Lru.hits lru, Lru.misses lru) in
  Lru.clear lru;
  Alcotest.(check int) "cleared" 0 (Lru.length lru);
  Alcotest.(check (pair int int))
    "counters survive clear" (hits, misses)
    (Lru.hits lru, Lru.misses lru);
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Lru.create: negative capacity") (fun () ->
      ignore (Lru.create ~capacity:(-1)))

(* --- saturation regression (Mealy.count / Enum.append) ---------------- *)

let test_count_saturation () =
  (* 8 states x 8 inputs x 8 outputs: (8*8)^64 >> max_int. *)
  Alcotest.(check int) "count saturates" max_int
    (Mealy.count ~states:8 ~inputs:8 ~outputs:8);
  let e = Mealy.enumerate ~states:8 ~inputs:8 ~outputs:8 in
  Alcotest.(check (option int))
    "saturated class reports None, not max_int" None (Enum.cardinality e);
  Alcotest.(check bool) "indices still decode" true (Enum.get e 0 <> None);
  (* A saturating non-final layer would make every layer above it
     unreachable; historically enumerate_up_to truncated silently. *)
  Alcotest.(check bool) "enumerate_up_to refuses a saturating layer" true
    (try
       ignore (Mealy.enumerate_up_to ~max_states:9 ~inputs:8 ~outputs:8);
       false
     with Invalid_argument _ -> true)

let test_append_overflow () =
  let huge = Enum.make ~name:"huge" ~card:max_int (fun _ -> Some 0) in
  let one = Enum.make ~name:"one" ~card:1 (fun _ -> Some 1) in
  Alcotest.(check (option int))
    "overflowing append is uncountable" None
    (Enum.cardinality (Enum.append huge one));
  Alcotest.(check (option int))
    "small append still counts" (Some 2)
    (Enum.cardinality (Enum.append one one))

(* --- the xor toy goal (as in test_machine_user) ----------------------- *)

let streak_needed = 6

let xor_world b =
  World.make
    ~name:(Printf.sprintf "xor-world(b=%d)" b)
    ~init:(fun () -> (0, 0, false))
    ~step:(fun _rng (round, streak, done_) (obs : Io.World.obs) ->
      let round = round + 1 in
      let expected = (round + b) mod 2 in
      let streak =
        match obs.from_user with
        | Msg.Sym s when s = expected -> streak + 1
        | Msg.Sym _ -> 0
        | _ -> streak
      in
      let done_ = done_ || streak >= streak_needed in
      let announce = if done_ then 2 else round mod 2 in
      ((round, streak, done_), Io.World.say_user (Msg.Int announce)))
    ~view:(fun (_, _, done_) -> Msg.Int (if done_ then 2 else 0))

let xor_goal b =
  Goal.make
    ~name:(Printf.sprintf "xor(b=%d)" b)
    ~worlds:[ xor_world b ]
    ~referee:(Referee.finite "converged" (fun views -> List.mem (Msg.Int 2) views))

let idle_server =
  Strategy.stateless ~name:"idle" (fun (_ : Io.Server.obs) -> Io.Server.silent)

let sensing =
  Sensing.of_predicate ~name:"done" (fun view ->
      match View.latest view with
      | Some { View.from_world = Msg.Int 2; _ } -> true
      | Some _ | None -> false)

let machines_1 = Mealy.enumerate_up_to ~max_states:1 ~inputs:3 ~outputs:2
let uncompiled_class () = Machine_user.user_class ~read ~write machines_1

let compiled_class ~capacity () =
  fst (Compiled.cached_user_class ~capacity ~read ~write machines_1)

let run_universal ~make_user ~b ~seed =
  let stats = Universal.new_stats () in
  let user = make_user ~stats in
  let outcome, history =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:600 ())
      ~goal:(xor_goal b) ~user ~server:idle_server (Rng.make seed)
  in
  (outcome.Outcome.achieved, stats.Universal.current_index, history)

(* --- universal constructions: compiled = uncompiled ------------------- *)

let prop_finite_differential =
  qtest ~count:8 "Universal.finite: compiled+cached class = uncompiled class"
    QCheck.(pair (int_bound 1) (1 -- 1000))
    (fun (b, seed) ->
      let go enum =
        run_universal ~b ~seed ~make_user:(fun ~stats ->
            Universal.finite ~stats ~enum ~sensing ())
      in
      let ((achieved, _, _) as plain) = go (uncompiled_class ()) in
      achieved && plain = go (compiled_class ~capacity:8 ()))

let prop_compact_differential =
  qtest ~count:6 "Universal.compact: compiled+cached class = uncompiled class"
    QCheck.(pair (int_bound 1) (1 -- 1000))
    (fun (b, seed) ->
      let go enum =
        run_universal ~b ~seed ~make_user:(fun ~stats ->
            Universal.compact ~grace:20 ~stats ~enum ~sensing ())
      in
      go (uncompiled_class ()) = go (compiled_class ~capacity:8 ()))

let prop_cache_eviction_differential =
  (* Capacity 0 (always miss) and 1 (evicting on every candidate switch,
     i.e. mid-enumeration) must be behaviourally invisible. *)
  qtest ~count:6 "Universal.finite: cache sizes 0 and 1 change nothing"
    QCheck.(pair (int_bound 1) (1 -- 1000))
    (fun (b, seed) ->
      let go enum =
        run_universal ~b ~seed ~make_user:(fun ~stats ->
            Universal.finite ~stats ~enum ~sensing ())
      in
      let plain = go (uncompiled_class ()) in
      plain = go (compiled_class ~capacity:0 ())
      && plain = go (compiled_class ~capacity:1 ()))

let race_schedule () = Levin.round_robin ~budget:40 ~width:8 ()

let race ~enum ~b ~seed ~jobs =
  Universal.finite_par ~schedule:(race_schedule ()) ~max_slots:8 ~jobs ~enum
    ~sensing ~goal:(xor_goal b) ~server:idle_server ~seed ()

(* Everything but slots_probed, which is documented as
   scheduling-dependent above jobs = 1. *)
let race_fields = function
  | None -> None
  | Some (r : Universal.race) ->
      Some
        ( r.Universal.winner_slot,
          r.Universal.winner_index,
          r.Universal.winner_budget,
          r.Universal.winner_rounds,
          r.Universal.history )

let prop_finite_par_differential =
  qtest ~count:5
    "Universal.finite_par: compiled+cached = uncompiled at jobs 1/2/4"
    QCheck.(pair (int_bound 1) (1 -- 1000))
    (fun (b, seed) ->
      let base = race_fields (race ~enum:(uncompiled_class ()) ~b ~seed ~jobs:1) in
      base <> None
      && List.for_all
           (fun jobs ->
             race_fields (race ~enum:(compiled_class ~capacity:8 ()) ~b ~seed ~jobs)
             = base)
           [ 1; 2; 4 ])

(* --- warm-start store ------------------------------------------------- *)

let arb_entry =
  QCheck.(
    map
      (fun ((c, e), (i, bu)) ->
        { Warm.server_class = c; enum = e; index = i; budget = bu })
      (pair
         (pair small_printable_string small_printable_string)
         (pair (int_bound 1000) (1 -- 1000))))

let prop_warm_roundtrip =
  qtest ~count:60 "Warm: save/load JSONL roundtrip"
    QCheck.(list_of_size Gen.(int_bound 10) arb_entry)
    (fun entries ->
      let path = Filename.temp_file "warm_rt" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Warm.save path entries;
          Warm.load path = Ok entries))

let prop_warm_record_lookup =
  qtest ~count:60 "Warm: record then lookup; re-record replaces, not grows"
    QCheck.(pair (list_of_size Gen.(int_bound 6) arb_entry) arb_entry)
    (fun (entries, e) ->
      let once = Warm.record entries e in
      let bumped = { e with Warm.budget = e.Warm.budget + 1 } in
      let twice = Warm.record once bumped in
      Warm.lookup once ~server_class:e.Warm.server_class ~enum:e.Warm.enum
      = Some e
      && List.length twice = List.length once
      && Warm.lookup twice ~server_class:e.Warm.server_class ~enum:e.Warm.enum
         = Some bumped)

let prop_levin_hinted =
  qtest ~count:50 "Levin.hinted: prepends hints; rejects invalid ones"
    QCheck.(list_of_size Gen.(int_bound 5) (pair (int_bound 50) (1 -- 50)))
    (fun raw ->
      let hints = List.map (fun (i, b) -> { Levin.index = i; budget = b }) raw in
      let sched = Levin.hinted ~hints (Levin.schedule ()) in
      List.of_seq (Seq.take (List.length hints) sched) = hints
      && (try
            let (_ : Levin.slot Seq.t) =
              Levin.hinted
                ~hints:[ { Levin.index = -1; budget = 3 } ]
                (Levin.schedule ())
            in
            false
          with Invalid_argument _ -> true)
      && (try
            let (_ : Levin.slot Seq.t) =
              Levin.hinted
                ~hints:[ { Levin.index = 0; budget = 0 } ]
                (Levin.schedule ())
            in
            false
          with Invalid_argument _ -> true))

let test_warm_corrupt_and_missing () =
  let path = Filename.temp_file "warm_bad" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "{\"class\":\"a\",\"enum\":\"b\",\"index\":1,\"budget\":2}\nnot json\n";
      close_out oc;
      match Warm.load path with
      | Error e ->
          Alcotest.(check bool) "error names the line" true
            (contains ~affix:"line 2" e)
      | Ok _ -> Alcotest.fail "corrupt store loaded");
  match Warm.load "/nonexistent/warm.jsonl" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing store loaded"

(* Run [f] under a capturing sink; return its result plus every
   Trace.Warm event's (accepted, index). *)
let collect_warm_events f =
  let events = ref [] in
  let result =
    Trace.with_sink
      (function
        | Trace.Warm { accepted; index; _ } ->
            events := (accepted, index) :: !events
        | _ -> ())
      f
  in
  (result, List.rev !events)

let test_warm_hint_validation () =
  let enum = compiled_class ~capacity:4 () in
  let entry index budget =
    { Warm.server_class = "xor"; enum = Enum.name enum; index; budget }
  in
  (* Valid entry: one hint slot, accepted event. *)
  let hints, evs =
    collect_warm_events (fun () ->
        Warm.hints ~enum ~server_class:"xor" (Ok [ entry 3 17 ]))
  in
  Alcotest.(check bool) "hint applied" true
    (hints = [ { Levin.index = 3; budget = 17 } ]);
  Alcotest.(check (list (pair bool int))) "accepted event" [ (true, 3) ] evs;
  (* Stale index (the class has 8 candidates): rejected, cold fallback. *)
  let hints, evs =
    collect_warm_events (fun () ->
        Warm.hints ~enum ~server_class:"xor" (Ok [ entry 999 17 ]))
  in
  Alcotest.(check bool) "stale rejected" true (hints = []);
  Alcotest.(check (list (pair bool int))) "rejected event" [ (false, 999) ] evs;
  (* Bad budget: rejected. *)
  let hints, evs =
    collect_warm_events (fun () ->
        Warm.hints ~enum ~server_class:"xor" (Ok [ entry 3 0 ]))
  in
  Alcotest.(check bool) "bad budget rejected" true (hints = []);
  Alcotest.(check (list (pair bool int))) "bad-budget event" [ (false, 3) ] evs;
  (* Load error: cold start, index -1 in the event. *)
  let hints, evs =
    collect_warm_events (fun () ->
        Warm.hints ~enum ~server_class:"xor" (Error "warm.jsonl: line 2: bad"))
  in
  Alcotest.(check bool) "error store is a cold start" true (hints = []);
  Alcotest.(check (list (pair bool int))) "error event" [ (false, -1) ] evs;
  (* Plain miss: silent cold start. *)
  let hints, evs =
    collect_warm_events (fun () ->
        Warm.hints ~enum ~server_class:"other" (Ok [ entry 3 17 ]))
  in
  Alcotest.(check bool) "miss is silent" true (hints = [] && evs = [])

let test_warm_replay_race () =
  (* A cold race's outcome, recorded with of_race and replayed through
     hinted_schedule, wins at slot 0 with the same candidate. *)
  let enum = compiled_class ~capacity:8 () in
  match race ~enum ~b:1 ~seed:3 ~jobs:2 with
  | None -> Alcotest.fail "cold race found no winner"
  | Some cold -> (
      let entry = Warm.of_race ~server_class:"xor/b1" ~enum cold in
      let path = Filename.temp_file "warm_replay" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Warm.save path [ entry ];
          let store = Warm.load path in
          Alcotest.(check bool) "store loads" true (store = Ok [ entry ]);
          let schedule =
            Warm.hinted_schedule ~schedule:(race_schedule ()) ~enum
              ~server_class:"xor/b1" store
          in
          match
            Universal.finite_par ~schedule ~max_slots:9 ~jobs:2 ~enum ~sensing
              ~goal:(xor_goal 1) ~server:idle_server ~seed:3 ()
          with
          | None -> Alcotest.fail "warm race found no winner"
          | Some warm ->
              Alcotest.(check int) "same winning candidate"
                cold.Universal.winner_index warm.Universal.winner_index;
              Alcotest.(check int) "won at the hint slot" 0
                warm.Universal.winner_slot))

(* --- the cache-size knob ---------------------------------------------- *)

let test_cache_capacity_env () =
  let set v = Unix.putenv "GOALCOM_COMPILE_CACHE" v in
  let rejects v =
    set v;
    try
      ignore (Compiled.cache_capacity ());
      false
    with Invalid_argument _ -> true
  in
  set "7";
  Alcotest.(check int) "knob read" 7 (Compiled.cache_capacity ());
  set " 12 ";
  Alcotest.(check int) "whitespace trimmed" 12 (Compiled.cache_capacity ());
  set "0";
  Alcotest.(check int) "0 disables" 0 (Compiled.cache_capacity ());
  Alcotest.(check bool) "negative rejected" true (rejects "-3");
  Alcotest.(check bool) "garbage rejected" true (rejects "many");
  Alcotest.(check bool) "empty rejected" true (rejects "")

(* --- table-driven sensors and referees -------------------------------- *)

(* The 2-state "seen a 1 yet?" DFA: emits 1 once a 1 has been read,
   which the sensor and both referees key on. *)
let seen1 =
  Mealy.make ~states:2 ~inputs:2 ~outputs:2
    ~next:[| [| 0; 1 |]; [| 1; 1 |] |]
    ~out:[| [| 0; 1 |]; [| 1; 1 |] |]

let is1 = function Msg.Int 1 | Msg.Sym 1 -> true | _ -> false

let history_of syms =
  let round r w =
    {
      History.Round.index = r;
      user_to_server = Msg.Silence;
      user_to_world = Msg.Silence;
      server_to_user = Msg.Silence;
      server_to_world = Msg.Silence;
      world_to_user = Msg.Int w;
      world_to_server = Msg.Silence;
      world_view = Msg.Int w;
      user_halted = false;
    }
  in
  History.make ~initial_world_view:(Msg.Int 0)
    (List.mapi (fun i w -> round (i + 1) w) syms)

let prop_table_sensor =
  qtest ~count:60 "Table.sensor = native incremental sensor"
    QCheck.(list_of_size Gen.(int_bound 25) (int_bound 1))
    (fun syms ->
      let table_sensor =
        Ctable.sensor ~name:"seen1/table"
          ~read:(fun e -> if is1 e.View.from_world then 1 else 0)
          ~accept:(fun o -> o = 1)
          (Ctable.of_mealy seen1)
      in
      let reference =
        Sensing.incremental ~name:"seen1/ref"
          ~init:(fun () -> (false, Sensing.Negative))
          ~step:(fun seen e ->
            let seen = seen || is1 e.View.from_world in
            (seen, if seen then Sensing.Positive else Sensing.Negative))
      in
      let h = history_of syms in
      Sensing.verdicts table_sensor h = Sensing.verdicts reference h)

let prop_table_referees =
  qtest ~count:60 "Table referees = native incremental referees"
    QCheck.(list_of_size Gen.(int_bound 25) (int_bound 1))
    (fun syms ->
      let read m = if is1 m then 1 else 0 in
      let accept o = o = 1 in
      let t = Ctable.of_mealy seen1 in
      let ref_incr ctor name =
        ctor name
          ~init:(fun v0 ->
            let seen = is1 v0 in
            (seen, Referee.verdict_of_bool seen))
          ~step:(fun seen v ->
            let seen = seen || is1 v in
            (seen, Referee.verdict_of_bool seen))
      in
      let h = history_of syms in
      Referee.violations (Ctable.finite_referee ~name:"t" ~read ~accept t) h
      = Referee.violations (ref_incr Referee.finite_incremental "r") h
      && Referee.violations (Ctable.compact_referee ~name:"t" ~read ~accept t) h
         = Referee.violations (ref_incr Referee.compact_incremental "r") h)

(* --- registration ----------------------------------------------------- *)

let () =
  Alcotest.run "compile"
    [
      ( "table",
        [
          prop_step_matches;
          prop_run_matches;
          prop_roundtrip;
          prop_roundtrip_table;
          prop_table_sensor;
          prop_table_referees;
        ] );
      ( "compiled",
        [
          prop_compiled_user_transcript;
          prop_cached_enum_equiv;
          Alcotest.test_case "cache capacity knob" `Quick test_cache_capacity_env;
        ] );
      ( "lru",
        [
          prop_lru_computes_once;
          prop_lru_bounded;
          Alcotest.test_case "eviction order & validation" `Quick
            test_lru_eviction_order;
        ] );
      ( "saturation",
        [
          Alcotest.test_case "Mealy.count saturation is explicit" `Quick
            test_count_saturation;
          Alcotest.test_case "Enum.append overflow is explicit" `Quick
            test_append_overflow;
        ] );
      ( "universal",
        [
          prop_finite_differential;
          prop_compact_differential;
          prop_cache_eviction_differential;
          prop_finite_par_differential;
        ] );
      ( "warm",
        [
          prop_warm_roundtrip;
          prop_warm_record_lookup;
          prop_levin_hinted;
          Alcotest.test_case "corrupt & missing stores" `Quick
            test_warm_corrupt_and_missing;
          Alcotest.test_case "hint validation & tracing" `Quick
            test_warm_hint_validation;
          Alcotest.test_case "race replay from a warm hint" `Quick
            test_warm_replay_race;
        ] );
    ]
