open Goalcom
open Goalcom_automata
open Goalcom_servers

let min_alphabet = Grid.num_directions

let check_alphabet alphabet =
  if alphabet < min_alphabet then
    invalid_arg "Maze: alphabet must have at least 4 symbols"

let driver ~alphabet =
  check_alphabet alphabet;
  Strategy.stateless ~name:"maze-driver" (fun (obs : Io.Server.obs) ->
      match obs.from_user with
      | Msg.Sym d when d >= 0 && d < Grid.num_directions ->
          Io.Server.say_world (Msg.Sym d)
      | _ -> Io.Server.silent)

let server ~alphabet d = Transform.with_dialect d (driver ~alphabet)

let server_class ~alphabet dialects =
  Transform.dialect_class ~base:(driver ~alphabet) dialects

type scenario = { grid : Grid.t; start : Grid.pos; target : Grid.pos }

let scenario ?blocked ~width ~height ~start ~target () =
  let grid = Grid.make ~width ~height ?blocked () in
  if not (Grid.is_free grid start) then invalid_arg "Maze.scenario: bad start";
  if not (Grid.is_free grid target) then invalid_arg "Maze.scenario: bad target";
  (match Grid.bfs_path grid start target with
  | Some _ -> ()
  | None -> invalid_arg "Maze.scenario: target unreachable");
  { grid; start; target }

let world_of_scenario s =
  World.make
    ~name:
      (Printf.sprintf "maze-world(%dx%d,%d walls)" s.grid.Grid.width
         s.grid.Grid.height
         (List.length s.grid.Grid.blocked))
    ~init:(fun () -> s.start)
    ~step:(fun _rng pos (obs : Io.World.obs) ->
      let pos =
        match obs.from_server with
        | Msg.Sym d when d >= 0 && d < Grid.num_directions ->
            Grid.move s.grid pos d
        | _ -> pos
      in
      (pos, Io.World.say_user (Codec.pos_pair pos s.target)))
    ~view:(fun pos -> Codec.pos_pair pos s.target)

let arrived view =
  match Codec.pos_pair_opt view with
  | Some (pos, target) -> pos = target
  | None -> false

let referee = Referee.finite_exists "target-was-reached" arrived

let goal ~scenarios ~alphabet () =
  check_alphabet alphabet;
  if scenarios = [] then invalid_arg "Maze.goal: no scenarios";
  Goal.make
    ~name:(Printf.sprintf "maze(alphabet=%d)" alphabet)
    ~worlds:(List.map world_of_scenario scenarios)
    ~referee

(* The informed user plans a BFS path from the broadcast position and
   emits it one direction per round; when the plan is exhausted and the
   (lagging) broadcast still shows the agent away from the target it
   replans — which also recovers from moves garbled by earlier
   wrong-dialect sessions of a universal run. *)
type phase = Planless | Executing of int list | Settling of int

let settle_patience = 3

let informed_user ~alphabet ~scenario:s d =
  check_alphabet alphabet;
  let send dir = Io.User.say_server (Dialect_msg.encode d (Msg.Sym dir)) in
  Strategy.make
    ~name:(Printf.sprintf "maze-user@%s" (Format.asprintf "%a" Dialect.pp d))
    ~init:(fun () -> Planless)
    ~step:(fun _rng phase (obs : Io.User.obs) ->
      let info = Codec.pos_pair_opt obs.from_world in
      match info with
      | Some (pos, target) when pos = target -> (phase, Io.User.halt_act)
      | _ -> begin
          match (phase, info) with
          | Planless, None -> (Planless, Io.User.silent)
          | Planless, Some (pos, target) -> begin
              match Grid.bfs_path s.grid pos target with
              | Some (dir :: rest) -> (Executing rest, send dir)
              | Some [] | None -> (Planless, Io.User.silent)
            end
          | Executing (dir :: rest), _ -> (Executing rest, send dir)
          | Executing [], _ -> (Settling 0, Io.User.silent)
          | Settling k, _ ->
              if k >= settle_patience then (Planless, Io.User.silent)
              else (Settling (k + 1), Io.User.silent)
        end)

let user_class ~alphabet ~scenario:s dialects =
  Enum.map
    ~name:(Printf.sprintf "maze-users(%s)" (Enum.name dialects))
    (fun d -> informed_user ~alphabet ~scenario:s d)
    dialects

(* Bounded-window scan: cheap per round, still safe (a positive means
   the target was reached) and viable (arrival is acted on within the
   window). *)
let sensing_window = 12

let sensing =
  Sensing.of_recent ~name:"target-reached" ~window:sensing_window (fun e ->
      arrived e.View.from_world)

let universal_user ?schedule ?stats ~alphabet ~scenario:s dialects =
  Universal.finite ?schedule ?stats
    ~enum:(user_class ~alphabet ~scenario:s dialects)
    ~sensing ()
