(** Compact human-readable rendering of trace events, one line each:
    run/round boundaries flush left, everything else indented under its
    round.  For terminal demos and failure messages; the machine format
    is {!Jsonl}. *)

open Goalcom

val pp_event : Format.formatter -> Trace.event -> unit

val sink : Format.formatter -> Trace.sink
(** Prints each event on its own line (flushing via ["@."]). *)

val pp_events : Format.formatter -> Trace.event list -> unit
