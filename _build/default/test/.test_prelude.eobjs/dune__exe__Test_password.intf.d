test/test_password.mli:
