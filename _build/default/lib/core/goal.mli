(** Goals of communication: a (non-deterministic) world plus a referee.

    "To fix a goal of communication, we take the world's strategy as
    fixed, and fix a set of acceptable sequences of world states" (§2).
    The world's single non-deterministic choice of a probabilistic
    strategy is modelled by a non-empty list of worlds: validators and
    experiment harnesses quantify over the list, a single execution
    selects one element. *)

type t = private {
  name : string;
  worlds : World.t list;  (** the non-deterministic choices; non-empty *)
  referee : Referee.t;
}

val make : name:string -> worlds:World.t list -> referee:Referee.t -> t
(** @raise Invalid_argument if [worlds] is empty. *)

val name : t -> string
val is_finite : t -> bool

val world : ?choice:int -> t -> World.t
(** The [choice]-th world (default 0, modulo the number of worlds — so a
    seed can double as the non-deterministic choice). *)

val num_worlds : t -> int
