test/test_channel.ml: Alcotest Channel Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude Goalcom_servers Io List Msg Outcome Printf Printing Rng Strategy
