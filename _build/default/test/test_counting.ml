(* Tests for the counting-delegation goal: interactive verification of
   a #SAT claim inside the model. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers
open Goalcom_goals

let alphabet = 4
let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects i
let params = { Counting.num_vars = 5; num_clauses = 8; clause_len = 3 }
let goal = Counting.goal ~params ~alphabet ()

let run ~user ~server ?(horizon = 600) seed =
  Exec.run_outcome ~config:(Exec.config ~horizon ()) ~goal ~user ~server
    (Rng.make seed)

let test_verifier_with_honest_prover () =
  List.iter
    (fun i ->
      let user = Counting.verifier_user ~params ~alphabet (dialect i) in
      let server = Counting.server ~alphabet (dialect i) in
      let outcome, history = run ~user ~server (10 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "dialect %d achieves" i)
        true outcome.Outcome.achieved;
      (* A clean accepted proof needs exactly one claim request. *)
      Alcotest.(check int)
        (Printf.sprintf "dialect %d: one protocol run" i)
        1
        (Counting.claim_requests history);
      (* Protocol length: claim + n rounds + report, with 2-round
         message latency each. *)
      Alcotest.(check bool) "reasonably fast" true (History.length history < 50))
    (Listx.range 0 alphabet)

let test_wrong_dialect_fails () =
  let user = Counting.verifier_user ~params ~alphabet (dialect 1) in
  let server = Counting.server ~alphabet (dialect 0) in
  let outcome, _ = run ~user ~server 20 in
  Alcotest.(check bool) "fails" false outcome.Outcome.achieved

let test_universal_verifier () =
  List.iter
    (fun i ->
      let user = Counting.universal_user ~params ~alphabet dialects in
      let server = Counting.server ~alphabet (dialect i) in
      let outcome, _ = run ~user ~server ~horizon:4000 (30 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "universal vs dialect %d" i)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_lying_prover_rejected_forever () =
  let user = Counting.verifier_user ~params ~alphabet (dialect 0) in
  let server =
    Transform.with_dialect (dialect 0) (Counting.lying_prover ~alphabet ~offset:3)
  in
  let outcome, history = run ~user ~server ~horizon:400 40 in
  Alcotest.(check bool) "never achieved" false outcome.Outcome.achieved;
  (* Every protocol run is rejected at round one and restarted. *)
  Alcotest.(check bool) "many rejected runs" true
    (Counting.claim_requests history > 5)

let test_tampering_prover_rejected () =
  List.iter
    (fun tamper_round ->
      let user = Counting.verifier_user ~params ~alphabet (dialect 0) in
      let server =
        Transform.with_dialect (dialect 0)
          (Counting.tampering_prover ~alphabet ~tamper_round ~offset:5)
      in
      let outcome, history = run ~user ~server ~horizon:800 (50 + tamper_round) in
      Alcotest.(check bool)
        (Printf.sprintf "tamper@%d never achieved" tamper_round)
        false outcome.Outcome.achieved;
      Alcotest.(check bool) "restarts" true (Counting.claim_requests history > 1))
    [ 1; 3; 5 ]

let test_cheating_provers_unhelpful () =
  let user_class = Counting.user_class ~params ~alphabet dialects in
  List.iter
    (fun (label, server) ->
      let verdict =
        Helpful.check
          ~config:(Exec.config ~horizon:400 ())
          ~trials:1 ~goal ~user_class ~server (Rng.make 60)
      in
      Alcotest.(check bool) (label ^ " unhelpful") false verdict.Helpful.helpful)
    [
      ( "liar",
        Transform.with_dialect (dialect 0) (Counting.lying_prover ~alphabet ~offset:1) );
      ( "tamperer",
        Transform.with_dialect (dialect 0)
          (Counting.tampering_prover ~alphabet ~tamper_round:2 ~offset:7) );
    ]

let test_honest_prover_helpful () =
  let verdict =
    Helpful.check
      ~config:(Exec.config ~horizon:400 ())
      ~trials:1 ~goal
      ~user_class:(Counting.user_class ~params ~alphabet dialects)
      ~server:(Counting.server ~alphabet (dialect 2))
      (Rng.make 61)
  in
  Alcotest.(check bool) "helpful" true verdict.Helpful.helpful;
  Alcotest.(check (option int)) "witness is verifier 2" (Some 2)
    verdict.Helpful.witness

let test_sensing_safe () =
  let users = Enum.to_list (Counting.user_class ~params ~alphabet dialects) in
  let servers =
    Enum.to_list (Counting.server_class ~alphabet dialects)
    @ [
        Transform.with_dialect (dialect 0) (Counting.lying_prover ~alphabet ~offset:2);
      ]
  in
  let report =
    Sensing.check_safety_finite
      ~config:(Exec.config ~horizon:300 ())
      ~goal ~users ~servers Counting.sensing (Rng.make 70)
  in
  Alcotest.(check bool) "safety" true report.Sensing.holds

let test_validation () =
  Alcotest.check_raises "zero offset"
    (Invalid_argument "Counting.lying_prover: zero offset") (fun () ->
      ignore (Counting.lying_prover ~alphabet ~offset:0));
  Alcotest.check_raises "params"
    (Invalid_argument "Counting: num_vars must be in 1..12") (fun () ->
      ignore (Counting.world ~params:{ params with Counting.num_vars = 20 } ()))

let () =
  Alcotest.run "counting"
    [
      ( "counting",
        [
          Alcotest.test_case "verifier with honest prover" `Quick test_verifier_with_honest_prover;
          Alcotest.test_case "wrong dialect fails" `Quick test_wrong_dialect_fails;
          Alcotest.test_case "universal verifier" `Quick test_universal_verifier;
          Alcotest.test_case "lying prover rejected" `Quick test_lying_prover_rejected_forever;
          Alcotest.test_case "tampering prover rejected" `Quick test_tampering_prover_rejected;
          Alcotest.test_case "cheating provers unhelpful" `Quick test_cheating_provers_unhelpful;
          Alcotest.test_case "honest prover helpful" `Quick test_honest_prover_helpful;
          Alcotest.test_case "sensing safe" `Quick test_sensing_safe;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
