lib/goals/transfer.ml: Codec Dialect Dialect_msg Enum Format Goal Goalcom Goalcom_automata Goalcom_servers Io List Msg Printf Referee Sensing Strategy Transform Universal View World
