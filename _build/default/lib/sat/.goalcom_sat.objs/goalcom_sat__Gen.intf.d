lib/sat/gen.mli: Cnf Goalcom_prelude Rng
