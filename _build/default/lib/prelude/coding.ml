let check_nonneg name n =
  if n < 0 then invalid_arg (name ^ ": negative input")

(* The largest s with s*(s+1)/2 + s representable in an OCaml int. *)
let max_pair_sum = 3_037_000_498

(* Triangle number without overflowing the intermediate product (valid
   for w <= max_pair_sum). *)
let tri w = if w land 1 = 0 then w / 2 * (w + 1) else w * ((w + 1) / 2)

let pair x y =
  check_nonneg "Coding.pair" x;
  check_nonneg "Coding.pair" y;
  if x > max_pair_sum - y then invalid_arg "Coding.pair: overflow";
  tri (x + y) + y

(* The largest value in the image of [pair]: pair max_pair_sum 0 ..
   pair 0 max_pair_sum all fit; beyond this there is no preimage. *)
let max_pair_code = tri max_pair_sum + max_pair_sum

let unpair z =
  check_nonneg "Coding.unpair" z;
  if z > max_pair_code then
    invalid_arg "Coding.unpair: code outside the supported domain";
  (* w = floor((sqrt(8z+1)-1)/2).  Computed as sqrt(2z) to stay clear of
     integer overflow for z near max_int, clamped into the valid range,
     then corrected for float error (a couple of iterations at most). *)
  let w = ref (int_of_float (sqrt (2. *. float_of_int z))) in
  if !w < 0 then w := 0;
  if !w > max_pair_sum then w := max_pair_sum;
  while !w > 0 && tri !w > z do
    decr w
  done;
  while !w < max_pair_sum && tri (!w + 1) <= z do
    incr w
  done;
  let y = z - tri !w in
  (!w - y, y)

let triple x y z = pair x (pair y z)

let untriple n =
  let x, yz = unpair n in
  let y, z = unpair yz in
  (x, y, z)

let encode_list = function
  | [] -> 0
  | xs ->
      let body =
        match List.rev xs with
        | [] -> assert false
        | last :: rest -> List.fold_left (fun acc x -> pair x acc) last rest
      in
      1 + pair (List.length xs - 1) body

let decode_list n =
  check_nonneg "Coding.decode_list" n;
  if n = 0 then []
  else begin
    let len_minus_1, body = unpair (n - 1) in
    if len_minus_1 >= 1_000_000 then
      invalid_arg "Coding.decode_list: code outside the supported domain";
    let rec go k body =
      if k = 0 then [ body ]
      else begin
        let x, rest = unpair body in
        x :: go (k - 1) rest
      end
    in
    go len_minus_1 body
  end

let saturating_mul a b = if a <> 0 && b > max_int / a then max_int else a * b
let tuple_space ~radices = Array.fold_left saturating_mul 1 radices

let encode_tuple ~radices digits =
  if Array.length radices <> Array.length digits then
    invalid_arg "Coding.encode_tuple: length mismatch";
  Array.iteri
    (fun i d ->
      if d < 0 || d >= radices.(i) then
        invalid_arg "Coding.encode_tuple: digit out of range")
    digits;
  (* Little-endian mixed radix: digit 0 is the least significant. *)
  let code = ref 0 in
  for i = Array.length digits - 1 downto 0 do
    code := (!code * radices.(i)) + digits.(i)
  done;
  !code

let decode_tuple ~radices code =
  if code < 0 || code >= tuple_space ~radices then
    invalid_arg "Coding.decode_tuple: code out of range";
  let n = Array.length radices in
  let digits = Array.make n 0 in
  let rest = ref code in
  for i = 0 to n - 1 do
    digits.(i) <- !rest mod radices.(i);
    rest := !rest / radices.(i)
  done;
  digits
