(** List helpers used across the library. *)

val range : int -> int -> int list
(** [range lo hi] is [lo; lo+1; ...; hi-1] ([] when [hi <= lo]). *)

val take : int -> 'a list -> 'a list
(** First [n] elements (all of them if shorter). *)

val drop : int -> 'a list -> 'a list

val last : 'a list -> 'a
(** @raise Invalid_argument on []. *)

val last_opt : 'a list -> 'a option

val sum_int : int list -> int
val sum_float : float list -> float

val count : ('a -> bool) -> 'a list -> int

val find_index : ('a -> bool) -> 'a list -> int option
(** Index of the first element satisfying the predicate. *)

val transpose : 'a list list -> 'a list list
(** Transpose a rectangular list of lists.
    @raise Invalid_argument if rows have unequal lengths. *)

val windows : int -> 'a list -> 'a list list
(** [windows k xs] is all contiguous sublists of length [k].
    @raise Invalid_argument if [k <= 0]. *)

val unfold : ('s -> ('a * 's) option) -> 's -> 'a list
(** Anamorphism: build a list from a seed. *)

val iterate : int -> ('a -> 'a) -> 'a -> 'a list
(** [iterate n f x] is [[x; f x; f (f x); ...]] of length [n+1]. *)
