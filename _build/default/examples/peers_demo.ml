(* The symmetric setting (the paper's footnote): two user-role peers,
   each treating the other as its server.  A universal initiator adapts
   to a fixed responder whose greeting dialect it does not know.

   Run with:  dune exec examples/peers_demo.exe *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_servers

let greet_cmd = 0
let alphabet = 5

let world =
  World.make ~name:"salon"
    ~init:(fun () -> (false, false))
    ~step:(fun _rng (a, b) (obs : Io.World.obs) ->
      let a = a || obs.from_user = Msg.Text "greetings" in
      let b = b || obs.from_server = Msg.Text "greetings" in
      ( (a, b),
        Io.World.broadcast
          (Msg.Int (match (a, b) with true, true -> 2 | false, false -> 0 | _ -> 1)) ))
    ~view:(fun (a, b) -> Msg.Int (match (a, b) with true, true -> 2 | false, false -> 0 | _ -> 1))

let goal =
  Goal.make ~name:"mutual-greeting" ~worlds:[ world ]
    ~referee:(Referee.finite "both-greeted" (fun views -> List.mem (Msg.Int 2) views))

let initiator d =
  let hello = Dialect_msg.encode d (Msg.Sym greet_cmd) in
  Strategy.make
    ~name:(Printf.sprintf "initiator@%s" (Format.asprintf "%a" Dialect.pp d))
    ~init:(fun () -> ())
    ~step:(fun _rng () (obs : Io.User.obs) ->
      if obs.from_world = Msg.Int 2 then ((), Io.User.halt_act)
      else if Dialect_msg.decode d obs.from_server = Msg.Sym greet_cmd then
        ((), { Io.User.to_server = hello; to_world = Msg.Text "greetings"; halt = false })
      else ((), Io.User.say_server hello))

let responder d =
  let hello = Dialect_msg.encode d (Msg.Sym greet_cmd) in
  Strategy.stateless
    ~name:(Printf.sprintf "responder@%s" (Format.asprintf "%a" Dialect.pp d))
    (fun (obs : Io.User.obs) ->
      if Dialect_msg.decode d obs.from_server = Msg.Sym greet_cmd then
        { Io.User.to_server = hello; to_world = Msg.Text "greetings"; halt = false }
      else Io.User.silent)

let sensing =
  Sensing.of_predicate ~name:"both-done" (fun view ->
      match View.latest view with
      | Some e -> e.View.from_world = Msg.Int 2
      | None -> false)

let () =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  Format.printf
    "two peers must exchange greetings; the responder's dialect is unknown.@.@.";
  List.iter
    (fun i ->
      let enum = Enum.map ~name:"initiators" initiator dialects in
      let universal = Universal.finite ~enum ~sensing () in
      let outcome, history =
        Symmetric.run_peers
          ~config:(Exec.config ~horizon:2000 ())
          ~goal ~peer_a:universal
          ~peer_b:(responder (Enum.get_exn dialects i))
          (Rng.make (7 + i))
      in
      Format.printf
        "responder dialect %d: greeted=%b in %3d rounds@." i
        outcome.Outcome.achieved (History.length history))
    (Listx.range 0 alphabet);
  Format.printf
    "@.the reduction: peer B simply runs in the engine's server slot@.";
  Format.printf "(Symmetric.as_server), exactly as the paper's footnote suggests.@."
