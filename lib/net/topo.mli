(** Topology goals: end-to-end delivery through an unknown network.

    The server is the switch fabric of a directed graph whose edges
    carry payload symbols through per-edge Mealy machines ({!Link}):
    a clean edge forwards the payload intact, a scrambler relabels it,
    a stuck edge destroys it.  The world holds one packet — a node and
    the payload symbol it currently carries, plus every edge machine's
    state — and moves it along the out-edge the server names.  The goal
    is achieved when the packet sits at the sink carrying the {e
    original} payload, so a route is only good if the edge transforms
    along it compose to the identity on that symbol.

    The user's command alphabet is out-port selection: symbol [p] means
    "forward along the current node's [p]-th out-edge", and the
    distinguished symbol {!reset_sym} teleports the packet back to the
    source with fresh edge states (the recovery command — a universal
    user's wrong-dialect probes wander the packet into unrecoverable
    corners otherwise).  Servers face the user through a dialect, as
    everywhere in the library: the class the universal user conquers is
    {!server_class}. *)

open Goalcom
open Goalcom_automata

(** {1 Networks and scenarios} *)

type net

val net :
  payload_alphabet:int -> nodes:int -> (int * int * Mealy.t) list -> net
(** [net ~payload_alphabet ~nodes edges] builds a directed graph.  Each
    edge is [(src, dst, machine)]; machines must be
    [payload_alphabet]-in/out.  A node's out-ports are numbered in
    edge-list order.  @raise Invalid_argument on bad dimensions. *)

val nodes : net -> int
val payload_alphabet : net -> int
val max_out_degree : net -> int

type scenario

val scenario : net:net -> source:int -> sink:int -> payload:int -> scenario
(** @raise Invalid_argument if endpoints or payload are out of range,
    or no simple path delivers the payload intact (edge states are 0
    along a post-reset simple path, which is how routes are planned and
    validated). *)

val scenario_net : scenario -> net
val route : scenario -> int list
(** The validated port route (shortest first by DFS order, not
    necessarily globally shortest). *)

val min_alphabet : scenario -> int
(** Ports plus the reset symbol: [max_out_degree + 1]. *)

val reset_sym : scenario -> int

(** Canned scenarios (used by E19 and the test-suite):
    - [line]: [hops] clean edges in a row;
    - [diamond]: two branches, of which only the doubly-scrambled one
      composes back to the identity (the clean-looking branch is
      stuck);
    - [ring]: a clean directed cycle with a stuck decoy chord from the
      source straight to the sink. *)

val line : hops:int -> payload_alphabet:int -> payload:int -> scenario
val diamond : payload_alphabet:int -> payload:int -> scenario
val ring : nodes:int -> sink:int -> payload_alphabet:int -> payload:int -> scenario

(** {1 The goal} *)

val world_of_scenario : scenario -> World.t
val delivered : Msg.t -> bool
(** The referee's predicate on world views. *)

val referee : Referee.t
val goal : scenarios:scenario list -> alphabet:int -> unit -> Goal.t

(** {1 Servers (the switch, behind a dialect)} *)

val driver : alphabet:int -> Strategy.server
val server : alphabet:int -> Dialect.t -> Strategy.server
val server_class : alphabet:int -> Dialect.t Enum.t -> Strategy.server Enum.t

(** {1 Users} *)

val informed_user : alphabet:int -> scenario:scenario -> Dialect.t -> Strategy.user
(** Knows the topology and the dialect: emits reset followed by the
    planned route, then replans if the (lagging) world broadcast still
    shows the packet undelivered. *)

val user_class :
  alphabet:int -> scenario:scenario -> Dialect.t Enum.t -> Strategy.user Enum.t

val sensing : Sensing.t
(** Bounded-window scan for a delivered view — safe (a positive means
    the payload reached the sink intact) and viable (delivery is seen
    within the window). *)

val universal_user :
  ?schedule:Levin.slot Seq.t ->
  ?checkpoint:Universal.checkpoint ->
  ?stats:Universal.stats ->
  alphabet:int ->
  scenario:scenario ->
  Dialect.t Enum.t ->
  Strategy.user
