(** Admission control: bounded live set, bounded queue, load shedding.

    At most [max_live] sessions run at once; arrivals beyond that wait
    in a FIFO queue of at most [queue_capacity]; arrivals beyond
    {e that} are shed — refused outright, a terminal outcome.  The
    primitives are split so the engine can interleave its breaker gate:
    check {!has_capacity}, consult the class breaker, then {!claim} the
    slot (or {!enqueue} / shed).  Driven in session-id order, the
    structure's evolution is deterministic. *)

type t

val make : max_live:int -> queue_capacity:int -> t
(** @raise Invalid_argument if [max_live < 1] or
    [queue_capacity < 0]. *)

val has_capacity : t -> bool

val claim : t -> unit
(** Take a live slot.  @raise Invalid_argument when full — callers
    check {!has_capacity} first. *)

val enqueue : t -> int -> bool
(** Join the queue; [false] means no room — the session is counted
    shed. *)

val peek_queued : t -> int option
(** Head of the queue, not removed (the engine checks breaker gates
    and session liveness before popping). *)

val pop_queued : t -> int
(** Remove and return the queue head; does {e not} claim a slot.
    @raise Invalid_argument on an empty queue. *)

val release : t -> unit
(** A slot-holding session ended (any outcome); frees its slot. *)

val live : t -> int
val queued : t -> int
val shed_count : t -> int
