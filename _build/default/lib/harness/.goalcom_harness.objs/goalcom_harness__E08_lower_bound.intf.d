lib/harness/e08_lower_bound.mli: Goalcom_prelude
