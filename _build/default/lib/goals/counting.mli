(** The counting-delegation goal — interactive proofs inside the model.

    The predecessor work the paper generalises (Juba–Sudan, STOC'08)
    delegated a PSPACE-complete function: the user cannot compute the
    answer, and there is no short certificate to check — the user must
    {e interact} to verify.  This goal realises that regime at
    laptop scale with #SAT: the {b world} poses a small CNF and accepts
    only its exact model count; the {b server} is the exponential-time
    prover of the sum-check protocol ({!Goalcom_ip.Sumcheck}); the
    {b user} is the polynomial-time verifier, running the protocol in
    the server's dialect and forwarding the count only after the proof
    is accepted.

    Sensing is safe for the same reason the protocol is sound: a
    claimed count that survives verification is, with overwhelming
    probability, correct — so cheating provers (wrong claim, or
    consistent in-round tampering) are unhelpful, and the universal
    verifier achieves the goal exactly with the honest dialects.

    Canonical commands: [claim_cmd = 0] (request/carry the claimed
    count), [round_cmd = 1] (request/carry one sum-check round), plus
    padding.  Payloads (counts, sample vectors, challenge prefixes) are
    plain integers — readable under any dialect. *)

open Goalcom
open Goalcom_automata

val claim_cmd : int
val round_cmd : int

val min_alphabet : int
(** 3. *)

type params = { num_vars : int; num_clauses : int; clause_len : int }

val default_params : params
(** [{ num_vars = 6; num_clauses = 10; clause_len = 3 }] — 6 sum-check
    rounds per proof, degree ≤ 10 polynomials. *)

val prover : alphabet:int -> Strategy.server
(** The honest sum-check prover. *)

val lying_prover : alphabet:int -> offset:int -> Strategy.server
(** Claims [true count + offset]; otherwise honest — its first round
    cannot pass the verifier.  @raise Invalid_argument if [offset = 0]. *)

val tampering_prover :
  alphabet:int -> tamper_round:int -> offset:int -> Strategy.server
(** Honest claim, tampered round polynomial (see
    {!Goalcom_ip.Sumcheck.tampered_prover}) — survives the tampered
    round's consistency check and is caught downstream w.h.p. *)

val server : alphabet:int -> Dialect.t -> Strategy.server
val server_class : alphabet:int -> Dialect.t Enum.t -> Strategy.server Enum.t

val world : ?params:params -> unit -> World.t
(** Poses a fresh uniform CNF per execution; view/broadcast is
    [Pair (Text status, cnf)] with status ["pending"]/["solved"];
    accepts [Int count] on the user→world channel. *)

val goal : ?params:params -> alphabet:int -> unit -> Goal.t

val verifier_user : ?params:params -> alphabet:int -> Dialect.t -> Strategy.user
(** The sum-check verifier speaking dialect [d]: requests the claim,
    runs the rounds (drawing challenges from its own randomness),
    re-asks from scratch if the proof is rejected, and reports the
    count to the world once the proof is accepted. *)

val user_class :
  ?params:params -> alphabet:int -> Dialect.t Enum.t -> Strategy.user Enum.t

val sensing : Sensing.t
(** Positive iff the world has confirmed the count. *)

val universal_user :
  ?schedule:Levin.slot Seq.t ->
  ?stats:Universal.stats ->
  ?params:params ->
  alphabet:int ->
  Dialect.t Enum.t ->
  Strategy.user

val claim_requests : History.t -> int
(** How many times the user (re)started the protocol — 1 for a clean
    accepted proof; each rejection adds one. *)
