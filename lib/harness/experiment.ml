open Goalcom_prelude

type kind = Table | Figure

type t = {
  id : string;
  kind : kind;
  title : string;
  claim : string;
  run : seed:int -> Table.t;
}

let all =
  [
    { id = "e1"; kind = Table; title = E01_universality.title;
      claim = E01_universality.claim; run = E01_universality.run };
    { id = "e2"; kind = Figure; title = E02_overhead_curve.title;
      claim = E02_overhead_curve.claim; run = E02_overhead_curve.run };
    { id = "e3"; kind = Table; title = E03_levin.title;
      claim = E03_levin.claim; run = E03_levin.run };
    { id = "e4"; kind = Figure; title = E04_levin_overhead.title;
      claim = E04_levin_overhead.claim; run = E04_levin_overhead.run };
    { id = "e5"; kind = Table; title = E05_sensing_ablation.title;
      claim = E05_sensing_ablation.claim; run = E05_sensing_ablation.run };
    { id = "e6"; kind = Figure; title = E06_compact_convergence.title;
      claim = E06_compact_convergence.claim; run = E06_compact_convergence.run };
    { id = "e7"; kind = Table; title = E07_delegation.title;
      claim = E07_delegation.claim; run = E07_delegation.run };
    { id = "e8"; kind = Figure; title = E08_lower_bound.title;
      claim = E08_lower_bound.claim; run = E08_lower_bound.run };
    { id = "e9"; kind = Table; title = E09_helpfulness.title;
      claim = E09_helpfulness.claim; run = E09_helpfulness.run };
    { id = "e10"; kind = Figure; title = E10_amortisation.title;
      claim = E10_amortisation.claim; run = E10_amortisation.run };
    { id = "e11"; kind = Table; title = E11_multi_session.title;
      claim = E11_multi_session.claim; run = E11_multi_session.run };
    { id = "e12"; kind = Figure; title = E12_channel_robustness.title;
      claim = E12_channel_robustness.claim; run = E12_channel_robustness.run };
    { id = "e13"; kind = Table; title = E13_online_learning.title;
      claim = E13_online_learning.claim; run = E13_online_learning.run };
    { id = "e14"; kind = Figure; title = E14_grace_ablation.title;
      claim = E14_grace_ablation.claim; run = E14_grace_ablation.run };
    { id = "e15"; kind = Table; title = E15_interactive_proof.title;
      claim = E15_interactive_proof.claim; run = E15_interactive_proof.run };
    { id = "e16"; kind = Table; title = E16_fault_matrix.title;
      claim = E16_fault_matrix.claim; run = E16_fault_matrix.run };
    { id = "e17"; kind = Figure; title = E17_scaling.title;
      claim = E17_scaling.claim; run = E17_scaling.run };
    { id = "e18"; kind = Table; title = E18_chaos_matrix.title;
      claim = E18_chaos_matrix.claim; run = E18_chaos_matrix.run };
    { id = "e19"; kind = Table; title = E19_net_matrix.title;
      claim = E19_net_matrix.claim; run = E19_net_matrix.run };
  ]

let find id =
  let id = String.lowercase_ascii id in
  List.find_opt (fun e -> e.id = id) all

let run_all ~seed = List.map (fun e -> e.run ~seed) all

(* Experiments are independent given a seed (each derives its own
   generators), so a set of them is itself a sweepable grid. *)
let run_par ?jobs ?pool ~seed experiments =
  Sweep.map ?jobs ?pool (fun e -> e.run ~seed) experiments

let kind_to_string = function Table -> "table" | Figure -> "figure"
