(* E10 / Figure 5 — richer feedback amortises the cost of universality:
   with the relay's explicit error replies as progress sensing, the
   universal user's overhead over the oracle is an additive constant,
   independent of payload size; the generic Levin construction pays
   per-session budgets that scale with the payload. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let title = "Transfer goal: overhead vs. payload size, with/without progress sensing"

let claim =
  "better-than-generic overhead is possible for special classes — here, \
   explicit protocol errors let the universal user discard wrong \
   dialects in O(1) instead of a whole session"

let alphabet = 6
let server_index = 5 (* worst case: the matching dialect is enumerated last *)
let lengths = [ 4; 8; 16; 32 ]
let trials = 3

let run ~seed =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let server = Transfer.server ~alphabet (Enum.get_exn dialects server_index) in
  let measure ~len ~user_of seed_off =
    let payload = Listx.range 1 (len + 1) in
    let goal = Transfer.goal ~payloads:[ payload ] ~alphabet () in
    let config = Exec.config ~horizon:200_000 () in
    let result =
      Trial.run ~config ~trials ~seed:(seed + seed_off + len) ~goal
        ~user:(user_of ()) ~server ()
    in
    result.Trial.mean_rounds
  in
  let rows =
    List.map
      (fun len ->
        let fast =
          measure ~len
            ~user_of:(fun () -> Transfer.universal_user_fast ~alphabet dialects)
            0
        in
        let levin =
          measure ~len
            ~user_of:(fun () -> Transfer.universal_user ~alphabet dialects)
            1_000
        in
        let oracle =
          measure ~len
            ~user_of:(fun () ->
              Transfer.informed_user ~alphabet (Enum.get_exn dialects server_index))
            2_000
        in
        [
          Table.cell_int len;
          Table.cell_float oracle;
          Table.cell_float fast;
          Table.cell_float levin;
          Table.cell_float (fast -. oracle);
        ])
      lengths
  in
  Table.make
    ~title:"E10 (Figure 5): payload size vs. rounds (transfer goal)"
    ~columns:
      [
        "payload len";
        "oracle rounds";
        "fast universal rounds";
        "levin universal rounds";
        "fast - oracle";
      ]
    ~notes:
      [
        "matching dialect deliberately last (index 5 of 6)";
        "expected shape: fast - oracle roughly constant in payload size; \
         levin grows much faster (its failed sessions scale with the \
         payload-sized budget)";
      ]
    rows
