open Goalcom
open Goalcom_prelude

type t = { name : string; wrap : Strategy.server -> Strategy.server }

let name t = t.name
let apply t server = t.wrap server

let make ~name wrap = { name; wrap }

let nop = { name = "nop"; wrap = Fun.id }

(* Fault wrappers observe the server-side interface only, which carries
   no round counter; when tracing they stamp their events with the
   engine's ambient round (set by {!Exec.run} before each round).  No
   emission ever consumes randomness, so traced and untraced runs draw
   the same RNG stream. *)
let emit_fault fault detail =
  let h = Trace.handle () in
  if Trace.handle_enabled h then
    Trace.handle_emit h
      (Trace.Fault { round = Trace.handle_round h; fault; detail })

(* [compose f g] applies [g] closest to the server: the composed link
   reads outbound as server → g → f → user and inbound the other way —
   the same convention as function composition. *)
let compose f g =
  if f == nop then g
  else if g == nop then f
  else { name = f.name ^ "+" ^ g.name; wrap = (fun s -> f.wrap (g.wrap s)) }

let stack = function
  | [] -> nop
  | faults -> List.fold_left compose nop faults

(* Channel wrappers, re-exported so a whole fault stack can be written
   in one algebra. *)

let delay ~rounds =
  if rounds < 0 then invalid_arg "Fault.delay: negative latency";
  if rounds = 0 then nop
  else
    {
      name = Printf.sprintf "delay(%d)" rounds;
      wrap = Goalcom_servers.Channel.delayed ~rounds;
    }

let drop ~prob =
  if prob < 0. || prob > 1. then invalid_arg "Fault.drop: prob out of range";
  if prob = 0. then nop
  else
    {
      name = Printf.sprintf "drop(%.2f)" prob;
      wrap = Goalcom_servers.Channel.drop_inbound ~drop_prob:prob;
    }

let duplicate =
  { name = "dup"; wrap = Goalcom_servers.Channel.duplicate_outbound }

(* Corruption: flip one site of the message.  Symbols are flipped
   within the [0, alphabet) command space through their mixed-radix
   code (Coding.encode_tuple) with a non-zero offset, so a corrupted
   symbol is always a *different valid* symbol — the nastiest case for
   a dialect protocol, since the garbled command still parses. *)

let flip_sym rng ~alphabet s =
  if alphabet <= 1 || s < 0 || s >= alphabet then s
  else begin
    let radices = [| alphabet |] in
    let code = Coding.encode_tuple ~radices [| s |] in
    let space = Coding.tuple_space ~radices in
    let code = (code + 1 + Rng.int rng (alphabet - 1)) mod space in
    (Coding.decode_tuple ~radices code).(0)
  end

let rec corrupt_msg rng ~alphabet = function
  | Msg.Silence -> Msg.Silence
  | Msg.Sym s -> Msg.Sym (flip_sym rng ~alphabet s)
  | Msg.Int n -> Msg.Int (abs (n lxor (1 lsl Rng.int rng 8)))
  | Msg.Text s when s = "" -> Msg.Text s
  | Msg.Text s ->
      let b = Bytes.of_string s in
      let i = Rng.int rng (Bytes.length b) in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
      Msg.Text (Bytes.to_string b)
  | Msg.Pair (a, b) ->
      if Rng.bool rng then Msg.Pair (corrupt_msg rng ~alphabet a, b)
      else Msg.Pair (a, corrupt_msg rng ~alphabet b)
  | Msg.Seq [] -> Msg.Seq []
  | Msg.Seq ms ->
      let i = Rng.int rng (List.length ms) in
      Msg.Seq
        (List.mapi
           (fun j m -> if j = i then corrupt_msg rng ~alphabet m else m)
           ms)

let corrupt ~alphabet ~prob =
  if prob < 0. || prob > 1. then invalid_arg "Fault.corrupt: prob out of range";
  if alphabet <= 0 then invalid_arg "Fault.corrupt: bad alphabet";
  if prob = 0. then nop
  else begin
    let module I = Strategy.Instance in
    let fname = Printf.sprintf "corrupt(%.2f)" prob in
    {
      name = fname;
      wrap =
        (fun base ->
          Strategy.make
            ~name:(Printf.sprintf "corrupt(%.2f,%s)" prob (Strategy.name base))
            ~init:(fun () -> I.create base)
            ~step:(fun rng inst (obs : Io.Server.obs) ->
              let zap dir m =
                if Msg.is_silence m then m
                else if Rng.bernoulli rng prob then begin
                  emit_fault fname dir;
                  corrupt_msg rng ~alphabet m
                end
                else m
              in
              let obs =
                { obs with
                  Io.Server.from_user = zap "inbound" obs.Io.Server.from_user }
              in
              let act = I.step rng inst obs in
              ( inst,
                { act with
                  Io.Server.to_user = zap "outbound" act.Io.Server.to_user } )));
    }
  end

(* Reordering with bounded skew: non-silent messages enter a per-
   direction buffer; each round the link either stays quiet or releases
   a uniformly chosen buffered message, except that a message that has
   already waited [skew] rounds is released first (oldest overdue
   wins).  No message is ever created, lost, or delayed more than
   [skew] rounds beyond its arrival. *)

let reorder_pop rng ~skew buffer =
  match buffer with
  | [] -> (Msg.Silence, [], false)
  | _ ->
      let overdue = List.exists (fun (_, age) -> age >= skew) buffer in
      if (not overdue) && Rng.bernoulli rng 0.5 then
        (Msg.Silence, List.map (fun (m, age) -> (m, age + 1)) buffer, false)
      else begin
        let idx =
          if overdue then begin
            (* first (oldest) overdue entry *)
            let rec find i = function
              | (_, age) :: _ when age >= skew -> i
              | _ :: rest -> find (i + 1) rest
              | [] -> 0
            in
            find 0 buffer
          end
          else Rng.int rng (List.length buffer)
        in
        let msg = fst (List.nth buffer idx) in
        let rest = List.filteri (fun j _ -> j <> idx) buffer in
        (* idx > 0 means a younger message overtook the queue head. *)
        (msg, List.map (fun (m, age) -> (m, age + 1)) rest, idx > 0)
      end

let reorder ~skew =
  if skew < 0 then invalid_arg "Fault.reorder: negative skew";
  if skew = 0 then nop
  else begin
    let module I = Strategy.Instance in
    let push buffer m =
      if Msg.is_silence m then buffer else buffer @ [ (m, 0) ]
    in
    let fname = Printf.sprintf "reorder(%d)" skew in
    {
      name = fname;
      wrap =
        (fun base ->
          Strategy.make
            ~name:(Printf.sprintf "reorder(%d,%s)" skew (Strategy.name base))
            ~init:(fun () -> (I.create base, [], []))
            ~step:(fun rng (inst, inbox, outbox) (obs : Io.Server.obs) ->
              let delivered_in, inbox, ooo_in =
                reorder_pop rng ~skew (push inbox obs.Io.Server.from_user)
              in
              if ooo_in then emit_fault fname "inbound";
              let act =
                I.step rng inst { obs with Io.Server.from_user = delivered_in }
              in
              let delivered_out, outbox, ooo_out =
                reorder_pop rng ~skew (push outbox act.Io.Server.to_user)
              in
              if ooo_out then emit_fault fname "outbound";
              ( (inst, inbox, outbox),
                { act with Io.Server.to_user = delivered_out } )));
    }
  end

(* Bursty loss: a two-state Gilbert–Elliott chain shared by both
   directions of the link.  In the bad state each non-silent message is
   dropped with [drop_prob]; the good state is loss-free.  The chain
   advances once per round on the per-step RNG. *)

let burst ~p_enter ~p_exit ~drop_prob =
  let check name p =
    if p < 0. || p > 1. then
      invalid_arg (Printf.sprintf "Fault.burst: %s out of range" name)
  in
  check "p_enter" p_enter;
  check "p_exit" p_exit;
  check "drop_prob" drop_prob;
  let module I = Strategy.Instance in
  let fname = Printf.sprintf "burst(%.2f,%.2f,%.2f)" p_enter p_exit drop_prob in
  {
    name = fname;
    wrap =
      (fun base ->
        Strategy.make
          ~name:(Printf.sprintf "burst(%.2f,%s)" drop_prob (Strategy.name base))
          ~init:(fun () -> (I.create base, false))
          ~step:(fun rng (inst, bad) (obs : Io.Server.obs) ->
            let bad =
              if bad then not (Rng.bernoulli rng p_exit)
              else Rng.bernoulli rng p_enter
            in
            let zap dir m =
              if bad && (not (Msg.is_silence m)) && Rng.bernoulli rng drop_prob
              then begin
                emit_fault fname dir;
                Msg.Silence
              end
              else m
            in
            let obs =
              { obs with
                Io.Server.from_user = zap "inbound" obs.Io.Server.from_user }
            in
            let act = I.step rng inst obs in
            ( (inst, bad),
              { act with
                Io.Server.to_user = zap "outbound" act.Io.Server.to_user } )));
  }

(* Crash-restart: every [every] rounds the wrapped server's state is
   reset to its initial value (Strategy.Instance.restart) — the server
   process died and came back up with empty memory, losing any dialect
   or session progress accumulated so far. *)

let crash_restart ~every =
  if every <= 0 then invalid_arg "Fault.crash_restart: period must be positive";
  let module I = Strategy.Instance in
  let fname = Printf.sprintf "crash(%d)" every in
  {
    name = fname;
    wrap =
      (fun base ->
        Strategy.make
          ~name:(Printf.sprintf "crash(%d,%s)" every (Strategy.name base))
          ~init:(fun () -> (I.create base, 0))
          ~step:(fun rng (inst, age) obs ->
            let age =
              if age >= every then begin
                emit_fault fname "restart";
                I.restart inst;
                0
              end
              else age
            in
            ((inst, age + 1), I.step rng inst obs)));
  }

(* Intermittent helpfulness: [on] rounds of normal service, then [off]
   rounds in which the server is down — it does not observe anything
   (its state is frozen, messages sent to it are lost) and emits either
   silence or, with [noise], random symbols that imitate a babbling
   peer. *)

let intermittent ?noise ~on ~off () =
  if on <= 0 || off < 0 then invalid_arg "Fault.intermittent: bad schedule";
  (match noise with
  | Some a when a <= 0 -> invalid_arg "Fault.intermittent: bad noise alphabet"
  | _ -> ());
  if off = 0 then nop
  else begin
    let module I = Strategy.Instance in
    let fname =
      Printf.sprintf "intermittent(%d/%d%s)" on off
        (match noise with Some _ -> ",noisy" | None -> "")
    in
    {
      name = fname;
      wrap =
        (fun base ->
          Strategy.make
            ~name:
              (Printf.sprintf "intermittent(%d/%d,%s)" on off
                 (Strategy.name base))
            ~init:(fun () -> (I.create base, 0))
            ~step:(fun rng (inst, tick) obs ->
              if tick mod (on + off) < on then
                ((inst, tick + 1), I.step rng inst obs)
              else begin
                (* One event per outage, at its first down round. *)
                if tick mod (on + off) = on then emit_fault fname "outage";
                let out =
                  match noise with
                  | None -> Io.Server.silent
                  | Some alphabet ->
                      Io.Server.say_user (Msg.Sym (Rng.int rng alphabet))
                in
                ((inst, tick + 1), out)
              end));
    }
  end

(* Adversarial scheduler: a budget of single-fault rounds, spent where
   it hurts the most.  Starving the server of an inbound command stops
   all progress dead, so that is the first choice; failing that, a
   corrupted non-silent reply misleads the user's sensing.  At most one
   fault per round, nothing once the budget is gone. *)

let adversary ~budget ~alphabet =
  if budget < 0 then invalid_arg "Fault.adversary: negative budget";
  if alphabet <= 0 then invalid_arg "Fault.adversary: bad alphabet";
  let module I = Strategy.Instance in
  let fname = Printf.sprintf "adversary(%d)" budget in
  {
    name = fname;
    wrap =
      (fun base ->
        Strategy.make
          ~name:(Printf.sprintf "adversary(%d,%s)" budget (Strategy.name base))
          ~init:(fun () -> (I.create base, budget))
          ~step:(fun rng (inst, left) (obs : Io.Server.obs) ->
            if left > 0 && not (Msg.is_silence obs.Io.Server.from_user) then begin
              emit_fault fname "starve";
              let act =
                I.step rng inst { obs with Io.Server.from_user = Msg.Silence }
              in
              ((inst, left - 1), act)
            end
            else begin
              let act = I.step rng inst obs in
              if left > 0 && not (Msg.is_silence act.Io.Server.to_user) then begin
                emit_fault fname "garble";
                ( (inst, left - 1),
                  {
                    act with
                    Io.Server.to_user =
                      corrupt_msg rng ~alphabet act.Io.Server.to_user;
                  } )
              end
              else ((inst, left), act)
            end));
  }

(* Spec parsing, for CLI flags and randomised tests. *)

let spec_error spec reason =
  Error (Printf.sprintf "bad fault spec %S: %s" spec reason)

(* One usage string per fault name: the vocabulary of both the
   unknown-name error (which lists all of them) and the per-name arity
   errors (which quote just the offender's). *)
let usages =
  [
    ("nop", "nop");
    ("delay", "delay:K");
    ("drop", "drop:P");
    ("loss", "loss:P");
    ("dup", "dup");
    ("corrupt", "corrupt:P");
    ("reorder", "reorder:K");
    ("burst", "burst:PENTER,PEXIT,PDROP");
    ("crash", "crash:K");
    ("intermittent", "intermittent:ON,OFF");
    ("adversary", "adversary:B");
  ]

let valid_names () = String.concat " " (List.map snd usages)

let of_string ~alphabet spec =
  let fail = spec_error spec in
  let head, args =
    match String.index_opt spec ':' with
    | None -> (spec, [])
    | Some i ->
        ( String.sub spec 0 i,
          String.split_on_char ','
            (String.sub spec (i + 1) (String.length spec - i - 1)) )
  in
  let int_arg s = int_of_string_opt (String.trim s) in
  let float_arg s = float_of_string_opt (String.trim s) in
  (* The name resolved but its argument list does not fit: quote the
     expected shape (and how many arguments actually arrived). *)
  let arity want =
    let got =
      match args with
      | [] -> "none"
      | _ -> string_of_int (List.length args)
    in
    fail (Printf.sprintf "%S wants the form %s (got %s argument%s)" head want
            got (if args <> [] && List.length args = 1 then "" else "s"))
  in
  try
    match head with
    | "nop" -> ( match args with [] -> Ok nop | _ -> arity "nop")
    | "delay" -> begin
        match args with
        | [ k ] -> begin
            match int_arg k with
            | Some k -> Ok (delay ~rounds:k)
            | None -> fail "delay:K wants an integer"
          end
        | _ -> arity "delay:K"
      end
    | "drop" -> begin
        match args with
        | [ p ] -> begin
            match float_arg p with
            | Some p -> Ok (drop ~prob:p)
            | None -> fail "drop:P wants a float"
          end
        | _ -> arity "drop:P"
      end
    (* [loss:P] is the network-link spelling of [drop:P] — lib/net link
       specs read "loss" where fault stacks historically said "drop";
       both parse to the same wrapper. *)
    | "loss" -> begin
        match args with
        | [ p ] -> begin
            match float_arg p with
            | Some p -> Ok (drop ~prob:p)
            | None -> fail "loss:P wants a float"
          end
        | _ -> arity "loss:P"
      end
    | "dup" -> ( match args with [] -> Ok duplicate | _ -> arity "dup")
    | "corrupt" -> begin
        match args with
        | [ p ] -> begin
            match float_arg p with
            | Some p -> Ok (corrupt ~alphabet ~prob:p)
            | None -> fail "corrupt:P wants a float"
          end
        | _ -> arity "corrupt:P"
      end
    | "reorder" -> begin
        match args with
        | [ k ] -> begin
            match int_arg k with
            | Some k -> Ok (reorder ~skew:k)
            | None -> fail "reorder:K wants an integer"
          end
        | _ -> arity "reorder:K"
      end
    | "burst" -> begin
        match args with
        | [ a; b; c ] -> begin
            match (float_arg a, float_arg b, float_arg c) with
            | Some p_enter, Some p_exit, Some drop_prob ->
                Ok (burst ~p_enter ~p_exit ~drop_prob)
            | _ -> fail "burst:PENTER,PEXIT,PDROP wants three floats"
          end
        | _ -> arity "burst:PENTER,PEXIT,PDROP"
      end
    | "crash" -> begin
        match args with
        | [ k ] -> begin
            match int_arg k with
            | Some k -> Ok (crash_restart ~every:k)
            | None -> fail "crash:K wants an integer"
          end
        | _ -> arity "crash:K"
      end
    | "intermittent" -> begin
        match args with
        | [ on; off ] -> begin
            match (int_arg on, int_arg off) with
            | Some on, Some off -> Ok (intermittent ~on ~off ())
            | _ -> fail "intermittent:ON,OFF wants two integers"
          end
        | _ -> arity "intermittent:ON,OFF"
      end
    | "adversary" -> begin
        match args with
        | [ b ] -> begin
            match int_arg b with
            | Some b -> Ok (adversary ~budget:b ~alphabet)
            | None -> fail "adversary:B wants an integer"
          end
        | _ -> arity "adversary:B"
      end
    | _ ->
        fail
          (Printf.sprintf "unknown fault %S; known faults: %s" head
             (valid_names ()))
  with Invalid_argument reason -> fail reason

let stack_of_string ~alphabet spec =
  let specs =
    List.filter (fun s -> s <> "") (String.split_on_char '+' spec)
  in
  let rec go acc = function
    | [] -> Ok (stack (List.rev acc))
    | s :: rest -> begin
        match of_string ~alphabet s with
        | Ok f -> go (f :: acc) rest
        | Error _ as e -> e
      end
  in
  go [] specs
