module User = struct
  type obs = { from_server : Msg.t; from_world : Msg.t; round : int }
  type act = { to_server : Msg.t; to_world : Msg.t; halt : bool }

  let silent = { to_server = Msg.Silence; to_world = Msg.Silence; halt = false }
  let halt_act = { silent with halt = true }
  let say_server m = { silent with to_server = m }
  let say_world m = { silent with to_world = m }
end

module Server = struct
  type obs = { from_user : Msg.t; from_world : Msg.t }
  type act = { to_user : Msg.t; to_world : Msg.t }

  let silent = { to_user = Msg.Silence; to_world = Msg.Silence }
  let say_user m = { silent with to_user = m }
  let say_world m = { silent with to_world = m }
end

module World = struct
  type obs = { from_user : Msg.t; from_server : Msg.t }
  type act = { to_user : Msg.t; to_server : Msg.t }

  let silent = { to_user = Msg.Silence; to_server = Msg.Silence }
  let say_user m = { silent with to_user = m }
  let say_server m = { silent with to_server = m }
  let broadcast m = { to_user = m; to_server = m }
end
