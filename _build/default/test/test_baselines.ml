(* Unit tests for the baseline users, exercised on the printing goal. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals
open Goalcom_baselines

let alphabet = 4
let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects i
let users = Printing.user_class ~alphabet dialects
let goal = Printing.goal ~docs:[ [ 1; 2; 3 ] ] ~alphabet ()

let run ~user ~server ?(horizon = 600) seed =
  Exec.run_outcome ~config:(Exec.config ~horizon ()) ~goal ~user ~server
    (Rng.make seed)

let test_fixed_succeeds_on_matching_server () =
  let user = Baselines.fixed users in
  let server = Printing.server ~alphabet (dialect 0) in
  let outcome, _ = run ~user ~server 1 in
  Alcotest.(check bool) "achieved" true outcome.Outcome.achieved

let test_fixed_fails_on_other_servers () =
  let user = Baselines.fixed users in
  List.iter
    (fun i ->
      let server = Printing.server ~alphabet (dialect i) in
      let outcome, _ = run ~user ~server (10 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "fails vs %d" i)
        false outcome.Outcome.achieved)
    [ 1; 2; 3 ]

let test_oracle_matches_every_server () =
  List.iter
    (fun i ->
      let user = Baselines.oracle users i in
      let server = Printing.server ~alphabet (dialect i) in
      let outcome, _ = run ~user ~server (20 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "oracle %d" i)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_random_user_mostly_fails () =
  let successes = ref 0 in
  List.iter
    (fun seed ->
      let user = Baselines.random_actions ~alphabet () in
      let server = Printing.server ~alphabet (dialect 0) in
      let outcome, _ = run ~user ~server ~horizon:100 seed in
      if outcome.Outcome.achieved then incr successes)
    (Listx.range 0 10);
  Alcotest.(check bool) "rarely succeeds" true (!successes <= 2)

let test_blind_round_robin_cycles_but_never_halts () =
  (* Without sensing it may pass through the right strategy — and then
     leave it again; it cannot halt, so the finite goal is never
     achieved (this is why safe sensing matters). *)
  let user = Baselines.blind_round_robin ~quantum:25 users in
  let server = Printing.server ~alphabet (dialect 2) in
  let outcome, history = run ~user ~server ~horizon:500 3 in
  Alcotest.(check bool) "never halts" false (History.halted history);
  Alcotest.(check bool) "not achieved (finite goal needs a halt)" false
    outcome.Outcome.achieved

let test_validation () =
  Alcotest.check_raises "empty fixed" (Invalid_argument "Baselines.fixed: empty class")
    (fun () ->
      ignore (Baselines.fixed (Enum.of_list ~name:"none" ([] : Strategy.user list))));
  Alcotest.check_raises "bad quantum"
    (Invalid_argument "Baselines.blind_round_robin: bad quantum") (fun () ->
      ignore (Baselines.blind_round_robin ~quantum:0 users));
  Alcotest.check_raises "infinite class"
    (Invalid_argument "Baselines.blind_round_robin: infinite class") (fun () ->
      ignore
        (Baselines.blind_round_robin
           (Enum.make ~name:"inf" (fun _ -> Some (Baselines.fixed users)))))

let () =
  Alcotest.run "baselines"
    [
      ( "baselines",
        [
          Alcotest.test_case "fixed matches its server" `Quick test_fixed_succeeds_on_matching_server;
          Alcotest.test_case "fixed fails elsewhere" `Quick test_fixed_fails_on_other_servers;
          Alcotest.test_case "oracle always succeeds" `Quick test_oracle_matches_every_server;
          Alcotest.test_case "random mostly fails" `Quick test_random_user_mostly_fails;
          Alcotest.test_case "blind round robin never halts" `Quick test_blind_round_robin_cycles_but_never_halts;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
