(* E6 / Figure 3 — compact goals: the universal user's referee
   violations stop (finitely many unacceptable prefixes) while
   non-adapting users keep violating forever. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let title = "Cumulative referee violations over time (control goal)"

let claim =
  "compact goals: success means finitely many unacceptable prefixes — the \
   universal user converges, non-adapting users diverge"

let alphabet = 4
let horizon = 2400
let checkpoints = [ 200; 400; 800; 1200; 1600; 2000; 2400 ]

let cumulative_violations ~seed user server =
  let goal = Control.goal ~alphabet () in
  let history =
    Exec.run ~config:(Exec.config ~horizon ()) ~goal ~user ~server (Rng.make seed)
  in
  let violations = Referee.violations goal.Goal.referee history in
  List.map
    (fun cp -> Listx.count (fun r -> r <= cp) violations)
    checkpoints

let run ~seed =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let server_dialect = Enum.get_exn dialects 2 in
  let server = Control.server ~alphabet server_dialect in
  let universal = Control.universal_user ~alphabet dialects in
  let oracle = Control.informed_user ~alphabet server_dialect in
  let wrong = Control.informed_user ~alphabet (Enum.get_exn dialects 0) in
  let idle =
    Strategy.stateless ~name:"idle" (fun (_ : Io.User.obs) -> Io.User.silent)
  in
  let series =
    List.map
      (fun (label, user) -> (label, cumulative_violations ~seed user server))
      [
        ("universal", universal); ("oracle", oracle); ("wrong-fixed", wrong);
        ("uncontrolled", idle);
      ]
  in
  let rows =
    List.mapi
      (fun k cp ->
        Table.cell_int cp
        :: List.map (fun (_, vs) -> Table.cell_int (List.nth vs k)) series)
      checkpoints
  in
  Table.make
    ~title:"E6 (Figure 3): cumulative violations over time (control goal)"
    ~columns:("round" :: List.map fst series)
    ~notes:
      [
        "server speaks rotation dialect 2; plant bound ±10";
        "expected shape: universal's count flattens (violations stop); \
         wrong-fixed and uncontrolled grow roughly linearly";
      ]
    rows
