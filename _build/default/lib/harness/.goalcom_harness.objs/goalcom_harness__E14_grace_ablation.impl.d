lib/harness/e14_grace_ablation.ml: Control Dialect Enum Exec Float Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude List Listx Outcome Rng Stats Table Universal
