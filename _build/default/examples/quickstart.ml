(* Quickstart: define a goal from scratch, give the user sensing, and
   watch the universal construction of Theorem 1 find the right
   strategy without being told which server it is talking to.

   The toy goal: the world wants to hear the magic word "open sesame"
   from the user's server-side helper — but the class of servers
   contains helpers keyed to different magic numbers, and the user does
   not know which helper it got.

   Run with:  dune exec examples/quickstart.exe *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata

(* 1. The world: it reports whether the magic number has been spoken to
   it, and broadcasts that status to the user.  The referee reads the
   world-state views — the goal is achieved once the status is "open". *)
let world magic =
  World.make ~name:"cave"
    ~init:(fun () -> false)
    ~step:(fun _rng opened (obs : Io.World.obs) ->
      let opened = opened || obs.Io.World.from_server = Msg.Int magic in
      (opened, Io.World.say_user (Msg.Text (if opened then "open" else "shut"))))
    ~view:(fun opened -> Msg.Text (if opened then "open" else "shut"))

let goal magic =
  Goal.make ~name:"open-the-cave"
    ~worlds:[ world magic ]
    ~referee:
      (Referee.finite "cave-opened" (fun views -> List.mem (Msg.Text "open") views))

(* 2. The server class: picky helper k relays the magic number to the
   world, but only when poked with its own key [Int k].  The
   "incompatibility" is that the user does not know which helper it is
   paired with. *)
let picky_helper k =
  Strategy.stateless
    ~name:(Printf.sprintf "picky-helper-%d" k)
    (fun (obs : Io.Server.obs) ->
      if obs.Io.Server.from_user = Msg.Int k then Io.Server.say_world (Msg.Int k)
      else Io.Server.silent)

(* 3. The user class: poker k pokes the server with key k and halts
   once the world reports the cave open. *)
let poker k =
  Strategy.stateless
    ~name:(Printf.sprintf "poker-%d" k)
    (fun (obs : Io.User.obs) ->
      if obs.Io.User.from_world = Msg.Text "open" then Io.User.halt_act
      else Io.User.say_server (Msg.Int k))

(* 4. Sensing: the world's broadcast is feedback the user can see. *)
let sensing =
  Sensing.of_predicate ~name:"cave-open" (fun view ->
      match View.latest view with
      | Some e -> e.View.from_world = Msg.Text "open"
      | None -> false)

let () =
  let magic = 4 in
  let class_size = 8 in
  let user_class = Enum.tabulate ~name:"pokers" class_size poker in
  (* The universal user of Theorem 1 (finite-goal construction). *)
  let stats = Universal.new_stats () in
  let universal = Universal.finite ~stats ~enum:user_class ~sensing () in
  let outcome, history =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:2000 ())
      ~goal:(goal magic)
      ~user:universal
      ~server:(picky_helper magic)
      (Rng.make 42)
  in
  Format.printf "goal achieved : %b@." outcome.Outcome.achieved;
  Format.printf "rounds used   : %d@." (History.length history);
  Format.printf "sessions run  : %d@." stats.Universal.sessions;
  Format.printf "magic number  : %d (found by enumeration)@." magic;
  (* Compare with a fixed-protocol user that guessed wrong. *)
  let fixed_outcome, _ =
    Exec.run_outcome
      ~config:(Exec.config ~horizon:2000 ())
      ~goal:(goal magic) ~user:(poker 0)
      ~server:(picky_helper magic)
      (Rng.make 43)
  in
  Format.printf "fixed user (poker-0) achieved : %b@."
    fixed_outcome.Outcome.achieved
