(* Property-based tests (qcheck) on the core data structures and model
   invariants, registered as alcotest cases via QCheck_alcotest. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata

let count = 200

(* Coding *)

let prop_pair_roundtrip =
  QCheck.Test.make ~count ~name:"Coding: unpair (pair x y) = (x, y)"
    QCheck.(pair (int_bound 10_000) (int_bound 10_000))
    (fun (x, y) -> Coding.unpair (Coding.pair x y) = (x, y))

let prop_list_roundtrip =
  (* Nested Cantor pairing explodes double-exponentially, so the
     bijection's practical domain is short lists of small naturals —
     stay inside it (the overflow guard is tested separately). *)
  QCheck.Test.make ~count ~name:"Coding: decode_list (encode_list l) = l"
    QCheck.(list_of_size Gen.(int_bound 4) (int_bound 8))
    (fun l -> Coding.decode_list (Coding.encode_list l) = l)

let prop_tuple_roundtrip =
  QCheck.Test.make ~count ~name:"Coding: mixed-radix tuple roundtrip"
    QCheck.(list_of_size Gen.(1 -- 5) (2 -- 6))
    (fun radices_list ->
      let radices = Array.of_list radices_list in
      let space = Coding.tuple_space ~radices in
      let code = space / 2 in
      Coding.encode_tuple ~radices (Coding.decode_tuple ~radices code) = code)

(* Dist *)

let weighted_gen =
  QCheck.(
    list_of_size
      Gen.(1 -- 6)
      (pair (int_bound 20) (float_bound_inclusive 10.)))

let prop_dist_normalised =
  QCheck.Test.make ~count ~name:"Dist: of_weighted is normalised" weighted_gen
    (fun pairs ->
      QCheck.assume (List.exists (fun (_, w) -> w > 0.) pairs);
      Dist.is_normalised (Dist.of_weighted pairs))

let prop_dist_sample_in_support =
  QCheck.Test.make ~count ~name:"Dist: samples lie in the support"
    QCheck.(pair weighted_gen (int_bound 1_000_000))
    (fun (pairs, seed) ->
      QCheck.assume (List.exists (fun (_, w) -> w > 0.) pairs);
      let d = Dist.of_weighted pairs in
      let rng = Rng.make seed in
      List.mem (Dist.sample rng d) (Dist.support d))

let prop_dist_map_normalised =
  QCheck.Test.make ~count ~name:"Dist: map preserves normalisation" weighted_gen
    (fun pairs ->
      QCheck.assume (List.exists (fun (_, w) -> w > 0.) pairs);
      Dist.is_normalised (Dist.map (fun x -> x mod 3) (Dist.of_weighted pairs)))

(* Rng *)

let prop_rng_int_bounds =
  QCheck.Test.make ~count ~name:"Rng: int within bounds"
    QCheck.(pair (int_bound 1_000_000) (1 -- 10_000))
    (fun (seed, bound) ->
      let rng = Rng.make seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_rng_deterministic =
  QCheck.Test.make ~count ~name:"Rng: equal seeds give equal streams"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let a = Rng.make seed and b = Rng.make seed in
      List.for_all
        (fun _ -> Rng.int64 a = Rng.int64 b)
        (Listx.range 0 20))

(* Stats *)

let samples_gen = QCheck.(list_of_size Gen.(2 -- 30) (float_bound_inclusive 100.))

let prop_stats_mean_bounded =
  QCheck.Test.make ~count ~name:"Stats: min <= mean <= max" samples_gen
    (fun xs ->
      QCheck.assume (xs <> []);
      let m = Stats.mean xs in
      Stats.minimum xs -. 1e-9 <= m && m <= Stats.maximum xs +. 1e-9)

let prop_stats_percentile_bounded =
  QCheck.Test.make ~count ~name:"Stats: percentiles within [min,max]"
    QCheck.(pair samples_gen (float_bound_inclusive 100.))
    (fun (xs, q) ->
      QCheck.assume (xs <> []);
      let p = Stats.percentile q xs in
      Stats.minimum xs -. 1e-9 <= p && p <= Stats.maximum xs +. 1e-9)

(* Mealy *)

let prop_mealy_roundtrip =
  QCheck.Test.make ~count ~name:"Mealy: encode (decode c) = c"
    QCheck.(triple (1 -- 3) (1 -- 3) (1 -- 3))
    (fun (states, inputs, outputs) ->
      let total = Mealy.count ~states ~inputs ~outputs in
      let codes = [ 0; total / 3; total / 2; total - 1 ] in
      List.for_all
        (fun code ->
          match Mealy.decode ~states ~inputs ~outputs code with
          | Some m -> Mealy.encode m = code
          | None -> false)
        codes)

let prop_mealy_run_length =
  QCheck.Test.make ~count ~name:"Mealy: run preserves word length"
    QCheck.(pair (int_bound 1_000_000) (list_of_size Gen.(0 -- 20) (int_bound 1)))
    (fun (code, word) ->
      match Mealy.decode ~states:2 ~inputs:2 ~outputs:2 (code mod 256) with
      | None -> QCheck.assume_fail ()
      | Some m -> List.length (Mealy.run m word) = List.length word)

let prop_mealy_bisimulation_reflexive =
  QCheck.Test.make ~count:60 ~name:"Mealy: equal_behaviour is reflexive"
    QCheck.(int_bound 255)
    (fun code ->
      match Mealy.decode ~states:2 ~inputs:2 ~outputs:2 code with
      | None -> QCheck.assume_fail ()
      | Some m -> Mealy.equal_behaviour ~depth:6 m m)

(* Dialect *)

let dialect_gen =
  QCheck.map
    (fun (seed, size) ->
      let rng = Rng.make seed in
      Dialect.random rng (size + 2))
    QCheck.(pair (int_bound 1_000_000) (int_bound 6))

let prop_dialect_inverse =
  QCheck.Test.make ~count ~name:"Dialect: unapply . apply = id"
    dialect_gen
    (fun d ->
      List.for_all
        (fun i -> Dialect.unapply d (Dialect.apply d i) = i)
        (Listx.range 0 (Dialect.size d)))

let prop_dialect_lehmer_roundtrip =
  QCheck.Test.make ~count ~name:"Dialect: lehmer roundtrip" dialect_gen
    (fun d ->
      match Dialect.of_lehmer ~size:(Dialect.size d) (Dialect.to_lehmer d) with
      | Some d' -> Dialect.equal d d'
      | None -> false)

let prop_dialect_msg_roundtrip =
  QCheck.Test.make ~count ~name:"Dialect_msg: decode . encode = id"
    QCheck.(pair dialect_gen (list_of_size Gen.(0 -- 6) (int_bound 20)))
    (fun (d, syms) ->
      let msg = Msg.Seq (List.map (fun s -> Msg.Sym s) syms) in
      Msg.equal msg
        (Goalcom_servers.Dialect_msg.decode d
           (Goalcom_servers.Dialect_msg.encode d msg)))

(* Grid *)

let grid_gen =
  QCheck.map
    (fun (seed, w, h) ->
      let rng = Rng.make seed in
      let w = w + 2 and h = h + 2 in
      let blocked =
        List.filter_map
          (fun _ ->
            let p = (Rng.int rng w, Rng.int rng h) in
            if p = (0, 0) then None else Some p)
          (Listx.range 0 (w * h / 4))
      in
      Goalcom_goals.Grid.make ~width:w ~height:h ~blocked ())
    QCheck.(triple (int_bound 1_000_000) (int_bound 6) (int_bound 6))

let prop_grid_bfs_valid =
  QCheck.Test.make ~count ~name:"Grid: BFS paths are valid and shortest-ish"
    QCheck.(pair grid_gen (int_bound 1_000_000))
    (fun (g, seed) ->
      let open Goalcom_goals in
      let rng = Rng.make seed in
      let random_free () =
        let rec go k =
          if k = 0 then None
          else begin
            let p = (Rng.int rng g.Grid.width, Rng.int rng g.Grid.height) in
            if Grid.is_free g p then Some p else go (k - 1)
          end
        in
        go 50
      in
      match (random_free (), random_free ()) with
      | Some src, Some dst -> begin
          match Grid.bfs_path g src dst with
          | None -> true (* unreachable is fine *)
          | Some path ->
              let final = List.fold_left (Grid.move g) src path in
              final = dst && List.length path >= Grid.manhattan src dst
        end
      | _ -> QCheck.assume_fail ())

(* SAT *)

let prop_planted_satisfiable =
  QCheck.Test.make ~count:60 ~name:"Sat: planted instances are satisfiable"
    QCheck.(pair (int_bound 1_000_000) (pair (3 -- 9) (1 -- 25)))
    (fun (seed, (num_vars, num_clauses)) ->
      let open Goalcom_sat in
      let rng = Rng.make seed in
      let clause_len = min 3 num_vars in
      let cnf, plant = Gen.planted rng ~num_vars ~num_clauses ~clause_len in
      Cnf.eval cnf plant
      &&
      match Dpll.solve cnf with
      | Some a -> Cnf.eval cnf a
      | None -> false)

let prop_dpll_sound =
  QCheck.Test.make ~count:60 ~name:"Sat: DPLL models satisfy; unsat agrees with brute force"
    QCheck.(pair (int_bound 1_000_000) (pair (2 -- 5) (1 -- 14)))
    (fun (seed, (num_vars, num_clauses)) ->
      let open Goalcom_sat in
      let rng = Rng.make seed in
      let clause_len = min 2 num_vars in
      let cnf = Gen.uniform rng ~num_vars ~num_clauses ~clause_len in
      match Dpll.solve cnf with
      | Some a -> Cnf.eval cnf a
      | None -> Dpll.count_models cnf = 0)

(* Levin *)

let prop_levin_work_monotone =
  QCheck.Test.make ~count:40 ~name:"Levin: work_before monotone in index and budget"
    QCheck.(pair (int_bound 8) (1 -- 32))
    (fun (index, budget) ->
      Levin.work_before ~index ~budget ()
      <= Levin.work_before ~index:(index + 1) ~budget ()
      && Levin.work_before ~index ~budget ()
         <= Levin.work_before ~index ~budget:(budget * 2) ())

(* Model invariants *)

let echo_world =
  World.make ~name:"w"
    ~init:(fun () -> 0)
    ~step:(fun _rng n (obs : Io.World.obs) ->
      let n = match obs.from_user with Msg.Int k -> n + k | _ -> n in
      (n, Io.World.say_user (Msg.Int n)))
    ~view:(fun n -> Msg.Int n)

let echo_goal =
  Goal.make ~name:"sum" ~worlds:[ echo_world ]
    ~referee:(Referee.finite "always" (fun _ -> true))

let chatty =
  Strategy.make ~name:"chatty"
    ~init:(fun () -> 0)
    ~step:(fun rng n (_ : Io.User.obs) ->
      (n + 1, Io.User.say_world (Msg.Int (Rng.int rng 5))))

let idle_server =
  Strategy.stateless ~name:"idle" (fun (_ : Io.Server.obs) -> Io.Server.silent)

let prop_exec_deterministic =
  QCheck.Test.make ~count:40 ~name:"Exec: runs are deterministic given a seed"
    QCheck.(pair (int_bound 1_000_000) (1 -- 60))
    (fun (seed, horizon) ->
      let run () =
        Exec.run
          ~config:(Exec.config ~horizon ())
          ~goal:echo_goal ~user:chatty ~server:idle_server (Rng.make seed)
      in
      History.world_views (run ()) = History.world_views (run ()))

let prop_exec_history_well_formed =
  QCheck.Test.make ~count:40 ~name:"Exec: histories have dense 1-based indices"
    QCheck.(pair (int_bound 1_000_000) (1 -- 60))
    (fun (seed, horizon) ->
      let h =
        Exec.run
          ~config:(Exec.config ~horizon ())
          ~goal:echo_goal ~user:chatty ~server:idle_server (Rng.make seed)
      in
      List.for_all2
        (fun (r : History.Round.t) i -> r.index = i)
        (History.rounds h)
        (Listx.range 1 (History.length h + 1)))

let prop_view_prefix_lengths =
  QCheck.Test.make ~count:40 ~name:"View: prefixes grow one event per round"
    QCheck.(pair (int_bound 1_000_000) (1 -- 40))
    (fun (seed, horizon) ->
      let h =
        Exec.run
          ~config:(Exec.config ~horizon ())
          ~goal:echo_goal ~user:chatty ~server:idle_server (Rng.make seed)
      in
      let prefixes = View.prefixes h in
      List.for_all2
        (fun v i -> View.length v = i)
        prefixes
        (Listx.range 1 (List.length prefixes + 1)))

let prop_compact_violations_sorted =
  QCheck.Test.make ~count:40 ~name:"Referee: violation rounds ascend"
    QCheck.(pair (int_bound 1_000_000) (1 -- 60))
    (fun (seed, horizon) ->
      let referee =
        Referee.compact "even" (fun views_rev ->
            match views_rev with Msg.Int n :: _ -> n mod 2 = 0 | _ -> true)
      in
      let goal = Goal.make ~name:"g" ~worlds:[ echo_world ] ~referee in
      let h =
        Exec.run
          ~config:(Exec.config ~horizon ())
          ~goal ~user:chatty ~server:idle_server (Rng.make seed)
      in
      let vs = Referee.violations referee h in
      let rec ascending = function
        | a :: (b :: _ as rest) -> a < b && ascending rest
        | _ -> true
      in
      ascending vs && List.for_all (fun r -> r >= 1 && r <= History.length h) vs)

(* Goal-level roundtrips *)

let prop_transfer_relay_roundtrip =
  QCheck.Test.make ~count:80 ~name:"Transfer: framed payloads are delivered verbatim"
    QCheck.(list_of_size Gen.(1 -- 20) (int_bound 255))
    (fun payload ->
      let open Goalcom_goals in
      let relay = Transfer.relay ~alphabet:4 in
      let inst = Strategy.Instance.create relay in
      let rng = Rng.make 1 in
      let feed m =
        Strategy.Instance.step rng inst
          { Io.Server.from_user = m; from_world = Msg.Silence }
      in
      ignore (feed (Msg.Sym Transfer.begin_cmd));
      List.iter
        (fun c -> ignore (feed (Msg.Pair (Msg.Sym Transfer.data_cmd, Msg.Int c))))
        payload;
      let final = feed (Msg.Sym Transfer.end_cmd) in
      Goalcom_goals.Codec.ints_opt final.Io.Server.to_world = Some payload)

let prop_printing_informed_always_succeeds =
  QCheck.Test.make ~count:40 ~name:"Printing: informed user succeeds on random documents"
    QCheck.(pair (int_bound 1_000_000) (list_of_size Gen.(1 -- 8) (int_bound 9)))
    (fun (seed, doc) ->
      let open Goalcom_goals in
      let alphabet = 4 in
      let d = Dialect.rotation ~size:alphabet (seed mod alphabet) in
      let goal = Printing.goal ~docs:[ doc ] ~alphabet () in
      let outcome, _ =
        Exec.run_outcome
          ~config:(Exec.config ~horizon:100 ())
          ~goal
          ~user:(Printing.informed_user ~alphabet d)
          ~server:(Printing.server ~alphabet d)
          (Rng.make seed)
      in
      outcome.Outcome.achieved)

let prop_codec_cnf_roundtrip =
  QCheck.Test.make ~count:60 ~name:"Codec: cnf encoding roundtrips"
    QCheck.(pair (int_bound 1_000_000) (pair (2 -- 8) (1 -- 12)))
    (fun (seed, (num_vars, num_clauses)) ->
      let open Goalcom_sat in
      let rng = Rng.make seed in
      let cnf =
        Gen.uniform rng ~num_vars ~num_clauses ~clause_len:(min 3 num_vars)
      in
      match Goalcom_goals.Codec.cnf_opt (Goalcom_goals.Codec.cnf cnf) with
      | Some cnf' ->
          cnf'.Cnf.num_vars = cnf.Cnf.num_vars
          && cnf'.Cnf.clauses = cnf.Cnf.clauses
      | None -> false)

(* Field and protocol laws *)

let gf_gen =
  QCheck.map (fun n -> Goalcom_ip.Gf.of_int n) QCheck.(int_bound (2_000_000_000))

let prop_gf_field_laws =
  QCheck.Test.make ~count:200 ~name:"Gf: ring laws and inverses"
    QCheck.(triple gf_gen gf_gen gf_gen)
    (fun (a, b, c) ->
      let open Goalcom_ip.Gf in
      equal (add a b) (add b a)
      && equal (mul a b) (mul b a)
      && equal (mul a (add b c)) (add (mul a b) (mul a c))
      && equal (add a (neg a)) zero
      && equal (sub a b) (add a (neg b))
      && (equal a zero || equal (mul a (inv a)) one))

let prop_poly_lagrange_identity =
  QCheck.Test.make ~count:100 ~name:"Poly: Lagrange reproduces the samples"
    QCheck.(list_of_size Gen.(2 -- 8) (int_bound 1_000_000))
    (fun ys ->
      let samples = Array.of_list (List.map Goalcom_ip.Gf.of_int ys) in
      List.for_all
        (fun i ->
          Goalcom_ip.Gf.equal
            (Goalcom_ip.Poly.eval_samples samples (Goalcom_ip.Gf.of_int i))
            samples.(i))
        (Listx.range 0 (Array.length samples)))

let prop_sumcheck_complete_and_sound =
  QCheck.Test.make ~count:30 ~name:"Sumcheck: complete on truth, sound on lies"
    QCheck.(pair (int_bound 1_000_000) (1 -- 1000))
    (fun (seed, delta) ->
      let open Goalcom_ip in
      let rng = Rng.make seed in
      let cnf =
        Goalcom_sat.Gen.uniform rng ~num_vars:5 ~num_clauses:8 ~clause_len:3
      in
      let count = Arith.count_models_mod cnf in
      let ok_true, _ =
        Sumcheck.run rng cnf ~claimed:count ~prover:Sumcheck.honest_prover
      in
      let ok_false, _ =
        Sumcheck.run rng cnf ~claimed:(count + delta)
          ~prover:Sumcheck.honest_prover
      in
      ok_true && not ok_false)

(* Algebraic laws *)

let prop_dialect_group_laws =
  QCheck.Test.make ~count:100 ~name:"Dialect: group laws (assoc, identity, inverse)"
    QCheck.(triple (int_bound 1_000_000) (int_bound 1_000_000) (2 -- 7))
    (fun (s1, s2, n) ->
      let d1 = Dialect.random (Rng.make s1) n in
      let d2 = Dialect.random (Rng.make s2) n in
      let d3 = Dialect.rotation ~size:n 1 in
      let id = Dialect.identity n in
      Dialect.equal
        (Dialect.compose (Dialect.compose d1 d2) d3)
        (Dialect.compose d1 (Dialect.compose d2 d3))
      && Dialect.equal (Dialect.compose d1 id) d1
      && Dialect.equal (Dialect.compose id d1) d1
      && Dialect.equal (Dialect.compose d1 (Dialect.inverse d1)) id)

let prop_mealy_cascade_law =
  QCheck.Test.make ~count:100
    ~name:"Mealy: run (cascade m1 m2) = run m2 . run m1"
    QCheck.(triple (int_bound 255) (int_bound 255)
              (list_of_size Gen.(0 -- 12) (int_bound 1)))
    (fun (c1, c2, word) ->
      match
        ( Mealy.decode ~states:2 ~inputs:2 ~outputs:2 c1,
          Mealy.decode ~states:2 ~inputs:2 ~outputs:2 c2 )
      with
      | Some m1, Some m2 ->
          Mealy.run (Mealy.cascade m1 m2) word = Mealy.run m2 (Mealy.run m1 word)
      | _ -> QCheck.assume_fail ())

let prop_enum_interleave_complete =
  QCheck.Test.make ~count:100 ~name:"Enum: interleave contains both sides"
    QCheck.(pair (list_of_size Gen.(0 -- 6) (int_bound 50))
              (list_of_size Gen.(0 -- 6) (int_bound 50)))
    (fun (xs, ys) ->
      let a = Enum.of_list ~name:"a" xs and b = Enum.of_list ~name:"b" ys in
      let merged = Enum.to_list (Enum.interleave a b) in
      List.length merged = List.length xs + List.length ys
      && List.for_all (fun x -> List.mem x merged) xs
      && List.for_all (fun y -> List.mem y merged) ys)

(* Engine invariants *)

let halt_at k =
  Strategy.make ~name:"halt-at"
    ~init:(fun () -> 0)
    ~step:(fun _rng n (_ : Io.User.obs) ->
      if n + 1 >= k then (n + 1, Io.User.halt_act)
      else (n + 1, Io.User.say_world (Msg.Int n)))

let prop_exec_silent_after_halt =
  QCheck.Test.make ~count:60 ~name:"Exec: user emits silence after halting"
    QCheck.(pair (int_bound 1_000_000) (1 -- 20))
    (fun (seed, k) ->
      let h =
        Exec.run
          ~config:(Exec.config ~horizon:60 ~drain:4 ())
          ~goal:echo_goal ~user:(halt_at k) ~server:idle_server (Rng.make seed)
      in
      match History.halt_round h with
      | None -> false
      | Some r ->
          List.for_all
            (fun (round : History.Round.t) ->
              round.index <= r
              || (Msg.is_silence round.user_to_server
                 && Msg.is_silence round.user_to_world))
            (History.rounds h))

let prop_exec_drain_bound =
  QCheck.Test.make ~count:60 ~name:"Exec: run ends within drain rounds of the halt"
    QCheck.(triple (int_bound 1_000_000) (1 -- 20) (0 -- 5))
    (fun (seed, k, drain) ->
      let h =
        Exec.run
          ~config:(Exec.config ~horizon:100 ~drain ())
          ~goal:echo_goal ~user:(halt_at k) ~server:idle_server (Rng.make seed)
      in
      match History.halt_round h with
      | None -> false
      | Some r -> History.length h = min 100 (r + drain))

let prop_history_prefix_views =
  QCheck.Test.make ~count:60 ~name:"History: prefix commutes with world_views"
    QCheck.(triple (int_bound 1_000_000) (1 -- 40) (0 -- 40))
    (fun (seed, horizon, cut) ->
      let h =
        Exec.run
          ~config:(Exec.config ~horizon ())
          ~goal:echo_goal ~user:chatty ~server:idle_server (Rng.make seed)
      in
      let cut = min cut (History.length h) in
      History.world_views (History.prefix cut h)
      = Listx.take (cut + 1) (History.world_views h))

(* --- Chunked History vs the list model --------------------------------

   History stores rounds in chunked arrays; these properties pin every
   observable to what the plain list representation gives: the round
   list itself, world views (both directions), halt bookkeeping,
   prefixes at random cuts (spanning chunk boundaries: lengths run past
   64 * 2), the reconstructed trace, and the incremental Builder path
   against the one-shot [make]. *)

let round_of_payload i (a, b, halted) : History.Round.t =
  let msg k = if k = 0 then Msg.Silence else Msg.Int k in
  {
    History.Round.index = i + 1;
    user_to_server = msg a;
    user_to_world = msg (a + 1);
    server_to_user = msg b;
    server_to_world = Msg.Silence;
    world_to_user = msg (b + 2);
    world_to_server = Msg.Silence;
    world_view = Msg.Int (a + b);
    user_halted = halted;
  }

let rounds_gen =
  QCheck.(
    list_of_size
      Gen.(0 -- 150)
      (triple (int_bound 3) (int_bound 3)
         (map (fun n -> n = 0) (int_bound 9))))

(* The pre-chunking trace reconstruction, verbatim: the list fold the
   chunked [History.trace_events] must agree with. *)
let trace_events_list_model ~initial_world_view:_ (rounds : History.Round.t list) =
  let emit round src dst msg acc =
    if Msg.is_silence msg then acc
    else Trace.Emit { round; src; dst; msg } :: acc
  in
  let events, halt_seen =
    List.fold_left
      (fun (acc, halt_seen) (r : History.Round.t) ->
        let acc = Trace.Round_start { round = r.index } :: acc in
        let acc =
          emit r.index Trace.User Trace.Server r.user_to_server acc
          |> emit r.index Trace.User Trace.World r.user_to_world
          |> emit r.index Trace.Server Trace.User r.server_to_user
          |> emit r.index Trace.Server Trace.World r.server_to_world
          |> emit r.index Trace.World Trace.User r.world_to_user
          |> emit r.index Trace.World Trace.Server r.world_to_server
        in
        if r.user_halted && not halt_seen then
          (Trace.Halt { round = r.index } :: acc, true)
        else (acc, halt_seen))
      ([], false) rounds
  in
  List.rev
    (Trace.Run_end { rounds = List.length rounds; halted = halt_seen } :: events)

let prop_history_chunks_equal_list_model =
  QCheck.Test.make ~count:120 ~name:"History: chunked storage = list model"
    QCheck.(pair rounds_gen (int_bound 160))
    (fun (payloads, cut) ->
      let rounds = List.mapi round_of_payload payloads in
      let init = Msg.Int 0 in
      let h = History.make ~initial_world_view:init rounds in
      let n = List.length rounds in
      History.rounds h = rounds
      && History.length h = n
      && History.world_views h
         = init :: List.map (fun (r : History.Round.t) -> r.world_view) rounds
      && History.world_views_rev h = List.rev (History.world_views h)
      && History.halted h
         = List.exists (fun (r : History.Round.t) -> r.user_halted) rounds
      && History.halt_round h
         = List.find_map
             (fun (r : History.Round.t) ->
               if r.user_halted then Some r.index else None)
             rounds
      && History.fold_rounds h ~init:[] ~f:(fun acc r -> r :: acc)
         = List.rev rounds
      && List.for_all
           (fun i -> History.round_exn h i = List.nth rounds i)
           (if n = 0 then [] else [ 0; n / 2; n - 1 ])
      && History.trace_events h
         = trace_events_list_model ~initial_world_view:init rounds
      &&
      let p = History.prefix cut h in
      let cut = min cut n in
      History.rounds p = Listx.take cut rounds
      && History.length p = cut
      && History.halt_round p
         = List.find_map
             (fun (r : History.Round.t) ->
               if r.user_halted then Some r.index else None)
             (Listx.take cut rounds)
      && History.halted p
         = List.exists
             (fun (r : History.Round.t) -> r.user_halted)
             (Listx.take cut rounds))

let prop_history_builder_equals_make =
  QCheck.Test.make ~count:120 ~name:"History: Builder.add* = make of the same list"
    rounds_gen
    (fun payloads ->
      let rounds = List.mapi round_of_payload payloads in
      let init = Msg.Int 0 in
      let b = History.Builder.create ~initial_world_view:init in
      List.iter (History.Builder.add b) rounds;
      let incremental = History.Builder.finish b in
      let oneshot = History.make ~initial_world_view:init rounds in
      History.rounds incremental = History.rounds oneshot
      && History.length incremental = History.length oneshot
      && History.Builder.length b = List.length rounds
      && History.halt_round incremental = History.halt_round oneshot
      && History.world_views incremental = History.world_views oneshot
      && History.trace_events incremental = History.trace_events oneshot)

let prop_multi_session_count =
  QCheck.Test.make ~count:40 ~name:"Multi_session: completed sessions = floor(horizon/len)"
    QCheck.(pair (int_bound 1_000_000) (pair (5 -- 20) (1 -- 6)))
    (fun (seed, (session_length, k)) ->
      let base =
        Goal.make ~name:"never" ~worlds:[ echo_world ]
          ~referee:(Referee.finite "no" (fun _ -> false))
      in
      let goal = Multi_session.goal ~session_length base in
      let horizon = (session_length * k) + 3 in
      let user =
        Multi_session.wrap_user
          (Strategy.stateless ~name:"mute" (fun (_ : Io.User.obs) -> Io.User.silent))
      in
      let h =
        Exec.run
          ~config:(Exec.config ~horizon ())
          ~goal ~user ~server:idle_server (Rng.make seed)
      in
      List.length (Multi_session.session_results h) = k)

let prop_halt_on_positive_immediate =
  QCheck.Test.make ~count:40 ~name:"halt_on_positive: constant verdicts behave"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let always = Sensing.constant Sensing.Positive in
      let never = Sensing.constant Sensing.Negative in
      let run sensing =
        Exec.run
          ~config:(Exec.config ~horizon:30 ())
          ~goal:echo_goal
          ~user:(Sensing.halt_on_positive sensing chatty)
          ~server:idle_server (Rng.make seed)
      in
      History.halt_round (run always) = Some 1
      && History.halt_round (run never) = None)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_pair_roundtrip;
      prop_list_roundtrip;
      prop_tuple_roundtrip;
      prop_dist_normalised;
      prop_dist_sample_in_support;
      prop_dist_map_normalised;
      prop_rng_int_bounds;
      prop_rng_deterministic;
      prop_stats_mean_bounded;
      prop_stats_percentile_bounded;
      prop_mealy_roundtrip;
      prop_mealy_run_length;
      prop_mealy_bisimulation_reflexive;
      prop_dialect_inverse;
      prop_dialect_lehmer_roundtrip;
      prop_dialect_msg_roundtrip;
      prop_grid_bfs_valid;
      prop_planted_satisfiable;
      prop_dpll_sound;
      prop_levin_work_monotone;
      prop_exec_deterministic;
      prop_exec_history_well_formed;
      prop_view_prefix_lengths;
      prop_compact_violations_sorted;
      prop_dialect_group_laws;
      prop_mealy_cascade_law;
      prop_enum_interleave_complete;
      prop_exec_silent_after_halt;
      prop_exec_drain_bound;
      prop_history_prefix_views;
      prop_history_chunks_equal_list_model;
      prop_history_builder_equals_make;
      prop_multi_session_count;
      prop_halt_on_positive_immediate;
      prop_gf_field_laws;
      prop_poly_lagrange_identity;
      prop_sumcheck_complete_and_sound;
      prop_transfer_relay_roundtrip;
      prop_printing_informed_always_succeeds;
      prop_codec_cnf_roundtrip;
    ]

let () = Alcotest.run "properties" [ ("qcheck", suite) ]
