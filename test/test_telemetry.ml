(* Telemetry-layer tests: the binary event codec (qcheck roundtrips,
   including adversarial Text payloads), the ring sink's wrap/eviction/
   compaction behaviour, the ring-vs-JSONL capture acceptance on a real
   supervised run, Rollup merge determinism across jobs counts, and the
   golden stats snapshot frozen by `goalcom trace-golden`. *)

open Goalcom
open Goalcom_session
open Goalcom_harness
module Binary = Goalcom_obs.Binary
module Ring = Goalcom_obs.Ring
module Rollup = Goalcom_obs.Rollup
module Jsonl = Goalcom_obs.Jsonl
module Trace_diff = Goalcom_obs.Trace_diff
module Json = Goalcom_obs.Json

let qcount = 200

(* --- Generators ------------------------------------------------------- *)

(* Adversarial strings: arbitrary bytes, so Text payloads cover NUL,
   newlines, quotes, and high bytes — everything the length-prefixed
   binary framing must carry verbatim (and at sizes straddling the
   word-copy / blit split at 8 and 16 bytes). *)
let raw_string_gen =
  QCheck.Gen.(
    map Bytes.unsafe_to_string
      (map
         (fun l -> Bytes.init (List.length l) (List.nth l))
         (list_size (0 -- 40) (map Char.chr (0 -- 255)))))

let msg_gen =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        let leaf =
          oneof
            [
              return Msg.Silence;
              map (fun s -> Msg.Sym s) (0 -- 1000);
              map (fun i -> Msg.Int i)
                (oneof [ small_signed_int; int; return min_int; return max_int ]);
              map (fun s -> Msg.Text s) raw_string_gen;
            ]
        in
        if n <= 1 then leaf
        else
          frequency
            [
              (3, leaf);
              ( 1,
                map2 (fun a b -> Msg.Pair (a, b)) (self (n / 2)) (self (n / 2))
              );
              (1, map (fun ms -> Msg.Seq ms) (list_size (0 -- 4) (self (n / 3))));
            ]))

let party_gen = QCheck.Gen.oneofl [ Trace.User; Trace.Server; Trace.World ]

let event_gen =
  QCheck.Gen.(
    let int_field = oneof [ small_nat; int_bound 100_000; return 0 ] in
    oneof
      [
        map
          (fun ((goal, user), (server, (horizon, (drain, world_choice)))) ->
            Trace.Run_start { goal; user; server; horizon; drain; world_choice })
          (pair
             (pair raw_string_gen raw_string_gen)
             (pair raw_string_gen (pair int_field (pair int_field int_field))));
        map (fun round -> Trace.Round_start { round }) int_field;
        map
          (fun (round, (src, (dst, msg))) ->
            Trace.Emit { round; src; dst; msg })
          (pair int_field (pair party_gen (pair party_gen msg_gen)));
        map (fun round -> Trace.Halt { round }) int_field;
        map
          (fun (round, (sensor, (positive, (clock, patience)))) ->
            Trace.Sense { round; sensor; positive; clock; patience })
          (pair int_field
             (pair raw_string_gen (pair bool (pair int_field int_field))));
        map
          (fun (round, (from_index, (to_index, attempt))) ->
            Trace.Switch { round; from_index; to_index; attempt })
          (pair int_field (pair int_field (pair int_field int_field)));
        map
          (fun (index, slots) -> Trace.Resume { index; slots })
          (pair int_field int_field);
        map
          (fun (round, (index, budget)) -> Trace.Session { round; index; budget })
          (pair int_field (pair int_field int_field));
        map
          (fun (round, (fault, detail)) -> Trace.Fault { round; fault; detail })
          (pair int_field (pair raw_string_gen raw_string_gen));
        map (fun round -> Trace.Violation { round }) int_field;
        map
          (fun (rounds, halted) -> Trace.Run_end { rounds; halted })
          (pair int_field bool);
        map
          (fun (tick, (session, (action, detail))) ->
            Trace.Supervise { tick; session; action; detail })
          (pair int_field (pair int_field (pair raw_string_gen raw_string_gen)));
        map
          (fun ((server_class, enum), (index, (accepted, detail))) ->
            Trace.Warm { server_class; enum; index; accepted; detail })
          (pair
             (pair raw_string_gen raw_string_gen)
             (pair (oneof [ int_field; return (-1) ]) (pair bool raw_string_gen)));
      ])

let event_arb =
  QCheck.make event_gen ~print:(fun ev -> Goalcom_obs.Jsonl.event_to_json ev)

(* --- Binary codec ----------------------------------------------------- *)

let prop_binary_roundtrip =
  QCheck.Test.make ~count:qcount ~name:"Binary: event roundtrips exactly"
    event_arb (fun ev ->
      match Binary.event_of_string (Binary.event_to_string ev) with
      | Ok ev' -> ev' = ev
      | Error e -> QCheck.Test.fail_report ("decode failed: " ^ e))

let prop_binary_stream_roundtrip =
  QCheck.Test.make ~count:(qcount / 2)
    ~name:"Binary: concatenated stream decodes in order"
    QCheck.(make QCheck.Gen.(list_size (0 -- 20) event_gen))
    (fun evs ->
      let b = Buffer.create 256 in
      List.iter (Binary.add_event b) evs;
      match Binary.decode_all (Buffer.contents b) with
      | Ok evs' -> evs' = evs
      | Error e -> QCheck.Test.fail_report ("decode_all failed: " ^ e))

(* A cursor used via [put_event] (append, no rewind — the ring's mode)
   frames every event so each slice decodes independently. *)
let prop_binary_cursor_slices =
  QCheck.Test.make ~count:(qcount / 2)
    ~name:"Binary: cursor appends decode slice by slice"
    QCheck.(make QCheck.Gen.(list_size (1 -- 12) event_gen))
    (fun evs ->
      let e = Binary.enc_create 16 in
      let slices =
        List.map
          (fun ev ->
            let start = Binary.enc_len e in
            Binary.put_event e ev;
            (start, Binary.enc_len e - start))
          evs
      in
      let buf = Binary.enc_bytes e in
      List.for_all2
        (fun ev (start, len) ->
          Binary.event_of_string (Bytes.sub_string buf start len) = Ok ev)
        evs slices)

let test_binary_rejects_garbage () =
  (match Binary.event_of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty string decoded");
  (match Binary.event_of_string "\255\255\255\255" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad tag decoded");
  (* A truncated event must fail cleanly, not read out of bounds. *)
  let s = Binary.event_to_string (Trace.Fault { round = 9; fault = "f"; detail = "dddddddddd" }) in
  match Binary.event_of_string (String.sub s 0 (String.length s - 3)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated event decoded"

(* --- Ring wrap / eviction / compaction -------------------------------- *)

let ev_of_int i =
  Trace.Emit { round = i; src = Trace.User; dst = Trace.Server; msg = Msg.Int i }

let test_ring_retains_before_wrap () =
  let r = Ring.create ~capacity:4 in
  let sink = Ring.sink r in
  List.iter (fun i -> sink (ev_of_int i)) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Ring.length r);
  Alcotest.(check int) "evicted" 0 (Ring.evicted r);
  Alcotest.(check int) "domains" 1 (Ring.domains r);
  Alcotest.(check bool) "events" true
    (Ring.events r = List.map ev_of_int [ 1; 2; 3 ])

let test_ring_wraps_to_last_capacity () =
  let r = Ring.create ~capacity:4 in
  let sink = Ring.sink r in
  for i = 1 to 10 do
    sink (ev_of_int i)
  done;
  Alcotest.(check int) "length" 4 (Ring.length r);
  Alcotest.(check int) "evicted" 6 (Ring.evicted r);
  Alcotest.(check bool) "last 4 retained" true
    (Ring.events r = List.map ev_of_int [ 7; 8; 9; 10 ]);
  Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Ring.length r);
  Alcotest.(check int) "evicted reset" 0 (Ring.evicted r);
  sink (ev_of_int 11);
  Alcotest.(check bool) "usable after clear" true
    (Ring.events r = [ ev_of_int 11 ])

(* Thousands of evictions with size-varying events: the arena compacts
   many times over; after every batch the ring must still decode to
   exactly the last [capacity] events. *)
let test_ring_compaction_preserves_tail () =
  let cap = 8 in
  let r = Ring.create ~capacity:cap in
  let sink = Ring.domain_sink r in
  let mk i =
    Trace.Fault
      { round = i; fault = "f"; detail = String.make (i mod 97) 'x' }
  in
  for batch = 0 to 49 do
    for k = 1 to 100 do
      sink (mk ((batch * 100) + k))
    done;
    let last = (batch * 100) + 100 in
    let expect = List.init cap (fun j -> mk (last - cap + 1 + j)) in
    if Ring.events r <> expect then
      Alcotest.failf "batch %d: tail mismatch after compaction" batch
  done;
  Alcotest.(check int) "evicted" (5000 - cap) (Ring.evicted r)

(* --- Capture acceptance: ring vs JSONL on a supervised run ------------ *)

let chaos_specs sessions = E18_chaos_matrix.specs ~sessions ()

let test_ring_matches_jsonl_capture () =
  let specs = chaos_specs 12 in
  let config = Engine.config ~quantum:32 () in
  let run () =
    ignore (Engine.run ~config ~jobs:2 ~specs ~seed:77 ())
  in
  let buf = ref [] in
  Trace.with_sink (fun ev -> buf := ev :: !buf) run;
  let jsonl_events = List.rev !buf in
  let r = Ring.create ~capacity:(List.length jsonl_events + 16) in
  Trace.with_sink (Ring.domain_sink r) run;
  let ring_events = Ring.events r in
  Alcotest.(check int) "no eviction" 0 (Ring.evicted r);
  (match Trace.check Trace.standard ring_events with
  | Ok () -> ()
  | Error e -> Alcotest.failf "drained ring fails invariants: %s" e);
  (match Trace_diff.events jsonl_events ring_events with
  | None -> ()
  | Some d ->
      Alcotest.failf "ring / jsonl divergence: %s"
        (Trace_diff.to_string ~left_label:"jsonl" ~right_label:"ring" d));
  (* Same events -> byte-identical JSONL rendering. *)
  Alcotest.(check bool) "jsonl lines equal" true
    (Jsonl.to_lines jsonl_events = Jsonl.to_lines ring_events)

(* --- Rollup ------------------------------------------------------------ *)

(* The engine makes supervision decisions in its sequential phase, so a
   live rollup fed from on_supervise is bit-identical across jobs
   counts. *)
let test_rollup_deterministic_across_jobs () =
  let snapshot_at jobs =
    let specs = chaos_specs 16 in
    let class_of id = specs.(id).Engine.server_class in
    let r = Rollup.create ~class_of () in
    let on_supervise = Rollup.supervise r in
    ignore
      (Engine.run
         ~config:(Engine.config ~quantum:32 ())
         ~jobs ~on_supervise ~specs ~seed:5 ());
    Rollup.to_json (Rollup.snapshot r)
  in
  let s1 = snapshot_at 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d snapshot" jobs)
        s1 (snapshot_at jobs))
    [ 2; 4 ]

(* Merging shard rollups equals feeding one rollup the whole stream,
   and the merge is order-insensitive on the counters. *)
let test_rollup_merge_matches_single_stream () =
  let specs = chaos_specs 16 in
  let class_of id = specs.(id).Engine.server_class in
  let decisions = ref [] in
  ignore
    (Engine.run
       ~config:(Engine.config ~quantum:32 ())
       ~jobs:1
       ~on_supervise:(fun ~tick ~session ~action ~detail ->
         decisions := (tick, session, action, detail) :: !decisions)
       ~specs ~seed:5 ());
  let decisions = List.rev !decisions in
  let whole = Rollup.create ~class_of () in
  let a = Rollup.create ~class_of () in
  let b = Rollup.create ~class_of () in
  List.iteri
    (fun i (tick, session, action, detail) ->
      Rollup.supervise whole ~tick ~session ~action ~detail;
      Rollup.supervise (if i mod 2 = 0 then a else b) ~tick ~session ~action
        ~detail)
    decisions;
  Rollup.merge ~into:a b;
  Alcotest.(check string) "merged = single stream"
    (Rollup.to_json (Rollup.snapshot whole))
    (Rollup.to_json (Rollup.snapshot a))

let test_rollup_json_roundtrip () =
  let json = Trace_cases.rollup_stats () in
  match Json.parse json with
  | Error e -> Alcotest.failf "snapshot JSON unparseable: %s" e
  | Ok j -> (
      match Rollup.snapshot_of_json j with
      | Error e -> Alcotest.failf "snapshot_of_json: %s" e
      | Ok snap ->
          Alcotest.(check string) "re-rendered snapshot" json
            (Rollup.to_json snap))

(* Histogram edges: exact unit buckets below 64, bounded relative error
   above, deterministic merge. *)
let test_hist_edges () =
  let h = Rollup.Hist.create () in
  List.iter (Rollup.Hist.add h) [ 0; 1; 63; 64; 1000; 100_000 ];
  Alcotest.(check int) "total" 6 (Rollup.Hist.total h);
  Alcotest.(check int) "p0 exact" 0 (Rollup.Hist.percentile 0. h);
  List.iter
    (fun v ->
      Alcotest.(check int)
        (Printf.sprintf "small value %d exact" v)
        v
        (Rollup.Hist.upper_of (Rollup.Hist.bucket_of v)))
    [ 0; 1; 13; 63 ];
  List.iter
    (fun v ->
      let ub = Rollup.Hist.upper_of (Rollup.Hist.bucket_of v) in
      if ub < v then Alcotest.failf "upper_of(bucket_of %d) = %d < v" v ub;
      if float_of_int (ub - v) > (float_of_int v /. 16.) +. 1. then
        Alcotest.failf "bucket error too large at %d: %d" v ub)
    [ 64; 65; 100; 1000; 12_345; 1_000_000 ]

(* --- Golden stats snapshot -------------------------------------------- *)

let test_stats_golden () =
  let path = Filename.concat "golden" "stats_e18_chaos.json" in
  let expected = String.concat "\n" (Jsonl.read_lines path) in
  let actual = Trace_cases.rollup_stats () in
  if expected <> actual then
    Alcotest.failf
      "stats snapshot drifted from %s;\nexpected: %s\nactual:   %s\n\
       if the change is intended, regenerate with `dune exec bin/main.exe -- \
       trace-golden test/golden`"
      path expected actual

let suite =
  [
    QCheck_alcotest.to_alcotest prop_binary_roundtrip;
    QCheck_alcotest.to_alcotest prop_binary_stream_roundtrip;
    QCheck_alcotest.to_alcotest prop_binary_cursor_slices;
    Alcotest.test_case "binary rejects garbage" `Quick
      test_binary_rejects_garbage;
    Alcotest.test_case "ring retains before wrap" `Quick
      test_ring_retains_before_wrap;
    Alcotest.test_case "ring wraps to last capacity" `Quick
      test_ring_wraps_to_last_capacity;
    Alcotest.test_case "ring compaction preserves tail" `Quick
      test_ring_compaction_preserves_tail;
    Alcotest.test_case "ring matches jsonl capture" `Quick
      test_ring_matches_jsonl_capture;
    Alcotest.test_case "rollup deterministic across jobs" `Quick
      test_rollup_deterministic_across_jobs;
    Alcotest.test_case "rollup merge = single stream" `Quick
      test_rollup_merge_matches_single_stream;
    Alcotest.test_case "rollup json roundtrip" `Quick
      test_rollup_json_roundtrip;
    Alcotest.test_case "histogram edges" `Quick test_hist_edges;
    Alcotest.test_case "stats golden snapshot" `Quick test_stats_golden;
  ]

let () = Alcotest.run "telemetry" [ ("telemetry", suite) ]
