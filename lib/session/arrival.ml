open Goalcom_prelude

(* Deterministic arrival-rate processes.

   The engine draws "how many sessions arrive this tick" from one of
   these processes, using a dedicated RNG stream split from the run
   seed *after* every per-session stream — so runs that use [Bang] or
   [Constant] (which consume no randomness) keep the exact digests
   they had before arrival processes existed.

   Everything here must be bit-identical across hosts.  The Poisson
   sampler therefore avoids libm: [exp_neg] is computed with IEEE
   basic operations only (argument halving + a Taylor tail + repeated
   squaring), which every conforming platform rounds identically. *)

type t =
  | Bang
  | Constant of int
  | Poisson of float
  | Mmpp of { rates : float array; switch : float }

type state = { mutable regime : int }

let start _ = { regime = 0 }

(* e^{-x} for x >= 0 without libm: halve x until <= 0.5, sum the
   alternating Taylor series (21 terms bounds the error far below one
   ulp at |y| <= 0.5), then square back up. *)
let exp_neg x =
  if x <= 0. then 1.
  else begin
    let y = ref x and k = ref 0 in
    while !y > 0.5 do
      y := !y /. 2.;
      incr k
    done;
    let term = ref 1. and sum = ref 1. in
    for i = 1 to 20 do
      term := !term *. -. !y /. float_of_int i;
      sum := !sum +. !term
    done;
    let r = ref !sum in
    for _ = 1 to !k do
      r := !r *. !r
    done;
    !r
  end

(* Knuth's product-of-uniforms sampler.  exp(-lambda) underflows past
   lambda ~ 745, so large rates are sampled as a sum of independent
   chunks of at most 16 (Poisson is additive); the chunk draws come
   from the same stream in a fixed order, keeping determinism. *)
let rec poisson rng lambda =
  if lambda <= 0. then 0
  else if lambda > 16. then
    poisson rng 16. + poisson rng (lambda -. 16.)
  else begin
    let l = exp_neg lambda in
    let k = ref 0 and p = ref 1. in
    let continue = ref true in
    while !continue do
      p := !p *. Rng.float rng 1.;
      if !p <= l then continue := false else incr k
    done;
    !k
  end

let draw t state ~rng ~tick ~remaining =
  let n =
    match t with
    | Bang -> if tick = 1 then remaining else 0
    | Constant k -> k
    | Poisson rate -> poisson rng rate
    | Mmpp { rates; switch } ->
        (* Geometric dwell times: each tick, first decide whether to
           advance to the next regime (cyclically), then sample at the
           current regime's rate.  Both draws happen every tick, so
           the stream layout does not depend on past outcomes. *)
        let hop = Rng.bernoulli rng switch in
        if hop then state.regime <- (state.regime + 1) mod Array.length rates;
        poisson rng rates.(state.regime)
  in
  min n remaining

let to_string = function
  | Bang -> "bang"
  | Constant k -> string_of_int k
  | Poisson r -> Printf.sprintf "poisson:%g" r
  | Mmpp { rates; switch } ->
      Printf.sprintf "mmpp:%s:%g"
        (String.concat ","
           (Array.to_list (Array.map (Printf.sprintf "%g") rates)))
        switch

let of_string s =
  let s = String.trim s in
  let float_arg name v =
    match float_of_string_opt v with
    | Some f when f >= 0. && Float.is_finite f -> Ok f
    | _ -> Error (Printf.sprintf "Arrival.of_string: bad %s rate %S" name v)
  in
  match String.lowercase_ascii s with
  | "bang" | "all" -> Ok Bang
  | low -> (
      match int_of_string_opt s with
      | Some k when k >= 0 -> Ok (if k = 0 then Bang else Constant k)
      | Some _ -> Error "Arrival.of_string: negative constant rate"
      | None -> (
          match String.split_on_char ':' low with
          | [ "constant"; v ] -> (
              match int_of_string_opt v with
              | Some k when k >= 0 -> Ok (if k = 0 then Bang else Constant k)
              | _ ->
                  Error
                    (Printf.sprintf "Arrival.of_string: bad constant rate %S" v))
          | [ "poisson"; v ] ->
              Result.map (fun r -> Poisson r) (float_arg "poisson" v)
          | "mmpp" :: rates :: rest -> (
              let switch =
                match rest with
                | [] -> Ok 0.1
                | [ v ] -> (
                    match float_of_string_opt v with
                    | Some p when p >= 0. && p <= 1. -> Ok p
                    | _ ->
                        Error
                          (Printf.sprintf
                             "Arrival.of_string: mmpp switch probability %S \
                              not in [0,1]"
                             v))
                | _ -> Error "Arrival.of_string: too many ':' in mmpp spec"
              in
              match switch with
              | Error _ as e -> e
              | Ok switch -> (
                  let parts = String.split_on_char ',' rates in
                  let rec go acc = function
                    | [] -> Ok (List.rev acc)
                    | v :: rest -> (
                        match float_arg "mmpp" v with
                        | Ok r -> go (r :: acc) rest
                        | Error _ as e -> e)
                  in
                  match go [] parts with
                  | Error _ as e -> e
                  | Ok [] | Ok [ _ ] ->
                      Error "Arrival.of_string: mmpp wants >= 2 rates"
                  | Ok rs -> Ok (Mmpp { rates = Array.of_list rs; switch })))
          | _ ->
              Error
                (Printf.sprintf
                   "Arrival.of_string: %S (want bang | N | constant:N | \
                    poisson:R | mmpp:R1,R2,..[:P])"
                   s)))
