type literal = int
type clause = literal list
type t = { num_vars : int; clauses : clause list }

let make ~num_vars clauses =
  if num_vars <= 0 then invalid_arg "Cnf.make: num_vars must be positive";
  List.iter
    (fun clause ->
      if clause = [] then invalid_arg "Cnf.make: empty clause";
      List.iter
        (fun lit ->
          let v = abs lit in
          if lit = 0 || v > num_vars then
            invalid_arg (Printf.sprintf "Cnf.make: bad literal %d" lit))
        clause)
    clauses;
  { num_vars; clauses }

type assignment = bool array

let eval_literal assignment lit =
  let v = abs lit in
  if lit > 0 then assignment.(v) else not assignment.(v)

let eval_clause assignment clause =
  List.exists (eval_literal assignment) clause

let eval t assignment =
  if Array.length assignment <> t.num_vars + 1 then
    invalid_arg "Cnf.eval: assignment length mismatch";
  List.for_all (eval_clause assignment) t.clauses

let num_clauses t = List.length t.clauses

let to_string t =
  String.concat " "
    (List.map
       (fun clause ->
         "(" ^ String.concat " " (List.map string_of_int clause) ^ ")")
       t.clauses)

let of_ints ~num_vars clauses = make ~num_vars clauses
