# Tier-1 verification in one command: `make check`.

.PHONY: all build test check ci bench clean

all: build

build:
	dune build

test:
	dune runtest

# Everything the CI gate requires, in order.
check: build test

# Mirror of .github/workflows/ci.yml: build, test, trace smoke, golden
# drift. Run before pushing.
ci: check
	dune exec bin/main.exe -- run e1 --trace /tmp/e1.jsonl
	test -s /tmp/e1.jsonl
	head -1 /tmp/e1.jsonl | grep -q '^{"ev":"'
	dune exec bin/main.exe -- trace-golden test/golden
	git diff --exit-code test/golden

# Regenerates every experiment table, runs the bechamel kernels, and
# writes BENCH_faults.json with the fault-layer timings.
bench:
	dune exec bench/main.exe

clean:
	dune clean
