open Goalcom

(* Hand-rolled JSON: the event vocabulary is closed and flat, so a
   printer per constructor beats a generic tree.  One object per line,
   the ["ev"] tag first, so the files stream through jq / grep. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""
let bool b = if b then "true" else "false"

let event_to_json (ev : Trace.event) =
  match ev with
  | Trace.Run_start { goal; user; server; horizon; drain; world_choice } ->
      Printf.sprintf
        "{\"ev\":\"run_start\",\"goal\":%s,\"user\":%s,\"server\":%s,\"horizon\":%d,\"drain\":%d,\"world_choice\":%d}"
        (str goal) (str user) (str server) horizon drain world_choice
  | Trace.Round_start { round } ->
      Printf.sprintf "{\"ev\":\"round_start\",\"round\":%d}" round
  | Trace.Emit { round; src; dst; msg } ->
      Printf.sprintf
        "{\"ev\":\"emit\",\"round\":%d,\"src\":%s,\"dst\":%s,\"msg\":%s}" round
        (str (Trace.party_name src))
        (str (Trace.party_name dst))
        (str (Msg.to_string msg))
  | Trace.Halt { round } -> Printf.sprintf "{\"ev\":\"halt\",\"round\":%d}" round
  | Trace.Sense { round; sensor; positive; clock; patience } ->
      Printf.sprintf
        "{\"ev\":\"sense\",\"round\":%d,\"sensor\":%s,\"positive\":%s,\"clock\":%d,\"patience\":%d}"
        round (str sensor) (bool positive) clock patience
  | Trace.Switch { round; from_index; to_index; attempt } ->
      Printf.sprintf
        "{\"ev\":\"switch\",\"round\":%d,\"from\":%d,\"to\":%d,\"attempt\":%d}"
        round from_index to_index attempt
  | Trace.Resume { index; slots } ->
      Printf.sprintf "{\"ev\":\"resume\",\"index\":%d,\"slots\":%d}" index slots
  | Trace.Session { round; index; budget } ->
      Printf.sprintf
        "{\"ev\":\"session\",\"round\":%d,\"index\":%d,\"budget\":%d}" round
        index budget
  | Trace.Fault { round; fault; detail } ->
      Printf.sprintf "{\"ev\":\"fault\",\"round\":%d,\"fault\":%s,\"detail\":%s}"
        round (str fault) (str detail)
  | Trace.Violation { round } ->
      Printf.sprintf "{\"ev\":\"violation\",\"round\":%d}" round
  | Trace.Run_end { rounds; halted } ->
      Printf.sprintf "{\"ev\":\"run_end\",\"rounds\":%d,\"halted\":%s}" rounds
        (bool halted)

let to_lines events = List.map event_to_json events

let sink oc ev =
  output_string oc (event_to_json ev);
  output_char oc '\n'

let buffer_sink b ev =
  Buffer.add_string b (event_to_json ev);
  Buffer.add_char b '\n'

let write_events oc events =
  List.iter (sink oc) events

let to_file path events =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      write_events oc events)
