type t =
  | Silence
  | Sym of int
  | Int of int
  | Text of string
  | Pair of t * t
  | Seq of t list

(* Monomorphic structural equality/ordering.  [Msg.equal] runs on every
   [is_silence] and trace guard in the round loop, and the wedge
   detector compares consecutive world observations each round;
   dispatching on known constructors avoids the polymorphic-compare
   runtime's tag walk.  [compare] keeps exactly the order
   [Stdlib.compare] gave this type (constant constructor first, then
   declaration order), so any existing sort stays stable. *)
let rec equal a b =
  match (a, b) with
  | Silence, Silence -> true
  | Sym a, Sym b | Int a, Int b -> Int.equal a b
  | Text a, Text b -> String.equal a b
  | Pair (a1, a2), Pair (b1, b2) -> equal a1 b1 && equal a2 b2
  | Seq a, Seq b -> equal_list a b
  | (Silence | Sym _ | Int _ | Text _ | Pair _ | Seq _), _ -> false

and equal_list a b =
  match (a, b) with
  | [], [] -> true
  | x :: xs, y :: ys -> equal x y && equal_list xs ys
  | ([] | _ :: _), _ -> false

let tag = function
  | Silence -> 0
  | Sym _ -> 1
  | Int _ -> 2
  | Text _ -> 3
  | Pair _ -> 4
  | Seq _ -> 5

let rec compare a b =
  match (a, b) with
  | Silence, Silence -> 0
  | Sym a, Sym b | Int a, Int b -> Int.compare a b
  | Text a, Text b -> String.compare a b
  | Pair (a1, a2), Pair (b1, b2) ->
      let c = compare a1 b1 in
      if c <> 0 then c else compare a2 b2
  | Seq a, Seq b -> compare_list a b
  | _ -> Int.compare (tag a) (tag b)

and compare_list a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
      let c = compare x y in
      if c <> 0 then c else compare_list xs ys

let is_silence = function Silence -> true | _ -> false

let rec pp ppf = function
  | Silence -> Format.pp_print_string ppf "_"
  | Sym s -> Format.fprintf ppf "#%d" s
  | Int n -> Format.fprintf ppf "%d" n
  | Text s -> Format.fprintf ppf "%S" s
  | Pair (a, b) -> Format.fprintf ppf "(%a,%a)" pp a pp b
  | Seq ms ->
      Format.fprintf ppf "[%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
           pp)
        ms

(* [add_buffer] renders the same grammar as [pp] straight into a
   buffer: no formatter, no intermediate strings.  The two must agree
   byte for byte — [of_string] below and the trace serialisers rely on
   this rendering.  (%S and [String.escaped] produce identical
   escapes.) *)
let rec add_buffer b = function
  | Silence -> Buffer.add_char b '_'
  | Sym s ->
      Buffer.add_char b '#';
      Buffer.add_string b (string_of_int s)
  | Int n -> Buffer.add_string b (string_of_int n)
  | Text s ->
      Buffer.add_char b '"';
      Buffer.add_string b (String.escaped s);
      Buffer.add_char b '"'
  | Pair (x, y) ->
      Buffer.add_char b '(';
      add_buffer b x;
      Buffer.add_char b ',';
      add_buffer b y;
      Buffer.add_char b ')'
  | Seq ms ->
      Buffer.add_char b '[';
      List.iteri
        (fun i m ->
          if i > 0 then Buffer.add_char b ';';
          add_buffer b m)
        ms;
      Buffer.add_char b ']'

let to_string m =
  let b = Buffer.create 32 in
  add_buffer b m;
  Buffer.contents b

(* Inverse of [to_string].  The grammar is unambiguous by first
   character: '_' silence, '#' symbol, '-'/digit integer, '"' an
   OCaml-escaped text literal (what %S prints), '(' pair, '[' seq. *)

exception Parse of string

let of_string s =
  let n = String.length s in
  let fail pos msg = raise (Parse (Printf.sprintf "%s at offset %d" msg pos)) in
  let peek pos = if pos < n then Some s.[pos] else None in
  let expect pos c =
    match peek pos with
    | Some c' when c' = c -> pos + 1
    | _ -> fail pos (Printf.sprintf "expected %C" c)
  in
  let parse_int pos =
    let start = pos in
    let pos = if peek pos = Some '-' then pos + 1 else pos in
    let stop = ref pos in
    while !stop < n && s.[!stop] >= '0' && s.[!stop] <= '9' do incr stop done;
    if !stop = pos then fail pos "expected digits";
    match int_of_string_opt (String.sub s start (!stop - start)) with
    | Some v -> (v, !stop)
    | None -> fail start "integer out of range"
  in
  (* OCaml string-literal escapes, as produced by String.escaped /
     printf %S: backslash-escaped backslash, quote, n, t, r, b, and
     backslash followed by three decimal digits. *)
  let parse_text pos =
    let b = Buffer.create 16 in
    let rec go pos =
      match peek pos with
      | None -> fail pos "unterminated string"
      | Some '"' -> (Buffer.contents b, pos + 1)
      | Some '\\' -> begin
          match peek (pos + 1) with
          | Some '\\' -> Buffer.add_char b '\\'; go (pos + 2)
          | Some '"' -> Buffer.add_char b '"'; go (pos + 2)
          | Some 'n' -> Buffer.add_char b '\n'; go (pos + 2)
          | Some 't' -> Buffer.add_char b '\t'; go (pos + 2)
          | Some 'r' -> Buffer.add_char b '\r'; go (pos + 2)
          | Some 'b' -> Buffer.add_char b '\b'; go (pos + 2)
          | Some c when c >= '0' && c <= '9' ->
              if pos + 3 >= n then fail pos "truncated decimal escape";
              let code =
                try int_of_string (String.sub s (pos + 1) 3)
                with _ -> fail pos "bad decimal escape"
              in
              if code > 255 then fail pos "decimal escape out of range";
              Buffer.add_char b (Char.chr code);
              go (pos + 4)
          | _ -> fail pos "unknown escape"
        end
      | Some c -> Buffer.add_char b c; go (pos + 1)
    in
    go pos
  in
  let rec parse_msg pos =
    match peek pos with
    | None -> fail pos "empty message"
    | Some '_' -> (Silence, pos + 1)
    | Some '#' ->
        let v, pos = parse_int (pos + 1) in
        (Sym v, pos)
    | Some ('-' | '0' .. '9') ->
        let v, pos = parse_int pos in
        (Int v, pos)
    | Some '"' ->
        let v, pos = parse_text (pos + 1) in
        (Text v, pos)
    | Some '(' ->
        let a, pos = parse_msg (pos + 1) in
        let pos = expect pos ',' in
        let b, pos = parse_msg pos in
        (Pair (a, b), expect pos ')')
    | Some '[' ->
        if peek (pos + 1) = Some ']' then (Seq [], pos + 2)
        else begin
          let rec items acc pos =
            let m, pos = parse_msg pos in
            match peek pos with
            | Some ';' -> items (m :: acc) (pos + 1)
            | Some ']' -> (Seq (List.rev (m :: acc)), pos + 1)
            | _ -> fail pos "expected ';' or ']'"
          in
          items [] (pos + 1)
        end
    | Some c -> fail pos (Printf.sprintf "unexpected %C" c)
  in
  match parse_msg 0 with
  | m, pos when pos = n -> Ok m
  | _, pos -> Error (Printf.sprintf "trailing input at offset %d in %S" pos s)
  | exception Parse msg -> Error (Printf.sprintf "%s in %S" msg s)

let sym_opt = function Sym s -> Some s | _ -> None
let int_opt = function Int n -> Some n | _ -> None
let text_opt = function Text s -> Some s | _ -> None

let seq_of_string s =
  Seq (List.map (fun c -> Int (Char.code c)) (List.init (String.length s) (String.get s)))

let string_of_seq = function
  | Seq ms ->
      let rec go acc = function
        | [] -> Some (String.concat "" (List.rev acc))
        | Int c :: rest when c >= 0 && c < 256 ->
            go (String.make 1 (Char.chr c) :: acc) rest
        | _ -> None
      in
      go [] ms
  | _ -> None
