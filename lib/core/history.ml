open Goalcom_prelude

module Round = struct
  type t = {
    index : int;
    user_to_server : Msg.t;
    user_to_world : Msg.t;
    server_to_user : Msg.t;
    server_to_world : Msg.t;
    world_to_user : Msg.t;
    world_to_server : Msg.t;
    world_view : Msg.t;
    user_halted : bool;
  }

  let pp ppf r =
    Format.fprintf ppf
      "@[<h>r%d: U->S %a | U->W %a | S->U %a | S->W %a | W->U %a | W->S %a | world %a%s@]"
      r.index Msg.pp r.user_to_server Msg.pp r.user_to_world Msg.pp
      r.server_to_user Msg.pp r.server_to_world Msg.pp r.world_to_user Msg.pp
      r.world_to_server Msg.pp r.world_view
      (if r.user_halted then " [halted]" else "")
end

(* [len] caches the round count: [length] is read per judgement, per
   finite-referee violation and per tail-cutoff computation, so it must
   not re-walk the round list. *)
type t = { initial_world_view : Msg.t; rounds : Round.t list; len : int }

let make ~initial_world_view rounds =
  let len = ref 0 in
  List.iteri
    (fun i (r : Round.t) ->
      if r.index <> i + 1 then
        invalid_arg
          (Printf.sprintf "History.make: round %d has index %d" (i + 1) r.index);
      incr len)
    rounds;
  { initial_world_view; rounds; len = !len }

let initial_world_view t = t.initial_world_view
let rounds t = t.rounds
let length t = t.len

let world_views t =
  t.initial_world_view :: List.map (fun (r : Round.t) -> r.world_view) t.rounds

let world_views_rev t = List.rev (world_views t)
let halted t = List.exists (fun (r : Round.t) -> r.user_halted) t.rounds

let halt_round t =
  List.find_map
    (fun (r : Round.t) -> if r.user_halted then Some r.index else None)
    t.rounds

let prefix n t =
  { t with rounds = Listx.take n t.rounds; len = min (max n 0) t.len }

(* Post-hoc reconstruction of the engine-level trace events from a
   recorded history: what Exec.run would have emitted for the same run
   minus Run_start (the config is not recorded) and minus the
   strategy-internal events (sensing, switches, faults), which only
   exist in live traces. *)
let trace_events t =
  let emit round src dst msg acc =
    if Msg.is_silence msg then acc
    else Trace.Emit { round; src; dst; msg } :: acc
  in
  let events, halt_seen =
    List.fold_left
      (fun (acc, halt_seen) (r : Round.t) ->
        let acc = Trace.Round_start { round = r.index } :: acc in
        let acc =
          emit r.index Trace.User Trace.Server r.user_to_server acc
          |> emit r.index Trace.User Trace.World r.user_to_world
          |> emit r.index Trace.Server Trace.User r.server_to_user
          |> emit r.index Trace.Server Trace.World r.server_to_world
          |> emit r.index Trace.World Trace.User r.world_to_user
          |> emit r.index Trace.World Trace.Server r.world_to_server
        in
        if r.user_halted && not halt_seen then
          (Trace.Halt { round = r.index } :: acc, true)
        else (acc, halt_seen))
      ([], false) t.rounds
  in
  List.rev
    (Trace.Run_end { rounds = length t; halted = halt_seen } :: events)

let pp ppf t =
  Format.fprintf ppf "@[<v>initial world %a@,%a@]" Msg.pp t.initial_world_view
    (Format.pp_print_list Round.pp)
    t.rounds
