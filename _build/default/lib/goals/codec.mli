(** Shared message encodings used by the concrete goals. *)

open Goalcom
open Goalcom_sat

val ints : int list -> Msg.t
(** [Seq] of [Int]. *)

val ints_opt : Msg.t -> int list option
(** Inverse of {!ints}. *)

val pair_of_ints : int list -> int list -> Msg.t
(** [Pair (ints a, ints b)] — e.g. (document, page). *)

val pair_of_ints_opt : Msg.t -> (int list * int list) option

val pos : Grid.pos -> Msg.t
val pos_opt : Msg.t -> Grid.pos option

val pos_pair : Grid.pos -> Grid.pos -> Msg.t
(** (position, target). *)

val pos_pair_opt : Msg.t -> (Grid.pos * Grid.pos) option

val cnf : Cnf.t -> Msg.t
(** [Pair (Int num_vars, Seq of clause Seqs)]. *)

val cnf_opt : Msg.t -> Cnf.t option
(** Returns [None] for ill-formed encodings (including invalid
    literals). *)

val assignment : bool list -> Msg.t
(** [Seq] of 0/1 [Int]s, variable 1 first. *)

val assignment_opt : num_vars:int -> Msg.t -> Cnf.assignment option
(** Decodes into the [num_vars + 1]-slot array convention. *)
