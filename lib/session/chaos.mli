(** Deterministic chaos schedules for the session engine.

    A schedule is a `;`-separated list of directives, each optionally
    restricted to a subset of sessions with a [%M=R] suffix (sessions
    whose id satisfies [id mod M = R]).  Directive forms:

    - [kill@T1,T2,..] — end the targeted sessions' current incarnation
      at scheduler ticks T1, T2 (the supervisor's restart policy then
      decides what happens next);
    - [crash:K@LO..HI] — reset the server's state every K rounds while
      the incarnation round is inside [LO..HI] (a windowed
      [Fault.crash_restart]);
    - [burst:P@LO..HI] — drop non-silent messages in either direction
      with probability P inside the window;
    - [blackout@LO..HI] — total server outage inside the window
      (state frozen, inbound lost, silence out);
    - [fault:STACK] — a static whole-run stack in the [lib/faults]
      grammar ([+]-joined), e.g. [fault:corrupt:0.05+delay:1].

    Storms count rounds {e per incarnation} (a restarted session sees
    the window again) and draw all randomness from the per-step
    execution RNG; kills are indexed by the scheduler tick.  A chaos
    run is therefore bit-exact replayable from (seed, schedule). *)

type target = { modulus : int; remainder : int }

val everyone : target
val targets : target -> int -> bool

type directive =
  | Kill of { ticks : int list; target : target }
  | Storm of { fault : Goalcom_faults.Fault.t; target : target }

type t

val none : t
(** The empty schedule. *)

val of_string : alphabet:int -> string -> (t, string) result
(** Parse a schedule.  [alphabet] is passed through to the
    [fault:STACK] directive's [Fault.stack_of_string].  Errors name
    the offending directive and the valid grammar. *)

val to_string : t -> string
(** The spec the schedule was parsed from ([""] for {!none}). *)

val directives : t -> directive list

val kills_at : t -> tick:int -> id:int -> bool

val stack_for : t -> id:int -> Goalcom_faults.Fault.t
(** The composed storm stack targeting session [id], in spec order
    ({!Goalcom_faults.Fault.nop} when nothing targets it). *)

(** {1 Storm combinators} (also usable directly, without the parser) *)

val crash_storm : every:int -> lo:int -> hi:int -> Goalcom_faults.Fault.t
val burst_window : prob:float -> lo:int -> hi:int -> Goalcom_faults.Fault.t
val blackout : lo:int -> hi:int -> Goalcom_faults.Fault.t
