(** Probabilistic forwarding: payload transfer over an imperfect link.

    The server is a {e relay}: it forwards the user's framed payload
    symbols to the world, which accumulates them.  The link is where
    the trouble lives — the relay may push every symbol through a noisy
    {!Link.wire} (symbol corruption via
    {!Goalcom_automata.Prob_mealy}), and fault stacks from
    {!Goalcom_faults.Fault} (spelled with the [loss:P] alias, plus
    [dup], [burst:...]) wrap the relay into a lossy, duplicating
    channel.  The goal is achieved when the world has received the
    whole payload word intact.

    The protocol is a stop-and-wait ARQ that tolerates all of it:
    frames carry a sequence number ([Pair (Sym data_cmd, Pair (Int
    seq, Int sym))]), the world appends a frame only when its sequence
    number is next (so duplicates are no-ops), and the world broadcasts
    [(payload, received)] every round, so the user retransmits until
    the prefix advances and issues [reset_cmd] when corruption has
    driven the prefix off course.  Command symbols — DATA and RESET —
    are what the server's dialect relabels; sequence numbers and
    payload travel as [Int]s, untouched by dialects. *)

open Goalcom
open Goalcom_automata

val data_cmd : int
val reset_cmd : int

val min_alphabet : int
(** 2: DATA and RESET. *)

type scenario

val scenario : payload_alphabet:int -> int list -> scenario
(** The payload word the world wants delivered.
    @raise Invalid_argument on an empty word or out-of-range
    symbols. *)

val payload : scenario -> int list

(** {1 Servers (the relay, behind a dialect)} *)

val relay :
  ?wire:Prob_mealy.t -> alphabet:int -> payload_alphabet:int -> unit ->
  Strategy.server
(** The canonical-dialect relay.  [wire] (e.g. {!Link.wire}) is
    stepped once per forwarded frame with the per-step RNG — symbol
    corruption on the forward path.  @raise Invalid_argument if
    [alphabet < min_alphabet] or the wire's alphabet does not match. *)

val server :
  ?wire:Prob_mealy.t -> alphabet:int -> payload_alphabet:int -> Dialect.t ->
  Strategy.server

val server_class :
  ?wire:Prob_mealy.t -> alphabet:int -> payload_alphabet:int ->
  Dialect.t Enum.t -> Strategy.server Enum.t

(** {1 The goal} *)

val world_of_scenario : scenario -> World.t
(** State view [(payload, received)]. *)

val delivered : Msg.t -> bool
val referee : Referee.t
val goal : scenarios:scenario list -> alphabet:int -> unit -> Goal.t

(** {1 Users} *)

val informed_user : alphabet:int -> Dialect.t -> Strategy.user
(** Dialect-informed ARQ sender: retransmits the first missing symbol
    until the broadcast prefix advances, resets when the prefix
    derails, halts on completion.  Memoryless — every decision is a
    function of the latest broadcast. *)

val user_class : alphabet:int -> Dialect.t Enum.t -> Strategy.user Enum.t
val sensing : Sensing.t

val universal_user :
  ?schedule:Levin.slot Seq.t ->
  ?checkpoint:Universal.checkpoint ->
  ?stats:Universal.stats ->
  alphabet:int ->
  Dialect.t Enum.t ->
  Strategy.user
