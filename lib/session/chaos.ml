open Goalcom_prelude
open Goalcom
module Fault = Goalcom_faults.Fault

(* Deterministic chaos schedules.

   A schedule is a `;`-separated list of directives, each optionally
   targeting a subset of sessions by id (`%M=R`: sessions with
   id mod M = R).  Two kinds of directive exist:

   - engine-level kills: `kill@T1,T2` ends the targeted sessions'
     current incarnation at scheduler ticks T1, T2 (the supervisor then
     applies its restart policy) — the session-engine analogue of
     kill -9 on a worker;

   - storms: lib/faults wrappers with their own round counters, active
     only inside a window of *incarnation* rounds, applied to the
     server of every incarnation of the targeted sessions.
     `crash:K@LO..HI` resets the server's state every K rounds while
     the incarnation's round is in [LO,HI]; `burst:P@LO..HI` drops
     non-silent messages in either direction with probability P inside
     the window; `blackout@LO..HI` freezes the server entirely (the
     outage shape of Fault.intermittent, windowed); `fault:SPEC` is a
     static whole-run stack in the lib/faults grammar (`+`-joined, so
     a chaos schedule embeds any existing fault spec).

   Every random draw a storm makes comes from the per-step execution
   RNG, and every kill is indexed by the deterministic scheduler tick,
   so a chaos run is bit-exact replayable from (seed, schedule). *)

type target = { modulus : int; remainder : int }

let everyone = { modulus = 1; remainder = 0 }
let targets tgt id = id mod tgt.modulus = tgt.remainder

type directive =
  | Kill of { ticks : int list; target : target }
  | Storm of { fault : Fault.t; target : target }

type t = { directives : directive list; spec : string }

let to_string t = t.spec
let directives t = t.directives
let none = { directives = []; spec = "" }

let emit_fault fault detail =
  let h = Trace.handle () in
  if Trace.handle_enabled h then
    Trace.handle_emit h
      (Trace.Fault { round = Trace.handle_round h; fault; detail })

(* --- storm combinators ------------------------------------------------ *)

let check_window ~what lo hi =
  if lo < 1 || hi < lo then
    invalid_arg (Printf.sprintf "Chaos.%s: want 1 <= LO <= HI" what)

(* Like Fault.crash_restart, but counting rounds per incarnation and
   resetting only inside the window; the age counter restarts when the
   window opens, so a window of W rounds causes floor(W / every)
   resets. *)
let crash_storm ~every ~lo ~hi =
  if every <= 0 then invalid_arg "Chaos.crash_storm: period must be positive";
  check_window ~what:"crash_storm" lo hi;
  let module I = Strategy.Instance in
  let fname = Printf.sprintf "crashstorm(%d@%d..%d)" every lo hi in
  Fault.make ~name:fname (fun base ->
      Strategy.make
        ~name:(Printf.sprintf "%s(%s)" fname (Strategy.name base))
        ~init:(fun () -> (I.create base, 0, 0))
        ~step:(fun rng (inst, age, round) obs ->
          let round = round + 1 in
          let in_window = round >= lo && round <= hi in
          let age =
            if in_window && age >= every then begin
              emit_fault fname "restart";
              I.restart inst;
              0
            end
            else age
          in
          let age = if in_window then age + 1 else 0 in
          ((inst, age, round), I.step rng inst obs)))

(* Burst loss inside the window: non-silent messages in either
   direction are dropped with probability [prob].  Draws happen only
   for non-silent messages inside the window, from the per-step RNG. *)
let burst_window ~prob ~lo ~hi =
  if not (prob >= 0.0 && prob <= 1.0) then
    invalid_arg "Chaos.burst_window: probability must be in [0,1]";
  check_window ~what:"burst_window" lo hi;
  let module I = Strategy.Instance in
  let fname = Printf.sprintf "burstwin(%.2f@%d..%d)" prob lo hi in
  Fault.make ~name:fname (fun base ->
      Strategy.make
        ~name:(Printf.sprintf "%s(%s)" fname (Strategy.name base))
        ~init:(fun () -> (I.create base, 0))
        ~step:(fun rng (inst, round) obs ->
          let round = round + 1 in
          let in_window = round >= lo && round <= hi in
          let obs =
            if
              in_window
              && (not (Msg.is_silence obs.Io.Server.from_user))
              && Rng.bernoulli rng prob
            then begin
              emit_fault fname "inbound";
              { obs with Io.Server.from_user = Msg.Silence }
            end
            else obs
          in
          let act = I.step rng inst obs in
          let act =
            if
              in_window
              && (not (Msg.is_silence act.Io.Server.to_user))
              && Rng.bernoulli rng prob
            then begin
              emit_fault fname "outbound";
              { act with Io.Server.to_user = Msg.Silence }
            end
            else act
          in
          ((inst, round), act)))

(* Total outage inside the window: the server does not observe (state
   frozen, inbound lost) and emits silence — Fault.intermittent's off
   phase, windowed on incarnation rounds. *)
let blackout ~lo ~hi =
  check_window ~what:"blackout" lo hi;
  let module I = Strategy.Instance in
  let fname = Printf.sprintf "blackout(%d..%d)" lo hi in
  Fault.make ~name:fname (fun base ->
      Strategy.make
        ~name:(Printf.sprintf "%s(%s)" fname (Strategy.name base))
        ~init:(fun () -> (I.create base, 0))
        ~step:(fun rng (inst, round) obs ->
          let round = round + 1 in
          if round >= lo && round <= hi then begin
            emit_fault fname "outage";
            ((inst, round), Io.Server.silent)
          end
          else ((inst, round), I.step rng inst obs)))

(* --- schedule queries ------------------------------------------------- *)

let kills_at t ~tick ~id =
  List.exists
    (function
      | Kill { ticks; target } -> targets target id && List.mem tick ticks
      | Storm _ -> false)
    t.directives

(* The composed storm stack for one session, outermost first in spec
   order (Fault.stack applies left-to-right, leftmost closest to the
   user — matching the lib/faults CLI convention). *)
let stack_for t ~id =
  Fault.stack
    (List.filter_map
       (function
         | Storm { fault; target } when targets target id -> Some fault
         | _ -> None)
       t.directives)

(* --- parsing ---------------------------------------------------------- *)

let spec_error spec reason =
  Error (Printf.sprintf "bad chaos directive %S: %s" spec reason)

let grammar =
  "kill@T1,T2,..  crash:K@LO..HI  burst:P@LO..HI  blackout@LO..HI  \
   fault:STACK — each optionally targeted with %M=R (sessions with id \
   mod M = R); directives join with ';'"

let parse_target spec s =
  match String.index_opt s '=' with
  | None -> spec_error spec "target wants the form %M=R"
  | Some i -> (
      let m = String.sub s 0 i in
      let r = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt (String.trim m), int_of_string_opt (String.trim r)) with
      | Some m, Some r when m >= 1 && r >= 0 && r < m ->
          Ok { modulus = m; remainder = r }
      | Some _, Some _ -> spec_error spec "target %M=R wants 0 <= R < M"
      | _ -> spec_error spec "target wants the form %M=R (two integers)")

let parse_window spec s =
  match String.index_opt s '.' with
  | Some i
    when i + 1 < String.length s && s.[i + 1] = '.' ->
      let lo = String.sub s 0 i in
      let hi = String.sub s (i + 2) (String.length s - i - 2) in
      (match (int_of_string_opt (String.trim lo), int_of_string_opt (String.trim hi)) with
      | Some lo, Some hi when lo >= 1 && hi >= lo -> Ok (lo, hi)
      | Some _, Some _ -> spec_error spec "window wants 1 <= LO <= HI"
      | _ -> spec_error spec "window wants the form LO..HI (two integers)")
  | _ -> spec_error spec "window wants the form LO..HI"

let ( let* ) r f = Result.bind r f

let parse_directive ~alphabet spec =
  let body, target =
    match String.index_opt spec '%' with
    | None -> (spec, Ok everyone)
    | Some i ->
        ( String.sub spec 0 i,
          parse_target spec (String.sub spec (i + 1) (String.length spec - i - 1))
        )
  in
  let* target = target in
  let split_at c s =
    match String.index_opt s c with
    | None -> (s, None)
    | Some i ->
        (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  in
  (* The directive name ends at ':' or '@', whichever comes first
     (kill and blackout take no ':' argument). *)
  let head =
    let stop = String.length body in
    let stop =
      match String.index_opt body ':' with Some i -> min stop i | None -> stop
    in
    let stop =
      match String.index_opt body '@' with Some i -> min stop i | None -> stop
    in
    String.trim (String.sub body 0 stop)
  in
  let _, rest = split_at ':' body in
  match (head, rest) with
  | "kill", _ -> (
      let head, at = split_at '@' body in
      match (String.trim head, at) with
      | "kill", Some ticks -> (
          let parts = String.split_on_char ',' ticks in
          let parsed = List.map (fun s -> int_of_string_opt (String.trim s)) parts in
          if List.for_all (function Some t -> t >= 1 | None -> false) parsed
          then
            Ok (Kill { ticks = List.filter_map Fun.id parsed; target })
          else spec_error spec "kill@T1,T2,.. wants positive integer ticks")
      | _ -> spec_error spec "kill wants the form kill@T1,T2,..")
  | "blackout", _ -> (
      let head, at = split_at '@' body in
      match (String.trim head, at) with
      | "blackout", Some w ->
          let* lo, hi = parse_window spec w in
          Ok (Storm { fault = blackout ~lo ~hi; target })
      | _ -> spec_error spec "blackout wants the form blackout@LO..HI")
  | "crash", Some rest -> (
      let arg, at = split_at '@' rest in
      match (int_of_string_opt (String.trim arg), at) with
      | Some every, Some w when every >= 1 ->
          let* lo, hi = parse_window spec w in
          Ok (Storm { fault = crash_storm ~every ~lo ~hi; target })
      | _ -> spec_error spec "crash wants the form crash:K@LO..HI")
  | "burst", Some rest -> (
      let arg, at = split_at '@' rest in
      match (float_of_string_opt (String.trim arg), at) with
      | Some prob, Some w when prob >= 0.0 && prob <= 1.0 ->
          let* lo, hi = parse_window spec w in
          Ok (Storm { fault = burst_window ~prob ~lo ~hi; target })
      | _ -> spec_error spec "burst wants the form burst:P@LO..HI with P in [0,1]")
  | "fault", Some stack -> (
      match Fault.stack_of_string ~alphabet stack with
      | Ok fault -> Ok (Storm { fault; target })
      | Error e -> spec_error spec e)
  | head, _ ->
      spec_error spec
        (Printf.sprintf "unknown chaos directive %S; known: %s" head grammar)

let of_string ~alphabet spec =
  let parts =
    List.filter_map
      (fun s ->
        let s = String.trim s in
        if s = "" then None else Some s)
      (String.split_on_char ';' spec)
  in
  let rec go acc = function
    | [] -> Ok { directives = List.rev acc; spec }
    | s :: rest -> (
        match parse_directive ~alphabet s with
        | Ok d -> go (d :: acc) rest
        | Error _ as e -> e)
  in
  go [] parts
