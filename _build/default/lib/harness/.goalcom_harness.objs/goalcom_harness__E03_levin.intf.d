lib/harness/e03_levin.mli: Goalcom_prelude
