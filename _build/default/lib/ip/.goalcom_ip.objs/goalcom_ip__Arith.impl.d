lib/ip/arith.ml: Array Cnf Gf Goalcom_sat List
