(** Metrics aggregation over trace events.

    A {!t} is a mutable set of counters fed as a {!Goalcom.Trace.sink};
    {!summary} snapshots it into an immutable record.  Counters cover
    message traffic per party, symbols on the wire, sensing verdicts,
    enumeration switches/sessions/resumes, fault activations, referee
    violations — plus an optional per-round wall-clock histogram.

    Timing is out-of-band by design: trace events carry no stamps (they
    must be bit-identical across runs of the same seed), so durations
    are measured here, between [Round_start] events, with a caller-
    supplied clock.  Pass [Unix.gettimeofday] (or any monotonic float
    clock) as [?clock] to enable timing; without it the aggregation is
    pure counting and fully deterministic. *)

open Goalcom

val msg_weight : Msg.t -> int
(** Symbols-on-the-wire weight: [Sym]/[Int] count 1, [Text] its length,
    [Silence] 0, containers the sum of their parts. *)

(** Per-round wall-clock statistics (seconds). *)
type timing = {
  timed : int;  (** rounds with a measured duration *)
  total_s : float;
  mean_s : float;
  min_s : float;
  max_s : float;
  buckets : int array;  (** log10 histogram; see {!bucket_label} *)
}

val bucket_label : int -> string
(** Human label of histogram bucket [i]: ["<1us"], ["<10us"], ... *)

type summary = {
  runs : int;
  rounds : int;
  halts : int;
  user_msgs : int;  (** non-silent messages sent by the user *)
  server_msgs : int;
  world_msgs : int;
  wire_symbols : int;  (** total {!msg_weight} over all emissions *)
  senses : int;
  negatives : int;  (** negative sensing verdicts (subset of [senses]) *)
  switches : int;
  resumes : int;
  sessions : int;
  faults : int;
  violations : int;
  round_timing : timing option;  (** [None] when created without a clock *)
}

type t

val create : ?clock:(unit -> float) -> unit -> t
(** Fresh counters.  With [?clock], round durations are measured
    between consecutive [Round_start] events (the last round closes at
    [Run_end]). *)

val observe : t -> Trace.event -> unit
val sink : t -> Trace.sink
(** [sink t] is [observe t] — install it with {!Trace.with_sink} or
    pass it to [Exec.run ~sink]. *)

val summary : t -> summary
(** Snapshot; the counters keep accumulating afterwards. *)

val merge : into:t -> t -> unit
(** [merge ~into:dst src] adds [src]'s counters and timing into [dst].
    [src] must be quiescent (no further [observe] calls expected; any
    still-open round is dropped, as {!summary} would).  This is how the
    parallel trial runner combines per-domain meters: each trial feeds
    its own meter (so timing is measured on the executing domain, not
    under replay) and the meters are merged in trial order — clockless
    merging is exactly equivalent to sequential shared observation,
    because every counter is additive. *)

val of_events : Trace.event list -> summary
(** Aggregate a recorded trace (clockless, so [round_timing = None]). *)

val to_table : summary -> (string * string) list
(** Label/value rows, for CLI tables. *)

val pp : Format.formatter -> summary -> unit
