test/test_forgiving.mli:
