type verdict = [ `Ok | `Violation ]

let verdict_of_bool ok = if ok then `Ok else `Violation

(* A spawnable incremental judge: [init] consumes the initial world view
   and yields the empty-prefix verdict, [step] one round's world view.
   The state type is existential so referees of different state shapes
   live in one [t]. *)
type spawn =
  | Spawn : {
      init : Msg.t -> 's * verdict;
      step : 's -> Msg.t -> 's * verdict;
    }
      -> spawn

(* The legacy list-predicate representations are kept distinct from
   [Incr] so that whole-history judgements ([decide_finite], [decider])
   can keep calling the user's predicate exactly once, preserving both
   cost and any effects the predicate performs. *)
type repr =
  | Incr of spawn
  | Finite_pred of (Msg.t list -> bool)  (* chronological, initial first *)
  | Compact_pred of (Msg.t list -> bool)  (* most recent first *)

type t = { name : string; finite_ : bool; repr : repr }

let name t = t.name
let is_finite t = t.finite_

let finite name decide = { name; finite_ = true; repr = Finite_pred decide }

let compact name acceptable =
  { name; finite_ = false; repr = Compact_pred acceptable }

let finite_incremental name ~init ~step =
  { name; finite_ = true; repr = Incr (Spawn { init; step }) }

let compact_incremental name ~init ~step =
  { name; finite_ = false; repr = Incr (Spawn { init; step }) }

(* The common finite-referee shape — accepted once some world view
   satisfies the predicate — needs only a seen-it bool.  [||] keeps the
   legacy call pattern: the predicate stops being consulted after the
   first hit, exactly like [List.exists]. *)
let finite_exists name p =
  finite_incremental name
    ~init:(fun v0 ->
      let seen = p v0 in
      (seen, verdict_of_bool seen))
    ~step:(fun seen v ->
      let seen = seen || p v in
      (seen, verdict_of_bool seen))

let spawn_of_repr = function
  | Incr s -> s
  | Compact_pred acceptable ->
      (* State: world views most recent first.  The initial view is
         recorded without judging it — historically the 0-round prefix
         was never submitted to a compact predicate. *)
      Spawn
        {
          init = (fun v0 -> ([ v0 ], `Ok));
          step =
            (fun views v ->
              let views = v :: views in
              (views, verdict_of_bool (acceptable views)));
        }
  | Finite_pred decide ->
      (* State: world views most recent first; each step re-decides the
         reversed prefix.  O(n) per step — callers that only need the
         final verdict go through [decide_finite], which special-cases
         this representation. *)
      Spawn
        {
          init = (fun v0 -> ([ v0 ], verdict_of_bool (decide [ v0 ])));
          step =
            (fun views v ->
              let views = v :: views in
              (views, verdict_of_bool (decide (List.rev views))));
        }

type judge =
  | Judge : { s : 's; step : 's -> Msg.t -> 's * verdict } -> judge

let start t v0 =
  match spawn_of_repr t.repr with
  | Spawn { init; step } ->
      let s, verdict = init v0 in
      (Judge { s; step }, verdict)

let step j v =
  match j with
  | Judge { s; step } ->
      let s, verdict = step s v in
      (Judge { s; step }, verdict)

(* One fold over the rounds: prime with the initial world view, absorb
   one world view per round, keep the last verdict. *)
let final_verdict t history =
  let j, verdict = start t (History.initial_world_view history) in
  let _, verdict =
    History.fold_rounds history
      ~f:(fun (j, _) (r : History.Round.t) -> step j r.world_view)
      ~init:(j, verdict)
  in
  verdict

let decide_finite t history =
  if not t.finite_ then invalid_arg "Referee.decide_finite: compact referee";
  match t.repr with
  | Finite_pred decide -> decide (History.world_views history)
  | _ -> final_verdict t history = `Ok

let decider t =
  if not t.finite_ then invalid_arg "Referee.decider: compact referee";
  match t.repr with
  | Finite_pred decide -> decide
  | repr -> (
      fun views ->
        match spawn_of_repr repr with
        | Spawn { init; step } ->
            let v0, rest =
              match views with
              | [] -> invalid_arg "Referee.decider: empty world-view list"
              | v0 :: rest -> (v0, rest)
            in
            let s, verdict = init v0 in
            let _, verdict =
              List.fold_left (fun (s, _) v -> step s v) (s, verdict) rest
            in
            verdict = `Ok)

let violations t history =
  if t.finite_ then
    if decide_finite t history then [] else [ History.length history ]
  else begin
    (* Single O(n) fold: the init verdict (empty prefix) is discarded,
       each round's verdict judges the prefix ending there. *)
    let j, _ = start t (History.initial_world_view history) in
    let _, acc =
      History.fold_rounds history
        ~f:(fun (j, acc) (r : History.Round.t) ->
          let j, verdict = step j r.world_view in
          (j, if verdict = `Violation then r.index :: acc else acc))
        ~init:(j, [])
    in
    List.rev acc
  end

(* Quadratic reference: judge every prefix from scratch.  For the
   compact-predicate representation this reconstructs the historical
   engine exactly (one predicate call per prefix, over a freshly built
   most-recent-first list); for incremental referees it replays a fresh
   judge per prefix.  Kept as the equivalence oracle of the qcheck
   suite and as the baseline the bench's compact-judge kernel measures
   the fold against. *)
let violations_prefix t history =
  if t.finite_ then violations t history
  else begin
    let n = History.length history in
    let rounds = Array.init n (History.round_exn history) in
    match t.repr with
    | Compact_pred acceptable ->
        let acc = ref [] in
        for i = n - 1 downto 0 do
          let views = ref [ History.initial_world_view history ] in
          for k = 0 to i do
            views := rounds.(k).History.Round.world_view :: !views
          done;
          if not (acceptable !views) then
            acc := rounds.(i).History.Round.index :: !acc
        done;
        !acc
    | repr -> (
        match spawn_of_repr repr with
        | Spawn { init; step } ->
            let acc = ref [] in
            for i = n - 1 downto 0 do
              let s = ref (fst (init (History.initial_world_view history))) in
              let verdict = ref (`Ok : verdict) in
              for k = 0 to i do
                let s', v = step !s rounds.(k).History.Round.world_view in
                s := s';
                verdict := v
              done;
              if !verdict = `Violation then
                acc := rounds.(i).History.Round.index :: !acc
            done;
            !acc)
  end
