test/test_printing.mli:
