(* E4 / Figure 2 — the measured cost of the Levin universal user tracks
   the analytic Levin overhead (work before candidate i receives a
   sufficient budget), i.e. geometric in the index. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let title = "Measured vs. predicted Levin overhead (maze goal)"

let claim =
  "the overhead introduced by the enumeration matches Levin's schedule \
   analysis (approximately 2^i * t_i)"

let alphabet = 6
let scenario = Maze.scenario ~width:8 ~height:8 ~start:(0, 0) ~target:(5, 4) ()

let run ~seed =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Maze.goal ~scenarios:[ scenario ] ~alphabet () in
  let config = Exec.config ~horizon:20_000 () in
  (* Informed cost: how many rounds the right user needs on its own. *)
  let oracle_cost i =
    let server = Maze.server ~alphabet (Enum.get_exn dialects i) in
    let user = Maze.informed_user ~alphabet ~scenario (Enum.get_exn dialects i) in
    let result = Trial.run ~config ~trials:3 ~seed:(seed + i) ~goal ~user ~server () in
    result.Trial.mean_rounds
  in
  let rows =
    List.map
      (fun i ->
        let server = Maze.server ~alphabet (Enum.get_exn dialects i) in
        let user = Maze.universal_user ~alphabet ~scenario dialects in
        let result =
          Trial.run ~config ~trials:3 ~seed:(seed + (10 * i)) ~goal ~user ~server ()
        in
        let measured = result.Trial.mean_rounds in
        let t_i = oracle_cost i in
        let predicted =
          float_of_int
            (Levin.work_before ~index:i
               ~budget:(int_of_float (Float.max t_i 1.))
               ())
          +. t_i
        in
        [
          Table.cell_int i;
          Table.cell_float t_i;
          Table.cell_float measured;
          Table.cell_float predicted;
          Table.cell_ratio (measured /. Float.max predicted 1.);
        ])
      (Listx.range 0 alphabet)
  in
  Table.make
    ~title:"E4 (Figure 2): measured vs. predicted Levin overhead (maze)"
    ~columns:
      [
        "index";
        "oracle rounds t_i";
        "measured universal rounds";
        "predicted (work_before + t_i)";
        "measured/predicted";
      ]
    ~notes:
      [
        "prediction = Levin work spent before candidate i gets a t_i-round \
         budget, plus t_i itself — a worst-case bound";
        "expected shape: measured grows with index and stays below the \
         prediction (ratio <= ~1); wrong-dialect sessions can reach the \
         target by accident, which only helps";
      ]
    rows
