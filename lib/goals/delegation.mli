(** The delegation-of-computation goal — the Juba–Sudan special case
    inside the general model.

    The {b world} poses a (planted-satisfiable) CNF instance; the goal
    is achieved once the world has received a satisfying assignment.
    The {b user} cannot afford to solve the instance itself (modelled by
    restricting the user class to ask/verify/relay strategies), but it
    {e can} cheaply verify a claimed assignment — and that verifiability
    is precisely what makes sensing safe here, as in the original
    delegation result.  The {b server} runs a DPLL solver behind a
    dialect; a {!liar} server returns corrupted assignments and is
    thereby unhelpful: verification-based sensing never turns positive
    with it, and no user strategy in the class can extract the answer.

    Canonical commands: [ask_cmd = 0], [answer_cmd = 1], plus padding.
    Assignment payloads are plain integer sequences, so they remain
    readable whatever the dialect — only command symbols are
    relabelled. *)

open Goalcom
open Goalcom_automata

val ask_cmd : int
val answer_cmd : int

val min_alphabet : int
(** 3. *)

type params = { num_vars : int; num_clauses : int; clause_len : int }

val default_params : params
(** [{ num_vars = 8; num_clauses = 20; clause_len = 3 }]. *)

val solver : alphabet:int -> Strategy.server
(** Answers [Pair (Sym ask_cmd, cnf)] with
    [Pair (Sym answer_cmd, assignment)] computed by DPLL
    ([Text "unsat"] payload if unsatisfiable). *)

val liar : alphabet:int -> Strategy.server
(** Like {!solver} but flips the first variable of every satisfying
    assignment it finds so the answer is wrong whenever flipping
    matters; an unhelpful server that exercises verification. *)

val server : alphabet:int -> Dialect.t -> Strategy.server
val server_class : alphabet:int -> Dialect.t Enum.t -> Strategy.server Enum.t

val world : ?params:params -> unit -> World.t
(** Samples a fresh planted instance per execution; broadcasts
    [Pair (Text status, cnf)] where status is ["pending"] or
    ["solved"]; accepts assignments on the user→world channel. *)

val goal : ?params:params -> alphabet:int -> unit -> Goal.t

val informed_user : alphabet:int -> Dialect.t -> Strategy.user
(** Asks, verifies the reply against the formula, re-asks on bad or
    missing replies, relays a verified assignment to the world and
    halts once the world confirms. *)

val user_class : alphabet:int -> Dialect.t Enum.t -> Strategy.user Enum.t

val sensing : Sensing.t
(** Positive iff the user has already relayed to the world an
    assignment that satisfies the latest formula it was shown —
    verification-based safety: a positive indication implies the world
    is about to (or already did) accept. *)

val bad_answers : History.t -> int
(** How many server replies carried an assignment that fails the
    world's formula — the "verification failures caught" statistic. *)

val universal_user :
  ?schedule:Levin.slot Seq.t ->
  ?checkpoint:Universal.checkpoint ->
  ?stats:Universal.stats ->
  alphabet:int ->
  Dialect.t Enum.t ->
  Strategy.user
