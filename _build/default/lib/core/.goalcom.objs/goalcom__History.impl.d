lib/core/history.ml: Format Goalcom_prelude List Listx Msg Printf
