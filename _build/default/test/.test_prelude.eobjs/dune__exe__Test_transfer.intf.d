test/test_transfer.mli:
