lib/goals/maze.ml: Codec Dialect Dialect_msg Enum Format Goal Goalcom Goalcom_automata Goalcom_prelude Goalcom_servers Grid Io List Msg Printf Referee Sensing Strategy Transform Universal View World
