lib/core/helpful.mli: Exec Goal Goalcom_automata Goalcom_prelude Strategy
