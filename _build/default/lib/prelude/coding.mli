(** Bijective integer codings (Gödel numbering).

    Theorem 1's universal constructions enumerate a class of strategies.
    Strategy classes built from finite-state machines are enumerated by
    decoding natural numbers into machine descriptions; this module
    supplies the pairing and tuple codings used for that. *)

val pair : int -> int -> int
(** Cantor pairing: a bijection [nat * nat -> nat].
    @raise Invalid_argument on negative inputs or when the result would
    overflow the native integer range (inputs summing beyond ~3.0e9). *)

val unpair : int -> int * int
(** Inverse of {!pair}.  @raise Invalid_argument on negative input or on
    codes beyond {!pair}'s image (above ~4.6e18). *)

val triple : int -> int -> int -> int
val untriple : int -> int * int * int

val encode_list : int list -> int
(** Bijection [nat list -> nat] (length-prefixed nested pairing).
    Beware: nested pairing grows double-exponentially with list length —
    only short lists of small naturals are encodable before {!pair}'s
    overflow guard fires.  Use {!encode_tuple} for bounded tuples. *)

val decode_list : int -> int list
(** Inverse of {!encode_list} on its image.
    @raise Invalid_argument on codes whose decoded length is implausibly
    large (outside the supported domain). *)

val encode_tuple : radices:int array -> int array -> int
(** Mixed-radix encoding of a bounded tuple: [digits.(i) < radices.(i)].
    @raise Invalid_argument on length mismatch or out-of-range digits. *)

val decode_tuple : radices:int array -> int -> int array
(** Inverse of {!encode_tuple} for codes in range.
    @raise Invalid_argument on out-of-range codes. *)

val tuple_space : radices:int array -> int
(** Product of the radices: number of encodable tuples (saturating at
    [max_int] on overflow). *)
