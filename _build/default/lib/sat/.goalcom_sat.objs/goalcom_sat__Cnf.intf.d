lib/sat/cnf.mli:
