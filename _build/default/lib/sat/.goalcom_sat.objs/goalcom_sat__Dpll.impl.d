lib/sat/dpll.ml: Array Cnf Hashtbl List Option
