open Goalcom
open Goalcom_automata
open Goalcom_servers

let print_cmd = 0
let clear_cmd = 1
let min_alphabet = 3

let check_alphabet alphabet =
  if alphabet < min_alphabet then
    invalid_arg "Printing: alphabet must have at least 3 symbols"

let page_msg page = Codec.ints (List.rev page)

(* The printer's page is kept most-recent-character-first so appending
   is O(1); it is reversed when rendered. *)
let printer ~alphabet =
  check_alphabet alphabet;
  Strategy.make ~name:"printer"
    ~init:(fun () -> [])
    ~step:(fun _rng page (obs : Io.Server.obs) ->
      let page =
        match obs.from_user with
        | Msg.Pair (Msg.Sym c, Msg.Int ch) when c = print_cmd -> ch :: page
        | Msg.Sym c when c = clear_cmd -> []
        | Msg.Pair (Msg.Sym c, _) when c = clear_cmd -> []
        | _ -> page
      in
      (page, Io.Server.say_world (page_msg page)))

let server ~alphabet d = Transform.with_dialect d (printer ~alphabet)

let server_class ~alphabet dialects =
  Transform.dialect_class ~base:(printer ~alphabet) dialects

let check_doc doc =
  if doc = [] then invalid_arg "Printing: empty document";
  List.iter
    (fun c ->
      if c < 0 || c > 255 then invalid_arg "Printing: character out of range")
    doc

let world_of_doc doc =
  check_doc doc;
  World.make
    ~name:(Printf.sprintf "print-world%s" (Msg.to_string (Codec.ints doc)))
    ~init:(fun () -> (doc, []))
    ~step:(fun _rng (doc, page) (obs : Io.World.obs) ->
      let page =
        match Codec.ints_opt obs.from_server with
        | Some chars -> chars
        | None -> page
      in
      ((doc, page), Io.World.say_user (Codec.pair_of_ints doc page)))
    ~view:(fun (doc, page) -> Codec.pair_of_ints doc page)

let default_docs = [ [ 3; 1; 4; 1; 5 ]; [ 2; 7 ]; [ 9; 9; 0; 4; 2; 1 ] ]

(* Producing a physical page is monotone — once the document has been
   printed, the goal is accomplished even if later commands deface the
   page (you cannot unprint paper).  Judging "the page equalled the
   document at some round" keeps the goal forgiving and makes the
   obvious sensing function (below) safe even with destructive
   wrong-dialect messages still in flight when the user halts. *)
let page_matched view =
  match Codec.pair_of_ints_opt view with
  | Some (doc, page) -> doc <> [] && doc = page
  | None -> false

let referee = Referee.finite_exists "document-was-printed" page_matched

let goal ?(docs = default_docs) ~alphabet () =
  check_alphabet alphabet;
  Goal.make
    ~name:(Printf.sprintf "printing(alphabet=%d)" alphabet)
    ~worlds:(List.map world_of_doc docs)
    ~referee

(* The informed user's protocol, for the printer speaking dialect [d]:
   wait for the world's (document, page) broadcast; clear a dirty page;
   print one character per round; then verify via the broadcast and
   retry from scratch if the page fails to match (so the strategy also
   recovers from garbage printed by earlier, wrong-dialect sessions). *)
type phase =
  | Wait_doc
  | Printing_rest of int list
  | Verifying of int

let verify_patience = 6

let informed_user ~alphabet d =
  check_alphabet alphabet;
  let encode m = Dialect_msg.encode d m in
  let send_print ch = Io.User.say_server (encode (Msg.Pair (Msg.Sym print_cmd, Msg.Int ch))) in
  let send_clear = Io.User.say_server (encode (Msg.Sym clear_cmd)) in
  Strategy.make
    ~name:(Printf.sprintf "print-user@%s" (Format.asprintf "%a" Dialect.pp d))
    ~init:(fun () -> Wait_doc)
    ~step:(fun _rng phase (obs : Io.User.obs) ->
      let info = Codec.pair_of_ints_opt obs.from_world in
      match (phase, info) with
      | Wait_doc, None -> (Wait_doc, Io.User.silent)
      | Wait_doc, Some (doc, page) ->
          if doc = page && doc <> [] then (Wait_doc, Io.User.halt_act)
          else if page <> [] then (Wait_doc, send_clear)
          else begin
            match doc with
            | [] -> (Wait_doc, Io.User.silent)
            | ch :: rest -> (Printing_rest rest, send_print ch)
          end
      | Printing_rest (ch :: rest), _ -> (Printing_rest rest, send_print ch)
      | Printing_rest [], _ -> (Verifying 0, Io.User.silent)
      | Verifying _, Some (doc, page) when doc = page && doc <> [] ->
          (Verifying 0, Io.User.halt_act)
      | Verifying k, _ ->
          if k >= verify_patience then (Wait_doc, Io.User.silent)
          else (Verifying (k + 1), Io.User.silent))

let user_class ~alphabet dialects =
  Enum.map
    ~name:(Printf.sprintf "print-users(%s)" (Enum.name dialects))
    (fun d -> informed_user ~alphabet d)
    dialects

(* The match is judged over a bounded recent window so each evaluation
   is O(window), not O(history).  Still safe: a positive implies the
   page matched at some round.  Still viable: once the informed user
   prints the document the match is observed (and acted upon by the
   universal constructions) well within the window. *)
let sensing_window = 16

let sensing =
  Sensing.of_recent ~name:"page-matched-doc" ~window:sensing_window (fun e ->
      page_matched e.View.from_world)

let universal_user ?schedule ?checkpoint ?stats ~alphabet dialects =
  Universal.finite ?schedule ?checkpoint ?stats
    ~enum:(user_class ~alphabet dialects)
    ~sensing ()
