lib/harness/e10_amortisation.ml: Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude List Listx Table Transfer Trial
