lib/harness/experiment.mli: Goalcom_prelude Table
