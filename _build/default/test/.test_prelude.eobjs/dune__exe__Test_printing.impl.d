test/test_printing.ml: Alcotest Codec Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude History Io List Listx Msg Outcome Printf Printing Rng Sensing Strategy Universal
