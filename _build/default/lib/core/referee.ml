type t =
  | Finite of { name : string; decide : Msg.t list -> bool }
  | Compact of { name : string; acceptable : Msg.t list -> bool }

let finite name decide = Finite { name; decide }
let compact name acceptable = Compact { name; acceptable }

let name = function Finite { name; _ } | Compact { name; _ } -> name
let is_finite = function Finite _ -> true | Compact _ -> false

let decide_finite t h =
  match t with
  | Finite { decide; _ } -> decide (History.world_views h)
  | Compact _ -> invalid_arg "Referee.decide_finite: compact referee"

let violations t h =
  match t with
  | Finite _ ->
      if decide_finite t h then [] else [ History.length h ]
  | Compact { acceptable; _ } ->
      let _, violations =
        List.fold_left
          (fun (prefix_rev, violations) (r : History.Round.t) ->
            let prefix_rev = r.world_view :: prefix_rev in
            let violations =
              if acceptable prefix_rev then violations
              else r.index :: violations
            in
            (prefix_rev, violations))
          ([ History.initial_world_view h ], [])
          (History.rounds h)
      in
      List.rev violations
