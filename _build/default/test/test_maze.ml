(* Tests for the maze goal and the Grid substrate. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let alphabet = 5
let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects i

let open_scenario =
  Maze.scenario ~width:6 ~height:6 ~start:(0, 0) ~target:(4, 3) ()

let walled_scenario =
  Maze.scenario
    ~blocked:[ (1, 0); (1, 1); (1, 2); (1, 3); (1, 4); (3, 5); (3, 4); (3, 3) ]
    ~width:6 ~height:6 ~start:(0, 0) ~target:(5, 5) ()

let run ~user ~server ~scenario ?(horizon = 400) seed =
  let goal = Maze.goal ~scenarios:[ scenario ] ~alphabet () in
  Exec.run_outcome
    ~config:(Exec.config ~horizon ())
    ~goal ~user ~server (Rng.make seed)

(* Grid substrate *)

let test_grid_moves () =
  let g = Grid.make ~width:3 ~height:3 ~blocked:[ (1, 1) ] () in
  Alcotest.(check (pair int int)) "east" (1, 0) (Grid.move g (0, 0) Grid.east);
  Alcotest.(check (pair int int)) "blocked" (1, 0) (Grid.move g (1, 0) Grid.south);
  Alcotest.(check (pair int int)) "wall" (0, 0) (Grid.move g (0, 0) Grid.west);
  Alcotest.(check (pair int int)) "north wall" (0, 0) (Grid.move g (0, 0) Grid.north)

let test_grid_bfs_open () =
  let g = Grid.make ~width:5 ~height:5 () in
  match Grid.bfs_path g (0, 0) (4, 4) with
  | None -> Alcotest.fail "path expected"
  | Some path ->
      Alcotest.(check int) "shortest length" 8 (List.length path);
      let final = List.fold_left (Grid.move g) (0, 0) path in
      Alcotest.(check (pair int int)) "arrives" (4, 4) final

let test_grid_bfs_walls () =
  let g = walled_scenario.Maze.grid in
  match Grid.bfs_path g (0, 0) (5, 5) with
  | None -> Alcotest.fail "path expected"
  | Some path ->
      let final = List.fold_left (Grid.move g) (0, 0) path in
      Alcotest.(check (pair int int)) "arrives" (5, 5) final;
      Alcotest.(check bool) "detour is longer than manhattan" true
        (List.length path > Grid.manhattan (0, 0) (5, 5))

let test_grid_bfs_unreachable () =
  let g =
    Grid.make ~width:3 ~height:3 ~blocked:[ (1, 0); (1, 1); (1, 2) ] ()
  in
  Alcotest.(check (option (list int)))
    "unreachable" None
    (Grid.bfs_path g (0, 0) (2, 0))

let test_grid_validation () =
  Alcotest.check_raises "bad dims"
    (Invalid_argument "Grid.make: non-positive dimensions") (fun () ->
      ignore (Grid.make ~width:0 ~height:3 ()));
  Alcotest.check_raises "oob wall"
    (Invalid_argument "Grid.make: blocked cell out of bounds") (fun () ->
      ignore (Grid.make ~width:2 ~height:2 ~blocked:[ (5, 5) ] ()))

(* Maze goal *)

let test_informed_reaches_target () =
  List.iter
    (fun scenario ->
      let user = Maze.informed_user ~alphabet ~scenario (dialect 0) in
      let server = Maze.server ~alphabet (dialect 0) in
      let outcome, _ = run ~user ~server ~scenario 5 in
      Alcotest.(check bool) "achieved" true outcome.Outcome.achieved)
    [ open_scenario; walled_scenario ]

let test_informed_all_dialects () =
  List.iter
    (fun i ->
      let user = Maze.informed_user ~alphabet ~scenario:open_scenario (dialect i) in
      let server = Maze.server ~alphabet (dialect i) in
      let outcome, _ = run ~user ~server ~scenario:open_scenario (50 + i) in
      Alcotest.(check bool)
        (Printf.sprintf "dialect %d" i)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_mismatch_fails () =
  let user = Maze.informed_user ~alphabet ~scenario:open_scenario (dialect 2) in
  let server = Maze.server ~alphabet (dialect 0) in
  let outcome, _ = run ~user ~server ~scenario:open_scenario 9 in
  Alcotest.(check bool) "not achieved" false outcome.Outcome.achieved

let test_universal_all_dialects () =
  List.iter
    (fun i ->
      let user =
        Maze.universal_user ~alphabet ~scenario:open_scenario dialects
      in
      let server = Maze.server ~alphabet (dialect i) in
      let outcome, _ =
        run ~user ~server ~scenario:open_scenario ~horizon:4000 (77 + i)
      in
      Alcotest.(check bool)
        (Printf.sprintf "universal vs dialect %d" i)
        true outcome.Outcome.achieved)
    (Listx.range 0 alphabet)

let test_universal_walled () =
  let user =
    Maze.universal_user ~alphabet ~scenario:walled_scenario dialects
  in
  let server = Maze.server ~alphabet (dialect 3) in
  let outcome, _ = run ~user ~server ~scenario:walled_scenario ~horizon:8000 3 in
  Alcotest.(check bool) "achieved" true outcome.Outcome.achieved

let test_sensing_safe () =
  let goal = Maze.goal ~scenarios:[ open_scenario ] ~alphabet () in
  let users =
    Enum.to_list (Maze.user_class ~alphabet ~scenario:open_scenario dialects)
  in
  let servers = Enum.to_list (Maze.server_class ~alphabet dialects) in
  let report =
    Sensing.check_safety_finite ~goal ~users ~servers Maze.sensing (Rng.make 4)
  in
  Alcotest.(check bool) "safety" true report.Sensing.holds

let test_scenario_validation () =
  Alcotest.check_raises "unreachable"
    (Invalid_argument "Maze.scenario: target unreachable") (fun () ->
      ignore
        (Maze.scenario
           ~blocked:[ (1, 0); (1, 1); (1, 2) ]
           ~width:3 ~height:3 ~start:(0, 0) ~target:(2, 2) ()))

let () =
  Alcotest.run "maze"
    [
      ( "grid",
        [
          Alcotest.test_case "moves" `Quick test_grid_moves;
          Alcotest.test_case "bfs open" `Quick test_grid_bfs_open;
          Alcotest.test_case "bfs walls" `Quick test_grid_bfs_walls;
          Alcotest.test_case "bfs unreachable" `Quick test_grid_bfs_unreachable;
          Alcotest.test_case "validation" `Quick test_grid_validation;
        ] );
      ( "maze",
        [
          Alcotest.test_case "informed reaches target" `Quick test_informed_reaches_target;
          Alcotest.test_case "informed all dialects" `Quick test_informed_all_dialects;
          Alcotest.test_case "mismatch fails" `Quick test_mismatch_fails;
          Alcotest.test_case "universal all dialects" `Quick test_universal_all_dialects;
          Alcotest.test_case "universal walled maze" `Quick test_universal_walled;
          Alcotest.test_case "sensing safe" `Quick test_sensing_safe;
          Alcotest.test_case "scenario validation" `Quick test_scenario_validation;
        ] );
    ]
