type t = {
  title : string;
  columns : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~columns ?(notes = []) rows =
  let width = List.length columns in
  List.iter
    (fun row ->
      if List.length row <> width then
        invalid_arg
          (Printf.sprintf "Table.make (%s): row width %d, expected %d" title
             (List.length row) width))
    rows;
  { title; columns; rows; notes }

let render t =
  let all_rows = t.columns :: t.rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all_rows;
  let pad i cell = cell ^ String.make (widths.(i) - String.length cell) ' ' in
  let render_row row =
    "| " ^ String.concat " | " (List.mapi pad row) ^ " |"
  in
  let rule =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (render_row t.columns ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) t.rows;
  Buffer.add_string buf (rule ^ "\n");
  List.iter (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let quote_csv cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then begin
    let escaped =
      String.concat "\"\"" (String.split_on_char '"' cell)
    in
    "\"" ^ escaped ^ "\""
  end
  else cell

let to_csv t =
  let line row = String.concat "," (List.map quote_csv row) in
  String.concat "\n" (line t.columns :: List.map line t.rows) ^ "\n"

let print t =
  print_string (render t);
  print_newline ()

let cell_int = string_of_int
let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f
let cell_pct f = Printf.sprintf "%.1f%%" (100. *. f)
let cell_ratio f = Printf.sprintf "%.2fx" f
