lib/harness/e02_overhead_curve.mli: Goalcom_prelude
