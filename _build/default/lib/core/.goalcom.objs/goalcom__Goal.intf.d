lib/core/goal.mli: Referee World
