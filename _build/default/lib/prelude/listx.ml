let range lo hi =
  let rec go i acc = if i < lo then acc else go (i - 1) (i :: acc) in
  go (hi - 1) []

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rec drop n = function
  | xs when n <= 0 -> xs
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

let rec last = function
  | [] -> invalid_arg "Listx.last: empty list"
  | [ x ] -> x
  | _ :: rest -> last rest

let last_opt = function [] -> None | xs -> Some (last xs)
let sum_int = List.fold_left ( + ) 0
let sum_float = List.fold_left ( +. ) 0.
let count p xs = List.length (List.filter p xs)

let find_index p xs =
  let rec go i = function
    | [] -> None
    | x :: rest -> if p x then Some i else go (i + 1) rest
  in
  go 0 xs

let transpose = function
  | [] -> []
  | rows ->
      let width =
        match rows with [] -> 0 | r :: _ -> List.length r
      in
      List.iter
        (fun r ->
          if List.length r <> width then
            invalid_arg "Listx.transpose: ragged rows")
        rows;
      List.map
        (fun j -> List.map (fun row -> List.nth row j) rows)
        (range 0 width)

let windows k xs =
  if k <= 0 then invalid_arg "Listx.windows: k must be positive";
  let rec go xs acc =
    if List.length xs < k then List.rev acc
    else go (List.tl xs) (take k xs :: acc)
  in
  go xs []

let unfold step seed =
  let rec go s acc =
    match step s with
    | None -> List.rev acc
    | Some (x, s') -> go s' (x :: acc)
  in
  go seed []

let iterate n f x =
  let rec go k v acc =
    if k = 0 then List.rev acc
    else begin
      let v' = f v in
      go (k - 1) v' (v' :: acc)
    end
  in
  go n x [ x ]
