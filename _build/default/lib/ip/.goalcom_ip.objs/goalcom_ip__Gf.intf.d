lib/ip/gf.mli: Format Goalcom_prelude
