test/test_harness.ml: Alcotest Exec Experiment Float Goal Goalcom Goalcom_harness Goalcom_prelude Io List Listx Msg Printf Referee Rng Strategy Table Trial World
