lib/core/msg.ml: Char Format List Stdlib String
