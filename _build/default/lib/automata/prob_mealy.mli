(** Probabilistic Mealy machines.

    The paper's strategies are probabilistic: each step yields a
    {e distribution} over (state, output).  Deterministic machines embed
    via {!of_mealy}; {!perturb} builds the noisy variants used by the
    robustness experiments. *)

open Goalcom_prelude

type t = private {
  states : int;
  inputs : int;
  outputs : int;
  trans : (int * int) Dist.t array array;
      (** [trans.(s).(i)] is the distribution over (successor, output). *)
}

val make :
  states:int -> inputs:int -> outputs:int ->
  trans:(int * int) Dist.t array array -> t
(** Validates dimensions and that every outcome is in range.
    @raise Invalid_argument. *)

val of_mealy : Mealy.t -> t

val perturb : flip_prob:float -> Mealy.t -> t
(** With probability [flip_prob] the emitted symbol is replaced by a
    uniformly random one (successor state unchanged): a noisy channel
    on the machine's output. *)

val step_dist : t -> int -> int -> (int * int) Dist.t
(** @raise Invalid_argument out of range. *)

val step : Rng.t -> t -> int -> int -> int * int
(** Sample one step. *)

val run : Rng.t -> t -> int list -> int list
(** Sampled outputs along a run from state 0. *)
