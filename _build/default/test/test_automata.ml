(* Unit tests for the automata substrate: alphabets, enumerations,
   Mealy machines and their Gödel coding, dialects, probabilistic
   machines. *)

open Goalcom_prelude
open Goalcom_automata

(* Alphabet *)

let test_alphabet_basic () =
  let a = Alphabet.make [ "print"; "clear"; "nop" ] in
  Alcotest.(check int) "size" 3 (Alphabet.size a);
  Alcotest.(check string) "name" "clear" (Alphabet.name a 1);
  Alcotest.(check (option int)) "index" (Some 2) (Alphabet.index a "nop");
  Alcotest.(check (option int)) "missing" None (Alphabet.index a "x");
  Alcotest.(check (list int)) "symbols" [ 0; 1; 2 ] (Alphabet.symbols a);
  Alcotest.(check bool) "mem" true (Alphabet.mem a 0);
  Alcotest.(check bool) "not mem" false (Alphabet.mem a 3)

let test_alphabet_validation () =
  Alcotest.check_raises "dup" (Invalid_argument "Alphabet.make: duplicate names")
    (fun () -> ignore (Alphabet.make [ "a"; "a" ]));
  Alcotest.check_raises "empty" (Invalid_argument "Alphabet.make: empty")
    (fun () -> ignore (Alphabet.make []))

let test_alphabet_of_size () =
  let a = Alphabet.of_size 2 in
  Alcotest.(check string) "auto name" "s1" (Alphabet.name a 1)

(* Enum *)

let test_enum_of_list () =
  let e = Enum.of_list ~name:"l" [ 10; 20; 30 ] in
  Alcotest.(check (option int)) "card" (Some 3) (Enum.cardinality e);
  Alcotest.(check (option int)) "get" (Some 20) (Enum.get e 1);
  Alcotest.(check (option int)) "oob" None (Enum.get e 3);
  Alcotest.(check (option int)) "negative" None (Enum.get e (-1))

let test_enum_map_append () =
  let e = Enum.of_list ~name:"l" [ 1; 2 ] in
  let doubled = Enum.map (fun x -> 2 * x) e in
  Alcotest.(check (list int)) "map" [ 2; 4 ] (Enum.to_list doubled);
  let appended = Enum.append e doubled in
  Alcotest.(check (list int)) "append" [ 1; 2; 2; 4 ] (Enum.to_list appended)

let test_enum_interleave () =
  let a = Enum.of_list ~name:"a" [ 1; 3; 5 ] in
  let b = Enum.of_list ~name:"b" [ 2; 4 ] in
  Alcotest.(check (list int)) "interleave" [ 1; 2; 3; 4; 5 ]
    (Enum.to_list (Enum.interleave a b))

let test_enum_interleave_infinite () =
  let odds = Enum.map (fun n -> (2 * n) + 1) Enum.naturals in
  let evens = Enum.map (fun n -> 2 * n) Enum.naturals in
  Alcotest.(check (list int)) "prefix" [ 1; 0; 3; 2; 5 ]
    (Enum.take 5 (Enum.interleave odds evens))

let test_enum_product_finite () =
  let a = Enum.of_list ~name:"a" [ 0; 1 ] in
  let b = Enum.of_list ~name:"b" [ 10; 20 ] in
  Alcotest.(check int) "card" 4
    (List.length (Enum.to_list (Enum.product a b)))

let test_enum_find_index () =
  let e = Enum.map (fun n -> n * n) Enum.naturals in
  Alcotest.(check (option int)) "found" (Some 4)
    (Enum.find_index (fun x -> x = 16) e);
  Alcotest.(check (option int)) "limit" None
    (Enum.find_index ~limit:3 (fun x -> x = 16) e)

let test_enum_take_naturals () =
  Alcotest.(check (list int)) "naturals" [ 0; 1; 2; 3 ] (Enum.take 4 Enum.naturals)

let test_enum_get_exn () =
  let e = Enum.of_list ~name:"xyz" [ 1 ] in
  Alcotest.check_raises "oob"
    (Invalid_argument "Enum.get_exn (xyz): index 1 out of range") (fun () ->
      ignore (Enum.get_exn e 1))

(* Mealy *)

let toggle =
  (* Two states; emits its state and flips it on input 1, stays on 0. *)
  Mealy.make ~states:2 ~inputs:2 ~outputs:2
    ~next:[| [| 0; 1 |]; [| 1; 0 |] |]
    ~out:[| [| 0; 0 |]; [| 1; 1 |] |]

let test_mealy_step_run () =
  Alcotest.(check (list int)) "run" [ 0; 1; 1; 0 ]
    (Mealy.run toggle [ 1; 0; 1; 0 ]);
  let s', o = Mealy.step toggle 0 1 in
  Alcotest.(check (pair int int)) "step" (1, 0) (s', o)

let test_mealy_identity_constant () =
  let id = Mealy.identity ~size:3 in
  Alcotest.(check (list int)) "identity" [ 2; 0; 1 ] (Mealy.run id [ 2; 0; 1 ]);
  let c = Mealy.constant ~inputs:2 ~outputs:4 3 in
  Alcotest.(check (list int)) "constant" [ 3; 3 ] (Mealy.run c [ 0; 1 ])

let test_mealy_count () =
  (* 1-state machines over k inputs, m outputs: m^k. *)
  Alcotest.(check int) "1x2x2" 4 (Mealy.count ~states:1 ~inputs:2 ~outputs:2);
  (* 2 states, 1 input, 2 outputs: (2*2)^2 = 16. *)
  Alcotest.(check int) "2x1x2" 16 (Mealy.count ~states:2 ~inputs:1 ~outputs:2)

let test_mealy_encode_decode_roundtrip () =
  let count = Mealy.count ~states:2 ~inputs:2 ~outputs:2 in
  List.iter
    (fun code ->
      match Mealy.decode ~states:2 ~inputs:2 ~outputs:2 code with
      | None -> Alcotest.fail "decode failed in range"
      | Some m -> Alcotest.(check int) "roundtrip" code (Mealy.encode m))
    (Listx.take 64 (Listx.range 0 count))

let test_mealy_decode_out_of_range () =
  Alcotest.(check bool) "oob" true
    (Mealy.decode ~states:1 ~inputs:1 ~outputs:1 1 = None)

let test_mealy_enumerate_distinct () =
  let e = Mealy.enumerate ~states:1 ~inputs:2 ~outputs:2 in
  let all = Enum.to_list e in
  Alcotest.(check int) "4 machines" 4 (List.length all);
  let outputs = List.map (fun m -> Mealy.run m [ 0; 1 ]) all in
  Alcotest.(check int) "distinct behaviours" 4
    (List.length (List.sort_uniq compare outputs))

let test_mealy_enumerate_up_to () =
  let e = Mealy.enumerate_up_to ~max_states:2 ~inputs:1 ~outputs:1 in
  (* 1 one-state machine + 4 two-state machines. *)
  Alcotest.(check (option int)) "card" (Some 5) (Enum.cardinality e)

let test_mealy_cascade () =
  let id = Mealy.identity ~size:2 in
  let neg =
    Mealy.make ~states:1 ~inputs:2 ~outputs:2
      ~next:[| [| 0; 0 |] |]
      ~out:[| [| 1; 0 |] |]
  in
  let both = Mealy.cascade neg neg in
  Alcotest.(check (list int)) "double negation" [ 0; 1 ] (Mealy.run both [ 0; 1 ]);
  let one = Mealy.cascade id neg in
  Alcotest.(check (list int)) "negation" [ 1; 0 ] (Mealy.run one [ 0; 1 ])

let test_mealy_equal_behaviour () =
  let id = Mealy.identity ~size:2 in
  (* A 2-state machine that behaves like the identity. *)
  let redundant =
    Mealy.make ~states:2 ~inputs:2 ~outputs:2
      ~next:[| [| 1; 1 |]; [| 0; 0 |] |]
      ~out:[| [| 0; 1 |]; [| 0; 1 |] |]
  in
  Alcotest.(check bool) "bisimilar" true
    (Mealy.equal_behaviour ~depth:8 id redundant);
  let neg =
    Mealy.make ~states:1 ~inputs:2 ~outputs:2
      ~next:[| [| 0; 0 |] |]
      ~out:[| [| 1; 0 |] |]
  in
  Alcotest.(check bool) "different" false (Mealy.equal_behaviour ~depth:8 id neg)

let test_mealy_map_output_input () =
  let id = Mealy.identity ~size:2 in
  let swapped = Mealy.map_output (fun o -> 1 - o) ~outputs:2 id in
  Alcotest.(check (list int)) "output relabel" [ 1; 0 ] (Mealy.run swapped [ 0; 1 ]);
  let pre = Mealy.map_input (fun i -> 1 - i) id in
  Alcotest.(check (list int)) "input relabel" [ 1; 0 ] (Mealy.run pre [ 0; 1 ])

let test_mealy_validation () =
  Alcotest.check_raises "bad next"
    (Invalid_argument "Mealy.make: next entry 5 out of range") (fun () ->
      ignore
        (Mealy.make ~states:1 ~inputs:1 ~outputs:1 ~next:[| [| 5 |] |]
           ~out:[| [| 0 |] |]))

(* Dialect *)

let test_dialect_apply_unapply () =
  let d = Dialect.of_array [| 2; 0; 1 |] in
  Alcotest.(check int) "apply" 2 (Dialect.apply d 0);
  Alcotest.(check int) "unapply" 0 (Dialect.unapply d 2);
  List.iter
    (fun i ->
      Alcotest.(check int) "inverse" i (Dialect.unapply d (Dialect.apply d i)))
    [ 0; 1; 2 ]

let test_dialect_inverse_compose () =
  let d = Dialect.of_array [| 1; 2; 0 |] in
  let e = Dialect.compose (Dialect.inverse d) d in
  Alcotest.(check bool) "inverse composes to id" true
    (Dialect.equal e (Dialect.identity 3))

let test_dialect_rotation () =
  let r = Dialect.rotation ~size:4 1 in
  Alcotest.(check int) "rot" 0 (Dialect.apply r 3);
  let r0 = Dialect.rotation ~size:4 4 in
  Alcotest.(check bool) "full rotation is id" true
    (Dialect.equal r0 (Dialect.identity 4))

let test_dialect_lehmer_roundtrip () =
  List.iter
    (fun code ->
      match Dialect.of_lehmer ~size:4 code with
      | None -> Alcotest.fail "in range"
      | Some d -> Alcotest.(check int) "roundtrip" code (Dialect.to_lehmer d))
    (Listx.range 0 24)

let test_dialect_enumerate_all () =
  let e = Dialect.enumerate_all ~size:3 in
  Alcotest.(check (option int)) "3! = 6" (Some 6) (Enum.cardinality e);
  let all = Enum.to_list e in
  let arrays = List.map Dialect.to_array all in
  Alcotest.(check int) "distinct" 6 (List.length (List.sort_uniq compare arrays));
  Alcotest.(check bool) "first is identity" true
    (Dialect.equal (List.hd all) (Dialect.identity 3))

let test_dialect_enumerate_rotations () =
  let e = Dialect.enumerate_rotations ~size:5 in
  Alcotest.(check (option int)) "card" (Some 5) (Enum.cardinality e)

let test_dialect_factorial () =
  Alcotest.(check int) "5!" 120 (Dialect.factorial 5);
  Alcotest.(check int) "0!" 1 (Dialect.factorial 0);
  Alcotest.(check int) "saturates" max_int (Dialect.factorial 30)

let test_dialect_random_is_permutation () =
  let rng = Rng.make 33 in
  let d = Dialect.random rng 8 in
  let a = Dialect.to_array d in
  Array.sort compare a;
  Alcotest.(check (array int)) "perm" (Array.init 8 Fun.id) a

let test_dialect_validation () =
  Alcotest.check_raises "not injective"
    (Invalid_argument "Dialect.of_array: not injective") (fun () ->
      ignore (Dialect.of_array [| 0; 0 |]))

(* Prob_mealy *)

let test_prob_mealy_of_mealy_deterministic () =
  let pm = Prob_mealy.of_mealy toggle in
  let rng = Rng.make 40 in
  Alcotest.(check (list int)) "same as deterministic"
    (Mealy.run toggle [ 1; 0; 1 ])
    (Prob_mealy.run rng pm [ 1; 0; 1 ])

let test_prob_mealy_perturb_dist () =
  let pm = Prob_mealy.perturb ~flip_prob:0.5 (Mealy.identity ~size:2) in
  let d = Prob_mealy.step_dist pm 0 0 in
  (* Output 0 with prob 1 - 0.5 + 0.5/2 = 0.75. *)
  Alcotest.(check (float 1e-9)) "p(correct)" 0.75 (Dist.prob d (0, 0));
  Alcotest.(check (float 1e-9)) "p(flipped)" 0.25 (Dist.prob d (0, 1))

let test_prob_mealy_perturb_frequencies () =
  let pm = Prob_mealy.perturb ~flip_prob:0.3 (Mealy.identity ~size:2) in
  let rng = Rng.make 41 in
  let wrong = ref 0 in
  for _ = 1 to 4000 do
    let _, o = Prob_mealy.step rng pm 0 0 in
    if o = 1 then incr wrong
  done;
  let rate = float_of_int !wrong /. 4000. in
  Alcotest.(check bool) "~15% wrong" true (Float.abs (rate -. 0.15) < 0.03)

let test_prob_mealy_validation () =
  Alcotest.check_raises "bad outcome"
    (Invalid_argument "Prob_mealy.make: outcome out of range") (fun () ->
      ignore
        (Prob_mealy.make ~states:1 ~inputs:1 ~outputs:1
           ~trans:[| [| Dist.return (0, 7) |] |]))

let () =
  Alcotest.run "automata"
    [
      ( "alphabet",
        [
          Alcotest.test_case "basic" `Quick test_alphabet_basic;
          Alcotest.test_case "validation" `Quick test_alphabet_validation;
          Alcotest.test_case "of_size" `Quick test_alphabet_of_size;
        ] );
      ( "enum",
        [
          Alcotest.test_case "of_list" `Quick test_enum_of_list;
          Alcotest.test_case "map/append" `Quick test_enum_map_append;
          Alcotest.test_case "interleave" `Quick test_enum_interleave;
          Alcotest.test_case "interleave infinite" `Quick test_enum_interleave_infinite;
          Alcotest.test_case "product" `Quick test_enum_product_finite;
          Alcotest.test_case "find_index" `Quick test_enum_find_index;
          Alcotest.test_case "naturals" `Quick test_enum_take_naturals;
          Alcotest.test_case "get_exn" `Quick test_enum_get_exn;
        ] );
      ( "mealy",
        [
          Alcotest.test_case "step/run" `Quick test_mealy_step_run;
          Alcotest.test_case "identity/constant" `Quick test_mealy_identity_constant;
          Alcotest.test_case "count" `Quick test_mealy_count;
          Alcotest.test_case "encode/decode" `Quick test_mealy_encode_decode_roundtrip;
          Alcotest.test_case "decode oob" `Quick test_mealy_decode_out_of_range;
          Alcotest.test_case "enumerate distinct" `Quick test_mealy_enumerate_distinct;
          Alcotest.test_case "enumerate up to" `Quick test_mealy_enumerate_up_to;
          Alcotest.test_case "cascade" `Quick test_mealy_cascade;
          Alcotest.test_case "equal behaviour" `Quick test_mealy_equal_behaviour;
          Alcotest.test_case "relabel" `Quick test_mealy_map_output_input;
          Alcotest.test_case "validation" `Quick test_mealy_validation;
        ] );
      ( "dialect",
        [
          Alcotest.test_case "apply/unapply" `Quick test_dialect_apply_unapply;
          Alcotest.test_case "inverse/compose" `Quick test_dialect_inverse_compose;
          Alcotest.test_case "rotation" `Quick test_dialect_rotation;
          Alcotest.test_case "lehmer roundtrip" `Quick test_dialect_lehmer_roundtrip;
          Alcotest.test_case "enumerate all" `Quick test_dialect_enumerate_all;
          Alcotest.test_case "enumerate rotations" `Quick test_dialect_enumerate_rotations;
          Alcotest.test_case "factorial" `Quick test_dialect_factorial;
          Alcotest.test_case "random" `Quick test_dialect_random_is_permutation;
          Alcotest.test_case "validation" `Quick test_dialect_validation;
        ] );
      ( "prob_mealy",
        [
          Alcotest.test_case "deterministic embed" `Quick test_prob_mealy_of_mealy_deterministic;
          Alcotest.test_case "perturb distribution" `Quick test_prob_mealy_perturb_dist;
          Alcotest.test_case "perturb frequencies" `Quick test_prob_mealy_perturb_frequencies;
          Alcotest.test_case "validation" `Quick test_prob_mealy_validation;
        ] );
    ]
