(** Flat-table lowering of finite-state step functions.

    The enumeration ladder's hot loop steps decoded {!Mealy.t} machines:
    two bounds-checked 2-D array reads per round ([next.(s).(i)],
    [out.(s).(i)]), each through a row pointer.  This module compiles a
    machine once into a single dense array — cell [s * inputs + i]
    holds [next * outputs + out] packed into one int — so the compiled
    step is one flat array load and a div/mod, the Frenetic flow-table
    move applied to strategies.  The same lowering drives table-driven
    referees and sensors: a DFA over a discretised message alphabet,
    stepped via the flat array, with an acceptance predicate on the
    emitted symbol. *)

open Goalcom_automata
open Goalcom

type t = private {
  states : int;
  inputs : int;
  outputs : int;
  next_out : int array;
      (** [next_out.(s * inputs + i) = next * outputs + out]; length
          [states * inputs] *)
}

val of_mealy : Mealy.t -> t
(** Compile; O(states * inputs), no validation needed (a [Mealy.t] is
    well-formed by construction). *)

val to_mealy : t -> Mealy.t
(** Exact inverse of {!of_mealy} (the differential tests pin
    [to_mealy (of_mealy m) = m]). *)

val step : t -> int -> int -> int * int
(** [step t s i] is [(s', o)], exactly {!Mealy.step} of the source
    machine.  Bounds-checked; @raise Invalid_argument out of range. *)

val step_unsafe : t -> int -> int -> int * int
(** The branch-free hot path: one unchecked flat load plus a div/mod.
    Both [s] and [i] {b must} be in range — the compiled-strategy
    adapters guarantee this ([s] is always a table-produced state, [i]
    a validated reader output); out-of-range arguments are undefined
    behaviour. *)

val run : t -> int list -> int list
(** Outputs along the run from state 0 — {!Mealy.run} compiled. *)

val sensor :
  name:string ->
  ?empty:bool ->
  read:(View.event -> int) ->
  accept:(int -> bool) ->
  t ->
  Sensing.t
(** Table-driven sensor: a fresh instance starts in state 0; each view
    event is discretised by [read] (range-checked), the table steps,
    and the verdict is [accept] of the emitted symbol ([Positive] on
    [true]).  [empty] (default [false]) is the empty-view verdict.
    O(1) per round by construction. *)

val finite_referee :
  name:string ->
  read:(Msg.t -> int) ->
  accept:(int -> bool) ->
  t ->
  Referee.t
(** Table-driven finite referee: the DFA consumes the world-view stream
    (initial view included, via {!Referee.finite_incremental}); the
    verdict after each view is [accept] of the symbol emitted on it. *)

val compact_referee :
  name:string ->
  read:(Msg.t -> int) ->
  accept:(int -> bool) ->
  t ->
  Referee.t
(** Same lowering with compact (co-Büchi prefix) semantics. *)
