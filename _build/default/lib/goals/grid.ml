type t = { width : int; height : int; blocked : (int * int) list }
type pos = int * int

let in_bounds t (x, y) = x >= 0 && x < t.width && y >= 0 && y < t.height
let is_free t p = in_bounds t p && not (List.mem p t.blocked)

let make ~width ~height ?(blocked = []) () =
  if width <= 0 || height <= 0 then
    invalid_arg "Grid.make: non-positive dimensions";
  let t = { width; height; blocked } in
  List.iter
    (fun p ->
      if not (in_bounds t p) then
        invalid_arg "Grid.make: blocked cell out of bounds")
    blocked;
  t

let north = 0
let east = 1
let south = 2
let west = 3
let num_directions = 4

let step_dir (x, y) dir =
  match dir with
  | 0 -> (x, y - 1)
  | 1 -> (x + 1, y)
  | 2 -> (x, y + 1)
  | 3 -> (x - 1, y)
  | _ -> invalid_arg "Grid.step_dir: unknown direction"

let move t p dir =
  let p' = step_dir p dir in
  if is_free t p' then p' else p

let manhattan (x1, y1) (x2, y2) = abs (x1 - x2) + abs (y1 - y2)

let bfs_path t src dst =
  if not (is_free t src) then invalid_arg "Grid.bfs_path: bad source";
  if not (is_free t dst) then invalid_arg "Grid.bfs_path: bad destination";
  if src = dst then Some []
  else begin
    let parent = Hashtbl.create 64 in
    let queue = Queue.create () in
    Hashtbl.add parent src (src, -1);
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let p = Queue.pop queue in
      let rec try_dirs dir =
        if dir >= num_directions || !found then ()
        else begin
          let p' = step_dir p dir in
          if is_free t p' && not (Hashtbl.mem parent p') then begin
            Hashtbl.add parent p' (p, dir);
            if p' = dst then found := true else Queue.add p' queue
          end;
          try_dirs (dir + 1)
        end
      in
      try_dirs 0
    done;
    if not !found then None
    else begin
      let rec backtrack p acc =
        let prev, dir = Hashtbl.find parent p in
        if dir = -1 then acc else backtrack prev (dir :: acc)
      in
      Some (backtrack dst [])
    end
  end
