open Goalcom
open Goalcom_sat

let ints xs = Msg.Seq (List.map (fun x -> Msg.Int x) xs)

let ints_opt = function
  | Msg.Seq ms ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | Msg.Int x :: rest -> go (x :: acc) rest
        | _ -> None
      in
      go [] ms
  | _ -> None

let pair_of_ints a b = Msg.Pair (ints a, ints b)

let pair_of_ints_opt = function
  | Msg.Pair (a, b) -> begin
      match (ints_opt a, ints_opt b) with
      | Some a, Some b -> Some (a, b)
      | _ -> None
    end
  | _ -> None

let pos (x, y) = Msg.Pair (Msg.Int x, Msg.Int y)

let pos_opt = function
  | Msg.Pair (Msg.Int x, Msg.Int y) -> Some (x, y)
  | _ -> None

let pos_pair p t = Msg.Pair (pos p, pos t)

let pos_pair_opt = function
  | Msg.Pair (p, t) -> begin
      match (pos_opt p, pos_opt t) with
      | Some p, Some t -> Some (p, t)
      | _ -> None
    end
  | _ -> None

let cnf (f : Cnf.t) =
  Msg.Pair
    (Msg.Int f.num_vars, Msg.Seq (List.map (fun clause -> ints clause) f.clauses))

let cnf_opt = function
  | Msg.Pair (Msg.Int num_vars, Msg.Seq clause_msgs) -> begin
      let clauses =
        List.fold_left
          (fun acc m ->
            match (acc, ints_opt m) with
            | Some acc, Some clause -> Some (clause :: acc)
            | _ -> None)
          (Some []) clause_msgs
      in
      match clauses with
      | None -> None
      | Some clauses -> (
          try Some (Cnf.make ~num_vars (List.rev clauses))
          with Invalid_argument _ -> None)
    end
  | _ -> None

let assignment bits =
  ints (List.map (fun b -> if b then 1 else 0) bits)

let assignment_opt ~num_vars m =
  match ints_opt m with
  | Some bits when List.length bits = num_vars ->
      let a = Array.make (num_vars + 1) false in
      let ok = ref true in
      List.iteri
        (fun i bit ->
          if bit = 0 then a.(i + 1) <- false
          else if bit = 1 then a.(i + 1) <- true
          else ok := false)
        bits;
      if !ok then Some a else None
  | _ -> None
