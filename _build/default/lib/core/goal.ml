type t = { name : string; worlds : World.t list; referee : Referee.t }

let make ~name ~worlds ~referee =
  if worlds = [] then invalid_arg "Goal.make: no worlds";
  { name; worlds; referee }

let name t = t.name
let is_finite t = Referee.is_finite t.referee

let world ?(choice = 0) t =
  let n = List.length t.worlds in
  List.nth t.worlds (((choice mod n) + n) mod n)

let num_worlds t = List.length t.worlds
