(* Fixed-size domain pool with a work-stealing deque scheduler.

   One deque per participant (the submitter is participant 0, worker
   domains are 1..width-1).  A batch deals contiguous index chunks
   round-robin into the deques; each participant pops from the head of
   its own deque and, when empty, steals from the *tail* of a victim's
   deque, so skewed chunk costs migrate to idle domains.  The deques
   hold at most a few chunks each, so a plain mutex-protected list is
   both simple and cheap — contention happens per chunk, not per
   task. *)

type chunk = { lo : int; hi : int } (* task indices [lo, hi) *)
type deque = { dq_lock : Mutex.t; mutable items : chunk list }

type batch = {
  deques : deque array;
  exec : int -> unit; (* run task [i] and store its result *)
  remaining : int Atomic.t; (* tasks not yet retired (run or skipped) *)
  failed : (exn * Printexc.raw_backtrace) option Atomic.t;
}

type t = {
  width : int;
  lock : Mutex.t;
  work_cond : Condition.t; (* workers sleep here between batches *)
  done_cond : Condition.t; (* the submitter sleeps here during drain *)
  mutable current : (int * batch) option; (* (sequence number, batch) *)
  mutable seq : int;
  mutable stopping : bool;
  mutable spawned : bool; (* workers are spawned on first dispatch *)
  mutable domains : unit Domain.t list;
}

(* Cross-pool count of in-flight multi-domain batches, consulted by
   Trace.set_sink to refuse ambient-sink swaps during parallel runs. *)
let batches_in_flight = Atomic.make 0
let active_batches () = Atomic.get batches_in_flight

let in_worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get in_worker_key

(* Ambient width: --jobs (via set_default_jobs) beats GOALCOM_JOBS
   beats 1.  Parallelism is strictly opt-in. *)
let jobs_override = ref None

let set_default_jobs j =
  if j <= 0 then invalid_arg "Pool.set_default_jobs: jobs must be positive";
  jobs_override := Some j

let default_jobs () =
  match !jobs_override with
  | Some j -> j
  | None -> (
      match Sys.getenv_opt "GOALCOM_JOBS" with
      | None -> 1
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some j when j > 0 -> j
          | _ -> 1))

(* Re-read per call: tests override GOALCOM_HW_JOBS with putenv to
   exercise multi-domain paths on single-core CI boxes. *)
let hardware_jobs () =
  match Sys.getenv_opt "GOALCOM_HW_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j > 0 -> j
      | _ -> invalid_arg "Pool.hardware_jobs: GOALCOM_HW_JOBS wants a positive integer")
  | None -> Domain.recommended_domain_count ()

let new_deque () = { dq_lock = Mutex.create (); items = [] }

let pop_own d =
  Mutex.lock d.dq_lock;
  let c =
    match d.items with
    | [] -> None
    | c :: rest ->
        d.items <- rest;
        Some c
  in
  Mutex.unlock d.dq_lock;
  c

(* Thieves take the chunk the owner would reach last.  The lists are a
   handful of elements long, so the O(n) tail removal is noise. *)
let steal_from d =
  Mutex.lock d.dq_lock;
  let c =
    match List.rev d.items with
    | [] -> None
    | last :: rev_rest ->
        d.items <- List.rev rev_rest;
        Some last
  in
  Mutex.unlock d.dq_lock;
  c

let steal b ~thief =
  let width = Array.length b.deques in
  let rec try_victim k =
    if k >= width then None
    else
      let v = (thief + k) mod width in
      match steal_from b.deques.(v) with
      | Some _ as c -> c
      | None -> try_victim (k + 1)
  in
  try_victim 1

(* Retire every task of a chunk.  A task runs only while no failure is
   recorded; afterwards the batch drains by skipping, so the submitter
   can re-raise promptly without abandoning bookkeeping. *)
let run_chunk pool b c =
  for i = c.lo to c.hi - 1 do
    (match Atomic.get b.failed with
    | None -> (
        try b.exec i
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set b.failed None (Some (e, bt))))
    | Some _ -> ());
    if Atomic.fetch_and_add b.remaining (-1) = 1 then (
      Mutex.lock pool.lock;
      Condition.broadcast pool.done_cond;
      Mutex.unlock pool.lock)
  done

let rec drain pool b ~me =
  match pop_own b.deques.(me) with
  | Some c ->
      run_chunk pool b c;
      drain pool b ~me
  | None -> (
      match steal b ~thief:me with
      | Some c ->
          run_chunk pool b c;
          drain pool b ~me
      | None -> ())

let worker_loop pool ~me () =
  Domain.DLS.set in_worker_key true;
  let last_seq = ref 0 in
  let rec loop () =
    Mutex.lock pool.lock;
    let rec await () =
      if pool.stopping then None
      else
        match pool.current with
        | Some (seq, b) when seq > !last_seq ->
            last_seq := seq;
            Some b
        | _ ->
            Condition.wait pool.work_cond pool.lock;
            await ()
    in
    let job = await () in
    Mutex.unlock pool.lock;
    match job with
    | None -> ()
    | Some b ->
        drain pool b ~me;
        loop ()
  in
  loop ()

(* Spawning a domain costs milliseconds (minor heap + GC setup), which
   dwarfs a small batch, so [create] spawns nothing: workers appear on
   the first batch that actually overruns the sequential fallback.  A
   pool whose batches all resolve on the submitter never pays for a
   single domain. *)
let create ~jobs =
  if jobs <= 0 then invalid_arg "Pool.create: jobs must be positive";
  {
    width = jobs;
    lock = Mutex.create ();
    work_cond = Condition.create ();
    done_cond = Condition.create ();
    current = None;
    seq = 0;
    stopping = false;
    spawned = false;
    domains = [];
  }

let ensure_workers pool =
  Mutex.lock pool.lock;
  if (not pool.spawned) && not pool.stopping then begin
    pool.spawned <- true;
    pool.domains <-
      List.init (pool.width - 1) (fun k ->
          Domain.spawn (worker_loop pool ~me:(k + 1)))
  end;
  Mutex.unlock pool.lock

let jobs t = t.width

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  Condition.broadcast t.work_cond;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Deal [lo, n) into chunks of [per] tasks each. *)
let chunks_range ~per ~lo n =
  let rec go l acc =
    if l >= n then List.rev acc
    else go (l + per) ({ lo = l; hi = min n (l + per) } :: acc)
  in
  go lo []

(* About four chunks per participant: enough slack for stealing to
   even out skew, few enough that scheduling stays per-chunk cheap. *)
let default_per ~width count = max 1 ((count + (width * 4) - 1) / (width * 4))

(* Small-task fallback.  Waking the pool costs a condvar broadcast plus
   per-chunk deque traffic — tens of microseconds that dwarf a
   sub-millisecond batch (BENCH_par.json once showed e1/trials at
   3.1 ms sequential vs 27.8 ms at jobs=4).  So the submitter first
   probes the batch sequentially, and keeps going while the measured
   average cost predicts the {e whole} batch lands under the cutoff;
   only when the prediction overruns does it deal the remainder to the
   deques, with chunks auto-sized so each amortizes its scheduling. *)
let seq_cutoff_s =
  lazy
    (match Sys.getenv_opt "GOALCOM_PAR_SEQ_CUTOFF_US" with
    | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some us when us >= 0. -> us /. 1_000_000.
        | _ -> 0.004)
    | None -> 0.004)

let run (type a) t (tasks : (unit -> a) array) : a array =
  let n = Array.length tasks in
  if t.stopping then invalid_arg "Pool.run: pool is shut down";
  if n = 0 then [||]
  else if t.width = 1 then (
    (* The exact sequential path: index order on the calling domain,
       first exception propagating as-is. *)
    let results = Array.make n None in
    for i = 0 to n - 1 do
      results.(i) <- Some (tasks.(i) ())
    done;
    Array.map Option.get results)
  else begin
    Mutex.lock t.lock;
    let busy = Option.is_some t.current in
    Mutex.unlock t.lock;
    if busy then invalid_arg "Pool.run: pool is busy (nested run from a task?)";
    let results = Array.make n None in
    (* The probe prefix runs on the submitting domain but is already
       part of the batch: accounting must be live {e before} the first
       task so participant sink installs are allowed and foreign ones
       refused (see [in_worker] and Trace.set_sink). *)
    Atomic.incr batches_in_flight;
    let was_worker = Domain.DLS.get in_worker_key in
    Domain.DLS.set in_worker_key true;
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set in_worker_key was_worker;
        Atomic.decr batches_in_flight)
      (fun () ->
        let cutoff = Lazy.force seq_cutoff_s in
        let t0 = Unix.gettimeofday () in
        let probed = ref 0 in
        let keep_seq = ref (cutoff > 0.) in
        while !keep_seq && !probed < n do
          results.(!probed) <- Some (tasks.(!probed) ());
          incr probed;
          let elapsed = Unix.gettimeofday () -. t0 in
          if elapsed *. float_of_int n /. float_of_int !probed > cutoff then
            keep_seq := false
        done;
        if !probed >= n then Array.map Option.get results
        else begin
          let lo = !probed in
          let left = n - lo in
          let per =
            let floor_per = default_per ~width:t.width left in
            if lo = 0 then floor_per
            else
              (* Size chunks so each holds about half a cutoff of work:
                 big enough to amortize scheduling, small enough that
                 stealing still balances skew. *)
              let avg = (Unix.gettimeofday () -. t0) /. float_of_int lo in
              if avg <= 0. then floor_per
              else
                let target = int_of_float (ceil (cutoff /. 2. /. avg)) in
                max floor_per (min left (max 1 target))
          in
          let b =
            {
              deques = Array.init t.width (fun _ -> new_deque ());
              exec = (fun i -> results.(i) <- Some (tasks.(i) ()));
              remaining = Atomic.make left;
              failed = Atomic.make None;
            }
          in
          List.iteri
            (fun k c ->
              let d = b.deques.(k mod t.width) in
              d.items <- d.items @ [ c ])
            (chunks_range ~per ~lo n);
          ensure_workers t;
          Mutex.lock t.lock;
          if Option.is_some t.current then (
            Mutex.unlock t.lock;
            invalid_arg "Pool.run: pool is busy (nested run from a task?)");
          t.seq <- t.seq + 1;
          t.current <- Some (t.seq, b);
          Condition.broadcast t.work_cond;
          Mutex.unlock t.lock;
          (* While draining, the submitting domain is a batch
             participant too (accounting was set up before the probe). *)
          drain t b ~me:0;
          Mutex.lock t.lock;
          while Atomic.get b.remaining > 0 do
            Condition.wait t.done_cond t.lock
          done;
          t.current <- None;
          Mutex.unlock t.lock;
          match Atomic.get b.failed with
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> Array.map Option.get results
        end)
  end

let map_array t f xs = run t (Array.map (fun x () -> f x) xs)
let map_list t f xs = Array.to_list (map_array t f (Array.of_list xs))
