open Goalcom_prelude

type t = { fwd : int array; inv : int array }

let size t = Array.length t.fwd

let of_array a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Dialect.of_array: empty";
  let inv = Array.make n (-1) in
  Array.iteri
    (fun i v ->
      if v < 0 || v >= n then invalid_arg "Dialect.of_array: out of range";
      if inv.(v) <> -1 then invalid_arg "Dialect.of_array: not injective";
      inv.(v) <- i)
    a;
  { fwd = Array.copy a; inv }

let identity n = of_array (Array.init n (fun i -> i))
let to_array t = Array.copy t.fwd

let apply t i =
  if i < 0 || i >= size t then invalid_arg "Dialect.apply: out of range";
  t.fwd.(i)

let unapply t i =
  if i < 0 || i >= size t then invalid_arg "Dialect.unapply: out of range";
  t.inv.(i)

let inverse t = { fwd = Array.copy t.inv; inv = Array.copy t.fwd }

let compose f g =
  if size f <> size g then invalid_arg "Dialect.compose: size mismatch";
  of_array (Array.init (size f) (fun i -> f.fwd.(g.fwd.(i))))

let equal a b = a.fwd = b.fwd

let pp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.fwd)))

let rotation ~size:n k =
  if n <= 0 then invalid_arg "Dialect.rotation: non-positive size";
  let k = ((k mod n) + n) mod n in
  of_array (Array.init n (fun i -> (i + k) mod n))

let factorial n =
  let rec go acc k =
    if k <= 1 then acc
    else if acc > max_int / k then max_int
    else go (acc * k) (k - 1)
  in
  if n < 0 then invalid_arg "Dialect.factorial: negative" else go 1 n

let of_lehmer ~size:n code =
  if n <= 0 || code < 0 then None
  else begin
    let total = factorial n in
    if total <> max_int && code >= total then None
    else begin
      (* Factorial-base digits select from the remaining symbols. *)
      let remaining = ref (Listx.range 0 n) in
      let result = Array.make n 0 in
      let rest = ref code in
      let ok = ref true in
      for i = 0 to n - 1 do
        let f = factorial (n - 1 - i) in
        let d = if f = 0 then 0 else !rest / f in
        if d >= List.length !remaining then ok := false
        else begin
          result.(i) <- List.nth !remaining d;
          remaining := List.filteri (fun j _ -> j <> d) !remaining;
          rest := !rest mod f
        end
      done;
      if !ok then Some (of_array result) else None
    end
  end

let to_lehmer t =
  let n = size t in
  let code = ref 0 in
  for i = 0 to n - 1 do
    let smaller_later =
      let c = ref 0 in
      for j = i + 1 to n - 1 do
        if t.fwd.(j) < t.fwd.(i) then incr c
      done;
      !c
    in
    code := !code + (smaller_later * factorial (n - 1 - i))
  done;
  !code

let enumerate_all ~size:n =
  Enum.make ~name:(Printf.sprintf "dialects(S_%d)" n) ~card:(factorial n)
    (fun i -> of_lehmer ~size:n i)

let enumerate_rotations ~size:n =
  Enum.tabulate ~name:(Printf.sprintf "rotations(%d)" n) n (fun k ->
      rotation ~size:n k)

let random rng n =
  of_array (Rng.permutation rng n)
