(* Equivalence suite for the incremental referee/sensing engine.

   The O(n) folds ([Referee.violations], [Sensing.verdicts]) replaced a
   quadratic prefix re-evaluation; the refactor's contract is that they
   agree with the legacy evaluation prefix for prefix, on arbitrary
   histories.  The quadratic oracle is kept in the library as
   [Referee.violations_prefix]; the sensing oracle is each sensor's
   whole-view [sense] face applied to every [View.prefixes] element,
   plus [Sensing.make]-based reference twins of the native
   constructors. *)

open Goalcom
open Goalcom_prelude

let count = 80

(* --- random histories --- *)

let msg_gen =
  QCheck.Gen.(
    oneof
      [
        return Msg.Silence;
        map (fun n -> Msg.Sym n) (int_bound 4);
        map (fun n -> Msg.Int (n - 8)) (int_bound 16);
        map (fun s -> Msg.Text s) (oneofl [ "a"; "bb"; "solved"; "err" ]);
        map2
          (fun a b -> Msg.Pair (Msg.Int a, Msg.Sym b))
          (int_bound 4) (int_bound 3);
      ])

let round_of_msgs index halted = function
  | [ a; b; c; d; e; f; g ] ->
      {
        History.Round.index;
        user_to_server = a;
        user_to_world = b;
        server_to_user = c;
        server_to_world = d;
        world_to_user = e;
        world_to_server = f;
        world_view = g;
        user_halted = halted;
      }
  | _ -> assert false

(* Histories of 0..28 rounds with arbitrary channel contents, sometimes
   with a halted tail (as Exec.run's drain rounds produce). *)
let history_gen =
  QCheck.Gen.(
    int_bound 28 >>= fun n ->
    int_bound (n + 1) >>= fun halt_at ->
    list_repeat n (list_repeat 7 msg_gen) >>= fun rows ->
    msg_gen >|= fun v0 ->
    let rounds =
      List.mapi (fun i row -> round_of_msgs (i + 1) (i + 1 > halt_at) row) rows
    in
    History.make ~initial_world_view:v0 rounds)

let k_gen = QCheck.Gen.int_bound 3

(* A small family of message predicates indexed by [k], covering every
   constructor. *)
let view_pred k (m : Msg.t) =
  match m with
  | Msg.Silence -> true
  | Msg.Sym s -> s <> k
  | Msg.Int n -> (n + 16) mod (k + 2) <> 0
  | Msg.Text t -> String.length t <> k + 1
  | Msg.Pair (Msg.Int a, _) -> a <> k
  | Msg.Pair _ -> k mod 2 = 0
  | Msg.Seq _ -> k mod 3 <> 0

let hk_arb = QCheck.make QCheck.Gen.(pair history_gen k_gen)

(* --- referees: incremental folds vs the quadratic prefix oracle --- *)

(* Legacy list-predicate referee with a genuinely prefix-dependent
   predicate (a count over the whole most-recent-first list): the
   [Compact_pred] adapter inside [violations] must reproduce the
   one-predicate-call-per-prefix results exactly. *)
let prop_compact_legacy_fold_eq_prefix =
  QCheck.Test.make ~count
    ~name:"Referee: legacy compact fold = prefix oracle (list predicate)"
    hk_arb
    (fun (h, k) ->
      let acceptable views =
        Listx.count (fun v -> not (view_pred k v)) views <= k
      in
      let r = Referee.compact "legacy-count" acceptable in
      Referee.violations r h = Referee.violations_prefix r h)

(* Native incremental referee vs its legacy twin: stateless head check. *)
let prop_incr_stateless_eq_legacy =
  QCheck.Test.make ~count
    ~name:"Referee: incremental (stateless) = legacy twin" hk_arb
    (fun (h, k) ->
      let incr =
        Referee.compact_incremental "incr-head"
          ~init:(fun _v0 -> ((), `Ok))
          ~step:(fun () v -> ((), Referee.verdict_of_bool (view_pred k v)))
      in
      let legacy =
        Referee.compact "legacy-head" (function
          | v :: _ -> view_pred k v
          | [] -> true)
      in
      let vs = Referee.violations incr h in
      vs = Referee.violations legacy h
      && vs = Referee.violations_prefix legacy h
      && vs = Referee.violations_prefix incr h)

(* Native incremental referee vs its legacy twin: stateful count over
   the whole prefix (including the initial world view). *)
let prop_incr_stateful_eq_legacy =
  QCheck.Test.make ~count
    ~name:"Referee: incremental (stateful) = legacy twin" hk_arb
    (fun (h, k) ->
      let bad v = not (view_pred k v) in
      let incr =
        Referee.compact_incremental "incr-count"
          ~init:(fun v0 -> ((if bad v0 then 1 else 0), `Ok))
          ~step:(fun c v ->
            let c = if bad v then c + 1 else c in
            (c, Referee.verdict_of_bool (c <= k)))
      in
      let legacy =
        Referee.compact "legacy-count" (fun views ->
            Listx.count bad views <= k)
      in
      let vs = Referee.violations incr h in
      vs = Referee.violations legacy h
      && vs = Referee.violations_prefix legacy h)

(* Violation lists are sorted round indices within 1..length. *)
let prop_violations_sorted_bounded =
  QCheck.Test.make ~count ~name:"Referee: violations sorted and in range"
    hk_arb
    (fun (h, k) ->
      let incr =
        Referee.compact_incremental "incr-head"
          ~init:(fun _v0 -> ((), `Ok))
          ~step:(fun () v -> ((), Referee.verdict_of_bool (view_pred k v)))
      in
      let vs = Referee.violations incr h in
      List.for_all (fun r -> r >= 1 && r <= History.length h) vs
      && List.sort compare vs = vs)

(* finite_exists = List.exists over the world views, and agrees with a
   legacy [Referee.finite] twin. *)
let prop_finite_exists_eq_list_exists =
  QCheck.Test.make ~count ~name:"Referee: finite_exists = List.exists"
    hk_arb
    (fun (h, k) ->
      let p v = not (view_pred k v) in
      let incr = Referee.finite_exists "seen-bad" p in
      let legacy = Referee.finite "seen-bad-legacy" (List.exists p) in
      let expected = List.exists p (History.world_views h) in
      Referee.decide_finite incr h = expected
      && Referee.decide_finite legacy h = expected
      && Referee.violations incr h
         = (if expected then [] else [ History.length h ]))

(* Stateful finite_incremental vs its Finite_pred twin. *)
let prop_finite_incremental_eq_legacy =
  QCheck.Test.make ~count
    ~name:"Referee: finite_incremental (stateful) = legacy twin" hk_arb
    (fun (h, k) ->
      let bad v = not (view_pred k v) in
      let incr =
        Referee.finite_incremental "count-even"
          ~init:(fun v0 ->
            let c = if bad v0 then 1 else 0 in
            (c, Referee.verdict_of_bool (c mod 2 = 0)))
          ~step:(fun c v ->
            let c = if bad v then c + 1 else c in
            (c, Referee.verdict_of_bool (c mod 2 = 0)))
      in
      let legacy =
        Referee.finite "count-even-legacy" (fun views ->
            Listx.count bad views mod 2 = 0)
      in
      Referee.decide_finite incr h = Referee.decide_finite legacy h)

(* decider exposes the whole-list decision of a finite referee. *)
let prop_decider_eq_exists =
  QCheck.Test.make ~count ~name:"Referee: decider = List.exists"
    (QCheck.make
       QCheck.Gen.(pair (list_size (1 -- 12) msg_gen) k_gen))
    (fun (views, k) ->
      let p v = not (view_pred k v) in
      Referee.decider (Referee.finite_exists "seen" p) views
      = List.exists p views)

(* --- sensing: incremental face vs the whole-view face --- *)

let event_pred k (e : View.event) = not (view_pred k e.View.from_world)

(* The library-wide sensing contract: the verdict stream of the
   incremental face equals the whole-view [sense] face applied to every
   prefix of the projected view.  For [tolerant] the sense face is the
   legacy drop_latest re-evaluation, so this is exactly
   incremental-vs-legacy. *)
let sense_face_agrees sensor h =
  List.map snd (Sensing.verdicts sensor h)
  = List.map sensor.Sensing.sense (View.prefixes h)

let prop_of_latest_face =
  QCheck.Test.make ~count ~name:"Sensing: of_latest incremental = sense"
    hk_arb
    (fun (h, k) ->
      sense_face_agrees
        (Sensing.of_latest ~name:"latest" ~empty:(k mod 2 = 0) (event_pred k))
        h)

let prop_of_recent_face =
  QCheck.Test.make ~count ~name:"Sensing: of_recent incremental = sense"
    (QCheck.make QCheck.Gen.(triple history_gen k_gen (1 -- 6)))
    (fun (h, k, window) ->
      sense_face_agrees
        (Sensing.of_recent ~name:"recent" ~window (event_pred k))
        h)

let prop_incremental_face =
  QCheck.Test.make ~count
    ~name:"Sensing: incremental (stateful) = make twin" hk_arb
    (fun (h, k) ->
      (* "fewer than k+1 negative events so far" — genuinely stateful. *)
      let incr =
        Sensing.incremental ~name:"few-negs"
          ~init:(fun () -> (0, Sensing.Positive))
          ~step:(fun negs e ->
            let negs = if event_pred k e then negs else negs + 1 in
            (negs, if negs <= k then Sensing.Positive else Sensing.Negative))
      in
      let twin =
        Sensing.make ~name:"few-negs-twin" (fun view ->
            let negs =
              Listx.count (fun e -> not (event_pred k e)) (View.events view)
            in
            if negs <= k then Sensing.Positive else Sensing.Negative)
      in
      sense_face_agrees incr h
      && Sensing.verdicts incr h = Sensing.verdicts twin h)

let prop_of_latest_eq_make_twin =
  QCheck.Test.make ~count ~name:"Sensing: of_latest = make twin" hk_arb
    (fun (h, k) ->
      let empty = k mod 2 = 0 in
      let native =
        Sensing.of_latest ~name:"latest" ~empty (event_pred k)
      in
      let twin =
        Sensing.make ~name:"latest-twin" (fun view ->
            match View.latest view with
            | None -> if empty then Sensing.Positive else Sensing.Negative
            | Some e ->
                if event_pred k e then Sensing.Positive else Sensing.Negative)
      in
      Sensing.verdicts native h = Sensing.verdicts twin h)

let prop_of_recent_eq_make_twin =
  QCheck.Test.make ~count ~name:"Sensing: of_recent = make twin"
    (QCheck.make QCheck.Gen.(triple history_gen k_gen (1 -- 6)))
    (fun (h, k, window) ->
      let native = Sensing.of_recent ~name:"recent" ~window (event_pred k) in
      let twin =
        Sensing.make ~name:"recent-twin" (fun view ->
            if
              List.exists (event_pred k)
                (Listx.take window (View.events_rev view))
            then Sensing.Positive
            else Sensing.Negative)
      in
      Sensing.verdicts native h = Sensing.verdicts twin h)

(* Tolerant masking: the ring-buffer face must agree both with the
   legacy drop_latest sense face (via sense_face_agrees) and with a
   from-scratch reference computed over the raw verdict stream — the
   masked verdict at position i is Negative iff the last [window] raw
   verdicts up to i contain at least [threshold] negatives. *)
let prop_tolerant_face_and_reference =
  QCheck.Test.make ~count ~name:"Sensing: tolerant ring = legacy + reference"
    (QCheck.make
       QCheck.Gen.(
         pair (pair history_gen k_gen) (1 -- 6) >>= fun ((h, k), window) ->
         1 -- window >|= fun threshold -> (h, k, window, threshold)))
    (fun (h, k, window, threshold) ->
      let base = Sensing.of_latest ~name:"base" ~empty:true (event_pred k) in
      let tolerant = Sensing.tolerant ~window ~threshold base in
      let raw = Array.of_list (List.map snd (Sensing.verdicts base h)) in
      let expected =
        List.init (Array.length raw) (fun i ->
            let lo = max 0 (i - window + 1) in
            let negs = ref 0 in
            for j = lo to i do
              if raw.(j) = Sensing.Negative then incr negs
            done;
            if !negs >= threshold then Sensing.Negative else Sensing.Positive)
      in
      sense_face_agrees tolerant h
      && List.map snd (Sensing.verdicts tolerant h) = expected)

(* --- ring-buffer edge cases --- *)

let ev ~round ~fw =
  {
    View.round;
    from_server = Msg.Silence;
    from_world = fw;
    to_server = Msg.Silence;
    to_world = Msg.Silence;
    halted = false;
  }

let pos_msg = Msg.Int 1
let neg_msg = Msg.Int 0

let base_sensor =
  Sensing.of_latest ~name:"unit-base" ~empty:true (fun e ->
      Msg.equal e.View.from_world pos_msg)

(* Drive a tolerant instance over [msgs] and return the verdict after
   each observation. *)
let drive sensor msgs =
  let _, verdicts =
    List.fold_left
      (fun ((st, round), acc) fw ->
        let st = Sensing.observe st (ev ~round ~fw) in
        ((st, round + 1), Sensing.verdict st :: acc))
      ((Sensing.start sensor, 1), [])
      msgs
  in
  List.rev verdicts

let vl = Alcotest.(list (testable (Fmt.of_to_string (function
  | Sensing.Positive -> "+"
  | Sensing.Negative -> "-")) ( = )))

let test_tolerant_empty_positive () =
  let t = Sensing.tolerant ~window:8 ~threshold:3 base_sensor in
  Alcotest.(check bool)
    "empty view is Positive" true
    (Sensing.verdict (Sensing.start t) = Sensing.Positive)

let test_tolerant_window_one () =
  let t = Sensing.tolerant ~window:1 ~threshold:1 base_sensor in
  Alcotest.check vl "window=1 is the raw stream"
    Sensing.[ Negative; Positive; Negative; Negative ]
    (drive t [ neg_msg; pos_msg; neg_msg; neg_msg ])

let test_tolerant_threshold_eq_window () =
  let t = Sensing.tolerant ~window:3 ~threshold:3 base_sensor in
  Alcotest.check vl "negative only when the whole window is negative"
    Sensing.[ Positive; Positive; Negative; Negative; Positive ]
    (drive t [ neg_msg; neg_msg; neg_msg; neg_msg; pos_msg ])

let test_tolerant_window_exceeds_length () =
  let t = Sensing.tolerant ~window:8 ~threshold:8 base_sensor in
  Alcotest.check vl "threshold unreachable within a short run"
    Sensing.[ Positive; Positive; Positive ]
    (drive t [ neg_msg; neg_msg; neg_msg ])

let test_tolerant_eviction () =
  (* window=2, threshold=2: the r1 negative must be evicted by r3, so
     the two non-adjacent negatives never mask to Negative. *)
  let t = Sensing.tolerant ~window:2 ~threshold:2 base_sensor in
  Alcotest.check vl "evicted negatives stop counting"
    Sensing.[ Positive; Negative; Positive; Positive ]
    (drive t [ neg_msg; neg_msg; pos_msg; neg_msg ])

let test_tolerant_validation () =
  Alcotest.check_raises "window must be positive"
    (Invalid_argument "Sensing.tolerant: window must be positive") (fun () ->
      ignore (Sensing.tolerant ~window:0 ~threshold:1 base_sensor));
  Alcotest.check_raises "threshold must be in 1..window"
    (Invalid_argument "Sensing.tolerant: threshold must be in 1..window")
    (fun () -> ignore (Sensing.tolerant ~window:3 ~threshold:4 base_sensor))

let test_decider_compact_rejected () =
  let r =
    Referee.compact_incremental "c"
      ~init:(fun _ -> ((), `Ok))
      ~step:(fun () _ -> ((), `Ok))
  in
  Alcotest.check_raises "decider on compact"
    (Invalid_argument "Referee.decider: compact referee") (fun () ->
      ignore (Referee.decider r [ Msg.Silence ]));
  Alcotest.check_raises "decide_finite on compact"
    (Invalid_argument "Referee.decide_finite: compact referee") (fun () ->
      ignore (Referee.decide_finite r (History.make ~initial_world_view:Msg.Silence [])))

(* --- History length/prefix bookkeeping --- *)

let prop_history_length_prefix =
  QCheck.Test.make ~count ~name:"History: O(1) length and prefix agree"
    (QCheck.make QCheck.Gen.(pair history_gen (int_bound 32)))
    (fun (h, n) ->
      let p = History.prefix n h in
      History.length h = List.length (History.rounds h)
      && History.rounds p = Listx.take n (History.rounds h)
      && History.length p = List.length (History.rounds p))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_compact_legacy_fold_eq_prefix;
      prop_incr_stateless_eq_legacy;
      prop_incr_stateful_eq_legacy;
      prop_violations_sorted_bounded;
      prop_finite_exists_eq_list_exists;
      prop_finite_incremental_eq_legacy;
      prop_decider_eq_exists;
      prop_of_latest_face;
      prop_of_recent_face;
      prop_incremental_face;
      prop_of_latest_eq_make_twin;
      prop_of_recent_eq_make_twin;
      prop_tolerant_face_and_reference;
      prop_history_length_prefix;
    ]

let () =
  Alcotest.run "incremental"
    [
      ("equivalence", suite);
      ( "ring buffer",
        [
          Alcotest.test_case "empty view" `Quick test_tolerant_empty_positive;
          Alcotest.test_case "window=1" `Quick test_tolerant_window_one;
          Alcotest.test_case "threshold=window" `Quick
            test_tolerant_threshold_eq_window;
          Alcotest.test_case "window > length" `Quick
            test_tolerant_window_exceeds_length;
          Alcotest.test_case "eviction" `Quick test_tolerant_eviction;
          Alcotest.test_case "validation" `Quick test_tolerant_validation;
          Alcotest.test_case "compact rejected" `Quick
            test_decider_compact_rejected;
        ] );
    ]
