(* Benchmark driver.

   Eight parts:
   1. Regenerate every experiment table/figure — the paper has no
      evaluation section, so these tables ARE the evaluation; see
      EXPERIMENTS.md for the claim-by-claim mapping.
   2. Bechamel micro-benchmarks: one Test.make per experiment (timing
      the experiment's workload kernel — a single representative
      execution) plus engine micro-benchmarks.
   3. Tracing overhead on the compact control kernel -> BENCH_trace.json.
   4. Parallel scaling & determinism (the E17 workloads at fixed job
      counts) -> BENCH_par.json.
   5. Incremental judging & sensing kernels at growing horizons
      -> BENCH_sense.json.
   6. Supervised session engine under chaos conditions
      -> BENCH_session.json.
   7. Strategy compilation & the decode+compile cache
      -> BENCH_compile.json.
   8. The network goal family: topology delivery rounds, ARQ
      forwarding under faults, shared-medium contention
      -> BENCH_net.json.

   `--check` re-measures 3-8 quickly and gates them against the
   committed BENCH files; `--jobs N` sets the ambient pool width. *)

open Bechamel
open Toolkit
open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals
open Goalcom_harness

let seed = 1

let () =
  (* --jobs N (before anything runs; bench is not a cmdliner binary). *)
  Array.iteri
    (fun i a ->
      if a = "--jobs" && i + 1 < Array.length Sys.argv then
        match int_of_string_opt Sys.argv.(i + 1) with
        | Some n when n > 0 -> Goalcom_par.Pool.set_default_jobs n
        | _ -> ())
    Sys.argv

(* Part 1: experiment tables *)

let print_experiments () =
  print_endline "==================================================";
  print_endline " Experiment tables (one per paper claim)";
  print_endline "==================================================";
  List.iter
    (fun (e : Experiment.t) ->
      Printf.printf "\n# %s (%s) — %s\n# claim: %s\n%!" e.id
        (Experiment.kind_to_string e.kind)
        e.title e.claim;
      Table.print (e.run ~seed))
    Experiment.all

(* Part 2: bechamel kernels *)

let alphabet = 6
let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects i

let run_once ~horizon ~goal ~user ~server k =
  ignore
    (Exec.run ~config:(Exec.config ~horizon ()) ~goal ~user ~server
       (Rng.make (seed + k)))

let e1_kernel =
  let goal = Printing.goal ~docs:[ [ 3; 1; 4 ] ] ~alphabet () in
  let server = Printing.server ~alphabet (dialect 2) in
  fun () ->
    run_once ~horizon:2000 ~goal
      ~user:(Printing.universal_user ~alphabet dialects)
      ~server 1

let e2_kernel =
  let goal = Printing.goal ~docs:[ [ 5; 2 ] ] ~alphabet () in
  let server = Printing.server ~alphabet (dialect (alphabet - 1)) in
  fun () ->
    run_once ~horizon:4000 ~goal
      ~user:(Printing.universal_user ~alphabet dialects)
      ~server 2

let maze_scenario = Maze.scenario ~width:8 ~height:8 ~start:(0, 0) ~target:(5, 4) ()

let e3_kernel =
  let goal = Maze.goal ~scenarios:[ maze_scenario ] ~alphabet () in
  let server = Maze.server ~alphabet (dialect 3) in
  fun () ->
    run_once ~horizon:4000 ~goal
      ~user:(Maze.universal_user ~alphabet ~scenario:maze_scenario dialects)
      ~server 3

let e4_kernel = fun () -> ignore (Levin.work_before ~index:10 ~budget:64 ())

let e5_kernel =
  let goal = Printing.goal ~docs:[ [ 7; 3; 9 ] ] ~alphabet () in
  let server = Printing.server ~alphabet (dialect 1) in
  let user = Printing.universal_user ~alphabet dialects in
  let history =
    Exec.run ~config:(Exec.config ~horizon:1000 ()) ~goal ~user ~server
      (Rng.make seed)
  in
  fun () -> ignore (Sensing.verdicts Printing.sensing history)

let e6_kernel =
  let ctl_alphabet = 4 in
  let ctl_dialects = Dialect.enumerate_rotations ~size:ctl_alphabet in
  let goal = Control.goal ~alphabet:ctl_alphabet () in
  let server = Control.server ~alphabet:ctl_alphabet (Enum.get_exn ctl_dialects 2) in
  fun () ->
    run_once ~horizon:1500 ~goal
      ~user:(Control.universal_user ~alphabet:ctl_alphabet ctl_dialects)
      ~server 6

let e7_kernel =
  let dlg_alphabet = 4 in
  let dlg_dialects = Dialect.enumerate_rotations ~size:dlg_alphabet in
  let goal = Delegation.goal ~alphabet:dlg_alphabet () in
  let server = Delegation.server ~alphabet:dlg_alphabet (Enum.get_exn dlg_dialects 2) in
  fun () ->
    run_once ~horizon:2000 ~goal
      ~user:(Delegation.universal_user ~alphabet:dlg_alphabet dlg_dialects)
      ~server 7

let e8_kernel =
  let goal = Password.goal () in
  let server = Password.server_with_password 40 in
  fun () ->
    run_once ~horizon:600 ~goal ~user:(Password.sweeper ~space:64) ~server 8

let e9_kernel =
  let goal = Printing.goal ~docs:[ [ 6; 6; 6 ] ] ~alphabet () in
  let server = Printing.server ~alphabet (dialect 2) in
  fun () ->
    ignore
      (Helpful.check
         ~config:(Exec.config ~horizon:2000 ())
         ~trials:1 ~goal
         ~user_class:(Printing.user_class ~alphabet dialects)
         ~server (Rng.make seed))

let e10_kernel =
  let goal = Transfer.goal ~payloads:[ Listx.range 1 17 ] ~alphabet () in
  let server = Transfer.server ~alphabet (dialect (alphabet - 1)) in
  fun () ->
    run_once ~horizon:4000 ~goal
      ~user:(Transfer.universal_user_fast ~alphabet dialects)
      ~server 10

let e11_kernel =
  let ms_alphabet = 4 in
  let ms_dialects = Dialect.enumerate_rotations ~size:ms_alphabet in
  let base = Printing.goal ~docs:[ [ 2; 5 ] ] ~alphabet:ms_alphabet () in
  let goal = Multi_session.goal ~session_length:30 base in
  let server = Printing.server ~alphabet:ms_alphabet (Enum.get_exn ms_dialects 2) in
  fun () ->
    run_once ~horizon:600 ~goal
      ~user:
        (Universal.compact ~grace:1
           ~enum:
             (Multi_session.wrap_class
                (Printing.user_class ~alphabet:ms_alphabet ms_dialects))
           ~sensing:Multi_session.sensing ())
      ~server 11

let e12_kernel =
  let goal = Printing.goal ~docs:[ [ 4; 2; 6 ] ] ~alphabet () in
  let server =
    Goalcom_servers.Channel.delayed ~rounds:2
      (Printing.server ~alphabet (dialect 2))
  in
  fun () ->
    run_once ~horizon:4000 ~goal
      ~user:(Printing.universal_user ~alphabet dialects)
      ~server 12

let e13_kernel =
  let p = { Prediction.num_attributes = 6 } in
  let pr_alphabet = 3 in
  let pr_dialects = Dialect.enumerate_rotations ~size:pr_alphabet in
  let goal = Prediction.goal ~params:p ~alphabet:pr_alphabet () in
  let server = Prediction.server ~alphabet:pr_alphabet (Enum.get_exn pr_dialects 1) in
  fun () ->
    run_once ~horizon:800 ~goal
      ~user:(Prediction.universal_user ~params:p ~alphabet:pr_alphabet pr_dialects)
      ~server 13

let e15_kernel =
  let cp = { Counting.num_vars = 5; num_clauses = 8; clause_len = 3 } in
  let ct_alphabet = 4 in
  let ct_dialects = Dialect.enumerate_rotations ~size:ct_alphabet in
  let goal = Counting.goal ~params:cp ~alphabet:ct_alphabet () in
  let server = Counting.server ~alphabet:ct_alphabet (Enum.get_exn ct_dialects 2) in
  fun () ->
    run_once ~horizon:2000 ~goal
      ~user:(Counting.universal_user ~params:cp ~alphabet:ct_alphabet ct_dialects)
      ~server 15

let e14_kernel =
  let ctl_alphabet = 4 in
  let ctl_dialects = Dialect.enumerate_rotations ~size:ctl_alphabet in
  let goal = Control.goal ~alphabet:ctl_alphabet () in
  let server =
    Control.server ~alphabet:ctl_alphabet
      (Enum.get_exn ctl_dialects (ctl_alphabet - 1))
  in
  fun () ->
    run_once ~horizon:2000 ~goal
      ~user:
        (Universal.compact ~grace:2 ~growth:`Doubling
           ~enum:(Control.user_class ~alphabet:ctl_alphabet ctl_dialects)
           ~sensing:(Control.sensing ()) ())
      ~server 14

let fault_stack spec =
  match Goalcom_faults.Fault.stack_of_string ~alphabet spec with
  | Ok f -> Goalcom_faults.Fault.apply f
  | Error e -> invalid_arg e

let e16_kernel =
  let goal = Printing.goal ~docs:[ [ 4; 2 ] ] ~alphabet () in
  let server =
    fault_stack "corrupt:0.05+crash:60" (Printing.server ~alphabet (dialect 2))
  in
  fun () ->
    run_once ~horizon:4000 ~goal
      ~user:(Printing.universal_user ~alphabet dialects)
      ~server 16

(* Fault-layer micro-benchmarks: the same printing run through a single
   fault, isolating each combinator's per-round overhead. *)

let fault_kernel spec k =
  let goal = Printing.goal ~docs:[ [ 4; 2 ] ] ~alphabet () in
  let server = fault_stack spec (Printing.server ~alphabet (dialect 2)) in
  fun () ->
    run_once ~horizon:2000 ~goal
      ~user:(Printing.universal_user ~alphabet dialects)
      ~server k

let fault_corrupt_kernel = fault_kernel "corrupt:0.20" 17
let fault_reorder_kernel = fault_kernel "reorder:2" 18
let fault_crash_kernel = fault_kernel "crash:40" 19
let fault_adversary_kernel = fault_kernel "adversary:12" 20

(* Engine micro-benchmarks. *)

let micro_exec_round =
  let world =
    World.make ~name:"noop"
      ~init:(fun () -> ())
      ~step:(fun _rng () _ -> ((), Io.World.silent))
      ~view:(fun () -> Msg.Silence)
  in
  let goal =
    Goal.make ~name:"noop" ~worlds:[ world ]
      ~referee:(Referee.finite "t" (fun _ -> true))
  in
  let user = Strategy.stateless ~name:"mute" (fun (_ : Io.User.obs) -> Io.User.silent) in
  let server = Strategy.stateless ~name:"mute" (fun (_ : Io.Server.obs) -> Io.Server.silent) in
  fun () -> run_once ~horizon:1000 ~goal ~user ~server 11

let micro_mealy_decode =
  fun () ->
  for code = 0 to 255 do
    ignore (Mealy.decode ~states:2 ~inputs:2 ~outputs:2 code)
  done

let micro_dpll =
  let rng = Rng.make seed in
  let instances =
    List.map
      (fun _ -> fst (Goalcom_sat.Gen.planted rng ~num_vars:10 ~num_clauses:30 ~clause_len:3))
      (Listx.range 0 8)
  in
  fun () -> List.iter (fun cnf -> ignore (Goalcom_sat.Dpll.solve cnf)) instances

let micro_dist_sample =
  let d = Dist.of_weighted [ (0, 0.1); (1, 0.2); (2, 0.3); (3, 0.4) ] in
  let rng = Rng.make seed in
  fun () ->
    for _ = 1 to 1000 do
      ignore (Dist.sample rng d)
    done

let tests =
  Test.make_grouped ~name:"goalcom"
    [
      Test.make ~name:"e1_universality" (Staged.stage e1_kernel);
      Test.make ~name:"e2_overhead_curve" (Staged.stage e2_kernel);
      Test.make ~name:"e3_levin" (Staged.stage e3_kernel);
      Test.make ~name:"e4_levin_overhead" (Staged.stage e4_kernel);
      Test.make ~name:"e5_sensing_ablation" (Staged.stage e5_kernel);
      Test.make ~name:"e6_compact_convergence" (Staged.stage e6_kernel);
      Test.make ~name:"e7_delegation" (Staged.stage e7_kernel);
      Test.make ~name:"e8_lower_bound" (Staged.stage e8_kernel);
      Test.make ~name:"e9_helpfulness" (Staged.stage e9_kernel);
      Test.make ~name:"e10_amortisation" (Staged.stage e10_kernel);
      Test.make ~name:"e11_multi_session" (Staged.stage e11_kernel);
      Test.make ~name:"e12_channel_robustness" (Staged.stage e12_kernel);
      Test.make ~name:"e13_online_learning" (Staged.stage e13_kernel);
      Test.make ~name:"e14_grace_ablation" (Staged.stage e14_kernel);
      Test.make ~name:"e15_interactive_proof" (Staged.stage e15_kernel);
      Test.make ~name:"e16_fault_matrix" (Staged.stage e16_kernel);
      Test.make ~name:"fault_corrupt" (Staged.stage fault_corrupt_kernel);
      Test.make ~name:"fault_reorder" (Staged.stage fault_reorder_kernel);
      Test.make ~name:"fault_crash" (Staged.stage fault_crash_kernel);
      Test.make ~name:"fault_adversary" (Staged.stage fault_adversary_kernel);
      Test.make ~name:"micro_exec_1000_rounds" (Staged.stage micro_exec_round);
      Test.make ~name:"micro_mealy_decode_256" (Staged.stage micro_mealy_decode);
      Test.make ~name:"micro_dpll_8x(10v,30c)" (Staged.stage micro_dpll);
      Test.make ~name:"micro_dist_sample_1000" (Staged.stage micro_dist_sample);
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  let raw_results = Benchmark.all cfg instances tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let print_bench () =
  print_endline "\n==================================================";
  print_endline " Bechamel timings (monotonic clock, ns per run)";
  print_endline "==================================================";
  let results = benchmark () in
  let clock_results = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let estimate =
        match Analyze.OLS.estimates ols with
        | Some (est :: _) -> Printf.sprintf "%.0f" est
        | _ -> "-"
      in
      rows := [ name; estimate ] :: !rows)
    clock_results;
  let rows = List.sort compare !rows in
  Table.print
    (Table.make ~title:"bechamel (ns/run)" ~columns:[ "benchmark"; "time (ns)" ]
       rows);
  rows

(* The fault-layer timings, exported for tracking across revisions. *)
let write_fault_json rows =
  (* Bechamel names are "goalcom/<kernel>"; keep the fault-layer ones. *)
  let base name =
    match String.rindex_opt name '/' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let has_prefix p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  let is_fault = function
    | [ name; _ ] -> has_prefix "e16" (base name) || has_prefix "fault_" (base name)
    | _ -> false
  in
  let entries =
    List.filter_map
      (function
        | [ name; est ] when is_fault [ name; est ] ->
            let ns =
              match float_of_string_opt est with
              | Some f -> Printf.sprintf "%.1f" f
              | None -> "null"
            in
            Some (Printf.sprintf "    {\"name\": %S, \"ns_per_run\": %s}" name ns)
        | _ -> None)
      rows
  in
  let oc = open_out "BENCH_faults.json" in
  Printf.fprintf oc
    "{\n  \"seed\": %d,\n  \"unit\": \"ns/run\",\n  \"results\": [\n%s\n  ]\n}\n"
    seed
    (String.concat ",\n" entries);
  close_out oc;
  Printf.printf "\nwrote BENCH_faults.json (%d entries)\n" (List.length entries)

(* Tracing overhead on the compact control kernel.

   The tentpole claim of lib/obs is that the no-sink path is free: every
   emission site is a load-and-branch, no event is allocated.  A binary
   cannot contain both the instrumented and the pre-instrumentation
   engine, so the baseline is a guard-free replica of Exec.run's loop
   (below) driving the exact same strategies; the replica is checked
   against Exec.run for bit-identical histories before timing.  On top
   of the no-sink point we time the attached-sink variants: Trace.null
   (pure dispatch cost), the Metrics aggregator, the binary ring
   buffer, and JSONL rendering into a Buffer. *)

let replica_run ~config ~goal ~user ~server rng =
  let user_rng = Rng.split rng in
  let server_rng = Rng.split rng in
  let world_rng = Rng.split rng in
  let user_inst = Strategy.Instance.create user in
  let server_inst = Strategy.Instance.create server in
  let world_inst =
    World.Instance.create (Goal.world ~choice:config.Exec.world_choice goal)
  in
  let initial_world_view = World.Instance.view world_inst in
  let rec loop round halted drain_left prev_acts rounds_rev =
    let (u2s, u2w), (s2u, s2w), (w2u, w2s) = prev_acts in
    if round > config.Exec.horizon || (halted && drain_left <= 0) then
      History.make ~initial_world_view (List.rev rounds_rev)
    else begin
      let user_act : Io.User.act =
        if halted then Io.User.halt_act
        else
          Strategy.Instance.step user_rng user_inst
            { Io.User.from_server = s2u; from_world = w2u; round }
      in
      let server_act : Io.Server.act =
        Strategy.Instance.step server_rng server_inst
          { Io.Server.from_user = u2s; from_world = w2s }
      in
      let world_act : Io.World.act =
        World.Instance.step world_rng world_inst
          { Io.World.from_user = u2w; from_server = s2w }
      in
      let halted' = halted || user_act.halt in
      let round_record =
        {
          History.Round.index = round;
          user_to_server = user_act.to_server;
          user_to_world = user_act.to_world;
          server_to_user = server_act.to_user;
          server_to_world = server_act.to_world;
          world_to_user = world_act.to_user;
          world_to_server = world_act.to_server;
          world_view = World.Instance.view world_inst;
          user_halted = halted';
        }
      in
      let drain_left' = if halted then drain_left - 1 else config.Exec.drain in
      loop (round + 1) halted' drain_left'
        ( (user_act.to_server, user_act.to_world),
          (server_act.to_user, server_act.to_world),
          (world_act.to_user, world_act.to_server) )
        (round_record :: rounds_rev)
    end
  in
  let silence2 = (Msg.Silence, Msg.Silence) in
  loop 1 false config.Exec.drain (silence2, silence2, silence2) []

(* The overhead kernel must spend long enough inside the round loop
   that per-round costs dominate run-to-run code-layout noise (several
   microseconds per run either way).  The E1 printing kernel used to
   qualify, but the incremental sensing/judging engine made it halt-
   bound (~59 rounds, ~20us/run) and the replica comparison degenerated
   into measuring loop-layout drift.  The compact control goal never
   halts, so every run executes the full 2000-round horizon. *)
let trace_kernel_setup () =
  let ctl_alphabet = 4 in
  let ctl_dialects = Dialect.enumerate_rotations ~size:ctl_alphabet in
  let goal = Control.goal ~alphabet:ctl_alphabet () in
  let server = Control.server ~alphabet:ctl_alphabet (Enum.get_exn ctl_dialects 2) in
  let user = Control.universal_user ~alphabet:ctl_alphabet ctl_dialects in
  let config = Exec.config ~horizon:2000 () in
  (config, goal, user, server)

let minimum l = List.fold_left min infinity l

let median l =
  let a = List.sort compare l in
  List.nth a (List.length a / 2)

(* Measure every sink variant paired against the untraced replica.
   [rounds] is the number of paired measurement rounds, [budget] the
   target wall-clock (seconds) per arm per round; `--check` shrinks
   both for a CI-sized smoke run.  Returns the baseline ms/run and
   [(variant, (median ratio, best baseline s/run, best variant s/run))]
   per sink variant. *)
let measure_trace_overhead ~rounds ~budget () =
  let config, goal, user, server = trace_kernel_setup () in
  (* Replica fidelity: same seed, same history, or the baseline is not
     measuring the same work. *)
  let fidelity =
    History.rounds (replica_run ~config ~goal ~user ~server (Rng.make seed))
    = History.rounds (Exec.run ~config ~goal ~user ~server (Rng.make seed))
  in
  if not fidelity then
    failwith "trace overhead: replica loop diverged from Exec.run";
  let buf = Buffer.create 65536 in
  let metrics = Goalcom_obs.Metrics.create () in
  (* Sized to hold a full 2000-round run (~18k events) without
     evicting, so the measured cost is encode+store, not wrap
     bookkeeping (which is cheaper: same store, no Buffer growth). *)
  let ring = Goalcom_obs.Ring.create ~capacity:32768 in
  let variants =
    [
      ( "untraced replica",
        fun k ->
          ignore (replica_run ~config ~goal ~user ~server (Rng.make (seed + k)))
      );
      ( "no sink",
        fun k ->
          ignore (Exec.run ~config ~goal ~user ~server (Rng.make (seed + k))) );
      ( "null sink",
        fun k ->
          ignore
            (Exec.run ~sink:Trace.null ~config ~goal ~user ~server
               (Rng.make (seed + k))) );
      ( "metrics sink",
        fun k ->
          ignore
            (Exec.run
               ~sink:(Goalcom_obs.Metrics.sink metrics)
               ~config ~goal ~user ~server
               (Rng.make (seed + k))) );
      ( "ring sink (binary)",
        fun k ->
          Goalcom_obs.Ring.clear ring;
          ignore
            (Exec.run
               ~sink:(Goalcom_obs.Ring.domain_sink ring)
               ~config ~goal ~user ~server
               (Rng.make (seed + k))) );
      ( "jsonl sink (buffer)",
        fun k ->
          Buffer.clear buf;
          ignore
            (Exec.run
               ~sink:(Goalcom_obs.Jsonl.buffer_sink buf)
               ~config ~goal ~user ~server
               (Rng.make (seed + k))) );
    ]
  in
  (* Each variant is measured PAIRED against the baseline at single-run
     granularity: baseline and variant alternate run by run (with the
     order itself alternating, so neither arm always inherits the
     other's cache state), each round yields one variant/baseline ratio
     from sums taken microseconds apart — frequency scaling, thermal
     drift and scheduler noise hit both arms equally and cancel in the
     ratio.  The reported overhead is the median ratio over rounds. *)
  let baseline = snd (List.hd variants) in
  List.iter (fun (_, f) -> for k = 0 to 4 do f k done) variants;
  let calibrate f =
    let t0 = Unix.gettimeofday () in
    for k = 0 to 9 do
      f k
    done;
    (Unix.gettimeofday () -. t0) /. 10.
  in
  let per_run = calibrate baseline in
  let n = max 10 (int_of_float (budget /. max 1e-6 per_run)) in
  let measure_paired f =
    let ratios = ref [] in
    let best_base = ref infinity and best_var = ref infinity in
    for _ = 1 to rounds do
      (* Settle the heap so one arm's garbage is not charged to the
         other arm's runs. *)
      Gc.full_major ();
      let tb = ref 0. and tv = ref 0. in
      for k = 1 to n do
        if k land 1 = 0 then begin
          let t0 = Unix.gettimeofday () in
          baseline k;
          let t1 = Unix.gettimeofday () in
          f k;
          let t2 = Unix.gettimeofday () in
          tb := !tb +. (t1 -. t0);
          tv := !tv +. (t2 -. t1)
        end
        else begin
          let t0 = Unix.gettimeofday () in
          f k;
          let t1 = Unix.gettimeofday () in
          baseline k;
          let t2 = Unix.gettimeofday () in
          tv := !tv +. (t1 -. t0);
          tb := !tb +. (t2 -. t1)
        end
      done;
      ratios := (!tv /. !tb) :: !ratios;
      best_base := min !best_base (!tb /. float_of_int n);
      best_var := min !best_var (!tv /. float_of_int n)
    done;
    (median !ratios, !best_base, !best_var)
  in
  let measured =
    List.map (fun (name, f) -> (name, measure_paired f)) (List.tl variants)
  in
  let base_ms =
    1e3 *. minimum (List.map (fun (_, (_, b, _)) -> b) measured)
  in
  (n, base_ms, measured)

let pct r = 100. *. (r -. 1.)

(* The measurement flattened to the gate's metric vocabulary — the same
   names Bench_gate.metrics_of_json extracts from BENCH_trace.json, so
   a fresh in-memory run compares directly against the committed file. *)
let trace_metrics ~base_ms ~nosink_pct measured =
  let open Goalcom_obs.Bench_gate in
  { name = "no_sink_overhead_pct"; value = nosink_pct }
  :: { name = "untraced replica/ms_per_run"; value = base_ms }
  :: List.concat_map
       (fun (name, (ratio, _, v)) ->
         [
           { name = name ^ "/ms_per_run"; value = v *. 1e3 };
           { name = name ^ "/overhead_pct"; value = pct ratio };
         ])
       measured

(* Hard acceptance thresholds for the always-on capture path, phrased
   as a Bench_gate baseline with zero tolerance (the sense_gates
   pattern): a fresh value above the threshold fails the gate no matter
   what the committed file says.  The ring bound is the PR-8 acceptance
   bar for leaving capture enabled in production; the null-sink bound
   pins the fixed cost of merely having a sink installed; the no-sink
   bound pins the disabled path.  Measured (release profile, -inline
   200): ring ~41%, null ~13%, no sink ~1.5% — the slack above each is
   headroom for host noise, not an invitation. *)
let trace_gates =
  let open Goalcom_obs.Bench_gate in
  [
    { name = "ring sink (binary)/overhead_pct"; value = 50. };
    { name = "null sink/overhead_pct"; value = 22. };
    { name = "no_sink_overhead_pct"; value = 5. };
  ]

let print_trace_overhead () =
  print_endline "\n==================================================";
  print_endline " Tracing overhead (compact control kernel)";
  print_endline "==================================================";
  let rounds = 15 in
  let events_per_run =
    let config, goal, user, server = trace_kernel_setup () in
    let count = ref 0 in
    ignore
      (Exec.run
         ~sink:(fun _ -> incr count)
         ~config ~goal ~user ~server (Rng.make seed));
    !count
  in
  Printf.printf "kernel emits %d events per run\n%!" events_per_run;
  let n, base_ms, measured = measure_trace_overhead ~rounds ~budget:0.05 () in
  let rows =
    ("untraced replica", [ Printf.sprintf "%.3f" base_ms; "baseline" ])
    :: List.map
         (fun (name, (ratio, _, v)) ->
           ( name,
             [
               Printf.sprintf "%.3f" (v *. 1e3);
               Printf.sprintf "%+.2f%%" (pct ratio);
             ] ))
         measured
  in
  Table.print
    (Table.make
       ~title:
         (Printf.sprintf
            "tracing overhead, control kernel (median of %d rounds x %d paired runs)"
            rounds n)
       ~columns:[ "variant"; "ms/run"; "vs baseline" ]
       (List.map (fun (name, cells) -> name :: cells) rows));
  let nosink_pct =
    match measured with (_, (r, _, _)) :: _ -> pct r | [] -> 0.
  in
  Printf.printf "\nno-sink tracing overhead: %+.2f%% (acceptance: < 2%%)\n"
    nosink_pct;
  let oc = open_out "BENCH_trace.json" in
  Printf.fprintf oc
    "{\n\
    \  \"seed\": %d,\n\
    \  \"kernel\": \"control_compact_2k\",\n\
    \  \"rounds\": %d,\n\
    \  \"paired_runs_per_round\": %d,\n\
    \  \"unit\": \"ms/run\",\n\
    \  \"no_sink_overhead_pct\": %.3f,\n\
    \  \"results\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    seed rounds n nosink_pct
    (String.concat ",\n"
       (Printf.sprintf
          "    {\"name\": \"untraced replica\", \"ms_per_run\": %.4f}"
          base_ms
       :: List.map
            (fun (name, (ratio, _, v)) ->
              Printf.sprintf
                "    {\"name\": %S, \"ms_per_run\": %.4f, \
                 \"overhead_pct\": %.3f}"
                name (v *. 1e3) (pct ratio))
            measured));
  close_out oc;
  Printf.printf "wrote BENCH_trace.json (%d entries)\n" (1 + List.length measured)

(* Part 4: parallel scaling & determinism -> BENCH_par.json.

   The E17 workloads re-measured at fixed job counts.  Two kinds of
   numbers come out:
   - determinism: every jobs>1 digest must equal the jobs=1 digest.
     This is exported as par_mismatch_pct (0 or 100) and gated with
     zero tolerance — a single mismatch fails `--check`.
   - scaling: wall-clock per jobs count.  Absolute times do not
     transfer across hosts; but maze/remote is latency-bound (each
     round pays a simulated server round-trip), so its jobs-k/jobs-1
     ratio is host-independent and IS gated: jobs4_vs_jobs1_pct holding
     under ~51% is precisely the ">= 2x at four domains" acceptance
     bar.  The CPU-bound workloads' ratios track the host's core count,
     so they are recorded as informational timings only. *)

let par_jobs = [ 1; 2; 4 ]
let par_gated_workload = "maze/remote"

let measure_par ?(workloads = E17_scaling.workloads) () =
  List.map
    (fun (name, workload) ->
      let runs =
        List.map
          (fun jobs -> (jobs, E17_scaling.time (workload ~seed ~jobs)))
          par_jobs
      in
      (name, runs))
    workloads

(* "name@jobs" for every parallel run whose digest differs from the
   workload's jobs=1 digest; [] is the pass verdict. *)
let par_mismatches runs_by_workload =
  List.concat_map
    (fun (name, runs) ->
      match runs with
      | (_, (base : E17_scaling.measurement)) :: rest ->
          List.filter_map
            (fun (jobs, (m : E17_scaling.measurement)) ->
              if String.equal m.E17_scaling.digest base.E17_scaling.digest then
                None
              else Some (Printf.sprintf "%s@%d" name jobs))
            rest
      | [] -> [])
    runs_by_workload

let par_seconds runs jobs =
  match List.assoc_opt jobs runs with
  | Some (m : E17_scaling.measurement) -> m.E17_scaling.seconds
  | None -> nan

(* The measurement flattened to the gate's vocabulary — the same names
   Bench_gate.metrics_of_json extracts from BENCH_par.json. *)
let par_metrics runs_by_workload =
  let open Goalcom_obs.Bench_gate in
  let mismatch_pct =
    if par_mismatches runs_by_workload = [] then 0. else 100.
  in
  { name = "par_mismatch_pct"; value = mismatch_pct }
  :: List.concat_map
       (fun (name, runs) ->
         let t1 = par_seconds runs 1 in
         List.concat_map
           (fun jobs ->
             let t = par_seconds runs jobs in
             { name = Printf.sprintf "%s/jobs%d_ms" name jobs;
               value = t *. 1e3 }
             ::
             (if jobs > 1 && name = par_gated_workload then
                [ { name = Printf.sprintf "%s/jobs%d_vs_jobs1_pct" name jobs;
                    value = 100. *. t /. t1 } ]
              else []))
           par_jobs)
       runs_by_workload

(* Tolerances for the BENCH_par gate: determinism is exact, the
   latency-workload scaling ratio is loose (100% relative — failing
   only when the 4-domain run stops being ~2x faster than sequential),
   absolute ms keep the cross-host default. *)
let par_tol name =
  let module Gate = Goalcom_obs.Bench_gate in
  if name = "par_mismatch_pct" then 0.
  else if Filename.check_suffix name "_vs_jobs1_pct" then 100.
  else Gate.default_tol_pct name

let par_slack name =
  let module Gate = Goalcom_obs.Bench_gate in
  if name = "par_mismatch_pct" then 0. else Gate.default_slack name

let print_par () =
  print_endline "\n==================================================";
  print_endline " Parallel scaling & determinism (E17 workloads)";
  print_endline "==================================================";
  let runs_by_workload = measure_par () in
  let mismatches = par_mismatches runs_by_workload in
  let rows =
    List.concat_map
      (fun (name, runs) ->
        let t1 = par_seconds runs 1 in
        List.map
          (fun (jobs, (m : E17_scaling.measurement)) ->
            [
              name;
              string_of_int jobs;
              Printf.sprintf "%.1f" (m.E17_scaling.seconds *. 1e3);
              Printf.sprintf "%.2fx" (t1 /. m.E17_scaling.seconds);
              (if List.mem (Printf.sprintf "%s@%d" name jobs) mismatches then
                 "NO"
               else "yes");
            ])
          runs)
      runs_by_workload
  in
  Table.print
    (Table.make ~title:"parallel scaling (wall clock)"
       ~columns:[ "workload"; "jobs"; "wall ms"; "speedup"; "= jobs 1" ]
       rows);
  let speedup_x4 =
    match List.assoc_opt par_gated_workload runs_by_workload with
    | Some runs -> par_seconds runs 1 /. par_seconds runs 4
    | None -> nan
  in
  Printf.printf
    "\n%s speedup at 4 domains: %.2fx (acceptance: >= 2x); mismatches: %s\n"
    par_gated_workload speedup_x4
    (if mismatches = [] then "none" else String.concat ", " mismatches);
  let entry (name, runs) =
    let t1 = par_seconds runs 1 in
    let ms jobs = 1e3 *. par_seconds runs jobs in
    let ratios =
      if name = par_gated_workload then
        Printf.sprintf ", \"jobs2_vs_jobs1_pct\": %.1f, \
                        \"jobs4_vs_jobs1_pct\": %.1f"
          (100. *. par_seconds runs 2 /. t1)
          (100. *. par_seconds runs 4 /. t1)
      else ""
    in
    Printf.sprintf
      "    {\"name\": %S, \"jobs1_ms\": %.1f, \"jobs2_ms\": %.1f, \
       \"jobs4_ms\": %.1f%s}"
      name (ms 1) (ms 2) (ms 4) ratios
  in
  let oc = open_out "BENCH_par.json" in
  Printf.fprintf oc
    "{\n\
    \  \"seed\": %d,\n\
    \  \"jobs\": [1, 2, 4],\n\
    \  \"unit\": \"ms\",\n\
    \  \"host_domains\": %d,\n\
    \  \"speedup_x4\": %.2f,\n\
    \  \"par_mismatch_pct\": %.1f,\n\
    \  \"results\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    seed
    (Domain.recommended_domain_count ())
    speedup_x4
    (if mismatches = [] then 0. else 100.)
    (String.concat ",\n" (List.map entry runs_by_workload));
  close_out oc;
  Printf.printf "wrote BENCH_par.json (%d workloads x %d job counts)\n"
    (List.length runs_by_workload)
    (List.length par_jobs)

(* Part 5: incremental judging & sensing kernels -> BENCH_sense.json.

   The incremental-evaluation refactor's claim is algorithmic — judging
   and sensing are a single O(n) pass instead of the legacy O(n^2)
   prefix re-evaluation — so the gated numbers are RATIOS, which
   transfer across hosts:
   - judge16k_incr_vs_legacy_pct: incremental [Referee.violations]
     as a percentage of the legacy prefix-predicate path
     ([Referee.violations_prefix] on a list-predicate referee) at
     horizon 16k.  Holding under 10% is the ">= 10x wall-clock win"
     acceptance bar.
   - *_scaling_16k_over_1k: wall clock at horizon 16k over horizon 1k
     for the incremental judge, incremental sensing and tolerant
     sensing kernels.  A linear pass gives ~16x; anything quadratic
     gives ~256x.  Gated at <= 25x.
   Absolute ms are recorded as informational timings with the loose
   cross-host tolerance. *)

let sense_horizons = [ 1_000; 4_000; 16_000 ]
let sense_bound = 10

(* The synthetic plant wanders inside [-bound, bound] and strays out on
   a sparse set of rounds, so the judge kernels have violations to
   collect and the sensors see both verdicts. *)
let sense_plant r =
  if r mod 97 = 0 then sense_bound + 1 + (r mod 5)
  else (r * 7 mod ((2 * sense_bound) + 1)) - sense_bound

let sense_history n =
  let round r =
    let plant = Msg.Int (sense_plant r) in
    {
      History.Round.index = r;
      user_to_server = Msg.Sym (r land 3);
      user_to_world = Msg.Silence;
      server_to_user = Msg.Int (r land 7);
      server_to_world = Msg.Silence;
      world_to_user = plant;
      world_to_server = Msg.Silence;
      world_view = plant;
      user_halted = false;
    }
  in
  History.make ~initial_world_view:(Msg.Int 0) (List.init n (fun i -> round (i + 1)))

let sense_in_range = function
  | Msg.Int p -> abs p <= sense_bound
  | _ -> false

(* Legacy constructor: a predicate over most-recent-first world views.
   [violations_prefix] re-evaluates it once per prefix — the
   pre-refactor cost model for compact judging. *)
let sense_referee_legacy =
  Referee.compact "plant-in-range/legacy" (function
    | v :: _ -> sense_in_range v
    | [] -> true)

let sense_referee_incr =
  Referee.compact_incremental "plant-in-range/incr"
    ~init:(fun _v0 -> ((), `Ok))
    ~step:(fun () v -> ((), if sense_in_range v then `Ok else `Violation))

let sense_sensor =
  Sensing.of_recent ~name:"plant-in-range/recent" ~window:16 (fun e ->
      sense_in_range e.View.from_world)

let sense_tolerant = Sensing.tolerant ~window:8 ~threshold:6 sense_sensor

let sense_kernels =
  [
    ( "judge-legacy",
      fun hist -> ignore (Referee.violations_prefix sense_referee_legacy hist) );
    ( "judge-incremental",
      fun hist -> ignore (Referee.violations sense_referee_incr hist) );
    ("sense-verdicts", fun hist -> ignore (Sensing.verdicts sense_sensor hist));
    (* negatives_after folds the tolerant state over the whole history
       without building the O(n) verdict list, so this times the
       per-round sensing cost itself — the thing the ring buffer made
       O(1) — not result-list construction. *)
    ( "tolerant-w8",
      fun hist -> ignore (Sensing.negatives_after sense_tolerant hist 0) );
  ]

(* [(kernel, [(horizon, best seconds per pass)])] — one warm pass, then
   the minimum over [repeats] timed samples per (kernel, horizon).

   Each sample times a BATCH of passes covering the same total round
   count at every horizon (so a 1k sample runs 16x more passes than a
   16k sample).  A single 1k pass is ~tens of microseconds — timer
   granularity — and a single 16k pass may or may not absorb a GC
   slice, which showed up as 2x run-to-run noise on the scaling ratio.
   Batching fixes both: samples are well above timer resolution, and GC
   work amortises in proportion to allocation — the same per round at
   either horizon — so it cancels out of the 16k/1k ratio instead of
   landing on whichever sample drew the collection. *)
let sense_batch_rounds = 4 * 16_000

let measure_sense ~repeats () =
  let hists = List.map (fun h -> (h, sense_history h)) sense_horizons in
  (* Both judge paths must agree, or the speedup compares different
     answers; checked once at the smallest horizon. *)
  let h0 = snd (List.hd hists) in
  if
    Referee.violations sense_referee_incr h0
    <> Referee.violations_prefix sense_referee_legacy h0
  then failwith "sense bench: judge kernels disagree";
  List.map
    (fun (name, kernel) ->
      ( name,
        List.map
          (fun (h, hist) ->
            (* The legacy judge is quadratic — one pass per sample is
               already ~500ms at 16k and far above timer noise. *)
            let passes =
              if name = "judge-legacy" then 1
              else max 1 (sense_batch_rounds / h)
            in
            kernel hist;
            let best = ref infinity in
            for _ = 1 to repeats do
              Gc.full_major ();
              let t0 = Unix.gettimeofday () in
              for _ = 1 to passes do
                kernel hist
              done;
              let dt = Unix.gettimeofday () -. t0 in
              best := min !best (dt /. float_of_int passes)
            done;
            (h, !best))
          hists ))
    sense_kernels

let sense_ms runs name h = 1e3 *. List.assoc h (List.assoc name runs)
let sense_scaling runs name = sense_ms runs name 16_000 /. sense_ms runs name 1_000

let sense_incr_vs_legacy_pct runs =
  100. *. sense_ms runs "judge-incremental" 16_000
  /. sense_ms runs "judge-legacy" 16_000

(* The measurement flattened to the gate's vocabulary — the same names
   Bench_gate.metrics_of_json extracts from BENCH_sense.json. *)
let sense_metrics runs =
  let open Goalcom_obs.Bench_gate in
  { name = "judge16k_incr_vs_legacy_pct"; value = sense_incr_vs_legacy_pct runs }
  :: { name = "judge_scaling_16k_over_1k";
       value = sense_scaling runs "judge-incremental" }
  :: { name = "sense_scaling_16k_over_1k";
       value = sense_scaling runs "sense-verdicts" }
  :: { name = "tolerant_scaling_16k_over_1k";
       value = sense_scaling runs "tolerant-w8" }
  :: List.concat_map
       (fun (name, times) ->
         List.map
           (fun (h, t) ->
             { name = Printf.sprintf "%s/h%dk_ms" name (h / 1000);
               value = t *. 1e3 })
           times)
       runs

(* Hard acceptance thresholds, phrased as a Bench_gate baseline with
   zero tolerance: a fresh value above the threshold is a regression
   regardless of what the committed file says.  [sense-verdicts] is
   informational only — its pass allocates the per-round verdict list,
   so at 16k it is memory-bound and its ratio tracks the host's cache
   hierarchy more than the algorithm. *)
let sense_gates =
  let open Goalcom_obs.Bench_gate in
  [
    { name = "judge16k_incr_vs_legacy_pct"; value = 10. };
    { name = "judge_scaling_16k_over_1k"; value = 25. };
    { name = "tolerant_scaling_16k_over_1k"; value = 25. };
  ]

let sense_comparisons ~baseline ~runs () =
  let module Gate = Goalcom_obs.Bench_gate in
  let fresh = sense_metrics runs in
  (* Committed-file comparison covers the absolute timings (loose
     cross-host tolerance); the ratios are gated against the hard
     thresholds instead, so filter them out of the baseline to avoid
     judging them twice. *)
  let ms_only =
    List.filter (fun (m : Gate.metric) -> Filename.check_suffix m.name "_ms")
      baseline
  in
  Gate.compare_metrics ~baseline:ms_only ~fresh ()
  @ Gate.compare_metrics
      ~tol_pct:(fun _ -> 0.)
      ~slack:(fun _ -> 0.)
      ~baseline:sense_gates ~fresh ()

let print_sense () =
  print_endline "\n==================================================";
  print_endline " Incremental judging & sensing kernels";
  print_endline "==================================================";
  let repeats = 5 in
  let runs = measure_sense ~repeats () in
  let rows =
    List.map
      (fun (name, _) ->
        name
        :: List.map
             (fun h -> Printf.sprintf "%.3f" (sense_ms runs name h))
             sense_horizons
        @ [ Printf.sprintf "%.1fx" (sense_scaling runs name) ])
      runs
  in
  Table.print
    (Table.make
       ~title:
         (Printf.sprintf
            "judge/sensing kernels, ms per full-history pass (best of %d)"
            repeats)
       ~columns:[ "kernel"; "1k ms"; "4k ms"; "16k ms"; "16k/1k" ]
       rows);
  let speedup =
    sense_ms runs "judge-legacy" 16_000 /. sense_ms runs "judge-incremental" 16_000
  in
  Printf.printf
    "\nincremental vs legacy prefix judge at 16k: %.0fx (acceptance: >= 10x)\n"
    speedup;
  Printf.printf
    "tolerant(w=8) scaling 16k/1k: %.1fx (acceptance: <= 25x; linear ~ 16x)\n"
    (sense_scaling runs "tolerant-w8");
  let oc = open_out "BENCH_sense.json" in
  Printf.fprintf oc
    "{\n\
    \  \"seed\": %d,\n\
    \  \"horizons\": [1000, 4000, 16000],\n\
    \  \"repeats\": %d,\n\
    \  \"unit\": \"ms\",\n\
    \  \"judge16k_speedup_x\": %.1f,\n\
    \  \"judge16k_incr_vs_legacy_pct\": %.4f,\n\
    \  \"judge_scaling_16k_over_1k\": %.2f,\n\
    \  \"sense_scaling_16k_over_1k\": %.2f,\n\
    \  \"tolerant_scaling_16k_over_1k\": %.2f,\n\
    \  \"results\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    seed repeats speedup
    (sense_incr_vs_legacy_pct runs)
    (sense_scaling runs "judge-incremental")
    (sense_scaling runs "sense-verdicts")
    (sense_scaling runs "tolerant-w8")
    (String.concat ",\n"
       (List.map
          (fun (name, _) ->
            Printf.sprintf
              "    {\"name\": %S, \"h1k_ms\": %.4f, \"h4k_ms\": %.4f, \
               \"h16k_ms\": %.4f}"
              name (sense_ms runs name 1_000) (sense_ms runs name 4_000)
              (sense_ms runs name 16_000))
          runs));
  close_out oc;
  Printf.printf "wrote BENCH_sense.json (%d kernels x %d horizons)\n"
    (List.length runs) (List.length sense_horizons)

(* Part 6: supervised session engine -> BENCH_session.json.

   The session engine's contract is behavioural before it is fast:
   under a fixed seed and chaos schedule, every count it reports —
   completions, sheds, restarts, breaker trips, rounds percentiles —
   is a deterministic function of the configuration, identical on
   every host and at every jobs count.  So the gate pins those counts
   with ZERO tolerance against the committed file, plus
   session_mismatch_pct (every jobs>1 digest vs the jobs=1 digest,
   exported as 0 or 100) exactly as Part 4 does for parallel trials.
   Wall clock per condition is recorded at each jobs count with the
   loose cross-host tolerance.

   Two conditions exercise the two failure planes over the full E18
   session mix:
   - storm: scheduled kills + crash storms + burst loss, everything
     admitted (effectively unbounded queue), the round budget acting
     as the wedge detector.  Stresses supervision: restarts, backoff,
     breakers.
   - overload: no chaos, tight queue.  Stresses admission: most of
     the population is shed at a full queue and the rest drain
     through the [max_live] slots.

   BENCH_SESSION_SESSIONS overrides the population for local
   iteration; `--check` re-runs at the same scale, so gate only
   against a file produced at the default. *)

module Session_engine = Goalcom_session.Engine

let session_sessions =
  match
    Option.bind (Sys.getenv_opt "BENCH_SESSION_SESSIONS") int_of_string_opt
  with
  | Some v when v > 0 -> v
  | _ -> 10_000

let session_jobs = [ 1; 4 ]

let session_conditions =
  [
    { E18_chaos_matrix.cname = "storm";
      chaos_spec = "kill@2,4%5=0;crash:25@1..800%3=1;burst:0.25@1..150%7=2";
      econfig =
        Session_engine.config ~quantum:32 ~max_live:256
          ~queue_capacity:1_000_000 ~round_budget:2_000 ~max_ticks:200_000 ()
    };
    { E18_chaos_matrix.cname = "overload";
      chaos_spec = "";
      econfig =
        Session_engine.config ~quantum:32 ~max_live:256 ~queue_capacity:2_048
          ~max_ticks:200_000 ()
    };
  ]

(* [(cname, [(jobs, (report, seconds, minor_words))])].  Minor-heap
   words are only meaningful at jobs 1 (the exact sequential path — at
   higher widths the counter misses what worker domains allocate), and
   there they are deterministic: the allocation gate reads the jobs=1
   figure. *)
let measure_session () =
  List.map
    (fun (c : E18_chaos_matrix.condition) ->
      ( c.E18_chaos_matrix.cname,
        List.map
          (fun jobs ->
            let t0 = Unix.gettimeofday () in
            let mw0 = Gc.minor_words () in
            let report =
              E18_chaos_matrix.run_condition ~jobs ~sessions:session_sessions
                ~seed c
            in
            let mw = Gc.minor_words () -. mw0 in
            (jobs, (report, Unix.gettimeofday () -. t0, mw)))
          session_jobs ))
    session_conditions

(* Conditions whose jobs>1 digest diverges from jobs=1; [] passes. *)
let session_mismatches runs =
  List.filter_map
    (fun (cname, by_jobs) ->
      match by_jobs with
      | (_, ((base : Session_engine.report), _, _)) :: rest ->
          if
            List.for_all
              (fun (_, ((r : Session_engine.report), _, _)) ->
                String.equal r.Session_engine.digest
                  base.Session_engine.digest)
              rest
          then None
          else Some cname
      | [] -> None)
    runs

(* The behavioural counts of one report.  [failed] rather than
   [completed] because the gate's judge is one-sided (a fresh value
   exceeding baseline is the regression): more failures must fail,
   more completions must not. *)
let session_counts (r : Session_engine.report) =
  let open Session_engine in
  [
    ("failed", float_of_int (session_sessions - r.completed));
    ("shed", float_of_int r.shed);
    ("restarts", float_of_int r.restarts);
    ("trips", float_of_int r.trips);
    ("gave_up", float_of_int r.gave_up);
    ("unfinished", float_of_int r.unfinished);
    ("total_rounds", float_of_int r.total_rounds);
    ("p50_rounds", r.p50_rounds);
    ("p99_rounds", r.p99_rounds);
    ("p999_rounds", r.p999_rounds);
  ]

(* Throughput of one measured run.  Recorded in BENCH_session.json and
   printed, but gated through its reciprocal [jobsN_ms] (the gate's
   judge is lower-is-better, and the two are the same number): it is
   deliberately absent from the fresh metric list so a faster host's
   higher throughput is never misread as a regression. *)
let sessions_per_sec t = float_of_int session_sessions /. t

(* Allocation per session-round, from the jobs=1 run. *)
let session_minor_words_per_round by_jobs =
  let (r : Session_engine.report), _, mw = List.assoc 1 by_jobs in
  if r.Session_engine.total_rounds = 0 then 0.
  else mw /. float_of_int r.Session_engine.total_rounds

(* Parallel speedup as a percentage: jobs=4 wall clock over jobs=1
   (< 100 means jobs 4 is faster).  The storm figure is hard-gated
   below 100 — the whole point of domain-sharded quanta. *)
let session_speedup_pct by_jobs =
  let _, t1, _ = List.assoc 1 by_jobs in
  let _, t4, _ = List.assoc 4 by_jobs in
  100. *. t4 /. t1

(* Flattened to the gate's vocabulary — the same names
   Bench_gate.metrics_of_json extracts from BENCH_session.json. *)
let session_metrics runs =
  let open Goalcom_obs.Bench_gate in
  let mismatch_pct = if session_mismatches runs = [] then 0. else 100. in
  { name = "session_mismatch_pct"; value = mismatch_pct }
  :: List.concat_map
       (fun (cname, by_jobs) ->
         let (r : Session_engine.report), _, _ = List.assoc 1 by_jobs in
         List.map
           (fun (field, v) ->
             { name = Printf.sprintf "%s/%s" cname field; value = v })
           (session_counts r)
         @ List.map
             (fun (jobs, (_, t, _)) ->
               { name = Printf.sprintf "%s/jobs%d_ms" cname jobs;
                 value = t *. 1e3 })
             by_jobs
         @ [
             { name = Printf.sprintf "%s/minor_words_per_round" cname;
               value = session_minor_words_per_round by_jobs };
             { name = Printf.sprintf "%s/jobs4_vs_jobs1_pct" cname;
               value = session_speedup_pct by_jobs };
           ])
       runs

(* The absolute ceiling the storm speedup is held to regardless of the
   committed baseline: jobs 4 must beat jobs 1 (judged with zero
   tolerance, like the trace gates). *)
let session_gates =
  [
    { Goalcom_obs.Bench_gate.name = "storm/jobs4_vs_jobs1_pct"; value = 100. };
  ]

(* Determinism makes every count exact, so only the wall-clock
   timings, the speedup ratio and the allocation figure carry
   tolerance: timings get the loose cross-host default, the ratio the
   _pct default (its absolute ceiling is the hard gate above), and
   minor-words — deterministic on a host, but sensitive to stdlib /
   compiler versions — a tight 15%. *)
let session_tol name =
  let module Gate = Goalcom_obs.Bench_gate in
  if name = "session_mismatch_pct" then 0.
  else if Filename.check_suffix name "_ms" then Gate.default_tol_pct name
  else if Filename.check_suffix name "jobs4_vs_jobs1_pct" then
    Gate.default_tol_pct name
  else if Filename.check_suffix name "minor_words_per_round" then 15.
  else 0.

let session_slack name =
  let module Gate = Goalcom_obs.Bench_gate in
  if Filename.check_suffix name "_ms" then Gate.default_slack name
  else if Filename.check_suffix name "jobs4_vs_jobs1_pct" then 10.
  else 0.

let print_session () =
  print_endline "\n==================================================";
  print_endline " Supervised session engine (chaos conditions)";
  print_endline "==================================================";
  let runs = measure_session () in
  let mismatches = session_mismatches runs in
  let rows =
    List.concat_map
      (fun (cname, by_jobs) ->
        List.map
          (fun (jobs, ((r : Session_engine.report), t, _)) ->
            let open Session_engine in
            [
              cname;
              string_of_int jobs;
              Printf.sprintf "%.0f" (t *. 1e3);
              Printf.sprintf "%.0f" (sessions_per_sec t);
              (if jobs = 1 then
                 Printf.sprintf "%.0f" (session_minor_words_per_round by_jobs)
               else "-");
              string_of_int r.completed;
              string_of_int r.shed;
              string_of_int r.restarts;
              string_of_int r.trips;
              string_of_int r.gave_up;
              Printf.sprintf "%.0f" r.p50_rounds;
              Printf.sprintf "%.0f" r.p99_rounds;
              Printf.sprintf "%.0f" r.p999_rounds;
              String.sub r.digest 0 12;
            ])
          by_jobs)
      runs
  in
  Table.print
    (Table.make
       ~title:
         (Printf.sprintf "session engine, %d sessions per condition"
            session_sessions)
       ~columns:
         [ "condition"; "jobs"; "wall ms"; "sess/s"; "mw/rd"; "done"; "shed";
           "restarts"; "trips"; "give-ups"; "p50 rds"; "p99 rds";
           "p999 rds"; "digest" ]
       rows);
  Printf.printf "\ndigest mismatches across jobs counts: %s\n"
    (if mismatches = [] then "none" else String.concat ", " mismatches);
  let num v =
    if Float.is_integer v then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.2f" v
  in
  let entry (cname, by_jobs) =
    let r, _, _ = List.assoc 1 by_jobs in
    let fields =
      List.map (fun (f, v) -> Printf.sprintf "\"%s\": %s" f (num v))
        (session_counts r)
      @ List.concat_map
          (fun (jobs, (_, t, _)) ->
            [
              Printf.sprintf "\"jobs%d_ms\": %.1f" jobs (t *. 1e3);
              Printf.sprintf "\"jobs%d_sessions_per_sec\": %.1f" jobs
                (sessions_per_sec t);
            ])
          by_jobs
      @ [
          Printf.sprintf "\"minor_words_per_round\": %.1f"
            (session_minor_words_per_round by_jobs);
          Printf.sprintf "\"jobs4_vs_jobs1_pct\": %.1f"
            (session_speedup_pct by_jobs);
        ]
    in
    Printf.sprintf "    {\"name\": %S, %s}" cname (String.concat ", " fields)
  in
  let oc = open_out "BENCH_session.json" in
  Printf.fprintf oc
    "{\n\
    \  \"seed\": %d,\n\
    \  \"sessions\": %d,\n\
    \  \"jobs\": [1, 4],\n\
    \  \"unit\": \"ms\",\n\
    \  \"session_mismatch_pct\": %.1f,\n\
    \  \"results\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    seed session_sessions
    (if mismatches = [] then 0. else 100.)
    (String.concat ",\n" (List.map entry runs));
  close_out oc;
  Printf.printf "wrote BENCH_session.json (%d conditions x %d job counts)\n"
    (List.length runs) (List.length session_jobs)

(* Part 7: strategy compilation & the decode+compile cache
   -> BENCH_compile.json.

   The compile layer's claim is a constant-factor one: lowering a
   decoded Mealy strategy to a flat table (lib/compile) makes the
   per-round step a single array load, and the Enum.cached memo makes
   the Levin schedule's revisits free — phase k re-decodes candidates
   0..k-1 in every later phase, so a ladder prefix touches few
   distinct indices many times.  As in Part 5, the gated numbers are
   RATIOS, which transfer across hosts:
   - compile_compiled_vs_uncompiled_pct: wall clock of the
     compiled+cached ladder walk as a percentage of the uncompiled
     walk (fresh decode + interpreted step per slot) over the same
     schedule prefix.  Gated <= 33.4% — the ">= 3x candidate
     steps/sec" acceptance bar.
   - compile_cache_miss_pct: LRU misses as a percentage of accesses
     over the prefix.  Deterministic (misses = distinct indices
     visited), gated <= 10%.
   Absolute ms and steps/sec are informational with the loose
   cross-host tolerance. *)

module Ctable = Goalcom_compile.Table
module Compiled = Goalcom_compile.Compiled

(* 8-state machines over the 6-symbol channel alphabet: 48 transition
   cells, so a decode (and the encode hiding in the default
   machine-user name) costs real work relative to a capped slot. *)
let compile_machines = Mealy.enumerate ~states:8 ~inputs:6 ~outputs:6
let compile_read = Machine_user.read_world_int ~cap:6
let compile_write = Machine_user.write_world_sym
let compile_slots = 512
let compile_budget_cap = 16

(* The first [compile_slots] Levin slots with budgets capped so the
   walk is decode-bound the way a real ladder's early phases are (an
   uncapped 512-slot prefix reaches budgets of 2^31). *)
let compile_schedule () =
  Seq.take compile_slots
    (Seq.map
       (fun (s : Levin.slot) -> { s with Levin.budget = min s.budget compile_budget_cap })
       (Levin.schedule ()))

let compile_obs r =
  { Io.User.from_server = Msg.Silence; from_world = Msg.Int (r land 7); round = r }

(* Walk the ladder prefix: per slot, resolve the candidate through the
   enumeration (the decode or cache-hit under test) and run it for the
   slot's budget.  Returns total candidate steps. *)
let compile_walk enum =
  let rng = Rng.make 42 in
  let card =
    match Enum.cardinality enum with Some c -> c | None -> max_int
  in
  let steps = ref 0 in
  Seq.iter
    (fun { Levin.index; budget } ->
      let user = Enum.get_exn enum (index mod card) in
      let inst = Strategy.Instance.create user in
      for r = 1 to budget do
        ignore (Strategy.Instance.step rng inst (compile_obs r));
        incr steps
      done)
    (compile_schedule ());
  !steps

let compile_uncompiled_enum () =
  Machine_user.user_class ~read:compile_read ~write:compile_write
    compile_machines

let compile_compiled_enum () =
  Compiled.cached_user_class ~capacity:Compiled.default_cache_capacity
    ~read:compile_read ~write:compile_write compile_machines

(* [(variant, (steps, best seconds per walk))], plus the cache counters
   of one cold compiled walk.  Each compiled sample starts a fresh
   cache — a run's ladder starts cold, and the hit rate is then a
   deterministic function of the schedule prefix. *)
let measure_compile ~repeats () =
  let time_best f =
    ignore (f ());
    let best = ref infinity and steps = ref 0 in
    for _ = 1 to repeats do
      Gc.full_major ();
      let t0 = Unix.gettimeofday () in
      steps := f ();
      let dt = Unix.gettimeofday () -. t0 in
      best := min !best dt
    done;
    (!steps, !best)
  in
  let uncompiled =
    let enum = compile_uncompiled_enum () in
    time_best (fun () -> compile_walk enum)
  in
  let compiled =
    time_best (fun () -> compile_walk (fst (compile_compiled_enum ())))
  in
  let enum, lru = compile_compiled_enum () in
  ignore (compile_walk enum);
  ( [ ("uncompiled", uncompiled); ("compiled", compiled) ],
    (Goalcom_automata.Lru.hits lru, Goalcom_automata.Lru.misses lru) )

(* The measurement flattened to the gate's vocabulary — the same names
   Bench_gate.metrics_of_json extracts from BENCH_compile.json. *)
let compile_metrics (runs, (hits, misses)) =
  let open Goalcom_obs.Bench_gate in
  let steps, un_s = List.assoc "uncompiled" runs in
  let _, co_s = List.assoc "compiled" runs in
  let accesses = max 1 (hits + misses) in
  [
    { name = "compile_compiled_vs_uncompiled_pct";
      value = 100. *. co_s /. un_s };
    { name = "compile_cache_miss_pct";
      value = 100. *. float_of_int misses /. float_of_int accesses };
    { name = "compile_speedup_x"; value = un_s /. co_s };
    { name = "uncompiled/ksteps_per_sec";
      value = float_of_int steps /. un_s /. 1e3 };
    { name = "compiled/ksteps_per_sec";
      value = float_of_int steps /. co_s /. 1e3 };
    { name = "uncompiled/walk_ms"; value = un_s *. 1e3 };
    { name = "compiled/walk_ms"; value = co_s *. 1e3 };
  ]

(* Hard acceptance thresholds, as in Part 5: fresh above the threshold
   is a regression regardless of the committed file.  [speedup_x] and
   the steps/sec rates are informational (they are the same
   measurements inverted; gating them too would judge one number
   thrice). *)
let compile_gates =
  let open Goalcom_obs.Bench_gate in
  [
    { name = "compile_compiled_vs_uncompiled_pct"; value = 33.4 };
    { name = "compile_cache_miss_pct"; value = 10. };
  ]

let compile_comparisons ~baseline ~measured () =
  let module Gate = Goalcom_obs.Bench_gate in
  let fresh = compile_metrics measured in
  let ms_only =
    List.filter (fun (m : Gate.metric) -> Filename.check_suffix m.name "_ms")
      baseline
  in
  Gate.compare_metrics ~baseline:ms_only ~fresh ()
  @ Gate.compare_metrics
      ~tol_pct:(fun _ -> 0.)
      ~slack:(fun _ -> 0.)
      ~baseline:compile_gates ~fresh ()

let print_compile () =
  print_endline "\n==================================================";
  print_endline " Strategy compilation & decode cache (Levin ladder)";
  print_endline "==================================================";
  let ((runs, (hits, misses)) as measured) = measure_compile ~repeats:5 () in
  let rows =
    List.map
      (fun (variant, (steps, t)) ->
        [
          variant;
          string_of_int compile_slots;
          string_of_int steps;
          Printf.sprintf "%.2f" (t *. 1e3);
          Printf.sprintf "%.0f" (float_of_int steps /. t /. 1e3);
        ])
      runs
  in
  Table.print
    (Table.make ~title:"compiled vs uncompiled ladder walk"
       ~columns:[ "variant"; "slots"; "steps"; "ms/walk"; "ksteps/s" ]
       rows);
  let metrics = compile_metrics measured in
  let get n =
    let open Goalcom_obs.Bench_gate in
    (List.find (fun m -> m.name = n) metrics).value
  in
  Printf.printf
    "speedup %.1fx (acceptance: >= 3x), cache %d hits / %d misses (%.1f%% \
     miss; acceptance: <= 10%%)\n"
    (get "compile_speedup_x") hits misses (get "compile_cache_miss_pct");
  let oc = open_out "BENCH_compile.json" in
  Printf.fprintf oc
    "{\n\
    \  \"seed\": 42,\n\
    \  \"slots\": %d,\n\
    \  \"budget_cap\": %d,\n\
    \  \"unit\": \"ms\",\n\
    \  \"compile_compiled_vs_uncompiled_pct\": %.4f,\n\
    \  \"compile_cache_miss_pct\": %.4f,\n\
    \  \"compile_speedup_x\": %.2f,\n\
    \  \"results\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    compile_slots compile_budget_cap
    (get "compile_compiled_vs_uncompiled_pct")
    (get "compile_cache_miss_pct")
    (get "compile_speedup_x")
    (String.concat ",\n"
       (List.map
          (fun variant ->
            Printf.sprintf
              "    {\"name\": %S, \"walk_ms\": %.4f, \"ksteps_per_sec\": %.1f}"
              variant
              (get (variant ^ "/walk_ms"))
              (get (variant ^ "/ksteps_per_sec")))
          [ "uncompiled"; "compiled" ]));
  close_out oc;
  Printf.printf "wrote BENCH_compile.json (%d metrics)\n" (List.length metrics)

(* Part 8: the network goal family -> BENCH_net.json.

   lib/net's claims are behavioural and deterministic, so the gate
   pins them exactly, exactly as Part 6 does for the session engine:

   - delivery rounds: how many rounds the informed and the universal
     user need to route each canned topology (single deterministic
     runs — exact counts, zero tolerance);
   - forwarding under faults: delivery failures and mean rounds of the
     stop-and-wait ARQ over clean / lossy+duplicating links within the
     E19 round budget (fixed trials and seed — exact, zero tolerance);
   - contention: the shared-medium multiple-access populations at 2/4/8
     users — slots to drain, collisions, idles, incompletions (exact),
     plus net_mismatch_pct comparing every jobs>1 engine digest against
     jobs=1 (0 or 100, zero tolerance: the group-arbiter determinism
     claim).

   Wall clock per users x jobs cell is recorded with the loose
   cross-host tolerance.  Counts are one-sided lower-is-better, which
   is why the file records failures/incomplete rather than
   successes/completed. *)

module Net = Goalcom_net

let net_alphabet = E19_net_matrix.alphabet
let net_payload_alphabet = 4
let net_dialects = Dialect.enumerate_rotations ~size:net_alphabet
let net_dialect i = Enum.get_exn net_dialects (i mod net_alphabet)
let net_forward_trials = 40
let net_forward_budget = 400
let net_mac_users = [ 2; 4; 8 ]
let net_mac_jobs = [ 1; 2; 4 ]

(* Failed deliveries encode as a sentinel that exceeds any real round
   count, so a regression to non-delivery always trips the (one-sided,
   lower-is-better) zero-tolerance rounds gate. *)
let net_undelivered = 1_000_000

let measure_net_topo () =
  List.map
    (fun (name, scenario) ->
      let goal = Net.Topo.goal ~scenarios:[ scenario ] ~alphabet:net_alphabet () in
      let server = Net.Topo.server ~alphabet:net_alphabet (net_dialect 3) in
      let rounds ~horizon user =
        let outcome, history =
          Exec.run_outcome
            ~config:(Exec.config ~horizon ())
            ~goal ~user ~server (Rng.make seed)
        in
        if outcome.Outcome.achieved then History.length history
        else net_undelivered
      in
      ( name,
        rounds ~horizon:net_forward_budget
          (Net.Topo.informed_user ~alphabet:net_alphabet ~scenario
             (net_dialect 3)),
        rounds ~horizon:8_000
          (Net.Topo.universal_user ~alphabet:net_alphabet ~scenario
             net_dialects) ))
    (E19_net_matrix.topo_cases ())

let net_forward_conditions =
  [ ("clean", ""); ("loss15dup", "loss:0.15+dup"); ("loss35dup", "loss:0.35+dup") ]

(* [(condition, failures, mean_rounds)] over the fixed trial count. *)
let measure_net_forward () =
  let scenario =
    Net.Forward.scenario ~payload_alphabet:net_payload_alphabet [ 2; 0; 3; 1 ]
  in
  let goal = Net.Forward.goal ~scenarios:[ scenario ] ~alphabet:net_alphabet () in
  let user = Net.Forward.informed_user ~alphabet:net_alphabet (net_dialect 0) in
  List.map
    (fun (name, spec) ->
      let fault =
        match Goalcom_faults.Fault.stack_of_string ~alphabet:net_alphabet spec with
        | Ok f -> f
        | Error e -> invalid_arg ("bench net: " ^ e)
      in
      let server =
        Goalcom_faults.Fault.apply fault
          (Net.Forward.server ~alphabet:net_alphabet
             ~payload_alphabet:net_payload_alphabet (net_dialect 0))
      in
      let r =
        Trial.run
          ~config:(Exec.config ~horizon:net_forward_budget ())
          ~trials:net_forward_trials ~seed ~goal ~user ~server ()
      in
      ( name,
        net_forward_trials - r.Trial.successes,
        if Float.is_nan r.Trial.mean_rounds then float_of_int net_undelivered
        else r.Trial.mean_rounds ))
    net_forward_conditions

(* [(users, [(jobs, (mac_run, seconds))])] *)
let measure_net_mac () =
  List.map
    (fun users ->
      ( users,
        List.map
          (fun jobs ->
            let t0 = Unix.gettimeofday () in
            let r = E19_net_matrix.run_mac ~jobs ~users ~seed () in
            (jobs, (r, Unix.gettimeofday () -. t0)))
          net_mac_jobs ))
    net_mac_users

let measure_net () = (measure_net_topo (), measure_net_forward (), measure_net_mac ())

(* Populations whose jobs>1 digest diverges from jobs=1; [] passes. *)
let net_mismatches mac =
  List.filter_map
    (fun (users, by_jobs) ->
      match by_jobs with
      | (_, ((base : E19_net_matrix.mac_run), _)) :: rest ->
          let digest (r : E19_net_matrix.mac_run) =
            r.E19_net_matrix.report.Session_engine.digest
          in
          if
            List.for_all
              (fun (_, (r, _)) -> String.equal (digest r) (digest base))
              rest
          then None
          else Some (Printf.sprintf "%d-users" users)
      | [] -> None)
    mac

(* Flattened to the gate's vocabulary — the same names
   Bench_gate.metrics_of_json extracts from BENCH_net.json. *)
let net_metrics (topo, fwd, mac) =
  let open Goalcom_obs.Bench_gate in
  let mismatch_pct = if net_mismatches mac = [] then 0. else 100. in
  { name = "net_mismatch_pct"; value = mismatch_pct }
  :: (List.concat_map
        (fun (name, informed, universal) ->
          [
            { name = Printf.sprintf "topo_%s/informed_rounds" name;
              value = float_of_int informed };
            { name = Printf.sprintf "topo_%s/universal_rounds" name;
              value = float_of_int universal };
          ])
        topo
     @ List.concat_map
         (fun (name, failures, mean_rounds) ->
           [
             { name = Printf.sprintf "fwd_%s/failures" name;
               value = float_of_int failures };
             { name = Printf.sprintf "fwd_%s/mean_rounds" name;
               value = mean_rounds };
           ])
         fwd
     @ List.concat_map
         (fun (users, by_jobs) ->
           let (r1 : E19_net_matrix.mac_run), _ = List.assoc 1 by_jobs in
           let open E19_net_matrix in
           [
             { name = Printf.sprintf "mac%d/slots" users;
               value = float_of_int r1.slots };
             { name = Printf.sprintf "mac%d/collisions" users;
               value = float_of_int r1.collisions };
             { name = Printf.sprintf "mac%d/idles" users;
               value = float_of_int r1.idles };
             { name = Printf.sprintf "mac%d/incomplete" users;
               value =
                 float_of_int (users - r1.report.Session_engine.completed) };
           ]
           @ List.map
               (fun (jobs, (_, t)) ->
                 { name = Printf.sprintf "mac%d/jobs%d_ms" users jobs;
                   value = t *. 1e3 })
               by_jobs)
         mac)

(* Determinism makes every count exact, so only the wall-clock timings
   get the cross-host default tolerance; mean_rounds gets absolute
   slack covering its %.2f serialisation in the committed file. *)
let net_tol name =
  let module Gate = Goalcom_obs.Bench_gate in
  if Filename.check_suffix name "_ms" then Gate.default_tol_pct name else 0.

let net_slack name =
  let module Gate = Goalcom_obs.Bench_gate in
  if Filename.check_suffix name "_ms" then Gate.default_slack name
  else if Filename.check_suffix name "mean_rounds" then 0.01
  else 0.

let print_net () =
  print_endline "\n==================================================";
  print_endline " Network goal family (lib/net)";
  print_endline "==================================================";
  let topo, fwd, mac = measure_net () in
  let mismatches = net_mismatches mac in
  Table.print
    (Table.make ~title:"topology routing: rounds to deliver (dialect-3 switch)"
       ~columns:[ "case"; "informed"; "universal" ]
       (List.map
          (fun (n, i, u) -> [ n; string_of_int i; string_of_int u ])
          topo));
  Table.print
    (Table.make
       ~title:
         (Printf.sprintf "ARQ forwarding: %d trials, %d-round budget"
            net_forward_trials net_forward_budget)
       ~columns:[ "condition"; "failures"; "mean rounds" ]
       (List.map
          (fun (n, f, m) -> [ n; string_of_int f; Printf.sprintf "%.0f" m ])
          fwd));
  Table.print
    (Table.make ~title:"multiple access: one shared medium per population"
       ~columns:
         [ "users"; "jobs"; "wall ms"; "slots"; "delivered"; "collisions";
           "idles"; "done"; "digest" ]
       (List.concat_map
          (fun (users, by_jobs) ->
            List.map
              (fun (jobs, ((r : E19_net_matrix.mac_run), t)) ->
                let open E19_net_matrix in
                [
                  string_of_int users;
                  string_of_int jobs;
                  Printf.sprintf "%.0f" (t *. 1e3);
                  string_of_int r.slots;
                  string_of_int r.successes;
                  string_of_int r.collisions;
                  string_of_int r.idles;
                  Printf.sprintf "%d/%d" r.report.Session_engine.completed
                    users;
                  String.sub r.report.Session_engine.digest 0 12;
                ])
              by_jobs)
          mac));
  Printf.printf "\ndigest mismatches across jobs counts: %s\n"
    (if mismatches = [] then "none" else String.concat ", " mismatches);
  let entries =
    List.map
      (fun (name, informed, universal) ->
        Printf.sprintf
          "    {\"name\": \"topo_%s\", \"informed_rounds\": %d, \
           \"universal_rounds\": %d}"
          name informed universal)
      topo
    @ List.map
        (fun (name, failures, mean) ->
          Printf.sprintf
            "    {\"name\": \"fwd_%s\", \"failures\": %d, \"mean_rounds\": \
             %.2f}"
            name failures mean)
        fwd
    @ List.map
        (fun (users, by_jobs) ->
          let (r1 : E19_net_matrix.mac_run), _ = List.assoc 1 by_jobs in
          let open E19_net_matrix in
          let timings =
            List.map
              (fun (jobs, (_, t)) ->
                Printf.sprintf "\"jobs%d_ms\": %.1f" jobs (t *. 1e3))
              by_jobs
          in
          Printf.sprintf
            "    {\"name\": \"mac%d\", \"slots\": %d, \"collisions\": %d, \
             \"idles\": %d, \"incomplete\": %d, %s}"
            users r1.slots r1.collisions r1.idles
            (users - r1.report.Session_engine.completed)
            (String.concat ", " timings))
        mac
  in
  let oc = open_out "BENCH_net.json" in
  Printf.fprintf oc
    "{\n\
    \  \"seed\": %d,\n\
    \  \"trials\": %d,\n\
    \  \"jobs\": [1, 2, 4],\n\
    \  \"unit\": \"ms\",\n\
    \  \"net_mismatch_pct\": %.1f,\n\
    \  \"results\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    seed net_forward_trials
    (if mismatches = [] then 0. else 100.)
    (String.concat ",\n" entries);
  close_out oc;
  Printf.printf
    "wrote BENCH_net.json (%d topologies, %d link conditions, %d populations \
     x %d job counts)\n"
    (List.length topo) (List.length fwd) (List.length mac)
    (List.length net_mac_jobs)

(* --check: the perf-regression gate.  Re-measure the tracing overhead
   and the gated parallel workload (CI-sized quick runs), compare
   against the committed BENCH_trace.json / BENCH_par.json with
   Bench_gate's per-metric tolerances, emit the machine-readable
   verdict to BENCH_check.json, and exit non-zero on any regression.
   BENCH_CHECK_ROUNDS / BENCH_CHECK_BUDGET shrink or grow the tracing
   measurement. *)
let check () =
  let module Gate = Goalcom_obs.Bench_gate in
  let baseline_path = "BENCH_trace.json" in
  let baseline =
    match Gate.load_file baseline_path with
    | Ok m -> m
    | Error e ->
        Printf.eprintf "bench --check: %s\n" e;
        exit 2
  in
  let env_int name default =
    match Option.bind (Sys.getenv_opt name) int_of_string_opt with
    | Some v when v > 0 -> v
    | _ -> default
  in
  let rounds = env_int "BENCH_CHECK_ROUNDS" 7 in
  let budget =
    match Option.bind (Sys.getenv_opt "BENCH_CHECK_BUDGET") float_of_string_opt with
    | Some v when v > 0. -> v
    | _ -> 0.02
  in
  Printf.printf "bench --check: re-measuring tracing overhead (%d rounds, %.3fs budget)...\n%!"
    rounds budget;
  let _, base_ms, measured = measure_trace_overhead ~rounds ~budget () in
  let nosink_pct =
    match measured with (_, (r, _, _)) :: _ -> pct r | [] -> 0.
  in
  let fresh = trace_metrics ~base_ms ~nosink_pct measured in
  let trace_comparisons =
    (* Hard-gated metrics are judged once, against their absolute
       thresholds; everything else drifts against the committed file
       with the loose cross-host tolerances. *)
    let gated (m : Gate.metric) =
      List.exists (fun (g : Gate.metric) -> g.name = m.name) trace_gates
    in
    Gate.compare_metrics
      ~baseline:(List.filter (fun m -> not (gated m)) baseline)
      ~fresh ()
    @ Gate.compare_metrics
        ~tol_pct:(fun _ -> 0.)
        ~slack:(fun _ -> 0.)
        ~baseline:trace_gates ~fresh ()
  in
  let par_comparisons =
    match Gate.load_file "BENCH_par.json" with
    | Error e ->
        Printf.eprintf "bench --check: %s\n" e;
        exit 2
    | Ok par_baseline ->
        Printf.printf
          "bench --check: re-measuring parallel scaling (%s, jobs %s)...\n%!"
          par_gated_workload
          (String.concat "/" (List.map string_of_int par_jobs));
        let runs =
          measure_par
            ~workloads:
              (List.filter
                 (fun (n, _) -> n = par_gated_workload)
                 E17_scaling.workloads)
            ()
        in
        Gate.compare_metrics ~tol_pct:par_tol ~slack:par_slack
          ~baseline:par_baseline ~fresh:(par_metrics runs) ()
  in
  let sense_cmp =
    match Gate.load_file "BENCH_sense.json" with
    | Error e ->
        Printf.eprintf "bench --check: %s\n" e;
        exit 2
    | Ok sense_baseline ->
        Printf.printf
          "bench --check: re-measuring judge/sensing kernels (horizons %s)...\n%!"
          (String.concat "/"
             (List.map (fun h -> string_of_int (h / 1000) ^ "k") sense_horizons));
        let runs = measure_sense ~repeats:4 () in
        sense_comparisons ~baseline:sense_baseline ~runs ()
  in
  let session_cmp =
    match Gate.load_file "BENCH_session.json" with
    | Error e ->
        Printf.eprintf "bench --check: %s\n" e;
        exit 2
    | Ok session_baseline ->
        Printf.printf
          "bench --check: re-running the session engine (%d sessions x %d \
           conditions, jobs %s)...\n\
           %!"
          session_sessions
          (List.length session_conditions)
          (String.concat "/" (List.map string_of_int session_jobs));
        let runs = measure_session () in
        let fresh = session_metrics runs in
        let gated (m : Gate.metric) =
          List.exists
            (fun (g : Gate.metric) -> g.name = m.name)
            session_gates
        in
        let hard =
          (* The engine clamps its pool width to the hardware, so on a
             single-thread host jobs 4 runs the jobs 1 path and the
             ratio is parity plus noise — the absolute ceiling is only
             judged where parallelism can actually show. *)
          if Goalcom_par.Pool.hardware_jobs () > 1 then
            Gate.compare_metrics
              ~tol_pct:(fun _ -> 0.)
              ~slack:(fun _ -> 0.)
              ~baseline:session_gates ~fresh ()
          else begin
            Printf.printf
              "bench --check: single hardware thread, jobs 4 clamps to \
               jobs 1 — skipping the storm speedup hard gate\n\
               %!";
            []
          end
        in
        Gate.compare_metrics ~tol_pct:session_tol ~slack:session_slack
          ~baseline:(List.filter (fun m -> not (gated m)) session_baseline)
          ~fresh ()
        @ hard
  in
  let compile_cmp =
    match Gate.load_file "BENCH_compile.json" with
    | Error e ->
        Printf.eprintf "bench --check: %s\n" e;
        exit 2
    | Ok compile_baseline ->
        Printf.printf
          "bench --check: re-measuring the compiled ladder walk (%d slots, \
           budget cap %d)...\n\
           %!"
          compile_slots compile_budget_cap;
        let measured = measure_compile ~repeats:3 () in
        compile_comparisons ~baseline:compile_baseline ~measured ()
  in
  let net_cmp =
    match Gate.load_file "BENCH_net.json" with
    | Error e ->
        Printf.eprintf "bench --check: %s\n" e;
        exit 2
    | Ok net_baseline ->
        Printf.printf
          "bench --check: re-measuring the network goal family (%d \
           topologies, %d link conditions, mac users %s at jobs %s)...\n\
           %!"
          (List.length (E19_net_matrix.topo_cases ()))
          (List.length net_forward_conditions)
          (String.concat "/" (List.map string_of_int net_mac_users))
          (String.concat "/" (List.map string_of_int net_mac_jobs));
        let measured = measure_net () in
        Gate.compare_metrics ~tol_pct:net_tol ~slack:net_slack
          ~baseline:net_baseline ~fresh:(net_metrics measured) ()
  in
  let comparisons =
    trace_comparisons @ par_comparisons @ sense_cmp @ session_cmp
    @ compile_cmp @ net_cmp
  in
  Table.print (Gate.table comparisons);
  let verdict = Gate.verdict_json comparisons in
  let oc = open_out "BENCH_check.json" in
  output_string oc (verdict ^ "\n");
  close_out oc;
  print_endline verdict;
  match Gate.regressions comparisons with
  | [] ->
      Printf.printf
        "bench --check: PASS (%d metrics vs %s + BENCH_par.json + \
         BENCH_sense.json + BENCH_session.json + BENCH_compile.json + \
         BENCH_net.json)\n"
        (List.length comparisons) baseline_path
  | regs ->
      Printf.printf "bench --check: FAIL (%d of %d metrics regressed)\n"
        (List.length regs) (List.length comparisons);
      exit 1

let () =
  (* `--check` runs the regression gate and exits; otherwise
     BENCH_ONLY=trace skips the (slow) experiment tables and bechamel
     kernels while iterating on the tracing-overhead measurement. *)
  if Array.exists (( = ) "--check") Sys.argv then check ()
  else
    match Sys.getenv_opt "BENCH_ONLY" with
    | Some "trace" -> print_trace_overhead ()
    | Some "par" -> print_par ()
    | Some "sense" -> print_sense ()
    | Some "session" -> print_session ()
    | Some "compile" -> print_compile ()
    | Some "net" -> print_net ()
    | _ ->
        print_experiments ();
        write_fault_json (print_bench ());
        print_trace_overhead ();
        print_par ();
        print_sense ();
        print_session ();
        print_compile ();
        print_net ()
