open Goalcom_prelude

type config = { horizon : int; drain : int; world_choice : int }

let config ?(horizon = 1000) ?(drain = 2) ?(world_choice = 0) () =
  if horizon <= 0 then invalid_arg "Exec.config: horizon must be positive";
  if drain < 0 then invalid_arg "Exec.config: drain must be non-negative";
  { horizon; drain; world_choice }

let default_config = config ()

module Stepper = struct
  (* One run, unrolled: the recursive loop of [run] turned into a
     mutable state machine so a scheduler can interleave thousands of
     live runs round by round.  Invariants mirror the loop exactly —
     [round] is the next round to execute, [prev_acts] the messages in
     flight (emitted last round, delivered this round) — so stepping to
     completion is bit-identical to the recursive loop, events and
     randomness included. *)

  type acts = (Msg.t * Msg.t) * (Msg.t * Msg.t) * (Msg.t * Msg.t)

  type t = {
    cfg : config;
    user_rng : Rng.t;
    server_rng : Rng.t;
    world_rng : Rng.t;
    user_inst : (Io.User.obs, Io.User.act) Strategy.Instance.t;
    server_inst : (Io.Server.obs, Io.Server.act) Strategy.Instance.t;
    world_inst : World.Instance.t;
    initial_world_view : Msg.t;
    mutable round : int;
    mutable halted : bool;
    mutable drain_left : int;
    mutable prev_acts : acts;
    builder : History.Builder.t;
    mutable result : History.t option;
  }

  let create ?(config = default_config) ~goal ~user ~server rng =
    (* Run_start precedes the RNG splits, exactly as in the monolithic
       loop, so a traced stepper and a traced [run] agree byte for
       byte. *)
    let h = Trace.handle () in
    if Trace.handle_enabled h then
      Trace.handle_emit h
        (Trace.Run_start
           {
             goal = Goal.name goal;
             user = Strategy.name user;
             server = Strategy.name server;
             horizon = config.horizon;
             drain = config.drain;
             world_choice = config.world_choice;
           });
    let user_rng = Rng.split rng in
    let server_rng = Rng.split rng in
    let world_rng = Rng.split rng in
    let user_inst = Strategy.Instance.create user in
    let server_inst = Strategy.Instance.create server in
    let world_inst =
      World.Instance.create (Goal.world ~choice:config.world_choice goal)
    in
    let silence2 = (Msg.Silence, Msg.Silence) in
    {
      cfg = config;
      user_rng;
      server_rng;
      world_rng;
      user_inst;
      server_inst;
      world_inst;
      initial_world_view = World.Instance.view world_inst;
      builder =
        History.Builder.create
          ~initial_world_view:(World.Instance.view world_inst);
      round = 1;
      halted = false;
      drain_left = config.drain;
      prev_acts = (silence2, silence2, silence2);
      result = None;
    }

  let finished t = Option.is_some t.result
  let round t = t.round
  let halted t = t.halted
  let rounds_executed t = t.round - 1

  (* The termination condition already holds: the next [step] will not
     execute a round, only finalize.  Lets a scheduler finish a run
     inside the current quantum instead of paying a whole extra tick
     for the finalizing step. *)
  let finishing t =
    match t.result with
    | Some _ -> true
    | None -> t.round > t.cfg.horizon || (t.halted && t.drain_left <= 0)

  let[@inline] emit_msg h round src dst msg =
    if not (Msg.is_silence msg) then
      Trace.handle_emit h (Trace.Emit { round; src; dst; msg })

  let finish t =
    let history = History.Builder.finish t.builder in
    let h = Trace.handle () in
    if Trace.handle_enabled h then
      Trace.handle_emit h
        (Trace.Run_end { rounds = History.length history; halted = t.halted });
    t.result <- Some history;
    history

  (* Tracing is re-resolved per step (not latched at creation like the
     closed loop used to): a stepper may be created on one domain and
     stepped on another, or stepped under a per-session buffering sink
     installed by the engine around each quantum.  Within a single
     [run] call the sink is stable, so the behaviour is unchanged. *)
  let step t =
    match t.result with
    | Some _ -> false
    | None ->
        if t.round > t.cfg.horizon || (t.halted && t.drain_left <= 0) then begin
          ignore (finish t);
          false
        end
        else begin
          (* One DLS access per step; everything below goes through the
             handle (the sink is stable within a step — nothing here
             installs or removes sinks). *)
          let h = Trace.handle () in
          let tracing = Trace.handle_enabled h in
          let round = t.round in
          let (u2s, u2w), (s2u, s2w), (w2u, w2s) = t.prev_acts in
          if tracing then begin
            Trace.handle_set_round h round;
            Trace.handle_emit h (Trace.Round_start { round })
          end;
          let user_act : Io.User.act =
            if t.halted then Io.User.halt_act
            else
              Strategy.Instance.step t.user_rng t.user_inst
                { Io.User.from_server = s2u; from_world = w2u; round }
          in
          let server_act : Io.Server.act =
            Strategy.Instance.step t.server_rng t.server_inst
              { Io.Server.from_user = u2s; from_world = w2s }
          in
          let world_act : Io.World.act =
            World.Instance.step t.world_rng t.world_inst
              { Io.World.from_user = u2w; from_server = s2w }
          in
          let halted' = t.halted || user_act.halt in
          if tracing then begin
            emit_msg h round Trace.User Trace.Server user_act.to_server;
            emit_msg h round Trace.User Trace.World user_act.to_world;
            emit_msg h round Trace.Server Trace.User server_act.to_user;
            emit_msg h round Trace.Server Trace.World server_act.to_world;
            emit_msg h round Trace.World Trace.User world_act.to_user;
            emit_msg h round Trace.World Trace.Server world_act.to_server;
            if halted' && not t.halted then
              Trace.handle_emit h (Trace.Halt { round })
          end;
          let round_record =
            {
              History.Round.index = round;
              user_to_server = user_act.to_server;
              user_to_world = user_act.to_world;
              server_to_user = server_act.to_user;
              server_to_world = server_act.to_world;
              world_to_user = world_act.to_user;
              world_to_server = world_act.to_server;
              world_view = World.Instance.view t.world_inst;
              user_halted = halted';
            }
          in
          t.drain_left <- (if t.halted then t.drain_left - 1 else t.cfg.drain);
          t.halted <- halted';
          t.round <- round + 1;
          t.prev_acts <-
            ( (user_act.to_server, user_act.to_world),
              (server_act.to_user, server_act.to_world),
              (world_act.to_user, world_act.to_server) );
          History.Builder.add t.builder round_record;
          true
        end

  let history t =
    match t.result with
    | Some h -> h
    | None ->
        invalid_arg "Exec.Stepper.history: run still live (step until false)"

  let run_to_end t =
    while step t do
      ()
    done;
    history t
end

let run ?sink ?(config = default_config) ~goal ~user ~server rng =
  let body () =
    Stepper.run_to_end (Stepper.create ~config ~goal ~user ~server rng)
  in
  match sink with None -> body () | Some s -> Trace.with_sink s body

let run_outcome ?sink ?config ?tail_window ~goal ~user ~server rng =
  let body () =
    let history = run ?config ~goal ~user ~server rng in
    let outcome = Outcome.judge ?tail_window goal history in
    if Trace.enabled () then
      List.iter
        (fun round -> Trace.emit (Trace.Violation { round }))
        outcome.Outcome.violation_rounds;
    (outcome, history)
  in
  match sink with None -> body () | Some s -> Trace.with_sink s body
