lib/core/universal.ml: Enum Goalcom_automata Io Levin Option Printf Sensing Seq Strategy View
