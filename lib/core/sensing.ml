open Goalcom_prelude

type verdict = Positive | Negative

(* A live sensing instance: per-round state plus the verdict on the
   prefix absorbed so far.  The state type is existential so sensors
   with different state shapes share one type; [last] is lazy so that
   spawning a sensor with effects in its empty-view verdict (e.g. an
   rng-drawing corruption wrapper) performs them only when the verdict
   is actually read. *)
type state =
  | State : {
      s : 's;
      last : verdict Lazy.t;
      step : 's -> View.event -> 's * verdict;
    }
      -> state

type t = {
  name : string;
  sense : View.t -> verdict;  (** whole-view verdict *)
  spawn : unit -> state;  (** fresh incremental instance *)
}

let start t = t.spawn ()

let observe st e =
  match st with
  | State { s; step; last = _ } ->
      let s, v = step s e in
      State { s; last = Lazy.from_val v; step }

let verdict (State { last; _ }) = Lazy.force last

(* Compatibility constructor: the incremental instance accumulates the
   view and calls the original [sense] once per observed event — the
   same per-round call pattern (and rng-draw sequence, for effectful
   sensors) the engine always had. *)
let make ~name sense =
  {
    name;
    sense;
    spawn =
      (fun () ->
        State
          {
            s = View.empty;
            last = lazy (sense View.empty);
            step =
              (fun view e ->
                let view = View.extend view e in
                (view, sense view));
          });
  }

let incremental ~name ~init ~step =
  let sense view =
    let s0, v0 = init () in
    let _, v =
      List.fold_left (fun (s, _) e -> step s e) (s0, v0) (View.events view)
    in
    v
  in
  {
    name;
    sense;
    spawn =
      (fun () ->
        let s, v = init () in
        State { s; last = Lazy.from_val v; step });
  }

(* Most goal sensors only inspect the latest event: O(1) per round and
   per whole-view call. *)
let of_latest ~name ~empty p =
  let empty_v = if empty then Positive else Negative in
  let judge e = if p e then Positive else Negative in
  {
    name;
    sense =
      (fun view ->
        match View.latest view with None -> empty_v | Some e -> judge e);
    spawn =
      (fun () ->
        State
          {
            s = ();
            last = Lazy.from_val empty_v;
            step = (fun () e -> ((), judge e));
          });
  }

(* Positive iff some event within the last [window] satisfies [p]:
   state is (events seen, index of the most recent hit). *)
let of_recent ~name ~window p =
  if window <= 0 then invalid_arg "Sensing.of_recent: window must be positive";
  let verdict_of seen last_hit =
    match last_hit with
    | Some h when h > seen - window -> Positive
    | _ -> Negative
  in
  {
    name;
    sense =
      (fun view ->
        if List.exists p (Listx.take window (View.events_rev view)) then
          Positive
        else Negative);
    spawn =
      (fun () ->
        State
          {
            s = (0, None);
            last = Lazy.from_val Negative;
            step =
              (fun (seen, last_hit) e ->
                let seen = seen + 1 in
                let last_hit = if p e then Some seen else last_hit in
                ((seen, last_hit), verdict_of seen last_hit));
          });
  }

let constant v =
  let name =
    match v with Positive -> "always-positive" | Negative -> "always-negative"
  in
  {
    name;
    sense = (fun _ -> v);
    spawn =
      (fun () ->
        State { s = (); last = Lazy.from_val v; step = (fun () _ -> ((), v)) });
  }

let of_predicate ~name p =
  make ~name (fun view -> if p view then Positive else Negative)

let verdicts t history =
  let _, acc =
    View.fold_events history
      ~init:(start t, [])
      ~f:(fun (st, acc) e ->
        let st = observe st e in
        (st, (e.View.round, verdict st) :: acc))
  in
  List.rev acc

let negatives_after t history round =
  let _, n =
    View.fold_events history ~init:(start t, 0) ~f:(fun (st, n) e ->
        let st = observe st e in
        let n =
          if e.View.round > round && verdict st = Negative then n + 1 else n
        in
        (st, n))
  in
  n

(* The verdict at round r is the raw verdict on the view as it stood at
   round r; the tolerant verdict looks at the raw verdicts over the last
   [window] rounds and only reports Negative when at least [threshold]
   of them are Negative.  This keeps compact safety for persistent
   failures (a failing execution eventually makes every recent raw
   verdict Negative, so tolerant negatives also recur forever) while a
   transient fault — one bad round inside a healthy stretch — no longer
   evicts the correct strategy.  Do NOT use this with finite-goal
   halting: making Negative harder makes Positive easier, which is the
   unsafe direction when positives trigger halting.

   The incremental instance keeps the last [window] raw verdicts in a
   ring buffer alongside a live instance of the base sensor, so each
   round costs one base observation plus O(1) ring maintenance; the
   whole-view [sense] closure keeps the historical re-sensing
   implementation (it is the only way to evaluate an arbitrary view in
   one shot, and the fault tests exercise it directly). *)
let tolerant ~window ~threshold t =
  if window <= 0 then invalid_arg "Sensing.tolerant: window must be positive";
  if threshold <= 0 || threshold > window then
    invalid_arg "Sensing.tolerant: threshold must be in 1..window";
  let name = Printf.sprintf "%s/tolerant(%d-of-%d)" t.name threshold window in
  let mask_event ~round ~negs =
    (* A raw negative masked by a healthy recent window is the
       interesting tolerant-sensing event: record it when tracing (every
       unmasked verdict is already visible to the universal user's own
       [Sense] emission). *)
    match Trace.current () with
    | None -> ()
    | Some sink ->
        sink
          (Trace.Sense
             {
               round;
               sensor = name ^ "/mask";
               positive = true;
               clock = negs;
               patience = threshold;
             })
  in
  let sense view =
    let depth = min window (View.length view) in
    if depth = 0 then Positive
    else begin
      let raw0 = t.sense view in
      let rec negs k acc =
        if k >= depth || acc >= threshold then acc
        else begin
          let v = t.sense (View.drop_latest k view) in
          negs (k + 1) (if v = Negative then acc + 1 else acc)
        end
      in
      let n = negs 1 (if raw0 = Negative then 1 else 0) in
      if n >= threshold then Negative
      else begin
        if raw0 = Negative then
          mask_event
            ~round:
              (match View.latest view with
              | Some e -> e.View.round
              | None -> 0)
            ~negs:n;
        Positive
      end
    end
  in
  let spawn () =
    (* Ring of the last [window] raw verdicts; [negs] counts the
       Negatives currently in the ring, so the masked/unmasked decision
       is O(1) regardless of how long the execution has run. *)
    let ring = Array.make window Positive in
    let inner = ref (start t) in
    let filled = ref 0 in
    let pos = ref 0 in
    let negs = ref 0 in
    let step () e =
      inner := observe !inner e;
      let raw0 = verdict !inner in
      if !filled = window then begin
        if ring.(!pos) = Negative then decr negs
      end
      else incr filled;
      ring.(!pos) <- raw0;
      if raw0 = Negative then incr negs;
      pos := (!pos + 1) mod window;
      if !negs >= threshold then ((), Negative)
      else begin
        if raw0 = Negative then mask_event ~round:e.View.round ~negs:!negs;
        ((), Positive)
      end
    in
    State { s = (); last = Lazy.from_val Positive; step }
  in
  { name; sense; spawn }

let corrupt_unsafe ~flip_to_positive rng t =
  make
    ~name:(Printf.sprintf "%s/unsafe(%.2f)" t.name flip_to_positive)
    (fun view ->
      match t.sense view with
      | Positive -> Positive
      | Negative ->
          if Rng.bernoulli rng flip_to_positive then Positive else Negative)

let corrupt_unviable t =
  let name = t.name ^ "/unviable" in
  {
    name;
    sense = (fun _ -> Negative);
    spawn =
      (fun () ->
        State
          {
            s = ();
            last = Lazy.from_val Negative;
            step = (fun () _ -> ((), Negative));
          });
  }

(* A user that runs [inner] but halts as soon as sensing turns positive.
   Sensing state is fed exactly the events {!View.of_history} would
   build: the event for round r pairs the round-r sends with the
   messages received when acting at round r (i.e. emitted at round r-1);
   sensing therefore sees the rounds completed so far.  One observation
   per round — the engine never re-steps a halted user, so the verdict
   of the live instance is always current. *)
let halt_on_positive sensing inner =
  let module I = Strategy.Instance in
  Strategy.make
    ~name:(Printf.sprintf "halt-on-%s(%s)" sensing.name (Strategy.name inner))
    ~init:(fun () -> (I.create inner, start sensing, None))
    ~step:(fun rng (inst, st, pending) (obs : Io.User.obs) ->
      let st =
        match pending with
        | None -> st
        | Some (prev_obs, (prev_act : Io.User.act)) ->
            observe st
              {
                View.round = prev_obs.Io.User.round;
                from_server = prev_obs.Io.User.from_server;
                from_world = prev_obs.Io.User.from_world;
                to_server = prev_act.to_server;
                to_world = prev_act.to_world;
                halted = false;
              }
      in
      match verdict st with
      | Positive -> ((inst, st, None), Io.User.halt_act)
      | Negative ->
          let act = { (I.step rng inst obs) with Io.User.halt = false } in
          ((inst, st, Some (obs, act)), act))

type report = {
  property : string;
  holds : bool;
  checked : int;
  counterexamples : string list;
}

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%s: %s (%d cases checked)%a@]" r.property
    (if r.holds then "HOLDS" else "VIOLATED")
    r.checked
    (fun ppf -> function
      | [] -> ()
      | exs ->
          List.iter (fun e -> Format.fprintf ppf "@,  counterexample: %s" e) exs)
    r.counterexamples

let max_counterexamples = 5

let build_report property checked counterexamples =
  {
    property;
    holds = counterexamples = [];
    checked;
    counterexamples = Listx.take max_counterexamples counterexamples;
  }

let tail_cutoff ?tail_window history =
  let rounds = History.length history in
  let window =
    match tail_window with Some w -> max 1 w | None -> max 1 (rounds / 5)
  in
  rounds - window

(* Each trial is paired with a different non-deterministic world of the
   goal, so the validators quantify (by sampling) over the world choice
   as well. *)
let config_for_trial ?config ~goal trial =
  let base = match config with Some c -> c | None -> Exec.config () in
  Exec.{ base with world_choice = trial mod Goal.num_worlds goal }

let check_safety_compact ?config ?tail_window ?(trials = 3) ~goal ~users
    ~servers t rng =
  let trials = max trials (Goal.num_worlds goal) in
  let checked = ref 0 in
  let counterexamples = ref [] in
  List.iter
    (fun user ->
      List.iter
        (fun server ->
          for trial = 1 to trials do
            incr checked;
            let trial_rng = Rng.split rng in
            let config = config_for_trial ?config ~goal trial in
            let outcome, history =
              Exec.run_outcome ~config ?tail_window ~goal ~user ~server
                trial_rng
            in
            if not outcome.Outcome.achieved then begin
              let cutoff = tail_cutoff ?tail_window history in
              let late_negatives = negatives_after t history cutoff in
              if late_negatives = 0 then
                counterexamples :=
                  Printf.sprintf
                    "user=%s server=%s trial=%d: goal failed but no negative \
                     indication after round %d"
                    (Strategy.name user) (Strategy.name server) trial cutoff
                  :: !counterexamples
            end
          done)
        servers)
    users;
  build_report
    (Printf.sprintf "compact safety of %s for %s" t.name (Goal.name goal))
    !checked (List.rev !counterexamples)

let check_viability_compact ?config ?tail_window ?(trials = 3) ~goal ~user_for
    ~servers t rng =
  let trials = max trials (Goal.num_worlds goal) in
  let checked = ref 0 in
  let counterexamples = ref [] in
  List.iter
    (fun server ->
      let user = user_for server in
      for trial = 1 to trials do
        incr checked;
        let trial_rng = Rng.split rng in
        let config = config_for_trial ?config ~goal trial in
        let outcome, history =
          Exec.run_outcome ~config ?tail_window ~goal ~user ~server trial_rng
        in
        let cutoff = tail_cutoff ?tail_window history in
        let late_negatives = negatives_after t history cutoff in
        if not outcome.Outcome.achieved then
          counterexamples :=
            Printf.sprintf "server=%s trial=%d: designated user %s failed the goal"
              (Strategy.name server) trial (Strategy.name user)
            :: !counterexamples
        else if late_negatives > 0 then
          counterexamples :=
            Printf.sprintf
              "server=%s trial=%d: %d negative indications after round %d"
              (Strategy.name server) trial late_negatives cutoff
            :: !counterexamples
      done)
    servers;
  build_report
    (Printf.sprintf "compact viability of %s for %s" t.name (Goal.name goal))
    !checked (List.rev !counterexamples)

let check_safety_finite ?config ?(trials = 3) ~goal ~users ~servers t rng =
  let trials = max trials (Goal.num_worlds goal) in
  let checked = ref 0 in
  let counterexamples = ref [] in
  List.iter
    (fun user ->
      let wrapped = halt_on_positive t user in
      List.iter
        (fun server ->
          for trial = 1 to trials do
            incr checked;
            let trial_rng = Rng.split rng in
            let config = config_for_trial ?config ~goal trial in
            let outcome, _ =
              Exec.run_outcome ~config ~goal ~user:wrapped ~server trial_rng
            in
            (* If the wrapped user halted, it was on a positive indication;
               safety demands the referee then accepts. *)
            if outcome.Outcome.halted && not outcome.Outcome.achieved then
              counterexamples :=
                Printf.sprintf
                  "user=%s server=%s trial=%d: halted on a positive indication \
                   at round %s but the referee rejects"
                  (Strategy.name user) (Strategy.name server) trial
                  (match outcome.Outcome.halt_round with
                  | Some r -> string_of_int r
                  | None -> "?")
                :: !counterexamples
          done)
        servers)
    users;
  build_report
    (Printf.sprintf "finite safety of %s for %s" t.name (Goal.name goal))
    !checked (List.rev !counterexamples)

let check_viability_finite ?config ?(trials = 3) ~goal ~user_for ~servers t rng
    =
  let trials = max trials (Goal.num_worlds goal) in
  let checked = ref 0 in
  let counterexamples = ref [] in
  List.iter
    (fun server ->
      let user = user_for server in
      for trial = 1 to trials do
        incr checked;
        let trial_rng = Rng.split rng in
        let config = config_for_trial ?config ~goal trial in
        let history = Exec.run ~config ~goal ~user ~server trial_rng in
        let got_positive =
          List.exists (fun (_, v) -> v = Positive) (verdicts t history)
        in
        if not got_positive then
          counterexamples :=
            Printf.sprintf
              "server=%s trial=%d: user %s never received a positive indication"
              (Strategy.name server) trial (Strategy.name user)
            :: !counterexamples
      done)
    servers;
  build_report
    (Printf.sprintf "finite viability of %s for %s" t.name (Goal.name goal))
    !checked (List.rev !counterexamples)
