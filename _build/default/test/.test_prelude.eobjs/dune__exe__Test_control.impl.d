test/test_control.ml: Alcotest Control Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude History Io List Listx Msg Outcome Printf Rng Sensing Strategy Universal
