open Goalcom_prelude

type 'a t = { name : string; card : int option; get : int -> 'a option }

let make ~name ?card get =
  let get i =
    if i < 0 then None
    else begin
      match card with
      | Some c when i >= c -> None
      | _ -> get i
    end
  in
  { name; card; get }

let name t = t.name
let cardinality t = t.card
let get t i = t.get i

let get_exn t i =
  match t.get i with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Enum.get_exn (%s): index %d out of range" t.name i)

let of_list ~name xs =
  let arr = Array.of_list xs in
  make ~name ~card:(Array.length arr) (fun i ->
      if i < Array.length arr then Some arr.(i) else None)

let map ?name f t =
  let name = match name with Some n -> n | None -> t.name ^ "/mapped" in
  { name; card = t.card; get = (fun i -> Option.map f (t.get i)) }

let append a b =
  match a.card with
  | None -> invalid_arg "Enum.append: first enumeration must be finite"
  | Some ca ->
      let card =
        match b.card with
        | Some cb when ca <= max_int - cb -> Some (ca + cb)
        (* Overflow: reporting [Some max_int] would silently misstate
           the cardinality (and make wrap-around indexing truncate the
           class); [None] says "too many to count" honestly. *)
        | Some _ -> None
        | None -> None
      in
      make ~name:(a.name ^ "++" ^ b.name) ?card (fun i ->
          if i < ca then a.get i else b.get (i - ca))

let interleave a b =
  let card =
    match (a.card, b.card) with
    | Some ca, Some cb -> Some (ca + cb)
    | _ -> None
  in
  (* Alternate strictly while both sides have elements; once the
     shorter side is exhausted the longer side's leftover follows
     sequentially (no element is repeated or skipped). *)
  let zipped i = if i mod 2 = 0 then a.get (i / 2) else b.get (i / 2) in
  let get i =
    match (a.card, b.card) with
    | None, None -> zipped i
    | Some ca, Some cb ->
        let m = min ca cb in
        if i < 2 * m then zipped i
        else if ca <= cb then b.get (i - ca)
        else a.get (i - cb)
    | Some ca, None -> if i < 2 * ca then zipped i else b.get (i - ca)
    | None, Some cb -> if i < 2 * cb then zipped i else a.get (i - cb)
  in
  make ~name:(a.name ^ "~" ^ b.name) ?card get

let product a b =
  match (a.card, b.card) with
  | Some ca, Some cb ->
      make ~name:(a.name ^ "x" ^ b.name) ~card:(ca * cb) (fun i ->
          match (a.get (i / cb), b.get (i mod cb)) with
          | Some x, Some y -> Some (x, y)
          | _ -> None)
  | _ ->
      (* Cantor diagonal; only correct when both sides are infinite, so
         pad finite sides by cycling (documented as diagonalisation). *)
      let wrap t i =
        match t.card with
        | Some c when c > 0 -> t.get (i mod c)
        | _ -> t.get i
      in
      make ~name:(a.name ^ "x" ^ b.name) (fun i ->
          let x, y = Coding.unpair i in
          match (wrap a x, wrap b y) with
          | Some x, Some y -> Some (x, y)
          | _ -> None)

let to_list t =
  match t.card with
  | None -> invalid_arg "Enum.to_list: infinite enumeration"
  | Some c -> List.filter_map t.get (Listx.range 0 c)

let filter_finite p t =
  match t.card with
  | None -> invalid_arg "Enum.filter_finite: infinite enumeration"
  | Some _ -> of_list ~name:(t.name ^ "/filtered") (List.filter p (to_list t))

let take n t = List.filter_map t.get (Listx.range 0 n)

let find_index ?(limit = 10_000) p t =
  let stop =
    match t.card with Some c -> min c limit | None -> limit
  in
  let rec go i =
    if i >= stop then None
    else begin
      match t.get i with
      | None -> None
      | Some v -> if p v then Some i else go (i + 1)
    end
  in
  go 0

let tabulate ~name n f =
  make ~name ~card:n (fun i -> if i < n then Some (f i) else None)

let naturals = make ~name:"naturals" (fun i -> Some i)

let cached ?name ~capacity t =
  let name = match name with Some n -> n | None -> t.name in
  let lru = Lru.create ~capacity in
  ({ name; card = t.card; get = (fun i -> Lru.find_or_add lru i t.get) }, lru)

