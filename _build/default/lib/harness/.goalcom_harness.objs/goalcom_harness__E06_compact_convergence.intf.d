lib/harness/e06_compact_convergence.mli: Goalcom_prelude
