(* A circuit breaker per server class.

   Closed counts consecutive failures; at the threshold it trips Open
   and the engine stops admitting or restarting sessions of the class.
   After a cooldown the first start request is let through as a probe
   (Half_open); the probe's verdict either closes the breaker or trips
   it again for another cooldown.  All transitions happen in the
   engine's sequential supervision phase, so breaker state is a pure
   function of the (deterministic) failure sequence. *)

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type change = Tripped | Probing | Reclosed

type t = {
  threshold : int; (* consecutive failures that trip; 0 disables *)
  cooldown : int; (* ticks Open before the next probe *)
  mutable st : state;
  mutable consecutive : int;
  mutable opened_at : int;
  mutable probe_live : bool; (* a Half_open probe is in flight *)
  mutable trips : int;
}

let make ?(threshold = 5) ?(cooldown = 8) () =
  if threshold < 0 then invalid_arg "Breaker.make: threshold must be >= 0";
  if cooldown < 1 then invalid_arg "Breaker.make: cooldown must be >= 1";
  {
    threshold;
    cooldown;
    st = Closed;
    consecutive = 0;
    opened_at = 0;
    probe_live = false;
    trips = 0;
  }

let state t = t.st
let trips t = t.trips

let allow t ~tick =
  match t.st with
  | Closed -> (true, None)
  | Open ->
      if tick - t.opened_at >= t.cooldown then begin
        t.st <- Half_open;
        t.probe_live <- true;
        (true, Some Probing)
      end
      else (false, None)
  | Half_open ->
      if t.probe_live then (false, None)
      else begin
        t.probe_live <- true;
        (true, None)
      end

let record_success t =
  match t.st with
  | Half_open ->
      t.st <- Closed;
      t.consecutive <- 0;
      t.probe_live <- false;
      Some Reclosed
  | Closed ->
      t.consecutive <- 0;
      None
  | Open -> None

let record_failure t ~tick =
  match t.st with
  | Half_open ->
      (* The probe failed: back to Open for another cooldown. *)
      t.st <- Open;
      t.opened_at <- tick;
      t.probe_live <- false;
      t.trips <- t.trips + 1;
      Some Tripped
  | Closed ->
      t.consecutive <- t.consecutive + 1;
      if t.threshold > 0 && t.consecutive >= t.threshold then begin
        t.st <- Open;
        t.opened_at <- tick;
        t.trips <- t.trips + 1;
        Some Tripped
      end
      else None
  | Open ->
      (* Stragglers of the tripping storm: already open, nothing new. *)
      None
