(** The synchronous execution engine (§2).

    Rounds are numbered from 1.  In round [r] every party simultaneously
    observes the messages emitted for it in round [r-1] (silence in
    round 1) and emits its round-[r] messages.  After the user halts it
    emits silence forever; execution continues for [drain] extra rounds
    so in-flight messages (e.g. the user's final answer to the world)
    are delivered and reflected in the world state, then stops.

    Compact goals never halt: the run is truncated at [horizon].

    {b Tracing.}  Both entry points take an optional {!Trace.sink}.
    When given, it is installed as the ambient sink for the duration of
    the call (so strategy-level emitters — universal users, tolerant
    sensing, fault wrappers — share it); when absent, whatever ambient
    sink is already installed (see {!Trace.set_sink}) is used, and with
    no sink at all the tracing path allocates nothing. *)

type config = {
  horizon : int;  (** maximum number of rounds; must be positive *)
  drain : int;  (** extra rounds executed after the user halts *)
  world_choice : int;  (** which non-deterministic world to couple *)
}

val config : ?horizon:int -> ?drain:int -> ?world_choice:int -> unit -> config
(** Defaults: [horizon = 1000], [drain = 2], [world_choice = 0]. *)

(** A single run as a resumable state machine.

    {!run} executes a run start to finish; a stepper exposes the same
    loop one round at a time, so a scheduler ([lib/session]) can
    interleave thousands of live runs.  Stepping a fresh stepper to
    completion is {e bit-identical} to {!run} — same trace events, same
    RNG consumption, same history — which the golden-trace suite pins.

    Tracing: {!create} emits [Run_start] under the ambient sink in
    force at creation; each {!step} re-resolves the ambient sink, so an
    engine may install a per-session buffering sink around every
    quantum (and around creation) and the events land in the right
    buffer even when consecutive quanta run on different domains. *)
module Stepper : sig
  type t

  val create :
    ?config:config ->
    goal:Goal.t ->
    user:Strategy.user ->
    server:Strategy.server ->
    Goalcom_prelude.Rng.t ->
    t
  (** Split the RNG, instantiate the parties, emit [Run_start].  The
      run has executed zero rounds; no other events are emitted until
      the first {!step}. *)

  val step : t -> bool
  (** Execute one round (or, if the termination condition already
      holds, finalize: build the history and emit [Run_end]).  Returns
      [true] while the run remains live, [false] once finished.
      Calling [step] on a finished stepper is a no-op returning
      [false]. *)

  val finished : t -> bool

  val finishing : t -> bool
  (** The termination condition holds: the next {!step} only
      finalizes (no round executes).  True once finished. *)

  val halted : t -> bool
  (** The user has requested halt (draining may still be running). *)

  val round : t -> int
  (** Next round to execute (rounds start at 1). *)

  val rounds_executed : t -> int

  val history : t -> History.t
  (** The finished run's history.  @raise Invalid_argument while the
      run is still live. *)

  val run_to_end : t -> History.t
  (** Step until finished and return the history. *)
end

val run :
  ?sink:Trace.sink ->
  ?config:config ->
  goal:Goal.t ->
  user:Strategy.user ->
  server:Strategy.server ->
  Goalcom_prelude.Rng.t ->
  History.t
(** Execute the coupled system and return its history.  The generator
    is split into independent streams for the three parties, so a
    party's randomness does not depend on the others' sampling order.
    Emits [Run_start], [Round_start], [Emit] (non-silent messages
    only), [Halt] and [Run_end] trace events when tracing is on. *)

val run_outcome :
  ?sink:Trace.sink ->
  ?config:config ->
  ?tail_window:int ->
  goal:Goal.t ->
  user:Strategy.user ->
  server:Strategy.server ->
  Goalcom_prelude.Rng.t ->
  Outcome.t * History.t
(** {!run} followed by {!Outcome.judge}; additionally emits one
    [Violation] event per referee-violation round (after [Run_end] —
    violations are post-hoc judgments, not run-time occurrences).

    For success-rate estimation over repeated trials use
    [Goalcom_harness.Trial.run] (or its [success_rate] wrapper), which
    also cycles world choices and counts unsafe halts. *)
