(** Finite message alphabets.

    Symbols are dense integers [0 .. size-1] with optional human-readable
    names; strategies and dialects operate on the integer form, examples
    and logs on the names. *)

type t

val make : string list -> t
(** [make names] builds an alphabet from distinct, non-empty names.
    @raise Invalid_argument on duplicates or an empty list. *)

val of_size : int -> t
(** [of_size n] has symbols named ["s0" .. "s{n-1}"].
    @raise Invalid_argument if [n <= 0]. *)

val size : t -> int

val name : t -> int -> string
(** @raise Invalid_argument if the symbol is out of range. *)

val index : t -> string -> int option
(** Symbol with the given name, if any. *)

val symbols : t -> int list
(** [0; 1; ...; size-1]. *)

val mem : t -> int -> bool
