open Goalcom_automata

type stats = {
  mutable switches : int;
  mutable sessions : int;
  mutable current_index : int;
  mutable settled_round : int;
}

let new_stats () =
  { switches = 0; sessions = 0; current_index = 0; settled_round = 0 }

let reset_stats s =
  s.switches <- 0;
  s.sessions <- 0;
  s.current_index <- 0;
  s.settled_round <- 0

let enum_get_cyclic enum i =
  match Enum.cardinality enum with
  | Some 0 -> invalid_arg "Universal: empty strategy enumeration"
  | Some c -> Enum.get_exn enum (i mod c)
  | None -> begin
      match Enum.get enum i with
      | Some s -> s
      | None -> invalid_arg "Universal: enumeration ran out of strategies"
    end

(* Thread the user's view exactly as {!View.of_history} does: the event
   for round r pairs the round-r sends with the observations the user
   acted on in round r.  Sensing is evaluated on the completed rounds. *)
let extend_view view (pending : (Io.User.obs * Io.User.act) option) =
  match pending with
  | None -> view
  | Some (obs, act) ->
      View.extend view
        {
          View.round = obs.Io.User.round;
          from_server = obs.Io.User.from_server;
          from_world = obs.Io.User.from_world;
          to_server = act.Io.User.to_server;
          to_world = act.Io.User.to_world;
          halted = false;
        }

type 'inst compact_state = {
  c_index : int;
  c_inst : 'inst;
  c_view : View.t;
  c_pending : (Io.User.obs * Io.User.act) option;
  c_rounds_in : int;  (* rounds the current strategy has run *)
}

let compact ?(grace = 1) ?(growth = `Doubling) ?stats ~enum ~sensing () =
  if grace < 0 then invalid_arg "Universal.compact: negative grace";
  (match Enum.cardinality enum with
  | Some 0 -> invalid_arg "Universal.compact: empty strategy enumeration"
  | _ -> ());
  (* With [`Doubling], patience grows geometrically with each full pass
     over a finite class.  Needed for convergence: after adopting the
     right strategy the system may need a recovery period during which
     sensing is still negative (e.g. steering a plant back into range);
     constant patience would evict the right strategy forever, whereas
     doubling patience eventually covers any bounded recovery time —
     this realises the growing time allowance of the full version's
     construction.  [`Constant] keeps patience fixed; it exists for the
     ablation experiment that demonstrates why the growth matters. *)
  let effective_grace index =
    match growth with
    | `Constant -> grace
    | `Doubling -> begin
        match Enum.cardinality enum with
        | Some card when card > 0 ->
            let wraps = min (index / card) 20 in
            grace * (1 lsl wraps)
        | _ -> grace
      end
  in
  let module I = Strategy.Instance in
  Strategy.make
    ~name:(Printf.sprintf "universal-compact(%s;%s)" (Enum.name enum) sensing.Sensing.name)
    ~init:(fun () ->
      Option.iter reset_stats stats;
      {
        c_index = 0;
        c_inst = I.create (enum_get_cyclic enum 0);
        c_view = View.empty;
        c_pending = None;
        c_rounds_in = 0;
      })
    ~step:(fun rng state (obs : Io.User.obs) ->
      let view = extend_view state.c_view state.c_pending in
      let verdict =
        if state.c_pending = None then Sensing.Positive (* nothing to judge yet *)
        else sensing.Sensing.sense view
      in
      let state =
        if
          verdict = Sensing.Negative
          && state.c_rounds_in >= effective_grace state.c_index
        then begin
          let index = state.c_index + 1 in
          Option.iter
            (fun s ->
              s.switches <- s.switches + 1;
              s.current_index <- index;
              s.settled_round <- obs.Io.User.round)
            stats;
          {
            state with
            c_index = index;
            c_inst = I.create (enum_get_cyclic enum index);
            c_rounds_in = 0;
          }
        end
        else state
      in
      let act = { (I.step rng state.c_inst obs) with Io.User.halt = false } in
      ( {
          state with
          c_view = view;
          c_pending = Some (obs, act);
          c_rounds_in = state.c_rounds_in + 1;
        },
        act ))

type 'inst finite_state = {
  f_sched : Levin.slot Seq.t;
  f_current : (Levin.slot * 'inst) option;
  f_used : int;  (* rounds consumed in the current session *)
  f_view : View.t;
  f_pending : (Io.User.obs * Io.User.act) option;
}

let finite ?schedule ?stats ~enum ~sensing () =
  (match Enum.cardinality enum with
  | Some 0 -> invalid_arg "Universal.finite: empty strategy enumeration"
  | _ -> ());
  let module I = Strategy.Instance in
  let initial_schedule () =
    match schedule with Some s -> s | None -> Levin.schedule ()
  in
  Strategy.make
    ~name:(Printf.sprintf "universal-finite(%s;%s)" (Enum.name enum) sensing.Sensing.name)
    ~init:(fun () ->
      Option.iter reset_stats stats;
      {
        f_sched = initial_schedule ();
        f_current = None;
        f_used = 0;
        f_view = View.empty;
        f_pending = None;
      })
    ~step:(fun rng state (obs : Io.User.obs) ->
      let view = extend_view state.f_view state.f_pending in
      let verdict =
        if state.f_pending = None then Sensing.Negative (* nothing achieved yet *)
        else sensing.Sensing.sense view
      in
      if verdict = Sensing.Positive then
        ({ state with f_view = view; f_pending = None }, Io.User.halt_act)
      else begin
        let state =
          let session_over =
            match state.f_current with
            | None -> true
            | Some (slot, _) -> state.f_used >= slot.Levin.budget
          in
          if not session_over then state
          else begin
            match state.f_sched () with
            | Seq.Nil ->
                invalid_arg "Universal.finite: schedule exhausted"
            | Seq.Cons (slot, rest) ->
                Option.iter
                  (fun s ->
                    s.sessions <- s.sessions + 1;
                    s.switches <- s.switches + 1;
                    s.current_index <- slot.Levin.index;
                    s.settled_round <- obs.Io.User.round)
                  stats;
                {
                  state with
                  f_sched = rest;
                  f_current =
                    Some (slot, I.create (enum_get_cyclic enum slot.Levin.index));
                  f_used = 0;
                }
          end
        in
        let inst =
          match state.f_current with
          | Some (_, inst) -> inst
          | None -> assert false
        in
        let act = { (I.step rng inst obs) with Io.User.halt = false } in
        ( {
            state with
            f_view = view;
            f_pending = Some (obs, act);
            f_used = state.f_used + 1;
          },
          act )
      end)
