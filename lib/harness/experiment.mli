(** The experiment registry.

    The PODC'11 paper is a brief announcement with no evaluation
    section; each experiment here operationalises one of its
    theorems/claims (see DESIGN.md and EXPERIMENTS.md for the mapping).
    Experiments are deterministic given a seed and print their results
    as a {!Goalcom_prelude.Table.t}; the benchmark driver and the CLI
    both run them through this interface. *)

open Goalcom_prelude

type kind = Table | Figure

type t = {
  id : string;  (** e.g. "e1" *)
  kind : kind;
  title : string;
  claim : string;  (** the paper claim being operationalised *)
  run : seed:int -> Table.t;
}

val all : t list
(** E1 through E17, in order. *)

val find : string -> t option
(** Lookup by id (case-insensitive). *)

val run_all : seed:int -> Table.t list

val run_par :
  ?jobs:int ->
  ?pool:Goalcom_par.Pool.t ->
  seed:int ->
  t list ->
  Table.t list
(** Run a set of experiments across a domain pool ({!Sweep.map});
    tables come back in input order.  Each experiment derives its own
    generators from [seed], so fanning them out does not change any
    result — E17's wall-clock columns, which are measured rather than
    derived, are the one exception, and are labelled as such in its
    table notes. *)

val kind_to_string : kind -> string
