lib/goals/maze.mli: Dialect Enum Goal Goalcom Goalcom_automata Grid Levin Sensing Seq Strategy Universal World
