(** E13 / Table 7 — the online-learning connection: a server-free halving learner and ask-the-teacher users in one universal class.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
