test/test_core.ml: Alcotest Exec Goal Goalcom Goalcom_prelude History Io List Listx Msg Outcome Referee Rng Strategy View World
