open Goalcom
open Goalcom_prelude

(* Attribution: fold an event stream into per-candidate-index spans.

   The universal constructions announce their enumeration moves in the
   trace — Switch (compact), Session (Levin/finite), Resume (checkpoint
   restore) — and everything between two such moves is work performed
   by one enumerated candidate strategy.  The fold charges each round,
   message and sensing verdict to the candidate in charge, which makes
   the "essentially necessary" overhead of Theorem 1 a measured
   quantity: the rounds burnt on candidates that did not end up winning
   the run.

   Charging discipline (event order within a round is Round_start,
   Sense, Switch/Session, Emits, Halt):
   - a Sense verdict is charged to the candidate it judged — the one in
     charge when the verdict was emitted, i.e. before any switch it
     triggers;
   - the round itself (and its messages) is charged to the candidate
     that actually acted in it, i.e. after the switches of that round
     settled.  So a switching round costs the incoming candidate a
     round and the outgoing candidate a negative verdict.
   Every Round_start is charged to exactly one span, so per-candidate
   rounds sum to the run total (Run_end.rounds). *)

type span = {
  index : int option;
  first_round : int;
  last_round : int;
  rounds : int;
  sessions : int;
  retries : int;
  user_msgs : int;
  server_msgs : int;
  world_msgs : int;
  wire_symbols : int;
  senses : int;
  negatives : int;
  faults : int;
}

type run = {
  goal : string;
  user : string;
  server : string;
  horizon : int;
  drain : int;
  world_choice : int;
  spans : span list;
  rounds : int;
  halted : bool;
  violations : int;
  winner : int option;
}

let empty_span index =
  {
    index;
    first_round = 0;
    last_round = 0;
    rounds = 0;
    sessions = 0;
    retries = 0;
    user_msgs = 0;
    server_msgs = 0;
    world_msgs = 0;
    wire_symbols = 0;
    senses = 0;
    negatives = 0;
    faults = 0;
  }

(* Merge [a]'s counters into [b] (used when a zero-round placeholder
   span dissolves into the span that follows it). *)
let absorb a b =
  {
    b with
    sessions = b.sessions + a.sessions;
    retries = b.retries + a.retries;
    user_msgs = b.user_msgs + a.user_msgs;
    server_msgs = b.server_msgs + a.server_msgs;
    world_msgs = b.world_msgs + a.world_msgs;
    wire_symbols = b.wire_symbols + a.wire_symbols;
    senses = b.senses + a.senses;
    negatives = b.negatives + a.negatives;
    faults = b.faults + a.faults;
  }

type fold = {
  mutable f_goal : string;
  mutable f_user : string;
  mutable f_server : string;
  mutable f_horizon : int;
  mutable f_drain : int;
  mutable f_world_choice : int;
  mutable f_open : span;
  mutable f_saw_boundary : bool;  (* any Switch/Session/Resume yet? *)
  mutable f_spans_rev : span list;
  mutable f_pending : int;  (* round awaiting charge; 0 = none *)
  mutable f_rounds : int;
  mutable f_halted : bool;
  mutable f_violations : int;
  mutable f_run_end_rounds : int option;
}

let new_fold () =
  {
    f_goal = "?";
    f_user = "?";
    f_server = "?";
    f_horizon = 0;
    f_drain = 0;
    f_world_choice = 0;
    f_open = empty_span None;
    f_saw_boundary = false;
    f_spans_rev = [];
    f_pending = 0;
    f_rounds = 0;
    f_halted = false;
    f_violations = 0;
    f_run_end_rounds = None;
  }

let flush_pending f =
  if f.f_pending > 0 then begin
    let s = f.f_open in
    f.f_open <-
      {
        s with
        first_round = (if s.rounds = 0 then f.f_pending else s.first_round);
        last_round = f.f_pending;
        rounds = s.rounds + 1;
      };
    f.f_rounds <- f.f_rounds + 1;
    f.f_pending <- 0
  end

(* Close the open span and start one for candidate [index].  The round
   in flight, if any, stays pending: it belongs to the new span.  A
   zero-round open span dissolves into its successor — it only ever
   held the bootstrap verdict emitted before the first session. *)
let boundary f ~index ~sessions ~retries =
  let prev = f.f_open in
  let fresh =
    { (empty_span (Some index)) with sessions; retries }
  in
  if prev.rounds = 0 then f.f_open <- absorb prev fresh
  else begin
    f.f_spans_rev <- prev :: f.f_spans_rev;
    f.f_open <- fresh
  end

let observe f (ev : Trace.event) =
  match ev with
  | Trace.Run_start { goal; user; server; horizon; drain; world_choice } ->
      f.f_goal <- goal;
      f.f_user <- user;
      f.f_server <- server;
      f.f_horizon <- horizon;
      f.f_drain <- drain;
      f.f_world_choice <- world_choice
  | Trace.Round_start { round } ->
      flush_pending f;
      f.f_pending <- round
  | Trace.Emit { src; msg; _ } -> begin
      let s = f.f_open in
      let w = Metrics.msg_weight msg in
      match src with
      | Trace.User ->
          f.f_open <-
            { s with user_msgs = s.user_msgs + 1; wire_symbols = s.wire_symbols + w }
      | Trace.Server ->
          f.f_open <-
            {
              s with
              server_msgs = s.server_msgs + 1;
              wire_symbols = s.wire_symbols + w;
            }
      | Trace.World ->
          f.f_open <-
            {
              s with
              world_msgs = s.world_msgs + 1;
              wire_symbols = s.wire_symbols + w;
            }
    end
  | Trace.Halt _ -> f.f_halted <- true
  | Trace.Sense { positive; _ } ->
      let s = f.f_open in
      f.f_open <-
        {
          s with
          senses = s.senses + 1;
          negatives = (s.negatives + if positive then 0 else 1);
        }
  | Trace.Switch { from_index; to_index; attempt; _ } ->
      (* The compact construction starts silently on some index; its
         identity only becomes visible at the first switch, whose
         [from_index] retroactively names the span in progress. *)
      if (not f.f_saw_boundary) && f.f_open.index = None then
        f.f_open <- { f.f_open with index = Some from_index };
      f.f_saw_boundary <- true;
      boundary f ~index:to_index ~sessions:0
        ~retries:(if from_index = to_index then attempt else 0)
  | Trace.Session { index; _ } ->
      f.f_saw_boundary <- true;
      boundary f ~index ~sessions:1 ~retries:0
  | Trace.Resume { index; _ } ->
      f.f_saw_boundary <- true;
      boundary f ~index ~sessions:0 ~retries:0
  | Trace.Fault _ -> f.f_open <- { f.f_open with faults = f.f_open.faults + 1 }
  | Trace.Violation _ -> f.f_violations <- f.f_violations + 1
  | Trace.Run_end { rounds; halted } ->
      flush_pending f;
      f.f_run_end_rounds <- Some rounds;
      f.f_halted <- f.f_halted || halted
  (* Supervision decisions sit between runs; they carry no strategy
     attribution, so span accounting ignores them. *)
  | Trace.Supervise _ -> ()
  (* Warm-start decisions precede the run; nothing to attribute. *)
  | Trace.Warm _ -> ()

let finish f =
  flush_pending f;
  let spans =
    let s = f.f_open in
    if s.rounds = 0 && s.sessions = 0 && s.retries = 0 && s.senses = 0
       && s.user_msgs = 0 && s.server_msgs = 0 && s.world_msgs = 0
       && s.faults = 0
    then List.rev f.f_spans_rev
    else List.rev (s :: f.f_spans_rev)
  in
  let winner =
    if not f.f_halted then None
    else
      match List.rev spans with last :: _ -> last.index | [] -> None
  in
  {
    goal = f.f_goal;
    user = f.f_user;
    server = f.f_server;
    horizon = f.f_horizon;
    drain = f.f_drain;
    world_choice = f.f_world_choice;
    spans;
    rounds = Option.value f.f_run_end_rounds ~default:f.f_rounds;
    halted = f.f_halted;
    violations = f.f_violations;
    winner;
  }

let run_of_events events =
  let f = new_fold () in
  List.iter (observe f) events;
  finish f

let of_events events = List.map run_of_events (Trace.split_runs events)

(* The per-candidate ledger, aggregated across a batch of runs. *)

type candidate = {
  cand_index : int option;
  cand_spans : int;
  cand_sessions : int;
  cand_retries : int;
  cand_rounds : int;
  cand_user_msgs : int;
  cand_server_msgs : int;
  cand_world_msgs : int;
  cand_wire_symbols : int;
  cand_senses : int;
  cand_negatives : int;
  cand_faults : int;
  cand_wins : int;
}

type ledger = {
  runs : int;
  halted_runs : int;
  total_rounds : int;
  winning_rounds : int;
  wasted_rounds : int;
  candidates : candidate list;
}

let empty_candidate index =
  {
    cand_index = index;
    cand_spans = 0;
    cand_sessions = 0;
    cand_retries = 0;
    cand_rounds = 0;
    cand_user_msgs = 0;
    cand_server_msgs = 0;
    cand_world_msgs = 0;
    cand_wire_symbols = 0;
    cand_senses = 0;
    cand_negatives = 0;
    cand_faults = 0;
    cand_wins = 0;
  }

let ledger runs =
  let tbl = Hashtbl.create 16 in
  let get index =
    match Hashtbl.find_opt tbl index with
    | Some c -> c
    | None -> empty_candidate index
  in
  let total_rounds = ref 0 and winning_rounds = ref 0 in
  let halted_runs = ref 0 in
  List.iter
    (fun r ->
      if r.halted then incr halted_runs;
      total_rounds := !total_rounds + r.rounds;
      List.iter
        (fun (s : span) ->
          if r.winner <> None && s.index = r.winner then
            winning_rounds := !winning_rounds + s.rounds;
          let c = get s.index in
          Hashtbl.replace tbl s.index
            {
              c with
              cand_spans = c.cand_spans + 1;
              cand_sessions = c.cand_sessions + s.sessions;
              cand_retries = c.cand_retries + s.retries;
              cand_rounds = c.cand_rounds + s.rounds;
              cand_user_msgs = c.cand_user_msgs + s.user_msgs;
              cand_server_msgs = c.cand_server_msgs + s.server_msgs;
              cand_world_msgs = c.cand_world_msgs + s.world_msgs;
              cand_wire_symbols = c.cand_wire_symbols + s.wire_symbols;
              cand_senses = c.cand_senses + s.senses;
              cand_negatives = c.cand_negatives + s.negatives;
              cand_faults = c.cand_faults + s.faults;
            })
        r.spans;
      match r.winner with
      | Some _ ->
          let c = get r.winner in
          Hashtbl.replace tbl r.winner { c with cand_wins = c.cand_wins + 1 }
      | None -> ())
    runs;
  let candidates =
    Hashtbl.fold (fun _ c acc -> c :: acc) tbl []
    |> List.sort (fun a b ->
           match (a.cand_index, b.cand_index) with
           | None, None -> 0
           | None, Some _ -> 1
           | Some _, None -> -1
           | Some i, Some j -> compare i j)
  in
  {
    runs = List.length runs;
    halted_runs = !halted_runs;
    total_rounds = !total_rounds;
    winning_rounds = !winning_rounds;
    wasted_rounds = !total_rounds - !winning_rounds;
    candidates;
  }

let ledger_of_events events = ledger (of_events events)

(* Table renderings, shared by the CLI and the experiment docs. *)

let index_cell = function None -> "-" | Some i -> string_of_int i

let ledger_table l =
  let rows =
    List.map
      (fun c ->
        [
          index_cell c.cand_index;
          Table.cell_int c.cand_spans;
          Table.cell_int c.cand_sessions;
          Table.cell_int c.cand_retries;
          Table.cell_int c.cand_rounds;
          Table.cell_int (c.cand_user_msgs + c.cand_server_msgs + c.cand_world_msgs);
          Table.cell_int c.cand_wire_symbols;
          Table.cell_int c.cand_senses;
          Table.cell_int c.cand_negatives;
          Table.cell_int c.cand_faults;
          Table.cell_int c.cand_wins;
        ])
      l.candidates
  in
  Table.make ~title:"overhead ledger (per candidate index)"
    ~columns:
      [
        "index"; "spans"; "sessions"; "retries"; "rounds"; "msgs";
        "wire syms"; "senses"; "negative"; "faults"; "wins";
      ]
    ~notes:
      [
        Printf.sprintf "runs %d (halted %d)" l.runs l.halted_runs;
        Printf.sprintf
          "rounds total %d = winning %d + wasted %d (enumeration overhead \
           %.1f%%)"
          l.total_rounds l.winning_rounds l.wasted_rounds
          (if l.total_rounds = 0 then 0.
           else 100. *. float_of_int l.wasted_rounds /. float_of_int l.total_rounds);
      ]
    rows

(* Per-session attribution over an engine trace.

   The engine replays each session's buffered events contiguously in
   session-id order: Supervise decisions (admit, start, restart, kill,
   done, ...) interleaved with the session's incarnations' run events.
   Every run event belongs to the session of the most recent Supervise
   event — the engine emits "admit" before anything else a session
   does — so a single pass reassembles per-session slices, and
   split_runs on a slice segments its incarnations exactly as for a
   single crash-resume run.  Each incarnation keeps the enumeration
   index its checkpoint restored (the Resume event the universal user
   emits when resuming mid-enumeration), linking the supervise timeline
   to the enumeration ladder: which candidate a restart came back to,
   and which incarnation finally won. *)

type incarnation = {
  inc_number : int;  (* 1-based, in start order *)
  inc_resumed_at : int option;  (* Resume.index, None for a cold start *)
  inc_run : run;
}

type session_span = {
  sess_id : int;
  sess_admit_tick : int option;
  sess_outcome : (string * int) option;  (* terminal action, tick *)
  sess_restarts : int;
  sess_kills : int;
  sess_rounds : int;  (* over all incarnations *)
  sess_incarnations : incarnation list;
}

let session_of_slice id (supervises, events) =
  let admit = ref None and outcome = ref None in
  let restarts = ref 0 and kills = ref 0 in
  List.iter
    (fun (tick, action) ->
      match action with
      | "admit" -> if !admit = None then admit := Some tick
      | "restart" -> incr restarts
      | "kill" -> incr kills
      | "done" | "give-up" | "deadline" | "shed" ->
          outcome := Some (action, tick)
      | _ -> ())
    supervises;
  let incarnations =
    List.mapi
      (fun i segment ->
        {
          inc_number = i + 1;
          inc_resumed_at =
            List.find_map
              (function Trace.Resume { index; _ } -> Some index | _ -> None)
              segment;
          inc_run = run_of_events segment;
        })
      (if events = [] then [] else Trace.split_runs events)
  in
  {
    sess_id = id;
    sess_admit_tick = !admit;
    sess_outcome = !outcome;
    sess_restarts = !restarts;
    sess_kills = !kills;
    sess_rounds =
      List.fold_left (fun acc i -> acc + i.inc_run.rounds) 0 incarnations;
    sess_incarnations = incarnations;
  }

let sessions_of_events events =
  let slices = Hashtbl.create 64 in
  let order = ref [] in
  let slice id =
    match Hashtbl.find_opt slices id with
    | Some s -> s
    | None ->
        let s = (ref [], ref []) in
        Hashtbl.add slices id s;
        order := id :: !order;
        s
  in
  let current = ref None in
  List.iter
    (fun ev ->
      match ev with
      | Trace.Supervise { tick; session; action; _ } ->
          current := Some session;
          let sups, _ = slice session in
          sups := (tick, action) :: !sups
      | ev -> begin
          match !current with
          | None -> () (* a bare run stream: nothing to attribute to *)
          | Some id ->
              let _, evs = slice id in
              evs := ev :: !evs
        end)
    events;
  List.rev_map
    (fun id ->
      let sups, evs = Hashtbl.find slices id in
      session_of_slice id (List.rev !sups, List.rev !evs))
    !order
  |> List.sort (fun a b -> compare a.sess_id b.sess_id)

let sessions_table sessions =
  let rows =
    List.map
      (fun s ->
        let outcome, tick =
          match s.sess_outcome with
          | Some (action, tick) -> (action, Table.cell_int tick)
          | None -> ("unfinished", "-")
        in
        let resumes =
          s.sess_incarnations
          |> List.filter_map (fun i -> i.inc_resumed_at)
          |> List.map string_of_int
          |> String.concat ","
        in
        let winner =
          match List.rev s.sess_incarnations with
          | last :: _ -> index_cell last.inc_run.winner
          | [] -> "-"
        in
        [
          Table.cell_int s.sess_id;
          (match s.sess_admit_tick with
          | Some t -> Table.cell_int t
          | None -> "-");
          outcome;
          tick;
          Table.cell_int (List.length s.sess_incarnations);
          Table.cell_int s.sess_restarts;
          Table.cell_int s.sess_kills;
          Table.cell_int s.sess_rounds;
          (if resumes = "" then "-" else resumes);
          winner;
        ])
      sessions
  in
  Table.make ~title:"sessions (per-incarnation attribution)"
    ~columns:
      [
        "session"; "admit"; "outcome"; "tick"; "incarnations"; "restarts";
        "kills"; "rounds"; "resumed at"; "winner";
      ]
    rows

let runs_table runs =
  let rows =
    List.mapi
      (fun i (r : run) ->
        [
          Table.cell_int (i + 1);
          r.goal;
          Table.cell_int r.rounds;
          (if r.halted then "yes" else "no");
          index_cell r.winner;
          Table.cell_int (List.length r.spans);
          Table.cell_int r.violations;
        ])
      runs
  in
  Table.make ~title:"runs" ~columns:
    [ "run"; "goal"; "rounds"; "halted"; "winner"; "spans"; "violations" ]
    rows
