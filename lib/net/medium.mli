(** The shared-medium arbiter: goal-oriented multiple access.

    One physical channel, [ports] stations.  Time is slotted; in each
    slot every station may stage at most one frame on its {!port}
    server, and {!resolve} — called once per slot by the session
    engine's {e sequential} supervision phase — decides the slot's
    fate: exactly one staged frame is {e delivered} (it reaches that
    station's world on the port's next step), two or more {e collide}
    (everyone staged learns it, nothing is delivered), none is an idle
    slot.  The feedback a station reads on its port the following slot
    is [Sym 0] (nothing pending), [Sym 1] (your frame was delivered)
    or [Sym 2] (your frame collided).

    {b Determinism.}  A port's step touches only that port's cells, so
    the engine's parallel quantum can advance all stations of a group
    concurrently; everything cross-port — winner selection, counters,
    feedback — happens in {!resolve} on the supervising domain, and
    nothing here consumes randomness.  Outcomes are therefore
    bit-identical for every jobs count, which the net test-suite and
    BENCH_net pin.

    A port's strategy [init] clears that port's cells, so a restarted
    incarnation (chaos kill, crash-resume) starts from a quiet port
    while medium-level counters keep their fleet totals. *)

open Goalcom

type t

val create : ports:int -> t
(** @raise Invalid_argument unless [ports >= 1]. *)

val ports : t -> int

val port : t -> int -> Strategy.server
(** Station [i]'s server.  From the user it accepts framed attempts
    [Pair (Int seq, Int sym)]; the first attempt of a slot sticks,
    later ones in the same slot are ignored.  To the user it emits the
    feedback symbol; to the world it emits the delivered frame, once,
    the slot after {!resolve} granted it.
    @raise Invalid_argument if [i] is out of range. *)

val resolve :
  ?report:(port:int -> action:string -> detail:string -> unit) -> t -> unit
(** Close the current slot.  [report] observes the decisions in port
    order — ["deliver"] for the winning station, ["collide"] for every
    staged loser — with deterministic details; the session engine
    routes them into its supervise stream. *)

val slots : t -> int
val successes : t -> int
val collisions : t -> int
(** Slots that ended in a collision (however many stations clashed). *)

val idles : t -> int
val delivered : t -> int -> int
(** Frames delivered for one port across the run. *)
