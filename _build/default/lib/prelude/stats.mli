(** Small statistics toolkit for the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean.  @raise Invalid_argument on []. *)

val variance : float list -> float
(** Unbiased sample variance (0. for fewer than two samples). *)

val stddev : float list -> float

val median : float list -> float
(** @raise Invalid_argument on []. *)

val percentile : float -> float list -> float
(** [percentile q xs] with [q] in [0,100], linear interpolation.
    @raise Invalid_argument on [] or out-of-range [q]. *)

val minimum : float list -> float
val maximum : float list -> float

type summary = {
  n : int;
  mean : float;
  stddev : float;
  median : float;
  min : float;
  max : float;
  p90 : float;
}

val summarise : float list -> summary
(** @raise Invalid_argument on []. *)

val ci95_halfwidth : float list -> float
(** Half-width of a normal-approximation 95% confidence interval on the
    mean (0. for fewer than two samples). *)

val success_rate : bool list -> float
(** Fraction of [true] entries.  @raise Invalid_argument on []. *)
