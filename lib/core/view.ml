open Goalcom_prelude

type event = {
  round : int;
  from_server : Msg.t;
  from_world : Msg.t;
  to_server : Msg.t;
  to_world : Msg.t;
  halted : bool;
}

(* Events most recent first. *)
type t = { rev : event list; len : int }

let empty = { rev = []; len = 0 }
let extend t e = { rev = e :: t.rev; len = t.len + 1 }
let length t = t.len
let events t = List.rev t.rev
let events_rev t = t.rev
let latest t = match t.rev with [] -> None | e :: _ -> Some e
let last_n n t = List.rev (Listx.take n t.rev)

let drop_latest k t =
  if k <= 0 then t
  else begin
    let rec go k rev = if k = 0 then rev else match rev with [] -> [] | _ :: rest -> go (k - 1) rest in
    { rev = go k t.rev; len = max 0 (t.len - k) }
  end

(* NOTE on timing: the messages a user *received* in round r are the ones
   emitted in round r-1.  The view event for round r therefore pairs the
   user's round-r sends with the round-(r-1) incoming messages, matching
   exactly what the user's strategy observed when it acted. *)
let fold_events h ~init ~f =
  let acc, _, _ =
    History.fold_rounds h ~init:(init, Msg.Silence, Msg.Silence)
      ~f:(fun (acc, prev_s2u, prev_w2u) (r : History.Round.t) ->
        let e =
          {
            round = r.index;
            from_server = prev_s2u;
            from_world = prev_w2u;
            to_server = r.user_to_server;
            to_world = r.user_to_world;
            halted = r.user_halted;
          }
        in
        (f acc e, r.server_to_user, r.world_to_user))
  in
  acc

let of_history h = fold_events h ~init:empty ~f:extend

let prefixes h =
  let _, acc =
    fold_events h ~init:(empty, []) ~f:(fun (view, acc) e ->
        let view = extend view e in
        (view, view :: acc))
  in
  List.rev acc
