lib/harness/e03_levin.ml: Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude History List Listx Maze Outcome Rng Stats Table Universal
