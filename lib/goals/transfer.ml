open Goalcom
open Goalcom_automata
open Goalcom_servers

let begin_cmd = 0
let data_cmd = 1
let end_cmd = 2
let min_alphabet = 4

let check_alphabet alphabet =
  if alphabet < min_alphabet then
    invalid_arg "Transfer: alphabet must have at least 4 symbols"

let ok_msg = Msg.Text "ok"
let err_msg = Msg.Text "err"
let done_msg = Msg.Text "done"

type relay_state = Idle | Receiving of int list (* reversed buffer *)

let relay ~alphabet =
  check_alphabet alphabet;
  Strategy.make ~name:"framed-relay"
    ~init:(fun () -> Idle)
    ~step:(fun _rng state (obs : Io.Server.obs) ->
      match (state, obs.from_user) with
      | _, Msg.Silence -> (state, Io.Server.silent)
      | Idle, Msg.Sym c when c = begin_cmd -> (Receiving [], Io.Server.say_user ok_msg)
      | Idle, _ -> (Idle, Io.Server.say_user err_msg)
      | Receiving buf, Msg.Pair (Msg.Sym c, Msg.Int ch) when c = data_cmd ->
          (Receiving (ch :: buf), Io.Server.say_user ok_msg)
      | Receiving buf, Msg.Sym c when c = end_cmd ->
          ( Idle,
            {
              Io.Server.to_user = done_msg;
              to_world = Codec.ints (List.rev buf);
            } )
      | Receiving _, _ -> (Idle, Io.Server.say_user err_msg))

let server ~alphabet d = Transform.with_dialect d (relay ~alphabet)

let server_class ~alphabet dialects =
  Transform.dialect_class ~base:(relay ~alphabet) dialects

let check_payload payload =
  if payload = [] then invalid_arg "Transfer: empty payload";
  List.iter
    (fun c ->
      if c < 0 || c > 255 then invalid_arg "Transfer: byte out of range")
    payload

let status_msg payload delivered =
  Msg.Pair
    (Codec.ints payload, Msg.Text (if delivered then "delivered" else "pending"))

let world_of_payload payload =
  check_payload payload;
  World.make
    ~name:(Printf.sprintf "transfer-world(len=%d)" (List.length payload))
    ~init:(fun () -> false)
    ~step:(fun _rng delivered (obs : Io.World.obs) ->
      let delivered =
        delivered
        ||
        match Codec.ints_opt obs.from_server with
        | Some received -> received = payload
        | None -> false
      in
      (delivered, Io.World.say_user (status_msg payload delivered)))
    ~view:(fun delivered -> status_msg payload delivered)

let delivered_view = function
  | Msg.Pair (_, Msg.Text "delivered") -> true
  | _ -> false

let referee = Referee.finite_exists "payload-delivered" delivered_view

let default_payloads = [ [ 10; 20; 30 ]; [ 1; 2; 3; 4; 5; 6 ]; [ 42 ] ]

let goal ?(payloads = default_payloads) ~alphabet () =
  check_alphabet alphabet;
  Goal.make
    ~name:(Printf.sprintf "transfer(alphabet=%d)" alphabet)
    ~worlds:(List.map world_of_payload payloads)
    ~referee

let payload_of_world_msg = function
  | Msg.Pair (payload_msg, Msg.Text _) -> Codec.ints_opt payload_msg
  | _ -> None

type phase =
  | Wait_payload
  | Sending of int list
  | Finishing
  | Await of int

let await_patience = 6

let informed_user ~alphabet d =
  check_alphabet alphabet;
  let send m = Io.User.say_server (Dialect_msg.encode d m) in
  Strategy.make
    ~name:(Printf.sprintf "transfer-user@%s" (Format.asprintf "%a" Dialect.pp d))
    ~init:(fun () -> Wait_payload)
    ~step:(fun _rng phase (obs : Io.User.obs) ->
      if delivered_view obs.from_world then (phase, Io.User.halt_act)
      else if obs.from_server = err_msg then
        (* Framing rejected: restart the handshake. *)
        (Wait_payload, Io.User.silent)
      else begin
        match phase with
        | Wait_payload -> begin
            match payload_of_world_msg obs.from_world with
            | Some payload -> (Sending payload, send (Msg.Sym begin_cmd))
            | None -> (Wait_payload, Io.User.silent)
          end
        | Sending (ch :: rest) ->
            (Sending rest, send (Msg.Pair (Msg.Sym data_cmd, Msg.Int ch)))
        | Sending [] -> (Finishing, send (Msg.Sym end_cmd))
        | Finishing -> (Await 0, Io.User.silent)
        | Await k ->
            if k >= await_patience then (Wait_payload, Io.User.silent)
            else (Await (k + 1), Io.User.silent)
      end)

let user_class ~alphabet dialects =
  Enum.map
    ~name:(Printf.sprintf "transfer-users(%s)" (Enum.name dialects))
    (fun d -> informed_user ~alphabet d)
    dialects

(* The world's broadcast is monotone ("delivered" stays), so the latest
   event carries the verdict. *)
let goal_sensing =
  Sensing.of_latest ~name:"payload-delivered" ~empty:false (fun e ->
      delivered_view e.View.from_world)

let error_sensing =
  Sensing.of_latest ~name:"no-framing-error" ~empty:true (fun e ->
      not (Msg.equal e.View.from_server err_msg))

let universal_user ?schedule ?stats ~alphabet dialects =
  Universal.finite ?schedule ?stats
    ~enum:(user_class ~alphabet dialects)
    ~sensing:goal_sensing ()

let universal_user_fast ?(grace = 3) ?stats ~alphabet dialects =
  let explorer =
    Universal.compact ~grace ?stats
      ~enum:(user_class ~alphabet dialects)
      ~sensing:error_sensing ()
  in
  Strategy.rename "universal-fast(transfer)"
    (Sensing.halt_on_positive goal_sensing explorer)
