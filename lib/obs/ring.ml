(* The always-on capture sink: a fixed-capacity ring of binary-encoded
   events, one shard per domain.

   Emission path: append the event through Binary's cursor encoder
   straight into the shard's arena — one growable Bytes.t holding the
   retained events back to back — and record the (offset, length) pair
   in a circular index.  No per-event allocation at all: the arena and
   index are reused for the life of the shard, so a ring that retains
   events across minor collections promotes two flat blocks once, not
   one small string per event (which is what made a string-array ring
   pay major-heap churn proportional to the event rate).  No locks, no
   atomics — the shard is reached through domain-local storage; the
   mutex only guards the shard registry (a shard registers itself from
   its DLS initialiser, once per domain per ring) and the drain-side
   iteration.

   Arena reclamation: eviction just advances [head], so dead bytes
   accumulate at the front of the arena.  Retained bytes are always the
   contiguous region [base, cursor) where [base] is the oldest retained
   event's offset — writes are sequential and eviction drops the lowest
   offsets first.  When the dead prefix outgrows the live region (plus
   slack), a push first slides the live bytes down to 0 and rebases the
   index; the eviction bytes between two compactions pay for the copy,
   so the amortized cost is O(1) per byte and arena memory stays within
   a small multiple of the retained encoding.

   Draining decodes every retained slice back to a Trace.event and
   concatenates shards in first-use order (per-shard order is FIFO).
   On one domain that equals exactly what a buffering sink would have
   recorded, minus evicted prefixes — the acceptance test pins the
   drained ring Trace_diff-equal to the JSONL sink for the same run.
   Across domains the interleaving is scheduling-dependent, like any
   per-domain capture; the engine replays its merged trace from one
   domain, so its rings hold a single shard. *)

type shard = {
  enc : Binary.enc;  (* the arena: retained events, back to back *)
  offs : int array;  (* circular index: where each event starts *)
  lens : int array;
  mutable head : int;  (* index slot of the oldest retained event *)
  mutable tail : int;  (* next slot to write; equals [head] when full *)
  mutable len : int;
  mutable evicted : int;
}

type t = {
  capacity : int;
  mutex : Mutex.t;
  shards : shard list ref;  (* first-use order *)
  slot : shard Domain.DLS.key;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  let mutex = Mutex.create () in
  let shards = ref [] in
  let slot =
    (* Runs on first access from each domain: build the shard and
       register it, so the per-event path is a bare DLS load. *)
    Domain.DLS.new_key (fun () ->
        let sh =
          {
            enc = Binary.enc_create 4096;
            offs = Array.make capacity 0;
            lens = Array.make capacity 0;
            head = 0;
            tail = 0;
            len = 0;
            evicted = 0;
          }
        in
        Mutex.lock mutex;
        shards := !shards @ [ sh ];
        Mutex.unlock mutex;
        sh)
  in
  { capacity; mutex; shards; slot }

let capacity t = t.capacity

(* Slide the live region [base, cursor) down to 0 and rebase the
   index.  Only called with [base > 0], from [push]. *)
let compact sh base =
  let e = sh.enc in
  let retained = Binary.enc_len e - base in
  let buf = Binary.enc_bytes e in
  Bytes.blit buf base buf 0 retained;
  let cap = Array.length sh.offs in
  for k = 0 to sh.len - 1 do
    let i = sh.head + k in
    let i = if i >= cap then i - cap else i in
    Array.unsafe_set sh.offs i (Array.unsafe_get sh.offs i - base)
  done;
  Binary.enc_set_len e retained

let push_sh sh ev =
  let e = sh.enc in
  let start = Binary.enc_len e in
  Binary.put_event e ev;
  let n = Binary.enc_len e - start in
  let cap = Array.length sh.offs in
  let i = sh.tail in
  Array.unsafe_set sh.offs i start;
  Array.unsafe_set sh.lens i n;
  sh.tail <- (if i + 1 = cap then 0 else i + 1);
  if sh.len = cap then begin
    (* Full: the write above overwrote the oldest slot ([tail] chases
       [head] once full); advance [head] past it. *)
    sh.head <- sh.tail;
    sh.evicted <- sh.evicted + 1;
    (* Dead bytes only ever grow here, so the reclamation check lives
       on the eviction path and the common non-evicting push does no
       extra work.  Compact once the dead prefix outgrows the live
       bytes (plus slack so tiny rings don't compact every eviction);
       appends that outgrow the arena while the prefix is mostly live
       are handled by the cursor's own doubling. *)
    let base = Array.unsafe_get sh.offs sh.head in
    let cursor = Binary.enc_len e in
    if base > cursor - base + 4096 then compact sh base
  end
  else sh.len <- sh.len + 1

let sink t ev = push_sh (Domain.DLS.get t.slot) ev

(* The DLS lookup is the single biggest fixed cost left on the emission
   path (the encode itself is ~10ns); binding the shard once at install
   time removes it.  Sound only because the returned closure is used
   from the domain that called [domain_sink] — which is exactly the
   single-domain shape of the engine replay, the chaos capture and the
   bench harness. *)
let domain_sink t =
  let sh = Domain.DLS.get t.slot in
  fun ev -> push_sh sh ev

(* Drain-side accessors.  These lock only the registry; they read shard
   fields without synchronisation, so call them when producers are
   quiescent (after the traced run) — the engine and CLI do. *)

let with_shards t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) (fun () -> f !(t.shards))

let sum f t = with_shards t (List.fold_left (fun acc sh -> acc + f sh) 0)
let length t = sum (fun sh -> sh.len) t
let evicted t = sum (fun sh -> sh.evicted) t
let domains t = with_shards t List.length

let events t =
  with_shards t
    (List.concat_map (fun sh ->
         let cap = Array.length sh.offs in
         let buf = Binary.enc_bytes sh.enc in
         List.init sh.len (fun k ->
             let i = (sh.head + k) mod cap in
             let slice = Bytes.sub_string buf sh.offs.(i) sh.lens.(i) in
             match Binary.event_of_string slice with
             | Ok ev -> ev
             | Error e -> failwith ("Ring.events: corrupt slot: " ^ e))))

let clear t =
  with_shards t
    (List.iter (fun sh ->
         Binary.enc_set_len sh.enc 0;
         sh.head <- 0;
         sh.tail <- 0;
         sh.len <- 0;
         sh.evicted <- 0))
