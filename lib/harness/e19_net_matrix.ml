(* E19 — the network matrix.

   Three goal classes from lib/net, wired end-to-end: (1) topology
   routing — a universal user infers a route through an unknown switch
   dialect and delivers a payload intact across per-edge Mealy links;
   (2) probabilistic forwarding — the stop-and-wait ARQ holds its
   delivery rate over lossy/duplicating/noisy links within a fixed
   round budget; (3) goal-oriented multiple access — N universal users
   share one slotted medium through the session engine's group
   arbiter, and the matrix reports goal throughput and collision rates
   under contention.  The multi-user rows are run at jobs 1, 2 and 4
   and their outcome digests compared — the first genuinely multi-user
   determinism claim in the repo. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
module Net = Goalcom_net
module Session = Goalcom_session

let title =
  "Network matrix: routing, probabilistic forwarding, multiple access"

let claim =
  "universality extends to network goals: unknown topologies are routed \
   through sensing, the ARQ forwarder holds its delivery rate over lossy \
   and duplicating links within a round budget, and N universal users \
   sharing one medium converge onto collision-free schedules — with \
   shared-medium outcomes bit-identical across jobs 1/2/4"

(* --- shared parameters ------------------------------------------------ *)

let alphabet = 5
let payload_alphabet = 4
let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects (i mod alphabet)

let trials_default () =
  match Sys.getenv_opt "GOALCOM_E19_TRIALS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> invalid_arg "GOALCOM_E19_TRIALS wants a positive integer")
  | None -> 40

(* --- part 1: topology ------------------------------------------------- *)

let topo_cases () =
  [
    ("line-4", Net.Topo.line ~hops:4 ~payload_alphabet ~payload:2);
    ("diamond", Net.Topo.diamond ~payload_alphabet ~payload:2);
    ("ring-6", Net.Topo.ring ~nodes:6 ~sink:4 ~payload_alphabet ~payload:1);
  ]

let topo_universal_horizon = 8_000

let run_topo_case ~seed (name, scenario) =
  let goal = Net.Topo.goal ~scenarios:[ scenario ] ~alphabet () in
  let rounds ~horizon user =
    let outcome, history =
      Exec.run_outcome
        ~config:(Exec.config ~horizon ())
        ~goal ~user
        ~server:(Net.Topo.server ~alphabet (dialect 3))
        (Rng.make seed)
    in
    (outcome.Outcome.achieved, History.length history)
  in
  let ok_inf, informed_rounds =
    rounds ~horizon:400 (Net.Topo.informed_user ~alphabet ~scenario (dialect 3))
  in
  let ok_uni, universal_rounds =
    rounds ~horizon:topo_universal_horizon
      (Net.Topo.universal_user ~alphabet ~scenario dialects)
  in
  let net = Net.Topo.scenario_net scenario in
  [
    "topo/" ^ name;
    Printf.sprintf "%dn" (Net.Topo.nodes net);
    Table.cell_int (List.length (Net.Topo.route scenario));
    Table.cell_int informed_rounds;
    Table.cell_int universal_rounds;
    (if ok_inf && ok_uni then "yes" else "NO");
    "-";
    "-";
  ]

(* --- part 2: forwarding ----------------------------------------------- *)

let forward_scenario = Net.Forward.scenario ~payload_alphabet [ 2; 0; 3; 1 ]
let forward_budget = 400

let forward_fault spec =
  match Goalcom_faults.Fault.stack_of_string ~alphabet spec with
  | Ok f -> f
  | Error e -> invalid_arg ("E19_net_matrix: " ^ e)

let run_forward_case ~seed ~trials (name, spec, flip, universal) =
  let goal = Net.Forward.goal ~scenarios:[ forward_scenario ] ~alphabet () in
  let wire =
    if flip > 0. then Some (Net.Link.wire ~flip_prob:flip ~alphabet:payload_alphabet)
    else None
  in
  let d = if universal then 2 else 0 in
  let server =
    Goalcom_faults.Fault.apply (forward_fault spec)
      (Net.Forward.server ?wire ~alphabet ~payload_alphabet (dialect d))
  in
  let user =
    if universal then Net.Forward.universal_user ~alphabet dialects
    else Net.Forward.informed_user ~alphabet (dialect 0)
  in
  let horizon = if universal then 6_000 else forward_budget in
  let r =
    Trial.run
      ~config:(Exec.config ~horizon ())
      ~trials ~seed ~goal ~user ~server ()
  in
  [
    "forward/" ^ name;
    (if spec = "" then "clean" else spec);
    Table.cell_int trials;
    Table.cell_pct r.Trial.success_rate;
    (if Float.is_nan r.Trial.mean_rounds then "-"
     else Table.cell_float ~decimals:0 r.Trial.mean_rounds);
    (if r.Trial.unsafe_halts = 0 then "yes" else "NO");
    "-";
    "-";
  ]

let forward_cases =
  [
    ("clean", "", 0., false);
    ("loss.15+dup", "loss:0.15+dup", 0., false);
    ("loss.35+dup", "loss:0.35+dup", 0., false);
    ("wire.05", "", 0.05, false);
    ("universal", "loss:0.15+dup", 0., true);
  ]

(* --- part 3: multiple access ------------------------------------------ *)

let mac_max_period ~users = max 4 users
let mac_doc i = [ i mod payload_alphabet; (i + 2) mod payload_alphabet ]

type mac_run = {
  report : Session.Engine.report;
  slots : int;
  successes : int;
  collisions : int;
  idles : int;
}

let mac_spec ~max_period ~horizon i : Session.Engine.spec =
  {
    sname = Printf.sprintf "s%d/mac" i;
    server_class = "net-mac";
    goal = Net.Mac.goal ~payload_alphabet (mac_doc i);
    make_user =
      (fun ~checkpoint ->
        Net.Mac.universal_user ~checkpoint ~shift:i ~max_period ());
    server = Strategy.stateless ~name:"placeholder" (fun _ -> Io.Server.silent);
    exec_config = Exec.config ~horizon ();
  }

let mac_group ~medium ~members =
  {
    Session.Engine.gname = "medium";
    members;
    arbitrate =
      (fun ~tick:_ ~report ->
        Net.Medium.resolve
          ~report:(fun ~port ~action ~detail ->
            report ~session:members.(port) ~action ~detail)
          medium);
  }

(* One slot per engine tick: quantum 1 makes a scheduler tick one
   medium slot, so policies count rounds and the arbiter counts slots
   in the same clock. *)
let run_mac ?jobs ?(chaos = Session.Chaos.none) ?(max_ticks = 30_000) ~users
    ~seed () =
  let medium = Net.Medium.create ~ports:users in
  let max_period = mac_max_period ~users in
  let horizon = max_ticks + 16 in
  let specs =
    Array.init users (fun i ->
        { (mac_spec ~max_period ~horizon i) with server = Net.Medium.port medium i })
  in
  let members = Array.init users (fun i -> i) in
  let config =
    Session.Engine.config ~quantum:1 ~max_live:users ~queue_capacity:users
      ~max_ticks ()
  in
  let report =
    Session.Engine.run ~chaos ~config ?jobs
      ~groups:[ mac_group ~medium ~members ]
      ~specs ~seed ()
  in
  {
    report;
    slots = Net.Medium.slots medium;
    successes = Net.Medium.successes medium;
    collisions = Net.Medium.collisions medium;
    idles = Net.Medium.idles medium;
  }

let digest_prefix d = String.sub d 0 (min 12 (String.length d))

let per_slot n run =
  if run.slots = 0 then 0. else float_of_int n /. float_of_int run.slots

let run_mac_case ~seed users =
  let at jobs = run_mac ~jobs ~users ~seed () in
  let r1 = at 1 and r2 = at 2 and r4 = at 4 in
  let d1 = r1.report.Session.Engine.digest in
  let deterministic =
    d1 = r2.report.Session.Engine.digest
    && d1 = r4.report.Session.Engine.digest
  in
  [
    Printf.sprintf "mac/%d-users" users;
    Printf.sprintf "policies<=%d" (mac_max_period ~users);
    Table.cell_int users;
    Printf.sprintf "%d/%d" r1.report.Session.Engine.completed users;
    Table.cell_int r1.slots;
    Printf.sprintf "%.3f" (per_slot r1.successes r1);
    Printf.sprintf "%.3f" (per_slot r1.collisions r1);
    (if deterministic then digest_prefix d1 ^ " =1/2/4" else "JOBS-DIVERGE");
  ]

(* --- the serve population --------------------------------------------- *)

let topo_spec ~scenario ~sname ~horizon d : Session.Engine.spec =
  {
    sname;
    server_class = "net-topo";
    goal = Net.Topo.goal ~scenarios:[ scenario ] ~alphabet ();
    make_user =
      (fun ~checkpoint ->
        Net.Topo.universal_user ~checkpoint ~alphabet ~scenario dialects);
    server = Net.Topo.server ~alphabet d;
    exec_config = Exec.config ~horizon ();
  }

let forward_spec ~sname ~horizon d : Session.Engine.spec =
  {
    sname;
    server_class = "net-forward";
    goal = Net.Forward.goal ~scenarios:[ forward_scenario ] ~alphabet ();
    make_user =
      (fun ~checkpoint ->
        Net.Forward.universal_user ~checkpoint ~alphabet dialects);
    server = Net.Forward.server ~alphabet ~payload_alphabet d;
    exec_config = Exec.config ~horizon ();
  }

let population ?(mac_users = 8) ~sessions () =
  if sessions < 1 then invalid_arg "E19_net_matrix.population: no sessions";
  let mac_users = min sessions (max 0 mac_users) in
  let mac_users = mac_users - (mac_users mod 4) in
  let group_size = 4 in
  let horizon = 40_000 in
  let cases = topo_cases () in
  let specs =
    Array.init sessions (fun i ->
        if i < mac_users then
          mac_spec ~max_period:(mac_max_period ~users:group_size) ~horizon i
        else if (i - mac_users) mod 2 = 0 then
          let _, scenario = List.nth cases (i mod List.length cases) in
          topo_spec ~scenario
            ~sname:(Printf.sprintf "s%d/topo" i)
            ~horizon (dialect i)
        else forward_spec ~sname:(Printf.sprintf "s%d/forward" i) ~horizon (dialect i))
  in
  let groups = ref [] in
  let g = ref 0 in
  while (!g + 1) * group_size <= mac_users do
    let base = !g * group_size in
    let medium = Net.Medium.create ~ports:group_size in
    let members = Array.init group_size (fun k -> base + k) in
    for k = 0 to group_size - 1 do
      specs.(base + k) <-
        { (specs.(base + k)) with server = Net.Medium.port medium k }
    done;
    groups :=
      { (mac_group ~medium ~members) with
        Session.Engine.gname = Printf.sprintf "medium-%d" !g }
      :: !groups;
    incr g
  done;
  (specs, List.rev !groups)

(* --- the matrix ------------------------------------------------------- *)

let run ~seed =
  let trials = trials_default () in
  let topo_rows =
    List.mapi (fun i c -> run_topo_case ~seed:(seed + i) c) (topo_cases ())
  in
  let forward_rows =
    List.mapi
      (fun i c -> run_forward_case ~seed:(seed + (10 * (i + 1))) ~trials c)
      forward_cases
  in
  let mac_rows =
    List.mapi
      (fun i users -> run_mac_case ~seed:(seed + (100 * (i + 1))) users)
      [ 2; 4; 8 ]
  in
  Table.make
    ~title:"E19: network matrix — routing, forwarding, multiple access"
    ~columns:
      [
        "case"; "condition"; "n"; "done"; "rounds/slots"; "rate";
        "collide/slot"; "digest";
      ]
    ~notes:
      [
        "topo rows: n = route length, rounds for the informed and the \
         universal user (columns 4/5), served through dialect 3";
        Printf.sprintf
          "forward rows: success rate within a %d-round budget over %d \
           trials (set GOALCOM_E19_TRIALS to scale); unsafe halts would \
           flag column 4" forward_budget trials;
        "mac rows: N universal users share one slotted medium via the \
         session-group arbiter; rate = delivered frames/slot, and the \
         digest is checked bit-identical across --jobs 1/2/4";
      ]
    (topo_rows @ forward_rows @ mac_rows)
