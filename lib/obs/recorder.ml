open Goalcom

type t = { mutable rev : Trace.event list; mutable n : int }

let create () = { rev = []; n = 0 }

let sink t ev =
  t.rev <- ev :: t.rev;
  t.n <- t.n + 1

let events t = List.rev t.rev
let length t = t.n

let clear t =
  t.rev <- [];
  t.n <- 0

let record f =
  let t = create () in
  let x = Trace.with_sink (sink t) f in
  (x, events t)
