lib/baselines/baselines.mli: Enum Goalcom Goalcom_automata Strategy
