lib/automata/mealy.ml: Array Coding Enum Format Goalcom_prelude Hashtbl List Printf
