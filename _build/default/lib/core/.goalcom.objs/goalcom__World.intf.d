lib/core/world.mli: Goalcom_prelude Io Msg
