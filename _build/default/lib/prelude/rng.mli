(** Deterministic, splittable pseudo-random number generator (SplitMix64).

    All randomness in the library flows through this module so that every
    execution, test and experiment is reproducible from an integer seed.
    The generator is the SplitMix64 sequence of Steele, Lea and Flood,
    which has a 64-bit state, passes BigCrush, and supports cheap
    splitting — convenient for running independent trials in parallel. *)

type t
(** Mutable generator state. *)

val make : int -> t
(** [make seed] creates a generator from an integer seed.  Equal seeds
    produce equal streams. *)

val of_int64 : int64 -> t
(** [of_int64 seed] creates a generator from a full 64-bit seed. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    (statistically) independent of the rest of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)].  Requires [bound > 0.]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list.  @raise Invalid_argument on []. *)

val pick_array : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [0..n-1]. *)
