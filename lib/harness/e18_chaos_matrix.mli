(** E18 — chaos matrix: goal completion under supervised concurrency.

    Runs a mixed population of checkpointed universal sessions
    (printing, corridor maze, open-room maze) through
    {!Goalcom_session.Engine} under a set of chaos conditions — crash
    storms, burst loss, adversarial budgets, admission overload — and
    tabulates completion rate, supervision costs and rounds-to-goal
    percentiles.  Deterministic: each cell's digest is identical
    across repeats and jobs counts.

    The building blocks ([specs], [conditions], [run_condition]) are
    exposed for the bench harness and the [goalcom chaos] CLI, which
    run single conditions at other population sizes. *)

open Goalcom_prelude

val title : string
val claim : string

val specs :
  ?warm:(Goalcom_compile.Warm.entry list, string) result ->
  sessions:int ->
  unit ->
  Goalcom_session.Engine.spec array
(** The standard mix: session [i] is printing / corridor maze /
    open-room maze by [i mod 3], with server dialects cycled within
    each family.  [warm] is a loaded warm-start store
    ({!Goalcom_compile.Warm.load}): validated hints become prepended
    Levin slots, so repeated runs skip straight to known winners; a
    load [Error] or stale entry falls back cold (with a [Trace.Warm]
    event when tracing). *)

val warm_class : int -> string
(** The warm-start key for session [i]: its goal family plus the server
    dialect it cycles onto (finer than [server_class], which names the
    breaker — the winning candidate depends on the dialect). *)

val warm_entries :
  ?warm:(Goalcom_compile.Warm.entry list, string) result ->
  Goalcom_session.Engine.report ->
  Goalcom_compile.Warm.entry list
(** Harvest warm-start entries from a finished run: each [Done]
    session's checkpoint pins its winning candidate index and the
    schedule slot it was running (whose budget becomes the hint
    budget).  Starts from the entries already in [warm] (if any), so
    recording is cumulative; pass the result to
    {!Goalcom_compile.Warm.save}. *)

type condition = {
  cname : string;
  chaos_spec : string;  (** {!Goalcom_session.Chaos.of_string} grammar *)
  econfig : Goalcom_session.Engine.config;
}

val conditions : unit -> condition list

val chaos_of : string -> Goalcom_session.Chaos.t
(** Parse against the mix's channel alphabet.
    @raise Invalid_argument on a bad spec. *)

val run_condition :
  ?warm:(Goalcom_compile.Warm.entry list, string) result ->
  ?jobs:int ->
  sessions:int ->
  seed:int ->
  condition ->
  Goalcom_session.Engine.report

val sessions_default : unit -> int
(** Sessions per condition: [GOALCOM_E18_SESSIONS], default 2000. *)

val run : seed:int -> Table.t
