(* Lagrange evaluation at [x] from samples at nodes 0..d:
   g(x) = Σ_i y_i · Π_{j≠i} (x - j) / (i - j). *)
let eval_samples samples x =
  let d1 = Array.length samples in
  if d1 = 0 then invalid_arg "Poly.eval_samples: no samples";
  let result = ref Gf.zero in
  for i = 0 to d1 - 1 do
    let num = ref Gf.one and den = ref Gf.one in
    for j = 0 to d1 - 1 do
      if j <> i then begin
        num := Gf.mul !num (Gf.sub x (Gf.of_int j));
        den := Gf.mul !den (Gf.sub (Gf.of_int i) (Gf.of_int j))
      end
    done;
    result := Gf.add !result (Gf.mul samples.(i) (Gf.mul !num (Gf.inv !den)))
  done;
  !result

let sum01 samples =
  if Array.length samples < 2 then invalid_arg "Poly.sum01: need g(0) and g(1)";
  Gf.add samples.(0) samples.(1)
