lib/harness/e09_helpfulness.ml: Dialect Enum Exec Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude Goalcom_servers Hashtbl Helpful List Listx Printf Printing Rng Table Transform Trial
