(** The symmetric setting, by reduction (the paper's footnote 1).

    "The full version briefly considers a symmetric setting with more
    than two parties, but this primarily consists of a reduction to the
    two-party setting."  This module is that reduction, executable: a
    strategy written for the {e user} role can be mounted in the
    {e server} slot of the engine, so an execution can couple two
    user-role peers (each regarding the other as its server) with the
    world refereeing both.

    The adapter is purely a re-wiring: the peer's "server" channel
    becomes the other peer, its world channels are untouched, its halt
    requests are dropped (the server slot has no halting semantics),
    and a private round counter replaces the user-observation round
    field. *)

val as_server : Strategy.user -> Strategy.server
(** Mount a user-role strategy in the server slot. *)

val run_peers :
  ?config:Exec.config ->
  ?tail_window:int ->
  goal:Goal.t ->
  peer_a:Strategy.user ->
  peer_b:Strategy.user ->
  Goalcom_prelude.Rng.t ->
  Outcome.t * History.t
(** Couple two peers: [peer_a] runs in the user slot, [peer_b] (via
    {!as_server}) in the server slot, against the goal's world. *)
