lib/harness/e14_grace_ablation.mli: Goalcom_prelude
