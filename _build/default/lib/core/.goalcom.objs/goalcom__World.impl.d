lib/core/world.ml: Goalcom_prelude Io Msg Rng
