test/test_servers.ml: Alcotest Dialect Dialect_msg Enum Goalcom Goalcom_automata Goalcom_prelude Goalcom_servers Io Msg Rng Strategy Transform
