lib/ip/arith.mli: Cnf Gf Goalcom_sat
