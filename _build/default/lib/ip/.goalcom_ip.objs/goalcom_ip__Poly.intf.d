lib/ip/poly.mli: Gf
