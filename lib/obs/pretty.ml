open Goalcom

let pp_event ppf (ev : Trace.event) =
  match ev with
  | Trace.Run_start { goal; user; server; horizon; drain; world_choice } ->
      Format.fprintf ppf "== run %s: %s vs %s (horizon %d, drain %d, world %d)"
        goal user server horizon drain world_choice
  | Trace.Round_start { round } -> Format.fprintf ppf "-- round %d" round
  | Trace.Emit { round; src; dst; msg } ->
      Format.fprintf ppf "   r%d %s->%s %s" round
        (Trace.party_name src) (Trace.party_name dst) (Msg.to_string msg)
  | Trace.Halt { round } -> Format.fprintf ppf "   r%d user halts" round
  | Trace.Sense { round; sensor; positive; clock; patience } ->
      Format.fprintf ppf "   r%d sense %s %s (clock %d/%d)" round sensor
        (if positive then "+" else "-")
        clock patience
  | Trace.Switch { round; from_index; to_index; attempt } ->
      if from_index = to_index then
        Format.fprintf ppf "   r%d retry strategy #%d (attempt %d)" round
          from_index attempt
      else
        Format.fprintf ppf "   r%d switch strategy #%d -> #%d" round from_index
          to_index
  | Trace.Resume { index; slots } ->
      Format.fprintf ppf "== resume enumeration at #%d (%d slots spent)" index
        slots
  | Trace.Session { round; index; budget } ->
      Format.fprintf ppf "   r%d session strategy #%d, budget %d" round index
        budget
  | Trace.Fault { round; fault; detail } ->
      Format.fprintf ppf "   r%d FAULT %s [%s]" round fault detail
  | Trace.Violation { round } ->
      Format.fprintf ppf "   r%d referee violation" round
  | Trace.Run_end { rounds; halted } ->
      Format.fprintf ppf "== end after %d rounds%s" rounds
        (if halted then " (halted)" else "")
  | Trace.Supervise { tick; session; action; detail } ->
      Format.fprintf ppf "## t%d session %d %s%s" tick session action
        (if detail = "" then "" else " [" ^ detail ^ "]")
  | Trace.Warm { server_class; enum; index; accepted; detail } ->
      Format.fprintf ppf "== warm %s/%s #%d %s%s" server_class enum index
        (if accepted then "hit" else "rejected")
        (if detail = "" then "" else " [" ^ detail ^ "]")

let sink ppf ev = Format.fprintf ppf "%a@." pp_event ev

let pp_events ppf events =
  Format.pp_print_list pp_event ppf events
