open Goalcom_prelude

type ('obs, 'act) t =
  | S : {
      name : string;
      init : unit -> 'state;
      step : Rng.t -> 'state -> 'obs -> 'state * 'act;
    }
      -> ('obs, 'act) t

let make ~name ~init ~step = S { name; init; step }
let name (S s) = s.name
let rename name (S s) = S { s with name }

let stateless ~name f =
  make ~name ~init:(fun () -> ()) ~step:(fun _rng () obs -> ((), f obs))

let stateless_random ~name f =
  make ~name ~init:(fun () -> ()) ~step:(fun rng () obs -> ((), f rng obs))

let map_obs f (S s) =
  S
    {
      name = s.name;
      init = s.init;
      step = (fun rng state obs -> s.step rng state (f obs));
    }

let map_act f (S s) =
  S
    {
      name = s.name;
      init = s.init;
      step =
        (fun rng state obs ->
          let state', act = s.step rng state obs in
          (state', f act));
    }

let switch_after k (S first) (S rest) =
  if k < 0 then invalid_arg "Strategy.switch_after: negative k";
  S
    {
      name = Printf.sprintf "switch-after-%d(%s;%s)" k first.name rest.name;
      init = (fun () -> `First (first.init (), 0));
      step =
        (fun rng state obs ->
          match state with
          | `First (s, rounds) when rounds < k ->
              let s', act = first.step rng s obs in
              (`First (s', rounds + 1), act)
          | `First (_, _) ->
              let s', act = rest.step rng (rest.init ()) obs in
              (`Rest s', act)
          | `Rest s ->
              let s', act = rest.step rng s obs in
              (`Rest s', act));
    }

module Instance = struct
  type ('obs, 'act) instance =
    | I : {
        strat : ('obs, 'act) t;
        mutable state : 'state;
        reset : unit -> 'state;
        step_fn : Rng.t -> 'state -> 'obs -> 'state * 'act;
        mutable rounds : int;
      }
        -> ('obs, 'act) instance

  type ('obs, 'act) t = ('obs, 'act) instance

  let create (S s as strat) =
    I { strat; state = s.init (); reset = s.init; step_fn = s.step; rounds = 0 }

  let step rng (I inst) obs =
    let state', act = inst.step_fn rng inst.state obs in
    inst.state <- state';
    inst.rounds <- inst.rounds + 1;
    act

  let restart (I inst) =
    inst.state <- inst.reset ();
    inst.rounds <- 0

  let strategy (I inst) = inst.strat
  let rounds (I inst) = inst.rounds
end

type user = (Io.User.obs, Io.User.act) t
type server = (Io.Server.obs, Io.Server.act) t
