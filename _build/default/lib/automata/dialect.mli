(** Dialects: the paper's "no common language".

    A dialect is a bijective relabelling of a finite command alphabet.
    A server that "speaks dialect d" expects the user's canonical
    command [c] to arrive encoded as [apply d c], and encodes its own
    replies the same way.  The incompatibility studied by the paper is
    modelled by drawing the server's dialect adversarially from a class
    the user does not know. *)

type t
(** A permutation of [0 .. size-1]. *)

val size : t -> int

val identity : int -> t

val of_array : int array -> t
(** @raise Invalid_argument if the array is not a permutation. *)

val to_array : t -> int array

val apply : t -> int -> int
(** Encode a canonical symbol.  @raise Invalid_argument out of range. *)

val unapply : t -> int -> int
(** Decode back to canonical.  @raise Invalid_argument out of range. *)

val inverse : t -> t
val compose : t -> t -> t
(** [compose f g] applies [g] first, then [f]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val rotation : size:int -> int -> t
(** [rotation ~size k] maps [i] to [(i + k) mod size]. *)

val of_lehmer : size:int -> int -> t option
(** [of_lehmer ~size code] decodes a Lehmer code (factorial-base index)
    into the [code]-th permutation of [0..size-1] in lexicographic
    order; [None] if out of range ([code >= size!]). *)

val to_lehmer : t -> int
(** Inverse of {!of_lehmer}. *)

val factorial : int -> int
(** [n!], saturating at [max_int]. *)

val enumerate_all : size:int -> t Enum.t
(** All [size!] permutations in lexicographic order.  Keep [size] small
    (≤ 10) or indexes will saturate. *)

val enumerate_rotations : size:int -> t Enum.t
(** The [size] rotations — a convenient large-alphabet dialect class. *)

val random : Goalcom_prelude.Rng.t -> int -> t
(** Uniform random dialect. *)
