open Goalcom_prelude

(* The perf-regression gate: compare a fresh benchmark run against the
   committed BENCH_*.json baselines, metric by metric, with per-metric
   tolerances, and render a machine-readable verdict.  `bench --check`
   drives this in CI; the comparison logic lives here so the test suite
   can exercise the gate (identical metrics pass, a synthetically
   injected 50% regression fails) without running a benchmark.

   Tolerance policy: relative metrics (names ending in "_pct", e.g. the
   tracing-overhead percentages) transfer across machines and get the
   tight default; absolute timings (ns_per_run / ms_per_run) do not —
   CI hardware is not the hardware the baseline was measured on — so
   their default tolerance is deliberately loose and they mostly guard
   against order-of-magnitude blowups.  Callers can tighten either via
   [?tol_pct].  A small absolute slack keeps near-zero percentages from
   tripping on ratio noise. *)

type metric = { name : string; value : float }

let has_suffix suf name =
  let n = String.length name and m = String.length suf in
  n >= m && String.sub name (n - m) m = suf

type comparison = {
  metric : string;
  baseline : float;
  fresh : float;
  tol_pct : float;
  slack : float;
  regressed : bool;
}

let default_tol_pct name = if has_suffix "_pct" name then 35. else 300.
let default_slack name = if has_suffix "_pct" name then 10. else 0.

(* A fresh value regresses when it exceeds the baseline by more than
   the relative tolerance AND by more than the absolute slack; lower is
   always better for every gated metric (times, overhead percentages). *)
let judge ~tol_pct ~slack ~baseline ~fresh =
  fresh > baseline *. (1. +. (tol_pct /. 100.)) && fresh > baseline +. slack

let compare_metrics ?(tol_pct = default_tol_pct) ?(slack = default_slack)
    ~baseline ~fresh () =
  List.filter_map
    (fun { name; value = fresh_v } ->
      match List.find_opt (fun m -> m.name = name) baseline with
      | None -> None
      | Some { value = base_v; _ } ->
          let tol = tol_pct name and slack = slack name in
          Some
            {
              metric = name;
              baseline = base_v;
              fresh = fresh_v;
              tol_pct = tol;
              slack;
              regressed = judge ~tol_pct:tol ~slack ~baseline:base_v ~fresh:fresh_v;
            })
    fresh

let regressions = List.filter (fun c -> c.regressed)

(* Baseline extraction.  Both BENCH files share the shape
   { ..scalars.., "results": [ {"name": .., <numeric fields>..}, .. ] };
   every numeric field of a results entry becomes "<name>/<field>", and
   top-level "*_pct" scalars come along under their own key. *)

let metrics_of_json j =
  let top =
    match j with
    | Json.Obj kvs ->
        List.filter_map
          (fun (k, v) ->
            match Json.number_opt v with
            | Some value when has_suffix "_pct" k -> Some { name = k; value }
            | _ -> None)
          kvs
    | _ -> []
  in
  let results =
    match Json.member "results" j with
    | Some (Json.List entries) ->
        List.concat_map
          (fun entry ->
            match Json.member "name" entry with
            | Some (Json.String base) -> begin
                match entry with
                | Json.Obj kvs ->
                    List.filter_map
                      (fun (k, v) ->
                        if k = "name" then None
                        else
                          Option.map
                            (fun value -> { name = base ^ "/" ^ k; value })
                            (Json.number_opt v))
                      kvs
                | _ -> []
              end
            | _ -> [])
          entries
    | _ -> []
  in
  top @ results

let load_file path =
  match Json.of_file path with
  | Error e -> Error e
  | Ok j -> begin
      match metrics_of_json j with
      | [] -> Error (Printf.sprintf "%s: no gateable metrics found" path)
      | ms -> Ok ms
    end

(* Rendering. *)

let table comparisons =
  let rows =
    List.map
      (fun c ->
        [
          c.metric;
          Printf.sprintf "%.3f" c.baseline;
          Printf.sprintf "%.3f" c.fresh;
          Printf.sprintf "%.0f%%" c.tol_pct;
          (if c.regressed then "REGRESSED" else "ok");
        ])
      comparisons
  in
  Table.make ~title:"bench --check"
    ~columns:[ "metric"; "baseline"; "fresh"; "tol"; "status" ]
    rows

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let verdict_json comparisons =
  let regs = regressions comparisons in
  let entry c =
    Printf.sprintf
      "    {\"metric\": \"%s\", \"baseline\": %.4f, \"fresh\": %.4f, \
       \"tol_pct\": %.1f, \"regressed\": %b}"
      (json_escape c.metric) c.baseline c.fresh c.tol_pct c.regressed
  in
  Printf.sprintf
    "{\n\
    \  \"verdict\": \"%s\",\n\
    \  \"compared\": %d,\n\
    \  \"regressed\": %d,\n\
    \  \"comparisons\": [\n%s\n  ]\n\
     }"
    (if regs = [] then "pass" else "fail")
    (List.length comparisons) (List.length regs)
    (String.concat ",\n" (List.map entry comparisons))
