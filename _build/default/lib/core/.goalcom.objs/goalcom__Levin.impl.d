lib/core/levin.ml: Seq
