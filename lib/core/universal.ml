open Goalcom_automata

type stats = {
  mutable switches : int;
  mutable sessions : int;
  mutable current_index : int;
  mutable settled_round : int;
}

let new_stats () =
  { switches = 0; sessions = 0; current_index = 0; settled_round = 0 }

let reset_stats s =
  s.switches <- 0;
  s.sessions <- 0;
  s.current_index <- 0;
  s.settled_round <- 0

(* Enumeration progress that outlives the strategy instance.  A crash
   (of the user process, or a harness-level restart after a server
   crash) re-runs [init]; with a checkpoint the fresh instance resumes
   the enumeration where the previous one left off instead of paying
   the whole enumeration overhead again from index 0. *)
type checkpoint = { mutable saved_index : int; mutable saved_slots : int }

let new_checkpoint () = { saved_index = 0; saved_slots = 0 }

(* Memoised cyclic enumeration access: a growable array keyed by the effective
   (cardinality-reduced) index, so wrap-around passes and retries stop
   re-running the enumeration's constructor chain every switch.  One
   memo per strategy *instance* (created in [init]), never shared —
   strategy values are shared across domains by [Trial.run_par], so a
   cache living in the closure would race. *)
type 'a memo = { m_enum : 'a Enum.t; mutable m_cache : 'a option array }

let memo_create enum = { m_enum = enum; m_cache = [||] }

let memo_get m i =
  let key =
    match Enum.cardinality m.m_enum with
    | Some 0 -> invalid_arg "Universal: empty strategy enumeration"
    | Some c -> i mod c
    | None -> i
  in
  let n = Array.length m.m_cache in
  if key >= n then begin
    let grown = Array.make (max 8 (max (key + 1) (2 * n))) None in
    Array.blit m.m_cache 0 grown 0 n;
    m.m_cache <- grown
  end;
  match m.m_cache.(key) with
  | Some s -> s
  | None ->
      let s =
        match Enum.get m.m_enum key with
        | Some s -> s
        | None -> invalid_arg "Universal: enumeration ran out of strategies"
      in
      m.m_cache.(key) <- Some s;
      s

(* The view event a pending (obs, act) round contributes — exactly what
   {!View.of_history} would build: the event for round r pairs the
   round-r sends with the observations the user acted on in round r.
   Sensing absorbs the completed rounds one event at a time. *)
let pending_event ((obs : Io.User.obs), (act : Io.User.act)) =
  {
    View.round = obs.Io.User.round;
    from_server = obs.Io.User.from_server;
    from_world = obs.Io.User.from_world;
    to_server = act.Io.User.to_server;
    to_world = act.Io.User.to_world;
    halted = false;
  }

type ('strat, 'inst) compact_state = {
  c_memo : 'strat memo;
  c_index : int;
  c_inst : 'inst;
  c_sense : Sensing.state;  (* has absorbed every completed round *)
  c_pending : (Io.User.obs * Io.User.act) option;
  c_rounds_in : int;  (* rounds the current strategy has run *)
  c_attempt : int;  (* retries already spent on the current index *)
  c_grace : int;
      (* memoized [effective_grace c_index c_attempt] — recomputed only
         when index or attempt change, so the per-round path (patience
         check, Sense event) skips the cardinality division *)
  c_last_world : Msg.t option;  (* previous from_world observation *)
  c_stall : int;  (* consecutive rounds without world-view progress *)
}

let compact ?(grace = 1) ?(growth = `Doubling) ?(retries = 0) ?wedge_after
    ?checkpoint ?stats ~enum ~sensing () =
  if grace < 0 then invalid_arg "Universal.compact: negative grace";
  if retries < 0 then invalid_arg "Universal.compact: negative retries";
  (match wedge_after with
  | Some w when w <= 0 ->
      invalid_arg "Universal.compact: wedge_after must be positive"
  | _ -> ());
  (match Enum.cardinality enum with
  | Some 0 -> invalid_arg "Universal.compact: empty strategy enumeration"
  | _ -> ());
  (* With [`Doubling], patience grows geometrically with each full pass
     over a finite class.  Needed for convergence: after adopting the
     right strategy the system may need a recovery period during which
     sensing is still negative (e.g. steering a plant back into range);
     constant patience would evict the right strategy forever, whereas
     doubling patience eventually covers any bounded recovery time —
     this realises the growing time allowance of the full version's
     construction.  [`Constant] keeps patience fixed; it exists for the
     ablation experiment that demonstrates why the growth matters.

     On top of either growth, each retry of the {e same} index (see
     [retries]) doubles the patience again — exponential backoff, so a
     strategy evicted by a transient fault is re-tried with enough
     room to outlast the fault before the enumeration moves on. *)
  let effective_grace index attempt =
    let base =
      match growth with
      | `Constant -> grace
      | `Doubling -> begin
          match Enum.cardinality enum with
          | Some card when card > 0 ->
              let wraps = min (index / card) 20 in
              grace * (1 lsl wraps)
          | _ -> grace
        end
    in
    base * (1 lsl min attempt 20)
  in
  let module I = Strategy.Instance in
  Strategy.make
    ~name:(Printf.sprintf "universal-compact(%s;%s)" (Enum.name enum) sensing.Sensing.name)
    ~init:(fun () ->
      Option.iter reset_stats stats;
      let memo = memo_create enum in
      let start =
        match checkpoint with Some c -> c.saved_index | None -> 0
      in
      Option.iter (fun s -> s.current_index <- start) stats;
      if start > 0 && Trace.enabled () then
        Trace.emit (Trace.Resume { index = start; slots = 0 });
      {
        c_memo = memo;
        c_index = start;
        c_inst = I.create (memo_get memo start);
        c_sense = Sensing.start sensing;
        c_pending = None;
        c_rounds_in = 0;
        c_attempt = 0;
        c_grace = effective_grace start 0;
        c_last_world = None;
        c_stall = 0;
      })
    ~step:(fun rng state (obs : Io.User.obs) ->
      let sense_state =
        match state.c_pending with
        | None -> state.c_sense
        | Some p -> Sensing.observe state.c_sense (pending_event p)
      in
      let verdict =
        if state.c_pending = None then Sensing.Positive (* nothing to judge yet *)
        else Sensing.verdict sense_state
      in
      (* Single sink lookup (this fires every round): fetch the sink
         once instead of the enabled-guard-then-emit double access. *)
      (match Trace.current () with
      | None -> ()
      | Some sink ->
          sink
            (Trace.Sense
               {
                 round = obs.Io.User.round;
                 sensor = sensing.Sensing.name;
                 positive = verdict = Sensing.Positive;
                 clock = state.c_rounds_in;
                 patience = state.c_grace;
               }));
      (* Wedge detection: a frozen from_world stream means the current
         strategy is not moving the world at all (e.g. the server
         crashed or went silent mid-session); once the stall outlasts
         the wedge window we force re-enumeration immediately instead
         of spinning out the remaining grace. *)
      let stall =
        match state.c_last_world with
        | Some prev when Msg.equal prev obs.Io.User.from_world ->
            state.c_stall + 1
        | _ -> 0
      in
      let wedged =
        match wedge_after with Some w -> stall >= w | None -> false
      in
      let state, stall =
        if
          verdict = Sensing.Negative
          && (state.c_rounds_in >= state.c_grace || wedged)
        then begin
          if (not wedged) && state.c_attempt < retries then begin
            (* Retry the same index from scratch with doubled patience
               before giving up on it. *)
            if Trace.enabled () then
              Trace.emit
                (Trace.Switch
                   {
                     round = obs.Io.User.round;
                     from_index = state.c_index;
                     to_index = state.c_index;
                     attempt = state.c_attempt + 1;
                   });
            ( {
                state with
                c_inst = I.create (memo_get state.c_memo state.c_index);
                c_rounds_in = 0;
                c_attempt = state.c_attempt + 1;
                c_grace = effective_grace state.c_index (state.c_attempt + 1);
              },
              0 )
          end
          else begin
            let index = state.c_index + 1 in
            if Trace.enabled () then
              Trace.emit
                (Trace.Switch
                   {
                     round = obs.Io.User.round;
                     from_index = state.c_index;
                     to_index = index;
                     attempt = 0;
                   });
            Option.iter
              (fun s ->
                s.switches <- s.switches + 1;
                s.current_index <- index;
                s.settled_round <- obs.Io.User.round)
              stats;
            Option.iter (fun c -> c.saved_index <- index) checkpoint;
            ( {
                state with
                c_index = index;
                c_inst = I.create (memo_get state.c_memo index);
                c_rounds_in = 0;
                c_attempt = 0;
                c_grace = effective_grace index 0;
              },
              0 )
          end
        end
        else (state, stall)
      in
      let act = { (I.step rng state.c_inst obs) with Io.User.halt = false } in
      ( {
          state with
          c_sense = sense_state;
          c_pending = Some (obs, act);
          c_rounds_in = state.c_rounds_in + 1;
          c_last_world = Some obs.Io.User.from_world;
          c_stall = stall;
        },
        act ))

(* ---- The multicore Levin racer ---------------------------------- *)

type race = {
  winner_slot : int;
  winner_index : int;
  winner_budget : int;
  winner_rounds : int;
  slots_probed : int;
  history : History.t;
}

let finite_par ?schedule ?(max_slots = 64) ?jobs ?pool ?config ~enum ~sensing
    ~goal ~server ~seed () =
  (match Enum.cardinality enum with
  | Some 0 -> invalid_arg "Universal.finite_par: empty strategy enumeration"
  | _ -> ());
  if max_slots <= 0 then
    invalid_arg "Universal.finite_par: max_slots must be positive";
  (match jobs with
  | Some j when j <= 0 ->
      invalid_arg "Universal.finite_par: jobs must be positive"
  | _ -> ());
  let sched =
    match schedule with Some s -> s | None -> Levin.schedule ()
  in
  let slots = Array.of_seq (Seq.take max_slots sched) in
  let n = Array.length slots in
  if n = 0 then invalid_arg "Universal.finite_par: empty schedule";
  (* Determinism: one generator per probe, split from the master in
     slot order before any work is distributed (explicit loop —
     Array.init evaluation order is unspecified). *)
  let master = Goalcom_prelude.Rng.make seed in
  let rngs = Array.make n master in
  for i = 0 to n - 1 do
    rngs.(i) <- Goalcom_prelude.Rng.split master
  done;
  (* The winner is the *minimal* schedule slot whose probe senses
     positive — the slot the sequential schedule would have stopped at.
     [best] only ever decreases (min-CAS), and only positive probes
     write it, so a probe at slot [i] may be cancelled only when a
     positive slot [< i] is already known: the true winner can never be
     cancelled, which makes the outcome independent of domain
     scheduling. *)
  let best = Atomic.make max_int in
  let module I = Strategy.Instance in
  (* Candidates are resolved sequentially before any task is spawned:
     [Enum.get] is pure, so this changes no behaviour, and it keeps the
     domains from re-walking the enumeration (or sharing a memo).  The
     resolution itself goes through a memo: Levin schedules revisit the
     same index in every phase (index 0 appears in all of them), so
     without it a 64-slot race decodes candidate 0 eleven times.  With
     it, no candidate is ever decoded twice within a race — and when
     the enumeration is itself cache-backed ([Enum.cached], as the
     compiled classes of lib/compile are), not twice per process. *)
  let memo = memo_create enum in
  let candidates =
    Array.map (fun slot -> memo_get memo slot.Levin.index) slots
  in
  let probe i () =
    if Atomic.get best < i then None
    else begin
      let slot = slots.(i) in
      let inner = candidates.(i) in
      let cancelled () = Atomic.get best < i in
      (* Same session discipline as the sequential construction: the
         candidate's own halt requests are suppressed (sensing decides),
         and the probe runs for exactly the slot's budget — except that
         a cancelled probe halts at its next step so its domain frees up
         for uncancelled work. *)
      let user =
        Strategy.make
          ~name:(Printf.sprintf "race-probe(%d@%d)" slot.Levin.index i)
          ~init:(fun () -> I.create inner)
          ~step:(fun rng inst (obs : Io.User.obs) ->
            ignore obs;
            if cancelled () then (inst, Io.User.halt_act)
            else (inst, { (I.step rng inst obs) with Io.User.halt = false }))
      in
      let config =
        let base = match config with Some c -> c | None -> Exec.config () in
        Exec.{ base with horizon = slot.Levin.budget }
      in
      let history = Exec.run ~config ~goal ~user ~server rngs.(i) in
      if cancelled () then None
      else begin
        (if sensing.Sensing.sense (View.of_history history) = Sensing.Positive
         then
           let rec lower () =
             let cur = Atomic.get best in
             if i < cur && not (Atomic.compare_and_set best cur i) then
               lower ()
           in
           lower ());
        Some history
      end
    end
  in
  let tasks = Array.make n (probe 0) in
  for i = 0 to n - 1 do
    tasks.(i) <- probe i
  done;
  let results =
    match pool with
    | Some p -> Goalcom_par.Pool.run p tasks
    | None ->
        let jobs =
          match jobs with
          | Some j -> j
          | None -> Goalcom_par.Pool.default_jobs ()
        in
        Goalcom_par.Pool.with_pool ~jobs (fun p -> Goalcom_par.Pool.run p tasks)
  in
  let w = Atomic.get best in
  if w = max_int then None
  else begin
    let slot = slots.(w) in
    let history =
      match results.(w) with Some h -> h | None -> assert false
    in
    let slots_probed =
      Array.fold_left
        (fun acc r -> match r with Some _ -> acc + 1 | None -> acc)
        0 results
    in
    Some
      {
        winner_slot = w;
        winner_index = slot.Levin.index;
        winner_budget = slot.Levin.budget;
        winner_rounds = History.length history;
        slots_probed;
        history;
      }
  end

type ('strat, 'inst) finite_state = {
  f_memo : 'strat memo;
  f_sched : Levin.slot Seq.t;
  f_current : (Levin.slot * 'inst) option;
  f_used : int;  (* rounds consumed in the current session *)
  f_sense : Sensing.state;  (* has absorbed every completed round *)
  f_pending : (Io.User.obs * Io.User.act) option;
}

let rec seq_drop n s =
  if n <= 0 then s
  else begin
    match s () with Seq.Nil -> s | Seq.Cons (_, rest) -> seq_drop (n - 1) rest
  end

let finite ?schedule ?checkpoint ?stats ~enum ~sensing () =
  (match Enum.cardinality enum with
  | Some 0 -> invalid_arg "Universal.finite: empty strategy enumeration"
  | _ -> ());
  let module I = Strategy.Instance in
  let initial_schedule () =
    match schedule with Some s -> s | None -> Levin.schedule ()
  in
  Strategy.make
    ~name:(Printf.sprintf "universal-finite(%s;%s)" (Enum.name enum) sensing.Sensing.name)
    ~init:(fun () ->
      Option.iter reset_stats stats;
      let sched = initial_schedule () in
      (* Resume past the sessions a previous incarnation already spent:
         the schedule is deterministic, so skipping the first
         [saved_slots] slots continues exactly where the crash cut the
         enumeration off. *)
      let sched =
        match checkpoint with
        | Some c ->
            if c.saved_slots > 0 && Trace.enabled () then
              Trace.emit
                (Trace.Resume { index = c.saved_index; slots = c.saved_slots });
            seq_drop c.saved_slots sched
        | None -> sched
      in
      {
        f_memo = memo_create enum;
        f_sched = sched;
        f_current = None;
        f_used = 0;
        f_sense = Sensing.start sensing;
        f_pending = None;
      })
    ~step:(fun rng state (obs : Io.User.obs) ->
      let sense_state =
        match state.f_pending with
        | None -> state.f_sense
        | Some p -> Sensing.observe state.f_sense (pending_event p)
      in
      let verdict =
        if state.f_pending = None then Sensing.Negative (* nothing achieved yet *)
        else Sensing.verdict sense_state
      in
      (match Trace.current () with
      | None -> ()
      | Some sink ->
          sink
            (Trace.Sense
               {
                 round = obs.Io.User.round;
                 sensor = sensing.Sensing.name;
                 positive = verdict = Sensing.Positive;
                 clock = state.f_used;
                 patience =
                   (match state.f_current with
                   | Some (slot, _) -> slot.Levin.budget
                   | None -> 0);
               }));
      if verdict = Sensing.Positive then
        ({ state with f_sense = sense_state; f_pending = None }, Io.User.halt_act)
      else begin
        let state =
          let session_over =
            match state.f_current with
            | None -> true
            | Some (slot, _) -> state.f_used >= slot.Levin.budget
          in
          if not session_over then state
          else begin
            match state.f_sched () with
            | Seq.Nil ->
                invalid_arg "Universal.finite: schedule exhausted"
            | Seq.Cons (slot, rest) ->
                if Trace.enabled () then
                  Trace.emit
                    (Trace.Session
                       {
                         round = obs.Io.User.round;
                         index = slot.Levin.index;
                         budget = slot.Levin.budget;
                       });
                Option.iter
                  (fun s ->
                    s.sessions <- s.sessions + 1;
                    s.switches <- s.switches + 1;
                    s.current_index <- slot.Levin.index;
                    s.settled_round <- obs.Io.User.round)
                  stats;
                Option.iter
                  (fun c ->
                    c.saved_slots <- c.saved_slots + 1;
                    c.saved_index <- slot.Levin.index)
                  checkpoint;
                {
                  state with
                  f_sched = rest;
                  f_current =
                    Some (slot, I.create (memo_get state.f_memo slot.Levin.index));
                  f_used = 0;
                }
          end
        in
        let inst =
          match state.f_current with
          | Some (_, inst) -> inst
          | None -> assert false
        in
        let act = { (I.step rng inst obs) with Io.User.halt = false } in
        ( {
            state with
            f_sense = sense_state;
            f_pending = Some (obs, act);
            f_used = state.f_used + 1;
          },
          act )
      end)
