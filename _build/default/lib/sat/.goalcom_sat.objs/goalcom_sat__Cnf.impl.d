lib/sat/cnf.ml: Array List Printf String
