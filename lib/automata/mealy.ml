open Goalcom_prelude

type t = {
  states : int;
  inputs : int;
  outputs : int;
  next : int array array;
  out : int array array;
}

let check_table name ~rows ~cols ~bound table =
  if Array.length table <> rows then
    invalid_arg (Printf.sprintf "Mealy.make: %s has %d rows, expected %d" name
                   (Array.length table) rows);
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg (Printf.sprintf "Mealy.make: ragged %s table" name);
      Array.iter
        (fun v ->
          if v < 0 || v >= bound then
            invalid_arg (Printf.sprintf "Mealy.make: %s entry %d out of range" name v))
        row)
    table

let make ~states ~inputs ~outputs ~next ~out =
  if states <= 0 || inputs <= 0 || outputs <= 0 then
    invalid_arg "Mealy.make: dimensions must be positive";
  check_table "next" ~rows:states ~cols:inputs ~bound:states next;
  check_table "out" ~rows:states ~cols:inputs ~bound:outputs out;
  { states; inputs; outputs; next; out }

let constant ~inputs ~outputs sym =
  if sym < 0 || sym >= outputs then invalid_arg "Mealy.constant: symbol out of range";
  make ~states:1 ~inputs ~outputs
    ~next:[| Array.make inputs 0 |]
    ~out:[| Array.make inputs sym |]

let identity ~size =
  make ~states:1 ~inputs:size ~outputs:size
    ~next:[| Array.make size 0 |]
    ~out:[| Array.init size (fun i -> i) |]

let map_output f ~outputs m =
  let out = Array.map (Array.map f) m.out in
  make ~states:m.states ~inputs:m.inputs ~outputs ~next:m.next ~out

let map_input f m =
  let remap table =
    Array.map (fun row -> Array.init m.inputs (fun i -> row.(f i))) table
  in
  make ~states:m.states ~inputs:m.inputs ~outputs:m.outputs
    ~next:(remap m.next) ~out:(remap m.out)

let step m s i =
  if s < 0 || s >= m.states then invalid_arg "Mealy.step: state out of range";
  if i < 0 || i >= m.inputs then invalid_arg "Mealy.step: input out of range";
  (m.next.(s).(i), m.out.(s).(i))

let run m word =
  let rec go s = function
    | [] -> []
    | i :: rest ->
        let s', o = step m s i in
        o :: go s' rest
  in
  go 0 word

let cascade m1 m2 =
  if m1.outputs <> m2.inputs then
    invalid_arg "Mealy.cascade: alphabet mismatch";
  (* Product state (s1, s2) encoded as s1 * m2.states + s2. *)
  let states = m1.states * m2.states in
  let next = Array.make_matrix states m1.inputs 0 in
  let out = Array.make_matrix states m1.inputs 0 in
  for s1 = 0 to m1.states - 1 do
    for s2 = 0 to m2.states - 1 do
      let s = (s1 * m2.states) + s2 in
      for i = 0 to m1.inputs - 1 do
        let s1', mid = step m1 s1 i in
        let s2', o = step m2 s2 mid in
        next.(s).(i) <- (s1' * m2.states) + s2';
        out.(s).(i) <- o
      done
    done
  done;
  make ~states ~inputs:m1.inputs ~outputs:m2.outputs ~next ~out

let saturating_mul a b =
  if a <> 0 && b > max_int / a then max_int else a * b

let count ~states ~inputs ~outputs =
  (* Each of the [states * inputs] cells independently chooses a
     (successor, output) pair among [states * outputs] options. *)
  let per_cell = saturating_mul states outputs in
  let cells = states * inputs in
  let rec pow acc k =
    if k = 0 then acc else pow (saturating_mul acc per_cell) (k - 1)
  in
  pow 1 cells

let cell_radices m =
  Array.make (m.states * m.inputs) (m.states * m.outputs)

let encode m =
  let digits =
    Array.init
      (m.states * m.inputs)
      (fun cell ->
        let s = cell / m.inputs and i = cell mod m.inputs in
        (m.next.(s).(i) * m.outputs) + m.out.(s).(i))
  in
  Coding.encode_tuple ~radices:(cell_radices m) digits

let decode ~states ~inputs ~outputs code =
  if states <= 0 || inputs <= 0 || outputs <= 0 then None
  else if code < 0 || code >= count ~states ~inputs ~outputs then None
  else begin
    let radices = Array.make (states * inputs) (states * outputs) in
    let digits = Coding.decode_tuple ~radices code in
    let next = Array.make_matrix states inputs 0 in
    let out = Array.make_matrix states inputs 0 in
    Array.iteri
      (fun cell d ->
        let s = cell / inputs and i = cell mod inputs in
        next.(s).(i) <- d / outputs;
        out.(s).(i) <- d mod outputs)
      digits;
    Some (make ~states ~inputs ~outputs ~next ~out)
  end

let enumerate ~states ~inputs ~outputs =
  let card = count ~states ~inputs ~outputs in
  (* A saturated count means the true cardinality exceeds [max_int]:
     every representable index decodes, but reporting [card = max_int]
     would silently truncate (e.g. [Enum.append] would make anything
     appended after this class unreachable).  Report "uncountable"
     instead; [decode] still bounds-checks each index. *)
  let card = if card = max_int then None else Some card in
  Enum.make
    ~name:(Printf.sprintf "mealy(%d states,%d in,%d out)" states inputs outputs)
    ?card
    (fun i -> decode ~states ~inputs ~outputs i)

let enumerate_up_to ~max_states ~inputs ~outputs =
  if max_states <= 0 then invalid_arg "Mealy.enumerate_up_to";
  let rec build n =
    let this = enumerate ~states:n ~inputs ~outputs in
    if n = max_states then this
    else if Enum.cardinality this = None then
      (* The [n]-state layer alone exceeds [max_int] machines, so the
         layers above it could never be reached — appending them used
         to truncate silently (the saturated layer swallowed every
         index).  Refuse explicitly instead. *)
      invalid_arg
        (Printf.sprintf
           "Mealy.enumerate_up_to: machine count saturates at %d states \
            (class too large to stack more layers)"
           n)
    else Enum.append this (build (n + 1))
  in
  build 1

let equal_behaviour ~depth a b =
  if a.inputs <> b.inputs || a.outputs <> b.outputs then
    invalid_arg "Mealy.equal_behaviour: alphabet mismatch";
  (* Breadth-first walk of the product machine, stopping at [depth] or
     when every reachable state pair has been checked. *)
  let seen = Hashtbl.create 16 in
  let rec go frontier d =
    if frontier = [] || d > depth then true
    else begin
      let next_frontier = ref [] in
      let ok =
        List.for_all
          (fun (sa, sb) ->
            let rec inputs_ok i =
              if i >= a.inputs then true
              else begin
                let sa', oa = step a sa i in
                let sb', ob = step b sb i in
                if oa <> ob then false
                else begin
                  if not (Hashtbl.mem seen (sa', sb')) then begin
                    Hashtbl.add seen (sa', sb') ();
                    next_frontier := (sa', sb') :: !next_frontier
                  end;
                  inputs_ok (i + 1)
                end
              end
            in
            inputs_ok 0)
          frontier
      in
      ok && go !next_frontier (d + 1)
    end
  in
  Hashtbl.add seen (0, 0) ();
  go [ (0, 0) ] 1

let pp ppf m =
  Format.fprintf ppf "mealy{states=%d;in=%d;out=%d" m.states m.inputs m.outputs;
  for s = 0 to m.states - 1 do
    for i = 0 to m.inputs - 1 do
      Format.fprintf ppf "; %d--%d/%d->%d" s i m.out.(s).(i) m.next.(s).(i)
    done
  done;
  Format.fprintf ppf "}"
