(** A minimal JSON reader for the observability layer's own artefacts —
    JSONL trace lines ({!Jsonl.parse_line}) and the committed
    [BENCH_*.json] baselines ({!Bench_gate}).  Whole-value parsing,
    exact integers, objects as assoc lists in input order.  Not a
    general-purpose JSON library: good errors over streaming. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace input is an error.
    [\uXXXX] escapes decode to single bytes (the writer only emits
    them for control characters) and error beyond [ÿ]. *)

val of_file : string -> (t, string) result
(** {!parse} the whole file; errors are prefixed with the path. *)

(** {1 Accessors} — shape probes returning [None] on mismatch. *)

val member : string -> t -> t option
val string_opt : t -> string option
val int_opt : t -> int option
val bool_opt : t -> bool option

val number_opt : t -> float option
(** [Int] widened to float, or [Float]. *)

val list_opt : t -> t list option
