lib/harness/e06_compact_convergence.ml: Control Dialect Enum Exec Goal Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude Io List Listx Referee Rng Strategy Table
