lib/harness/e01_universality.ml: Baselines Dialect Enum Exec Float Goalcom Goalcom_automata Goalcom_baselines Goalcom_goals Goalcom_prelude Levin List Listx Printing Stats Table Trial
