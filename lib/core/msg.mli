(** Messages exchanged on the channels of the system.

    The model is agnostic about message contents; this small structured
    universe is rich enough for every goal in the library.  [Silence] is
    the distinguished "no message this round" value — channels always
    carry exactly one [Msg.t] per round, so silence is explicit. *)

type t =
  | Silence
  | Sym of int  (** a symbol of some finite command alphabet *)
  | Int of int
  | Text of string
  | Pair of t * t
  | Seq of t list

val equal : t -> t -> bool
(** Monomorphic structural equality (no polymorphic-compare tag walk —
    this runs on every silence/trace guard of the round loop). *)

val compare : t -> t -> int
(** Monomorphic total order; agrees with what [Stdlib.compare] gave
    this type. *)

val is_silence : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val add_buffer : Buffer.t -> t -> unit
(** Append {!to_string}'s rendering directly to a buffer — what the
    trace serialisers use, avoiding a formatter round-trip per event. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}: [of_string (to_string m) = Ok m] for every
    message.  The trace reader ([Goalcom_obs.Jsonl]) uses this to turn
    serialized traces back into event values.  Rejects trailing input
    and malformed literals with a position-carrying error. *)

val sym_opt : t -> int option
(** [Some s] iff the message is [Sym s]. *)

val int_opt : t -> int option
val text_opt : t -> string option

val seq_of_string : string -> t
(** [Seq] of [Int (Char.code c)] for each byte — a convenient payload
    encoding for the transfer and printing goals. *)

val string_of_seq : t -> string option
(** Inverse of {!seq_of_string} when the shape matches. *)
