lib/prelude/listx.ml: List
