lib/goals/control.ml: Dialect Dialect_msg Enum Format Goal Goalcom Goalcom_automata Goalcom_prelude Goalcom_servers Io Msg Printf Referee Rng Sensing Strategy Transform Universal View World
