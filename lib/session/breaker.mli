(** Per-server-class circuit breakers.

    A breaker watches the failure verdicts of every session talking to
    one server class.  [threshold] consecutive failures trip it
    {e Open}: no session of the class is admitted or restarted until
    [cooldown] ticks pass, at which point one request is let through as
    a {e Half_open} probe — its success re-closes the breaker, its
    failure re-trips it.  Success anywhere resets the consecutive
    count.  The breaker is driven exclusively from the engine's
    sequential supervision phase, so its state is deterministic. *)

type state = Closed | Open | Half_open

val state_name : state -> string
(** ["closed"], ["open"], ["half-open"]. *)

(** Observable transitions, for the engine's [Supervise] events:
    [Tripped] (→ Open), [Probing] (→ Half_open), [Reclosed]
    (→ Closed). *)
type change = Tripped | Probing | Reclosed

type t

val make : ?threshold:int -> ?cooldown:int -> unit -> t
(** Defaults: [threshold = 5] consecutive failures, [cooldown = 8]
    ticks.  [threshold = 0] disables tripping entirely.
    @raise Invalid_argument on negative threshold or cooldown < 1. *)

val state : t -> state

val trips : t -> int
(** Times the breaker tripped Open (including failed probes). *)

val allow : t -> tick:int -> bool * change option
(** May a session of this class start (or restart) at [tick]?  An Open
    breaker whose cooldown has elapsed moves to Half_open and admits
    the caller as the probe. *)

val record_success : t -> change option
val record_failure : t -> tick:int -> change option
