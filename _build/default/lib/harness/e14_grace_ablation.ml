(* E14 / Figure 7 — ablation of the compact construction's growing
   patience: with constant grace the right strategy can be evicted
   forever while it is still steering the plant back into range;
   doubling patience (the full version's growing time allowance)
   converges. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let title = "Ablation: constant vs. doubling grace in the compact construction"

let claim =
  "the enumerate-and-switch construction needs a growing time allowance: \
   bounded recovery periods otherwise evict the right strategy forever"

let alphabet = 4
let horizon = 4000
let trials = 5
let graces = [ 1; 2; 4; 8; 16; 32 ]

let run ~seed =
  let dialects = Dialect.enumerate_rotations ~size:alphabet in
  let goal = Control.goal ~alphabet () in
  let config = Exec.config ~horizon () in
  (* The matching dialect is last, so the search must survive a long
     exploration phase with the plant far out of range. *)
  let server = Control.server ~alphabet (Enum.get_exn dialects (alphabet - 1)) in
  let measure ~growth ~grace seed_off =
    let successes = ref 0 and settled = ref [] in
    List.iter
      (fun t ->
        let user =
          Universal.compact ~grace ~growth
            ~enum:(Control.user_class ~alphabet dialects)
            ~sensing:(Control.sensing ()) ()
        in
        let outcome, _ =
          Exec.run_outcome ~config ~goal ~user ~server
            (Rng.make (seed + seed_off + t))
        in
        if outcome.Outcome.achieved then begin
          incr successes;
          match outcome.Outcome.last_violation with
          | Some r -> settled := float_of_int r :: !settled
          | None -> settled := 0. :: !settled
        end)
      (Listx.range 0 trials);
    ( float_of_int !successes /. float_of_int trials,
      if !settled = [] then Float.nan else Stats.mean !settled )
  in
  let rows =
    List.map
      (fun grace ->
        let c_rate, c_settle = measure ~growth:`Constant ~grace 0 in
        let d_rate, d_settle = measure ~growth:`Doubling ~grace 100 in
        [
          Table.cell_int grace;
          Table.cell_pct c_rate;
          (if Float.is_nan c_settle then "-" else Table.cell_float c_settle);
          Table.cell_pct d_rate;
          (if Float.is_nan d_settle then "-" else Table.cell_float d_settle);
        ])
      graces
  in
  Table.make
    ~title:"E14 (Figure 7): grace policy ablation (control goal, worst dialect)"
    ~columns:
      [
        "base grace";
        "constant: success";
        "constant: settle round";
        "doubling: success";
        "doubling: settle round";
      ]
    ~notes:
      [
        "success = violations stop within the horizon; settle round = last \
         referee violation";
        "expected shape: doubling succeeds at every base grace; constant \
         fails for small grace (eviction during recovery) and only \
         converges once the base grace itself covers the recovery time";
      ]
    rows
