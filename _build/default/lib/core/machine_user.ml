open Goalcom_automata

type 'obs reader = 'obs -> int
type 'act writer = int -> 'act

let check_input m i =
  if i < 0 || i >= m.Mealy.inputs then
    invalid_arg
      (Printf.sprintf "Machine_user: reader produced %d, input alphabet is %d"
         i m.Mealy.inputs)
  else i

let generic_of_mealy ~name ~read ~write m =
  Strategy.make ~name
    ~init:(fun () -> 0)
    ~step:(fun _rng state obs ->
      let input = check_input m (read obs) in
      let state', output = Mealy.step m state input in
      (state', write output))

let user_of_mealy ?name ~read ~write m =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "mealy-user#%d" (Mealy.encode m)
  in
  generic_of_mealy ~name ~read ~write m

let server_of_mealy ?name ~read ~write m =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "mealy-server#%d" (Mealy.encode m)
  in
  generic_of_mealy ~name ~read ~write m

let user_class ?name ~read ~write machines =
  let name =
    match name with
    | Some n -> n
    | None -> "mealy-users(" ^ Enum.name machines ^ ")"
  in
  Enum.map ~name (fun m -> user_of_mealy ~read ~write m) machines

let read_world_int ~cap (obs : Io.User.obs) =
  if cap <= 0 then invalid_arg "Machine_user.read_world_int: bad cap";
  match obs.Io.User.from_world with
  | Msg.Int n -> min (max n 0) (cap - 1)
  | _ -> 0

let write_world_sym s = Io.User.say_world (Msg.Sym s)
let write_server_sym s = Io.User.say_server (Msg.Sym s)
