lib/prelude/listx.mli:
