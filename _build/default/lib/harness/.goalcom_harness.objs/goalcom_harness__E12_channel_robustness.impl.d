lib/harness/e12_channel_robustness.ml: Channel Dialect Enum Exec Float Goalcom Goalcom_automata Goalcom_goals Goalcom_prelude Goalcom_servers List Listx Printing Stats Table Trial
