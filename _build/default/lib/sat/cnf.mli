(** CNF formulas.

    Substrate for the delegation-of-computation goal: the server's
    "superior computational ability" is a SAT solver, and the user can
    cheaply {e verify} a claimed satisfying assignment — the
    verifiability that makes delegation sensing safe. *)

type literal = int
(** Non-zero integer: [+v] is the positive literal of variable [v]
    (1-based), [-v] its negation. *)

type clause = literal list

type t = private { num_vars : int; clauses : clause list }

val make : num_vars:int -> clause list -> t
(** Validates that every literal references a variable in
    [1..num_vars] and that no clause is empty.
    @raise Invalid_argument otherwise. *)

type assignment = bool array
(** Index [v] holds variable [v]'s value; index 0 is unused.  Length
    must be [num_vars + 1]. *)

val eval_literal : assignment -> literal -> bool
val eval_clause : assignment -> clause -> bool

val eval : t -> assignment -> bool
(** Whole-formula evaluation.
    @raise Invalid_argument if the assignment has the wrong length. *)

val num_clauses : t -> int

val to_string : t -> string
(** DIMACS-like one-line rendering, e.g. ["(1 -2 3) (2 -3)"]. *)

val of_ints : num_vars:int -> int list list -> t
(** Alias of {!make} taking raw integer lists. *)
