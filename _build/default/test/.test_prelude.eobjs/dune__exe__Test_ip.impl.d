test/test_ip.ml: Alcotest Arith Array Cnf Dpll Gen Gf Goalcom_ip Goalcom_prelude Goalcom_sat List Poly Printf Rng Sumcheck
