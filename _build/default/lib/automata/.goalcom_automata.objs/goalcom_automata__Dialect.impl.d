lib/automata/dialect.ml: Array Enum Format Goalcom_prelude List Listx Printf Rng String
