open Goalcom_prelude

type t = {
  achieved : bool;
  halted : bool;
  halt_round : int option;
  rounds : int;
  violations : int;
  violation_rounds : int list;
  last_violation : int option;
}

let judge ?tail_window (goal : Goal.t) history =
  let rounds = History.length history in
  let halted = History.halted history in
  let halt_round = History.halt_round history in
  (* One incremental fold per judgement: finite referees are decided
     once (violations derived from the decision), compact referees
     collect violation rounds in a single pass. *)
  let violation_rounds, achieved =
    if Referee.is_finite goal.referee then begin
      let accepted = Referee.decide_finite goal.referee history in
      ((if accepted then [] else [ rounds ]), halted && accepted)
    end
    else begin
      let violation_rounds = Referee.violations goal.referee history in
      let window =
        match tail_window with
        | Some w -> max 1 w
        | None -> max 1 (rounds / 5)
      in
      let cutoff = rounds - window in
      ( violation_rounds,
        rounds > 0 && not (List.exists (fun r -> r > cutoff) violation_rounds)
      )
    end
  in
  let last_violation = Listx.last_opt violation_rounds in
  {
    achieved;
    halted;
    halt_round;
    rounds;
    violations = List.length violation_rounds;
    violation_rounds;
    last_violation;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<h>{achieved=%b; halted=%b; rounds=%d; violations=%d; last_violation=%s}@]"
    t.achieved t.halted t.rounds t.violations
    (match t.last_violation with None -> "-" | Some r -> string_of_int r)
