(** Enumerations of (possibly infinite) countable classes.

    The paper's universal constructions are parameterised by an
    enumeration of the user-strategy class; universality is always
    relative to such a class.  An enumeration is a partial function from
    indices to values: [get i] is [Some v] for every [i] below the
    cardinality ([None] past the end of a finite enumeration). *)

type 'a t

val make : name:string -> ?card:int -> (int -> 'a option) -> 'a t
(** [make ~name ?card get] wraps an indexing function.  When [card] is
    given, [get i] must be [Some _] exactly for [0 <= i < card]; the
    wrapper enforces the [None] side. *)

val name : 'a t -> string

val cardinality : 'a t -> int option
(** [None] means (conceptually) infinite or unknown. *)

val get : 'a t -> int -> 'a option
val get_exn : 'a t -> int -> 'a

val of_list : name:string -> 'a list -> 'a t

val map : ?name:string -> ('a -> 'b) -> 'a t -> 'b t

val append : 'a t -> 'a t -> 'a t
(** Concatenation; the first enumeration must be finite.  When the
    combined cardinality overflows [int], the result's cardinality is
    [None] ("too many to count") rather than a silently truncated
    [max_int].  @raise Invalid_argument if the first side is not
    finite. *)

val interleave : 'a t -> 'a t -> 'a t
(** Fair interleaving (even indices from the first, odd from the second);
    both may be infinite.  For finite inputs the tail is the leftover. *)

val product : 'a t -> 'b t -> ('a * 'b) t
(** Pairs, enumerated by Cantor diagonalisation when either side is
    infinite, and row-major when both are finite. *)

val filter_finite : ('a -> bool) -> 'a t -> 'a t
(** Restriction of a finite enumeration (materialised).
    @raise Invalid_argument on infinite input. *)

val to_list : 'a t -> 'a list
(** All elements of a finite enumeration.
    @raise Invalid_argument on infinite input. *)

val take : int -> 'a t -> 'a list
(** First [n] elements (fewer if the enumeration is shorter). *)

val find_index : ?limit:int -> ('a -> bool) -> 'a t -> int option
(** Smallest index whose element satisfies the predicate, scanning at
    most [limit] indices (default 10_000). *)

val tabulate : name:string -> int -> (int -> 'a) -> 'a t
(** [tabulate ~name n f] enumerates [f 0 .. f (n-1)] lazily. *)

val naturals : int t
(** 0, 1, 2, ... *)

val cached : ?name:string -> capacity:int -> 'a t -> 'a t * 'a option Lru.t
(** [cached ~capacity t] memoizes [get] through a bounded {!Lru} cache
    shared by every consumer of the returned enumeration (domain-safe —
    see {!Lru}).  The underlying [get] must be pure.  [capacity 0]
    disables caching (pass-through).  The cache is returned alongside
    for hit-rate accounting and tests.  The cardinality and name (by
    default) are unchanged. *)
