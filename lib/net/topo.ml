open Goalcom
open Goalcom_automata
open Goalcom_servers
open Goalcom_goals

(* --- networks --------------------------------------------------------- *)

type net = {
  n_nodes : int;
  alpha : int; (* payload alphabet *)
  edges : (int * int * Mealy.t) array;
  outs : int array array; (* outs.(u) = indices into edges, port order *)
}

let net ~payload_alphabet ~nodes edges =
  if nodes < 1 then invalid_arg "Topo.net: need at least one node";
  if payload_alphabet < 1 then invalid_arg "Topo.net: empty payload alphabet";
  let edges = Array.of_list edges in
  Array.iter
    (fun (u, v, m) ->
      if u < 0 || u >= nodes || v < 0 || v >= nodes then
        invalid_arg "Topo.net: edge endpoint out of range";
      if m.Mealy.inputs <> payload_alphabet || m.Mealy.outputs <> payload_alphabet
      then invalid_arg "Topo.net: edge machine alphabet mismatch")
    edges;
  let outs = Array.make nodes [] in
  Array.iteri
    (fun e (u, _, _) -> outs.(u) <- e :: outs.(u))
    edges;
  {
    n_nodes = nodes;
    alpha = payload_alphabet;
    edges;
    outs = Array.map (fun l -> Array.of_list (List.rev l)) outs;
  }

let nodes n = n.n_nodes
let payload_alphabet n = n.alpha

let max_out_degree n =
  Array.fold_left (fun acc o -> max acc (Array.length o)) 0 n.outs

(* --- scenarios -------------------------------------------------------- *)

type scenario = {
  net : net;
  source : int;
  sink : int;
  payload : int;
  route : int list;
}

(* Plan a simple path delivering the payload intact.  Along a post-reset
   simple path every edge is traversed for the first time, so each hop's
   transform is taken from machine state 0 — which is exactly what the
   world computes after the informed user's leading reset. *)
let find_route net ~source ~sink ~payload =
  let rec go node sym visited =
    if node = sink && sym = payload then Some []
    else
      Array.to_list (Array.mapi (fun p e -> (p, e)) net.outs.(node))
      |> List.find_map (fun (p, e) ->
             let _, v, m = net.edges.(e) in
             if List.mem v visited then None
             else
               let _, o = Mealy.step m 0 sym in
               Option.map (fun rest -> p :: rest) (go v o (v :: visited)))
  in
  go source payload [ source ]

let scenario ~net ~source ~sink ~payload =
  if source < 0 || source >= net.n_nodes || sink < 0 || sink >= net.n_nodes
  then invalid_arg "Topo.scenario: endpoint out of range";
  if payload < 0 || payload >= net.alpha then
    invalid_arg "Topo.scenario: payload out of range";
  match find_route net ~source ~sink ~payload with
  | None -> invalid_arg "Topo.scenario: no intact route from source to sink"
  | Some route -> { net; source; sink; payload; route }

let scenario_net s = s.net
let route s = s.route
let min_alphabet s = max_out_degree s.net + 1
let reset_sym s = max_out_degree s.net

let line ~hops ~payload_alphabet ~payload =
  if hops < 1 then invalid_arg "Topo.line: need at least one hop";
  let edges =
    List.init hops (fun i -> (i, i + 1, Link.clean ~alphabet:payload_alphabet))
  in
  let net = net ~payload_alphabet ~nodes:(hops + 1) edges in
  scenario ~net ~source:0 ~sink:hops ~payload

(* 0 -> 1 -> 3 scrambles and unscrambles (rot k then rot -k); 0 -> 2 -> 3
   looks direct but the second hop is stuck at symbol 0. *)
let diamond ~payload_alphabet ~payload =
  if payload_alphabet < 2 then invalid_arg "Topo.diamond: alphabet too small";
  if payload = 0 then
    invalid_arg "Topo.diamond: payload 0 defeats the stuck decoy";
  let a = payload_alphabet in
  let edges =
    [
      (0, 1, Link.relabel ~alphabet:a 1);
      (0, 2, Link.clean ~alphabet:a);
      (1, 3, Link.relabel ~alphabet:a (a - 1));
      (2, 3, Link.stuck ~alphabet:a 0);
    ]
  in
  let net = net ~payload_alphabet ~nodes:4 edges in
  scenario ~net ~source:0 ~sink:3 ~payload

let ring ~nodes:k ~sink ~payload_alphabet ~payload =
  if k < 3 then invalid_arg "Topo.ring: need at least three nodes";
  if sink <= 0 || sink >= k then invalid_arg "Topo.ring: sink out of range";
  if payload = 0 then
    invalid_arg "Topo.ring: payload 0 defeats the stuck decoy";
  let a = payload_alphabet in
  let cycle = List.init k (fun i -> (i, (i + 1) mod k, Link.clean ~alphabet:a)) in
  let chord = (0, sink, Link.stuck ~alphabet:a 0) in
  let net = net ~payload_alphabet ~nodes:k (chord :: cycle) in
  scenario ~net ~source:0 ~sink ~payload

(* --- the goal --------------------------------------------------------- *)

(* World state: the packet (node, carried symbol) plus every edge
   machine's state.  Edge-state updates copy the array: instances never
   share state, and a reset restores the pristine fabric. *)
type packet = { node : int; sym : int; estate : int array }

let view_of s p = Codec.ints [ p.node; p.sym; s.sink; s.payload ]

let world_of_scenario s =
  let fresh () =
    { node = s.source; sym = s.payload; estate = Array.make (Array.length s.net.edges) 0 }
  in
  let reset = reset_sym s in
  World.make
    ~name:
      (Printf.sprintf "net-world(%dn,%de,%d->%d)" s.net.n_nodes
         (Array.length s.net.edges) s.source s.sink)
    ~init:fresh
    ~step:(fun _rng p (obs : Io.World.obs) ->
      let p =
        match obs.from_server with
        | Msg.Sym c when c = reset -> fresh ()
        | Msg.Sym c when c >= 0 && c < Array.length s.net.outs.(p.node) ->
            let e = s.net.outs.(p.node).(c) in
            let _, v, m = s.net.edges.(e) in
            let st', o = Mealy.step m p.estate.(e) p.sym in
            let estate = Array.copy p.estate in
            estate.(e) <- st';
            { node = v; sym = o; estate }
        | _ -> p
      in
      (p, Io.World.say_user (view_of s p)))
    ~view:(view_of s)

let delivered view =
  match Codec.ints_opt view with
  | Some [ node; sym; sink; payload ] -> node = sink && sym = payload
  | _ -> false

let referee = Referee.finite_exists "payload-delivered" delivered

let check_alphabet ~alphabet scenarios =
  List.iter
    (fun s ->
      if alphabet < min_alphabet s then
        invalid_arg "Topo: alphabet too small for a scenario's out-degree")
    scenarios

let goal ~scenarios ~alphabet () =
  if scenarios = [] then invalid_arg "Topo.goal: no scenarios";
  check_alphabet ~alphabet scenarios;
  Goal.make
    ~name:(Printf.sprintf "net-topo(alphabet=%d)" alphabet)
    ~worlds:(List.map world_of_scenario scenarios)
    ~referee

(* --- servers ---------------------------------------------------------- *)

let driver ~alphabet =
  if alphabet < 2 then invalid_arg "Topo.driver: alphabet too small";
  Strategy.stateless ~name:"net-switch" (fun (obs : Io.Server.obs) ->
      match obs.from_user with
      | Msg.Sym c when c >= 0 && c < alphabet -> Io.Server.say_world (Msg.Sym c)
      | _ -> Io.Server.silent)

let server ~alphabet d = Transform.with_dialect d (driver ~alphabet)

let server_class ~alphabet dialects =
  Transform.dialect_class ~base:(driver ~alphabet) dialects

(* --- users ------------------------------------------------------------ *)

(* Reset-then-route: every plan starts with the reset symbol, so the
   packet and the edge machines are in the exact state the route was
   planned against — including recovery from moves garbled by earlier
   wrong-dialect sessions of a universal run. *)
type phase = Planless | Executing of int list | Settling of int

let settle_patience = 3

let informed_user ~alphabet ~scenario:s d =
  check_alphabet ~alphabet [ s ];
  let plan = reset_sym s :: s.route in
  let send c = Io.User.say_server (Dialect_msg.encode d (Msg.Sym c)) in
  Strategy.make
    ~name:(Printf.sprintf "net-user@%s" (Format.asprintf "%a" Dialect.pp d))
    ~init:(fun () -> Planless)
    ~step:(fun _rng phase (obs : Io.User.obs) ->
      if delivered obs.from_world then (phase, Io.User.halt_act)
      else
        match phase with
        | Planless ->
            if Msg.is_silence obs.from_world then (Planless, Io.User.silent)
            else begin
              match plan with
              | c :: rest -> (Executing rest, send c)
              | [] -> (Settling 0, Io.User.silent)
            end
        | Executing (c :: rest) -> (Executing rest, send c)
        | Executing [] -> (Settling 0, Io.User.silent)
        | Settling k ->
            if k >= settle_patience then (Planless, Io.User.silent)
            else (Settling (k + 1), Io.User.silent))

let user_class ~alphabet ~scenario:s dialects =
  Enum.map
    ~name:(Printf.sprintf "net-users(%s)" (Enum.name dialects))
    (fun d -> informed_user ~alphabet ~scenario:s d)
    dialects

let sensing_window = 12

let sensing =
  Sensing.of_recent ~name:"payload-delivered" ~window:sensing_window (fun e ->
      delivered e.View.from_world)

let universal_user ?schedule ?checkpoint ?stats ~alphabet ~scenario:s dialects =
  Universal.finite ?schedule ?checkpoint ?stats
    ~enum:(user_class ~alphabet ~scenario:s dialects)
    ~sensing ()
