test/test_universal.mli:
