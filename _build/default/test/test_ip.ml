(* Tests for the interactive-proof substrate: field arithmetic,
   Lagrange evaluation, CNF arithmetization, and sum-check completeness
   and soundness. *)

open Goalcom_prelude
open Goalcom_sat
open Goalcom_ip

(* Gf *)

let test_gf_basics () =
  let a = Gf.of_int 5 and b = Gf.of_int 7 in
  Alcotest.(check int) "add" 12 (Gf.to_int (Gf.add a b));
  Alcotest.(check int) "sub mod" (Gf.p - 2) (Gf.to_int (Gf.sub a b));
  Alcotest.(check int) "mul" 35 (Gf.to_int (Gf.mul a b));
  Alcotest.(check int) "neg" (Gf.p - 5) (Gf.to_int (Gf.neg a));
  Alcotest.(check int) "of_int negative" (Gf.p - 1) (Gf.to_int (Gf.of_int (-1)));
  Alcotest.(check int) "of_int wraps" 1 (Gf.to_int (Gf.of_int (Gf.p + 1)))

let test_gf_inverse () =
  let rng = Rng.make 1 in
  for _ = 1 to 50 do
    let x = Gf.random rng in
    if not (Gf.equal x Gf.zero) then
      Alcotest.(check int) "x * x^-1 = 1" 1 (Gf.to_int (Gf.mul x (Gf.inv x)))
  done;
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (Gf.inv Gf.zero))

let test_gf_pow () =
  Alcotest.(check int) "2^10" 1024 (Gf.to_int (Gf.pow (Gf.of_int 2) 10));
  Alcotest.(check int) "x^0" 1 (Gf.to_int (Gf.pow (Gf.of_int 9) 0));
  (* Fermat: x^(p-1) = 1. *)
  Alcotest.(check int) "fermat" 1 (Gf.to_int (Gf.pow (Gf.of_int 12345) (Gf.p - 1)))

(* Poly *)

let test_poly_eval_samples () =
  (* g(X) = 3X^2 + 2X + 1: samples at 0,1,2 are 1, 6, 17. *)
  let samples = Array.map Gf.of_int [| 1; 6; 17 |] in
  let g x = Gf.of_int ((3 * x * x) + (2 * x) + 1) in
  List.iter
    (fun x ->
      Alcotest.(check int)
        (Printf.sprintf "g(%d)" x)
        (Gf.to_int (g x))
        (Gf.to_int (Poly.eval_samples samples (Gf.of_int x))))
    [ 0; 1; 2; 3; 10; 1000 ]

let test_poly_sum01 () =
  let samples = Array.map Gf.of_int [| 4; 9; 100 |] in
  Alcotest.(check int) "sum01" 13 (Gf.to_int (Poly.sum01 samples))

(* Arith *)

let test_arith_agrees_with_boolean_eval () =
  let rng = Rng.make 2 in
  for _ = 1 to 20 do
    let cnf = Gen.uniform rng ~num_vars:5 ~num_clauses:8 ~clause_len:3 in
    (* On every 0/1 point the polynomial equals the boolean value. *)
    for code = 0 to 31 do
      let bools = Array.init 6 (fun v -> v > 0 && code land (1 lsl (v - 1)) <> 0) in
      let point =
        Array.map (fun b -> if b then Gf.one else Gf.zero) bools
      in
      let expected = if Cnf.eval cnf bools then 1 else 0 in
      Alcotest.(check int) "agrees" expected
        (Gf.to_int (Arith.formula_eval cnf point))
    done
  done

let test_arith_count_matches_dpll () =
  let rng = Rng.make 3 in
  for _ = 1 to 20 do
    let cnf = Gen.uniform rng ~num_vars:6 ~num_clauses:10 ~clause_len:3 in
    Alcotest.(check int) "count" (Dpll.count_models cnf)
      (Arith.count_models_mod cnf)
  done

let test_arith_degree_bound () =
  let cnf = Cnf.make ~num_vars:3 [ [ 1; 2 ]; [ -1; 3 ]; [ 1; -3 ] ] in
  Alcotest.(check int) "var 1 in three clauses" 3 (Arith.degree_bound cnf)

(* Sumcheck *)

let random_cnf rng =
  Gen.uniform rng ~num_vars:6 ~num_clauses:10 ~clause_len:3

let test_sumcheck_completeness () =
  let rng = Rng.make 4 in
  for i = 1 to 20 do
    let cnf = random_cnf rng in
    let claimed = Arith.count_models_mod cnf in
    let accepted, rounds =
      Sumcheck.run rng cnf ~claimed ~prover:Sumcheck.honest_prover
    in
    Alcotest.(check bool) (Printf.sprintf "accepts %d" i) true accepted;
    Alcotest.(check int) "n rounds" cnf.Cnf.num_vars rounds
  done

let test_sumcheck_rejects_wrong_claim () =
  let rng = Rng.make 5 in
  for i = 1 to 20 do
    let cnf = random_cnf rng in
    let claimed = Arith.count_models_mod cnf + 1 in
    let accepted, rounds =
      Sumcheck.run rng cnf ~claimed ~prover:Sumcheck.honest_prover
    in
    Alcotest.(check bool) (Printf.sprintf "rejects %d" i) false accepted;
    (* An honest prover cannot even pass round 1 with a false claim. *)
    Alcotest.(check int) "caught immediately" 1 rounds
  done

let test_sumcheck_rejects_tampered_rounds () =
  (* A consistent lie in round k passes that round's sum check but is
     caught later, with overwhelming probability over the challenges. *)
  let rng = Rng.make 6 in
  List.iter
    (fun tamper_round ->
      for i = 1 to 10 do
        let cnf = random_cnf rng in
        let claimed = Arith.count_models_mod cnf in
        let accepted, rounds =
          Sumcheck.run rng cnf ~claimed
            ~prover:(Sumcheck.tampered_prover ~tamper_round ~offset:(i + 1))
        in
        Alcotest.(check bool)
          (Printf.sprintf "tamper@%d trial %d rejected" tamper_round i)
          false accepted;
        Alcotest.(check bool) "runs past the tampered round" true
          (rounds >= tamper_round)
      done)
    [ 1; 3; 6 ]

let test_sumcheck_rejects_malformed_samples () =
  let rng = Rng.make 7 in
  let cnf = random_cnf rng in
  let short_prover _cnf ~prefix:_ = [| Gf.zero; Gf.one |] in
  let accepted, _ =
    Sumcheck.run rng cnf
      ~claimed:(Arith.count_models_mod cnf)
      ~prover:short_prover
  in
  Alcotest.(check bool) "wrong arity rejected" false accepted

let test_sumcheck_soundness_error_is_small () =
  (* 60 adversarial transcripts, all rejected: the n·d/p bound predicts
     a vanishing acceptance probability. *)
  let rng = Rng.make 8 in
  let accepted = ref 0 in
  for i = 1 to 60 do
    let cnf = random_cnf rng in
    let ok, _ =
      Sumcheck.run rng cnf
        ~claimed:(Arith.count_models_mod cnf)
        ~prover:
          (Sumcheck.tampered_prover
             ~tamper_round:(1 + (i mod cnf.Cnf.num_vars))
             ~offset:(1 + (i mod 17)))
    in
    if ok then incr accepted
  done;
  Alcotest.(check int) "no lie survives" 0 !accepted

let () =
  Alcotest.run "ip"
    [
      ( "gf",
        [
          Alcotest.test_case "basics" `Quick test_gf_basics;
          Alcotest.test_case "inverse" `Quick test_gf_inverse;
          Alcotest.test_case "pow" `Quick test_gf_pow;
        ] );
      ( "poly",
        [
          Alcotest.test_case "lagrange eval" `Quick test_poly_eval_samples;
          Alcotest.test_case "sum01" `Quick test_poly_sum01;
        ] );
      ( "arith",
        [
          Alcotest.test_case "boolean agreement" `Quick test_arith_agrees_with_boolean_eval;
          Alcotest.test_case "count matches dpll" `Quick test_arith_count_matches_dpll;
          Alcotest.test_case "degree bound" `Quick test_arith_degree_bound;
        ] );
      ( "sumcheck",
        [
          Alcotest.test_case "completeness" `Quick test_sumcheck_completeness;
          Alcotest.test_case "rejects wrong claim" `Quick test_sumcheck_rejects_wrong_claim;
          Alcotest.test_case "rejects tampered rounds" `Quick test_sumcheck_rejects_tampered_rounds;
          Alcotest.test_case "rejects malformed samples" `Quick test_sumcheck_rejects_malformed_samples;
          Alcotest.test_case "soundness error small" `Quick test_sumcheck_soundness_error_is_small;
        ] );
    ]
