(** E16 — the fault matrix (robustness tentpole).

    Runs {universal, dialect-informed oracle, fixed-protocol} users on
    the printing and delegation goals against servers wrapped in
    {!Goalcom_faults.Fault} stacks — corruption, reordering, bursty
    loss, crash-restart, intermittent outages, their compositions, and
    an adversarial scheduler — and checks that universality and
    sensing safety survive every recoverable stack. *)

open Goalcom_prelude

val title : string
val claim : string

type stack_spec = { spec : string; recoverable : bool }

val stacks : stack_spec list
(** The fault stacks of the matrix, as {!Goalcom_faults.Fault.stack_of_string}
    specs, with the expected recoverability class. *)

type row = {
  goal_name : string;
  spec : string;
  recoverable : bool;
  universal_rate : float;
  universal_rounds : float;
  oracle_rate : float;
  fixed_rate : float;
  unsafe_halts : int;  (** summed over all users of the row *)
}

val rows : seed:int -> row list
(** Structured results, one row per goal × fault stack — what the test
    suite asserts invariants over. *)

val run : seed:int -> Table.t
