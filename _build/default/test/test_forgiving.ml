(* Tests for the forgiving-goal checker and the switch_after
   combinator. *)

open Goalcom
open Goalcom_prelude
open Goalcom_automata
open Goalcom_goals

let alphabet = 4
let dialects = Dialect.enumerate_rotations ~size:alphabet
let dialect i = Enum.get_exn dialects i

(* switch_after *)

let const_sender n =
  Strategy.stateless
    ~name:(Printf.sprintf "send-%d" n)
    (fun (_ : Io.User.obs) -> Io.User.say_world (Msg.Int n))

let test_switch_after_behaviour () =
  let u = Strategy.switch_after 2 (const_sender 1) (const_sender 9) in
  let inst = Strategy.Instance.create u in
  let rng = Rng.make 1 in
  let obs = { Io.User.from_server = Msg.Silence; from_world = Msg.Silence; round = 1 } in
  let outs =
    List.map
      (fun _ -> (Strategy.Instance.step rng inst obs).Io.User.to_world)
      (Listx.range 0 4)
  in
  Alcotest.(check bool) "first two from first" true
    (Listx.take 2 outs = [ Msg.Int 1; Msg.Int 1 ]);
  Alcotest.(check bool) "rest from second" true
    (Listx.drop 2 outs = [ Msg.Int 9; Msg.Int 9 ])

let test_switch_after_zero () =
  let u = Strategy.switch_after 0 (const_sender 1) (const_sender 9) in
  let inst = Strategy.Instance.create u in
  let act =
    Strategy.Instance.step (Rng.make 2) inst
      { Io.User.from_server = Msg.Silence; from_world = Msg.Silence; round = 1 }
  in
  Alcotest.(check bool) "immediate" true (act.Io.User.to_world = Msg.Int 9)

let test_switch_after_validation () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Strategy.switch_after: negative k") (fun () ->
      ignore (Strategy.switch_after (-1) (const_sender 1) (const_sender 2)))

(* Forgiving checker on the printing goal: random vandalism followed by
   the informed user must still succeed — printing is forgiving. *)

let test_printing_is_forgiving () =
  let goal = Printing.goal ~docs:[ [ 1; 2; 3 ] ] ~alphabet () in
  let report =
    Forgiving.check
      ~config:(Exec.config ~horizon:400 ())
      ~goal
      ~vandal:(Goalcom_baselines.Baselines.random_actions ~alphabet ~halt_prob:0. ())
      ~rescuer:(Printing.informed_user ~alphabet (dialect 0))
      (Printing.server ~alphabet (dialect 0))
      (Rng.make 3)
  in
  Alcotest.(check bool) "holds" true report.Forgiving.holds;
  Alcotest.(check bool) "cases" true (report.Forgiving.checked >= 12)

let test_checker_catches_unforgiving_goal () =
  (* An unforgiving goal: the world latches a "ruined" flag on the
     first wrong symbol — no rescuer can help after vandalism. *)
  let world =
    World.make ~name:"fragile"
      ~init:(fun () -> `Fresh)
      ~step:(fun _rng state (obs : Io.World.obs) ->
        let state =
          match (state, obs.from_user) with
          | `Fresh, Msg.Int 7 -> `Done
          | `Fresh, m when not (Msg.is_silence m) -> `Ruined
          | s, _ -> s
        in
        (state, Io.World.silent))
      ~view:(fun state ->
        Msg.Text
          (match state with `Fresh -> "fresh" | `Done -> "done" | `Ruined -> "ruined"))
  in
  let goal =
    Goal.make ~name:"fragile" ~worlds:[ world ]
      ~referee:(Referee.finite "done" (fun views -> List.mem (Msg.Text "done") views))
  in
  let rescuer =
    Strategy.make ~name:"send7-halt"
      ~init:(fun () -> 0)
      ~step:(fun _rng n (_ : Io.User.obs) ->
        if n > 3 then (n, Io.User.halt_act)
        else (n + 1, Io.User.say_world (Msg.Int 7)))
  in
  let vandal =
    Strategy.stateless ~name:"vandal" (fun (_ : Io.User.obs) ->
        Io.User.say_world (Msg.Int 0))
  in
  let server =
    Strategy.stateless ~name:"idle" (fun (_ : Io.Server.obs) -> Io.Server.silent)
  in
  let report =
    Forgiving.check
      ~config:(Exec.config ~horizon:60 ())
      ~prefix_lengths:[ 0; 3 ] ~goal ~vandal ~rescuer server (Rng.make 4)
  in
  (* Prefix 0 succeeds, prefix 3 is ruined: the checker must flag it. *)
  Alcotest.(check bool) "violated" false report.Forgiving.holds;
  Alcotest.(check bool) "has counterexamples" true
    (report.Forgiving.counterexamples <> [])

let test_report_pp () =
  let goal = Printing.goal ~docs:[ [ 1 ] ] ~alphabet () in
  let report =
    Forgiving.check
      ~config:(Exec.config ~horizon:100 ())
      ~prefix_lengths:[ 0 ] ~trials:1 ~goal
      ~vandal:(Goalcom_baselines.Baselines.random_actions ~alphabet ())
      ~rescuer:(Printing.informed_user ~alphabet (dialect 0))
      (Printing.server ~alphabet (dialect 0))
      (Rng.make 5)
  in
  let s = Format.asprintf "%a" Forgiving.pp_report report in
  Alcotest.(check bool) "mentions goal" true (String.length s > 10)

let () =
  Alcotest.run "forgiving"
    [
      ( "forgiving",
        [
          Alcotest.test_case "switch_after behaviour" `Quick test_switch_after_behaviour;
          Alcotest.test_case "switch_after zero" `Quick test_switch_after_zero;
          Alcotest.test_case "switch_after validation" `Quick test_switch_after_validation;
          Alcotest.test_case "printing is forgiving" `Quick test_printing_is_forgiving;
          Alcotest.test_case "catches unforgiving goal" `Quick test_checker_catches_unforgiving_goal;
          Alcotest.test_case "report pp" `Quick test_report_pp;
        ] );
    ]
