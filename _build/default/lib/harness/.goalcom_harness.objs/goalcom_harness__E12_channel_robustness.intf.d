lib/harness/e12_channel_robustness.mli: Goalcom_prelude
