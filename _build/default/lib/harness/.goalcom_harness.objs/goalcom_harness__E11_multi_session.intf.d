lib/harness/e11_multi_session.mli: Goalcom_prelude
