lib/core/io.ml: Msg
