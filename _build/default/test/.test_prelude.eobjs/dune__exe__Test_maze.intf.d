test/test_maze.mli:
