lib/goals/password.mli: Enum Goal Goalcom Goalcom_automata Levin Sensing Seq Strategy Universal World
