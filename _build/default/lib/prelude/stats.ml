let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty sample")
  | xs -> xs

let mean xs =
  let xs = require_nonempty "Stats.mean" xs in
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let variance xs =
  let n = List.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
    /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let percentile q xs =
  let xs = require_nonempty "Stats.percentile" xs in
  if q < 0. || q > 100. then invalid_arg "Stats.percentile: q out of range";
  let sorted = List.sort compare xs in
  let a = Array.of_list sorted in
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = q /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

let median xs = percentile 50. xs
let minimum xs = List.fold_left Float.min Float.infinity (require_nonempty "Stats.minimum" xs)
let maximum xs = List.fold_left Float.max Float.neg_infinity (require_nonempty "Stats.maximum" xs)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  median : float;
  min : float;
  max : float;
  p90 : float;
}

let summarise xs =
  let xs = require_nonempty "Stats.summarise" xs in
  {
    n = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    median = median xs;
    min = minimum xs;
    max = maximum xs;
    p90 = percentile 90. xs;
  }

let ci95_halfwidth xs =
  let n = List.length xs in
  if n < 2 then 0. else 1.96 *. stddev xs /. sqrt (float_of_int n)

let success_rate bs =
  let bs = require_nonempty "Stats.success_rate" bs in
  let hits = List.length (List.filter Fun.id bs) in
  float_of_int hits /. float_of_int (List.length bs)
