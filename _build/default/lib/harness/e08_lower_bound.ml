(* E8 / Figure 4 — the enumeration overhead is essentially necessary:
   on the password goal the informed user pays O(1) while any universal
   user pays ~|space|/2 guesses in expectation (there is no signal to
   learn from before the first success). *)

open Goalcom
open Goalcom_prelude
open Goalcom_goals

let title = "Password goal: unavoidable overhead vs. password-space size"

let claim =
  "the overhead introduced by the enumeration is essentially necessary: \
   there exist goals where any universal user pays ~|class|/2"

let spaces = [ 4; 8; 16; 32; 64 ]
let sample_cap = 16

let run ~seed =
  let goal = Password.goal () in
  let rows =
    List.map
      (fun space ->
        let config = Exec.config ~horizon:(8 * (space + 10)) () in
        (* Sample the secret password uniformly (all of them for small
           spaces). *)
        let secrets =
          if space <= sample_cap then Listx.range 0 space
          else begin
            let rng = Rng.make (seed + space) in
            List.map (fun _ -> Goalcom_prelude.Rng.int rng space) (Listx.range 0 sample_cap)
          end
        in
        let informed_costs, universal_costs =
          List.split
            (List.map
               (fun w ->
                 let server = Password.server_with_password w in
                 let informed =
                   Trial.run ~config ~trials:1 ~seed:(seed + w) ~goal
                     ~user:(Password.informed_user w) ~server ()
                 in
                 let universal =
                   Trial.run ~config ~trials:1 ~seed:(seed + w + 1000) ~goal
                     ~user:(Password.sweeper ~space) ~server ()
                 in
                 (informed.Trial.mean_rounds, universal.Trial.mean_rounds))
               secrets)
        in
        let informed = Stats.mean informed_costs in
        let universal = Stats.mean universal_costs in
        [
          Table.cell_int space;
          Table.cell_float informed;
          Table.cell_float universal;
          Table.cell_ratio (universal /. informed);
        ])
      spaces
  in
  Table.make
    ~title:"E8 (Figure 4): password-space size vs. rounds to unlock"
    ~columns:
      [ "space size N"; "informed rounds"; "universal (sweeper) rounds"; "ratio" ]
    ~notes:
      [
        "secret sampled uniformly; the sweeper is the best possible \
         universal user here (wrong guesses produce no feedback)";
        "expected shape: informed flat; universal grows linearly (~N/2 \
         guesses), so the ratio grows with N";
      ]
    rows
