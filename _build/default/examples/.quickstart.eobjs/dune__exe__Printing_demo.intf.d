examples/printing_demo.mli:
