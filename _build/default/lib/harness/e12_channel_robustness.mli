(** E12 / Figure 6 — universality through delayed user-server links: success preserved, cost grows gracefully with latency.

    Registered in {!Experiment.all}; see EXPERIMENTS.md for the
    measured table and its interpretation. *)

val title : string
val claim : string

val run : seed:int -> Goalcom_prelude.Table.t
(** Deterministic given [seed]. *)
