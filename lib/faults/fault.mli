(** Composable fault injection over server strategies.

    The paper's robustness story rests on one observation: a faulty
    channel composed with a server {e is just another server}, so the
    universal user need not know whether it is talking to a pristine
    printer or to one behind a lossy, reordering, crash-prone link —
    the composed strategy is simply one more member of the server
    class.  This module makes that composition first-class: a fault is
    a named wrapper [Strategy.server -> Strategy.server], and faults
    form a monoid under {!compose} with {!nop} as identity, so entire
    fault stacks can be built, named, printed, and parsed from CLI
    specs.

    Every fault draws its randomness from the per-step [Rng.t] that
    {!Goalcom.Exec.run} threads through the execution — never from a
    generator captured at construction time — so a fault stack is
    deterministic under the trial seed and independent across
    instances.

    {b Tracing.}  When a {!Goalcom.Trace} sink is installed, each fault
    activation emits a [Trace.Fault] event naming the fault and what it
    did ([detail] is ["inbound"]/["outbound"] for per-message faults,
    ["restart"], ["outage"], ["starve"] or ["garble"] for the
    server-level ones).  Rounds are stamped from the engine's ambient
    round counter ({!Goalcom.Trace.current_round}).  Emission never
    consumes randomness, so traced and untraced runs are bit-identical.
    The purely channel-level faults ({!delay}, {!drop}, {!duplicate})
    reuse {!Goalcom_servers.Channel} wrappers and are not traced. *)

open Goalcom

type t
(** A named server-strategy transformer. *)

val name : t -> string

val apply : t -> Strategy.server -> Strategy.server
(** [apply f server] is the faulted server. *)

val make : name:string -> (Strategy.server -> Strategy.server) -> t
(** Escape hatch for custom faults; prefer the combinators below. *)

val nop : t
(** The identity fault: [apply nop server == server]. *)

val compose : t -> t -> t
(** [compose f g] applies [g] closest to the server; message flow is
    server → [g] → [f] → user outbound and the reverse inbound. *)

val stack : t list -> t
(** [stack [f1; ...; fn]] composes left to right: [f1] is outermost
    (closest to the user).  [stack [] = nop]. *)

(** {1 Message-level faults} *)

val delay : rounds:int -> t
(** Outbound latency of [rounds] rounds ({!Goalcom_servers.Channel.delayed}).
    [delay ~rounds:0 = nop].  @raise Invalid_argument on negative. *)

val drop : prob:float -> t
(** Each non-silent inbound message is lost with probability [prob]
    ({!Goalcom_servers.Channel.drop_inbound}).  [drop ~prob:0. = nop].
    @raise Invalid_argument outside [0..1]. *)

val duplicate : t
(** Every non-silent outbound message is delivered twice
    ({!Goalcom_servers.Channel.duplicate_outbound}). *)

val corrupt : alphabet:int -> prob:float -> t
(** Each non-silent message, in both directions, is garbled with
    probability [prob]: command symbols are flipped to a {e different
    valid} symbol of the [alphabet] (via the mixed-radix coding, so the
    corrupted command still parses), integers get a low bit flipped,
    texts one character, pairs/sequences one random component.
    [corrupt ~prob:0. = nop].  @raise Invalid_argument on bad args. *)

val reorder : skew:int -> t
(** Messages in each direction may overtake each other, but no message
    is lost or held more than [skew] rounds past its arrival.
    [reorder ~skew:0 = nop].  @raise Invalid_argument on negative. *)

val burst : p_enter:float -> p_exit:float -> drop_prob:float -> t
(** Gilbert–Elliott bursty loss: a two-state Markov chain (good/bad)
    shared by both directions; in the bad state each non-silent message
    is dropped with [drop_prob].  @raise Invalid_argument on
    probabilities outside [0..1]. *)

(** {1 Server-level faults} *)

val crash_restart : every:int -> t
(** Every [every] rounds the wrapped server crashes and restarts: its
    state is reset to the initial value, losing all session progress.
    @raise Invalid_argument unless [every > 0]. *)

val intermittent : ?noise:int -> on:int -> off:int -> unit -> t
(** Periodic outage: [on] rounds of normal service then [off] rounds
    down — state frozen, inbound messages lost, and the server emits
    silence (or random symbols from a [noise]-sized alphabet, if
    given).  [intermittent ~off:0 = nop].  @raise Invalid_argument on a
    non-positive [on], negative [off], or non-positive [noise]. *)

val adversary : budget:int -> alphabet:int -> t
(** Worst-case scheduler with a fault budget: each round it may spend
    one unit to either starve the server of its inbound message
    (preferred — stops progress dead) or corrupt a non-silent reply
    (misleads sensing).  Silent once the budget is exhausted.
    @raise Invalid_argument on bad args. *)

(** {1 Spec parsing}

    For CLI flags and randomised tests.  Grammar (args after [:],
    comma-separated): [nop], [delay:K], [drop:P] (alias [loss:P], the
    network-link spelling), [dup], [corrupt:P],
    [reorder:K], [burst:PENTER,PEXIT,PDROP], [crash:K],
    [intermittent:ON,OFF], [adversary:B].  Stacks join specs with [+],
    outermost first, e.g. ["corrupt:0.05+crash:60"]. *)

val of_string : alphabet:int -> string -> (t, string) result
val stack_of_string : alphabet:int -> string -> (t, string) result
