(** One-for-one restart policies for supervised sessions.

    A policy answers two questions about a session whose incarnation
    just failed (wedged, crashed, or finished without achieving its
    goal): does the supervisor give up, and if not, how many scheduler
    ticks does it wait before the next incarnation?  Waits grow
    exponentially and carry deterministic jitter drawn from the
    supervising session's own RNG stream, so a thousand sessions
    tripped by the same crash storm do not restart in lockstep — and
    the whole schedule is still a pure function of the seed. *)

type t = {
  max_restarts : int;  (** give up after this many restarts *)
  backoff_base : int;  (** ticks before the first restart *)
  backoff_factor : float;  (** exponential growth per attempt *)
  backoff_max : int;  (** cap on the un-jittered backoff *)
  jitter : float;  (** extra wait, uniform in [0, jitter * backoff] *)
}

val make :
  ?max_restarts:int ->
  ?backoff_base:int ->
  ?backoff_factor:float ->
  ?backoff_max:int ->
  ?jitter:float ->
  unit ->
  t
(** Defaults: [max_restarts = 3], [backoff_base = 1],
    [backoff_factor = 2.0], [backoff_max = 16], [jitter = 0.25].
    @raise Invalid_argument on negative or degenerate values. *)

val default : t

val gives_up : t -> failures:int -> bool
(** [failures] is the number of failed incarnations so far. *)

val backoff : t -> Goalcom_prelude.Rng.t -> attempt:int -> int
(** Ticks to wait before restart number [attempt] (counted from 1).
    Consumes one jitter draw from [rng] whenever [jitter > 0], so RNG
    use depends only on the failure sequence.
    @raise Invalid_argument if [attempt < 1]. *)
