(** Server transforms: building classes of servers from a base server.

    The paper's incompatibility problem arises because the user faces an
    adversarially chosen member of a {e class} of servers.  These
    combinators build such classes: the same base behaviour wrapped in
    different dialects, degraded by noise or sluggishness, or replaced
    by outright unhelpful behaviours. *)

open Goalcom
open Goalcom_automata

val with_dialect : Dialect.t -> Strategy.server -> Strategy.server
(** The base server as seen through a dialect: incoming user messages
    are decoded to canonical form before the base server sees them, and
    its replies to the user are encoded.  (So a user must {e speak} the
    dialect for the base behaviour to emerge.)  The server↔world
    channels are untouched. *)

val dialect_class :
  base:Strategy.server -> Dialect.t Enum.t -> Strategy.server Enum.t
(** One dialected copy of [base] per dialect. *)

val noisy : flip_prob:float -> Strategy.server -> Strategy.server
(** With probability [flip_prob], an outgoing user-channel message is
    replaced by [Silence] (a lossy channel).  Randomness comes from the
    per-step RNG, so runs are deterministic given the execution seed.
    @raise Invalid_argument if the probability is out of range. *)

val lazy_every : int -> Strategy.server -> Strategy.server
(** Responds only every [k]-th round; in between it emits silence and
    buffers nothing (incoming messages on skipped rounds are dropped).
    Models a slow device.  @raise Invalid_argument if [k <= 0]. *)

val silent : unit -> Strategy.server
(** The unhelpful server that never says anything. *)

val babbler : alphabet_size:int -> Strategy.server
(** An unhelpful server that emits uniformly random symbols to the user
    and the world, ignoring everything it hears. *)

val deaf : Strategy.server -> Strategy.server
(** Behaves like the base server but never hears the user (incoming
    user messages replaced by [Silence]) — helpful-looking traffic, no
    cooperation. *)
